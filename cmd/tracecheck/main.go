// Command tracecheck validates a dibella Chrome trace-event file (the
// output of `dibella -trace`): the JSON parses, every event carries the
// fields Perfetto needs, phases are from the emitted set, flow events
// carry ids, and every lane's B/E spans balance. CI runs it on the
// traced smoke job's output so a malformed trace fails the build rather
// than a later Perfetto import.
//
// Usage:
//
//	tracecheck trace.json
//
// Exit status 0 when the file validates; 1 with a diagnostic otherwise.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// traceEvent mirrors the fields trace.WriteChrome emits. Unknown fields
// are ignored so the checker stays forward-compatible with new args.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	ID   string         `json:"id"`
	Args map[string]any `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

var validPhases = map[string]bool{
	"B": true, "E": true, "i": true, "s": true, "f": true, "M": true,
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(1)
	}
	if err := check(os.Args[1]); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func check(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(blob, &tf); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("no traceEvents")
	}
	// depth tracks open B spans per (pid, tid) lane: the recorder emits
	// B/E in order per rank, so a lane must close every span it opens.
	type lane struct{ pid, tid int }
	depth := map[lane]int{}
	lanes := map[lane]bool{}
	events := 0
	for i, e := range tf.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("event %d: missing name", i)
		}
		if !validPhases[e.Ph] {
			return fmt.Errorf("event %d (%s): unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Pid == nil || e.Tid == nil {
			return fmt.Errorf("event %d (%s): missing pid/tid", i, e.Name)
		}
		if e.Ph == "M" {
			continue // metadata: names the lanes, carries no timestamp
		}
		events++
		l := lane{*e.Pid, *e.Tid}
		lanes[l] = true
		if e.Ts == nil {
			return fmt.Errorf("event %d (%s): missing ts", i, e.Name)
		}
		if *e.Ts < 0 {
			return fmt.Errorf("event %d (%s): negative ts %g", i, e.Name, *e.Ts)
		}
		switch e.Ph {
		case "B":
			depth[l]++
		case "E":
			depth[l]--
			if depth[l] < 0 {
				return fmt.Errorf("event %d (%s): E without matching B on pid %d tid %d", i, e.Name, l.pid, l.tid)
			}
		case "s", "f":
			if e.ID == "" {
				return fmt.Errorf("event %d (%s): flow event without id", i, e.Name)
			}
		}
	}
	for l, d := range depth {
		if d != 0 {
			return fmt.Errorf("pid %d tid %d: %d unclosed B span(s)", l.pid, l.tid, d)
		}
	}
	fmt.Printf("tracecheck: ok: %d events across %d lanes\n", events, len(lanes))
	return nil
}
