// Command dibella runs the distributed long-read overlap + alignment
// pipeline on a FASTQ/FASTA read set and writes PAF alignment records.
//
// Usage:
//
//	dibella -in reads.fastq -out overlaps.paf -p 8 -seed-mode one
//	dibella -in reads.fastq -seed minimizer -window 5   # sparse minimizer seeding
//	dibella -in reads.fastq -platform cori -nodes 8     # modeled platform run
//	dibella -in reads.fastq -transport tcp -p 4         # 4 OS processes over TCP
//	dibella -in reads.fastq -hosts n1,n2:4 -p 8         # multi-host world
//	dibella -join n1:33441                              # enter a -hosts world
//	dibella -in reads.fastq -ckpt-dir ck -p 8           # snapshot stage boundaries
//	dibella -resume ck -p 4                             # restart (any world size)
//	dibella -in reads.fastq -serve-addr 127.0.0.1:7913  # resident query daemon
//
// With -serve-addr the process becomes a resident alignment daemon: the
// world stays formed after the load and build stages, and rank 0 answers
// FASTQ query batches (sent by dibella-query) against the resident index,
// with admission control and weighted query routing — see the README's
// "Serve mode" section and docs/SERVE.md.
//
// With -transport tcp the process acts as a launcher: it binds a loopback
// rendezvous port, forks P-1 copies of itself as worker processes (ranks
// 1..P-1, coordinates passed through DIBELLA_* environment variables —
// see the README's env-var contract), and participates as rank 0. The
// workers form a full TCP mesh with rank 0 and run the identical
// bulk-synchronous pipeline; each rank parses only its byte-range shard
// of the input (cooperative I/O) and output is byte-identical to a
// -transport mem run.
//
// With -hosts (or -hostfile) the world spans machines: the launcher
// assigns each host a contiguous rank range, binds public rendezvous and
// join ports, and prints the `dibella -join <addr>` command to run on
// each remote host. The launcher's resolved configuration ships to every
// joiner in the formation handshake, so join commands need no other
// flags; a joiner that passes conflicting config flags fails formation
// with a clear error. Host entries that resolve to loopback are
// simulated — the launcher forks their join agents locally — so a
// multi-host launch can be rehearsed on one machine. Schedulers that
// already place one process per rank skip all of this by exporting
// DIBELLA_RANK, DIBELLA_WORLD_SIZE, and DIBELLA_RENDEZVOUS directly.
//
// With -ckpt-dir the pipeline snapshots its state at stage boundaries
// (sharded read store after loading, k-mer DHT partitions after
// construction, overlap task sets after detection) into per-rank segment
// files plus a rank-0 manifest; -resume <dir> restarts from the latest
// complete snapshot — at any world size, re-sharding the state across
// the new ranks — with PAF output byte-identical to an uninterrupted
// run. See the README's "Checkpoint & resume" section.
//
// With -platform, the report additionally carries modeled per-stage times
// for the chosen machine (see -breakdown).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dibella/internal/fastq"
	"dibella/internal/kmer"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/paf"
	"dibella/internal/pipeline"
	"dibella/internal/serve"
	"dibella/internal/spmd"
	"dibella/internal/stats"
	"dibella/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "input FASTQ/FASTA file (required unless -resume)")
		out      = flag.String("out", "", "output PAF file (default: stdout)")
		p        = flag.Int("p", 8, "number of ranks (goroutines, or processes with -transport tcp)")
		k        = flag.Int("k", 0, "k-mer length (0: derive from -error-rate/-genome)")
		maxFreq  = flag.Int("m", 0, "high-frequency k-mer cutoff (0: derive)")
		seedMode = flag.String("seed-mode", "one", "seed exploration: one | dist | all")
		seed     = flag.String("seed", "exact", "seed extraction: exact (every k-mer) | minimizer ((w,k)-minimizers only; see -window)")
		window   = flag.Int("window", 5, "minimizer window w for -seed minimizer: ship only each window's minimum-hash k-mer, ~2/(w+1) of the k-mer volume")
		minDist  = flag.Int("min-dist", 1000, "min seed separation for -seed-mode dist")
		xdrop    = flag.Int("xdrop", 7, "x-drop threshold")
		minScore = flag.Int("min-score", 0, "drop alignments scoring below this")
		errRate  = flag.Float64("error-rate", 0.15, "per-base error rate (for parameter derivation)")
		coverage = flag.Float64("coverage", 30, "sequencing depth (for parameter derivation)")
		genome   = flag.Float64("genome", 4.64e6, "estimated genome size (for k derivation)")
		useHLL   = flag.Bool("hll", false, "size the Bloom filter via HyperLogLog")
		platform = flag.String("platform", "", "model a platform: cori | edison | titan | aws")
		nodes    = flag.Int("nodes", 1, "modeled node count (with -platform)")
		showBrk  = flag.Bool("breakdown", false, "print the per-stage time breakdown")

		asyncEx  = flag.Bool("async-exchange", true, "overlap exchanges with computation via non-blocking collectives (same output; disable for the paper's bulk-synchronous schedule)")
		allSeeds = flag.Bool("keep-all-seed-alignments", false, "emit one PAF row per explored seed instead of the best per (pair, strand)")

		replyChunk = flag.Int("reply-chunk", spmd.DefaultChunkBytes, "stream the alignment stage's read-reply exchange in per-peer chunks of this many bytes, aligning tasks as their sequences land (0: whole-payload reply; same output; requires -async-exchange)")
		replyDepth = flag.Int("reply-depth", spmd.DefaultStreamDepth, fmt.Sprintf("streamed reply chunk exchanges kept in flight, 1..%d (with -reply-chunk)", spmd.MaxStreamDepth))
		buildDepth = flag.Int("build-depth", 0, fmt.Sprintf("DHT-build exchange rounds kept in flight per pass, 1..%d (0: default 2; schedule-only, the built table is identical at every depth)", spmd.MaxStreamDepth))

		tracePath   = flag.String("trace", "", "record per-rank flight-recorder timelines and write a Chrome trace-event file here at teardown (open in Perfetto; observability-only: output is byte-identical with or without it)")
		metricsAddr = flag.String("metrics-addr", "", "serve mode: rank 0 serves Prometheus /metrics and /debug/pprof/ on this address")

		serveAddr     = flag.String("serve-addr", "", "serve mode: keep the formed world resident and answer FASTQ query batches on this frontend address (see the README's \"Serve mode\")")
		serveInflight = flag.Int("serve-max-inflight", 4, "serve mode: bound on admitted-but-unfinished batches; the excess is rejected queue-full")
		serveMaxReads = flag.Int("serve-max-batch-reads", 1024, "serve mode: per-batch read limit; larger batches are rejected too-large")
		serveTenants  = flag.String("serve-tenants", "", "serve mode: comma-separated tenant allow list (empty admits any tenant)")
		routeScorers  = flag.String("route-scorers", "", "serve mode: weighted routing profile as name:weight,... over queue-depth, mem-utilization, load-balance (default queue-depth:2,mem-utilization:2,load-balance:1)")
		serveBatches  = flag.Int("serve-batches", 0, "serve mode: exit after serving this many batches (0: serve until a client requests shutdown)")

		ckptDir   = flag.String("ckpt-dir", "", "snapshot pipeline state at stage boundaries into this directory (per-rank segments + rank-0 manifest)")
		ckptEvery = flag.String("ckpt-every", "", "comma-separated stage boundaries to snapshot: load, dht, overlap (default: all; with -ckpt-dir)")
		ckptAbort = flag.String("ckpt-abort-after", "", "abort the run right after this stage's snapshot commits — a kill switch for restart drills (with -ckpt-dir)")
		resume    = flag.String("resume", "", "restart from this checkpoint directory's latest complete snapshot (any -p; config comes from the snapshot manifest)")

		transport   = flag.String("transport", "mem", "spmd backend: mem (goroutine ranks) | tcp (one OS process per rank)")
		hosts       = flag.String("hosts", "", "comma-separated host[:ranks] list for a multi-host TCP world (first entry is this machine; loopback entries are simulated locally)")
		hostfile    = flag.String("hostfile", "", "file with one host[:ranks] per line (alternative to -hosts)")
		join        = flag.String("join", "", "enter a -hosts world: the launcher's join address printed at launch")
		formTimeout = flag.Duration("form-timeout", 30*time.Second, "world-formation deadline (dials, handshakes, host joins)")
	)
	flag.Parse()

	// A worker forked by a launcher (or placed by a scheduler) carries its
	// coordinates in DIBELLA_* env vars; -rank/-rendezvous style flags no
	// longer exist, so internal plumbing cannot be passed by hand.
	envBoot, isWorker, err := spmd.JoinBootstrapFromEnv()
	if err != nil {
		fatal(err)
	}
	joinAddr, hostIndex := *join, 0
	if joinAddr == "" {
		// Simulated host agents are forked with the join address in env.
		joinAddr = os.Getenv(spmd.EnvJoin)
		if idx := os.Getenv(spmd.EnvHostIndex); idx != "" {
			if hostIndex, err = strconv.Atoi(idx); err != nil {
				fatal(fmt.Errorf("%s=%q: %w", spmd.EnvHostIndex, idx, err))
			}
		}
	}
	// Joiners and env-placed workers may legitimately start with no config
	// flags at all: the launcher's configuration arrives in the formation
	// handshake (join agents) or the DIBELLA_CONFIG env blob (workers).
	remoteConfigured := isWorker || joinAddr != ""

	if *in == "" && *resume == "" && !remoteConfigured {
		usageError("-in is required (or -resume to restart from a snapshot)")
	}
	if *in != "" && *resume != "" {
		usageError("-in and -resume are mutually exclusive: a resumed run reads its input from the snapshot")
	}
	// Numeric flags are validated up front: a nonsense value otherwise
	// surfaces much later as an opaque panic (k=0 entering the k-mer
	// packer, p=0 dividing the read distribution) or a formation hang.
	switch {
	case *p < 1:
		usageError("-p must be at least 1 rank, got %d", *p)
	case *k < 0 || *k > kmer.MaxK:
		usageError("-k must be in [1,%d] (or 0 to derive it), got %d", kmer.MaxK, *k)
	case *maxFreq < 0:
		usageError("-m must be non-negative (0 derives it), got %d", *maxFreq)
	case *minDist < 1:
		usageError("-min-dist must be at least 1, got %d", *minDist)
	case *xdrop < 0:
		usageError("-xdrop must be non-negative, got %d", *xdrop)
	case *errRate < 0 || *errRate >= 1:
		usageError("-error-rate must be in [0,1), got %g", *errRate)
	case *coverage <= 0:
		usageError("-coverage must be positive, got %g", *coverage)
	case *genome <= 0:
		usageError("-genome must be positive, got %g", *genome)
	case *nodes < 1:
		usageError("-nodes must be at least 1, got %d", *nodes)
	case *replyChunk < 0:
		usageError("-reply-chunk must be non-negative (0 disables streaming), got %d", *replyChunk)
	case *replyDepth < 1 || *replyDepth > spmd.MaxStreamDepth:
		usageError("-reply-depth must be in [1,%d], got %d", spmd.MaxStreamDepth, *replyDepth)
	case *buildDepth < 0 || *buildDepth > spmd.MaxStreamDepth:
		usageError("-build-depth must be in [1,%d] (or 0 for the default), got %d", spmd.MaxStreamDepth, *buildDepth)
	case *serveInflight < 1:
		usageError("-serve-max-inflight must be at least 1, got %d", *serveInflight)
	case *serveMaxReads < 1:
		usageError("-serve-max-batch-reads must be at least 1, got %d", *serveMaxReads)
	case *serveBatches < 0:
		usageError("-serve-batches must be non-negative (0 serves until shutdown), got %d", *serveBatches)
	case *window < 1:
		usageError("-window must be at least 1 (1 degenerates to exact seeding), got %d", *window)
	case *formTimeout <= 0:
		usageError("-form-timeout must be positive, got %v", *formTimeout)
	}
	if *seed != "exact" && *seed != "minimizer" {
		usageError("unknown -seed %q (want exact or minimizer)", *seed)
	}
	if *transport != "mem" && *transport != "tcp" {
		fatal(fmt.Errorf("unknown -transport %q (want mem or tcp)", *transport))
	}
	if *hosts != "" && *hostfile != "" {
		fatal(fmt.Errorf("-hosts and -hostfile are mutually exclusive"))
	}
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["window"] && *seed != "minimizer" {
		usageError("-window only applies with -seed minimizer")
	}
	if *serveAddr == "" {
		for _, name := range []string{"serve-max-inflight", "serve-max-batch-reads", "serve-tenants", "route-scorers", "serve-batches", "metrics-addr"} {
			if explicit[name] {
				usageError("-%s only applies in serve mode (set -serve-addr)", name)
			}
		}
	} else {
		// Serve mode keeps the formed world resident; the batch-only
		// features below are structurally incompatible with that.
		switch {
		case *resume != "":
			usageError("-serve-addr cannot restart from a snapshot: a serve index keeps singleton k-mers, which batch-mode snapshots prune")
		case *ckptDir != "":
			usageError("-serve-addr does not snapshot; drop -ckpt-dir")
		case *seed == "minimizer":
			usageError("-serve-addr requires exact seeding: queries cannot be answered against a minimizer-sparsified index")
		}
	}
	if *resume != "" {
		if err := resumeFlagError(explicit); err != nil {
			usageError("%v", err)
		}
	}
	// Multi-host modes and env-placed workers are TCP by construction.
	if remoteConfigured || *hosts != "" || *hostfile != "" {
		if explicit["transport"] && *transport == "mem" {
			fatal(fmt.Errorf("-transport mem cannot form a multi-host world; drop it or use -transport tcp"))
		}
		*transport = "tcp"
	}

	// Resolve the host list (launcher only): explicit per-host counts may
	// determine the world size on their own.
	var hostList []spmd.HostSpec
	if !remoteConfigured && (*hosts != "" || *hostfile != "") {
		if *hosts != "" {
			hostList, err = spmd.ParseHostList(*hosts)
		} else {
			hostList, err = spmd.ParseHostFile(*hostfile)
		}
		if err != nil {
			fatal(err)
		}
		explicitRanks, allExplicit := 0, true
		for _, h := range hostList {
			explicitRanks += h.Ranks
			allExplicit = allExplicit && h.Ranks > 0
		}
		if allExplicit && !explicit["p"] {
			*p = explicitRanks
		}
		if hostList, err = spmd.AssignHostRanks(hostList, *p); err != nil {
			fatal(err)
		}
	}
	if isWorker {
		// The forked command line still carries the launcher's flags;
		// the env contract is authoritative for world shape.
		*p = envBoot.Size
	}

	cfg := pipeline.Config{
		K: *k, MaxFreq: *maxFreq,
		MinDist: *minDist, XDrop: *xdrop, MinAlignScore: *minScore,
		ErrorRate: *errRate, Coverage: *coverage, GenomeEst: *genome,
		UseHLL: *useHLL, KeepAlignments: true,
		KeepAllSeedAlignments: *allSeeds,
		BuildDepth:            *buildDepth,
		// The resident index must keep singletons (and high-frequency
		// tombstones): a query occurrence can lift an indexed singleton to
		// a reportable pair.
		KeepSingletons: *serveAddr != "",
	}
	// Schedule selection: bulk-synchronous when -async-exchange=false,
	// streamed reply (the default) when -reply-chunk > 0, plain async
	// otherwise. Output is byte-identical across all three.
	switch {
	case !*asyncEx:
		if explicit["reply-chunk"] && *replyChunk > 0 {
			usageError("-reply-chunk streams over non-blocking exchanges; drop it or re-enable -async-exchange")
		}
		cfg.Exchange = pipeline.ExchangeSync
	case *replyChunk > 0:
		cfg.Exchange = pipeline.ExchangeStreamed
		cfg.ReplyChunk = *replyChunk
		cfg.ReplyDepth = *replyDepth
	default:
		cfg.Exchange = pipeline.ExchangeAsync
	}
	switch *seedMode {
	case "one":
		cfg.SeedMode = overlap.OneSeed
	case "dist":
		cfg.SeedMode = overlap.MinDistance
	case "all":
		cfg.SeedMode = overlap.AllSeeds
	default:
		fatal(fmt.Errorf("unknown -seed-mode %q", *seedMode))
	}
	// Seed extraction: minimizer mode ships only (w,k)-minimizers through
	// both DHT build passes, cutting exchange volume to ~2/(w+1) of exact
	// seeding at a small recall cost (see the README's "Seeding modes").
	if *seed == "minimizer" {
		cfg.MinimizerWindow = *window
	}

	params := &runParams{
		In: *in, Platform: *platform, Nodes: *nodes,
		CkptDir: *ckptDir, CkptEvery: *ckptEvery, CkptAbortAfter: *ckptAbort,
		Resume: *resume, Trace: *tracePath, Cfg: cfg,
		Serve: serveParams{
			Enabled: *serveAddr != "", Addr: *serveAddr,
			MaxInflight: *serveInflight, MaxBatchReads: *serveMaxReads,
			Tenants: *serveTenants, Scorers: *routeScorers,
			MaxBatches: *serveBatches, MetricsAddr: *metricsAddr,
		},
	}
	// Checkpoint flag validation (stage-name typos) should beat forking.
	if _, err := params.ckptOptions(); err != nil {
		usageError("%v", err)
	}
	// Likewise the routing profile: a scorer typo fails at startup.
	if _, err := params.serveOptions(); err != nil {
		usageError("%v", err)
	}
	// An env-contract worker whose parent shipped the launcher's config (a
	// join agent's forked rank) adopts it wholesale: its own command line
	// is the agent's, possibly just `-join <addr>`.
	if blob, ok, err := spmd.ConfigFromEnv(); err != nil {
		fatal(err)
	} else if ok {
		adopted, err := decodeRunParams(blob)
		if err != nil {
			fatal(err)
		}
		params = adopted
	}
	// Resolve the platform early (flag errors should beat any forking);
	// the model itself is shaped per world size, which TCP processes may
	// only learn at world formation (join agents), so it is built later.
	if _, err := params.platform(); err != nil {
		fatal(err)
	}
	// Arm the flight recorder before any rank starts. Forked TCP workers
	// re-exec this command line (so they arm too); join agents learn the
	// launcher's trace path only at formation and arm in runTCP.
	if params.Trace != "" {
		trace.Enable(trace.DefaultCapacity)
	}

	if *transport == "mem" {
		if params.Serve.Enabled {
			runServeMem(params, *p)
			return
		}
		runMem(params, *p, *out, *showBrk)
		return
	}

	// TCP path: pick the bootstrap that matches how this process was
	// started, form the world, and run the pipeline with cooperative
	// sharded loading (or snapshot loading under -resume).
	var boot spmd.Bootstrap
	switch {
	case isWorker:
		envBoot.Timeout = pickTimeout(envBoot.Timeout, *formTimeout)
		boot = envBoot
	case joinAddr != "":
		boot = &spmd.HostJoinBootstrap{Addr: joinAddr, HostIndex: hostIndex, Timeout: *formTimeout}
	case hostList != nil:
		blob, err := params.encode()
		if err != nil {
			fatal(err)
		}
		boot = &spmd.HostListBootstrap{Hosts: hostList, Timeout: *formTimeout, ConfigBlob: blob}
	default:
		boot = &spmd.ForkBootstrap{Size: *p, Timeout: *formTimeout}
	}
	rep, store, rank, err := runTCP(boot, params, explicit)
	if err != nil {
		fatalRun(err)
	}
	if rank != 0 || rep == nil {
		return // workers, join agents, and serve runs: no batch PAF output
	}
	writeTrace(params.Trace, rep.Trace)
	writeOutput(rep, rep.PAFRecordsFromStore(store), *out, *showBrk)
}

// platform resolves the params' modeled platform (nil when unset).
func (p *runParams) platform() (*machine.Platform, error) {
	if p.Platform == "" {
		return nil, nil
	}
	pv, err := machine.PlatformByName(p.Platform)
	if err != nil {
		return nil, err
	}
	return &pv, nil
}

// model builds the platform model shaped for a world of size ranks (nil
// when no platform was requested).
func (p *runParams) model(ranks int, announce bool) (*machine.Model, error) {
	plat, err := p.platform()
	if err != nil {
		return nil, err
	}
	if plat == nil {
		return nil, nil
	}
	mdl, err := machine.NewModelScaled(*plat, p.Nodes, ranks)
	if err != nil {
		return nil, err
	}
	if announce {
		fmt.Fprintf(os.Stderr, "modeling %s, %d nodes (%d ranks) with %d ranks\n",
			plat.Name, p.Nodes, mdl.RealRanks(), ranks)
	}
	return mdl, nil
}

// runMem executes the run on p in-process goroutine ranks.
func runMem(params *runParams, p int, outPath string, showBrk bool) {
	mdl, err := params.model(p, true)
	if err != nil {
		fatal(err)
	}
	ckOpts, err := params.ckptOptions()
	if err != nil {
		fatal(err)
	}
	if params.Resume != "" {
		rep, store, err := pipeline.ExecuteResume(p, mdl, params.Resume, params.scheduleMutator(), ckOpts)
		if err != nil {
			fatalRun(err)
		}
		fmt.Fprintf(os.Stderr, "resumed %s: %s\n", params.Resume, store.Stats())
		writeTrace(params.Trace, rep.Trace)
		writeOutput(rep, rep.PAFRecordsFromStore(store), outPath, showBrk)
		return
	}
	reads, err := fastq.ReadFile(params.In)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %s: %s\n", params.In, fastq.Summarize(reads))
	var rep *pipeline.Report
	if ckOpts != nil {
		rep, err = pipeline.ExecuteCkpt(p, mdl, reads, params.Cfg, *ckOpts)
	} else {
		rep, err = pipeline.Execute(p, mdl, reads, params.Cfg)
	}
	if err != nil {
		fatalRun(err)
	}
	writeTrace(params.Trace, rep.Trace)
	writeOutput(rep, rep.PAFRecords(reads), outPath, showBrk)
}

// runServeMem forms the world on p in-process goroutine ranks and runs
// the resident daemon until it serves its batch budget or a client
// requests shutdown.
func runServeMem(params *runParams, p int) {
	mdl, err := params.model(p, true)
	if err != nil {
		fatal(err)
	}
	reads, err := fastq.ReadFile(params.In)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %s: %s\n", params.In, fastq.Summarize(reads))
	var comm spmd.CommModel
	if mdl != nil {
		comm = mdl
	}
	err = spmd.RunWithModel(p, comm, func(c *spmd.Comm) error {
		store := fastq.NewReadStore(reads, c.Size())
		return serveWorld(c, mdl, store, params)
	})
	if err != nil {
		fatalRun(err)
	}
}

// serveWorld is the collective serve body shared by both transports:
// form the resident world, run the daemon, and print rank 0's lifetime
// stats when it exits.
func serveWorld(c *spmd.Comm, mdl *machine.Model, store *fastq.ReadStore, params *runParams) error {
	opts, err := params.serveOptions()
	if err != nil {
		return err // validated at startup; unreachable for forked ranks too
	}
	if c.Rank() == 0 {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	w, err := pipeline.FormWorld(c, mdl, store, params.Cfg)
	if err != nil {
		return err
	}
	st, err := serve.Serve(w, opts)
	if err != nil {
		return err
	}
	if c.Rank() == 0 {
		fmt.Fprintf(os.Stderr, "serve: done: served=%d rejected=%d routed=%v modeled=%.4fs\n",
			st.Served, st.Rejected, st.RoutedPerRank, st.VirtualSeconds)
	}
	// The teardown trace gather is itself collective, so every rank calls
	// it; only rank 0 receives the buffers and writes the file.
	if trace.Enabled() {
		writeTrace(params.Trace, pipeline.GatherTrace(c))
	}
	return nil
}

// pickTimeout prefers the env-propagated formation deadline over the
// flag's (inherited, launcher-side) value.
func pickTimeout(env, flag time.Duration) time.Duration {
	if env > 0 {
		return env
	}
	return flag
}

// runTCP forms this process's world endpoint via the bootstrap, adopts
// the launcher's shipped configuration when one arrived in the
// formation handshake (join agents; explicit conflicting flags fail
// here), runs the pipeline collectively with cooperative sharded input
// loading — or snapshot loading under -resume — and reaps whatever the
// bootstrap forked. rank is this process's rank in the world (-1 if
// formation failed). The platform model is shaped to the formed world's
// size — a join agent or env worker learns that size only here, not
// from its own flags.
func runTCP(boot spmd.Bootstrap, params *runParams, explicit map[string]bool) (
	*pipeline.Report, *fastq.ReadStore, int, error) {

	tr, err := spmd.Connect(boot)
	if err != nil {
		return nil, nil, -1, boot.Finish(err)
	}
	rank := tr.Rank()
	bail := func(err error) (*pipeline.Report, *fastq.ReadStore, int, error) {
		tr.Abort()
		tr.Close()
		return nil, nil, rank, boot.Finish(err)
	}
	// Config shipping: a join agent receives the launcher's resolved
	// configuration with its rank assignment. Explicit flags on the join
	// command line must agree with it — a silently divergent rank would
	// corrupt the collective run.
	if hjb, ok := boot.(*spmd.HostJoinBootstrap); ok && len(hjb.ReceivedConfig) > 0 {
		shipped, err := decodeRunParams(hjb.ReceivedConfig)
		if err != nil {
			return bail(err)
		}
		if conflicts := configFlagConflicts(explicit, params, shipped); len(conflicts) > 0 {
			err := fmt.Errorf("join flags conflict with the launcher's configuration (drop them or make them match):\n  %s",
				strings.Join(conflicts, "\n  "))
			return bail(err)
		}
		params = shipped
		// A join agent learns the launcher wants tracing only here, after
		// formation — arm before any rank's pipeline starts recording.
		if params.Trace != "" {
			trace.Enable(trace.DefaultCapacity)
		}
	}
	mdl, err := params.model(tr.Size(), rank == 0)
	if err != nil {
		// Deterministic in (platform, nodes, size), so every rank fails
		// identically; abort just backstops a partial world.
		return bail(err)
	}
	ckOpts, err := params.ckptOptions()
	if err != nil {
		return bail(err)
	}
	var comm spmd.CommModel
	if mdl != nil {
		comm = mdl
	}
	var rep *pipeline.Report
	var store *fastq.ReadStore
	runErr := spmd.RunTransport(tr, comm, func(c *spmd.Comm) error {
		if params.Resume != "" {
			r, s, err := pipeline.ResumeComm(c, mdl, params.Resume, params.scheduleMutator(), ckOpts)
			if err != nil {
				return err
			}
			rep, store = r, s
			if c.Rank() == 0 {
				fmt.Fprintf(os.Stderr, "resumed %s: %s\n", params.Resume, s.Stats())
			}
			return nil
		}
		s, err := pipeline.LoadStore(c, params.In)
		if err != nil {
			return err
		}
		store = s
		if c.Rank() == 0 {
			fmt.Fprintf(os.Stderr, "loaded %s cooperatively: %s (rank 0 parsed %d bytes)\n",
				params.In, s.Stats(), s.ParsedBytes)
		}
		if params.Serve.Enabled {
			return serveWorld(c, mdl, s, params) // rep stays nil: no batch PAF
		}
		var r *pipeline.Report
		if ckOpts != nil {
			r, err = pipeline.ExecuteCommCkpt(c, mdl, s, params.Cfg, *ckOpts)
		} else {
			r, err = pipeline.ExecuteComm(c, mdl, s, params.Cfg)
		}
		rep = r
		return err
	})
	return rep, store, rank, boot.Finish(runErr)
}

// writeTrace writes the gathered flight-recorder buffers as a Chrome
// trace-event file. A no-op when tracing is off or on ranks that did not
// receive the gather (everyone but rank 0).
func writeTrace(path string, ranks []trace.RankEvents) {
	if path == "" || ranks == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	werr := trace.WriteChrome(f, ranks)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fatal(werr)
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %s (%d ranks; open in Perfetto or chrome://tracing)\n", path, len(ranks))
}

// writeOutput prints the run summary (and breakdown) and writes the PAF
// stream.
func writeOutput(rep *pipeline.Report, recs []paf.Record, outPath string, breakdown bool) {
	fmt.Fprintln(os.Stderr, rep.Summary())
	if breakdown {
		printBreakdown(rep)
	}
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := paf.Write(w, recs); err != nil {
		fatal(err)
	}
}

func printBreakdown(rep *pipeline.Report) {
	// "exch bytes" is the stage's total all-to-all payload across ranks —
	// the column to watch when comparing -seed minimizer against exact
	// seeding, since minimizers shrink wire volume, not stage structure.
	// "peak mem" is the largest single rank's resident bytes measured at
	// the stage boundary — the number that decides whether a problem fits
	// a machine, which per-rank averages hide.
	headers := []string{"stage", "wall", "modeled s", "exchange s", "overlapped s", "hidden", "exch bytes", "peak mem"}
	var rows [][]string
	for _, s := range pipeline.Stages {
		hidden := "-"
		if ex := rep.StageExchangeVirtual(s); ex > 0 {
			hidden = fmt.Sprintf("%.0f%%", rep.StageOverlapVirtual(s)/ex*100)
		}
		peak := "-"
		if m := rep.StageMemPeak(s); m > 0 {
			peak = fmt.Sprintf("%d", m)
		}
		rows = append(rows, []string{
			string(s),
			rep.StageWall(s).String(),
			fmt.Sprintf("%.4f", rep.StageVirtual(s)),
			fmt.Sprintf("%.4f", rep.StageExchangeVirtual(s)),
			fmt.Sprintf("%.4f", rep.StageOverlapVirtual(s)),
			hidden,
			fmt.Sprintf("%d", rep.StageExchangeBytes(s)),
			peak,
		})
	}
	rows = append(rows, []string{
		"total", "", "", "", "", "", fmt.Sprintf("%d", rep.ExchangeBytes()), "",
	})
	fmt.Fprint(os.Stderr, stats.FormatTable(headers, rows))
	fmt.Fprintf(os.Stderr, "alignment load imbalance: %.3f (tasks %.4f)\n",
		rep.AlignImbalance(), rep.TaskImbalance())
	fmt.Fprintln(os.Stderr, pipeline.DescribeLoad(rep))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dibella:", err)
	os.Exit(1)
}

// fatalRun reports a pipeline failure, distinguishing the deliberate
// post-checkpoint abort (exit 3, so restart drills can assert on it)
// from real errors (exit 1).
func fatalRun(err error) {
	fmt.Fprintln(os.Stderr, "dibella:", err)
	if errors.Is(err, pipeline.ErrCkptAbort) {
		os.Exit(3)
	}
	os.Exit(1)
}

// usageError rejects bad flag values at startup with the message plus the
// flag reference, exiting with the conventional usage status.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dibella: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
