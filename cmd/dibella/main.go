// Command dibella runs the distributed long-read overlap + alignment
// pipeline on a FASTQ/FASTA read set and writes PAF alignment records.
//
// Usage:
//
//	dibella -in reads.fastq -out overlaps.paf -p 8 -seed-mode one
//	dibella -in reads.fastq -platform cori -nodes 8   # modeled platform run
//
// With -platform, the report additionally carries modeled per-stage times
// for the chosen machine (see -breakdown).
package main

import (
	"flag"
	"fmt"
	"os"

	"dibella/internal/fastq"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/paf"
	"dibella/internal/pipeline"
	"dibella/internal/stats"
)

func main() {
	var (
		in       = flag.String("in", "", "input FASTQ/FASTA file (required)")
		out      = flag.String("out", "", "output PAF file (default: stdout)")
		p        = flag.Int("p", 8, "number of ranks (goroutines)")
		k        = flag.Int("k", 0, "k-mer length (0: derive from -error-rate/-genome)")
		maxFreq  = flag.Int("m", 0, "high-frequency k-mer cutoff (0: derive)")
		seedMode = flag.String("seed-mode", "one", "seed exploration: one | dist | all")
		minDist  = flag.Int("min-dist", 1000, "min seed separation for -seed-mode dist")
		xdrop    = flag.Int("xdrop", 7, "x-drop threshold")
		minScore = flag.Int("min-score", 0, "drop alignments scoring below this")
		errRate  = flag.Float64("error-rate", 0.15, "per-base error rate (for parameter derivation)")
		coverage = flag.Float64("coverage", 30, "sequencing depth (for parameter derivation)")
		genome   = flag.Float64("genome", 4.64e6, "estimated genome size (for k derivation)")
		useHLL   = flag.Bool("hll", false, "size the Bloom filter via HyperLogLog")
		platform = flag.String("platform", "", "model a platform: cori | edison | titan | aws")
		nodes    = flag.Int("nodes", 1, "modeled node count (with -platform)")
		showBrk  = flag.Bool("breakdown", false, "print the per-stage time breakdown")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dibella: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	reads, err := fastq.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %s: %s\n", *in, fastq.Summarize(reads))

	cfg := pipeline.Config{
		K: *k, MaxFreq: *maxFreq,
		MinDist: *minDist, XDrop: *xdrop, MinAlignScore: *minScore,
		ErrorRate: *errRate, Coverage: *coverage, GenomeEst: *genome,
		UseHLL: *useHLL, KeepAlignments: true,
	}
	switch *seedMode {
	case "one":
		cfg.SeedMode = overlap.OneSeed
	case "dist":
		cfg.SeedMode = overlap.MinDistance
	case "all":
		cfg.SeedMode = overlap.AllSeeds
	default:
		fatal(fmt.Errorf("unknown -seed-mode %q", *seedMode))
	}

	var mdl *machine.Model
	if *platform != "" {
		plat, err := machine.PlatformByName(*platform)
		if err != nil {
			fatal(err)
		}
		mdl, err = machine.NewModelScaled(plat, *nodes, *p)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "modeling %s, %d nodes (%d ranks) with %d goroutine ranks\n",
			plat.Name, *nodes, mdl.RealRanks(), *p)
	}

	rep, err := pipeline.Execute(*p, mdl, reads, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, rep.Summary())

	if *showBrk {
		printBreakdown(rep)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := paf.Write(w, rep.PAFRecords(reads)); err != nil {
		fatal(err)
	}
}

func printBreakdown(rep *pipeline.Report) {
	headers := []string{"stage", "wall", "modeled s", "exchange s"}
	var rows [][]string
	for _, s := range pipeline.Stages {
		rows = append(rows, []string{
			string(s),
			rep.StageWall(s).String(),
			fmt.Sprintf("%.4f", rep.StageVirtual(s)),
			fmt.Sprintf("%.4f", rep.StageExchangeVirtual(s)),
		})
	}
	fmt.Fprint(os.Stderr, stats.FormatTable(headers, rows))
	fmt.Fprintf(os.Stderr, "alignment load imbalance: %.3f (tasks %.4f)\n",
		rep.AlignImbalance(), rep.TaskImbalance())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dibella:", err)
	os.Exit(1)
}
