// Command dibella runs the distributed long-read overlap + alignment
// pipeline on a FASTQ/FASTA read set and writes PAF alignment records.
//
// Usage:
//
//	dibella -in reads.fastq -out overlaps.paf -p 8 -seed-mode one
//	dibella -in reads.fastq -platform cori -nodes 8   # modeled platform run
//	dibella -in reads.fastq -transport tcp -p 4       # 4 OS processes over TCP
//
// With -transport tcp the process acts as a launcher: it binds a loopback
// rendezvous port, forks P-1 copies of itself as worker processes (ranks
// 1..P-1), and participates as rank 0. The workers form a full TCP mesh
// with rank 0 and run the identical bulk-synchronous pipeline, exchanging
// k-mers, overlap tasks, and read sequences over sockets instead of shared
// memory; output is byte-identical to a -transport mem run. The -rank and
// -rendezvous flags are the internal worker-mode plumbing the launcher
// uses and are not set by hand.
//
// With -platform, the report additionally carries modeled per-stage times
// for the chosen machine (see -breakdown).
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"

	"dibella/internal/fastq"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/paf"
	"dibella/internal/pipeline"
	"dibella/internal/spmd"
	"dibella/internal/stats"
)

func main() {
	var (
		in       = flag.String("in", "", "input FASTQ/FASTA file (required)")
		out      = flag.String("out", "", "output PAF file (default: stdout)")
		p        = flag.Int("p", 8, "number of ranks (goroutines, or processes with -transport tcp)")
		k        = flag.Int("k", 0, "k-mer length (0: derive from -error-rate/-genome)")
		maxFreq  = flag.Int("m", 0, "high-frequency k-mer cutoff (0: derive)")
		seedMode = flag.String("seed-mode", "one", "seed exploration: one | dist | all")
		minDist  = flag.Int("min-dist", 1000, "min seed separation for -seed-mode dist")
		xdrop    = flag.Int("xdrop", 7, "x-drop threshold")
		minScore = flag.Int("min-score", 0, "drop alignments scoring below this")
		errRate  = flag.Float64("error-rate", 0.15, "per-base error rate (for parameter derivation)")
		coverage = flag.Float64("coverage", 30, "sequencing depth (for parameter derivation)")
		genome   = flag.Float64("genome", 4.64e6, "estimated genome size (for k derivation)")
		useHLL   = flag.Bool("hll", false, "size the Bloom filter via HyperLogLog")
		platform = flag.String("platform", "", "model a platform: cori | edison | titan | aws")
		nodes    = flag.Int("nodes", 1, "modeled node count (with -platform)")
		showBrk  = flag.Bool("breakdown", false, "print the per-stage time breakdown")

		asyncEx  = flag.Bool("async-exchange", true, "overlap exchanges with computation via non-blocking collectives (same output; disable for the paper's bulk-synchronous schedule)")
		allSeeds = flag.Bool("keep-all-seed-alignments", false, "emit one PAF row per explored seed instead of the best per (pair, strand)")

		transport  = flag.String("transport", "mem", "spmd backend: mem (goroutine ranks) | tcp (one OS process per rank)")
		rank       = flag.Int("rank", -1, "internal: this worker process's rank (set by the tcp launcher)")
		rendezvous = flag.String("rendezvous", "", "internal: rank-0 rendezvous address (set by the tcp launcher)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dibella: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if *transport != "mem" && *transport != "tcp" {
		fatal(fmt.Errorf("unknown -transport %q (want mem or tcp)", *transport))
	}
	// Worker processes report through rank 0; keep their stderr quiet.
	chatty := *rank <= 0

	reads, err := fastq.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	if chatty {
		fmt.Fprintf(os.Stderr, "loaded %s: %s\n", *in, fastq.Summarize(reads))
	}

	cfg := pipeline.Config{
		K: *k, MaxFreq: *maxFreq,
		MinDist: *minDist, XDrop: *xdrop, MinAlignScore: *minScore,
		ErrorRate: *errRate, Coverage: *coverage, GenomeEst: *genome,
		UseHLL: *useHLL, KeepAlignments: true,
		KeepAllSeedAlignments: *allSeeds,
	}
	if !*asyncEx {
		cfg.Exchange = pipeline.ExchangeSync
	}
	switch *seedMode {
	case "one":
		cfg.SeedMode = overlap.OneSeed
	case "dist":
		cfg.SeedMode = overlap.MinDistance
	case "all":
		cfg.SeedMode = overlap.AllSeeds
	default:
		fatal(fmt.Errorf("unknown -seed-mode %q", *seedMode))
	}

	var mdl *machine.Model
	if *platform != "" {
		plat, err := machine.PlatformByName(*platform)
		if err != nil {
			fatal(err)
		}
		mdl, err = machine.NewModelScaled(plat, *nodes, *p)
		if err != nil {
			fatal(err)
		}
		if chatty {
			fmt.Fprintf(os.Stderr, "modeling %s, %d nodes (%d ranks) with %d %s ranks\n",
				plat.Name, *nodes, mdl.RealRanks(), *p, *transport)
		}
	}

	var rep *pipeline.Report
	switch {
	case *transport == "mem":
		rep, err = pipeline.Execute(*p, mdl, reads, cfg)
	case *rank >= 0:
		rep, err = runTCPWorker(*rank, *p, *rendezvous, nil, mdl, reads, cfg)
	default:
		rep, err = runTCPLauncher(*p, mdl, reads, cfg)
	}
	if err != nil {
		fatal(err)
	}
	if *rank > 0 {
		return // workers: rank 0 owns all output
	}
	fmt.Fprintln(os.Stderr, rep.Summary())

	if *showBrk {
		printBreakdown(rep)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := paf.Write(w, rep.PAFRecords(reads)); err != nil {
		fatal(err)
	}
}

// runTCPWorker joins the TCP world as one rank and runs the pipeline
// collectively. ln, when non-nil, is the launcher's pre-bound rendezvous
// listener (rank 0 only).
func runTCPWorker(rank, p int, rendezvous string, ln net.Listener, mdl *machine.Model,
	reads []*fastq.Record, cfg pipeline.Config) (*pipeline.Report, error) {

	if rendezvous == "" {
		return nil, fmt.Errorf("tcp worker mode needs -rendezvous")
	}
	tr, err := spmd.DialTCP(spmd.TCPConfig{
		Rank: rank, Size: p, Rendezvous: rendezvous, Listener: ln,
	})
	if err != nil {
		return nil, err
	}
	var comm spmd.CommModel
	if mdl != nil {
		comm = mdl
	}
	store := fastq.NewReadStore(reads, p)
	var rep *pipeline.Report
	err = spmd.RunTransport(tr, comm, func(c *spmd.Comm) error {
		r, err := pipeline.ExecuteComm(c, mdl, store, cfg)
		rep = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// runTCPLauncher binds the rendezvous port, forks ranks 1..p-1 as copies
// of this binary, and participates as rank 0. It returns rank 0's report
// once every worker has exited cleanly.
func runTCPLauncher(p int, mdl *machine.Model, reads []*fastq.Record,
	cfg pipeline.Config) (*pipeline.Report, error) {

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("binding rendezvous port: %w", err)
	}
	addr := ln.Addr().String()
	exe, err := os.Executable()
	if err != nil {
		ln.Close()
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "tcp transport: launching %d worker processes (rendezvous %s)\n", p-1, addr)
	workers := make([]*exec.Cmd, 0, p-1)
	for r := 1; r < p; r++ {
		args := append(append([]string{}, os.Args[1:]...),
			"-rank", strconv.Itoa(r), "-rendezvous", addr)
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stderr // a worker never owns the PAF stream
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			ln.Close()
			reapWorkers(workers)
			return nil, fmt.Errorf("starting worker rank %d: %w", r, err)
		}
		workers = append(workers, cmd)
	}

	rep, runErr := runTCPWorker(0, p, addr, ln, mdl, reads, cfg)
	for i, cmd := range workers {
		err := cmd.Wait()
		// When a worker fails, rank 0 typically unwinds first with the
		// generic ErrAborted; prefer the worker's own exit error so the
		// originating failure is what surfaces.
		if err != nil && (runErr == nil || errors.Is(runErr, spmd.ErrAborted)) {
			runErr = fmt.Errorf("worker rank %d: %w", i+1, err)
		}
	}
	return rep, runErr
}

// reapWorkers kills and waits out already-started workers after a launch
// failure so none linger.
func reapWorkers(workers []*exec.Cmd) {
	for _, cmd := range workers {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

func printBreakdown(rep *pipeline.Report) {
	headers := []string{"stage", "wall", "modeled s", "exchange s", "overlapped s"}
	var rows [][]string
	for _, s := range pipeline.Stages {
		rows = append(rows, []string{
			string(s),
			rep.StageWall(s).String(),
			fmt.Sprintf("%.4f", rep.StageVirtual(s)),
			fmt.Sprintf("%.4f", rep.StageExchangeVirtual(s)),
			fmt.Sprintf("%.4f", rep.StageOverlapVirtual(s)),
		})
	}
	fmt.Fprint(os.Stderr, stats.FormatTable(headers, rows))
	fmt.Fprintf(os.Stderr, "alignment load imbalance: %.3f (tasks %.4f)\n",
		rep.AlignImbalance(), rep.TaskImbalance())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dibella:", err)
	os.Exit(1)
}
