package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"dibella/internal/ckpt"
	"dibella/internal/pipeline"
	"dibella/internal/serve"
)

// runParams is the resolved run configuration: everything a rank needs
// to execute the pipeline, independent of how it learned it (its own
// flags, the launcher's formation handshake, or the parent's env blob).
//
// It is the payload of config shipping: a `-hosts` launcher serializes
// its runParams into the world-formation handshake, so `dibella -join
// <addr>` needs no other flags — and a joiner that *does* pass explicit
// config flags has them checked against the launcher's values, failing
// formation on a mismatch instead of running a silently divergent rank.
type runParams struct {
	In             string `json:"in"`
	Platform       string `json:"platform,omitempty"`
	Nodes          int    `json:"nodes"`
	CkptDir        string `json:"ckpt_dir,omitempty"`
	CkptEvery      string `json:"ckpt_every,omitempty"`
	CkptAbortAfter string `json:"ckpt_abort_after,omitempty"`
	Resume         string `json:"resume,omitempty"`
	// Trace ships with the config (not in outputAffectingFlags): tracing
	// is observability-only, but every rank must record for the teardown
	// gather to assemble a full timeline.
	Trace string          `json:"trace,omitempty"`
	Serve serveParams     `json:"serve"`
	Cfg   pipeline.Config `json:"pipeline"`
}

// serveParams is serve mode's slice of the run configuration. Only rank 0
// opens the frontend, but the whole struct ships with the rest of the
// config so every rank agrees the run is a serve run (and a joiner's
// conflicting serve flags fail formation like any other config flag).
type serveParams struct {
	Enabled       bool   `json:"enabled,omitempty"`
	Addr          string `json:"addr,omitempty"`
	MaxInflight   int    `json:"max_inflight,omitempty"`
	MaxBatchReads int    `json:"max_batch_reads,omitempty"`
	Tenants       string `json:"tenants,omitempty"`
	Scorers       string `json:"scorers,omitempty"`
	MaxBatches    int    `json:"max_batches,omitempty"`
	MetricsAddr   string `json:"metrics_addr,omitempty"`
}

// serveOptions translates the serve params into daemon options,
// validating the routing profile and tenant list (flag typos should fail
// at startup, before any forking or world formation).
func (p *runParams) serveOptions() (serve.Options, error) {
	scorers, err := serve.ParseScorerConfigs(p.Serve.Scorers)
	if err != nil {
		return serve.Options{}, fmt.Errorf("-route-scorers: %w", err)
	}
	var tenants []string
	for _, t := range strings.Split(p.Serve.Tenants, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tenants = append(tenants, t)
		}
	}
	return serve.Options{
		Addr:          p.Serve.Addr,
		MaxInflight:   p.Serve.MaxInflight,
		MaxBatchReads: p.Serve.MaxBatchReads,
		Tenants:       tenants,
		Scorers:       scorers,
		MaxBatches:    p.Serve.MaxBatches,
		MetricsAddr:   p.Serve.MetricsAddr,
	}, nil
}

// encode serializes the params for the formation handshake / env blob.
func (p *runParams) encode() ([]byte, error) { return json.Marshal(p) }

// decodeRunParams parses a shipped blob.
func decodeRunParams(blob []byte) (*runParams, error) {
	var p runParams
	if err := json.Unmarshal(blob, &p); err != nil {
		return nil, fmt.Errorf("shipped run config: %w", err)
	}
	return &p, nil
}

// configFlagFields maps every config-bearing flag name to the runParams
// field it resolves into, for comparing a joiner's explicit flags
// against the launcher's shipped config. Flags that only shape the local
// process (-out, -breakdown, -form-timeout, -transport, -p, -join,
// -hosts, -hostfile) are deliberately absent: they may differ per host.
var configFlagFields = map[string]func(*runParams) any{
	"in":       func(p *runParams) any { return p.In },
	"platform": func(p *runParams) any { return p.Platform },
	"nodes":    func(p *runParams) any { return p.Nodes },

	"ckpt-dir":         func(p *runParams) any { return p.CkptDir },
	"ckpt-every":       func(p *runParams) any { return p.CkptEvery },
	"ckpt-abort-after": func(p *runParams) any { return p.CkptAbortAfter },
	"resume":           func(p *runParams) any { return p.Resume },
	"trace":            func(p *runParams) any { return p.Trace },

	"k":         func(p *runParams) any { return p.Cfg.K },
	"m":         func(p *runParams) any { return p.Cfg.MaxFreq },
	"seed-mode": func(p *runParams) any { return p.Cfg.SeedMode },
	"min-dist":  func(p *runParams) any { return p.Cfg.MinDist },
	"xdrop":     func(p *runParams) any { return p.Cfg.XDrop },
	"min-score": func(p *runParams) any { return p.Cfg.MinAlignScore },

	// -seed and -window both resolve into MinimizerWindow (0: exact;
	// >1: minimizer seeding at that window).
	"seed":   func(p *runParams) any { return p.Cfg.MinimizerWindow },
	"window": func(p *runParams) any { return p.Cfg.MinimizerWindow },

	"error-rate": func(p *runParams) any { return p.Cfg.ErrorRate },
	"coverage":   func(p *runParams) any { return p.Cfg.Coverage },
	"genome":     func(p *runParams) any { return p.Cfg.GenomeEst },
	"hll":        func(p *runParams) any { return p.Cfg.UseHLL },

	"async-exchange":           func(p *runParams) any { return p.Cfg.Exchange },
	"reply-chunk":              func(p *runParams) any { return p.Cfg.ReplyChunk },
	"reply-depth":              func(p *runParams) any { return p.Cfg.ReplyDepth },
	"build-depth":              func(p *runParams) any { return p.Cfg.BuildDepth },
	"keep-all-seed-alignments": func(p *runParams) any { return p.Cfg.KeepAllSeedAlignments },

	"serve-addr":            func(p *runParams) any { return p.Serve.Addr },
	"serve-max-inflight":    func(p *runParams) any { return p.Serve.MaxInflight },
	"serve-max-batch-reads": func(p *runParams) any { return p.Serve.MaxBatchReads },
	"serve-tenants":         func(p *runParams) any { return p.Serve.Tenants },
	"route-scorers":         func(p *runParams) any { return p.Serve.Scorers },
	"serve-batches":         func(p *runParams) any { return p.Serve.MaxBatches },
	"metrics-addr":          func(p *runParams) any { return p.Serve.MetricsAddr },
}

// configFlagConflicts compares the flags this process's user explicitly
// set against the launcher's shipped configuration. Explicit flags that
// agree are fine (the common case for simulated host agents, which
// inherit the launcher's full command line); disagreements are returned
// one per flag, sorted for a deterministic error message.
func configFlagConflicts(explicit map[string]bool, local, shipped *runParams) []string {
	var conflicts []string
	for name, field := range configFlagFields {
		if !explicit[name] {
			continue
		}
		lv, sv := field(local), field(shipped)
		if lv != sv {
			conflicts = append(conflicts, fmt.Sprintf("-%s: this command says %v, launcher says %v", name, lv, sv))
		}
	}
	sort.Strings(conflicts)
	return conflicts
}

// outputAffectingFlags are the config flags that change the pipeline's
// output and are therefore meaningless with -resume (the snapshot's
// manifest is authoritative); passing one explicitly is rejected so the
// user learns the flag was not applied.
var outputAffectingFlags = []string{
	"in", "k", "m", "seed-mode", "seed", "window", "min-dist", "xdrop",
	"min-score", "error-rate", "coverage", "genome",
	"keep-all-seed-alignments",
}

// resumeFlagError reports the first explicitly-set flag that a -resume
// run cannot honor.
func resumeFlagError(explicit map[string]bool) error {
	for _, name := range outputAffectingFlags {
		if explicit[name] {
			return fmt.Errorf("-%s has no effect with -resume: the snapshot's manifest supplies the configuration (only scheduling flags like -reply-chunk may change on resume)", name)
		}
	}
	return nil
}

// ckptOptions translates the checkpoint flags into pipeline options,
// validating stage names early (a typo should fail at startup, not after
// world formation).
func (p *runParams) ckptOptions() (*pipeline.CkptOptions, error) {
	if p.CkptDir == "" {
		if p.CkptEvery != "" || p.CkptAbortAfter != "" {
			return nil, fmt.Errorf("-ckpt-every/-ckpt-abort-after require -ckpt-dir")
		}
		return nil, nil
	}
	opts := &pipeline.CkptOptions{Dir: p.CkptDir, AbortAfter: p.CkptAbortAfter}
	if p.CkptEvery != "" && p.CkptEvery != "all" {
		for _, s := range strings.Split(p.CkptEvery, ",") {
			s = strings.TrimSpace(s)
			if ckpt.StageOrder(s) < 0 {
				return nil, fmt.Errorf("-ckpt-every: unknown stage %q (want load, dht, overlap, or all)", s)
			}
			opts.Stages = append(opts.Stages, s)
		}
	}
	if opts.AbortAfter != "" {
		if ckpt.StageOrder(opts.AbortAfter) < 0 {
			return nil, fmt.Errorf("-ckpt-abort-after: unknown stage %q (want load, dht, or overlap)", opts.AbortAfter)
		}
		if len(opts.Stages) > 0 {
			found := false
			for _, s := range opts.Stages {
				found = found || s == opts.AbortAfter
			}
			if !found {
				return nil, fmt.Errorf("-ckpt-abort-after %q is not among the -ckpt-every stages %q", opts.AbortAfter, p.CkptEvery)
			}
		}
	}
	return opts, nil
}

// scheduleMutator carries this command's scheduling knobs onto a resumed
// configuration. Only output-neutral fields are touched; the pipeline
// verifies that against the manifest's config hash regardless.
func (p *runParams) scheduleMutator() func(*pipeline.Config) {
	cfg := p.Cfg
	return func(c *pipeline.Config) {
		c.Exchange = cfg.Exchange
		c.ReplyChunk = cfg.ReplyChunk
		c.ReplyDepth = cfg.ReplyDepth
		c.BuildDepth = cfg.BuildDepth
		c.KeepAlignments = true // rank 0 writes PAF
	}
}
