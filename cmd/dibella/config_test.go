package main

import (
	"strings"
	"testing"

	"dibella/internal/overlap"
	"dibella/internal/pipeline"
)

func baseParams() *runParams {
	return &runParams{
		In: "reads.fastq", Platform: "cori", Nodes: 8,
		Cfg: pipeline.Config{
			K: 17, SeedMode: overlap.MinDistance, MinDist: 1000,
			ErrorRate: 0.15, Coverage: 30, GenomeEst: 4.64e6,
			Exchange: pipeline.ExchangeStreamed, ReplyChunk: 64 << 10, ReplyDepth: 2,
		},
	}
}

func TestRunParamsRoundtrip(t *testing.T) {
	p := baseParams()
	p.CkptDir, p.Resume = "ck", ""
	blob, err := p.encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeRunParams(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.In != p.In || back.Cfg.K != 17 || back.Cfg.Exchange != pipeline.ExchangeStreamed ||
		back.CkptDir != "ck" || back.Nodes != 8 {
		t.Errorf("roundtrip lost fields: %+v", back)
	}
	if _, err := decodeRunParams([]byte("{nope")); err == nil {
		t.Error("garbage blob accepted")
	}
}

func TestConfigFlagConflicts(t *testing.T) {
	shipped := baseParams()
	// Identical explicit flags (a simulated agent inheriting the
	// launcher's command line): no conflict.
	local := baseParams()
	explicit := map[string]bool{"in": true, "k": true, "seed-mode": true}
	if c := configFlagConflicts(explicit, local, shipped); len(c) != 0 {
		t.Errorf("matching flags flagged: %v", c)
	}
	// Divergent explicit flags: each reported.
	local.Cfg.K = 19
	local.In = "other.fastq"
	c := configFlagConflicts(explicit, local, shipped)
	if len(c) != 2 {
		t.Fatalf("conflicts = %v, want 2", c)
	}
	for _, msg := range c {
		if !strings.Contains(msg, "launcher says") {
			t.Errorf("conflict message %q lacks launcher value", msg)
		}
	}
	// The same divergence without the explicit flag: ignored (the joiner
	// just inherits the launcher's value).
	if c := configFlagConflicts(map[string]bool{"seed-mode": true}, local, shipped); len(c) != 0 {
		t.Errorf("implicit defaults flagged: %v", c)
	}
	// Per-host flags (out, transport, p) never conflict.
	if c := configFlagConflicts(map[string]bool{"out": true, "p": true}, local, shipped); len(c) != 0 {
		t.Errorf("per-host flags flagged: %v", c)
	}
}

func TestCkptOptionsValidation(t *testing.T) {
	p := baseParams()
	opts, err := p.ckptOptions()
	if err != nil || opts != nil {
		t.Errorf("no ckpt flags: opts=%v err=%v", opts, err)
	}
	p.CkptEvery = "dht"
	if _, err := p.ckptOptions(); err == nil {
		t.Error("-ckpt-every without -ckpt-dir accepted")
	}
	p.CkptDir = "ck"
	opts, err = p.ckptOptions()
	if err != nil || len(opts.Stages) != 1 || opts.Stages[0] != "dht" {
		t.Errorf("opts=%+v err=%v", opts, err)
	}
	p.CkptEvery = "load, overlap"
	opts, err = p.ckptOptions()
	if err != nil || len(opts.Stages) != 2 {
		t.Errorf("comma list: opts=%+v err=%v", opts, err)
	}
	p.CkptEvery = "all"
	opts, err = p.ckptOptions()
	if err != nil || len(opts.Stages) != 0 {
		t.Errorf("all: opts=%+v err=%v", opts, err)
	}
	p.CkptEvery = "bloom"
	if _, err := p.ckptOptions(); err == nil || !strings.Contains(err.Error(), "bloom") {
		t.Errorf("typo stage: %v", err)
	}
	p.CkptEvery = ""
	p.CkptAbortAfter = "nope"
	if _, err := p.ckptOptions(); err == nil {
		t.Error("bad -ckpt-abort-after accepted")
	}
}

func TestResumeFlagError(t *testing.T) {
	if err := resumeFlagError(map[string]bool{"p": true, "reply-chunk": true, "out": true}); err != nil {
		t.Errorf("schedule flags rejected: %v", err)
	}
	err := resumeFlagError(map[string]bool{"k": true})
	if err == nil || !strings.Contains(err.Error(), "-k") {
		t.Errorf("explicit -k with -resume: %v", err)
	}
}

func TestScheduleMutator(t *testing.T) {
	p := baseParams()
	p.Cfg.Exchange = pipeline.ExchangeSync
	cfg := pipeline.Config{Exchange: pipeline.ExchangeStreamed, ReplyChunk: 1, ReplyDepth: 1}
	p.scheduleMutator()(&cfg)
	if cfg.Exchange != pipeline.ExchangeSync || !cfg.KeepAlignments {
		t.Errorf("mutated cfg: %+v", cfg)
	}
}
