package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(runs map[string]float64) *snapshot {
	return &snapshot{Workload: "w", Platform: "p", Nodes: 8, SimRanks: 32, runs: runs}
}

func TestComparePerSchedule(t *testing.T) {
	prev := snap(map[string]float64{"sync": 1.0, "async": 0.8, "gone": 0.5})
	fresh := snap(map[string]float64{"sync": 1.05, "async": 0.79, "ckpt": 0.9})

	report, failed, err := compare(prev, fresh, "prev.json", "fresh.json", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// +5% on sync is within the 10% tolerance; the added and removed
	// schedules must be reported but never gate.
	if failed {
		t.Errorf("within-tolerance diff failed:\n%s", report)
	}
	for _, want := range []string{
		"sync", "async",
		"ckpt", "new schedule, no baseline",
		"gone", "missing from fresh",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// A >10% regression on a common schedule fails.
	fresh.runs["sync"] = 1.2
	report, failed, err = compare(prev, fresh, "prev.json", "fresh.json", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !failed || !strings.Contains(report, "REGRESSED") {
		t.Errorf("20%% regression passed:\n%s", report)
	}

	// An added schedule alone (no common ones) is an error, not a pass.
	if _, _, err := compare(snap(map[string]float64{"a": 1}), snap(map[string]float64{"b": 1}),
		"p", "f", 0.1); err == nil {
		t.Error("disjoint schedule sets accepted")
	}
}

func TestLoadSnapshotToleratesExtraSchedules(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	blob := `{
		"workload": "w", "platform": "p", "nodes": 8, "sim_ranks": 32,
		"sync": {"virtual_seconds": 1.5},
		"ckpt": {"virtual_seconds": 1.6, "extra_field": 3},
		"streamed_depth_sweep": [{"depth": 1, "virtual_seconds": 2.0}],
		"reads": 1200
	}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := loadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.runs) != 2 || s.runs["sync"] != 1.5 || s.runs["ckpt"] != 1.6 {
		t.Errorf("runs = %v", s.runs)
	}
}

func TestComparableGuardsJobShape(t *testing.T) {
	a := snap(map[string]float64{"sync": 1})
	b := snap(map[string]float64{"sync": 1})
	if err := a.comparable(b); err != nil {
		t.Errorf("identical shapes: %v", err)
	}
	b.Nodes = 16
	if err := a.comparable(b); err == nil {
		t.Error("node-count change accepted")
	}
}
