// Command benchcheck is the CI bench-regression gate: it compares a fresh
// dibella-bench snapshot against the latest committed BENCH_PR*.json and
// fails (exit 1) if any schedule's modeled virtual_seconds regressed by
// more than the tolerance. The modeled times are machine-independent, so
// a fresh CI run of unchanged code reproduces the committed numbers
// exactly; a drift beyond tolerance means a code change slowed a modeled
// hot path.
//
// Usage:
//
//	benchcheck -fresh BENCH_CI.json              # auto-discover the committed baseline
//	benchcheck -prev BENCH_PR4.json -fresh BENCH_CI.json
//
// The diff is strictly per-schedule (sync / async / streamed / ckpt /
// ...): only schedules present in both snapshots gate the build, so a
// fresh snapshot that *adds* a schedule (a new feature's run) passes
// with the addition reported as informational, and a schedule missing
// from the fresh snapshot is called out as a warning (lost coverage)
// without failing the gate. Identical schedule sets are not required.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		prev      = flag.String("prev", "", "committed baseline snapshot (default: highest-numbered BENCH_PR*.json in -dir)")
		fresh     = flag.String("fresh", "", "freshly generated snapshot (required)")
		dir       = flag.String("dir", ".", "directory to search for the committed baseline")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional virtual_seconds regression")
	)
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -fresh is required")
		flag.Usage()
		os.Exit(2)
	}
	prevPath := *prev
	if prevPath == "" {
		p, err := latestSnapshot(*dir)
		if err != nil {
			fatal(err)
		}
		prevPath = p
	}
	prevSnap, err := loadSnapshot(prevPath)
	if err != nil {
		fatal(err)
	}
	freshSnap, err := loadSnapshot(*fresh)
	if err != nil {
		fatal(err)
	}
	// Modeled times are only comparable on the same modeled job: a scale
	// or shape change must come with a regenerated committed baseline,
	// not slip through as a speedup or a spurious regression.
	if err := prevSnap.comparable(freshSnap); err != nil {
		fatal(fmt.Errorf("%s vs %s: %w (regenerate the committed baseline alongside the workload change)",
			prevPath, *fresh, err))
	}
	report, failed, err := compare(prevSnap, freshSnap, prevPath, *fresh, *tolerance)
	if err != nil {
		fatal(err)
	}
	fmt.Print(report)
	if failed {
		os.Exit(1)
	}
}

// compare diffs two comparable snapshots per schedule. Only schedules in
// both gate the result; additions and removals are reported but never
// fail the check.
func compare(prevSnap, freshSnap *snapshot, prevPath, freshPath string, tolerance float64) (string, bool, error) {
	prevRuns, freshRuns := prevSnap.runs, freshSnap.runs
	var common, added, missing []string
	for name := range prevRuns {
		if _, ok := freshRuns[name]; ok {
			common = append(common, name)
		} else {
			missing = append(missing, name)
		}
	}
	for name := range freshRuns {
		if _, ok := prevRuns[name]; !ok {
			added = append(added, name)
		}
	}
	if len(common) == 0 {
		return "", false, fmt.Errorf("no common schedules between %s and %s", prevPath, freshPath)
	}
	sort.Strings(common)
	sort.Strings(added)
	sort.Strings(missing)

	var b strings.Builder
	failed := false
	fmt.Fprintf(&b, "bench regression check: %s (baseline) vs %s (fresh), tolerance %.0f%%\n",
		prevPath, freshPath, tolerance*100)
	for _, name := range common {
		p, f := prevRuns[name], freshRuns[name]
		delta := (f - p) / p
		status := "ok"
		if delta > tolerance {
			status = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(&b, "  %-10s virtual_seconds %.6f -> %.6f (%+.1f%%) %s\n",
			name, p, f, delta*100, status)
	}
	for _, name := range added {
		fmt.Fprintf(&b, "  %-10s virtual_seconds %.6f (new schedule, no baseline to gate against)\n",
			name, freshRuns[name])
	}
	for _, name := range missing {
		fmt.Fprintf(&b, "  %-10s WARNING: present in baseline but missing from fresh snapshot (coverage lost?)\n",
			name)
	}
	return b.String(), failed, nil
}

// snapshot is the comparable content of one bench JSON: the workload
// identity plus every schedule's virtual_seconds.
type snapshot struct {
	Workload string `json:"workload"`
	Platform string `json:"platform"`
	Nodes    int    `json:"nodes"`
	SimRanks int    `json:"sim_ranks"`
	runs     map[string]float64
}

// comparable reports whether two snapshots priced the same modeled job.
func (s *snapshot) comparable(o *snapshot) error {
	switch {
	case s.Workload != o.Workload:
		return fmt.Errorf("workloads differ: %q vs %q", s.Workload, o.Workload)
	case s.Platform != o.Platform:
		return fmt.Errorf("platforms differ: %q vs %q", s.Platform, o.Platform)
	case s.Nodes != o.Nodes:
		return fmt.Errorf("modeled node counts differ: %d vs %d", s.Nodes, o.Nodes)
	case s.SimRanks != o.SimRanks:
		return fmt.Errorf("sim rank counts differ: %d vs %d", s.SimRanks, o.SimRanks)
	}
	return nil
}

// loadSnapshot extracts the workload identity and every schedule's
// virtual_seconds from a snapshot. The run decoding is schema-tolerant:
// any top-level object carrying a numeric "virtual_seconds" counts as a
// schedule, so older snapshots (sync/async only) and newer ones (plus
// streamed) compare on their intersection.
func loadSnapshot(path string) (*snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(blob, &top); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s.runs = make(map[string]float64)
	for name, raw := range top {
		var run struct {
			VirtualSeconds *float64 `json:"virtual_seconds"`
		}
		if err := json.Unmarshal(raw, &run); err != nil || run.VirtualSeconds == nil {
			continue // not a schedule object
		}
		if *run.VirtualSeconds <= 0 {
			return nil, fmt.Errorf("%s: schedule %q has non-positive virtual_seconds %v",
				path, name, *run.VirtualSeconds)
		}
		s.runs[name] = *run.VirtualSeconds
	}
	if len(s.runs) == 0 {
		return nil, fmt.Errorf("%s: no schedule runs with virtual_seconds found", path)
	}
	return &s, nil
}

var snapshotRe = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// latestSnapshot returns the highest-numbered committed BENCH_PR*.json.
func latestSnapshot(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := snapshotRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if n > bestN {
			bestN, best = n, filepath.Join(dir, e.Name())
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_PR*.json snapshot in %s", dir)
	}
	return best, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
