// Command dibella-bench regenerates the paper's evaluation: every table
// and figure (Tables 1-2, Figures 3-13) as text tables.
//
// Usage:
//
//	dibella-bench -experiment all                 # everything, quick scale
//	dibella-bench -experiment fig3 -scale 0.2     # one figure, bigger input
//	dibella-bench -list
//
// Scale 1.0 corresponds to the paper's full E. coli data sets; the default
// reduced scale reproduces curve shapes in minutes. See EXPERIMENTS.md for
// the recorded comparison against the paper.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dibella/internal/figures"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID or 'all'")
		scale      = flag.Float64("scale", 0.05, "genome scale factor in (0,1]")
		seed       = flag.Int64("seed", 1, "data-set generation seed")
		nodesFlag  = flag.String("nodes", "1,2,4,8,16,32", "comma-separated node counts")
		simRPN     = flag.Int("sim-ranks-per-node", 4, "goroutine ranks per modeled node")
		maxSim     = flag.Int("max-sim-ranks", 128, "cap on total goroutine ranks")
		anomaly    = flag.Bool("cori-anomaly", true, "inject the paper's Cori 16-node interference spike")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		benchOut   = flag.String("bench-out", "", "run the sync-vs-async exchange benchmark and write its JSON snapshot to this path (skips -experiment)")
	)
	flag.Parse()

	if *list {
		for _, id := range figures.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	nodeCounts, err := parseNodes(*nodesFlag)
	if err != nil {
		fatal(err)
	}
	o := figures.DefaultOptions()
	o.Scale = *scale
	o.Seed = *seed
	o.NodeCounts = nodeCounts
	o.SimRanksPerNode = *simRPN
	o.MaxSimRanks = *maxSim
	o.InjectCoriAnomaly = *anomaly
	if !*quiet {
		o.Progress = os.Stderr
	}

	if *benchOut != "" {
		res, err := figures.ExchangeBench(o)
		if err != nil {
			fatal(err)
		}
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*benchOut, blob, 0o644); err != nil {
			fatal(err)
		}
		os.Stdout.Write(blob)
		return
	}

	ids := figures.ExperimentIDs()
	if *experiment != "all" {
		ids = strings.Split(*experiment, ",")
	}
	for _, id := range ids {
		out, err := figures.RunExperiment(strings.TrimSpace(id), o)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
}

func parseNodes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad node count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dibella-bench:", err)
	os.Exit(1)
}
