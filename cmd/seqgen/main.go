// Command seqgen synthesizes long-read FASTQ data sets with a PacBio-like
// error model, standing in for the paper's E. coli inputs.
//
// Usage:
//
//	seqgen -preset 30x -scale 0.1 -out reads.fastq
//	seqgen -genome 1000000 -coverage 25 -mean-len 8000 -error-rate 0.12 -out reads.fastq
//
// The generator also writes the reference genome (FASTA) and, optionally,
// the ground-truth overlap pairs for recall evaluation.
package main

import (
	"flag"
	"fmt"
	"os"

	"dibella/internal/fastq"
	"dibella/internal/seqgen"
)

func main() {
	var (
		preset   = flag.String("preset", "", "data-set preset: 30x | 100x | 30x-sample")
		scale    = flag.Float64("scale", 0.05, "genome scale for presets, in (0,1]")
		genome   = flag.Int("genome", 100000, "genome length (without -preset)")
		coverage = flag.Float64("coverage", 30, "sequencing depth")
		meanLen  = flag.Int("mean-len", 10000, "mean read length")
		errRate  = flag.Float64("error-rate", 0.15, "per-base error rate")
		seed     = flag.Int64("seed", 42, "generation seed")
		prefix   = flag.String("name-prefix", "", "prepend this to every read name (e.g. \"q_\" for a serve query set)")
		out      = flag.String("out", "reads.fastq", "output FASTQ path")
		refOut   = flag.String("ref", "", "also write the reference genome (FASTA)")
		truthOut = flag.String("truth", "", "also write ground-truth overlap pairs (TSV)")
		minOv    = flag.Int("min-overlap", 2000, "minimum overlap for -truth pairs")
	)
	flag.Parse()

	var cfg seqgen.Config
	switch *preset {
	case "30x":
		cfg = seqgen.EColi30x(*scale, *seed)
	case "100x":
		cfg = seqgen.EColi100x(*scale, *seed)
	case "30x-sample":
		cfg = seqgen.EColi30xSample(*scale, *seed)
	case "":
		cfg = seqgen.Config{
			GenomeLen: *genome, Seed: *seed, Coverage: *coverage,
			MeanReadLen: *meanLen, ErrorRate: *errRate, BothStrands: true,
		}
	default:
		fatal(fmt.Errorf("unknown preset %q", *preset))
	}
	cfg.NamePrefix = *prefix

	ds, err := seqgen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if err := fastq.WriteFile(*out, ds.Reads); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %s\n", *out, ds.Stats())

	if *refOut != "" {
		ref := []*fastq.Record{{Name: "reference", Seq: ds.Genome}}
		f, err := os.Create(*refOut)
		if err != nil {
			fatal(err)
		}
		if err := fastq.WriteFasta(f, ref); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d bp reference\n", *refOut, len(ds.Genome))
	}
	if *truthOut != "" {
		f, err := os.Create(*truthOut)
		if err != nil {
			fatal(err)
		}
		pairs := ds.TrueOverlaps(*minOv)
		for _, p := range pairs {
			fmt.Fprintf(f, "%s\t%s\n", ds.Reads[p[0]].Name, ds.Reads[p[1]].Name)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d true overlap pairs (>= %d bp)\n",
			*truthOut, len(pairs), *minOv)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seqgen:", err)
	os.Exit(1)
}
