package main

// Table-driven fixture tests. Each package under testdata/src encodes its
// expected diagnostics as comments:
//
//	// want <analyzer>:"substring"      unsuppressed diagnostic on this line
//	// wantsup <analyzer>:"substring"   suppressed diagnostic on this line
//	// want(-1) <analyzer>:"substring"  diagnostic one line above
//
// The fixtures are real compiled packages, loaded through the same
// go list / export-data path as production runs and importing the real
// spmd / machine / ckpt packages, so the analyzers' type resolution is
// exercised end to end. They live under testdata/ precisely because go
// wildcards skip it: `dibella-lint ./...` never audits the
// intentionally-bad code, but the explicit import paths below still load.

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

const fixtureBase = "dibella/cmd/dibella-lint/testdata/src/"

type expectation struct {
	file       string
	line       int
	analyzer   string
	substr     string
	suppressed bool
	matched    bool
}

var wantRe = regexp.MustCompile(`^//\s*want(sup)?(?:\((-?\d+)\))?\s+(\w+):"([^"]*)"`)

// collectExpectations parses the // want comments of a loaded package.
func collectExpectations(t *testing.T, p *Pkg) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				offset := 0
				if m[2] != "" {
					var err error
					if offset, err = strconv.Atoi(m[2]); err != nil {
						t.Fatalf("%s:%d: bad want offset %q", pos.Filename, pos.Line, m[2])
					}
				}
				wants = append(wants, &expectation{
					file:       pos.Filename,
					line:       pos.Line + offset,
					analyzer:   m[3],
					substr:     m[4],
					suppressed: m[1] == "sup",
				})
			}
		}
	}
	return wants
}

// claim marks the first unmatched expectation the diagnostic satisfies.
func claim(wants []*expectation, d Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.File || w.line != d.Line || w.analyzer != d.Analyzer {
			continue
		}
		if !strings.Contains(d.Message, w.substr) {
			continue
		}
		if w.suppressed != (d.Suppressed != "") {
			continue
		}
		w.matched = true
		return true
	}
	return false
}

func TestFixtures(t *testing.T) {
	// primary is the analyzer the fixture exists to exercise: it must
	// produce at least one unsuppressed diagnostic there. "" marks a
	// support package (helpers a cross-package fixture calls into) that
	// only has to stay clean.
	fixtures := []struct {
		dir     string
		primary string
	}{
		{"spmdorder", "spmdorder"},
		{"detmap", "detmap"},
		{"modeledcost", "modeledcost"},
		{"collecterr", "collecterr"},
		{"handleleak", "handleleak"},
		// interproc imports interproc/helpers: the engine must see
		// through the package boundary via the shared call graph.
		{"interproc", "spmdorder"},
		{"interproc/helpers", ""},
		// tracename/helpers declares a cross-package trace name const.
		{"tracename", "tracename"},
		{"tracename/helpers", ""},
	}
	patterns := make([]string, len(fixtures))
	primaries := make(map[string]string, len(fixtures))
	for i, f := range fixtures {
		patterns[i] = fixtureBase + f.dir
		primaries[fixtureBase+f.dir] = f.primary
	}
	cfg := DefaultConfig()
	// The detmap fixture stands in for an output-affecting package.
	cfg.DetmapPackages = append(cfg.DetmapPackages, fixtureBase+"detmap")

	pkgs, err := loadPackages(patterns)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) != len(fixtures) {
		t.Fatalf("loaded %d fixture packages, want %d", len(pkgs), len(fixtures))
	}
	// One program over all fixture packages, as in production: the
	// interproc fixtures depend on summaries of their helper package.
	prog := NewProgram(pkgs, cfg)
	for _, p := range pkgs {
		name := strings.TrimPrefix(p.ImportPath, fixtureBase)
		primary := primaries[p.ImportPath]
		t.Run(name, func(t *testing.T) {
			wants := collectExpectations(t, p)
			if len(wants) == 0 && primary != "" {
				t.Fatalf("fixture %s declares no expectations", p.ImportPath)
			}
			// Every primary fixture must show its analyzer both catching
			// a violation (unsuppressed want) and letting clean code pass
			// (the Good* functions, checked by the unexpected-diagnostic
			// loop below).
			if primary != "" {
				caught := false
				for _, w := range wants {
					caught = caught || w.analyzer == primary && !w.suppressed
				}
				if !caught {
					t.Errorf("fixture %s has no unsuppressed %s expectation", p.ImportPath, primary)
				}
			}

			diags := runAnalyzers(p, prog, cfg, allAnalyzers())
			for _, d := range diags {
				if !claim(wants, d) {
					t.Errorf("unexpected diagnostic %s:%d: %s: %s (suppressed=%q)",
						d.File, d.Line, d.Analyzer, d.Message, d.Suppressed)
				}
			}
			for _, w := range wants {
				if !w.matched {
					kind := "diagnostic"
					if w.suppressed {
						kind = "suppressed diagnostic"
					}
					t.Errorf("missing %s at %s:%d: %s:%q", kind, w.file, w.line, w.analyzer, w.substr)
				}
			}
		})
	}
}
