package main

// modeledcost: nothing is modeled as free.
//
// Every mechanism that moves bytes — a transport exchange, a posted
// chunk, a snapshot write — must advance the virtual clock through a
// machine.Model pricing call, or the modeled virtual_seconds series
// (the repo's perf trajectory) silently undercounts the new mechanism.
//
// The analyzer finds call sites of the byte-moving operations: methods
// invoked through the spmd.Transport / spmd.PendingExchange interfaces,
// plus checkpoint commits (ckpt.Writer.Snapshot). The enclosing function
// must price: it must call one of the cost-model methods (AlltoallvTime,
// CollectiveTime, IPostTime, StreamChunkTime, ChunkPostTime,
// SnapshotTime), directly or through any helper. Pricing reachability
// comes from the interprocedural summaries (summary.go), so wrapper
// layers count across package boundaries — spmd's modelAlltoallv-style
// wrappers and cross-package cost helpers alike.

import (
	"go/ast"
	"go/types"
)

var modeledcostAnalyzer = &Analyzer{
	Name: "modeledcost",
	Doc:  "flags transport/commit call sites not paired with a cost-model pricing call",
	Run:  runModeledcost,
}

func runModeledcost(p *Pkg, prog *Program, cfg *Config, report reporter) {
	transportIfaces := transportInterfaces(p, cfg)
	for _, fd := range funcDecls(p) {
		fn, _ := p.Info.Defs[fd.Name].(*types.Func)
		if fn != nil && implementsTransport(fn, transportIfaces) {
			// Methods of a Transport implementation are the mechanism
			// being priced (by the typed spmd.Comm layer above), not
			// consumers of it.
			continue
		}
		sum := prog.SummaryOf(fn)
		priced := sum != nil && sum.Prices
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := isByteMovingCall(p.Info, cfg, call); ok && !priced {
				report(n.Pos(), "%s moves bytes but no machine.Model pricing call reaches this function: nothing is modeled as free", name)
			}
			return true
		})
	}
}

// isByteMovingCall reports whether the call posts or completes a
// transport exchange (through the Transport/PendingExchange interfaces)
// or commits a checkpoint snapshot.
func isByteMovingCall(info *types.Info, cfg *Config, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn := calleeOf(info, call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	switch pkgPathOf(fn) {
	case cfg.SpmdPath:
		// Interface dispatch only: the concrete mem/tcp implementations
		// are the mechanism being priced, not consumers of it.
		recv := sig.Recv().Type()
		named, ok := recv.(*types.Named)
		if !ok {
			return "", false
		}
		if _, isIface := named.Underlying().(*types.Interface); !isIface {
			return "", false
		}
		methods, audited := cfg.TransportTypes[named.Obj().Name()]
		if audited && methods[fn.Name()] {
			return named.Obj().Name() + "." + sel.Sel.Name, true
		}
	case cfg.CkptPath:
		qual := recvTypeName(sig) + "." + fn.Name()
		if cfg.PricedCommitMethods[qual] {
			return qual, true
		}
	}
	return "", false
}

// transportInterfaces resolves the configured byte-moving interface types
// (spmd.Transport, spmd.PendingExchange) in this package's import graph.
func transportInterfaces(p *Pkg, cfg *Config) []*types.Interface {
	var spmdPkg *types.Package
	if p.Types.Path() == cfg.SpmdPath {
		spmdPkg = p.Types
	} else {
		for _, imp := range p.Types.Imports() {
			if imp.Path() == cfg.SpmdPath {
				spmdPkg = imp
				break
			}
		}
	}
	if spmdPkg == nil {
		return nil
	}
	var ifaces []*types.Interface
	for name := range cfg.TransportTypes {
		if obj, ok := spmdPkg.Scope().Lookup(name).(*types.TypeName); ok {
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				ifaces = append(ifaces, iface)
			}
		}
	}
	return ifaces
}

// implementsTransport reports whether fn is a method whose receiver type
// implements one of the transport interfaces.
func implementsTransport(fn *types.Func, ifaces []*types.Interface) bool {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	for _, iface := range ifaces {
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			return true
		}
	}
	return false
}
