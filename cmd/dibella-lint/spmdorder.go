package main

// spmdorder: collectives must not be control-dependent on the rank.
//
// Every rank of an SPMD world must reach the same collectives in the
// same order; a collective under `if c.Rank() == 0 { ... }` (or any
// condition derived from the rank) is the classic divergence bug — some
// ranks enter the exchange, the rest never arrive, and the world
// deadlocks (or, worse, a later collective pairs with the wrong one).
//
// The analyzer taints every variable whose value derives from a Rank()
// call (transitively through local assignments, within one function) and
// flags any collective call whose enclosing if/switch/for condition
// mentions a tainted value or calls Rank() directly. The safe idiom —
// rank-conditional *local* work whose result is then shared by an
// unconditional collective (Bcast, AgreeCommit) — is untouched.

import (
	"go/ast"
	"go/types"
)

var spmdorderAnalyzer = &Analyzer{
	Name: "spmdorder",
	Doc:  "flags collective operations control-dependent on rank-valued expressions",
	Run:  runSpmdorder,
}

func runSpmdorder(p *Pkg, cfg *Config, report reporter) {
	for _, fd := range funcDecls(p) {
		tainted := rankTainted(p.Info, cfg, fd)
		isRanky := func(e ast.Expr) bool { return mentionsRank(p.Info, cfg, tainted, e) }
		var rankDepth int
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if rankDepth > 0 {
					if name, ok := isCollectiveCall(p.Info, cfg, n); ok {
						report(n.Pos(), "collective spmd.%s is control-dependent on the rank; every rank must reach the same collectives in the same order", name)
					}
				}
			case *ast.IfStmt:
				ranky := isRanky(n.Cond)
				walkBranch(n.Init, walk)
				ast.Inspect(n.Cond, walk)
				if ranky {
					rankDepth++
				}
				walkBranch(n.Body, walk)
				walkBranch(n.Else, walk)
				if ranky {
					rankDepth--
				}
				return false
			case *ast.SwitchStmt:
				ranky := n.Tag != nil && isRanky(n.Tag)
				if !ranky {
					// A tagless switch is rank-dependent when any case
					// expression is.
					for _, s := range n.Body.List {
						for _, e := range s.(*ast.CaseClause).List {
							ranky = ranky || isRanky(e)
						}
					}
				}
				walkBranch(n.Init, walk)
				if n.Tag != nil {
					ast.Inspect(n.Tag, walk)
				}
				if ranky {
					rankDepth++
				}
				walkBranch(n.Body, walk)
				if ranky {
					rankDepth--
				}
				return false
			case *ast.ForStmt:
				ranky := n.Cond != nil && isRanky(n.Cond)
				walkBranch(n.Init, walk)
				if n.Cond != nil {
					ast.Inspect(n.Cond, walk)
				}
				walkBranch(n.Post, walk)
				if ranky {
					rankDepth++
				}
				walkBranch(n.Body, walk)
				if ranky {
					rankDepth--
				}
				return false
			case *ast.RangeStmt:
				ranky := isRanky(n.X)
				ast.Inspect(n.X, walk)
				if ranky {
					rankDepth++
				}
				walkBranch(n.Body, walk)
				if ranky {
					rankDepth--
				}
				return false
			}
			return true
		}
		ast.Inspect(fd.Body, walk)
	}
}

func walkBranch(n ast.Stmt, walk func(ast.Node) bool) {
	if n != nil {
		ast.Inspect(n, walk)
	}
}

// isRankCall reports whether the call reads the rank: a method named Rank
// on a type of the SPMD package.
func isRankCall(info *types.Info, cfg *Config, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Name() != "Rank" || pkgPathOf(fn) != cfg.SpmdPath {
		return false
	}
	return fn.Type().(*types.Signature).Recv() != nil
}

// rankTainted computes the set of objects in fd whose value derives from
// a Rank() call, by fixpoint over the function's assignments.
func rankTainted(info *types.Info, cfg *Config, fd *ast.FuncDecl) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	exprTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isRankCall(info, cfg, n) {
					found = true
				}
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && tainted[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	for changed := true; changed; {
		changed = false
		mark := func(obj types.Object) {
			if obj != nil && !tainted[obj] {
				tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// A multi-value RHS taints every LHS; per-position
				// precision is not worth the complexity for a lint.
				rhsTainted := false
				for _, r := range n.Rhs {
					rhsTainted = rhsTainted || exprTainted(r)
				}
				if rhsTainted {
					for _, l := range n.Lhs {
						mark(objOf(l))
					}
				}
			case *ast.ValueSpec:
				rhsTainted := false
				for _, r := range n.Values {
					rhsTainted = rhsTainted || exprTainted(r)
				}
				if rhsTainted {
					for _, name := range n.Names {
						mark(info.Defs[name])
					}
				}
			}
			return true
		})
	}
	return tainted
}

// mentionsRank reports whether the expression reads the rank, directly or
// through a tainted variable.
func mentionsRank(info *types.Info, cfg *Config, tainted map[types.Object]bool, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isRankCall(info, cfg, n) {
				found = true
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
