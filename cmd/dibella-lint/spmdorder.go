package main

// spmdorder: collectives must not be control-dependent on the rank.
//
// Every rank of an SPMD world must reach the same collectives in the
// same order; a collective under `if c.Rank() == 0 { ... }` (or any
// condition derived from the rank) is the classic divergence bug — some
// ranks enter the exchange, the rest never arrive, and the world
// deadlocks (or, worse, a later collective pairs with the wrong one).
//
// The check runs on the interprocedural engine (callgraph.go,
// summary.go). Three shapes are flagged:
//
//   - a collective called directly under a rank-derived condition;
//   - a call to a function that *transitively* executes a collective
//     (per its summary) under a rank-derived condition — the
//     helper-wrapped variant the intraprocedural pass could not see;
//   - a rank-derived argument passed to a parameter that controls a
//     callee's collective schedule (a trip count, a branch selector):
//     the callee runs different collective sequences on different
//     ranks even though the call site itself is unconditional.
//
// Rank taint crosses calls through the summaries (a MyRank()-style
// wrapper taints its callers) and is *sanitized* by collectives: a
// Bcast-shared value is world-uniform, so the sanctioned idiom —
// rank-conditional local work, then an unconditional collective to
// share the result — stays clean.

import (
	"go/ast"
	"go/types"
)

var spmdorderAnalyzer = &Analyzer{
	Name: "spmdorder",
	Doc:  "flags collective operations control-dependent on rank-valued expressions, across call chains",
	Run:  runSpmdorder,
}

func runSpmdorder(p *Pkg, prog *Program, cfg *Config, report reporter) {
	for _, fd := range funcDecls(p) {
		d := prog.declOf(p, fd)
		if d == nil {
			continue
		}
		labels := funcLabels(prog, d)
		for _, site := range funcCollectiveSites(prog, d, labels) {
			if site.mask&rankBit == 0 {
				continue
			}
			switch {
			case site.argFlow:
				report(site.call.Pos(), "rank-derived argument to %s controls how many collectives run; every rank must reach the same collectives in the same order", site.name)
			case site.via:
				report(site.call.Pos(), "call to %s executes a collective and is control-dependent on the rank; every rank must reach the same collectives in the same order", site.name)
			default:
				report(site.call.Pos(), "collective %s is control-dependent on the rank; every rank must reach the same collectives in the same order", site.name)
			}
		}
	}
}

// isRankCall reports whether the call reads the rank: a method named Rank
// on a type of the SPMD package.
func isRankCall(info *types.Info, cfg *Config, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Name() != "Rank" || pkgPathOf(fn) != cfg.SpmdPath {
		return false
	}
	return fn.Type().(*types.Signature).Recv() != nil
}
