package main

// collecterr: errors (and commit decisions) from collective and
// checkpoint operations must not be dropped.
//
// A rank that swallows a collective's error keeps running while its
// peers unwind — the next collective pairs rank N's round r with rank
// M's round r+1 and the world deadlocks or exchanges garbage. A dropped
// AgreeCommit decision is worse: a rank that ignores the veto publishes
// state the rest of the world agreed to discard.
//
// Checked calls are those declared in the spmd and ckpt packages whose
// results include an error (or AgreeCommit's decision bool). A call is
// flagged when it stands as an expression statement, is deferred or
// spawned (`defer`/`go` discard results), or assigns the error/decision
// position to the blank identifier. Teardown methods (Close, Abort)
// are exempt: they run after the collective sequence is over.

import (
	"go/ast"
	"go/types"
)

var collecterrAnalyzer = &Analyzer{
	Name: "collecterr",
	Doc:  "flags dropped errors and commit decisions from collective/checkpoint operations",
	Run:  runCollecterr,
}

func runCollecterr(p *Pkg, _ *Program, cfg *Config, report reporter) {
	for _, fd := range funcDecls(p) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, what, ok := checkedCall(p.Info, cfg, call); ok {
						report(call.Pos(), "%s of %s is dropped: a silently ignored %[1]s desynchronizes the world", what, name)
					}
				}
				return false
			case *ast.DeferStmt:
				if name, what, ok := checkedCall(p.Info, cfg, n.Call); ok {
					report(n.Call.Pos(), "deferred %s drops its %s: a silently ignored %[2]s desynchronizes the world", name, what)
				}
			case *ast.GoStmt:
				if name, what, ok := checkedCall(p.Info, cfg, n.Call); ok {
					report(n.Call.Pos(), "go %s drops its %s: a silently ignored %[2]s desynchronizes the world", name, what)
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, what, ok := checkedCall(p.Info, cfg, call)
				if !ok {
					return true
				}
				idx := checkedResultIndex(p.Info, cfg, call)
				if idx < len(n.Lhs) && isBlank(n.Lhs[idx]) {
					report(n.Lhs[idx].Pos(), "%s of %s assigned to _: a silently ignored %[1]s desynchronizes the world", what, name)
				}
			}
			return true
		})
	}
}

// checkedCall reports whether the call is a collective/checkpoint
// operation whose error (or commit decision) must be consumed, naming
// the operation and what must not be dropped ("error" or
// "commit decision").
func checkedCall(info *types.Info, cfg *Config, call *ast.CallExpr) (name, what string, ok bool) {
	fn := calleeOf(info, call)
	if fn == nil {
		return "", "", false
	}
	path := pkgPathOf(fn)
	if path != cfg.SpmdPath && path != cfg.CkptPath {
		return "", "", false
	}
	if cfg.CollecterrExclude[fn.Name()] {
		return "", "", false
	}
	sig := fn.Type().(*types.Signature)
	qual := fn.Name()
	if sig.Recv() != nil {
		qual = recvTypeName(sig) + "." + fn.Name()
	}
	if path == cfg.SpmdPath && fn.Name() == "AgreeCommit" {
		return "spmd." + qual, "commit decision", true
	}
	res := sig.Results()
	if res.Len() == 0 {
		return "", "", false
	}
	if isErrorType(res.At(res.Len() - 1).Type()) {
		pkgName := "spmd."
		if path == cfg.CkptPath {
			pkgName = "ckpt."
		}
		return pkgName + qual, "error", true
	}
	return "", "", false
}

// checkedResultIndex returns the tuple position of the checked result:
// the final error, or AgreeCommit's decision bool.
func checkedResultIndex(info *types.Info, cfg *Config, call *ast.CallExpr) int {
	fn := calleeOf(info, call)
	sig := fn.Type().(*types.Signature)
	if pkgPathOf(fn) == cfg.SpmdPath && fn.Name() == "AgreeCommit" {
		return 1
	}
	return sig.Results().Len() - 1
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
