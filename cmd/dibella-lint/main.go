// Command dibella-lint statically enforces the repository's SPMD,
// determinism, and cost-model invariants (see docs/LINT.md):
//
//	spmdorder    collectives must not be control-dependent on the rank
//	detmap       no map-iteration order, time.Now, or math/rand in
//	             output-affecting packages
//	modeledcost  transport/commit call sites must be priced by a
//	             machine.Model call — nothing is modeled as free
//	collecterr   collective/checkpoint errors must not be dropped
//
// Usage:
//
//	dibella-lint [-json] [packages ...]
//
// Packages default to ./... and use `go list` syntax. Diagnostics are
// suppressed per line with `//lint:ignore <analyzer> <reason>` (reason
// mandatory). Exit status: 0 clean, 1 diagnostics, 2 load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	showSuppressed := flag.Bool("suppressed", false, "also print suppressed diagnostics (with their reasons)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dibella-lint [-json] [-suppressed] [packages ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := DefaultConfig()
	pkgs, err := loadPackages(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dibella-lint: %v\n", err)
		os.Exit(2)
	}

	var all []Diagnostic
	for _, p := range pkgs {
		all = append(all, runAnalyzers(p, cfg, allAnalyzers())...)
	}

	failing := 0
	var shown []Diagnostic
	for _, d := range all {
		if d.Suppressed == "" {
			failing++
			shown = append(shown, d)
		} else if *showSuppressed {
			shown = append(shown, d)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if shown == nil {
			shown = []Diagnostic{}
		}
		if err := enc.Encode(shown); err != nil {
			fmt.Fprintf(os.Stderr, "dibella-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range shown {
			suffix := ""
			if d.Suppressed != "" {
				suffix = fmt.Sprintf(" (suppressed: %s)", d.Suppressed)
			}
			fmt.Printf("%s:%d:%d: %s: %s%s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message, suffix)
		}
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "dibella-lint: %d diagnostic(s)\n", failing)
		os.Exit(1)
	}
}
