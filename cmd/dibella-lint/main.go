// Command dibella-lint statically enforces the repository's SPMD,
// determinism, and cost-model invariants (see docs/LINT.md):
//
//	spmdorder    collectives must not be control-dependent on the rank,
//	             directly or through any call chain
//	detmap       no map-iteration order, time.Now, or math/rand in
//	             output-affecting packages
//	modeledcost  transport/commit call sites must be priced by a
//	             machine.Model call — nothing is modeled as free
//	collecterr   collective/checkpoint errors must not be dropped
//	handleleak   posted exchange handles must reach Wait on every path
//
// Usage:
//
//	dibella-lint [-json] [-sarif file] [packages ...]
//
// Packages default to ./... and use `go list` syntax. The analyzers
// share an interprocedural engine: whole-run call-graph summaries
// computed to a fixpoint over every loaded package (see docs/LINT.md).
// Diagnostics are suppressed per line with
// `//lint:ignore <analyzer> <reason>` (reason mandatory); a directive
// that suppresses nothing is itself reported as stale. Exit status:
// 0 clean, 1 diagnostics, 2 load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	showSuppressed := flag.Bool("suppressed", false, "also print suppressed diagnostics (with their reasons)")
	sarifOut := flag.String("sarif", "", "also write diagnostics as SARIF 2.1.0 to `file`")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dibella-lint [-json] [-suppressed] [-sarif file] [packages ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := DefaultConfig()
	t0 := time.Now()
	pkgs, err := loadPackages(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dibella-lint: %v\n", err)
		os.Exit(2)
	}
	tLoad := time.Now()

	prog := NewProgram(pkgs, cfg)
	var all []Diagnostic
	for _, p := range pkgs {
		all = append(all, runAnalyzers(p, prog, cfg, allAnalyzers())...)
	}
	// The gate runs on every push; keep its cost visible so a slow
	// analyzer is noticed before it is felt.
	fmt.Fprintf(os.Stderr, "dibella-lint: %d packages: load %.1fs, analyze %.1fs\n",
		len(pkgs), tLoad.Sub(t0).Seconds(), time.Since(tLoad).Seconds())

	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, allAnalyzers(), all); err != nil {
			fmt.Fprintf(os.Stderr, "dibella-lint: writing SARIF: %v\n", err)
			os.Exit(2)
		}
	}

	failing := 0
	var shown []Diagnostic
	for _, d := range all {
		if d.Suppressed == "" {
			failing++
			shown = append(shown, d)
		} else if *showSuppressed {
			shown = append(shown, d)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if shown == nil {
			shown = []Diagnostic{}
		}
		if err := enc.Encode(shown); err != nil {
			fmt.Fprintf(os.Stderr, "dibella-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range shown {
			suffix := ""
			if d.Suppressed != "" {
				suffix = fmt.Sprintf(" (suppressed: %s)", d.Suppressed)
			}
			fmt.Printf("%s:%d:%d: %s: %s%s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message, suffix)
		}
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "dibella-lint: %d diagnostic(s)\n", failing)
		os.Exit(1)
	}
}
