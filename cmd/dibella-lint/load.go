package main

// Package loading without golang.org/x/tools: packages are enumerated
// with `go list -json`, their dependencies' type information comes from
// the compiler's export data (`go list -deps -export -json` builds and
// names the export files), and each audited package is parsed and
// type-checked from source against that export data. This gives the
// analyzers full go/types resolution using only the standard library.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Pkg is one loaded, type-checked package.
type Pkg struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader uses.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list` with the given flags and patterns and decodes the
// JSON package stream.
func goList(flags []string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list"}, flags...)
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportMap builds import path → export data file for the full dependency
// closure of patterns, compiling as needed.
func exportMap(patterns []string) (map[string]string, error) {
	pkgs, err := goList([]string{"-deps", "-export", "-json"}, patterns)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m, nil
}

// exportImporter resolves imports from compiler export data.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// typecheckDir parses and type-checks the named .go files of one package
// directory against the export map. Source positions land in fset.
func typecheckDir(fset *token.FileSet, importPath, dir string, goFiles []string,
	exports map[string]string) (*Pkg, error) {

	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: exportImporter(fset, exports)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Pkg{ImportPath: importPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// loadPackages loads every package matching patterns, type-checked and
// ready for analysis.
func loadPackages(patterns []string) ([]*Pkg, error) {
	targets, err := goList([]string{"-json"}, patterns)
	if err != nil {
		return nil, err
	}
	exports, err := exportMap(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var pkgs []*Pkg
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("load %s: %s", t.ImportPath, t.Error.Err)
		}
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		p, err := typecheckDir(fset, t.ImportPath, t.Dir, t.GoFiles, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
