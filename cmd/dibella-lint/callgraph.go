package main

// The interprocedural half of the engine: a whole-run index of every
// function declaration across the loaded packages, with per-function
// summaries computed to a fixpoint (summary.go).
//
// Cross-package identity is the subtle part. A call site in package A
// resolves its callee through A's import graph, where package B's
// functions are *types.Func objects reconstructed from compiler export
// data — not the same objects the loader produced by type-checking B
// from source. Summaries are therefore keyed by a stable string
// (import path, receiver type name, function name) rather than by
// object identity, so a summary computed on B's source is found from
// A's export-data view of the same function.

import (
	"go/ast"
	"go/types"
)

// declInfo is one function declaration with a body, in its home package.
type declInfo struct {
	pkg  *Pkg
	decl *ast.FuncDecl
	fn   *types.Func
	key  string
}

// Program indexes every loaded package for interprocedural analysis.
type Program struct {
	cfg       *Config
	decls     []*declInfo
	byDecl    map[*ast.FuncDecl]*declInfo
	summaries map[string]*FuncSummary
}

// NewProgram indexes the packages and computes every function summary to
// a fixpoint. The packages should be the full set being audited: a
// callee outside the set simply has no summary and is treated
// conservatively (see exprLabels).
func NewProgram(pkgs []*Pkg, cfg *Config) *Program {
	prog := &Program{
		cfg:       cfg,
		byDecl:    make(map[*ast.FuncDecl]*declInfo),
		summaries: make(map[string]*FuncSummary),
	}
	for _, p := range pkgs {
		for _, fd := range funcDecls(p) {
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			d := &declInfo{pkg: p, decl: fd, fn: fn, key: funcKey(fn)}
			prog.decls = append(prog.decls, d)
			prog.byDecl[fd] = d
			// Start from the empty summary: the fixpoint only ever adds
			// facts, so initializing low keeps every pass monotone.
			prog.summaries[d.key] = &FuncSummary{}
		}
	}
	prog.solve()
	return prog
}

// declOf returns the index entry of a declaration (nil when it has no
// type-checked function object).
func (prog *Program) declOf(p *Pkg, fd *ast.FuncDecl) *declInfo {
	d := prog.byDecl[fd]
	if d != nil && d.pkg == p {
		return d
	}
	return nil
}

// SummaryOf returns the summary for fn, or nil when fn was not declared
// in any loaded package (stdlib, interface methods, func values).
func (prog *Program) SummaryOf(fn *types.Func) *FuncSummary {
	if fn == nil {
		return nil
	}
	return prog.summaries[funcKey(fn)]
}

// funcKey is the stable cross-package identity of a function: import
// path, receiver type name for methods, and function name. Origin()
// strips generic instantiations so Handle[byte].Wait and
// Handle[int64].Wait share one summary.
func funcKey(fn *types.Func) string {
	fn = fn.Origin()
	key := pkgPathOf(fn) + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		key += recvTypeName(sig) + "."
	}
	return key + fn.Name()
}

// solve runs computeSummary over every declaration until no summary
// changes. Each field only grows (bools flip false→true, bit sets gain
// bits, the chain is written once), so termination is immediate from
// monotonicity; the iteration count is bounded by the call-graph depth.
func (prog *Program) solve() {
	for changed := true; changed; {
		changed = false
		for _, d := range prog.decls {
			old := prog.summaries[d.key]
			next := computeSummary(prog, d)
			if old.Collects {
				// The chain is diagnostic garnish; freezing it at first
				// discovery keeps recursive cycles from growing it forever.
				next.CollectChain = old.CollectChain
				next.Collects = true
			}
			if *next != *old {
				prog.summaries[d.key] = next
				changed = true
			}
		}
	}
}
