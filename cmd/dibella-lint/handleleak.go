package main

// handleleak: every posted exchange handle must reach Wait.
//
// IAlltoallv and its packed/streamed relatives return a handle
// (spmd.Handle, spmd.PackedHandle, or the raw spmd.PendingExchange) the
// caller must Wait on: the peers have already posted their sides, so a
// rank that drops its handle leaves the world's exchange matrix
// half-completed and the next collective deadlocks. This is the
// lostcancel shape, but the leak costs the whole world, not one
// context.
//
// The analyzer runs a path-sensitive walk over each function body
// (and each function literal), carrying the set of maybe-live handle
// obligations:
//
//   - an obligation is created when a call result of a handle type is
//     assigned to a variable; a handle result that is discarded (bare
//     call statement, or assigned to _) is reported immediately;
//   - any other use discharges it — a Wait call, but also returning
//     the handle, passing it to a call (append to a pending slice),
//     storing it in a composite literal or struct field, sending it on
//     a channel, or capturing it in a closure: ownership moved
//     somewhere this intraprocedural walk cannot follow, and claiming
//     a leak would be a false positive. Comparisons (==, !=) are not
//     uses: `if h != nil` keeps the obligation alive;
//   - branches fork the obligation set and joins take the union, so a
//     handle waited on only one arm is still live on the other;
//   - the `h, err := post(...); if err != nil { return ... }` idiom is
//     exempt: on the error arm the handle was never posted, so the
//     obligation is dropped there;
//   - a return (or falling off the end of the function) with live
//     obligations reports each at its creation site, once.
//
// Loop bodies are walked once (obligations flow out of the body and
// its breaks/continues); functions using goto are skipped outright.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var handleleakAnalyzer = &Analyzer{
	Name: "handleleak",
	Doc:  "flags exchange handles (PendingExchange, Handle, PackedHandle) that can miss Wait on some path",
	Run:  runHandleleak,
}

func runHandleleak(p *Pkg, _ *Program, cfg *Config, report reporter) {
	for _, f := range p.Files {
		// Every function body — declarations and literals — is its own
		// flow unit: a closure's obligations must resolve inside it.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body == nil || usesGoto(body) {
				return true
			}
			hl := &hlUnit{p: p, cfg: cfg, report: report, namedResults: namedResultObjs(p.Info, n)}
			st := hl.block(body.List, make(hstate))
			hl.reportLive(st, token.NoPos)
			return true
		})
	}
}

// usesGoto reports whether the body (excluding nested function
// literals) contains a goto; label-driven flow is out of scope.
func usesGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if n.Tok == token.GOTO {
				found = true
			}
		}
		return !found
	})
	return found
}

// oblig is one outstanding Wait obligation. It is shared between the
// states of every path that saw the same creation, so a leak on several
// paths reports once, at the creation site.
type oblig struct {
	pos      token.Pos
	what     string       // creating call, e.g. "spmd.IAlltoallv"
	errObj   types.Object // paired error result, for the err-guard exemption
	reported bool
}

// hstate maps handle variables to their maybe-live obligations. A nil
// hstate means the path is unreachable.
type hstate map[types.Object]*oblig

func (st hstate) clone() hstate {
	out := make(hstate, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// mergeInto unions b into a (either may be nil = unreachable).
func mergeInto(a, b hstate) hstate {
	if a == nil {
		return b
	}
	for k, v := range b {
		a[k] = v
	}
	return a
}

// hlUnit is the per-function walk state: break/continue collectors for
// the enclosing loops and switches, plus the unit's named result
// objects (a bare return publishes the handles they hold).
type hlUnit struct {
	p            *Pkg
	cfg          *Config
	report       reporter
	namedResults map[types.Object]bool
	breaks       []*[]hstate
	conts        []*[]hstate
}

// namedResultObjs collects the named result variables of a function
// declaration or literal.
func namedResultObjs(info *types.Info, fn ast.Node) map[types.Object]bool {
	var ftype *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ftype = fn.Type
	case *ast.FuncLit:
		ftype = fn.Type
	}
	if ftype == nil || ftype.Results == nil {
		return nil
	}
	out := make(map[types.Object]bool)
	for _, field := range ftype.Results.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// reportLive reports every live, unreported obligation: at a return
// (ret is its position) or at the end of the function (NoPos).
func (hl *hlUnit) reportLive(st hstate, ret token.Pos) {
	for _, ob := range st {
		if ob.reported {
			continue
		}
		ob.reported = true
		if ret.IsValid() {
			hl.report(ob.pos, "exchange handle from %s may reach the return at line %d without Wait: a leaked handle deadlocks the world",
				ob.what, hl.p.Fset.Position(ret).Line)
		} else {
			hl.report(ob.pos, "exchange handle from %s may reach the end of the function without Wait: a leaked handle deadlocks the world", ob.what)
		}
	}
}

// block flows one statement list, returning the fall-through state (nil
// when every path returned, panicked, or branched away).
func (hl *hlUnit) block(list []ast.Stmt, st hstate) hstate {
	for _, s := range list {
		if st == nil {
			return nil
		}
		st = hl.stmt(s, st)
	}
	return st
}

func (hl *hlUnit) stmt(s ast.Stmt, st hstate) hstate {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return hl.assign(s.Lhs, s.Rhs, st)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return st
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			lhs := make([]ast.Expr, len(vs.Names))
			for i, name := range vs.Names {
				lhs[i] = name
			}
			st = hl.assign(lhs, vs.Values, st)
		}
		return st
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isPanicLike(hl.p.Info, call) {
				hl.discharge(st, s.X)
				return nil
			}
			// A discarded handle result leaks immediately: nothing can
			// ever Wait on it.
			hl.discharge(st, s.X)
			for _, res := range handleResults(hl.p.Info, hl.cfg, call) {
				hl.report(call.Pos(), "exchange handle from %s is discarded without Wait: a leaked handle deadlocks the world", res.what)
			}
			return st
		}
		hl.discharge(st, s.X)
		return st
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			hl.discharge(st, r)
		}
		if len(s.Results) == 0 {
			// A bare return hands named results (and any handles they
			// hold) to the caller.
			for obj := range st {
				if hl.namedResults[obj] {
					ob := st[obj]
					for k, v := range st {
						if v == ob {
							delete(st, k)
						}
					}
				}
			}
		}
		hl.reportLive(st, s.Pos())
		return nil
	case *ast.IfStmt:
		if s.Init != nil {
			st = hl.stmt(s.Init, st)
			if st == nil {
				return nil
			}
		}
		hl.discharge(st, s.Cond)
		thenSt, elseSt := st.clone(), st.clone()
		hl.applyErrGuard(s.Cond, thenSt, elseSt)
		thenSt = hl.block(s.Body.List, thenSt)
		if s.Else != nil {
			elseSt = hl.stmt(s.Else, elseSt)
		}
		return mergeInto(thenSt, elseSt)
	case *ast.BlockStmt:
		return hl.block(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st = hl.stmt(s.Init, st)
			if st == nil {
				return nil
			}
		}
		if s.Cond != nil {
			hl.discharge(st, s.Cond)
		}
		var brks, cnts []hstate
		hl.breaks = append(hl.breaks, &brks)
		hl.conts = append(hl.conts, &cnts)
		bodySt := hl.block(s.Body.List, st.clone())
		if s.Post != nil && bodySt != nil {
			bodySt = hl.stmt(s.Post, bodySt)
		}
		hl.breaks = hl.breaks[:len(hl.breaks)-1]
		hl.conts = hl.conts[:len(hl.conts)-1]
		if s.Cond == nil {
			// for {} only exits through break; the body's fall loops
			// back around.
			var out hstate
			for _, b := range brks {
				out = mergeInto(out, b)
			}
			return out
		}
		out := st // zero iterations fall straight through
		out = mergeInto(out, bodySt)
		for _, c := range cnts {
			// A continue re-tests the condition, which can then exit.
			out = mergeInto(out, c)
		}
		for _, b := range brks {
			out = mergeInto(out, b)
		}
		return out
	case *ast.RangeStmt:
		hl.discharge(st, s.X)
		var brks, cnts []hstate
		hl.breaks = append(hl.breaks, &brks)
		hl.conts = append(hl.conts, &cnts)
		bodySt := hl.block(s.Body.List, st.clone())
		hl.breaks = hl.breaks[:len(hl.breaks)-1]
		hl.conts = hl.conts[:len(hl.conts)-1]
		out := mergeInto(st, bodySt)
		for _, b := range brks {
			out = mergeInto(out, b)
		}
		for _, c := range cnts {
			out = mergeInto(out, c)
		}
		return out
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return hl.switchLike(s, st)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if len(hl.breaks) > 0 {
				top := hl.breaks[len(hl.breaks)-1]
				*top = append(*top, st)
			}
			return nil
		case token.CONTINUE:
			if len(hl.conts) > 0 {
				top := hl.conts[len(hl.conts)-1]
				*top = append(*top, st)
			}
			return nil
		case token.FALLTHROUGH:
			return st
		}
		return st
	case *ast.LabeledStmt:
		return hl.stmt(s.Stmt, st)
	case *ast.DeferStmt:
		hl.discharge(st, s.Call)
		return st
	case *ast.GoStmt:
		hl.discharge(st, s.Call)
		return st
	case *ast.SendStmt:
		hl.discharge(st, s.Chan)
		hl.discharge(st, s.Value)
		return st
	case *ast.IncDecStmt:
		hl.discharge(st, s.X)
		return st
	case *ast.EmptyStmt:
		return st
	}
	// Unmodeled statement kinds carry no handle flow.
	return st
}

// switchLike flows switch/type-switch/select: each clause forks from
// the incoming state and the falls merge. A switch with no default may
// run no clause at all; a select with no default always runs one.
func (hl *hlUnit) switchLike(s ast.Stmt, st hstate) hstate {
	var init ast.Stmt
	var scan []ast.Node
	var body *ast.BlockStmt
	hasDefault := false
	mayskip := true
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, body = s.Init, s.Body
		if s.Tag != nil {
			scan = append(scan, s.Tag)
		}
	case *ast.TypeSwitchStmt:
		init, body = s.Init, s.Body
		scan = append(scan, s.Assign)
	case *ast.SelectStmt:
		body = s.Body
		mayskip = false
	}
	if init != nil {
		st = hl.stmt(init, st)
		if st == nil {
			return nil
		}
	}
	for _, n := range scan {
		hl.discharge(st, n)
	}
	var brks []hstate
	hl.breaks = append(hl.breaks, &brks)
	var out hstate
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				hl.discharge(st, e)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			clSt := st.clone()
			if cl.Comm != nil {
				clSt = hl.stmt(cl.Comm, clSt)
			}
			out = mergeInto(out, hl.block(cl.Body, clSt))
			continue
		}
		out = mergeInto(out, hl.block(stmts, st.clone()))
	}
	hl.breaks = hl.breaks[:len(hl.breaks)-1]
	for _, b := range brks {
		out = mergeInto(out, b)
	}
	if mayskip && !hasDefault {
		out = mergeInto(out, st)
	}
	return out
}

// assign processes one (possibly parallel or tuple) assignment:
// aliases share the obligation, other right-hand sides are scanned for
// discharging uses, and handle-typed call results create obligations
// (or report immediately when assigned to _).
func (hl *hlUnit) assign(lhs, rhs []ast.Expr, st hstate) hstate {
	// Discharge uses in non-identifier assignment targets (indexes,
	// fields); plain identifier targets are definitions, not uses.
	for _, l := range lhs {
		if _, ok := ast.Unparen(l).(*ast.Ident); !ok {
			hl.discharge(st, l)
		}
	}
	if len(lhs) == len(rhs) {
		for i, r := range rhs {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok {
				if ob := st[hl.p.Info.Uses[id]]; ob != nil {
					// Alias copy: both names carry the one obligation.
					if obj := lhsObj(hl.p.Info, lhs[i]); obj != nil {
						st[obj] = ob
					}
					continue
				}
			}
			hl.discharge(st, r)
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				hl.create(st, call, lhs[i:i+1])
			}
		}
		return st
	}
	// Tuple form: x, err := call(...).
	for _, r := range rhs {
		hl.discharge(st, r)
	}
	if len(rhs) == 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			hl.create(st, call, lhs)
		}
	}
	return st
}

// handleResult is one handle-typed position of a call's results.
type handleResult struct {
	index int
	what  string
}

// handleResults lists the handle-typed result positions of a call.
func handleResults(info *types.Info, cfg *Config, call *ast.CallExpr) []handleResult {
	t := info.TypeOf(call)
	if t == nil {
		return nil
	}
	what := callDisplayName(info, call)
	var out []handleResult
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isHandleType(cfg, tup.At(i).Type()) {
				out = append(out, handleResult{index: i, what: what})
			}
		}
		return out
	}
	if isHandleType(cfg, t) {
		out = append(out, handleResult{index: 0, what: what})
	}
	return out
}

// create records obligations for a call's handle-typed results bound to
// the given targets, pairing each with the call's error result (if one
// is bound) for the err-guard exemption.
func (hl *hlUnit) create(st hstate, call *ast.CallExpr, targets []ast.Expr) {
	results := handleResults(hl.p.Info, hl.cfg, call)
	if len(results) == 0 {
		return
	}
	var errObj types.Object
	for _, tgt := range targets {
		if obj := lhsObj(hl.p.Info, tgt); obj != nil && isErrorType(obj.Type()) {
			errObj = obj
		}
	}
	for _, res := range results {
		if res.index >= len(targets) {
			continue
		}
		tgt := ast.Unparen(targets[res.index])
		if id, ok := tgt.(*ast.Ident); ok {
			if id.Name == "_" {
				hl.report(call.Pos(), "exchange handle from %s is discarded without Wait: a leaked handle deadlocks the world", res.what)
				continue
			}
			if obj := lhsObj(hl.p.Info, id); obj != nil {
				st[obj] = &oblig{pos: call.Pos(), what: res.what, errObj: errObj}
			}
			continue
		}
		// Handle stored into a field/index: it escapes this walk.
	}
}

// discharge removes the obligations of every handle identifier used
// under n, except identifiers that only appear as ==/!= operands.
func (hl *hlUnit) discharge(st hstate, n ast.Node) {
	if n == nil || len(st) == 0 {
		return
	}
	compared := make(map[*ast.Ident]bool)
	ast.Inspect(n, func(c ast.Node) bool {
		if be, ok := c.(*ast.BinaryExpr); ok && (be.Op == token.EQL || be.Op == token.NEQ) {
			if id, ok := ast.Unparen(be.X).(*ast.Ident); ok {
				compared[id] = true
			}
			if id, ok := ast.Unparen(be.Y).(*ast.Ident); ok {
				compared[id] = true
			}
		}
		return true
	})
	ast.Inspect(n, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok || compared[id] {
			return true
		}
		obj := hl.p.Info.Uses[id]
		ob := st[obj]
		if ob == nil {
			return true
		}
		for k, v := range st {
			if v == ob {
				delete(st, k)
			}
		}
		return true
	})
}

// applyErrGuard implements the posted-exchange error idiom: under
// `if err != nil` the handle paired with err was never created, so its
// obligation is dropped on that arm (and on the else arm of == nil).
func (hl *hlUnit) applyErrGuard(cond ast.Expr, thenSt, elseSt hstate) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return
	}
	var errID *ast.Ident
	if isNilIdent(be.Y) {
		errID, _ = ast.Unparen(be.X).(*ast.Ident)
	} else if isNilIdent(be.X) {
		errID, _ = ast.Unparen(be.Y).(*ast.Ident)
	}
	if errID == nil {
		return
	}
	errObj := hl.p.Info.Uses[errID]
	if errObj == nil {
		return
	}
	errArm := thenSt
	if be.Op == token.EQL {
		errArm = elseSt
	}
	for k, ob := range errArm {
		if ob.errObj == errObj {
			delete(errArm, k)
		}
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isHandleType reports whether t is (a pointer to) one of the SPMD
// package's exchange-handle types.
func isHandleType(cfg *Config, t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == cfg.SpmdPath && cfg.HandleTypes[obj.Name()]
}

// callDisplayName renders the creating call for diagnostics.
func callDisplayName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeOf(info, call); fn != nil {
		return funcDisplayName(fn)
	}
	return "this call"
}

// lhsObj resolves the object an assignment target binds or writes.
func lhsObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isPanicLike reports whether the call never returns: builtin panic.
func isPanicLike(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return id.Name == "panic"
}
