package main

// Analyzer configuration: which packages each analyzer audits and the
// name sets that define the repo's collective / pricing / transport
// surfaces. Kept as data (not hard-coded in the analyzers) so the tests
// can point the same analyzers at fixture packages and so follow-up work
// (serve mode, distributed string graph) can extend the audited surface
// by editing one file.

// Config carries the per-analyzer package lists and symbol sets.
type Config struct {
	// SpmdPath is the import path of the SPMD runtime package whose
	// collective call surface spmdorder/modeledcost/collecterr key on.
	SpmdPath string
	// CkptPath is the import path of the checkpoint package whose
	// commit operations collecterr keys on.
	CkptPath string

	// CollectiveFuncs are the package-level collective functions of
	// SpmdPath: every rank must call them in the same order.
	CollectiveFuncs map[string]bool
	// CollectiveMethods are collective methods on SpmdPath types
	// (Comm.Barrier, Handle.Wait, ...), keyed by method name.
	CollectiveMethods map[string]bool

	// DetmapPackages are import-path prefixes of the output-affecting
	// packages detmap audits: a nondeterministic iteration there can
	// change the bytes of the PAF output or a checkpoint digest.
	DetmapPackages []string

	// HandleTypes names the SpmdPath types that represent a posted,
	// not-yet-completed exchange; handleleak requires every value of
	// these types to reach Wait on every path.
	HandleTypes map[string]bool

	// TransportTypes names the SpmdPath interface types whose method
	// calls move bytes (modeledcost call sites), mapped to the method
	// names that actually post or complete an exchange.
	TransportTypes map[string]map[string]bool
	// PricingMethods are the cost-model methods that price communication
	// or snapshot I/O; a function (transitively, within its package)
	// calling one of these is considered to price its transport calls.
	PricingMethods map[string]bool
	// PricedCommitMethods maps "Type.Method" of CkptPath operations that
	// perform modeled I/O (modeledcost requires their callers to price).
	PricedCommitMethods map[string]bool

	// CollecterrExclude lists SpmdPath/CkptPath method names whose
	// dropped results collecterr tolerates (non-collective teardown).
	CollecterrExclude map[string]bool

	// TracePath is the import path of the observability package whose
	// event/metric name arguments tracename keys on.
	TracePath string
	// TraceNameFuncs maps TracePath function and method names to the
	// argument position of the event/metric name, which must be a
	// package-level string constant (so timelines and dashboards can
	// grep for every name the binary can emit).
	TraceNameFuncs map[string]int
}

// DefaultConfig audits this repository.
func DefaultConfig() *Config {
	return &Config{
		SpmdPath: "dibella/internal/spmd",
		CkptPath: "dibella/internal/ckpt",
		CollectiveFuncs: set(
			"Alltoallv", "Alltoall", "AlltoallvPacked",
			"IAlltoallv", "IAlltoallvPacked", "IAlltoallvStreamed",
			"Allgather", "AllreduceI64", "AllreduceF64",
			"Bcast", "ExclusiveScanI64", "GatherTo",
			"MaxReduceRegisters", "AgreeCommit",
		),
		CollectiveMethods: set("Barrier", "Wait"),
		DetmapPackages: []string{
			"dibella/internal/dht",
			"dibella/internal/overlap",
			"dibella/internal/olgraph",
			"dibella/internal/paf",
			"dibella/internal/pipeline",
			"dibella/internal/ckpt",
			// Served PAF is output too: a nondeterministic iteration in
			// the daemon's routing or reply path would break the
			// serve-vs-batch byte-identity invariant.
			"dibella/internal/serve",
		},
		HandleTypes: set("PendingExchange", "Handle", "PackedHandle"),
		TransportTypes: map[string]map[string]bool{
			"Transport":       set("Alltoallv", "IAlltoallv", "Allgather", "Barrier"),
			"PendingExchange": set("Wait"),
		},
		PricingMethods: set(
			"AlltoallvTime", "CollectiveTime", "IPostTime",
			"StreamChunkTime", "ChunkPostTime", "SnapshotTime",
			"QueryAdmitTime", "QueryRouteTime",
		),
		PricedCommitMethods: set("Writer.Snapshot"),
		// Close is the graceful teardown after the last collective and
		// Abort is the poison path: neither can desynchronize a world
		// that is already unwinding.
		CollecterrExclude: set("Close", "Abort"),
		TracePath:         "dibella/internal/trace",
		TraceNameFuncs: map[string]int{
			"Begin": 0, "BeginTag": 0, "End": 0,
			"Instant": 0, "InstantTag": 0,
			"FlowOut": 0, "FlowIn": 0,
			"RegisterCounter": 0, "RegisterCounterVec": 0,
			"RegisterGauge": 0, "RegisterGaugeVec": 0,
			"RegisterHistogram": 0,
		},
	}
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// detmapAudited reports whether detmap audits the package.
func (cfg *Config) detmapAudited(importPath string) bool {
	for _, p := range cfg.DetmapPackages {
		if importPath == p || len(importPath) > len(p) && importPath[:len(p)+1] == p+"/" {
			return true
		}
	}
	return false
}
