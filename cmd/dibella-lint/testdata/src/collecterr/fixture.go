// Package collecterr is a dibella-lint test fixture: dropped and
// consumed results of collective / checkpoint operations. Expected
// diagnostics are encoded in the // want comments (see lint_test.go).
package collecterr

import (
	"dibella/internal/ckpt"
	"dibella/internal/spmd"
)

// BadDroppedDecision ignores whether the world agreed to commit.
func BadDroppedDecision(c *spmd.Comm, v spmd.CommitVote) {
	spmd.AgreeCommit(c, v) // want collecterr:"commit decision"
}

// BadBlankDecision reads the votes but blanks the decision.
func BadBlankDecision(c *spmd.Comm, v spmd.CommitVote) []spmd.CommitVote {
	votes, _ := spmd.AgreeCommit(c, v) // want collecterr:"assigned to _"
	return votes
}

// BadDroppedError discards a world-runner error.
func BadDroppedError(fn func(*spmd.Comm) error) {
	spmd.Run(2, fn) // want collecterr:"error of spmd.Run is dropped"
}

// BadDeferredManifest defers a call whose error vanishes.
func BadDeferredManifest(dir string) {
	defer ckpt.ReadManifest(dir) // want collecterr:"deferred ckpt.ReadManifest"
}

// GoodChecked consumes the decision.
func GoodChecked(c *spmd.Comm, v spmd.CommitVote) bool {
	_, ok := spmd.AgreeCommit(c, v)
	return ok
}

// GoodError propagates the runner error.
func GoodError(fn func(*spmd.Comm) error) error {
	return spmd.Run(2, fn)
}

// GoodTeardown: Close and Abort are exempt teardown — deferring Close is
// the idiom, and neither can desynchronize a world already unwinding.
func GoodTeardown(tr spmd.Transport) {
	defer tr.Close()
	tr.Abort()
}

// SuppressedDrop documents why the decision is ignorable here; the
// diagnostic is emitted but suppressed.
func SuppressedDrop(c *spmd.Comm, v spmd.CommitVote) {
	//lint:ignore collecterr fixture exercising the suppression path
	spmd.AgreeCommit(c, v) // wantsup collecterr:"commit decision"
}
