// Package spmdorder is a dibella-lint test fixture: collectives that are
// (and are not) control-dependent on the rank. Expected diagnostics are
// encoded in the // want comments (see lint_test.go).
package spmdorder

import "dibella/internal/spmd"

// BadRankBranch puts a collective under a rank test: the classic SPMD
// divergence bug — rank 0 enters the barrier, the rest never arrive.
func BadRankBranch(c *spmd.Comm) {
	if c.Rank() == 0 {
		c.Barrier() // want spmdorder:"control-dependent on the rank"
	}
}

// BadTaintedGuard reaches the collective through a variable derived from
// the rank, exercising the taint fixpoint.
func BadTaintedGuard(c *spmd.Comm) int64 {
	leader := c.Rank() == 0
	var total int64
	if leader {
		total = spmd.AllreduceI64(c, 1, spmd.OpSum) // want spmdorder:"AllreduceI64"
	}
	return total
}

// BadRankLoop runs a rank-dependent trip count around a collective, so
// different ranks issue different collective sequences.
func BadRankLoop(c *spmd.Comm) {
	for i := 0; i < c.Rank(); i++ {
		c.Barrier() // want spmdorder:"Comm.Barrier"
	}
}

// GoodComputeThenShare is the sanctioned idiom: rank-conditional *local*
// work, then an unconditional collective shares the result.
func GoodComputeThenShare(c *spmd.Comm) int {
	v := 0
	if c.Rank() == 0 {
		v = 42
	}
	return spmd.Bcast(c, v, 0)
}

// GoodUnconditional collectives are never flagged.
func GoodUnconditional(c *spmd.Comm) int64 {
	c.Barrier()
	return spmd.AllreduceI64(c, 1, spmd.OpMax)
}

// SuppressedDiagnostic carries a reasoned //lint:ignore: the diagnostic
// is still emitted but marked suppressed and does not fail the run.
func SuppressedDiagnostic(c *spmd.Comm) {
	if c.Rank() == 0 {
		//lint:ignore spmdorder fixture exercising the suppression path
		c.Barrier() // wantsup spmdorder:"control-dependent"
	}
}

// MissingReason shows that a reasonless directive is itself a diagnostic
// and suppresses nothing.
func MissingReason(c *spmd.Comm) {
	if c.Rank() == 0 {
		//lint:ignore spmdorder
		// want(-1) suppress:"need an analyzer name and a reason"
		c.Barrier() // want spmdorder:"control-dependent"
	}
}
