// Package helpers is the support package of the interproc fixture: the
// functions here are deliberately clean on their own — the bugs live in
// the callers, which the engine can only see by flowing these summaries
// across the package boundary. lint_test.go checks this package stays
// diagnostic-free.
package helpers

import (
	"dibella/internal/machine"
	"dibella/internal/spmd"
)

// DoExchange wraps a collective. A caller that guards it on the rank
// diverges the collective schedule even though no spmd call appears in
// the caller's body.
func DoExchange(c *spmd.Comm, v int64) []int64 {
	return spmd.Allgather(c, v)
}

// MyRank is a rank wrapper: its result carries the rank label out of
// the package.
func MyRank(c *spmd.Comm) int {
	return c.Rank()
}

// Half forwards its parameter's label to its result (a splitter shape:
// rank in, rank-derived bound out).
func Half(n int) int {
	return n / 2
}

// RunRounds runs one barrier per round: the parameter bounds the
// collective trip count, so a rank-derived argument gives different
// ranks different schedules.
func RunRounds(c *spmd.Comm, rounds int) {
	for i := 0; i < rounds; i++ {
		c.Barrier()
	}
}

// Price charges the async-post CPU cost: callers pricing through this
// wrapper satisfy modeledcost across the package boundary.
func Price(m *machine.Model) float64 {
	return m.IPostTime()
}
