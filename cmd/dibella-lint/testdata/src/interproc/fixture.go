// Package interproc is a dibella-lint test fixture for the
// interprocedural engine: every violation here reaches its collective
// (or its rank value) through the helpers package, so catching it
// requires the cross-package call-graph summaries. Expected diagnostics
// are encoded in the // want comments (see lint_test.go).
package interproc

import (
	"dibella/cmd/dibella-lint/testdata/src/interproc/helpers"
	"dibella/internal/machine"
	"dibella/internal/spmd"
)

// BadHelperCollective guards a collective-bearing helper on the rank:
// no spmd call in sight, but rank 0 runs an Allgather the other ranks
// never join.
func BadHelperCollective(c *spmd.Comm) {
	if c.Rank() == 0 {
		helpers.DoExchange(c, 1) // want spmdorder:"helpers.DoExchange"
	}
}

// BadHelperRank derives its guard from the rank through two helper
// layers: MyRank's result is rank-labeled and Half forwards it.
func BadHelperRank(c *spmd.Comm) {
	half := helpers.Half(helpers.MyRank(c))
	if half == 0 {
		c.Barrier() // want spmdorder:"control-dependent on the rank"
	}
}

// BadRankTripCount passes a rank-derived trip count to a helper whose
// parameter bounds a collective loop: ranks issue different numbers of
// barriers.
func BadRankTripCount(c *spmd.Comm) {
	helpers.RunRounds(c, c.Rank()) // want spmdorder:"controls how many collectives"
}

// GoodUnconditionalHelper sends rank-derived *data* through an
// unconditional collective-bearing helper: every rank runs the same
// exchange, only the payload differs. Never flagged.
func GoodUnconditionalHelper(c *spmd.Comm) []int64 {
	return helpers.DoExchange(c, int64(c.Rank()))
}

// GoodSanitized launders a rank-derived decision through a Bcast before
// branching on it: after the broadcast every rank holds the same value,
// so the guarded barrier cannot diverge.
func GoodSanitized(c *spmd.Comm) {
	leader := helpers.MyRank(c) == 0
	decision := spmd.Bcast(c, leader, 0)
	if decision {
		c.Barrier()
	}
}

// GoodRankLocalLoop runs a rank-bounded loop with no collective inside:
// rank-dependent local work is the whole point of SPMD.
func GoodRankLocalLoop(c *spmd.Comm) int {
	sum := 0
	for i := 0; i < helpers.MyRank(c); i++ {
		sum += i
	}
	return sum
}

// GoodPricedCrossPackage prices its transport calls through a helper in
// another package: the pricing closure must cross the boundary too.
func GoodPricedCrossPackage(m *machine.Model, tr spmd.Transport, send [][]byte) ([][]byte, error) {
	cost := helpers.Price(m)
	pe, err := tr.IAlltoallv(send, cost, 0)
	if err != nil {
		return nil, err
	}
	recv, _, _, err := pe.Wait()
	return recv, err
}

// SuppressedHelper shows the interprocedural finding riding the same
// suppression machinery as the direct ones.
func SuppressedHelper(c *spmd.Comm) {
	if c.Rank() == 0 {
		//lint:ignore spmdorder fixture exercising suppression of a via-helper finding
		helpers.DoExchange(c, 2) // wantsup spmdorder:"helpers.DoExchange"
	}
}

// StaleDirective carries a well-formed directive that excuses nothing:
// the barrier below is unconditional, so the directive itself is
// reported (as analyzer "suppress", which cannot be suppressed).
func StaleDirective(c *spmd.Comm) {
	//lint:ignore spmdorder this barrier used to be rank-guarded
	// want(-1) suppress:"suppresses nothing"
	c.Barrier()
}
