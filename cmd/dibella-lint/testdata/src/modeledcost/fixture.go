// Package modeledcost is a dibella-lint test fixture: transport calls
// with and without a machine.Model pricing call in reach. Expected
// diagnostics are encoded in the // want comments (see lint_test.go).
package modeledcost

import (
	"dibella/internal/machine"
	"dibella/internal/spmd"
)

// BadUnpriced exchanges bytes with no machine.Model pricing in reach:
// the virtual_seconds series would undercount this mechanism.
func BadUnpriced(tr spmd.Transport, send [][]byte) [][]byte {
	recv, _, _, err := tr.Alltoallv(send, 0, 0) // want modeledcost:"nothing is modeled as free"
	if err != nil {
		panic(err)
	}
	return recv
}

// BadUnpricedWait completes a posted exchange without pricing it.
func BadUnpricedWait(pe spmd.PendingExchange) error {
	_, _, _, err := pe.Wait() // want modeledcost:"PendingExchange.Wait"
	return err
}

// GoodPriced prices the exchange directly.
func GoodPriced(m *machine.Model, tr spmd.Transport, send [][]byte, maxBytes float64) ([][]byte, error) {
	cost := m.AlltoallvTime(0, maxBytes)
	recv, _, _, err := tr.Alltoallv(send, cost, maxBytes)
	return recv, err
}

// GoodPricedViaHelper prices through a same-package helper: the pricing
// closure is computed to a fixpoint, so wrapper layers count.
func GoodPricedViaHelper(m *machine.Model, pe spmd.PendingExchange) error {
	advance(m)
	_, _, _, err := pe.Wait()
	return err
}

func advance(m *machine.Model) float64 { return m.IPostTime() }

// SuppressedTransfer documents why this call is free; the diagnostic is
// emitted but suppressed.
func SuppressedTransfer(tr spmd.Transport, send [][]byte) {
	//lint:ignore modeledcost fixture exercising the suppression path
	_, _, _, err := tr.Alltoallv(send, 0, 0) // wantsup modeledcost:"Transport.Alltoallv"
	if err != nil {
		panic(err)
	}
}
