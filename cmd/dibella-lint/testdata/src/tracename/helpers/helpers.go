// Package helpers declares trace names for the tracename fixture's
// cross-package case: a qualified constant is still a package-level
// constant.
package helpers

const TraceSharedSpan = "helpers.span"
