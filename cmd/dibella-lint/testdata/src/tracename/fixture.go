// Package tracename is a dibella-lint test fixture: trace event and
// metric names must be package-level string constants. Expected
// diagnostics are encoded in the // want comments (see lint_test.go).
package tracename

import (
	"fmt"

	"dibella/cmd/dibella-lint/testdata/src/tracename/helpers"
	"dibella/internal/trace"
)

// The registered name surface of this fixture.
const (
	traceGoodSpan   = "fixture.span"
	traceGoodMark   = "fixture.mark"
	metricGoodTotal = "fixture_total"
)

// Registration with a constant name is the sanctioned pattern.
var goodTotal = trace.RegisterCounter(metricGoodTotal, "a registered fixture counter")

// GoodConstants emits only registered names; tag values are data and
// may be dynamic.
func GoodConstants(rec *trace.Recorder, tenant string) {
	rec.Begin(traceGoodSpan, 0)
	rec.InstantTag(traceGoodMark, 0, tenant)
	rec.End(traceGoodSpan, 0, 1)
	goodTotal.Inc()
}

// GoodQualified emits a constant declared in another package: scope,
// not declaring package, is what matters.
func GoodQualified(rec *trace.Recorder) {
	rec.Instant(helpers.TraceSharedSpan, 0, 0)
}

// BadLiteral inlines the name at the call site, so no constant
// declaration ever names it.
func BadLiteral(rec *trace.Recorder) {
	rec.Begin("fixture.inline", 0)    // want tracename:"string literal"
	rec.End("fixture.inline", 0, 0)   // want tracename:"string literal"
	rec.FlowOut("fixture.flow", 0, 1) // want tracename:"string literal"
}

// BadLocalVariable launders the name through a local: the set of
// emittable names is no longer enumerable from const declarations.
func BadLocalVariable(rec *trace.Recorder, chunk bool) {
	name := traceGoodSpan
	if chunk {
		name = traceGoodMark
	}
	rec.Instant(name, 0, 0) // want tracename:"the variable name"
}

// BadComputed builds an unbounded name from request data — the failure
// mode the analyzer exists to prevent.
func BadComputed(tenant string) {
	trace.RegisterCounter(fmt.Sprintf("fixture_%s_total", tenant), "per-tenant") // want tracename:"computed value"
}

// BadConcat concatenates at the call site.
func BadConcat(rec *trace.Recorder, suffix string) {
	rec.Instant(traceGoodMark+suffix, 0, 0) // want tracename:"concatenation"
}

// SuppressedLiteral shows the escape hatch for a deliberate one-off.
func SuppressedLiteral(rec *trace.Recorder) {
	//lint:ignore tracename a deliberate fixture-only literal
	rec.Instant("fixture.oneoff", 0, 0) // wantsup tracename:"string literal"
}
