// Package detmap is a dibella-lint test fixture: map iterations, clock
// reads, and PRNG use in a package the test configures as
// output-affecting. Expected diagnostics are encoded in the // want
// comments (see lint_test.go).
package detmap

import (
	"math/rand" // want detmap:"math/rand in output-affecting package"
	"sort"
	"time"
)

// BadKeyOrder lets map iteration order reach the returned slice.
func BadKeyOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want detmap:"map iteration order escapes"
		keys = append(keys, k)
	}
	return keys
}

// BadWallClock reads the raw wall clock.
func BadWallClock() time.Time {
	return time.Now() // want detmap:"use internal/walltime"
}

// BadShuffle consumes the PRNG (detmap flags the import line above).
func BadShuffle(n int) int { return rand.Intn(n) }

// GoodCollectThenSort is the sanctioned idiom: gather, sort, emit.
func GoodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodAccumulate only folds commutatively; order cannot matter.
func GoodAccumulate(m map[string]int) (total, n int) {
	for _, v := range m {
		total += v
		n++
	}
	return total, n
}

// GoodSetInsert writes a distinct element of another map per iteration.
func GoodSetInsert(m map[string]int) map[string]bool {
	seen := make(map[string]bool, len(m))
	for k := range m {
		seen[k] = true
	}
	return seen
}

// SuppressedRange documents why order cannot matter here; the diagnostic
// is emitted but suppressed.
func SuppressedRange(m map[string]int) []string {
	var out []string
	//lint:ignore detmap caller treats the result as an unordered set
	for k := range m { // wantsup detmap:"map iteration order"
		out = append(out, k)
	}
	return out
}
