// Package handleleak is a dibella-lint test fixture: posted exchange
// handles that do (and do not) reach Wait on every path. Expected
// diagnostics are encoded in the // want comments (see lint_test.go).
package handleleak

import (
	"dibella/internal/machine"
	"dibella/internal/spmd"
)

// BadEarlyReturn posts, then returns early on a non-error path with the
// exchange still pending: the peers posted their sides, so the world's
// next collective pairs against a half-completed matrix.
func BadEarlyReturn(c *spmd.Comm, send [][]byte, skip bool) [][]byte {
	h := spmd.IAlltoallv(c, send) // want handleleak:"without Wait"
	if skip {
		return nil
	}
	return h.Wait()
}

// BadDiscarded drops the handle on the floor: nothing can ever Wait.
func BadDiscarded(c *spmd.Comm, send [][]byte) {
	spmd.IAlltoallv(c, send) // want handleleak:"discarded without Wait"
}

// BadBlank binds the handle to the blank identifier — the same leak,
// spelled as an assignment.
func BadBlank(c *spmd.Comm, send [][]byte) {
	_ = spmd.IAlltoallv(c, send) // want handleleak:"discarded without Wait"
}

// BadSkippedWait waits on one branch only; the other falls off the end
// of the function with the exchange pending.
func BadSkippedWait(c *spmd.Comm, send [][]byte, flush bool) {
	h := spmd.IAlltoallv(c, send) // want handleleak:"end of the function"
	if flush {
		h.Wait()
	}
}

// GoodWaited is the plain post → wait pairing.
func GoodWaited(c *spmd.Comm, send [][]byte) [][]byte {
	h := spmd.IAlltoallv(c, send)
	return h.Wait()
}

// GoodBothBranches waits on every arm before leaving.
func GoodBothBranches(c *spmd.Comm, send [][]byte, drain bool) int {
	h := spmd.IAlltoallv(c, send)
	if drain {
		return len(h.Wait())
	}
	h.Wait()
	return 0
}

// GoodErrGuard is the transport idiom: on the error arm the exchange
// was never posted, so there is nothing to Wait on.
func GoodErrGuard(m *machine.Model, tr spmd.Transport, send [][]byte) ([][]byte, error) {
	pe, err := tr.IAlltoallv(send, m.IPostTime(), 0)
	if err != nil {
		return nil, err
	}
	recv, _, _, err := pe.Wait()
	return recv, err
}

// GoodReturned hands the handle to the caller: ownership moved, the
// Wait obligation moves with it.
func GoodReturned(c *spmd.Comm, send [][]byte) *spmd.Handle[byte] {
	h := spmd.IAlltoallv(c, send)
	return h
}

// GoodNamedResult publishes the handle through a named result on a
// bare return.
func GoodNamedResult(c *spmd.Comm, send [][]byte) (h *spmd.Handle[byte]) {
	h = spmd.IAlltoallv(c, send)
	return
}

// GoodLoopAppend parks handles in a pending slice and drains it later:
// append moves ownership somewhere this walk cannot follow, so it
// counts as a discharge, not a leak.
func GoodLoopAppend(c *spmd.Comm, batches [][][]byte) [][][]byte {
	var pending []*spmd.Handle[byte]
	for _, send := range batches {
		h := spmd.IAlltoallv(c, send)
		pending = append(pending, h)
	}
	var out [][][]byte
	for _, h := range pending {
		out = append(out, h.Wait())
	}
	return out
}

// SuppressedLeak carries a reasoned //lint:ignore: the diagnostic is
// still emitted but marked suppressed and does not fail the run.
func SuppressedLeak(c *spmd.Comm, send [][]byte) {
	//lint:ignore handleleak fixture exercising the suppression path
	spmd.IAlltoallv(c, send) // wantsup handleleak:"discarded without Wait"
}
