package main

// SARIF 2.1.0 output for GitHub code scanning: the CI lint job uploads
// the log so diagnostics annotate pull requests inline. Suppressed
// diagnostics are included with their //lint:ignore reason as an
// in-source suppression, so code scanning shows them as dismissed
// rather than open.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// writeSARIF writes all diagnostics (suppressed included) as one SARIF
// run. File paths are made repo-relative so code scanning can map them.
func writeSARIF(path string, analyzers []*Analyzer, diags []Diagnostic) error {
	cwd, _ := os.Getwd()
	rules := []sarifRule{{
		ID:               "suppress",
		ShortDescription: sarifText{Text: "malformed or stale //lint:ignore directives"},
	}}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.File
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.File); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		r := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			}}},
		}
		if d.Suppressed != "" {
			r.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: d.Suppressed}}
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dibella-lint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
