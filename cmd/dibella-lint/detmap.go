package main

// detmap: output-affecting packages must not leak Go's randomized map
// iteration order (or wall-clock / PRNG values) into their results.
//
// The house invariant is byte-identical PAF across transports, schedules,
// world sizes, and resume paths; checkpoint segment digests extend it to
// on-disk state. A `for k := range m` whose iteration order reaches the
// output breaks that silently and intermittently.
//
// A range over a map in an audited package is flagged unless one of two
// escape hatches shows the order cannot matter:
//
//   - the loop body is order-insensitive: it only accumulates into
//     numeric scalars with commutative ops (+=, |=, ...), inserts into
//     another map keyed by the range key, deletes from the ranged map,
//     declares loop-locals, or bails out via return/panic (failure
//     paths); or
//   - a sort.* / slices.Sort* call follows the loop in the same function
//     (the collect-then-sort idiom).
//
// Both are heuristics (a later sort of something unrelated also passes);
// they are deliberately cheap to reason about, and the //lint:ignore
// escape hatch covers what they cannot see.
//
// The same analyzer bans time.Now and math/rand in audited packages:
// wall-clock accounting must go through internal/walltime, whose opaque
// Point type cannot leak an absolute timestamp into output.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var detmapAnalyzer = &Analyzer{
	Name: "detmap",
	Doc:  "flags nondeterministic map iteration, time.Now, and math/rand in output-affecting packages",
	Run:  runDetmap,
}

func runDetmap(p *Pkg, _ *Program, cfg *Config, report reporter) {
	if !cfg.detmapAudited(p.ImportPath) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				report(imp.Pos(), "math/rand in output-affecting package %s: seeded or not, PRNG state must not reach PAF or checkpoint bytes", p.ImportPath)
			}
		}
	}
	for _, fd := range funcDecls(p) {
		body := fd.Body
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeOf(p.Info, n); fn != nil && fn.Name() == "Now" && pkgPathOf(fn) == "time" {
					report(n.Pos(), "time.Now in output-affecting package %s: use internal/walltime for wall-clock accounting", p.ImportPath)
				}
			case *ast.RangeStmt:
				t := p.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if orderInsensitiveLoop(p.Info, n) || sortsAfter(p.Info, body, n.End()) {
					return true
				}
				report(n.Pos(), "map iteration order escapes this loop: sort before emitting, restructure into a commutative accumulation, or iterate a sorted key slice")
			}
			return true
		})
	}
}

// sortsAfter reports whether a sort call (package sort or slices) occurs
// after pos in the function body — the collect-then-sort idiom.
func sortsAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return !found
		}
		if fn := calleeOf(info, call); fn != nil {
			switch pkgPathOf(fn) {
			case "sort", "slices":
				found = true
			}
		}
		return !found
	})
	return found
}

// orderInsensitiveLoop reports whether the range body cannot observe the
// iteration order (see the package comment for the allowed forms).
func orderInsensitiveLoop(info *types.Info, rs *ast.RangeStmt) bool {
	keyObj := rangeVarObj(info, rs.Key)
	var stmtOK func(s ast.Stmt) bool
	stmtsOK := func(list []ast.Stmt) bool {
		for _, s := range list {
			if !stmtOK(s) {
				return false
			}
		}
		return true
	}
	stmtOK = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.IncDecStmt:
			return isNumeric(info, s.X)
		case *ast.AssignStmt:
			switch s.Tok {
			case token.DEFINE:
				return true // loop-local declaration
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
				token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
				return len(s.Lhs) == 1 && isNumeric(info, s.Lhs[0])
			case token.ASSIGN:
				for _, l := range s.Lhs {
					if !assignTargetOK(info, rs, keyObj, l) {
						return false
					}
				}
				return true
			}
			return false
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "panic":
					return true
				case "delete":
					// Deleting the current key from the ranged map is the
					// filter idiom; deleting anything else is ordered.
					return len(call.Args) == 2 && sameObj(info, call.Args[1], keyObj)
				}
			}
			return false
		case *ast.IfStmt:
			if s.Init != nil && !stmtOK(s.Init) {
				return false
			}
			if !stmtsOK(s.Body.List) {
				return false
			}
			return s.Else == nil || stmtOK(s.Else)
		case *ast.SwitchStmt:
			if s.Init != nil && !stmtOK(s.Init) {
				return false
			}
			for _, c := range s.Body.List {
				if !stmtsOK(c.(*ast.CaseClause).Body) {
					return false
				}
			}
			return true
		case *ast.BlockStmt:
			return stmtsOK(s.List)
		case *ast.ReturnStmt:
			// Early returns are failure paths here (which error surfaces
			// may vary, the success output does not).
			return true
		case *ast.BranchStmt:
			// continue is fine; break/goto make the exit iteration-order
			// dependent.
			return s.Tok == token.CONTINUE
		case *ast.RangeStmt:
			// A nested range is fine when its own body is; a nested range
			// over another map is additionally judged on its own by the
			// main walk.
			return stmtOK(s.Body)
		case *ast.ForStmt:
			return (s.Init == nil || stmtOK(s.Init)) &&
				(s.Post == nil || stmtOK(s.Post)) && stmtOK(s.Body)
		case *ast.DeclStmt:
			return true
		}
		return false
	}
	return stmtsOK(rs.Body.List)
}

// assignTargetOK accepts plain assignments that stay order-free: writes
// to variables declared inside the loop body, and inserts into another
// map indexed by the range key (a set insert — each iteration writes a
// distinct element).
func assignTargetOK(info *types.Info, rs *ast.RangeStmt, keyObj types.Object, l ast.Expr) bool {
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return true
		}
		obj := info.Uses[l]
		return obj != nil && rs.Body.Pos() <= obj.Pos() && obj.Pos() < rs.Body.End()
	case *ast.IndexExpr:
		t := info.TypeOf(l.X)
		if t == nil {
			return false
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return false
		}
		return sameObj(info, l.Index, keyObj)
	}
	return false
}

// rangeVarObj resolves the object of a range key/value variable.
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// sameObj reports whether e is an identifier bound to obj.
func sameObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

func isNumeric(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsNumeric) != 0
}
