package main

// Per-function summaries and the label-based taint engine behind them.
//
// Labels are a bitmask: bit 0 means "derived from Rank()", bit i+1
// means "derived from parameter i". A function's summary records
//
//   - whether it (transitively) executes a collective, with a short
//     call chain for the diagnostic;
//   - whether its results carry the rank label regardless of arguments
//     (a MyRank-style wrapper);
//   - which parameters' labels flow into its results (a blockRange-style
//     splitter: rank in, rank-derived bounds out);
//   - which parameters control whether — or how many times — a
//     collective runs (a RunRounds-style loop: rank-derived trip count
//     in, diverging collective schedules out);
//   - whether it prices a machine.Model cost (modeledcost's closure,
//     now cross-package).
//
// Collective calls are label *sanitizers*: their results are
// world-uniform by construction (every rank gets the same bytes), so
// `n = Bcast(c, n, 0)` launders a rank-derived n back to uniform. That
// single rule is what keeps the sanctioned compute-then-share idiom
// clean under the stronger analysis.

import (
	"go/ast"
	"go/types"
)

// FuncSummary is the interprocedural abstract of one function.
type FuncSummary struct {
	// Collects: the function executes a collective on some path,
	// directly or through callees. CollectChain names the path
	// ("RunQuery → spmd.GatherTo") for diagnostics.
	Collects     bool
	CollectChain string
	// ResultsRanky: some result carries the rank label independent of
	// the arguments.
	ResultsRanky bool
	// ParamToResult: parameter bits whose labels flow into the results.
	ParamToResult uint64
	// ParamGuards: parameter bits that control a collective (guard a
	// branch around one, bound a loop containing one, or flow into a
	// callee's guarding parameter).
	ParamGuards uint64
	// Prices: the function calls a machine.Model pricing method,
	// directly or through callees.
	Prices bool
}

const rankBit uint64 = 1

// paramBitOf returns the label bit of parameter i (high parameter
// counts collapse onto the last bit; precision there is irrelevant).
func paramBitOf(i int) uint64 {
	if i > 62 {
		i = 62
	}
	return 1 << uint(i+1)
}

// argParamIndex maps argument position j to the callee's parameter
// index, folding variadic tails onto the last parameter.
func argParamIndex(sig *types.Signature, j int) int {
	n := sig.Params().Len()
	if n == 0 {
		return -1
	}
	if j >= n {
		return n - 1
	}
	return j
}

// labelCtx carries what exprLabels needs: the package's type info, the
// program summaries, and the current object→label map.
type labelCtx struct {
	info   *types.Info
	cfg    *Config
	prog   *Program
	labels map[types.Object]uint64
}

// exprLabels computes the label mask of an expression under the current
// object labels.
func exprLabels(ctx *labelCtx, e ast.Expr) uint64 {
	var l uint64
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure value is not a rank value; its body is analyzed
			// as its own unit.
			return false
		case *ast.CallExpr:
			l |= callLabels(ctx, n)
			return false
		case *ast.Ident:
			if obj := ctx.info.Uses[n]; obj != nil {
				l |= ctx.labels[obj]
			}
		}
		return true
	})
	return l
}

// callLabels computes the label mask of a call's results.
func callLabels(ctx *labelCtx, call *ast.CallExpr) uint64 {
	if isRankCall(ctx.info, ctx.cfg, call) {
		return rankBit
	}
	if _, ok := isCollectiveCall(ctx.info, ctx.cfg, call); ok {
		// Sanitizer: collective results are world-uniform.
		return 0
	}
	fn := calleeOf(ctx.info, call)
	if sum := ctx.prog.SummaryOf(fn); sum != nil {
		// Summarized callee: flow labels precisely through the summary.
		var l uint64
		if sum.ResultsRanky {
			l |= rankBit
		}
		sig := fn.Type().(*types.Signature)
		for j, arg := range call.Args {
			if i := argParamIndex(sig, j); i >= 0 && sum.ParamToResult&paramBitOf(i) != 0 {
				l |= exprLabels(ctx, arg)
			}
		}
		return l
	}
	// Unknown callee (stdlib, interface dispatch, func value, builtin):
	// any labeled subexpression labels the result — the coarse rule the
	// intraprocedural analyzer used for everything.
	var l uint64
	l |= exprLabels(ctx, call.Fun)
	for _, arg := range call.Args {
		l |= exprLabels(ctx, arg)
	}
	return l
}

// funcLabels computes the object→label map of one function body by
// fixpoint over its assignments, with parameters seeded to their bits.
// Like the original rank taint, it is flow-insensitive and a
// multi-value RHS labels every LHS.
func funcLabels(prog *Program, d *declInfo) map[types.Object]uint64 {
	info := d.pkg.Info
	ctx := &labelCtx{info: info, cfg: prog.cfg, prog: prog, labels: make(map[types.Object]uint64)}
	sig := d.fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		ctx.labels[sig.Params().At(i)] = paramBitOf(i)
	}
	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	for changed := true; changed; {
		changed = false
		add := func(obj types.Object, l uint64) {
			if obj == nil || l == 0 {
				return
			}
			if ctx.labels[obj]|l != ctx.labels[obj] {
				ctx.labels[obj] |= l
				changed = true
			}
		}
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				var l uint64
				for _, r := range n.Rhs {
					l |= exprLabels(ctx, r)
				}
				for _, lhs := range n.Lhs {
					add(objOf(lhs), l)
				}
			case *ast.ValueSpec:
				var l uint64
				for _, r := range n.Values {
					l |= exprLabels(ctx, r)
				}
				for _, name := range n.Names {
					add(info.Defs[name], l)
				}
			}
			return true
		})
	}
	return ctx.labels
}

// collectiveSite is one place in a function body where collective
// execution can depend on a labeled value: a collective (or a callee
// that collects) under a labeled condition, or a labeled argument
// passed to a callee parameter that controls a collective.
type collectiveSite struct {
	call *ast.CallExpr
	// mask is the guard mask for guarded sites, or the argument's label
	// mask for argFlow sites.
	mask uint64
	// name is the collective ("spmd.Bcast") or the callee with its
	// chain ("helpers.DoExchange (→ spmd.Allgather)").
	name string
	// via is true when the collective is reached through a callee
	// rather than called directly.
	via bool
	// argFlow is true when the site is a labeled argument controlling
	// the callee's collective schedule, independent of local guards.
	argFlow bool
}

// funcCollectiveSites walks one function body tracking the OR of labels
// of the enclosing if/switch/for/range conditions, and yields every
// collective-bearing site together with the label mask it depends on.
// Sites with mask 0 (unconditional collectives) are included so the
// summary can record that the function collects at all.
func funcCollectiveSites(prog *Program, d *declInfo, labels map[types.Object]uint64) []collectiveSite {
	info := d.pkg.Info
	ctx := &labelCtx{info: info, cfg: prog.cfg, prog: prog, labels: labels}
	var sites []collectiveSite
	var guard uint64
	var walk func(n ast.Node) bool
	inspect := func(n ast.Node) {
		if n != nil {
			ast.Inspect(n, walk)
		}
	}
	guarded := func(mask uint64, body ...ast.Node) {
		old := guard
		guard |= mask
		for _, n := range body {
			inspect(n)
		}
		guard = old
	}
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := isCollectiveCall(info, ctx.cfg, n); ok {
				sites = append(sites, collectiveSite{call: n, mask: guard, name: "spmd." + name})
			} else if fn := calleeOf(info, n); fn != nil {
				if sum := prog.SummaryOf(fn); sum != nil {
					if sum.Collects {
						sites = append(sites, collectiveSite{
							call: n, mask: guard, via: true,
							name: funcDisplayName(fn) + " (→ " + sum.CollectChain + ")",
						})
					}
					if sum.ParamGuards != 0 {
						sig := fn.Type().(*types.Signature)
						for j, arg := range n.Args {
							i := argParamIndex(sig, j)
							if i < 0 || sum.ParamGuards&paramBitOf(i) == 0 {
								continue
							}
							if m := exprLabels(ctx, arg); m != 0 {
								sites = append(sites, collectiveSite{
									call: n, mask: m, via: true, argFlow: true,
									name: funcDisplayName(fn),
								})
							}
						}
					}
				}
			}
		case *ast.IfStmt:
			mask := exprLabels(ctx, n.Cond)
			inspect(n.Init)
			inspect(n.Cond)
			guarded(mask, n.Body, n.Else)
			return false
		case *ast.SwitchStmt:
			var mask uint64
			if n.Tag != nil {
				mask = exprLabels(ctx, n.Tag)
			} else {
				// A tagless switch is guarded by its case expressions.
				for _, s := range n.Body.List {
					for _, e := range s.(*ast.CaseClause).List {
						mask |= exprLabels(ctx, e)
					}
				}
			}
			inspect(n.Init)
			if n.Tag != nil {
				inspect(n.Tag)
			}
			guarded(mask, n.Body)
			return false
		case *ast.ForStmt:
			var mask uint64
			if n.Cond != nil {
				mask = exprLabels(ctx, n.Cond)
			}
			inspect(n.Init)
			if n.Cond != nil {
				inspect(n.Cond)
			}
			inspect(n.Post)
			guarded(mask, n.Body)
			return false
		case *ast.RangeStmt:
			mask := exprLabels(ctx, n.X)
			inspect(n.X)
			guarded(mask, n.Body)
			return false
		}
		return true
	}
	ast.Inspect(d.decl.Body, walk)
	return sites
}

// funcDisplayName renders a callee for diagnostics: "pkg.Func" or
// "pkg.Type.Method", using the short package name.
func funcDisplayName(fn *types.Func) string {
	fn = fn.Origin()
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name = recvTypeName(sig) + "." + name
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// computeSummary evaluates one function's summary under the current
// program summaries (one step of the fixpoint in Program.solve).
func computeSummary(prog *Program, d *declInfo) *FuncSummary {
	labels := funcLabels(prog, d)
	ctx := &labelCtx{info: d.pkg.Info, cfg: prog.cfg, prog: prog, labels: labels}
	s := &FuncSummary{}

	// Result labels from every return statement (an empty return means
	// named results, whose labels the assignment fixpoint tracked).
	sig := d.fn.Type().(*types.Signature)
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		var l uint64
		if len(ret.Results) == 0 {
			for i := 0; i < sig.Results().Len(); i++ {
				l |= ctx.labels[sig.Results().At(i)]
			}
		}
		for _, r := range ret.Results {
			l |= exprLabels(ctx, r)
		}
		s.ResultsRanky = s.ResultsRanky || l&rankBit != 0
		s.ParamToResult |= l &^ rankBit
		return true
	})

	// Collectives and what guards them.
	for _, site := range funcCollectiveSites(prog, d, labels) {
		if !site.argFlow && !s.Collects {
			s.Collects = true
			s.CollectChain = site.name
		}
		s.ParamGuards |= site.mask &^ rankBit
		if site.argFlow {
			// A labeled argument controlling a callee's schedule makes
			// this function collect (through that callee) too.
			if !s.Collects {
				s.Collects = true
				s.CollectChain = site.name
			}
		}
	}

	// Pricing closure, now across package boundaries.
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeOf(d.pkg.Info, call); fn != nil {
			if prog.cfg.PricingMethods[fn.Name()] {
				s.Prices = true
			} else if sum := prog.SummaryOf(fn); sum != nil && sum.Prices {
				s.Prices = true
			}
		}
		return true
	})
	return s
}
