package main

// tracename: trace event and metric names must be registered
// package-level string constants.
//
// The observability plane's contract is that the full set of names a
// binary can emit is enumerable by reading its constant declarations:
// dashboards, alert rules, and the OBSERVABILITY.md tables are written
// against those names, and a name synthesized at runtime (a literal in
// one call site, a fmt.Sprintf of a request field) silently escapes
// every one of them — or worse, turns a bounded metric family into an
// unbounded one. Each call into the trace package that carries a name
// (Recorder.Begin/End/Instant/Flow*, Register*) must therefore pass an
// identifier resolving to a const declared at package scope. Tag and
// label *values* are unconstrained: they are data, not names.

import (
	"go/ast"
	"go/types"
)

var tracenameAnalyzer = &Analyzer{
	Name: "tracename",
	Doc:  "flags trace event / metric names that are not package-level constants",
	Run:  runTracename,
}

func runTracename(p *Pkg, _ *Program, cfg *Config, report reporter) {
	// The trace package itself is exempt: it declares the emit surface
	// and necessarily forwards name parameters through helpers.
	if p.ImportPath == cfg.TracePath {
		return
	}
	for _, fd := range funcDecls(p) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(p.Info, call)
			if fn == nil || pkgPathOf(fn) != cfg.TracePath {
				return true
			}
			idx, ok := cfg.TraceNameFuncs[fn.Name()]
			if !ok || idx >= len(call.Args) {
				return true
			}
			arg := ast.Unparen(call.Args[idx])
			if !isPackageLevelConst(p.Info, arg) {
				report(arg.Pos(), "trace name passed to %s.%s must be a package-level constant, not %s: every emittable name must be greppable from const declarations",
					pathTail(cfg.TracePath), fn.Name(), describeArg(arg))
			}
			return true
		})
	}
}

// isPackageLevelConst reports whether the expression is an identifier
// (possibly package-qualified) resolving to a constant declared at
// package scope.
func isPackageLevelConst(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	obj, ok := info.Uses[id].(*types.Const)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Parent() == obj.Pkg().Scope()
}

// describeArg names the offending expression kind for the diagnostic.
func describeArg(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.BasicLit:
		return "a string literal"
	case *ast.Ident:
		return "the variable " + e.Name
	case *ast.SelectorExpr:
		return "the variable " + e.Sel.Name
	case *ast.CallExpr:
		return "a computed value"
	case *ast.BinaryExpr:
		return "a concatenation"
	}
	return "a non-constant expression"
}

// pathTail returns the last element of an import path.
func pathTail(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
