package main

// The analyzer framework: diagnostics, the //lint:ignore suppression
// convention, and the type-resolution helpers shared by the analyzers.
//
// Suppression: a diagnostic is suppressed by
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or on the line directly above it. The reason is
// mandatory — a suppression without one is itself reported (analyzer
// "suppress") and does not suppress anything. A well-formed directive
// that matches no diagnostic is stale — the code it excused has been
// fixed or moved — and is reported too, so suppressions cannot outlive
// their findings.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Suppressed carries the //lint:ignore reason when one applied.
	Suppressed string `json:"suppressed,omitempty"`
}

// Analyzer is one static check over a type-checked package. Run also
// receives the whole-run Program, whose call-graph summaries let a
// check reason across function and package boundaries.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pkg, prog *Program, cfg *Config, report reporter)
}

type reporter func(pos token.Pos, format string, args ...any)

// allAnalyzers returns the suite in reporting order.
func allAnalyzers() []*Analyzer {
	return []*Analyzer{spmdorderAnalyzer, detmapAnalyzer, modeledcostAnalyzer, collecterrAnalyzer, handleleakAnalyzer, tracenameAnalyzer}
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// collectSuppressions parses every //lint:ignore directive in the package,
// keyed by file and line. Malformed directives (no analyzer, or no reason)
// are reported immediately.
func collectSuppressions(p *Pkg, report reporter) map[string]map[int]*suppression {
	sups := make(map[string]map[int]*suppression)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(c.Pos(), "malformed //lint:ignore: need an analyzer name and a reason")
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := sups[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*suppression)
					sups[pos.Filename] = byLine
				}
				byLine[pos.Line] = &suppression{analyzer: fields[0], reason: strings.Join(fields[1:], " "), pos: c.Pos()}
			}
		}
	}
	return sups
}

// runAnalyzers runs the given analyzers over one package, applies
// suppressions, and returns all diagnostics (suppressed ones carry the
// reason and do not fail the run). A directive that suppressed nothing
// is reported as stale.
func runAnalyzers(p *Pkg, prog *Program, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	reportAs := func(name string) reporter {
		return func(pos token.Pos, format string, args ...any) {
			position := p.Fset.Position(pos)
			diags = append(diags, Diagnostic{
				Analyzer: name,
				File:     position.Filename,
				Line:     position.Line,
				Col:      position.Column,
				Message:  fmt.Sprintf(format, args...),
			})
		}
	}
	sups := collectSuppressions(p, reportAs("suppress"))
	for _, a := range analyzers {
		a.Run(p, prog, cfg, reportAs(a.Name))
	}
	for i := range diags {
		d := &diags[i]
		if d.Analyzer == "suppress" {
			continue
		}
		for _, line := range []int{d.Line, d.Line - 1} {
			if s, ok := sups[d.File][line]; ok && s.analyzer == d.Analyzer {
				d.Suppressed = s.reason
				s.used = true
				break
			}
		}
	}
	reportStale := reportAs("suppress")
	for _, byLine := range sups {
		for _, s := range byLine {
			if !s.used {
				reportStale(s.pos, "//lint:ignore %s suppresses nothing: the finding it excused is gone, remove the stale directive", s.analyzer)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// calleeOf resolves the function or method object a call invokes,
// unwrapping parentheses and generic instantiations. Returns nil for
// calls through function values, builtins, and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(e.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// pkgPathOf returns the import path of the package declaring fn
// ("" for builtins and error.Error).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isCollectiveCall reports whether a call is one of the SPMD collective
// operations every rank must reach in the same order.
func isCollectiveCall(info *types.Info, cfg *Config, call *ast.CallExpr) (name string, ok bool) {
	fn := calleeOf(info, call)
	if fn == nil || pkgPathOf(fn) != cfg.SpmdPath {
		return "", false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		if cfg.CollectiveMethods[fn.Name()] {
			return recvTypeName(sig) + "." + fn.Name(), true
		}
		return "", false
	}
	if cfg.CollectiveFuncs[fn.Name()] {
		return fn.Name(), true
	}
	return "", false
}

// recvTypeName names a method's receiver type ("Comm", "Transport", ...).
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return "interface"
	}
	return t.String()
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(p *Pkg) []*ast.FuncDecl {
	var decls []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	return decls
}
