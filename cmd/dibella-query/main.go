// Command dibella-query is the client for dibella's serve mode: it sends
// FASTQ reads to a resident alignment daemon (`dibella -serve-addr ...`)
// as one or more query batches and writes the returned PAF records.
//
// Usage:
//
//	dibella-query -addr 127.0.0.1:7913 -in queries.fastq
//	dibella-query -addr 127.0.0.1:7913 -in q.fastq -batch 64 -out hits.paf
//	dibella-query -addr 127.0.0.1:7913 -in q.fastq -tenant alice -shutdown
//	dibella-query -addr 127.0.0.1:7913 -shutdown          # stop the daemon
//
// Each batch is answered with the PAF rows a batch-mode dibella run over
// (indexed reads + batch) would emit for pairs involving a batch read.
//
// Exit status: 0 on success, 1 on transport or I/O failure, 2 on usage
// errors, 4 when the daemon rejects a request with a typed admission
// reason (queue-full, bad-tenant, too-large, empty-batch,
// shutting-down) — the sentinel name is printed on stderr so scripts
// can branch on it.
package main

import (
	"flag"
	"fmt"
	"os"

	"dibella/internal/fastq"
	"dibella/internal/pipeline"
	"dibella/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "", "daemon frontend address (required)")
		in       = flag.String("in", "", "FASTQ/FASTA query reads (required unless only -shutdown)")
		out      = flag.String("out", "", "output PAF file (default: stdout)")
		tenant   = flag.String("tenant", "", "tenant token (required when the daemon has a -serve-tenants allow list)")
		batch    = flag.Int("batch", 0, "split the input into batches of this many reads (0: one batch)")
		timeout  = flag.Duration("timeout", 0, "bound on the dial and on each request/response round trip (0: none)")
		shutdown = flag.Bool("shutdown", false, "after the queries (if any), ask the daemon to drain and exit")
		quiet    = flag.Bool("quiet", false, "suppress per-batch progress lines")
	)
	flag.Parse()

	if *addr == "" {
		usageError("-addr is required")
	}
	if *in == "" && !*shutdown {
		usageError("-in is required (or -shutdown to only stop the daemon)")
	}
	if *batch < 0 {
		usageError("-batch must be non-negative (0 sends one batch), got %d", *batch)
	}
	if *timeout < 0 {
		usageError("-timeout must be non-negative, got %v", *timeout)
	}

	cl, err := serve.DialTimeout(*addr, *timeout)
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	if *in != "" {
		reads, err := fastq.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		queries := make([]pipeline.QueryRead, len(reads))
		for i, r := range reads {
			queries[i] = pipeline.QueryRead{Name: r.Name, Seq: r.Seq}
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		size := len(queries)
		if *batch > 0 {
			size = *batch
		}
		for lo := 0; lo < len(queries); lo += size {
			hi := lo + size
			if hi > len(queries) {
				hi = len(queries)
			}
			res, err := cl.Query(*tenant, queries[lo:hi])
			if err != nil {
				fatal(err)
			}
			if _, err := w.Write(res.PAF); err != nil {
				fatal(err)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "batch %d..%d: %d records (rank %d, waited %.3fs, modeled %.4fs)\n",
					lo, hi-1, res.Records, res.Home, res.QueueWaitSecs, res.VirtualSeconds)
			}
		}
	}
	if *shutdown {
		if err := cl.Shutdown(*tenant); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintln(os.Stderr, "daemon acknowledged shutdown")
		}
	}
}

// fatal reports err and exits: typed daemon rejections exit 4 with the
// sentinel name first on stderr, everything else (transport, I/O) exits 1.
func fatal(err error) {
	if code, ok := serve.RejectionCode(err); ok {
		fmt.Fprintf(os.Stderr, "dibella-query: rejected (%s): %v\n", code, err)
		os.Exit(4)
	}
	fmt.Fprintln(os.Stderr, "dibella-query:", err)
	os.Exit(1)
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dibella-query: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
