module dibella

go 1.24
