package dibella

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, each regenerating the corresponding result via
// the figure harness at a reduced genome scale, plus host-throughput and
// ablation benchmarks. `go test -bench=.` therefore reproduces the whole
// evaluation; `cmd/dibella-bench` prints the same results as tables with
// adjustable scale.

import (
	"testing"

	"dibella/internal/daligner"
	"dibella/internal/figures"
	"dibella/internal/overlap"
	"dibella/internal/pipeline"
	"dibella/internal/seqgen"
)

// benchOptions returns harness options sized for benchmarking: small
// enough to iterate, large enough to exercise every code path.
func benchOptions() *figures.Options {
	o := figures.DefaultOptions()
	o.Scale = 0.01
	o.NodeCounts = []int{1, 4, 16}
	o.SimRanksPerNode = 2
	o.MaxSimRanks = 32
	return o
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		// Fresh options each iteration: the sweep cache must not hide the
		// work being measured.
		if _, err := figures.RunExperiment(id, benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Platforms(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkTable2SingleNode(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkFig3BloomStage(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig4BloomEfficiency(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5HashTable(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFig6Overlap(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig7Alignment(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8Imbalance(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig9Breakdown30x(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFig10Breakdown100x(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11Workloads(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFig12Efficiency(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13Overall(b *testing.B)        { benchExperiment(b, "fig13") }

// benchReads caches one generated data set across host benchmarks.
var benchReads []*Record

func getBenchReads(b *testing.B) []*Record {
	b.Helper()
	if benchReads == nil {
		reads, err := GenerateEColi30x(0.01, 7)
		if err != nil {
			b.Fatal(err)
		}
		benchReads = reads
	}
	return benchReads
}

// BenchmarkPipelineHost measures real host throughput of the full pipeline
// (no platform model), reporting alignments per second.
func BenchmarkPipelineHost(b *testing.B) {
	reads := getBenchReads(b)
	b.ResetTimer()
	var aligns int64
	for i := 0; i < b.N; i++ {
		rep, err := Run(8, reads, Config{K: 17, MaxFreq: 10, SeedMode: OneSeed})
		if err != nil {
			b.Fatal(err)
		}
		aligns = rep.Alignments
	}
	b.ReportMetric(float64(aligns)/b.Elapsed().Seconds()*float64(b.N), "alignments/s")
}

// BenchmarkBaselineHost measures the DALIGNER-style baseline on the same
// input (Table 2's comparison on the host).
func BenchmarkBaselineHost(b *testing.B) {
	reads := getBenchReads(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := daligner.Run(reads, daligner.Config{
			K: 17, MaxFreq: 10, SeedMode: overlap.OneSeed,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks for DESIGN.md's called-out choices ---

// BenchmarkAblationBloomSizingEq2 vs ...HLL: the §6 discussion — the
// closed-form Eq. 2 Bloom sizing vs the HyperLogLog fallback (extra pass).
func BenchmarkAblationBloomSizingEq2(b *testing.B) {
	benchAblationSizing(b, false)
}

func BenchmarkAblationBloomSizingHLL(b *testing.B) {
	benchAblationSizing(b, true)
}

func benchAblationSizing(b *testing.B, useHLL bool) {
	b.Helper()
	reads := getBenchReads(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(8, reads, Config{
			K: 17, MaxFreq: 10, SeedMode: OneSeed, UseHLL: useHLL,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRounds* explores the memory/communication trade of the
// streaming round size (§4's two-pass memory-limited design).
func BenchmarkAblationRoundsLarge(b *testing.B) { benchAblationRounds(b, 1<<20) }
func BenchmarkAblationRoundsSmall(b *testing.B) { benchAblationRounds(b, 1<<14) }

func benchAblationRounds(b *testing.B, batch int) {
	b.Helper()
	reads := getBenchReads(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(8, reads, Config{
			K: 17, MaxFreq: 10, SeedMode: OneSeed, MaxKmersPerRound: batch,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSeedMode* quantifies the computational-intensity knob
// of §5 (one-seed vs d=1K vs d=k).
func BenchmarkAblationSeedModeOne(b *testing.B) { benchAblationSeeds(b, OneSeed, 0) }
func BenchmarkAblationSeedModeD1K(b *testing.B) { benchAblationSeeds(b, MinDistance, 1000) }
func BenchmarkAblationSeedModeDK(b *testing.B)  { benchAblationSeeds(b, AllSeeds, 0) }

func benchAblationSeeds(b *testing.B, mode SeedMode, dist int) {
	b.Helper()
	reads := getBenchReads(b)
	b.ResetTimer()
	var aligns int64
	for i := 0; i < b.N; i++ {
		rep, err := Run(8, reads, Config{
			K: 17, MaxFreq: 10, SeedMode: mode, MinDist: dist,
		})
		if err != nil {
			b.Fatal(err)
		}
		aligns = rep.Alignments
	}
	b.ReportMetric(float64(aligns), "alignments")
}

// BenchmarkAblationKmerLength shows the k trade-off BELLA's theory
// navigates: shorter k inflates candidate pairs.
func BenchmarkAblationK15(b *testing.B) { benchAblationK(b, 15) }
func BenchmarkAblationK17(b *testing.B) { benchAblationK(b, 17) }
func BenchmarkAblationK21(b *testing.B) { benchAblationK(b, 21) }

func benchAblationK(b *testing.B, k int) {
	b.Helper()
	reads := getBenchReads(b)
	b.ResetTimer()
	var pairs int64
	for i := 0; i < b.N; i++ {
		rep, err := Run(8, reads, Config{K: k, MaxFreq: 10, SeedMode: OneSeed})
		if err != nil {
			b.Fatal(err)
		}
		pairs = rep.Pairs
	}
	b.ReportMetric(float64(pairs), "pairs")
}

// BenchmarkAblationMinimizers* quantifies the Minimap2-style minimizer
// compaction (extension): exchanged k-mer volume vs discovered pairs.
func BenchmarkAblationMinimizersOff(b *testing.B) { benchMinimizers(b, 0) }
func BenchmarkAblationMinimizersW5(b *testing.B)  { benchMinimizers(b, 5) }
func BenchmarkAblationMinimizersW10(b *testing.B) { benchMinimizers(b, 10) }

func benchMinimizers(b *testing.B, w int) {
	b.Helper()
	reads := getBenchReads(b)
	b.ResetTimer()
	var pairs int64
	for i := 0; i < b.N; i++ {
		rep, err := Run(8, reads, Config{
			K: 17, MaxFreq: 10, SeedMode: OneSeed, MinimizerWindow: w,
		})
		if err != nil {
			b.Fatal(err)
		}
		pairs = rep.Pairs
	}
	b.ReportMetric(float64(pairs), "pairs")
}

// BenchmarkAblationOwnerPolicy* compares the paper's Algorithm 1 odd/even
// task placement against the future-work alternatives (§9): hashed
// placement and longer-read placement (which shrinks the alignment-stage
// read exchange). The reported metric is bytes of read sequence fetched.
func BenchmarkAblationOwnerOddEven(b *testing.B) {
	benchOwnerPolicy(b, overlap.PolicyOddEven)
}
func BenchmarkAblationOwnerHashed(b *testing.B) {
	benchOwnerPolicy(b, overlap.PolicyHashed)
}
func BenchmarkAblationOwnerLongerRead(b *testing.B) {
	benchOwnerPolicy(b, overlap.PolicyLongerRead)
}

func benchOwnerPolicy(b *testing.B, policy overlap.OwnerPolicy) {
	b.Helper()
	reads := getBenchReads(b)
	b.ResetTimer()
	var fetched int64
	for i := 0; i < b.N; i++ {
		rep, err := Run(8, reads, Config{
			K: 17, MaxFreq: 10, SeedMode: OneSeed, OwnerPolicy: policy,
		})
		if err != nil {
			b.Fatal(err)
		}
		fetched = 0
		for _, rr := range rep.PerRank {
			fetched += rr.Align.FetchedBytes
		}
	}
	b.ReportMetric(float64(fetched), "fetched-bytes")
}

// BenchmarkDalignerBlockMode measures the paper's point about DALIGNER's
// blocked distribution: repeated sorting of block pairs.
func BenchmarkDalignerBlocks1(b *testing.B) { benchBlocks(b, 1) }
func BenchmarkDalignerBlocks4(b *testing.B) { benchBlocks(b, 4) }

func benchBlocks(b *testing.B, blocks int) {
	b.Helper()
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 20000, Seed: 5, Coverage: 10, MeanReadLen: 1500,
		MinReadLen: 400, ErrorRate: 0.12, BothStrands: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := daligner.Run(ds.Reads, daligner.Config{
			K: 17, MaxFreq: 10, Blocks: blocks, SeedMode: overlap.OneSeed,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Silence the unused-import guard for pipeline (used via type aliases).
var _ = pipeline.Stages
