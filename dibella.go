// Package dibella is a Go reproduction of diBELLA, the distributed
// long-read to long-read overlapper and aligner of Ellis, Guidi, Buluç,
// Oliker & Yelick (ICPP 2019).
//
// The library runs BELLA's seed-and-extend overlap/alignment method as a
// four-stage bulk-synchronous pipeline — distributed Bloom filter, k-mer
// hash table, overlap detection, x-drop alignment — over an in-process SPMD
// runtime (goroutine ranks + MPI-style collectives). A per-platform
// performance model reprices executed work to regenerate the paper's
// cross-architecture evaluation on the Cori/Edison/Titan/AWS machine
// models; see DESIGN.md for the substitution inventory and EXPERIMENTS.md
// for paper-versus-measured results.
//
// Quick start:
//
//	reads, _ := dibella.GenerateEColi30x(0.01, 42)
//	rep, err := dibella.Run(8, reads, dibella.Config{K: 17, KeepAlignments: true})
//	if err != nil { ... }
//	fmt.Println(rep.Summary())
//	dibella.WritePAF(os.Stdout, rep, reads)
package dibella

import (
	"fmt"
	"io"

	"dibella/internal/fastq"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/paf"
	"dibella/internal/pipeline"
	"dibella/internal/seqgen"
)

// Re-exported core types. Aliases keep one definition of each while giving
// downstream users a single import.
type (
	// Config holds every runtime parameter of a pipeline execution.
	Config = pipeline.Config
	// Report is the gathered result of one execution.
	Report = pipeline.Report
	// Alignment is one computed pairwise alignment.
	Alignment = pipeline.Alignment
	// Record is one sequencing read.
	Record = fastq.Record
	// Platform describes a modeled machine.
	Platform = machine.Platform
	// SeedMode selects the seed-exploration constraint.
	SeedMode = overlap.SeedMode
)

// Seed exploration modes (§8): one seed per pair, all seeds separated by
// MinDist bases, or all seeds separated by k.
const (
	OneSeed     = overlap.OneSeed
	MinDistance = overlap.MinDistance
	AllSeeds    = overlap.AllSeeds
)

// Exchange scheduling modes: non-blocking overlapped exchanges (the
// default) or the paper's bulk-synchronous schedule. Both produce
// byte-identical PAF.
const (
	ExchangeAsync = pipeline.ExchangeAsync
	ExchangeSync  = pipeline.ExchangeSync
)

// The paper's evaluated platforms (Table 1).
var (
	Cori   = machine.Cori
	Edison = machine.Edison
	Titan  = machine.Titan
	AWS    = machine.AWS
)

// ReadFastq loads a FASTQ or FASTA read set.
func ReadFastq(path string) ([]*Record, error) { return fastq.ReadFile(path) }

// Run executes the full diBELLA pipeline across p in-process ranks on the
// host, without platform modeling, and returns the gathered report.
func Run(p int, reads []*Record, cfg Config) (*Report, error) {
	return pipeline.Execute(p, nil, reads, cfg)
}

// RunModeled executes the pipeline and prices it as a job of
// nodes × platform.CoresPerNode MPI ranks on the given platform model,
// simulated by simRanks goroutine ranks. The report's virtual times are
// the modeled platform seconds.
func RunModeled(platform Platform, nodes, simRanks int, reads []*Record, cfg Config) (*Report, error) {
	mdl, err := machine.NewModelScaled(platform, nodes, simRanks)
	if err != nil {
		return nil, err
	}
	return pipeline.Execute(simRanks, mdl, reads, cfg)
}

// WritePAF writes the report's alignment records (requires
// Config.KeepAlignments) as PAF lines.
func WritePAF(w io.Writer, rep *Report, reads []*Record) error {
	if !rep.Config.KeepAlignments {
		return fmt.Errorf("dibella: report was produced without KeepAlignments")
	}
	return paf.Write(w, rep.PAFRecords(reads))
}

// GenerateEColi30x synthesizes the paper's E. coli 30x analogue data set
// at a genome-scale factor in (0, 1] (substitution for the PacBio input;
// see DESIGN.md).
func GenerateEColi30x(scale float64, seed int64) ([]*Record, error) {
	ds, err := seqgen.Generate(seqgen.EColi30x(scale, seed))
	if err != nil {
		return nil, err
	}
	return ds.Reads, nil
}

// GenerateEColi100x synthesizes the paper's E. coli 100x analogue.
func GenerateEColi100x(scale float64, seed int64) ([]*Record, error) {
	ds, err := seqgen.Generate(seqgen.EColi100x(scale, seed))
	if err != nil {
		return nil, err
	}
	return ds.Reads, nil
}
