package dna

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodeRoundTrip(t *testing.T) {
	for _, b := range []byte("ACGT") {
		c, ok := Code(b)
		if !ok {
			t.Fatalf("Code(%q) not ok", b)
		}
		if Base(c) != b {
			t.Errorf("Base(Code(%q)) = %q", b, Base(c))
		}
	}
	for _, b := range []byte("acgt") {
		c, ok := Code(b)
		if !ok {
			t.Fatalf("Code(%q) not ok", b)
		}
		if Base(c) != bytes.ToUpper([]byte{b})[0] {
			t.Errorf("Base(Code(%q)) = %q", b, Base(c))
		}
	}
}

func TestCodeInvalid(t *testing.T) {
	for _, b := range []byte("NnXU-*. \t1") {
		if _, ok := Code(b); ok {
			t.Errorf("Code(%q) unexpectedly ok", b)
		}
	}
}

func TestMustCodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCode('N') did not panic")
		}
	}()
	MustCode('N')
}

func TestComplementCode(t *testing.T) {
	pairs := map[byte]byte{A: T, C: G, G: C, T: A}
	for c, want := range pairs {
		if got := ComplementCode(c); got != want {
			t.Errorf("ComplementCode(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestReverseComplement(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"A", "T"},
		{"ACGT", "ACGT"}, // palindrome
		{"AACC", "GGTT"},
		{"GATTACA", "TGTAATC"},
		{"acgt", "acgt"},
		{"ANA", "TNT"},
	}
	for _, c := range cases {
		if got := string(ReverseComplement([]byte(c.in))); got != c.want {
			t.Errorf("ReverseComplement(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestReverseComplementInPlaceMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(100)
		s := randomSeq(rng, n)
		want := ReverseComplement(s)
		got := append([]byte(nil), s...)
		ReverseComplementInPlace(got)
		if !bytes.Equal(got, want) {
			t.Fatalf("in-place RC mismatch for %q: got %q want %q", s, got, want)
		}
	}
}

// Property: reverse complement is an involution on valid DNA.
func TestReverseComplementInvolution(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeq(rng, int(n))
		return bytes.Equal(ReverseComplement(ReverseComplement(s)), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsValid(t *testing.T) {
	if !IsValid([]byte("ACGTacgt")) {
		t.Error("ACGTacgt should be valid")
	}
	if IsValid([]byte("ACGTN")) {
		t.Error("ACGTN should be invalid")
	}
	if !IsValid(nil) {
		t.Error("empty sequence should be valid")
	}
}

func TestCountValid(t *testing.T) {
	if got := CountValid([]byte("ACNNGT")); got != 4 {
		t.Errorf("CountValid = %d, want 4", got)
	}
}

func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(200)
		s := randomSeq(rng, n)
		p := NewPacked(s)
		if p.Len() != n {
			t.Fatalf("Len = %d, want %d", p.Len(), n)
		}
		if !bytes.Equal(p.Bytes(), s) {
			t.Fatalf("Bytes mismatch: got %q want %q", p.Bytes(), s)
		}
		for i := 0; i < n; i++ {
			if p.ByteAt(i) != s[i] {
				t.Fatalf("ByteAt(%d) = %q, want %q", i, p.ByteAt(i), s[i])
			}
		}
	}
}

func TestPackedAppendCode(t *testing.T) {
	var p Packed
	codes := []byte{A, C, G, T, T, G, C, A}
	for _, c := range codes {
		p.AppendCode(c)
	}
	if p.Len() != len(codes) {
		t.Fatalf("Len = %d", p.Len())
	}
	for i, c := range codes {
		if p.CodeAt(i) != c {
			t.Errorf("CodeAt(%d) = %d, want %d", i, p.CodeAt(i), c)
		}
	}
}

func TestPackedOutOfRangePanics(t *testing.T) {
	p := NewPacked([]byte("ACGT"))
	defer func() {
		if recover() == nil {
			t.Fatal("CodeAt(4) did not panic")
		}
	}()
	p.CodeAt(4)
}

func TestPackedSizeBytes(t *testing.T) {
	p := NewPacked(bytes.Repeat([]byte("A"), 33))
	if p.SizeBytes() != 16 { // 33 bases -> 2 words
		t.Errorf("SizeBytes = %d, want 16", p.SizeBytes())
	}
}

func TestPackedInvalidBecomesA(t *testing.T) {
	p := NewPacked([]byte("ANA"))
	if got := string(p.Bytes()); got != "AAA" {
		t.Errorf("packed ANA = %q, want AAA", got)
	}
}

func TestGC(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"", 0},
		{"AT", 0},
		{"GC", 1},
		{"ACGT", 0.5},
		{"NNGC", 1},
	}
	for _, c := range cases {
		if got := GC([]byte(c.in)); got != c.want {
			t.Errorf("GC(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func randomSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}
