// Package dna provides primitive operations on DNA sequences over the
// four-letter alphabet {A, C, G, T}: 2-bit base codes, complementation,
// reverse complements, validation, and a packed 2-bit sequence
// representation.
//
// The 2-bit code assigns A=0, C=1, G=2, T=3. This ordering makes the
// complement of a code c equal to 3-c (equivalently c^3), which the rest of
// the repository relies on for branch-free reverse complementation of packed
// k-mers.
package dna

import "fmt"

// Base codes for the 2-bit representation.
const (
	A byte = 0
	C byte = 1
	G byte = 2
	T byte = 3
)

// codeTable maps an ASCII byte to its 2-bit code, or 0xFF for bytes that are
// not an upper- or lower-case A/C/G/T (including N and other IUPAC ambiguity
// codes, which long-read pipelines treat as breakpoints in k-mer extraction).
var codeTable = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = 0xFF
	}
	t['A'], t['a'] = A, A
	t['C'], t['c'] = C, C
	t['G'], t['g'] = G, G
	t['T'], t['t'] = T, T
	return t
}()

// baseTable maps a 2-bit code back to its upper-case ASCII byte.
var baseTable = [4]byte{'A', 'C', 'G', 'T'}

// complementTable maps an ASCII base to its complement, preserving case, and
// maps every other byte to 'N'.
var complementTable = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = 'N'
	}
	t['A'], t['a'] = 'T', 't'
	t['C'], t['c'] = 'G', 'g'
	t['G'], t['g'] = 'C', 'c'
	t['T'], t['t'] = 'A', 'a'
	return t
}()

// Code returns the 2-bit code for an ASCII base and whether the byte was a
// valid A/C/G/T (either case).
func Code(b byte) (code byte, ok bool) {
	c := codeTable[b]
	return c, c != 0xFF
}

// MustCode returns the 2-bit code for an ASCII base, panicking on invalid
// input. It is intended for callers that have already validated the sequence.
func MustCode(b byte) byte {
	c := codeTable[b]
	if c == 0xFF {
		panic(fmt.Sprintf("dna: invalid base %q", b))
	}
	return c
}

// Base returns the upper-case ASCII base for a 2-bit code in [0,3].
func Base(code byte) byte { return baseTable[code&3] }

// ComplementCode returns the 2-bit code of the complementary base.
func ComplementCode(code byte) byte { return code ^ 3 }

// ComplementByte returns the complement of an ASCII base, preserving case;
// non-ACGT bytes complement to 'N'.
func ComplementByte(b byte) byte { return complementTable[b] }

// IsValid reports whether every byte of s is an A/C/G/T in either case.
func IsValid(s []byte) bool {
	for _, b := range s {
		if codeTable[b] == 0xFF {
			return false
		}
	}
	return true
}

// CountValid returns the number of A/C/G/T bytes in s.
func CountValid(s []byte) int {
	n := 0
	for _, b := range s {
		if codeTable[b] != 0xFF {
			n++
		}
	}
	return n
}

// ReverseComplement returns the reverse complement of s as a new slice.
// Non-ACGT bytes become 'N'.
func ReverseComplement(s []byte) []byte {
	out := make([]byte, len(s))
	for i, b := range s {
		out[len(s)-1-i] = complementTable[b]
	}
	return out
}

// ReverseComplementInPlace reverse-complements s in place.
func ReverseComplementInPlace(s []byte) {
	i, j := 0, len(s)-1
	for i < j {
		s[i], s[j] = complementTable[s[j]], complementTable[s[i]]
		i, j = i+1, j-1
	}
	if i == j {
		s[i] = complementTable[s[i]]
	}
}

// Packed is a DNA sequence stored at 2 bits per base. It supports random
// access and append; it is the memory-frugal representation used for read
// storage when replicating reads across ranks in the alignment stage.
type Packed struct {
	words []uint64
	n     int // number of bases
}

// basesPerWord is the number of 2-bit bases stored per uint64 word.
const basesPerWord = 32

// NewPacked packs an ASCII sequence. Invalid bytes are recorded as 'A'
// (callers that care must validate first; k-mer extraction never crosses
// invalid bytes, so the substitution is harmless downstream).
func NewPacked(s []byte) *Packed {
	p := &Packed{words: make([]uint64, 0, (len(s)+basesPerWord-1)/basesPerWord)}
	for _, b := range s {
		c := codeTable[b]
		if c == 0xFF {
			c = A
		}
		p.AppendCode(c)
	}
	return p
}

// Len returns the number of bases in the sequence.
func (p *Packed) Len() int { return p.n }

// AppendCode appends a single 2-bit base code.
func (p *Packed) AppendCode(code byte) {
	slot := p.n % basesPerWord
	if slot == 0 {
		p.words = append(p.words, 0)
	}
	p.words[len(p.words)-1] |= uint64(code&3) << (2 * uint(slot))
	p.n++
}

// CodeAt returns the 2-bit code of the base at index i.
func (p *Packed) CodeAt(i int) byte {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("dna: index %d out of range [0,%d)", i, p.n))
	}
	w := p.words[i/basesPerWord]
	return byte(w>>(2*uint(i%basesPerWord))) & 3
}

// ByteAt returns the upper-case ASCII base at index i.
func (p *Packed) ByteAt(i int) byte { return baseTable[p.CodeAt(i)] }

// Bytes unpacks the sequence into a fresh ASCII byte slice.
func (p *Packed) Bytes() []byte {
	out := make([]byte, p.n)
	for i := 0; i < p.n; i++ {
		out[i] = baseTable[p.CodeAt(i)]
	}
	return out
}

// SizeBytes returns the heap footprint of the packed payload in bytes.
func (p *Packed) SizeBytes() int { return 8 * len(p.words) }

// GC returns the fraction of G or C bases in s, counting only valid bases;
// it returns 0 for sequences with no valid bases.
func GC(s []byte) float64 {
	gc, valid := 0, 0
	for _, b := range s {
		c := codeTable[b]
		if c == 0xFF {
			continue
		}
		valid++
		if c == C || c == G {
			gc++
		}
	}
	if valid == 0 {
		return 0
	}
	return float64(gc) / float64(valid)
}
