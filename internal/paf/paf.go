// Package paf reads and writes alignment records in a PAF-like
// tab-separated format (the de-facto interchange format of the long-read
// overlap ecosystem, used by minimap2/miniasm). diBELLA's "optional output
// of the overlaps" (§8) and alignments (§9) are emitted in this shape.
//
// Columns: qname qlen qstart qend strand tname tlen tstart tend score
// nseeds. Coordinates are 0-based half-open on the forward strand of each
// read; strand '-' means the target read aligns reverse-complemented.
package paf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Record is one pairwise alignment (or overlap candidate).
type Record struct {
	QName  string
	QLen   int
	QStart int
	QEnd   int
	Strand byte // '+' or '-'
	TName  string
	TLen   int
	TStart int
	TEnd   int
	Score  int
	NSeeds int
}

// Validate checks internal consistency.
func (r *Record) Validate() error {
	if r.Strand != '+' && r.Strand != '-' {
		return fmt.Errorf("paf: invalid strand %q", r.Strand)
	}
	if r.QStart < 0 || r.QEnd > r.QLen || r.QStart > r.QEnd {
		return fmt.Errorf("paf: query span [%d,%d) out of [0,%d]", r.QStart, r.QEnd, r.QLen)
	}
	if r.TStart < 0 || r.TEnd > r.TLen || r.TStart > r.TEnd {
		return fmt.Errorf("paf: target span [%d,%d) out of [0,%d]", r.TStart, r.TEnd, r.TLen)
	}
	return nil
}

// String renders the record as one PAF line (without newline).
func (r *Record) String() string {
	return fmt.Sprintf("%s\t%d\t%d\t%d\t%c\t%s\t%d\t%d\t%d\t%d\t%d",
		r.QName, r.QLen, r.QStart, r.QEnd, r.Strand,
		r.TName, r.TLen, r.TStart, r.TEnd, r.Score, r.NSeeds)
}

// Write emits records, one line each.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for i := range recs {
		if _, err := bw.WriteString(recs[i].String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads records back from the tab-separated form.
func Parse(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var recs []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 11 {
			return nil, fmt.Errorf("paf: line %d: %d fields, want 11", lineNo, len(fields))
		}
		var rec Record
		rec.QName = fields[0]
		rec.TName = fields[5]
		if len(fields[4]) != 1 {
			return nil, fmt.Errorf("paf: line %d: bad strand %q", lineNo, fields[4])
		}
		rec.Strand = fields[4][0]
		ints := []struct {
			dst *int
			idx int
		}{
			{&rec.QLen, 1}, {&rec.QStart, 2}, {&rec.QEnd, 3},
			{&rec.TLen, 6}, {&rec.TStart, 7}, {&rec.TEnd, 8},
			{&rec.Score, 9}, {&rec.NSeeds, 10},
		}
		for _, f := range ints {
			v, err := strconv.Atoi(fields[f.idx])
			if err != nil {
				return nil, fmt.Errorf("paf: line %d field %d: %v", lineNo, f.idx, err)
			}
			*f.dst = v
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("paf: line %d: %w", lineNo, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
