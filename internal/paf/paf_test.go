package paf

import (
	"bytes"
	"strings"
	"testing"
)

func sample() []Record {
	return []Record{
		{QName: "r1", QLen: 100, QStart: 10, QEnd: 90, Strand: '+',
			TName: "r2", TLen: 120, TStart: 0, TEnd: 80, Score: 70, NSeeds: 3},
		{QName: "r3", QLen: 50, QStart: 0, QEnd: 50, Strand: '-',
			TName: "r4", TLen: 60, TStart: 5, TEnd: 55, Score: 44, NSeeds: 1},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(back) != len(want) {
		t.Fatalf("got %d records", len(back))
	}
	for i := range want {
		if back[i] != want[i] {
			t.Errorf("record %d: got %+v want %+v", i, back[i], want[i])
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Record{
		{Strand: 'x', QLen: 10, TLen: 10},
		{Strand: '+', QLen: 10, QStart: 5, QEnd: 3, TLen: 10},
		{Strand: '+', QLen: 10, QEnd: 11, TLen: 10},
		{Strand: '+', QLen: 10, TLen: 10, TStart: -1},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("record %d validated", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"r1\t100\t10", // too few fields
		"r1\t100\t10\t90\t++\tr2\t120\t0\t80\t70\t3", // bad strand
		"r1\tabc\t10\t90\t+\tr2\t120\t0\t80\t70\t3",  // bad int
		"r1\t100\t10\t90\t+\tr2\t120\t0\t200\t70\t3", // invalid span
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("input %q parsed", in)
		}
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\n" + sample()[0].String() + "\n"
	recs, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
}

func TestStringTabs(t *testing.T) {
	line := sample()[0].String()
	if got := strings.Count(line, "\t"); got != 10 {
		t.Errorf("line has %d tabs, want 10", got)
	}
}
