package bella_test

// Validation of the statistical model against synthesized data: the
// fractions the theory predicts (singleton k-mers, seed-detection
// probability) must match what the generator actually produces. These are
// the quantities the paper leans on when sizing the Bloom filter (§6,
// "up to 98% of k-mers from long reads are singletons") and choosing k.

import (
	"math"
	"testing"

	"dibella/internal/bella"
	"dibella/internal/kmer"
	"dibella/internal/seqgen"
)

func TestSingletonFractionMatchesGeneratedData(t *testing.T) {
	const (
		k   = 17
		e   = 0.15
		cov = 30
	)
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 60000, Seed: 31, Coverage: cov, MeanReadLen: 3000,
		MinReadLen: 800, ErrorRate: e, BothStrands: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[kmer.Kmer]int)
	total := 0
	for id, r := range ds.Reads {
		for _, ex := range kmer.ExtractAll(r.Seq, k, uint32(id)) {
			counts[ex.Kmer]++
			total++
		}
	}
	singletons := 0
	for _, c := range counts {
		if c == 1 {
			singletons++
		}
	}
	// Instance-level singleton fraction (what the Bloom filter removes).
	measured := float64(singletons) / float64(total)
	predicted := bella.EstimateSingletonFraction(e, k, cov)
	if math.Abs(measured-predicted) > 0.08 {
		t.Errorf("singleton fraction: measured %.3f, theory %.3f", measured, predicted)
	}
	// The paper's qualitative claim for long reads.
	if measured < 0.80 {
		t.Errorf("singleton fraction %.3f below the long-read regime", measured)
	}
}

func TestSeedDetectionProbabilityMatchesData(t *testing.T) {
	// For overlapping read pairs, the fraction sharing at least one exact
	// k-mer must be at least the theory's guarantee at the overlap floor.
	const (
		k     = 17
		e     = 0.10
		minOv = 2000
	)
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 40000, Seed: 37, Coverage: 12, MeanReadLen: 3000,
		MinReadLen: 1000, ErrorRate: e, BothStrands: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Index k-mers per read.
	sets := make([]map[kmer.Kmer]bool, len(ds.Reads))
	for id, r := range ds.Reads {
		sets[id] = make(map[kmer.Kmer]bool)
		for _, ex := range kmer.ExtractAll(r.Seq, k, uint32(id)) {
			sets[id][ex.Kmer] = true
		}
	}
	share := func(a, b uint32) bool {
		small, large := sets[a], sets[b]
		if len(small) > len(large) {
			small, large = large, small
		}
		for km := range small {
			if large[km] {
				return true
			}
		}
		return false
	}
	truth := ds.TrueOverlaps(minOv)
	if len(truth) < 30 {
		t.Fatalf("only %d true overlaps; test underpowered", len(truth))
	}
	shared := 0
	for _, pr := range truth {
		if share(pr[0], pr[1]) {
			shared++
		}
	}
	measured := float64(shared) / float64(len(truth))
	// Theory gives the probability at exactly minOv; most pairs overlap by
	// more, so the measured rate must be at least the floor's prediction
	// (within sampling noise).
	floor := bella.ProbSharedCorrectKmer(e, k, minOv)
	if measured < floor-0.05 {
		t.Errorf("seed detection: measured %.3f below theoretical floor %.3f",
			measured, floor)
	}
}
