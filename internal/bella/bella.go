// Package bella implements the statistical parameter theory diBELLA
// inherits from BELLA (Guidi et al., 2018): choosing the k-mer length k
// from the data's error rate so that overlapping reads share at least one
// correct k-mer with high probability, and choosing the high-frequency
// cutoff m above which k-mers are considered repeat-induced and discarded.
//
// Model assumptions (as in BELLA): sequencing errors are independent and
// uniform with per-base probability e; a k-mer instance is "correct" when
// all k bases are error-free, which happens with probability (1-e)^k; two
// reads overlapping in a region of length L share L-k+1 k-mer positions,
// and a shared position yields a detectable seed when both copies are
// correct, probability (1-e)^{2k}.
package bella

import (
	"fmt"
	"math"
)

// ProbKmerCorrect returns the probability that a single k-mer instance is
// error-free under per-base error rate e.
func ProbKmerCorrect(e float64, k int) float64 {
	return math.Pow(1-e, float64(k))
}

// ProbSharedCorrectKmer returns the probability that two reads overlapping
// over `overlap` bases share at least one k-mer that is correct in both:
// 1 - (1 - (1-e)^{2k})^{overlap-k+1}.
func ProbSharedCorrectKmer(e float64, k, overlap int) float64 {
	if overlap < k {
		return 0
	}
	pBoth := math.Pow(1-e, 2*float64(k))
	n := float64(overlap - k + 1)
	// log1p formulation keeps precision when pBoth is tiny.
	return -math.Expm1(n * math.Log1p(-pBoth))
}

// MinKForUniqueness returns the smallest k such that a random k-mer is
// expected to occur less than once by chance in a genome of the given
// size: 4^k > genomeSize * margin.
func MinKForUniqueness(genomeSize, margin float64) int {
	if genomeSize < 1 {
		genomeSize = 1
	}
	return int(math.Ceil(math.Log(genomeSize*margin) / math.Log(4)))
}

// OptimalK returns the largest k in [MinKForUniqueness, 32] for which the
// probability of a shared correct k-mer over minOverlap bases still meets
// targetProb, mirroring BELLA's trade-off: k short enough to survive the
// error rate, long enough to avoid repeated genomic k-mers. For PacBio-like
// inputs (e≈0.15, overlap≥2000) this lands at the paper's typical 17.
func OptimalK(e float64, minOverlap int, targetProb, genomeSize float64) (int, error) {
	if e < 0 || e >= 1 {
		return 0, fmt.Errorf("bella: error rate %v out of [0,1)", e)
	}
	if targetProb <= 0 || targetProb >= 1 {
		return 0, fmt.Errorf("bella: target probability %v out of (0,1)", targetProb)
	}
	lo := MinKForUniqueness(genomeSize, 4)
	if lo < 5 {
		lo = 5
	}
	best := 0
	for k := lo; k <= 32; k++ {
		if ProbSharedCorrectKmer(e, k, minOverlap) >= targetProb {
			best = k
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("bella: no k in [%d,32] reaches probability %v at error rate %v",
			lo, targetProb, e)
	}
	return best, nil
}

// ExpectedCorrectCoverage returns λ, the expected number of error-free
// instances of a unique genomic k-mer in a data set with per-base coverage
// depth d: λ = d · (1-e)^k.
func ExpectedCorrectCoverage(e float64, k int, d float64) float64 {
	return d * ProbKmerCorrect(e, k)
}

// PoissonCDF returns P(X <= m) for X ~ Poisson(lambda), evaluated by the
// stable iterative sum.
func PoissonCDF(lambda float64, m int) float64 {
	if m < 0 {
		return 0
	}
	if lambda <= 0 {
		return 1
	}
	term := math.Exp(-lambda)
	sum := term
	for i := 1; i <= m; i++ {
		term *= lambda / float64(i)
		sum += term
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// ReliableUpperBound computes the high-frequency cutoff m: the smallest
// count such that a k-mer from a (possibly two-copy) genomic locus exceeds
// it with probability below epsilon, modeling observed multiplicity as
// Poisson with mean repeatAllowance·λ. k-mers seen more often than m are
// presumed to come from high-copy repeats and are discarded (Section 2 of
// the paper).
func ReliableUpperBound(e float64, k int, d, repeatAllowance, epsilon float64) int {
	if epsilon <= 0 || epsilon >= 1 {
		panic(fmt.Sprintf("bella: epsilon %v out of (0,1)", epsilon))
	}
	lambda := repeatAllowance * ExpectedCorrectCoverage(e, k, d)
	m := int(math.Ceil(lambda))
	if m < 2 {
		m = 2
	}
	for PoissonCDF(lambda, m) < 1-epsilon {
		m++
		if m > 1<<20 {
			panic("bella: reliable upper bound failed to converge")
		}
	}
	return m
}

// EstimateSingletonFraction predicts the fraction of k-mer *instances*
// expected to be singletons. An instance is erroneous with probability
// 1-(1-e)^k; erroneous k-mers are effectively unique (the 4^k space dwarfs
// the data), so they are almost all singletons. Correct instances of a
// unique locus are singletons only when that locus was sequenced
// error-free exactly once: P(X=1|X≥1)·weight under X ~ Poisson(λ).
//
// For PacBio-like parameters (e=0.15, k=17, d=30) this predicts ≳90%,
// matching the paper's "up to 98% of k-mers from long reads are
// singletons".
func EstimateSingletonFraction(e float64, k int, d float64) float64 {
	pErr := 1 - ProbKmerCorrect(e, k)
	lambda := ExpectedCorrectCoverage(e, k, d)
	// Fraction of correct instances that are lone sightings of their locus:
	// a locus yields X ~ Poisson(λ) correct instances; instances living in
	// X=1 loci are singletons among the correct population.
	pLoneInstance := math.Exp(-lambda) * lambda // P(X=1)
	correctInstanceMass := lambda               // E[X]
	fracCorrectSingleton := 0.0
	if correctInstanceMass > 0 {
		fracCorrectSingleton = pLoneInstance / correctInstanceMass // = e^{-λ}
	}
	return pErr + (1-pErr)*fracCorrectSingleton
}

// EstimateKmerBag returns the approximate number of k-mer instances parsed
// from an input of genomeSize·depth bases with mean read length L
// (Equation 2 of the paper): G·d·(L-k+1)/L ≈ G·d.
func EstimateKmerBag(genomeSize, depth, meanReadLen float64, k int) float64 {
	if meanReadLen <= 0 {
		return 0
	}
	per := meanReadLen - float64(k) + 1
	if per < 0 {
		per = 0
	}
	return genomeSize * depth * per / meanReadLen
}

// EstimateDistinctKmers approximates |Kset|, the number of distinct k-mers
// in the bag: each erroneous instance is distinct with near certainty and
// the correct instances collapse onto ~genomeSize loci.
func EstimateDistinctKmers(genomeSize, depth, meanReadLen float64, e float64, k int) float64 {
	bag := EstimateKmerBag(genomeSize, depth, meanReadLen, k)
	pErr := 1 - ProbKmerCorrect(e, k)
	return bag*pErr + genomeSize
}

// Params bundles the derived pipeline parameters for one data set.
type Params struct {
	K           int // k-mer length
	MaxFreq     int // high-frequency cutoff m
	MinOverlap  int // overlap length the k choice guarantees detection for
	TargetProb  float64
	ErrorRate   float64
	Coverage    float64
	GenomeSize  float64
	MeanReadLen float64
}

// Derive computes the full parameter set the way diBELLA does at startup.
func Derive(errorRate, coverage, genomeSize, meanReadLen float64, minOverlap int, targetProb float64) (Params, error) {
	k, err := OptimalK(errorRate, minOverlap, targetProb, genomeSize)
	if err != nil {
		return Params{}, err
	}
	m := ReliableUpperBound(errorRate, k, coverage, 2, 1e-4)
	return Params{
		K: k, MaxFreq: m, MinOverlap: minOverlap, TargetProb: targetProb,
		ErrorRate: errorRate, Coverage: coverage,
		GenomeSize: genomeSize, MeanReadLen: meanReadLen,
	}, nil
}

// String renders the parameters the way the pipeline logs them.
func (p Params) String() string {
	return fmt.Sprintf("k=%d m=%d (e=%.2f d=%.0fx G=%.3g Mbp, P[seed|overlap≥%d]≥%.2f)",
		p.K, p.MaxFreq, p.ErrorRate, p.Coverage, p.GenomeSize/1e6, p.MinOverlap, p.TargetProb)
}
