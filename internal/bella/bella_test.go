package bella

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProbKmerCorrect(t *testing.T) {
	if got := ProbKmerCorrect(0, 17); got != 1 {
		t.Errorf("zero error rate: %v", got)
	}
	got := ProbKmerCorrect(0.15, 17)
	if math.Abs(got-math.Pow(0.85, 17)) > 1e-12 {
		t.Errorf("ProbKmerCorrect = %v", got)
	}
}

func TestProbSharedCorrectKmer(t *testing.T) {
	// Below k bases of overlap nothing can be shared.
	if ProbSharedCorrectKmer(0.1, 17, 16) != 0 {
		t.Error("overlap < k should give 0")
	}
	// Perfect reads sharing >= k bases always share a correct k-mer.
	if got := ProbSharedCorrectKmer(0, 17, 17); got != 1 {
		t.Errorf("e=0: %v", got)
	}
	// Monotone increasing in overlap, decreasing in k.
	p1 := ProbSharedCorrectKmer(0.15, 17, 1000)
	p2 := ProbSharedCorrectKmer(0.15, 17, 3000)
	if p2 <= p1 {
		t.Error("probability not monotone in overlap")
	}
	p3 := ProbSharedCorrectKmer(0.15, 25, 1000)
	if p3 >= p1 {
		t.Error("probability not decreasing in k")
	}
}

// Property: probabilities stay in [0,1].
func TestProbSharedBounds(t *testing.T) {
	f := func(eRaw, kRaw, ovRaw uint16) bool {
		e := float64(eRaw%90) / 100
		k := int(kRaw)%28 + 5
		ov := int(ovRaw) % 20000
		p := ProbSharedCorrectKmer(e, k, ov)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOptimalKPaperRegime(t *testing.T) {
	// PacBio-like: e=15%, min overlap 2 kb, E. coli genome. The paper says
	// 17-mers are typical; accept a small neighborhood.
	k, err := OptimalK(0.15, 2000, 0.9, 4.64e6)
	if err != nil {
		t.Fatal(err)
	}
	if k < 14 || k > 20 {
		t.Errorf("OptimalK = %d, want ~17", k)
	}
	// Short-read-like: e=1% admits far longer k (paper: 51 for short reads,
	// capped at 32 here by the packed representation).
	k2, err := OptimalK(0.01, 2000, 0.9, 4.64e6)
	if err != nil {
		t.Fatal(err)
	}
	if k2 != 32 {
		t.Errorf("low-error OptimalK = %d, want 32 (cap)", k2)
	}
}

func TestOptimalKErrors(t *testing.T) {
	if _, err := OptimalK(-0.1, 2000, 0.9, 1e6); err == nil {
		t.Error("negative error rate accepted")
	}
	if _, err := OptimalK(0.15, 2000, 1.5, 1e6); err == nil {
		t.Error("bad target probability accepted")
	}
	// Hopeless regime: extreme error rate, tiny overlap.
	if _, err := OptimalK(0.8, 100, 0.99, 1e9); err == nil {
		t.Error("unsatisfiable regime should error")
	}
}

func TestMinKForUniqueness(t *testing.T) {
	// 4^11 = 4.2M > E. coli's 4.64M needs k=12 with margin 1.
	if got := MinKForUniqueness(4.64e6, 1); got != 12 {
		t.Errorf("MinKForUniqueness = %d, want 12", got)
	}
	if got := MinKForUniqueness(0, 1); got < 0 {
		t.Errorf("degenerate genome: %d", got)
	}
}

func TestPoissonCDF(t *testing.T) {
	if PoissonCDF(5, -1) != 0 {
		t.Error("CDF(-1) != 0")
	}
	if PoissonCDF(0, 0) != 1 {
		t.Error("lambda=0 CDF != 1")
	}
	// P(X<=lambda) is near 0.5 + a bit for Poisson.
	got := PoissonCDF(20, 20)
	if got < 0.5 || got > 0.60 {
		t.Errorf("PoissonCDF(20,20) = %v", got)
	}
	// CDF approaches 1.
	if PoissonCDF(20, 60) < 0.999999 {
		t.Error("tail not converging")
	}
	// Monotone in m.
	prev := 0.0
	for m := 0; m < 40; m++ {
		cur := PoissonCDF(10, m)
		if cur < prev {
			t.Fatalf("CDF not monotone at m=%d", m)
		}
		prev = cur
	}
}

func TestReliableUpperBound(t *testing.T) {
	// λ = 30 * 0.85^17 ≈ 1.9; with allowance 2 -> λ' ≈ 3.8; m lands well
	// below the coverage depth but above the mean.
	m := ReliableUpperBound(0.15, 17, 30, 2, 1e-4)
	if m < 5 || m > 25 {
		t.Errorf("m = %d, want O(10)", m)
	}
	// Higher coverage must raise the cutoff.
	m100 := ReliableUpperBound(0.15, 17, 100, 2, 1e-4)
	if m100 <= m {
		t.Errorf("m(100x)=%d not above m(30x)=%d", m100, m)
	}
	// Tighter epsilon raises the cutoff.
	if ReliableUpperBound(0.15, 17, 30, 2, 1e-8) < m {
		t.Error("tighter epsilon lowered m")
	}
}

func TestReliableUpperBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("epsilon=0 did not panic")
		}
	}()
	ReliableUpperBound(0.15, 17, 30, 2, 0)
}

func TestEstimateSingletonFraction(t *testing.T) {
	// Long-read regime: the paper reports up to 98% singletons vs 60-85%
	// for short reads.
	long := EstimateSingletonFraction(0.15, 17, 30)
	if long < 0.88 || long > 1.0 {
		t.Errorf("long-read singleton fraction %v, want >= 0.88", long)
	}
	short := EstimateSingletonFraction(0.005, 17, 30)
	if short > long {
		t.Error("short reads should have fewer singletons")
	}
}

func TestEstimateKmerBag(t *testing.T) {
	// Eq. 2: approx G*d for L >> k.
	got := EstimateKmerBag(4.64e6, 30, 9958, 17)
	want := 4.64e6 * 30
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("bag = %g, want ~%g", got, want)
	}
	if EstimateKmerBag(1e6, 30, 0, 17) != 0 {
		t.Error("zero read length should give 0")
	}
	if EstimateKmerBag(1e6, 30, 10, 17) != 0 {
		t.Error("reads shorter than k should give 0")
	}
}

func TestEstimateDistinctKmers(t *testing.T) {
	// Distinct set is far smaller than the bag but at least genome-sized.
	bag := EstimateKmerBag(4.64e6, 30, 9958, 17)
	distinct := EstimateDistinctKmers(4.64e6, 30, 9958, 0.15, 17)
	if distinct >= bag || distinct < 4.64e6 {
		t.Errorf("distinct = %g (bag %g)", distinct, bag)
	}
}

func TestDerive(t *testing.T) {
	p, err := Derive(0.15, 30, 4.64e6, 9958, 2000, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if p.K < 14 || p.K > 20 || p.MaxFreq < 5 {
		t.Errorf("params = %+v", p)
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
	if _, err := Derive(0.9, 30, 1e6, 1000, 100, 0.999); err == nil {
		t.Error("unsatisfiable Derive should error")
	}
}
