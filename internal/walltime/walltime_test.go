package walltime

import (
	"testing"
	"time"
)

func TestSinceIsMonotonicNonNegative(t *testing.T) {
	p := Now()
	if d := Since(p); d < 0 {
		t.Fatalf("Since returned negative duration %v", d)
	}
	time.Sleep(time.Millisecond)
	if d := Since(p); d < time.Millisecond {
		t.Fatalf("Since(p) = %v after sleeping 1ms", d)
	}
}

func TestPointsAreIndependent(t *testing.T) {
	a := Now()
	time.Sleep(time.Millisecond)
	b := Now()
	if Since(a) <= Since(b) {
		t.Fatalf("earlier point should report the longer elapsed time")
	}
}
