// Package walltime is the one sanctioned wall-clock read for the
// output-affecting packages (dht, overlap, olgraph, paf, pipeline, ckpt).
//
// The house invariant is byte-identical PAF across transports,
// schedules, world sizes, and resume paths; a raw time.Now in those
// packages is one refactor away from leaking a timestamp into output or
// a checkpoint digest, so dibella-lint's detmap analyzer bans it there.
// Wall-clock performance accounting is still wanted — it fills the
// *Wall fields of the stage reports — and this package provides exactly
// that and nothing more: Point is opaque, so an absolute timestamp
// cannot be compared, formatted, or serialized; only durations escape.
package walltime

import "time"

// Point is an opaque instant captured by Now. Its only use is as the
// argument to Since.
type Point struct {
	t time.Time
}

// Now captures the current instant.
func Now() Point { return Point{t: time.Now()} }

// Since returns the wall time elapsed since p was captured.
func Since(p Point) time.Duration { return time.Since(p.t) }

// origin anchors Monotonic. It is deliberately unexported: trace
// timestamps are durations against a process-local instant, so an
// absolute epoch still cannot leak into output.
var origin = time.Now()

// Monotonic returns the wall time elapsed since process start (more
// precisely, since this package was initialized). It is the timestamp
// source for the flight recorder: comparable within one process's
// trace, meaningless across processes.
func Monotonic() time.Duration { return time.Since(origin) }
