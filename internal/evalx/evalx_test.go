package evalx

import (
	"strings"
	"testing"

	"dibella/internal/seqgen"
)

// synthetic builds a dataset with hand-placed origins so truth is obvious.
func synthetic() *seqgen.Dataset {
	return &seqgen.Dataset{
		Origins: []seqgen.Origin{
			{Start: 0, End: 1000},    // 0
			{Start: 500, End: 1500},  // 1: overlaps 0 by 500
			{Start: 900, End: 2000},  // 2: overlaps 0 by 100, 1 by 600
			{Start: 5000, End: 6000}, // 3: disjoint
		},
	}
}

func TestCanon(t *testing.T) {
	if Canon(5, 2) != (Pair{2, 5}) || Canon(2, 5) != (Pair{2, 5}) {
		t.Error("Canon failed")
	}
}

func TestEvaluateCounts(t *testing.T) {
	ds := synthetic()
	// Truth at minOverlap=400: (0,1) 500, (1,2) 600. Pair (0,2) overlaps
	// only 100 -> near miss. (0,3) disjoint -> FP.
	pred := []Pair{{0, 1}, {2, 0}, {0, 3}, {1, 0}} // includes dup + unordered
	res := Evaluate(ds, pred, 400)
	if res.TruePairs != 2 {
		t.Errorf("TruePairs = %d", res.TruePairs)
	}
	if res.Predicted != 3 { // dup collapsed
		t.Errorf("Predicted = %d", res.Predicted)
	}
	if res.TruePositives != 1 || res.NearMisses != 1 || res.FalsePositives != 1 {
		t.Errorf("TP/near/FP = %d/%d/%d", res.TruePositives, res.NearMisses, res.FalsePositives)
	}
	if res.Recall() != 0.5 {
		t.Errorf("Recall = %v", res.Recall())
	}
	if res.Precision() != 2.0/3 {
		t.Errorf("Precision = %v", res.Precision())
	}
	if res.StrictPrecision() != 1.0/3 {
		t.Errorf("StrictPrecision = %v", res.StrictPrecision())
	}
	if res.F1() <= 0 || res.F1() > 1 {
		t.Errorf("F1 = %v", res.F1())
	}
	if !strings.Contains(res.String(), "recall=0.500") {
		t.Errorf("String = %q", res.String())
	}
}

func TestEvaluateEmpty(t *testing.T) {
	ds := synthetic()
	res := Evaluate(ds, nil, 400)
	if res.Recall() != 0 || res.Precision() != 0 || res.F1() != 0 {
		t.Errorf("empty prediction: %+v", res)
	}
	empty := Evaluate(&seqgen.Dataset{}, []Pair{{0, 1}}, 400)
	if empty.TruePairs != 0 {
		t.Errorf("empty truth: %+v", empty)
	}
}

func TestRecallByOverlapLength(t *testing.T) {
	ds := synthetic()
	// Bins: [100,500) and [500,inf). Truth>=100: (0,1)=500, (1,2)=600,
	// (0,2)=100.
	pred := []Pair{{0, 1}, {0, 2}}
	bins := RecallByOverlapLength(ds, pred, []int{100, 500})
	if len(bins) != 2 {
		t.Fatalf("got %d bins", len(bins))
	}
	// Bin [100,500): only (0,2), found.
	if bins[0].Truth != 1 || bins[0].Found != 1 || bins[0].Recall() != 1 {
		t.Errorf("bin0 = %+v", bins[0])
	}
	// Bin [500,inf): (0,1) found, (1,2) missed.
	if bins[1].Truth != 2 || bins[1].Found != 1 || bins[1].Recall() != 0.5 {
		t.Errorf("bin1 = %+v", bins[1])
	}
	if RecallByOverlapLength(ds, pred, nil) != nil {
		t.Error("nil bins should give nil")
	}
	var zero BinRecall
	if zero.Recall() != 0 {
		t.Error("empty bin recall should be 0")
	}
}

func TestEvaluateOnGeneratedData(t *testing.T) {
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 20000, Seed: 5, Coverage: 10, MeanReadLen: 1500,
		MinReadLen: 400, ErrorRate: 0, BothStrands: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Perfect predictor: feed truth back in; expect recall = precision = 1.
	var pred []Pair
	for _, p := range ds.TrueOverlaps(500) {
		pred = append(pred, Pair{A: p[0], B: p[1]})
	}
	res := Evaluate(ds, pred, 500)
	if res.Recall() != 1 || res.Precision() != 1 {
		t.Errorf("perfect predictor scored %v", res)
	}
}
