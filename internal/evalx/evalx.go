package evalx

import (
	"fmt"
	"sort"

	"dibella/internal/seqgen"
)

// Pair is an unordered read pair with A < B.
type Pair struct {
	A, B uint32
}

// Canon orders a pair.
func Canon(a, b uint32) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Result scores a prediction set against ground truth.
type Result struct {
	MinOverlap     int
	TruePairs      int // ground-truth pairs (overlap >= MinOverlap)
	Predicted      int // distinct predicted pairs
	TruePositives  int
	FalsePositives int // predicted pairs with *no* genomic overlap at all
	// NearMisses are predictions whose reads do overlap, but by less than
	// MinOverlap — counted separately because they are not errors in the
	// usual sense (the detector found a real, short overlap).
	NearMisses int
}

// Recall returns TP / truth.
func (r Result) Recall() float64 {
	if r.TruePairs == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.TruePairs)
}

// Precision returns (TP + near misses) / predicted: the fraction of
// predictions corresponding to genuine genomic overlap of any length.
func (r Result) Precision() float64 {
	if r.Predicted == 0 {
		return 0
	}
	return float64(r.TruePositives+r.NearMisses) / float64(r.Predicted)
}

// StrictPrecision returns TP / predicted (near misses count against).
func (r Result) StrictPrecision() float64 {
	if r.Predicted == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.Predicted)
}

// F1 returns the harmonic mean of Recall and Precision.
func (r Result) F1() float64 {
	p, c := r.Precision(), r.Recall()
	if p+c == 0 {
		return 0
	}
	return 2 * p * c / (p + c)
}

// String summarizes the evaluation.
func (r Result) String() string {
	return fmt.Sprintf(
		"truth=%d predicted=%d TP=%d FP=%d near=%d recall=%.3f precision=%.3f F1=%.3f",
		r.TruePairs, r.Predicted, r.TruePositives, r.FalsePositives, r.NearMisses,
		r.Recall(), r.Precision(), r.F1())
}

// Evaluate scores predicted pairs against the data set's origins.
func Evaluate(ds *seqgen.Dataset, predicted []Pair, minOverlap int) Result {
	res := Result{MinOverlap: minOverlap}
	truth := make(map[Pair]bool)
	for _, p := range ds.TrueOverlaps(minOverlap) {
		truth[Pair{A: p[0], B: p[1]}] = true
	}
	res.TruePairs = len(truth)

	seen := make(map[Pair]bool)
	for _, p := range predicted {
		if p.A > p.B {
			p = Pair{A: p.B, B: p.A}
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		res.Predicted++
		switch {
		case truth[p]:
			res.TruePositives++
		case int(p.A) < len(ds.Origins) && int(p.B) < len(ds.Origins) &&
			ds.Origins[p.A].Overlap(ds.Origins[p.B]) > 0:
			res.NearMisses++
		default:
			res.FalsePositives++
		}
	}
	return res
}

// RecallByOverlapLength bins ground-truth pairs by overlap length and
// reports recall per bin — BELLA's analysis of detectability versus
// overlap length (longer overlaps must be recalled at higher rates, since
// P[shared correct k-mer] grows with length).
func RecallByOverlapLength(ds *seqgen.Dataset, predicted []Pair, bins []int) []BinRecall {
	if len(bins) == 0 {
		return nil
	}
	sorted := append([]int(nil), bins...)
	sort.Ints(sorted)

	found := make(map[Pair]bool, len(predicted))
	for _, p := range predicted {
		if p.A > p.B {
			p = Pair{A: p.B, B: p.A}
		}
		found[p] = true
	}
	out := make([]BinRecall, len(sorted))
	for i, lo := range sorted {
		hi := int(^uint(0) >> 1)
		if i+1 < len(sorted) {
			hi = sorted[i+1]
		}
		out[i] = BinRecall{MinLen: lo, MaxLen: hi}
	}
	for _, pr := range ds.TrueOverlaps(sorted[0]) {
		ov := ds.Origins[pr[0]].Overlap(ds.Origins[pr[1]])
		idx := sort.SearchInts(sorted, ov+1) - 1
		if idx < 0 {
			continue
		}
		out[idx].Truth++
		if found[Pair{A: pr[0], B: pr[1]}] {
			out[idx].Found++
		}
	}
	return out
}

// BinRecall is recall within one overlap-length bin [MinLen, MaxLen).
type BinRecall struct {
	MinLen, MaxLen int
	Truth, Found   int
}

// Recall returns the bin's recall (0 when empty).
func (b BinRecall) Recall() float64 {
	if b.Truth == 0 {
		return 0
	}
	return float64(b.Found) / float64(b.Truth)
}
