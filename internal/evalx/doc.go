// Package evalx evaluates overlap/alignment output against the synthetic
// ground truth, the way BELLA's quality methodology (which diBELLA
// inherits, §11: "The quality produced by diBELLA is at least that of
// BELLA") scores overlappers where the truth is known.
//
// A predicted pair is a true positive when the two reads' genomic
// intervals (seqgen.Dataset.Origins) really overlap by at least the
// minimum length; recall is measured over all such ground-truth pairs,
// precision over all predictions. Predictions whose reads do overlap but
// by less than the minimum are counted as near misses, not errors.
//
// In the seed→exchange→overlap path this package is the measuring stick
// at the end: it quantifies what a change to the seed set costs in
// sensitivity. The bench harness uses it to score minimizer seeding
// (`-seed minimizer`) against exact k-mer seeding — the recall/volume
// trade-off study committed with each BENCH_PR<N>.json snapshot.
package evalx
