// Package serve implements dibella's resident alignment-as-a-service
// daemon: after the load and build stages, the formed world (read store
// plus DHT partition) stays resident, and rank 0 exposes a TCP frontend
// accepting batches of FASTQ query reads. Admission control bounds the
// in-flight work, weighted scorers pick a home rank for every admitted
// batch, and the SPMD world answers each batch collectively against the
// resident index. Served output is byte-identical to a batch-mode run
// over the indexed plus query reads, restricted to query-involving
// pairs, regardless of which rank the scorers picked.
package serve

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// RankSnapshot is one rank's routing state at admission time: the
// frontend's per-rank work-queue depth, the rank's resident memory, and
// how many batches it has ever been routed.
type RankSnapshot struct {
	Rank       int
	QueueDepth int
	MemBytes   int64
	Routed     int64
}

// ScorerConfig describes a named scorer with a weight for weighted
// routing.
type ScorerConfig struct {
	Name   string
	Weight float64
}

// scorerFunc computes per-rank scores in [0,1] for one scoring
// dimension; higher is better.
type scorerFunc func(snaps []RankSnapshot) []float64

// validScorerNames maps scorer names to their implementations.
// Unexported so the set cannot be mutated from outside.
var validScorerNames = map[string]scorerFunc{
	"queue-depth":     scoreQueueDepth,
	"mem-utilization": scoreMemUtilization,
	"load-balance":    scoreLoadBalance,
}

// IsValidScorer reports whether name is a recognized scorer.
func IsValidScorer(name string) bool { return validScorerNames[name] != nil }

// ValidScorerNames returns the sorted valid scorer names.
func ValidScorerNames() []string {
	names := make([]string, 0, len(validScorerNames))
	for name := range validScorerNames {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DefaultScorerConfigs returns the default weighted-routing profile:
// queue-depth:2, mem-utilization:2, load-balance:1.
func DefaultScorerConfigs() []ScorerConfig {
	return []ScorerConfig{
		{Name: "queue-depth", Weight: 2.0},
		{Name: "mem-utilization", Weight: 2.0},
		{Name: "load-balance", Weight: 1.0},
	}
}

// ParseScorerConfigs parses a comma-separated string of "name:weight"
// pairs. Returns nil for empty input, and an error for unknown names,
// non-positive, NaN, or infinite weights, or malformed input.
func ParseScorerConfigs(s string) ([]ScorerConfig, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	configs := make([]ScorerConfig, 0, len(parts))
	for _, part := range parts {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("serve: invalid scorer config %q (expected name:weight)", strings.TrimSpace(part))
		}
		name := strings.TrimSpace(kv[0])
		if !IsValidScorer(name) {
			return nil, fmt.Errorf("serve: unknown scorer %q; valid: %s", name, strings.Join(ValidScorerNames(), ", "))
		}
		weight, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("serve: invalid weight for scorer %q: %w", name, err)
		}
		if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
			return nil, fmt.Errorf("serve: scorer %q weight must be a finite positive number, got %v", name, weight)
		}
		configs = append(configs, ScorerConfig{Name: name, Weight: weight})
	}
	return configs, nil
}

// normalizeScorerWeights returns the configs with weights scaled to sum
// to 1, so a profile's absolute magnitudes don't matter.
func normalizeScorerWeights(configs []ScorerConfig) []ScorerConfig {
	var total float64
	for _, c := range configs {
		total += c.Weight
	}
	if total <= 0 {
		panic("serve: scorer weights sum to zero")
	}
	out := make([]ScorerConfig, len(configs))
	for i, c := range configs {
		out[i] = ScorerConfig{Name: c.Name, Weight: c.Weight / total}
	}
	return out
}

// PickRank evaluates the weighted scorers over the per-rank snapshots
// and returns the best-scoring rank (lowest rank wins ties, so routing
// is stable under equal load).
func PickRank(configs []ScorerConfig, snaps []RankSnapshot) int {
	if len(snaps) == 0 {
		panic("serve: no rank snapshots to score")
	}
	if len(configs) == 0 {
		configs = DefaultScorerConfigs()
	}
	configs = normalizeScorerWeights(configs)
	total := make([]float64, len(snaps))
	for _, sc := range configs {
		scores := validScorerNames[sc.Name](snaps)
		for i, v := range scores {
			total[i] += sc.Weight * v
		}
	}
	best := 0
	for i := 1; i < len(total); i++ {
		if total[i] > total[best] {
			best = i
		}
	}
	return snaps[best].Rank
}

// scoreQueueDepth favors ranks with the shallowest frontend work queue.
func scoreQueueDepth(snaps []RankSnapshot) []float64 {
	maxDepth := 0
	for _, s := range snaps {
		if s.QueueDepth > maxDepth {
			maxDepth = s.QueueDepth
		}
	}
	scores := make([]float64, len(snaps))
	for i, s := range snaps {
		scores[i] = 1 - float64(s.QueueDepth)/float64(maxDepth+1)
	}
	return scores
}

// scoreMemUtilization favors ranks holding the smallest resident
// footprint (partition plus replicas), steering work away from the
// memory-heavy shards.
func scoreMemUtilization(snaps []RankSnapshot) []float64 {
	var maxMem int64
	for _, s := range snaps {
		if s.MemBytes > maxMem {
			maxMem = s.MemBytes
		}
	}
	scores := make([]float64, len(snaps))
	for i, s := range snaps {
		scores[i] = 1 - float64(s.MemBytes)/float64(maxMem+1)
	}
	return scores
}

// scoreLoadBalance favors ranks that have served the fewest batches
// over the daemon's lifetime.
func scoreLoadBalance(snaps []RankSnapshot) []float64 {
	var maxRouted int64
	for _, s := range snaps {
		if s.Routed > maxRouted {
			maxRouted = s.Routed
		}
	}
	scores := make([]float64, len(snaps))
	for i, s := range snaps {
		scores[i] = 1 - float64(s.Routed)/float64(maxRouted+1)
	}
	return scores
}
