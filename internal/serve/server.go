package serve

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"dibella/internal/paf"
	"dibella/internal/pipeline"
	"dibella/internal/spmd"
	"dibella/internal/trace"
	"dibella/internal/walltime"
)

// Flight-recorder event names for the request path (admit → route →
// broadcast → align → reply) and the daemon's metric names. Registered
// package-level constants, as the tracename analyzer requires.
//
// Admission and routing run on connection goroutines, off the SPMD loop
// thread that owns the virtual clock, so their events carry wall time
// only (virtual 0). The batch span runs on the loop thread and carries
// both clocks.
const (
	traceAdmit  = "serve.admit"
	traceReject = "serve.reject"
	traceRoute  = "serve.route"
	traceBatch  = "serve.batch"
	traceReply  = "serve.reply"

	metricRequests    = "dibella_serve_requests_total"
	metricRejections  = "dibella_serve_rejections_total"
	metricInflight    = "dibella_serve_inflight"
	metricQueueDepth  = "dibella_serve_queue_depth"
	metricRouted      = "dibella_serve_routed_total"
	metricLatency     = "dibella_serve_batch_latency_seconds"
	metricResidentMem = "dibella_resident_memory_bytes" // shared with the pipeline gauge
)

var (
	requestsTotal = trace.RegisterCounter(metricRequests,
		"query frames reaching admission control")
	rejectionsTotal = trace.RegisterCounterVec(metricRejections,
		"admission rejections by sentinel reason", "reason")
	inflightBatches = trace.RegisterGauge(metricInflight,
		"batches admitted but not yet answered")
	queueDepthPerRank = trace.RegisterGaugeVec(metricQueueDepth,
		"admitted batches routed to each home rank and not yet finished", "rank")
	routedTotal = trace.RegisterCounterVec(metricRouted,
		"batches routed to each home rank", "rank")
	batchLatency = trace.RegisterHistogram(metricLatency,
		"admission-to-reply latency of served batches, seconds", nil)
	residentMemoryServe = trace.RegisterGaugeVec(metricResidentMem,
		"estimated resident bytes (partition + replicas) per rank", "rank")
)

// Admission rejections, surfaced to clients as structured error frames.
var (
	// ErrQueueFull means the bounded in-flight window is exhausted; the
	// client should back off and retry.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrBadTenant means the request's tenant token is not on the
	// daemon's allow list.
	ErrBadTenant = errors.New("serve: unknown tenant token")
	// ErrTooLarge means the batch exceeds the admission read limit.
	ErrTooLarge = errors.New("serve: batch exceeds admission size limit")
	// ErrEmptyBatch means the request carried no reads.
	ErrEmptyBatch = errors.New("serve: empty query batch")
	// ErrShuttingDown means the daemon stopped admitting work.
	ErrShuttingDown = errors.New("serve: daemon is shutting down")
)

// errCode maps an admission or service error to its wire code.
func errCode(err error) string {
	switch {
	case errors.Is(err, ErrQueueFull):
		return "queue-full"
	case errors.Is(err, ErrBadTenant):
		return "bad-tenant"
	case errors.Is(err, ErrTooLarge):
		return "too-large"
	case errors.Is(err, ErrEmptyBatch):
		return "empty-batch"
	case errors.Is(err, ErrShuttingDown):
		return "shutting-down"
	default:
		return "internal"
	}
}

// RejectionCode maps a typed admission rejection to its sentinel wire
// code ("queue-full", "bad-tenant", ...). ok is false for errors that
// are not admission rejections (transport failures, internal errors),
// so callers — dibella-query's exit-status logic, scrape assertions —
// can distinguish "the daemon said no" from "the request never made
// it".
func RejectionCode(err error) (code string, ok bool) {
	for _, sentinel := range []error{ErrQueueFull, ErrBadTenant, ErrTooLarge, ErrEmptyBatch, ErrShuttingDown} {
		if errors.Is(err, sentinel) {
			return errCode(err), true
		}
	}
	return "", false
}

// codeErr maps a wire code back to its sentinel (clients use errors.Is).
func codeErr(code, msg string) error {
	base := map[string]error{
		"queue-full":    ErrQueueFull,
		"bad-tenant":    ErrBadTenant,
		"too-large":     ErrTooLarge,
		"empty-batch":   ErrEmptyBatch,
		"shutting-down": ErrShuttingDown,
	}[code]
	if base == nil {
		return fmt.Errorf("serve: remote error (%s): %s", code, msg)
	}
	// The wire message usually is the server-side error, which already
	// starts with the sentinel's text; keep only its detail suffix.
	if suffix, ok := strings.CutPrefix(msg, base.Error()); ok {
		return fmt.Errorf("%w%s", base, suffix)
	}
	return fmt.Errorf("%w: %s", base, msg)
}

// Options configures the daemon.
type Options struct {
	// Addr is rank 0's frontend listen address (e.g. "127.0.0.1:0").
	Addr string
	// MaxInflight bounds admitted-but-unfinished batches (default 4);
	// the excess is rejected with ErrQueueFull, never queued unbounded.
	MaxInflight int
	// MaxBatchReads bounds one batch's read count (default 1024).
	MaxBatchReads int
	// Tenants is the allow list of tenant tokens; empty admits any.
	Tenants []string
	// Scorers is the weighted routing profile (default
	// DefaultScorerConfigs).
	Scorers []ScorerConfig
	// MaxBatches stops the daemon after serving this many batches
	// (0: serve until a client sends a shutdown request).
	MaxBatches int
	// Ready, when set, is invoked on rank 0 with the bound frontend
	// address once the listener is up.
	Ready func(addr string)
	// MetricsAddr, when set, brings up rank 0's observability endpoint:
	// /metrics (Prometheus text format) and /debug/pprof/*. Handlers
	// read local counters only — never a collective — so scrapes cannot
	// stall or reorder the SPMD loop.
	MetricsAddr string
	// MetricsReady, when set, is invoked on rank 0 with the bound
	// metrics address once that listener is up.
	MetricsReady func(addr string)
	// Logf, when set, receives rank-0 progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4
	}
	if o.MaxBatchReads <= 0 {
		o.MaxBatchReads = 1024
	}
	if len(o.Scorers) == 0 {
		o.Scorers = DefaultScorerConfigs()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Stats summarizes a daemon's lifetime (rank 0; followers return zero
// stats).
type Stats struct {
	Served        int64
	Rejected      int64
	RoutedPerRank []int64
	// VirtualSeconds is the rank-0 modeled clock advance across the
	// serving loop (admission, routing, and every collective priced).
	VirtualSeconds float64
}

// SPMD ops broadcast from rank 0 to keep the world's collective order
// identical on every rank.
const (
	opQuery = 1
	opStop  = 2
	opFail  = 3
)

type servOp struct {
	Kind  int
	Home  int
	Batch []pipeline.QueryRead
	Msg   string // opFail diagnostic
}

// job is one admitted batch waiting for the SPMD loop.
type job struct {
	batch    []pipeline.QueryRead
	home     int
	reqBytes int
	tenant   string
	admitted walltime.Point
	// wait is the queue latency, captured when the job is dequeued
	// (before the query runs) so QueueWaitSecs excludes service time.
	wait time.Duration
	resp chan jobResult
}

type jobResult struct {
	resp queryResponse
	err  error
}

type server struct {
	w       *pipeline.World
	opts    Options
	ln      net.Listener
	tenants map[string]bool

	mu         sync.Mutex
	inflight   int
	admitted   int64
	rejected   int64
	closed     bool
	queueDepth []int
	routed     []int64
	mem        []int64

	// rec is rank 0's flight recorder (nil unless tracing is enabled).
	// Emits happen from both the SPMD loop and connection goroutines;
	// the recorder is internally synchronized.
	rec *trace.Recorder
	// metricsSrv is the optional rank-0 observability endpoint.
	metricsSrv *http.Server

	jobs     chan *job
	stopOnce sync.Once
	// respWG tracks admitted jobs whose response frame has not been
	// written yet, so shutdown cannot cut off an answered batch.
	respWG sync.WaitGroup

	// conns is a slice, not a map: closeConns walks it, and the serve
	// package is detmap-audited — connection teardown order stays
	// deterministic (accept order) rather than map-iteration order.
	connMu sync.Mutex
	conns  []net.Conn
}

// Serve runs the daemon over w's world. All ranks call it collectively
// and run the same loop: rank 0 owns the frontend (listener, admission,
// replies — all local work), and every collective — the op broadcast
// and the query itself — sits on the unconditional path, so every rank
// reaches the same collectives in the same order by construction.
// Serve returns once MaxBatches have been served or a client requested
// shutdown.
func Serve(w *pipeline.World, opts Options) (Stats, error) {
	opts.setDefaults()
	c := w.Comm()

	// One collective memory snapshot up front: the partition footprint
	// is fixed after forming, so the mem-utilization scorer routes on
	// this gather for the daemon's lifetime.
	mem := w.GatherMemBytes()

	// Rank 0's frontend setup is local; a listen failure reaches the
	// other ranks through the op stream (opFail) below, so the world
	// unwinds collectively.
	var s *server
	var setupErr error
	if c.Rank() == 0 {
		s, setupErr = startFrontend(w, opts, mem)
	}

	v0 := c.Now()
	var served int64
	for {
		// Only rank 0 decides the next op; the decision is local work.
		// The decision stays in its own rank-local variable and the
		// broadcast result binds a fresh one: after the Bcast, op is
		// world-uniform by construction, so the switch below cannot
		// diverge the collective schedule.
		var local servOp
		var j *job
		if c.Rank() == 0 {
			if setupErr != nil {
				local = servOp{Kind: opFail, Msg: setupErr.Error()}
			} else {
				local, j = s.next(served)
			}
		}
		op := spmd.Bcast(c, local, 0)
		switch op.Kind {
		case opQuery:
			// Query errors are deterministic and collectively
			// consistent, so every rank keeps serving after one; rank 0
			// also reports it to the waiting client.
			vStart := c.Now()
			recs, err := w.RunQuery(op.Home, op.Batch)
			served++
			if c.Rank() == 0 {
				s.finish(j, recs, err, served, c.Now()-vStart)
			}
		case opStop:
			if c.Rank() == 0 {
				return s.shutdown(served, c.Now()-v0), nil
			}
			return Stats{}, nil
		case opFail:
			if c.Rank() == 0 {
				return Stats{}, setupErr
			}
			return Stats{}, fmt.Errorf("serve: frontend failed: %s", op.Msg)
		default:
			return Stats{}, fmt.Errorf("serve: unknown op kind %d", op.Kind)
		}
	}
}

// startFrontend builds rank 0's server state and brings up the
// listener and accept loop. No collectives: a failure here is local
// until the op stream shares it.
func startFrontend(w *pipeline.World, opts Options, mem []int64) (*server, error) {
	p := w.Comm().Size()
	s := &server{
		w: w, opts: opts,
		queueDepth: make([]int, p),
		routed:     make([]int64, p),
		mem:        mem,
		jobs:       make(chan *job, opts.MaxInflight+16),
		rec:        trace.Rec(w.Comm().Rank()),
	}
	// The startup memory gather is the router's per-rank snapshot; it
	// also seeds the resident-memory gauge the /metrics endpoint serves.
	for r, m := range mem {
		residentMemoryServe.WithRank(r).Set(m)
	}
	if len(opts.Tenants) > 0 {
		s.tenants = make(map[string]bool, len(opts.Tenants))
		for _, t := range opts.Tenants {
			s.tenants[t] = true
		}
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", opts.Addr, err)
	}
	s.ln = ln
	opts.Logf("serve: listening on %s (ranks=%d inflight<=%d scorers=%d)",
		ln.Addr(), p, opts.MaxInflight, len(opts.Scorers))
	if opts.Ready != nil {
		opts.Ready(ln.Addr().String())
	}
	if opts.MetricsAddr != "" {
		mln, err := net.Listen("tcp", opts.MetricsAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("serve: metrics listen %s: %w", opts.MetricsAddr, err)
		}
		s.metricsSrv = &http.Server{Handler: trace.NewObservabilityMux()}
		opts.Logf("serve: metrics on http://%s/metrics (pprof under /debug/pprof/)", mln.Addr())
		if opts.MetricsReady != nil {
			opts.MetricsReady(mln.Addr().String())
		}
		go s.metricsSrv.Serve(mln)
	}
	go s.acceptLoop(ln)
	return s, nil
}

// next dequeues rank 0's next op for the broadcast stream: admitted
// jobs in admission order, or the stop decision. Frontend costs land
// on the rank-0 clock here — nothing is free, including decoding the
// request and scoring the ranks.
func (s *server) next(served int64) (servOp, *job) {
	if s.opts.MaxBatches > 0 && served >= int64(s.opts.MaxBatches) {
		return servOp{Kind: opStop}, nil
	}
	j := <-s.jobs
	if j == nil {
		return servOp{Kind: opStop}, nil // client-requested shutdown
	}
	c := s.w.Comm()
	if model := s.w.Model(); model != nil {
		c.Tick(model.QueryAdmitTime(float64(j.reqBytes)))
		c.Tick(model.QueryRouteTime(c.Size(), len(s.opts.Scorers)))
	}
	j.wait = walltime.Since(j.admitted)
	// The batch span runs on the SPMD loop thread, which owns the
	// virtual clock: it covers broadcast, the collective query, and the
	// reply handoff, in both timelines.
	s.rec.BeginTag(traceBatch, c.Now(), j.tenant)
	return servOp{Kind: opQuery, Home: j.home, Batch: j.batch}, j
}

// finish answers the connection handler waiting on one served batch
// and releases its admission slot.
func (s *server) finish(j *job, recs []pipeline.Alignment, err error, served int64, virtSecs float64) {
	// Accounting lands before the reply: a client that has its answer can
	// rely on the scrape endpoint already reflecting the batch, which is
	// what lets tests (and operators) reconcile /metrics against
	// client-observed ground truth without racing the daemon.
	s.mu.Lock()
	s.queueDepth[j.home]--
	s.inflight--
	s.mu.Unlock()
	queueDepthPerRank.WithRank(j.home).Add(-1)
	inflightBatches.Add(-1)
	batchLatency.Observe(walltime.Since(j.admitted).Seconds())
	s.rec.Instant(traceReply, s.w.Comm().Now(), int64(len(recs)))
	s.rec.End(traceBatch, s.w.Comm().Now(), int64(len(j.batch)))
	if err != nil {
		j.resp <- jobResult{err: err}
	} else {
		var buf bytes.Buffer
		if werr := paf.Write(&buf, s.w.QueryPAF(j.batch, recs)); werr != nil {
			j.resp <- jobResult{err: werr}
		} else {
			j.resp <- jobResult{resp: queryResponse{
				PAF:            buf.Bytes(),
				Records:        len(recs),
				Home:           j.home,
				VirtualSeconds: virtSecs,
				QueueWaitSecs:  j.wait.Seconds(),
			}}
		}
	}
	s.opts.Logf("serve: batch %d -> rank %d (%d reads, %d records)",
		served, j.home, len(j.batch), len(recs))
}

// shutdown stops admission, rejects the queue, waits for the in-flight
// responses to flush, and tears the frontend down.
func (s *server) shutdown(served int64, virtSecs float64) Stats {
	s.mu.Lock()
	s.closed = true
	rejected := s.rejected
	routed := append([]int64(nil), s.routed...)
	s.mu.Unlock()
	s.drain()
	// Every admitted job has an answer queued by now; wait for the
	// handlers to finish writing them before the listener and the
	// connections come down.
	s.respWG.Wait()
	s.ln.Close()
	if s.metricsSrv != nil {
		s.metricsSrv.Close()
	}
	s.closeConns()
	return Stats{
		Served: served, Rejected: rejected, RoutedPerRank: routed,
		VirtualSeconds: virtSecs,
	}
}

// drain rejects every job still queued after the stop decision.
func (s *server) drain() {
	for {
		select {
		case j := <-s.jobs:
			if j != nil {
				j.resp <- jobResult{err: ErrShuttingDown}
			}
		default:
			return
		}
	}
}

// admit applies admission control and, on success, routes the batch to
// a home rank under the current snapshot and enqueues it. Rejections
// are counted and typed.
func (s *server) admit(req *queryRequest, reqBytes int) (*job, error) {
	requestsTotal.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	reject := func(err error) (*job, error) {
		s.rejected++
		code, _ := RejectionCode(err)
		if code == "" {
			code = errCode(err)
		}
		rejectionsTotal.With(code).Inc()
		s.rec.InstantTag(traceReject, 0, code)
		return nil, err
	}
	if s.closed {
		return reject(ErrShuttingDown)
	}
	if s.tenants != nil && !s.tenants[req.Tenant] {
		return reject(fmt.Errorf("%w: %q", ErrBadTenant, req.Tenant))
	}
	if len(req.Reads) == 0 {
		return reject(ErrEmptyBatch)
	}
	if len(req.Reads) > s.opts.MaxBatchReads {
		return reject(fmt.Errorf("%w: %d reads > limit %d", ErrTooLarge, len(req.Reads), s.opts.MaxBatchReads))
	}
	if s.inflight >= s.opts.MaxInflight {
		return reject(fmt.Errorf("%w: %d in flight", ErrQueueFull, s.inflight))
	}
	if s.opts.MaxBatches > 0 && s.admitted >= int64(s.opts.MaxBatches) {
		return reject(ErrShuttingDown)
	}
	snaps := make([]RankSnapshot, len(s.queueDepth))
	for r := range snaps {
		snaps[r] = RankSnapshot{
			Rank: r, QueueDepth: s.queueDepth[r],
			MemBytes: s.mem[r], Routed: s.routed[r],
		}
	}
	home := PickRank(s.opts.Scorers, snaps)
	s.inflight++
	s.admitted++
	s.queueDepth[home]++
	s.routed[home]++
	// Admission and routing happen here, on the connection goroutine:
	// wall-clock-only events (the virtual clock lives on the loop
	// thread), plus the live queue metrics the scrape endpoint serves.
	s.rec.InstantTag(traceAdmit, 0, req.Tenant)
	s.rec.Instant(traceRoute, 0, int64(home))
	inflightBatches.Add(1)
	queueDepthPerRank.WithRank(home).Add(1)
	routedTotal.WithRank(home).Inc()
	j := &job{
		batch: req.Reads, home: home, reqBytes: reqBytes, tenant: req.Tenant,
		admitted: walltime.Now(), resp: make(chan jobResult, 1),
	}
	s.respWG.Add(1)
	s.jobs <- j // capacity >= MaxInflight, never blocks under the bound
	return j, nil
}

// acceptLoop accepts frontend connections until the listener closes.
func (s *server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.connMu.Lock()
		s.conns = append(s.conns, conn)
		s.connMu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *server) closeConns() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for _, conn := range s.conns {
		conn.Close()
	}
	s.conns = nil
}

// dropConn removes one connection from the registry (swap-remove by
// identity; the teardown order we care about is closeConns', which is
// accept order).
func (s *server) dropConn(conn net.Conn) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for i, c := range s.conns {
		if c == conn {
			last := len(s.conns) - 1
			s.conns[i] = s.conns[last]
			s.conns[last] = nil
			s.conns = s.conns[:last]
			return
		}
	}
}

// handleConn serves one client connection: a sequence of query (or
// shutdown) frames, each answered in order.
func (s *server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.dropConn(conn)
	}()
	for {
		typ, body, err := readFrontendFrame(conn)
		if err != nil {
			return // closed or malformed; nothing sane to answer
		}
		switch typ {
		case frameQuery:
			var req queryRequest
			if err := decodeFrontend(body, &req); err != nil {
				writeFrontendFrame(conn, frameErr, errorResponse{Code: "internal", Msg: err.Error()})
				return
			}
			j, err := s.admit(&req, len(body))
			if err != nil {
				if werr := writeFrontendFrame(conn, frameErr, errorResponse{Code: errCode(err), Msg: err.Error()}); werr != nil {
					return
				}
				continue
			}
			res := <-j.resp
			if res.err != nil {
				werr := writeFrontendFrame(conn, frameErr, errorResponse{Code: errCode(res.err), Msg: res.err.Error()})
				s.respWG.Done()
				if werr != nil {
					return
				}
				continue
			}
			werr := writeFrontendFrame(conn, framePAF, res.resp)
			s.respWG.Done()
			if werr != nil {
				return
			}
		case frameShutdown:
			var req shutdownRequest
			if err := decodeFrontend(body, &req); err != nil {
				return
			}
			if s.tenants != nil && !s.tenants[req.Tenant] {
				writeFrontendFrame(conn, frameErr, errorResponse{Code: "bad-tenant", Msg: ErrBadTenant.Error()})
				continue
			}
			s.stopOnce.Do(func() { s.jobs <- nil })
			writeFrontendFrame(conn, frameErr, errorResponse{Code: "shutting-down", Msg: "shutdown accepted"})
		default:
			return
		}
	}
}
