package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"dibella/internal/pipeline"
)

// Frontend wire format, following the spmd framing idiom: a fixed
// header (magic, type, payload length) ahead of a gob payload. The
// frontend protocol is independent of the SPMD transport — a mem-backed
// world serves the same frames a tcp-backed one does.
const (
	frontendMagic uint16 = 0xD1BF

	// maxFrontendPayload bounds one frame; a request larger than this is
	// malformed, not merely over the admission limit.
	maxFrontendPayload = 64 << 20
)

// Frontend frame types.
const (
	frameQuery    uint8 = 1 // client -> server: queryRequest
	frameShutdown uint8 = 2 // client -> server: shutdownRequest
	framePAF      uint8 = 3 // server -> client: queryResponse
	frameErr      uint8 = 4 // server -> client: errorResponse
)

const frontendHeaderLen = 2 + 1 + 4

// queryRequest is one client query batch.
type queryRequest struct {
	Tenant string
	Reads  []pipeline.QueryRead
}

// shutdownRequest asks the daemon to drain and exit.
type shutdownRequest struct {
	Tenant string
}

// queryResponse carries one served batch's alignments back as PAF.
type queryResponse struct {
	PAF            []byte  // rendered PAF lines
	Records        int     // alignment records in PAF
	Home           int     // rank the batch was routed to
	VirtualSeconds float64 // rank-0 modeled clock advance serving the batch
	QueueWaitSecs  float64 // wall seconds between admission and service start
}

// errorResponse is a structured rejection or failure.
type errorResponse struct {
	Code string
	Msg  string
}

// writeFrontendFrame gob-encodes payload and writes one frame.
func writeFrontendFrame(w io.Writer, typ uint8, payload any) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(payload); err != nil {
		return fmt.Errorf("serve: encoding frame type %d: %w", typ, err)
	}
	if body.Len() > maxFrontendPayload {
		return fmt.Errorf("serve: frame payload %d exceeds limit %d", body.Len(), maxFrontendPayload)
	}
	hdr := make([]byte, frontendHeaderLen)
	binary.BigEndian.PutUint16(hdr[0:2], frontendMagic)
	hdr[2] = typ
	binary.BigEndian.PutUint32(hdr[3:7], uint32(body.Len()))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(body.Bytes())
	return err
}

// readFrontendFrame reads one frame header and returns the type and the
// raw gob payload. io.EOF before any header byte means a clean close.
func readFrontendFrame(r io.Reader) (uint8, []byte, error) {
	hdr := make([]byte, frontendHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("serve: truncated frame header")
		}
		return 0, nil, err
	}
	if m := binary.BigEndian.Uint16(hdr[0:2]); m != frontendMagic {
		return 0, nil, fmt.Errorf("serve: bad frame magic %#04x", m)
	}
	typ := hdr[2]
	plen := binary.BigEndian.Uint32(hdr[3:7])
	if plen > maxFrontendPayload {
		return 0, nil, fmt.Errorf("serve: frame payload %d exceeds limit %d", plen, maxFrontendPayload)
	}
	body := make([]byte, plen)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("serve: truncated frame payload: %w", err)
	}
	return typ, body, nil
}

// decodeFrontend decodes a frame payload into out.
func decodeFrontend(body []byte, out any) error {
	return gob.NewDecoder(bytes.NewReader(body)).Decode(out)
}
