package serve

import (
	"bufio"
	"fmt"
	"net"

	"dibella/internal/pipeline"
)

// Client speaks the frontend protocol to a running daemon. One client
// drives one connection; requests on it are answered in order.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
}

// Dial connects to a daemon's frontend.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, bw: bufio.NewWriter(conn), br: bufio.NewReader(conn)}, nil
}

// QueryResult is one served batch's answer.
type QueryResult struct {
	PAF            []byte  // rendered PAF lines
	Records        int     // alignment records
	Home           int     // rank the batch was routed to
	VirtualSeconds float64 // modeled service time on the daemon's clock
	QueueWaitSecs  float64 // wall seconds the batch waited for admission-order service
}

// Query sends one batch and waits for its answer. Admission rejections
// come back as errors matching the package sentinels under errors.Is
// (ErrQueueFull, ErrBadTenant, ErrTooLarge, ErrEmptyBatch,
// ErrShuttingDown).
func (cl *Client) Query(tenant string, reads []pipeline.QueryRead) (*QueryResult, error) {
	if err := writeFrontendFrame(cl.bw, frameQuery, queryRequest{Tenant: tenant, Reads: reads}); err != nil {
		return nil, err
	}
	if err := cl.bw.Flush(); err != nil {
		return nil, err
	}
	typ, body, err := readFrontendFrame(cl.br)
	if err != nil {
		return nil, err
	}
	switch typ {
	case framePAF:
		var resp queryResponse
		if err := decodeFrontend(body, &resp); err != nil {
			return nil, err
		}
		return &QueryResult{
			PAF: resp.PAF, Records: resp.Records, Home: resp.Home,
			VirtualSeconds: resp.VirtualSeconds, QueueWaitSecs: resp.QueueWaitSecs,
		}, nil
	case frameErr:
		var e errorResponse
		if err := decodeFrontend(body, &e); err != nil {
			return nil, err
		}
		return nil, codeErr(e.Code, e.Msg)
	default:
		return nil, fmt.Errorf("serve: unexpected frame type %d", typ)
	}
}

// Shutdown asks the daemon to stop admitting work and exit once the
// admitted queue drains.
func (cl *Client) Shutdown(tenant string) error {
	if err := writeFrontendFrame(cl.bw, frameShutdown, shutdownRequest{Tenant: tenant}); err != nil {
		return err
	}
	if err := cl.bw.Flush(); err != nil {
		return err
	}
	typ, body, err := readFrontendFrame(cl.br)
	if err != nil {
		return err
	}
	if typ == frameErr {
		var e errorResponse
		if err := decodeFrontend(body, &e); err != nil {
			return err
		}
		if e.Code == "shutting-down" {
			return nil // the expected acknowledgement
		}
		return codeErr(e.Code, e.Msg)
	}
	return fmt.Errorf("serve: unexpected frame type %d acknowledging shutdown", typ)
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.conn.Close() }
