package serve

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"dibella/internal/pipeline"
)

// Client speaks the frontend protocol to a running daemon. One client
// drives one connection; requests on it are answered in order.
type Client struct {
	conn    net.Conn
	bw      *bufio.Writer
	br      *bufio.Reader
	timeout time.Duration
}

// Dial connects to a daemon's frontend.
func Dial(addr string) (*Client, error) { return DialTimeout(addr, 0) }

// DialTimeout connects to a daemon's frontend, bounding the connection
// attempt and — via SetTimeout — every subsequent request/response
// round trip. timeout <= 0 means no bound.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	var conn net.Conn
	var err error
	if timeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	cl := &Client{conn: conn, bw: bufio.NewWriter(conn), br: bufio.NewReader(conn)}
	cl.SetTimeout(timeout)
	return cl, nil
}

// SetTimeout bounds each subsequent request/response round trip (write
// through reply read). 0 removes the bound. A timeout surfaces as the
// connection's deadline error — a transport failure, deliberately
// distinct from the daemon's typed admission rejections.
func (cl *Client) SetTimeout(d time.Duration) { cl.timeout = d }

// deadline arms the per-request connection deadline, if one is set.
func (cl *Client) deadline() {
	if cl.timeout > 0 {
		//lint:ignore detmap a socket deadline needs an absolute instant; it bounds client I/O and never reaches output
		cl.conn.SetDeadline(time.Now().Add(cl.timeout))
	}
}

// QueryResult is one served batch's answer.
type QueryResult struct {
	PAF            []byte  // rendered PAF lines
	Records        int     // alignment records
	Home           int     // rank the batch was routed to
	VirtualSeconds float64 // modeled service time on the daemon's clock
	QueueWaitSecs  float64 // wall seconds the batch waited for admission-order service
}

// Query sends one batch and waits for its answer. Admission rejections
// come back as errors matching the package sentinels under errors.Is
// (ErrQueueFull, ErrBadTenant, ErrTooLarge, ErrEmptyBatch,
// ErrShuttingDown).
func (cl *Client) Query(tenant string, reads []pipeline.QueryRead) (*QueryResult, error) {
	cl.deadline()
	if err := writeFrontendFrame(cl.bw, frameQuery, queryRequest{Tenant: tenant, Reads: reads}); err != nil {
		return nil, err
	}
	if err := cl.bw.Flush(); err != nil {
		return nil, err
	}
	typ, body, err := readFrontendFrame(cl.br)
	if err != nil {
		return nil, err
	}
	switch typ {
	case framePAF:
		var resp queryResponse
		if err := decodeFrontend(body, &resp); err != nil {
			return nil, err
		}
		return &QueryResult{
			PAF: resp.PAF, Records: resp.Records, Home: resp.Home,
			VirtualSeconds: resp.VirtualSeconds, QueueWaitSecs: resp.QueueWaitSecs,
		}, nil
	case frameErr:
		var e errorResponse
		if err := decodeFrontend(body, &e); err != nil {
			return nil, err
		}
		return nil, codeErr(e.Code, e.Msg)
	default:
		return nil, fmt.Errorf("serve: unexpected frame type %d", typ)
	}
}

// Shutdown asks the daemon to stop admitting work and exit once the
// admitted queue drains.
func (cl *Client) Shutdown(tenant string) error {
	cl.deadline()
	if err := writeFrontendFrame(cl.bw, frameShutdown, shutdownRequest{Tenant: tenant}); err != nil {
		return err
	}
	if err := cl.bw.Flush(); err != nil {
		return err
	}
	typ, body, err := readFrontendFrame(cl.br)
	if err != nil {
		return err
	}
	if typ == frameErr {
		var e errorResponse
		if err := decodeFrontend(body, &e); err != nil {
			return err
		}
		if e.Code == "shutting-down" {
			return nil // the expected acknowledgement
		}
		return codeErr(e.Code, e.Msg)
	}
	return fmt.Errorf("serve: unexpected frame type %d acknowledging shutdown", typ)
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.conn.Close() }
