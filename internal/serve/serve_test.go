package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dibella/internal/fastq"
	"dibella/internal/overlap"
	"dibella/internal/paf"
	"dibella/internal/pipeline"
	"dibella/internal/seqgen"
	"dibella/internal/spmd"
)

// splitDataset synthesizes a read set and splits it: the head is
// indexed, the tail becomes query batches. The concatenated order is
// exactly the order a combined batch-mode run would assign IDs in.
func splitDataset(t *testing.T, seed int64, queryReads int) (indexed []*fastq.Record, query []pipeline.QueryRead, all []*fastq.Record) {
	t.Helper()
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen:   20000,
		Seed:        seed,
		Coverage:    12,
		MeanReadLen: 1800,
		MinReadLen:  500,
		ErrorRate:   0.08,
		BothStrands: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Reads) <= queryReads+4 {
		t.Fatalf("dataset too small: %d reads", len(ds.Reads))
	}
	n := len(ds.Reads) - queryReads
	indexed = ds.Reads[:n]
	for _, r := range ds.Reads[n:] {
		query = append(query, pipeline.QueryRead{Name: r.Name, Seq: r.Seq})
	}
	return indexed, query, ds.Reads
}

func serveTestConfig() pipeline.Config {
	return pipeline.Config{
		K: 17, MaxFreq: 8,
		SeedMode: overlap.MinDistance, MinDist: 500,
		KeepAlignments: true,
	}
}

// referencePAF runs the combined batch pipeline over indexed+query reads
// and renders the query-involving rows — the bytes the house invariant
// says a served batch must reproduce.
func referencePAF(t *testing.T, p int, all []*fastq.Record, base int, cfg pipeline.Config) []byte {
	t.Helper()
	rep, err := pipeline.Execute(p, nil, all, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var kept []pipeline.Alignment
	for _, a := range rep.Records {
		// Pairs are stored A < B and query IDs are the highest, so a pair
		// involves a query read exactly when B is one.
		if int(a.B) >= base {
			kept = append(kept, a)
		}
	}
	rep.Records = kept
	var buf bytes.Buffer
	if err := paf.Write(&buf, rep.PAFRecords(all)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runServeWorld forms a serve world on an in-process p-rank mem world
// and runs the daemon; drive is invoked with the frontend address once
// listening. Returns rank 0's daemon stats.
func runServeWorld(t *testing.T, p int, indexed []*fastq.Record, cfg pipeline.Config,
	opts Options, drive func(addr string)) Stats {
	t.Helper()
	var (
		stats Stats
		mu    sync.Mutex
	)
	done := make(chan struct{})
	opts.Ready = func(addr string) {
		go func() {
			defer close(done)
			drive(addr)
		}()
	}
	err := spmd.Run(p, func(c *spmd.Comm) error {
		store := fastq.NewReadStore(indexed, p)
		wcfg := cfg
		wcfg.KeepSingletons = true
		w, err := pipeline.FormWorld(c, nil, store, wcfg)
		if err != nil {
			return err
		}
		st, err := Serve(w, opts)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			stats = st
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	return stats
}

// TestServeMatchesBatch is the house invariant over the in-process
// transport: a served batch's PAF is byte-identical to the combined
// batch run restricted to query-involving pairs, at multiple world
// sizes and under every routing profile's possible home choice.
func TestServeMatchesBatch(t *testing.T) {
	indexed, query, all := splitDataset(t, 11, 6)
	base := len(indexed)
	cfg := serveTestConfig()
	for _, p := range []int{2, 4} {
		want := referencePAF(t, p, all, base, cfg)
		var got []byte
		var qerr error
		stats := runServeWorld(t, p, indexed, cfg, Options{
			Addr: "127.0.0.1:0", MaxBatches: 1,
		}, func(addr string) {
			cl, err := Dial(addr)
			if err != nil {
				qerr = err
				return
			}
			defer cl.Close()
			res, err := cl.Query("", query)
			if err != nil {
				qerr = err
				return
			}
			got = res.PAF
		})
		if qerr != nil {
			t.Fatalf("p=%d: query: %v", p, qerr)
		}
		if stats.Served != 1 {
			t.Fatalf("p=%d: served %d batches, want 1", p, stats.Served)
		}
		if len(want) == 0 {
			t.Fatalf("p=%d: degenerate reference (no query-involving pairs)", p)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("p=%d: served PAF differs from batch reference\nserved %d bytes, want %d",
				p, len(got), len(want))
		}
	}
}

// TestServeMatchesBatchTCP repeats the invariant with the SPMD world on
// the TCP transport — one transport per rank over loopback — so the
// query path's collectives cross a real address-space-style boundary.
func TestServeMatchesBatchTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP world in -short mode")
	}
	indexed, query, all := splitDataset(t, 23, 5)
	base := len(indexed)
	cfg := serveTestConfig()
	const p = 2
	want := referencePAF(t, p, all, base, cfg)
	if len(want) == 0 {
		t.Fatal("degenerate reference (no query-involving pairs)")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rendezvous := ln.Addr().String()
	var got []byte
	var qerr error
	driveDone := make(chan struct{})
	drive := func(addr string) {
		defer close(driveDone)
		cl, err := Dial(addr)
		if err != nil {
			qerr = err
			return
		}
		defer cl.Close()
		res, err := cl.Query("", query)
		if err != nil {
			qerr = err
			return
		}
		got = res.PAF
	}
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			boot := &spmd.JoinBootstrap{
				Rank: rank, Size: p, Rendezvous: rendezvous,
				Timeout: 20 * time.Second,
			}
			if rank == 0 {
				boot.Listener = ln
			}
			tr, err := spmd.Connect(boot)
			if err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				return
			}
			errs[rank] = boot.Finish(spmd.RunTransport(tr, nil, func(c *spmd.Comm) error {
				store := fastq.NewReadStore(indexed, p)
				wcfg := cfg
				wcfg.KeepSingletons = true
				w, err := pipeline.FormWorld(c, nil, store, wcfg)
				if err != nil {
					return err
				}
				_, err = Serve(w, Options{
					Addr: "127.0.0.1:0", MaxBatches: 1,
					Ready: func(addr string) { go drive(addr) },
				})
				return err
			}))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	<-driveDone
	if qerr != nil {
		t.Fatalf("query: %v", qerr)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("served PAF over tcp differs from batch reference\nserved %d bytes, want %d",
			len(got), len(want))
	}
}

// TestServeConcurrentClients races two clients against one daemon; every
// batch's answer must equal its own combined-run reference no matter how
// admission interleaves them.
func TestServeConcurrentClients(t *testing.T) {
	indexed, query, _ := splitDataset(t, 31, 8)
	base := len(indexed)
	cfg := serveTestConfig()
	const p = 2
	batchA, batchB := query[:4], query[4:]
	allA := append(append([]*fastq.Record(nil), indexed...), recordsOf(batchA)...)
	allB := append(append([]*fastq.Record(nil), indexed...), recordsOf(batchB)...)
	wantA := referencePAF(t, p, allA, base, cfg)
	wantB := referencePAF(t, p, allB, base, cfg)

	const perClient = 2 // each client repeats its batch
	results := make([][]byte, 2*perClient)
	qerrs := make([]error, 2*perClient)
	runServeWorld(t, p, indexed, cfg, Options{
		Addr: "127.0.0.1:0", MaxBatches: 2 * perClient, MaxInflight: 2 * perClient,
	}, func(addr string) {
		var wg sync.WaitGroup
		for cli := 0; cli < 2; cli++ {
			wg.Add(1)
			go func(cli int) {
				defer wg.Done()
				batch := batchA
				if cli == 1 {
					batch = batchB
				}
				cl, err := Dial(addr)
				if err != nil {
					qerrs[cli*perClient] = err
					return
				}
				defer cl.Close()
				for i := 0; i < perClient; i++ {
					res, err := cl.Query("", batch)
					if err != nil {
						qerrs[cli*perClient+i] = err
						return
					}
					results[cli*perClient+i] = res.PAF
				}
			}(cli)
		}
		wg.Wait()
	})
	for i, err := range qerrs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	for i, got := range results {
		want := wantA
		if i >= perClient {
			want = wantB
		}
		if !bytes.Equal(got, want) {
			t.Errorf("concurrent query %d: PAF differs from its reference", i)
		}
	}
}

func recordsOf(batch []pipeline.QueryRead) []*fastq.Record {
	out := make([]*fastq.Record, 0, len(batch))
	for _, q := range batch {
		out = append(out, &fastq.Record{Name: q.Name, Seq: q.Seq})
	}
	return out
}

// TestAdmissionControl exercises the typed rejections without a world:
// tenant allow list, batch size limit, bounded in-flight window, and
// the post-shutdown refusal.
func TestAdmissionControl(t *testing.T) {
	opts := Options{MaxInflight: 1, MaxBatchReads: 4, Tenants: []string{"alice"}}
	opts.setDefaults()
	s := &server{
		opts:       opts,
		tenants:    map[string]bool{"alice": true},
		queueDepth: make([]int, 2),
		routed:     make([]int64, 2),
		mem:        make([]int64, 2),
		jobs:       make(chan *job, opts.MaxInflight+16),
	}
	batch := []pipeline.QueryRead{{Name: "q", Seq: []byte("ACGT")}}

	if _, err := s.admit(&queryRequest{Tenant: "mallory", Reads: batch}, 10); !errors.Is(err, ErrBadTenant) {
		t.Errorf("wrong tenant: got %v, want ErrBadTenant", err)
	}
	if _, err := s.admit(&queryRequest{Tenant: "alice"}, 10); !errors.Is(err, ErrEmptyBatch) {
		t.Errorf("empty batch: got %v, want ErrEmptyBatch", err)
	}
	big := make([]pipeline.QueryRead, 5)
	for i := range big {
		big[i] = batch[0]
	}
	if _, err := s.admit(&queryRequest{Tenant: "alice", Reads: big}, 10); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized batch: got %v, want ErrTooLarge", err)
	}
	j, err := s.admit(&queryRequest{Tenant: "alice", Reads: batch}, 10)
	if err != nil || j == nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if _, err := s.admit(&queryRequest{Tenant: "alice", Reads: batch}, 10); !errors.Is(err, ErrQueueFull) {
		t.Errorf("over the in-flight bound: got %v, want ErrQueueFull", err)
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if _, err := s.admit(&queryRequest{Tenant: "alice", Reads: batch}, 10); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("after close: got %v, want ErrShuttingDown", err)
	}
	if s.rejected != 5 {
		t.Errorf("rejected count %d, want 5", s.rejected)
	}
}

// TestServeRejectsOverWire verifies a rejection travels the frontend
// protocol as its sentinel: wrong tenant against a tenant-gated daemon.
func TestServeRejectsOverWire(t *testing.T) {
	indexed, query, _ := splitDataset(t, 5, 3)
	cfg := serveTestConfig()
	var wrongTenantErr, okErr error
	runServeWorld(t, 2, indexed, cfg, Options{
		Addr: "127.0.0.1:0", MaxBatches: 1, Tenants: []string{"alice"},
	}, func(addr string) {
		cl, err := Dial(addr)
		if err != nil {
			okErr = err
			return
		}
		defer cl.Close()
		_, wrongTenantErr = cl.Query("mallory", query)
		_, okErr = cl.Query("alice", query)
	})
	if !errors.Is(wrongTenantErr, ErrBadTenant) {
		t.Errorf("wrong tenant over the wire: got %v, want ErrBadTenant", wrongTenantErr)
	}
	if okErr != nil {
		t.Errorf("allowed tenant rejected: %v", okErr)
	}
}

func TestParseScorerConfigs(t *testing.T) {
	cases := []struct {
		in      string
		want    []ScorerConfig
		wantErr string
	}{
		{in: "", want: nil},
		{in: "queue-depth:2", want: []ScorerConfig{{Name: "queue-depth", Weight: 2}}},
		{
			in: "queue-depth:2, mem-utilization:1.5,load-balance:0.5",
			want: []ScorerConfig{
				{Name: "queue-depth", Weight: 2},
				{Name: "mem-utilization", Weight: 1.5},
				{Name: "load-balance", Weight: 0.5},
			},
		},
		{in: "queue-depth", wantErr: "expected name:weight"},
		{in: "kv-utilization:2", wantErr: "unknown scorer"},
		{in: "queue-depth:0", wantErr: "finite positive"},
		{in: "queue-depth:-1", wantErr: "finite positive"},
		{in: "queue-depth:NaN", wantErr: "finite positive"},
		{in: "queue-depth:+Inf", wantErr: "finite positive"},
		{in: "queue-depth:x", wantErr: "invalid weight"},
	}
	for _, tc := range cases {
		got, err := ParseScorerConfigs(tc.in)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseScorerConfigs(%q): err %v, want containing %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseScorerConfigs(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseScorerConfigs(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseScorerConfigs(%q)[%d] = %v, want %v", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

// TestPickRank checks each scorer steers away from the loaded rank and
// ties break to the lowest rank.
func TestPickRank(t *testing.T) {
	snaps := []RankSnapshot{
		{Rank: 0, QueueDepth: 3, MemBytes: 100, Routed: 5},
		{Rank: 1, QueueDepth: 0, MemBytes: 100, Routed: 5},
	}
	if got := PickRank([]ScorerConfig{{Name: "queue-depth", Weight: 1}}, snaps); got != 1 {
		t.Errorf("queue-depth picked rank %d, want 1", got)
	}
	snaps = []RankSnapshot{
		{Rank: 0, MemBytes: 400},
		{Rank: 1, MemBytes: 100},
	}
	if got := PickRank([]ScorerConfig{{Name: "mem-utilization", Weight: 1}}, snaps); got != 1 {
		t.Errorf("mem-utilization picked rank %d, want 1", got)
	}
	snaps = []RankSnapshot{
		{Rank: 0, Routed: 9},
		{Rank: 1, Routed: 2},
	}
	if got := PickRank([]ScorerConfig{{Name: "load-balance", Weight: 1}}, snaps); got != 1 {
		t.Errorf("load-balance picked rank %d, want 1", got)
	}
	// Identical snapshots: deterministic lowest-rank tie-break.
	snaps = []RankSnapshot{{Rank: 0}, {Rank: 1}, {Rank: 2}}
	if got := PickRank(nil, snaps); got != 0 {
		t.Errorf("tie picked rank %d, want 0", got)
	}
}

// TestServeMetricsEndpoint reconciles the /metrics scrape against
// client-observed ground truth: one deterministic bad-tenant rejection
// and two served batches must appear in the exposition exactly, and the
// pprof index must answer. Counters are compared as deltas against a
// pre-run snapshot because the registry is process-global across tests.
func TestServeMetricsEndpoint(t *testing.T) {
	indexed, query, _ := splitDataset(t, 13, 4)
	cfg := serveTestConfig()
	const p = 2

	reqBefore := requestsTotal.Value()
	rejBefore := rejectionsTotal.With("bad-tenant").Value()
	latBefore := batchLatency.Count()

	metricsCh := make(chan string, 1)
	var (
		scrape      []byte
		pprofStatus int
		driveErr    error
	)
	runServeWorld(t, p, indexed, cfg, Options{
		Addr: "127.0.0.1:0", Tenants: []string{"alice"},
		MetricsAddr:  "127.0.0.1:0",
		MetricsReady: func(addr string) { metricsCh <- addr },
	}, func(addr string) {
		fail := func(err error) {
			if driveErr == nil {
				driveErr = err
			}
		}
		cl, err := Dial(addr)
		if err != nil {
			fail(err)
			return
		}
		defer cl.Close()
		defer cl.Shutdown("alice")
		if _, err := cl.Query("mallory", query); !errors.Is(err, ErrBadTenant) {
			fail(fmt.Errorf("wrong tenant: got %v, want ErrBadTenant", err))
			return
		}
		for i := 0; i < 2; i++ {
			if _, err := cl.Query("alice", query); err != nil {
				fail(fmt.Errorf("batch %d: %w", i, err))
				return
			}
		}
		// Replies arrived, so the daemon's accounting is committed; the
		// scrape must agree with what this client just observed.
		murl := "http://" + <-metricsCh
		resp, err := http.Get(murl + "/metrics")
		if err != nil {
			fail(err)
			return
		}
		scrape, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fail(err)
			return
		}
		if resp.StatusCode != http.StatusOK {
			fail(fmt.Errorf("/metrics status %d", resp.StatusCode))
			return
		}
		presp, err := http.Get(murl + "/debug/pprof/")
		if err != nil {
			fail(err)
			return
		}
		io.Copy(io.Discard, presp.Body)
		presp.Body.Close()
		pprofStatus = presp.StatusCode
	})
	if driveErr != nil {
		t.Fatal(driveErr)
	}
	if pprofStatus != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d, want 200", pprofStatus)
	}

	if got := scrapedValue(t, scrape, `dibella_serve_requests_total`); got != reqBefore+3 {
		t.Errorf("scraped requests_total %d, want %d (3 client requests)", got, reqBefore+3)
	}
	if got := scrapedValue(t, scrape, `dibella_serve_rejections_total{reason="bad-tenant"}`); got != rejBefore+1 {
		t.Errorf("scraped bad-tenant rejections %d, want %d (1 client-observed rejection)", got, rejBefore+1)
	}
	if got := scrapedValue(t, scrape, `dibella_serve_batch_latency_seconds_count`); got != latBefore+2 {
		t.Errorf("scraped latency sample count %d, want %d (2 served batches)", got, latBefore+2)
	}
	for _, name := range []string{"dibella_resident_memory_bytes", "dibella_serve_routed_total", "dibella_serve_inflight"} {
		if !bytes.Contains(scrape, []byte(name)) {
			t.Errorf("scrape is missing metric %s", name)
		}
	}
}

// scrapedValue extracts one sample's integer value from a Prometheus
// text exposition.
func scrapedValue(t *testing.T, scrape []byte, sample string) int64 {
	t.Helper()
	for _, line := range strings.Split(string(scrape), "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				t.Fatalf("sample %s: unparseable value %q", sample, rest)
			}
			return v
		}
	}
	t.Fatalf("sample %s not found in scrape:\n%s", sample, scrape)
	return 0
}
