// Package stats provides the measurement plumbing shared by the pipeline
// stages and the figure harness: per-stage time breakdowns (split into
// packing, local processing, and exchange, the decomposition of the paper's
// Fig. 4 and Figs. 9–10), load-imbalance and efficiency calculators, and
// simple series/table formatting for regenerating the paper's plots as
// text.
package stats

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Breakdown splits one stage's cost into the paper's three buckets, in
// both modeled (virtual) seconds and measured host wall time.
//
// The Overlap buckets account for non-blocking exchanges: OverlapVirtual
// is the portion of ExchangeVirtual that ran concurrently with the Pack and
// Local work (so stage elapsed time is max-like, not a sum), and
// OverlapWall is the host compute time that ran while an exchange was in
// flight. ExchangeWall counts only time actually blocked. Bulk-synchronous
// stages leave both at zero and the arithmetic reduces to the old sums.
type Breakdown struct {
	PackVirtual     float64
	LocalVirtual    float64
	ExchangeVirtual float64
	OverlapVirtual  float64
	PackWall        time.Duration
	LocalWall       time.Duration
	ExchangeWall    time.Duration
	OverlapWall     time.Duration
}

// TotalVirtual returns the modeled elapsed seconds: the bucket sum minus
// the exchange time hidden under computation.
func (b Breakdown) TotalVirtual() float64 {
	return b.PackVirtual + b.LocalVirtual + b.ExchangeVirtual - b.OverlapVirtual
}

// TotalWall returns the measured host time across all buckets.
// ExchangeWall is blocked time only, so no overlap subtraction applies.
func (b Breakdown) TotalWall() time.Duration {
	return b.PackWall + b.LocalWall + b.ExchangeWall
}

// OverlapFraction returns the share of the stage's exchange cost that was
// hidden under computation: modeled when any virtual time exists, measured
// otherwise (where the denominator is blocked plus overlapped time).
func (b Breakdown) OverlapFraction() float64 {
	if b.ExchangeVirtual > 0 {
		return b.OverlapVirtual / b.ExchangeVirtual
	}
	denom := b.ExchangeWall + b.OverlapWall
	if denom <= 0 {
		return 0
	}
	return float64(b.OverlapWall) / float64(denom)
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.PackVirtual += o.PackVirtual
	b.LocalVirtual += o.LocalVirtual
	b.ExchangeVirtual += o.ExchangeVirtual
	b.OverlapVirtual += o.OverlapVirtual
	b.PackWall += o.PackWall
	b.LocalWall += o.LocalWall
	b.ExchangeWall += o.ExchangeWall
	b.OverlapWall += o.OverlapWall
}

// Imbalance returns max/mean over per-rank values — the paper's Fig. 8
// metric, where 1.0 is perfect balance. It returns 0 for empty input and
// 1 when the mean is zero.
func Imbalance(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	maxV, sum := math.Inf(-1), 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
		sum += v
	}
	mean := sum / float64(len(values))
	if mean == 0 {
		return 1
	}
	return maxV / mean
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Max returns the maximum (0 for empty input).
func Max(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Efficiency returns strong-scaling efficiency relative to a base
// configuration: (tBase·nBase)/(t·n). The paper plots efficiency "over 1
// node", i.e. nBase=1.
func Efficiency(tBase float64, nBase int, t float64, n int) float64 {
	if t <= 0 || n <= 0 {
		return 0
	}
	return tBase * float64(nBase) / (t * float64(n))
}

// Speedup returns tBase/t (0 when t is 0).
func Speedup(tBase, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return tBase / t
}

// Series is one plotted line: a name with (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Format renders the series as "name: (x, y) (x, y) ...".
func (s Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", s.Name)
	for i := range s.X {
		fmt.Fprintf(&b, " (%g, %.4g)", s.X[i], s.Y[i])
	}
	return b.String()
}

// FormatTable renders rows under headers with aligned columns, the output
// format of the figure harness.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
