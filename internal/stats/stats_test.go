package stats

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestBreakdownTotals(t *testing.T) {
	b := Breakdown{
		PackVirtual: 1, LocalVirtual: 2, ExchangeVirtual: 3,
		PackWall: time.Second, LocalWall: 2 * time.Second, ExchangeWall: 3 * time.Second,
	}
	if b.TotalVirtual() != 6 {
		t.Errorf("TotalVirtual = %v", b.TotalVirtual())
	}
	if b.TotalWall() != 6*time.Second {
		t.Errorf("TotalWall = %v", b.TotalWall())
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{PackVirtual: 1, LocalWall: time.Second}
	a.Add(Breakdown{PackVirtual: 2, LocalWall: time.Second, ExchangeVirtual: 5})
	if a.PackVirtual != 3 || a.LocalWall != 2*time.Second || a.ExchangeVirtual != 5 {
		t.Errorf("Add result: %+v", a)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := Imbalance([]float64{5, 5, 5}); got != 1 {
		t.Errorf("balanced = %v", got)
	}
	if got := Imbalance([]float64{1, 1, 4}); got != 2 {
		t.Errorf("imbalanced = %v", got)
	}
	if got := Imbalance([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero = %v", got)
	}
}

// Property: imbalance is always >= 1 for non-negative non-empty input with
// a positive mean.
func TestImbalanceAtLeastOne(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		positive := false
		for i, r := range raw {
			vals[i] = float64(r)
			if r > 0 {
				positive = true
			}
		}
		if !positive {
			return Imbalance(vals) == 1
		}
		return Imbalance(vals) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMax(t *testing.T) {
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Mean/Max not 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Max([]float64{1, 5, 3}) != 5 {
		t.Error("Max wrong")
	}
}

func TestEfficiency(t *testing.T) {
	// Perfect scaling: halved time on doubled nodes.
	if got := Efficiency(10, 1, 5, 2); got != 1 {
		t.Errorf("perfect = %v", got)
	}
	// No scaling: same time on doubled nodes -> 0.5.
	if got := Efficiency(10, 1, 10, 2); got != 0.5 {
		t.Errorf("flat = %v", got)
	}
	if Efficiency(10, 1, 0, 2) != 0 {
		t.Error("zero time should give 0")
	}
	// Superlinear: more than halved.
	if got := Efficiency(10, 1, 4, 2); got <= 1 {
		t.Errorf("superlinear = %v", got)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Error("Speedup wrong")
	}
	if Speedup(10, 0) != 0 {
		t.Error("zero-time Speedup should be 0")
	}
}

func TestSeriesFormat(t *testing.T) {
	s := Series{Name: "Cori", X: []float64{1, 2}, Y: []float64{0.5, 0.25}}
	got := s.Format()
	if !strings.Contains(got, "Cori:") || !strings.Contains(got, "(1, 0.5)") {
		t.Errorf("Format = %q", got)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "longheader"}, [][]string{
		{"xxxx", "1"},
		{"y", "2"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("misaligned header/separator: %q vs %q", lines[0], lines[1])
	}
	if !strings.HasPrefix(lines[2], "xxxx") {
		t.Errorf("row = %q", lines[2])
	}
}

// boundedBreakdown maps arbitrary fuzz bytes into a well-formed
// breakdown: non-negative buckets, overlap no larger than the exchange
// cost it hides. Small integral values keep float arithmetic exact, so
// the merge properties below can assert equality without tolerances.
func boundedBreakdown(raw [8]uint8) Breakdown {
	b := Breakdown{
		PackVirtual:     float64(raw[0]),
		LocalVirtual:    float64(raw[1]),
		ExchangeVirtual: float64(raw[2]),
		PackWall:        time.Duration(raw[4]) * time.Millisecond,
		LocalWall:       time.Duration(raw[5]) * time.Millisecond,
		ExchangeWall:    time.Duration(raw[6]) * time.Millisecond,
		OverlapWall:     time.Duration(raw[7]) * time.Millisecond,
	}
	if b.ExchangeVirtual > 0 {
		b.OverlapVirtual = float64(raw[3] % raw[2])
	}
	return b
}

// Property: merging breakdowns is commutative and has the zero value as
// identity — the invariants Report aggregation relies on when it folds
// per-rank, per-stage breakdowns in gather order.
func TestBreakdownMergeCommutes(t *testing.T) {
	f := func(ra, rb [8]uint8) bool {
		a, b := boundedBreakdown(ra), boundedBreakdown(rb)
		ab, ba := a, b
		ab.Add(b)
		ba.Add(a)
		if ab != ba {
			return false
		}
		id := a
		id.Add(Breakdown{})
		return id == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: totals distribute over merge — the total of a merged
// breakdown equals the sum of the parts' totals, virtual and wall. This
// is what makes per-rank accumulation order-independent.
func TestBreakdownMergeTotalsAdd(t *testing.T) {
	f := func(ra, rb, rc [8]uint8) bool {
		a, b, c := boundedBreakdown(ra), boundedBreakdown(rb), boundedBreakdown(rc)
		merged := a
		merged.Add(b)
		merged.Add(c)
		return merged.TotalVirtual() == a.TotalVirtual()+b.TotalVirtual()+c.TotalVirtual() &&
			merged.TotalWall() == a.TotalWall()+b.TotalWall()+c.TotalWall()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the overlap fraction is a fraction — within [0, 1] for any
// well-formed breakdown and any merge of them (overlap cannot exceed
// the exchange cost it hides).
func TestBreakdownOverlapFractionBounded(t *testing.T) {
	f := func(ra, rb [8]uint8) bool {
		a, b := boundedBreakdown(ra), boundedBreakdown(rb)
		merged := a
		merged.Add(b)
		for _, x := range []Breakdown{a, b, merged} {
			if frac := x.OverlapFraction(); frac < 0 || frac > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
