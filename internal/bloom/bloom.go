package bloom

import (
	"fmt"
	"math"
)

// Filter is a Bloom filter over 64-bit keys (pre-hashed k-mers).
// The zero value is unusable; construct with New or NewWithEstimate.
type Filter struct {
	bits     []uint64
	m        uint64 // number of bits
	h        int    // number of hash probes
	inserted uint64 // number of Insert calls (not distinct elements)
}

// New creates a filter with m bits (rounded up to a multiple of 64) and h
// hash probes.
func New(m uint64, h int) *Filter {
	if m == 0 || h <= 0 {
		panic(fmt.Sprintf("bloom: invalid parameters m=%d h=%d", m, h))
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, h: h}
}

// NewWithEstimate sizes a filter for n expected distinct elements at target
// false-positive rate p, using the optimal m = -n·ln p / (ln 2)² and
// h = (m/n)·ln 2.
func NewWithEstimate(n uint64, p float64) *Filter {
	if n == 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("bloom: false-positive rate %v out of (0,1)", p))
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	h := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if h < 1 {
		h = 1
	}
	return New(m, h)
}

// NumBits returns the filter size in bits.
func (f *Filter) NumBits() uint64 { return f.m }

// NumHashes returns the number of hash probes per element.
func (f *Filter) NumHashes() int { return f.h }

// SizeBytes returns the heap footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// probe derives the i-th bit index for a pre-hashed key via double hashing.
// h2 is forced odd so that, with m a power-of-two multiple of 64, the probe
// sequence cycles through distinct positions.
func (f *Filter) probe(hash uint64, i int) uint64 {
	h1 := hash
	h2 := (hash>>32 | hash<<32) | 1
	return (h1 + uint64(i)*h2) % f.m
}

// Insert adds a pre-hashed key.
func (f *Filter) Insert(hash uint64) {
	for i := 0; i < f.h; i++ {
		b := f.probe(hash, i)
		f.bits[b/64] |= 1 << (b % 64)
	}
	f.inserted++
}

// Contains reports whether the key may be present (false positives
// possible; false negatives impossible).
func (f *Filter) Contains(hash uint64) bool {
	for i := 0; i < f.h; i++ {
		b := f.probe(hash, i)
		if f.bits[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// InsertAndTest inserts the key and reports whether it may have been
// present before this insertion. This single-pass operation is what the
// Bloom stage uses: a "true" return means the k-mer has (probably) been
// seen before and should seed the hash table.
func (f *Filter) InsertAndTest(hash uint64) bool {
	present := true
	for i := 0; i < f.h; i++ {
		b := f.probe(hash, i)
		word, bit := b/64, uint64(1)<<(b%64)
		if f.bits[word]&bit == 0 {
			present = false
			f.bits[word] |= bit
		}
	}
	f.inserted++
	return present
}

// FillRatio returns the fraction of set bits, from which the realized
// false-positive rate can be estimated as FillRatio^h.
func (f *Filter) FillRatio() float64 {
	ones := 0
	for _, w := range f.bits {
		ones += popcount(w)
	}
	return float64(ones) / float64(f.m)
}

// EstimatedFPRate returns the filter's current false-positive probability
// estimate, FillRatio^h.
func (f *Filter) EstimatedFPRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.h))
}

// EstimatedCardinality estimates the number of distinct inserted elements
// from the fill ratio: n ≈ -(m/h)·ln(1 - X/m) where X is the set-bit count
// (Swamidass & Baldi).
func (f *Filter) EstimatedCardinality() float64 {
	x := f.FillRatio()
	if x >= 1 {
		return math.Inf(1)
	}
	return -float64(f.m) / float64(f.h) * math.Log(1-x)
}

// Inserted returns the number of Insert/InsertAndTest calls.
func (f *Filter) Inserted() uint64 { return f.inserted }

// Reset clears the filter for reuse.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.inserted = 0
}

// TheoreticalFPRate returns the design false-positive rate of a filter with
// m bits and h hashes after n distinct insertions:
// (1 - e^{-hn/m})^h.
func TheoreticalFPRate(m uint64, h int, n uint64) float64 {
	return math.Pow(1-math.Exp(-float64(h)*float64(n)/float64(m)), float64(h))
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}
