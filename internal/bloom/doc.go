// Package bloom implements the Bloom filter used by diBELLA's first
// pipeline stage to identify singleton k-mers without storing the full
// k-mer bag — the gatekeeper between the seed exchange and the hash
// table: only seeds the filter has (probably) seen twice become table
// keys that the overlap stage can later walk.
//
// A Bloom filter is a bit array with h hash functions per element; it can
// report false positives but never false negatives (Bloom 1970). diBELLA
// (following HipMer) builds one partition per rank: k-mers are exchanged to
// their hash owner, tested, and only those seen at least twice become hash
// table keys. For long reads up to 98% of k-mers are singletons, so the
// filter removes the bulk of the data before any per-k-mer metadata is
// stored. A false positive only admits a key whose occurrence count stays
// below 2 — the hash pass's prune removes it — so filter sizing affects
// memory and time, never output. Under minimizer seeding the filter is
// sized for the ~2/(w+1)-sparser minimizer stream.
//
// Hashing uses the standard Kirsch–Mitzenmacher double-hashing scheme
// (g_i(x) = h1(x) + i·h2(x)), which preserves the asymptotic false-positive
// rate with only two base hashes per element.
package bloom
