package bloom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRoundsUp(t *testing.T) {
	f := New(100, 3)
	if f.NumBits()%64 != 0 || f.NumBits() < 100 {
		t.Errorf("NumBits = %d", f.NumBits())
	}
	if f.NumHashes() != 3 {
		t.Errorf("NumHashes = %d", f.NumHashes())
	}
}

func TestNewPanics(t *testing.T) {
	for _, c := range []struct {
		m uint64
		h int
	}{{0, 1}, {64, 0}, {64, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.m, c.h)
				}
			}()
			New(c.m, c.h)
		}()
	}
}

func TestNewWithEstimatePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWithEstimate(_, %v) did not panic", p)
				}
			}()
			NewWithEstimate(100, p)
		}()
	}
}

// Property: no false negatives, ever.
func TestNoFalseNegatives(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		rng := rand.New(rand.NewSource(seed))
		bf := NewWithEstimate(uint64(n), 0.05)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
			bf.Insert(keys[i])
		}
		for _, k := range keys {
			if !bf.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRateBounded(t *testing.T) {
	const n = 100000
	const target = 0.02
	bf := NewWithEstimate(n, target)
	rng := rand.New(rand.NewSource(1))
	inserted := make(map[uint64]bool, n)
	for len(inserted) < n {
		k := rng.Uint64()
		inserted[k] = true
		bf.Insert(k)
	}
	fp := 0
	const trials = 200000
	for i := 0; i < trials; i++ {
		k := rng.Uint64()
		if inserted[k] {
			continue
		}
		if bf.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / trials
	if rate > target*2 {
		t.Errorf("observed FP rate %.4f exceeds 2x target %.4f", rate, target)
	}
	if est := bf.EstimatedFPRate(); math.Abs(est-rate) > target {
		t.Errorf("estimated FP rate %.4f far from observed %.4f", est, rate)
	}
}

func TestInsertAndTestSemantics(t *testing.T) {
	bf := NewWithEstimate(1000, 0.01)
	if bf.InsertAndTest(42) {
		t.Error("first insertion reported present")
	}
	if !bf.InsertAndTest(42) {
		t.Error("second insertion reported absent (false negative)")
	}
	if !bf.Contains(42) {
		t.Error("Contains after insert failed")
	}
}

// Property: InsertAndTest(x) after Insert(x) always reports present.
func TestInsertAndTestNeverForgets(t *testing.T) {
	f := func(keys []uint64) bool {
		if len(keys) == 0 {
			return true
		}
		bf := NewWithEstimate(uint64(len(keys)), 0.05)
		for _, k := range keys {
			bf.Insert(k)
		}
		for _, k := range keys {
			if !bf.InsertAndTest(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEstimatedCardinality(t *testing.T) {
	const n = 50000
	bf := NewWithEstimate(n, 0.01)
	rng := rand.New(rand.NewSource(2))
	seen := make(map[uint64]bool)
	for len(seen) < n {
		k := rng.Uint64()
		if !seen[k] {
			seen[k] = true
			bf.Insert(k)
		}
	}
	est := bf.EstimatedCardinality()
	if est < n*0.95 || est > n*1.05 {
		t.Errorf("cardinality estimate %.0f, want ~%d", est, n)
	}
}

func TestReset(t *testing.T) {
	bf := New(1024, 3)
	bf.Insert(7)
	if !bf.Contains(7) {
		t.Fatal("insert failed")
	}
	bf.Reset()
	if bf.Contains(7) {
		t.Error("Reset did not clear bits")
	}
	if bf.Inserted() != 0 {
		t.Error("Reset did not clear insert count")
	}
	if bf.FillRatio() != 0 {
		t.Error("Reset left set bits")
	}
}

func TestTheoreticalFPRate(t *testing.T) {
	// Design point: m/n = 10 bits per element, h = 7 -> ~0.8% FP.
	got := TheoreticalFPRate(10000, 7, 1000)
	if got < 0.005 || got > 0.012 {
		t.Errorf("TheoreticalFPRate = %v, want ~0.008", got)
	}
	// More insertions -> higher FP rate (monotonicity).
	if TheoreticalFPRate(10000, 7, 2000) <= got {
		t.Error("FP rate not monotone in n")
	}
}

func TestSizeBytes(t *testing.T) {
	bf := New(64*10, 2)
	if bf.SizeBytes() != 80 {
		t.Errorf("SizeBytes = %d, want 80", bf.SizeBytes())
	}
}

func TestSingletonDetectionScenario(t *testing.T) {
	// The pipeline use case: feed a k-mer stream where some k-mers repeat;
	// InsertAndTest must flag every repeated k-mer at least once, and the
	// set of flagged k-mers may include a few singleton false positives but
	// must contain all true repeats.
	rng := rand.New(rand.NewSource(4))
	const distinct = 20000
	keys := make([]uint64, distinct)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	// First 10% of keys appear 3x, the rest once (long-read-like skew).
	var stream []uint64
	repeated := make(map[uint64]bool)
	for i, k := range keys {
		stream = append(stream, k)
		if i < distinct/10 {
			stream = append(stream, k, k)
			repeated[k] = true
		}
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

	bf := NewWithEstimate(distinct, 0.01)
	flagged := make(map[uint64]bool)
	for _, k := range stream {
		if bf.InsertAndTest(k) {
			flagged[k] = true
		}
	}
	for k := range repeated {
		if !flagged[k] {
			t.Fatal("a repeated k-mer was not flagged (false negative)")
		}
	}
	// False-positive singletons should be rare.
	extras := len(flagged) - len(repeated)
	if extras > distinct/100 {
		t.Errorf("%d singleton false positives flagged (>1%%)", extras)
	}
}

func BenchmarkInsertAndTest(b *testing.B) {
	bf := NewWithEstimate(uint64(b.N)+1, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.InsertAndTest(uint64(i) * 0x9e3779b97f4a7c15)
	}
}
