package pipeline

import (
	"encoding/json"
	"math/rand"
	"testing"

	"dibella/internal/stats"
)

// syntheticReport builds a report from deterministic pseudo-random rank
// accounting, so aggregation invariants can be checked against
// independently computed expectations.
func syntheticReport(seed int64, ranks int) *Report {
	rng := rand.New(rand.NewSource(seed))
	rep := &Report{Ranks: ranks}
	for r := 0; r < ranks; r++ {
		rr := RankReport{Rank: r}
		mk := func() stats.Breakdown {
			ex := float64(rng.Intn(100))
			return stats.Breakdown{
				PackVirtual:     float64(rng.Intn(100)),
				LocalVirtual:    float64(rng.Intn(100)),
				ExchangeVirtual: ex,
				OverlapVirtual:  ex * rng.Float64(),
			}
		}
		rr.Bloom.Breakdown = mk()
		rr.Hash.Breakdown = mk()
		rr.Overlap.Breakdown = mk()
		rr.Align.Breakdown = mk()
		rr.Bloom.BytesPacked = int64(rng.Intn(1 << 20))
		rr.Hash.BytesPacked = int64(rng.Intn(1 << 20))
		rr.Overlap.BytesPacked = int64(rng.Intn(1 << 20))
		rr.Align.BytesPacked = int64(rng.Intn(1 << 20))
		rr.MemPeak = StageMem{
			Bloom:   int64(rng.Intn(1 << 30)),
			Hash:    int64(rng.Intn(1 << 30)),
			Overlap: int64(rng.Intn(1 << 30)),
			Align:   int64(rng.Intn(1 << 30)),
		}
		rep.PerRank = append(rep.PerRank, rr)
	}
	return rep
}

// TestReportAggregation pins the aggregation semantics of the report:
// exchange bytes sum over ranks, modeled stage times and memory peaks
// are maxima (BSP semantics — the slowest or largest rank decides), and
// the per-stage totals compose into the run totals.
func TestReportAggregation(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rep := syntheticReport(seed, 1+int(seed)%7)
		for _, s := range Stages {
			var wantBytes int64
			var wantVirt float64
			var wantMem int64
			for i := range rep.PerRank {
				rr := &rep.PerRank[i]
				wantBytes += rr.bytesPackedOf(s)
				if v := rr.breakdownOf(s).TotalVirtual(); v > wantVirt {
					wantVirt = v
				}
				if m := rr.MemPeak.of(s); m > wantMem {
					wantMem = m
				}
			}
			if got := rep.StageExchangeBytes(s); got != wantBytes {
				t.Errorf("seed %d %s: StageExchangeBytes %d, want sum %d", seed, s, got, wantBytes)
			}
			if got := rep.StageVirtual(s); got != wantVirt {
				t.Errorf("seed %d %s: StageVirtual %v, want max %v", seed, s, got, wantVirt)
			}
			if got := rep.StageMemPeak(s); got != wantMem {
				t.Errorf("seed %d %s: StageMemPeak %d, want max %d", seed, s, got, wantMem)
			}
		}
		var wantTotal int64
		var wantVirtTotal float64
		for _, s := range Stages {
			wantTotal += rep.StageExchangeBytes(s)
			wantVirtTotal += rep.StageVirtual(s)
		}
		if got := rep.ExchangeBytes(); got != wantTotal {
			t.Errorf("seed %d: ExchangeBytes %d, want %d", seed, got, wantTotal)
		}
		if got := rep.TotalVirtual(); got != wantVirtTotal {
			t.Errorf("seed %d: TotalVirtual %v, want %v", seed, got, wantVirtTotal)
		}
		if frac := rep.OverlapFraction(); frac < 0 || frac > 1 {
			t.Errorf("seed %d: OverlapFraction %v out of [0,1]", seed, frac)
		}
	}
}

// TestReportRoundTrip serializes a report the way the bench harness and
// config shipping do (JSON) and checks every aggregate survives — the
// breakdown, byte, and memory accounting must not depend on anything
// serialization drops.
func TestReportRoundTrip(t *testing.T) {
	rep := syntheticReport(42, 5)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	for _, s := range Stages {
		if back.StageExchangeBytes(s) != rep.StageExchangeBytes(s) {
			t.Errorf("%s: exchange bytes changed across round-trip", s)
		}
		if back.StageVirtual(s) != rep.StageVirtual(s) {
			t.Errorf("%s: stage virtual changed across round-trip", s)
		}
		if back.StageMemPeak(s) != rep.StageMemPeak(s) {
			t.Errorf("%s: memory peak changed across round-trip", s)
		}
		if back.StageOverlapVirtual(s) != rep.StageOverlapVirtual(s) {
			t.Errorf("%s: overlap virtual changed across round-trip", s)
		}
	}
	if back.OverlapFraction() != rep.OverlapFraction() {
		t.Error("overlap fraction changed across round-trip")
	}
}
