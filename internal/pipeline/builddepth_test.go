package pipeline

import (
	"bytes"
	"testing"

	"dibella/internal/overlap"
	"dibella/internal/seqgen"
)

// TestBuildDepthPAFEquivalence pins down -build-depth as schedule-only:
// the DHT build's round pipeline must produce byte-identical PAF at
// every legal depth, from the degenerate blocking schedule (1) to the
// cap (spmd.MaxStreamDepth). KeepSingletons rides along: retained
// singletons and high-frequency tombstones never pair, so a serve-shaped
// index answers batch mode identically too.
func TestBuildDepthPAFEquivalence(t *testing.T) {
	const p = 4
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 18000, Coverage: 9, MeanReadLen: 1400, MinReadLen: 400,
		BothStrands: true, ErrorRate: 0.07, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		K: 17, ErrorRate: 0.07, Coverage: 9, KeepAlignments: true,
		SeedMode: overlap.MinDistance, MinDist: 500,
		MaxKmersPerRound: 1 << 12, // several rounds per pass, so depth matters
	}
	ref, err := Execute(p, nil, ds.Reads, base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Alignments == 0 {
		t.Fatal("reference run produced no alignments; nothing to compare")
	}
	want := pafBytes(t, ref, ds.Reads)

	for _, depth := range []int{1, 3, 8} {
		cfg := base
		cfg.BuildDepth = depth
		rep, err := Execute(p, nil, ds.Reads, cfg)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if got := pafBytes(t, rep, ds.Reads); !bytes.Equal(want, got) {
			t.Errorf("depth %d: PAF diverges from the default schedule (%d vs %d bytes)",
				depth, len(got), len(want))
		}
	}

	cfg := base
	cfg.KeepSingletons = true
	rep, err := Execute(p, nil, ds.Reads, cfg)
	if err != nil {
		t.Fatalf("keep-singletons: %v", err)
	}
	if got := pafBytes(t, rep, ds.Reads); !bytes.Equal(want, got) {
		t.Errorf("keep-singletons batch run diverges from the pruned index (%d vs %d bytes)",
			len(got), len(want))
	}
}
