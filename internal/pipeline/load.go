// Cooperative input loading: the paper's parallel I/O stage. Instead of
// every rank parsing the whole FASTQ file, each rank parses only its
// record-boundary-aligned byte shard (fastq.LoadShard), the ranks
// allgather the per-read metadata (names and lengths — bytes per read,
// not sequences), and the sequences that fall outside a rank's canonical
// block-distribution range are reshuffled to their owners with one packed
// all-to-all. The resulting sharded stores carry the exact global ID map
// a whole-file load would have produced, so every downstream stage — and
// the PAF output — is byte-identical; only the I/O and resident memory
// drop from O(file) to O(file/P) per rank.
package pipeline

import (
	"errors"
	"fmt"
	"strings"

	"dibella/internal/fastq"
	"dibella/internal/spmd"
)

// shardMeta is one rank's contribution to the global read-ID map: the
// names and lengths of the records its file shard contained.
type shardMeta struct {
	Names []string
	Lens  []int32
}

// LoadStore cooperatively loads path across c's world and returns this
// rank's sharded ReadStore. All ranks must call it collectively with the
// same path; a load failure on any rank fails every rank (no partial
// worlds). The store's block distribution is identical to
// fastq.NewReadStore over the whole file.
func LoadStore(c *spmd.Comm, path string) (*fastq.ReadStore, error) {
	p, rank := c.Size(), c.Rank()
	shard, parsed, err := fastq.LoadShard(path, rank, p)

	// Collective error agreement: if any rank failed to read its shard
	// (missing file on one host, permissions, corrupt range), every rank
	// must unwind — a survivor would hang in the metadata allgather.
	status := ""
	if err != nil {
		status = fmt.Sprintf("rank %d: %v", rank, err)
	}
	for _, s := range spmd.Allgather(c, status) {
		if s != "" {
			return nil, errors.New("pipeline: cooperative load of " + path + " failed: " + s)
		}
	}

	meta := shardMeta{Names: make([]string, len(shard)), Lens: make([]int32, len(shard))}
	for i, rec := range shard {
		meta.Names[i] = rec.Name
		meta.Lens[i] = int32(rec.Len())
	}
	all := spmd.Allgather(c, meta)

	// Global ID map: IDs follow file order, i.e. rank-order concatenation
	// of the shards. parsedStart[r] is the first global ID rank r parsed.
	parsedStart := make([]int, p+1)
	var names []string
	var lens []int32
	for r, m := range all {
		parsedStart[r+1] = parsedStart[r] + len(m.Names)
		names = append(names, m.Names...)
		lens = append(lens, m.Lens...)
	}
	ranges := fastq.PartitionLens(lens, p)

	// Reshuffle: parsed-but-not-owned sequences travel to their owners.
	// The shard boundaries (file-byte balanced) and the canonical ranges
	// (sequence-byte balanced) nearly coincide, so only boundary reads
	// move. Receivers know exactly which IDs arrive from whom — the
	// overlap of src's parsed interval with our owned range, in ID order
	// — so the exchange carries raw sequence bytes, nothing else.
	send := make([]spmd.PackedBufs, p)
	myParsed := parsedStart[rank]
	for i, rec := range shard {
		gid := myParsed + i
		if owner := ownerOf(ranges, gid); owner != rank {
			send[owner].AppendItem(rec.Seq)
		}
	}
	recv := spmd.AlltoallvPacked(c, send)

	start, end := ranges[rank][0], ranges[rank][1]
	owned := make([]*fastq.Record, 0, end-start)
	items := make([][][]byte, p)
	cursor := make([]int, p)
	src := 0
	for gid := start; gid < end; gid++ {
		for gid >= parsedStart[src+1] {
			src++
		}
		if src == rank {
			owned = append(owned, shard[gid-myParsed])
			continue
		}
		if items[src] == nil {
			items[src] = recv[src].Items()
		}
		if cursor[src] >= len(items[src]) {
			return nil, fmt.Errorf("pipeline: rank %d sent %d boundary reads, rank %d expected more (ID %d)",
				src, len(items[src]), rank, gid)
		}
		seq := items[src][cursor[src]]
		cursor[src]++
		// Qualities are not reshuffled: no stage downstream of loading
		// reads them, and dropping them keeps the exchange at sequence
		// bytes, the paper's bound.
		owned = append(owned, &fastq.Record{Name: names[gid], Seq: seq})
	}
	for s := 0; s < p; s++ {
		if s != rank && cursor[s] != len(recv[s].Lens) {
			return nil, fmt.Errorf("pipeline: rank %d sent %d boundary reads, rank %d consumed %d",
				s, len(recv[s].Lens), rank, cursor[s])
		}
	}
	return fastq.NewShardedReadStore(rank, ranges, names, lens, owned, parsed)
}

// ownerOf returns the rank whose contiguous range holds gid.
func ownerOf(ranges [][2]int, gid int) int {
	lo, hi := 0, len(ranges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if gid >= ranges[mid][1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// DescribeLoad renders the per-rank parsed-byte counters of a gathered
// report ("12.3kB 12.1kB ..."), the observable that distinguishes a
// cooperative sharded load from P whole-file parses.
func DescribeLoad(rep *Report) string {
	var b strings.Builder
	b.WriteString("input bytes parsed per rank:")
	for i := range rep.PerRank {
		fmt.Fprintf(&b, " %d", rep.PerRank[i].InputBytes)
	}
	return b.String()
}
