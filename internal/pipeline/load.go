// Cooperative input loading: the paper's parallel I/O stage. Instead of
// every rank parsing the whole FASTQ file, each rank parses only its
// record-boundary-aligned byte shard (fastq.LoadShard), the ranks
// allgather the per-read metadata (names and lengths — bytes per read,
// not sequences), and the sequences that fall outside a rank's canonical
// block-distribution range are reshuffled to their owners with one packed
// all-to-all. The resulting sharded stores carry the exact global ID map
// a whole-file load would have produced, so every downstream stage — and
// the PAF output — is byte-identical; only the I/O and resident memory
// drop from O(file) to O(file/P) per rank.
//
// The assembly half (metadata allgather + boundary reshuffle) is shared
// with the checkpoint loader: a resume hands each rank the contiguous
// record runs of its assigned snapshot segments, which assembleStore
// re-homes into the canonical distribution of the (possibly different)
// resumed world size exactly as it re-homes file-shard boundaries.
package pipeline

import (
	"errors"
	"fmt"
	"strings"

	"dibella/internal/fastq"
	"dibella/internal/spmd"
	"dibella/internal/trace"
)

// shardMeta is one rank's contribution to the global read-ID map: the
// names and lengths of the records its file shard contained.
type shardMeta struct {
	Names []string
	Lens  []int32
}

// agreeError is the collective error-agreement idiom: every rank
// contributes its local failure (or ""), and if any rank failed, every
// rank unwinds with the same error — a survivor would otherwise hang in
// the next collective.
func agreeError(c *spmd.Comm, op string, err error) error {
	status := ""
	if err != nil {
		status = fmt.Sprintf("rank %d: %v", c.Rank(), err)
	}
	for _, s := range spmd.Allgather(c, status) {
		if s != "" {
			return errors.New("pipeline: " + op + ": " + s)
		}
	}
	return nil
}

// LoadStore cooperatively loads path across c's world and returns this
// rank's sharded ReadStore. All ranks must call it collectively with the
// same path; a load failure on any rank fails every rank (no partial
// worlds). The store's block distribution is identical to
// fastq.NewReadStore over the whole file.
func LoadStore(c *spmd.Comm, path string) (*fastq.ReadStore, error) {
	rec := trace.Rec(c.Rank())
	rec.Begin(traceLoad, c.Now())
	shard, parsed, err := fastq.LoadShard(path, c.Rank(), c.Size())

	// Collective error agreement: if any rank failed to read its shard
	// (missing file on one host, permissions, corrupt range), every rank
	// must unwind.
	if err := agreeError(c, "cooperative load of "+path, err); err != nil {
		return nil, err
	}
	store, err := assembleStore(c, shard, parsed)
	if err == nil {
		rec.End(traceLoad, c.Now(), parsed)
	}
	return store, err
}

// assembleStore builds this rank's endpoint of the canonical sharded
// store from a contiguous run of parsed records. The runs of all ranks,
// concatenated in rank order, must be exactly the global record sequence
// (global IDs follow that order); empty runs are fine. Sequences that
// fall outside the rank's canonical byte-balanced range travel to their
// owners in one packed all-to-all.
func assembleStore(c *spmd.Comm, held []*fastq.Record, parsed int64) (*fastq.ReadStore, error) {
	p, rank := c.Size(), c.Rank()
	meta := shardMeta{Names: make([]string, len(held)), Lens: make([]int32, len(held))}
	for i, rec := range held {
		meta.Names[i] = rec.Name
		meta.Lens[i] = int32(rec.Len())
	}
	all := spmd.Allgather(c, meta)

	// Global ID map: IDs follow the rank-order concatenation of the held
	// runs. heldStart[r] is the first global ID rank r holds.
	heldStart := make([]int, p+1)
	var names []string
	var lens []int32
	for r, m := range all {
		heldStart[r+1] = heldStart[r] + len(m.Names)
		names = append(names, m.Names...)
		lens = append(lens, m.Lens...)
	}
	ranges := fastq.PartitionLens(lens, p)

	// Reshuffle: held-but-not-owned sequences travel to their owners.
	// Receivers know exactly which IDs arrive from whom — the overlap of
	// src's held interval with our owned range, in ID order — so the
	// exchange carries raw sequence bytes, nothing else.
	send := make([]spmd.PackedBufs, p)
	myHeld := heldStart[rank]
	for i, rec := range held {
		gid := myHeld + i
		if owner := ownerOf(ranges, gid); owner != rank {
			send[owner].AppendItem(rec.Seq)
		}
	}
	recv := spmd.AlltoallvPacked(c, send)

	start, end := ranges[rank][0], ranges[rank][1]
	owned := make([]*fastq.Record, 0, end-start)
	items := make([][][]byte, p)
	cursor := make([]int, p)
	src := 0
	for gid := start; gid < end; gid++ {
		for gid >= heldStart[src+1] {
			src++
		}
		if src == rank {
			owned = append(owned, held[gid-myHeld])
			continue
		}
		if items[src] == nil {
			items[src] = recv[src].Items()
		}
		if cursor[src] >= len(items[src]) {
			return nil, fmt.Errorf("pipeline: rank %d sent %d boundary reads, rank %d expected more (ID %d)",
				src, len(items[src]), rank, gid)
		}
		seq := items[src][cursor[src]]
		cursor[src]++
		// Qualities are not reshuffled: no stage downstream of loading
		// reads them, and dropping them keeps the exchange at sequence
		// bytes, the paper's bound.
		owned = append(owned, &fastq.Record{Name: names[gid], Seq: seq})
	}
	for s := 0; s < p; s++ {
		if s != rank && cursor[s] != len(recv[s].Lens) {
			return nil, fmt.Errorf("pipeline: rank %d sent %d boundary reads, rank %d consumed %d",
				s, len(recv[s].Lens), rank, cursor[s])
		}
	}
	return fastq.NewShardedReadStore(rank, ranges, names, lens, owned, parsed)
}

// ownerOf returns the rank whose contiguous range holds gid.
func ownerOf(ranges [][2]int, gid int) int {
	lo, hi := 0, len(ranges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if gid >= ranges[mid][1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// DescribeLoad renders the per-rank parsed-byte counters of a gathered
// report ("12.3kB 12.1kB ..."), the observable that distinguishes a
// cooperative sharded load from P whole-file parses.
func DescribeLoad(rep *Report) string {
	var b strings.Builder
	b.WriteString("input bytes parsed per rank:")
	for i := range rep.PerRank {
		fmt.Fprintf(&b, " %d", rep.PerRank[i].InputBytes)
	}
	return b.String()
}
