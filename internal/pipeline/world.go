package pipeline

import (
	"dibella/internal/ckpt"
	"dibella/internal/dht"
	"dibella/internal/fastq"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/spmd"
	"dibella/internal/trace"
)

// World is one rank's live pipeline state: the read view and the DHT
// partition formed by the load and build stages, plus the accumulated
// per-rank accounting. The batch driver (run) forms a world, runs the
// overlap stage dropping the partition, and aligns; serve mode forms a
// world once, keeps the partition resident, and answers query batches
// against it (RunQuery) for the daemon's lifetime.
type World struct {
	c     *spmd.Comm
	model *machine.Model
	store *fastq.ReadStore
	cfg   Config
	view  *fastq.LocalView
	part  *dht.Partition
	rr    RankReport
	query QueryStats
}

// FormWorld runs the load and build stages collectively and returns the
// formed world with its DHT partition resident. All ranks must call it
// collectively; cfg is resolved (setDefaults) inside. A serve-mode
// caller sets cfg.KeepSingletons so the resident index can reproduce
// pairs that a query occurrence lifts past the singleton cutoff.
func FormWorld(c *spmd.Comm, model *machine.Model, store *fastq.ReadStore, cfg Config) (*World, error) {
	return formWorld(c, model, store, cfg, nil, nil)
}

// formWorld is FormWorld with the checkpoint writer and resume state of
// the batch driver threaded through.
func formWorld(c *spmd.Comm, model *machine.Model, store *fastq.ReadStore, cfg Config,
	ck *ckptState, res *resumeState) (*World, error) {

	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	view := store.View(c.Rank())
	start, end := view.LocalIDRange()

	w := &World{
		c: c, model: model, store: store, cfg: cfg, view: view,
		rr: RankReport{Rank: c.Rank(), ReadsLocal: int(end - start), InputBytes: store.ParsedBytes},
	}

	// Load boundary: the sharded read store is durable; a restart can
	// skip parsing and reshuffling the input. Its I/O cost is charged to
	// the Bloom stage's packing account (the stage the snapshot delays).
	if err := ck.snapshot(c, ckpt.StageLoad, storeSections(store, c.Rank()), &w.rr.Bloom.Breakdown); err != nil {
		return nil, err
	}

	if res.resumedPast(ckpt.StageLoad) {
		w.part = res.part
		return w, nil
	}
	local := dht.LocalReads{IDStart: start}
	for id := start; id < end; id++ {
		local.Seqs = append(local.Seqs, store.Seq(id))
	}
	part, buildStats, err := dht.Build(c, model, local, dht.Config{
		K: cfg.K, MaxFreq: cfg.MaxFreq,
		MaxKmersPerRound: cfg.MaxKmersPerRound,
		BloomFP:          cfg.BloomFP,
		ErrorRate:        cfg.ErrorRate,
		UseHLL:           cfg.UseHLL,
		MinimizerWindow:  cfg.MinimizerWindow,
		Async:            cfg.Exchange != ExchangeSync,
		BuildDepth:       cfg.BuildDepth,
		KeepSingletons:   cfg.KeepSingletons,
	})
	if err != nil {
		return nil, err
	}
	w.part = part
	w.rr.Bloom, w.rr.Hash, w.rr.Retained = buildStats.Bloom, buildStats.Hash, buildStats.Retained
	// Stage-end memory samples: Bloom's peak (filter + nascent table) was
	// taken inside the build while the filter was still alive; Hash is
	// the world's footprint now that the table stands.
	w.rr.MemPeak.Bloom = buildStats.BloomMemBytes
	w.rr.MemPeak.Hash = w.MemBytes()
	residentMemory.WithRank(c.Rank()).Set(w.rr.MemPeak.Hash)
	stageExchangeBytes.With(string(StageBloom)).Add(buildStats.Bloom.BytesPacked)
	stageExchangeBytes.With(string(StageHash)).Add(buildStats.Hash.BytesPacked)

	// DHT boundary: partitions plus the read store, so the snapshot is
	// self-contained.
	sections := append(storeSections(store, c.Rank()), ckpt.Section{Name: sectionDHT, Data: part.Encode()})
	if err := ck.snapshot(c, ckpt.StageDHT, sections, &w.rr.Hash.Breakdown); err != nil {
		return nil, err
	}
	return w, nil
}

// overlapStage runs the batch overlap stage against the resident
// partition. Unless retain is set the partition is dropped afterwards —
// the batch pipeline has no further use for it; a serve world never
// calls this (queries probe the partition directly).
func (w *World) overlapStage(ck *ckptState, res *resumeState, retain bool) ([]overlap.Task, error) {
	if res.resumedPast(ckpt.StageDHT) {
		return res.tasks, nil
	}
	rec := trace.Rec(w.c.Rank())
	rec.Begin(traceOverlap, w.c.Now())
	tasks, ovStats, err := overlap.Run(w.c, w.model, w.part, w.store.Owner, w.cfg.overlapConfig(w.store))
	if err != nil {
		return nil, err
	}
	w.rr.Overlap = ovStats
	rec.End(traceOverlap, w.c.Now(), ovStats.BytesPacked)
	stageExchangeBytes.With(string(StageOverlap)).Add(ovStats.BytesPacked)
	// Overlap's peak: the partition is still resident alongside the
	// consolidated tasks — sample before dropping it.
	w.rr.MemPeak.Overlap = w.MemBytes()
	if !retain {
		// The hash table is no longer needed once tasks exist.
		w.part = nil
	}

	// Overlap boundary: consolidated task sets plus the read store.
	sections := append(storeSections(w.store, w.c.Rank()), ckpt.Section{Name: sectionTasks, Data: overlap.EncodeTasks(tasks)})
	if err := ck.snapshot(w.c, ckpt.StageOverlap, sections, &w.rr.Overlap.Breakdown); err != nil {
		return nil, err
	}
	return tasks, nil
}

// alignTasks runs the batch alignment stage and closes out the rank's
// virtual-clock accounting.
func (w *World) alignTasks(tasks []overlap.Task) []Alignment {
	rec := trace.Rec(w.c.Rank())
	rec.Begin(traceAlign, w.c.Now())
	recs, alStats := alignStage(w.c, w.model, w.view, tasks, w.cfg)
	w.rr.Align = alStats
	w.rr.VirtualTotal = w.c.Now()
	rec.End(traceAlign, w.c.Now(), alStats.BytesPacked)
	stageExchangeBytes.With(string(StageAlign)).Add(alStats.BytesPacked)
	// Align's footprint: replicas fetched for remote tasks are installed
	// on the view; the partition is gone by now in batch runs.
	w.rr.MemPeak.Align = w.MemBytes()
	residentMemory.WithRank(w.c.Rank()).Set(w.rr.MemPeak.Align)
	return recs
}

// Comm returns the world's communicator (rank, size, and the virtual
// clock the serve frontend prices admission and routing on).
func (w *World) Comm() *spmd.Comm { return w.c }

// Model returns the platform model the world was formed under (nil when
// unpriced).
func (w *World) Model() *machine.Model { return w.model }

// Store returns the global read store backing the world.
func (w *World) Store() *fastq.ReadStore { return w.store }

// Config returns the resolved pipeline configuration.
func (w *World) Config() Config { return w.cfg }

// Report returns a copy of this rank's accumulated accounting.
func (w *World) Report() RankReport { return w.rr }

// QueryStats returns a copy of this rank's accumulated query-path
// accounting.
func (w *World) QueryStats() QueryStats { return w.query }

// MemBytes estimates this rank's resident footprint: the DHT partition
// plus replicated sequences — the quantity the serve frontend's
// mem-utilization scorer routes on.
func (w *World) MemBytes() int64 {
	var n int64
	if w.part != nil {
		n += w.part.MemBytes()
	}
	n += int64(w.view.ReplicaBytes())
	return n
}

// GatherMemBytes allgathers every rank's MemBytes. All ranks must call
// it collectively; the serve frontend refreshes its routing snapshot
// with the result after each batch.
func (w *World) GatherMemBytes() []int64 {
	return spmd.Allgather(w.c, w.MemBytes())
}
