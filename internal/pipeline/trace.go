package pipeline

import (
	"dibella/internal/spmd"
	"dibella/internal/trace"
)

// Flight-recorder span names for the pipeline stages and checkpoint
// boundaries, and the pipeline's metric names. Registered package-level
// constants, as the tracename analyzer requires.
const (
	traceLoad     = "stage.load"
	traceOverlap  = "stage.overlap"
	traceAlign    = "stage.align"
	traceCkptSnap = "ckpt.snapshot"
	traceQuery    = "query.batch"

	metricStageExchangeBytes = "dibella_stage_exchange_bytes_total"
	metricResidentMemory     = "dibella_resident_memory_bytes"
)

var (
	stageExchangeBytes = trace.RegisterCounterVec(metricStageExchangeBytes,
		"exchange payload packed per pipeline stage, summed over local ranks", "stage")
	residentMemory = trace.RegisterGaugeVec(metricResidentMemory,
		"estimated resident bytes (partition + replicas) per rank", "rank")
)

// GatherTrace collectively drains every rank's flight-recorder ring to
// rank 0 and returns the per-rank snapshots there (nil elsewhere). The
// snapshot is taken before the gather runs, so the gather's own
// collective events never appear in the emitted trace. All ranks must
// call it collectively; callers gate on trace.Enabled(), which every
// rank of a world agrees on by construction (the CLI ships -trace in
// the config every worker adopts).
func GatherTrace(c *spmd.Comm) []trace.RankEvents {
	snap := trace.Snapshot(c.Rank())
	all := spmd.GatherTo(c, snap, 0)
	if c.Rank() != 0 {
		return nil
	}
	return all
}
