package pipeline

import (
	"bytes"
	"testing"

	"dibella/internal/align"
	"dibella/internal/fastq"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/paf"
	"dibella/internal/seqgen"
)

// testDataset synthesizes a small but realistic long-read set.
func testDataset(t *testing.T, seed int64, errRate float64) *seqgen.Dataset {
	t.Helper()
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen:   30000,
		Seed:        seed,
		Coverage:    15,
		MeanReadLen: 2000,
		MinReadLen:  500,
		ErrorRate:   errRate,
		BothStrands: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{ErrorRate: 0.15, Coverage: 30, GenomeEst: 4.64e6}
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.K < 14 || cfg.K > 20 || cfg.MaxFreq < 2 || cfg.XDrop != 7 {
		t.Errorf("derived config: %+v", cfg)
	}
	if cfg.Scoring != align.DefaultScoring {
		t.Error("default scoring not applied")
	}
	bad := Config{} // nothing to derive from
	if err := bad.setDefaults(); err == nil {
		t.Error("underivable config accepted")
	}
	neg := Config{K: 17, XDrop: -3}
	if err := neg.setDefaults(); err == nil {
		t.Error("negative xdrop accepted")
	}
}

func TestExecuteModelShapeMismatch(t *testing.T) {
	ds := testDataset(t, 1, 0.1)
	mdl, err := machine.NewModel(machine.Cori, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(8, mdl, ds.Reads, Config{K: 17}); err == nil {
		t.Error("rank/model mismatch accepted")
	}
}

func TestPipelineEndToEndRecall(t *testing.T) {
	// The scientific acceptance test: on synthetic reads with known
	// origins, the pipeline must recover the bulk of true overlaps long
	// enough for the k-choice to guarantee a shared correct k-mer.
	ds := testDataset(t, 42, 0.10)
	cfg := Config{
		K: 17, SeedMode: overlap.MinDistance, MinDist: 700,
		ErrorRate: 0.10, Coverage: 15,
		KeepAlignments: true, XDrop: 20,
	}
	for _, p := range []int{1, 4} {
		rep, err := Execute(p, nil, ds.Reads, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Alignments == 0 || rep.Pairs == 0 {
			t.Fatalf("p=%d: no work done: %s", p, rep.Summary())
		}

		found := make(map[[2]uint32]bool)
		for _, a := range rep.Records {
			x, y := a.A, a.B
			if x > y {
				x, y = y, x
			}
			found[[2]uint32{x, y}] = true
		}
		truth := ds.TrueOverlaps(2000)
		if len(truth) == 0 {
			t.Fatal("degenerate ground truth")
		}
		hit := 0
		for _, pr := range truth {
			if found[pr] {
				hit++
			}
		}
		recall := float64(hit) / float64(len(truth))
		if recall < 0.70 {
			t.Errorf("p=%d: recall %.2f (%d/%d true overlaps >= 2 kb)", p, recall, hit, len(truth))
		}
	}
}

func TestPipelineDeterministicAcrossRankCounts(t *testing.T) {
	// The set of aligned pairs must not depend on the rank count.
	ds := testDataset(t, 7, 0.08)
	cfg := Config{K: 17, SeedMode: overlap.OneSeed, KeepAlignments: true}
	pairSet := func(p int) map[[2]uint32]bool {
		rep, err := Execute(p, nil, ds.Reads, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[[2]uint32]bool)
		for _, a := range rep.Records {
			out[[2]uint32{a.A, a.B}] = true
		}
		return out
	}
	p1 := pairSet(1)
	p3 := pairSet(3)
	if len(p1) == 0 {
		t.Fatal("no pairs found")
	}
	if len(p1) != len(p3) {
		t.Fatalf("pair sets differ: %d vs %d", len(p1), len(p3))
	}
	for pr := range p1 {
		if !p3[pr] {
			t.Fatalf("pair %v missing at p=3", pr)
		}
	}
}

func TestPipelineWithModelBreakdowns(t *testing.T) {
	ds := testDataset(t, 3, 0.1)
	mdl, err := machine.NewModel(machine.Edison, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Execute(8, mdl, ds.Reads, Config{K: 17, SeedMode: overlap.OneSeed})
	if err != nil {
		t.Fatal(err)
	}
	if rep.VirtualTime <= 0 {
		t.Fatal("no virtual time accumulated")
	}
	var sum float64
	for _, s := range Stages {
		v := rep.StageVirtual(s)
		if v <= 0 {
			t.Errorf("stage %s has zero modeled time", s)
		}
		if rep.StageExchangeVirtual(s) <= 0 {
			t.Errorf("stage %s has zero exchange time", s)
		}
		if rep.StageWall(s) <= 0 {
			t.Errorf("stage %s has zero wall time", s)
		}
		sum += v
	}
	// Stage times must approximately account for the total clock.
	if sum < rep.VirtualTime*0.5 || sum > rep.VirtualTime*2 {
		t.Errorf("stage sum %.4f vs clock %.4f", sum, rep.VirtualTime)
	}
	if rep.TotalVirtual() != sum {
		t.Error("TotalVirtual disagrees with stage sum")
	}
	if rep.ExchangeVirtual() <= 0 || rep.ExchangeVirtual() >= sum {
		t.Errorf("exchange fraction out of range: %v of %v", rep.ExchangeVirtual(), sum)
	}
}

func TestTaskCountBalance(t *testing.T) {
	// Fig. 8's companion claim: the number of alignments per rank is
	// nearly perfectly balanced by the odd/even heuristic.
	ds := testDataset(t, 11, 0.1)
	rep, err := Execute(8, nil, ds.Reads, Config{K: 17, SeedMode: overlap.OneSeed})
	if err != nil {
		t.Fatal(err)
	}
	if imb := rep.TaskImbalance(); imb > 1.5 {
		t.Errorf("task-count imbalance %.3f too high for uniform reads", imb)
	}
	if imb := rep.AlignImbalance(); imb < 1.0 {
		t.Errorf("alignment-time imbalance %.3f below 1", imb)
	}
}

func TestMinAlignScoreFilters(t *testing.T) {
	ds := testDataset(t, 5, 0.1)
	loose, err := Execute(2, nil, ds.Reads, Config{K: 17, KeepAlignments: true})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Execute(2, nil, ds.Reads, Config{K: 17, KeepAlignments: true, MinAlignScore: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Records) >= len(loose.Records) {
		t.Errorf("score filter kept %d of %d", len(strict.Records), len(loose.Records))
	}
	for _, a := range strict.Records {
		if a.Score < 500 {
			t.Fatalf("record with score %d survived filter", a.Score)
		}
	}
}

func TestPAFOutput(t *testing.T) {
	ds := testDataset(t, 9, 0.1)
	rep, err := Execute(2, nil, ds.Reads, Config{K: 17, KeepAlignments: true})
	if err != nil {
		t.Fatal(err)
	}
	recs := rep.PAFRecords(ds.Reads)
	if len(recs) != len(rep.Records) {
		t.Fatalf("PAF count %d != %d", len(recs), len(rep.Records))
	}
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			t.Fatalf("record %d invalid: %v (%+v)", i, err, recs[i])
		}
	}
	var buf bytes.Buffer
	if err := paf.Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := paf.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatal("PAF roundtrip lost records")
	}
}

func TestReverseStrandOverlapsFound(t *testing.T) {
	// With BothStrands data, a healthy fraction of alignments must be on
	// the '-' strand — exercising the canonical-k-mer orientation logic.
	ds := testDataset(t, 13, 0.08)
	rep, err := Execute(2, nil, ds.Reads, Config{K: 17, KeepAlignments: true})
	if err != nil {
		t.Fatal(err)
	}
	var plus, minus int
	for _, a := range rep.Records {
		if a.Strand == '+' {
			plus++
		} else {
			minus++
		}
	}
	if minus == 0 || plus == 0 {
		t.Errorf("strand mix degenerate: +%d -%d", plus, minus)
	}
}

func TestNoDuplicatePairsUnderStreaming(t *testing.T) {
	// Regression: with many small streaming rounds, occurrence lists
	// arrive out of read-ID order, so the same unordered pair used to
	// surface as (a,b) and (b,a), route to two owners, and be aligned
	// twice. Pair counts must be independent of the round size.
	ds := testDataset(t, 19, 0.1)
	run := func(batch int) *Report {
		rep, err := Execute(4, nil, ds.Reads, Config{
			K: 17, SeedMode: overlap.OneSeed, MaxKmersPerRound: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	big := run(1 << 20)
	small := run(1 << 10) // forces dozens of interleaved rounds
	if big.Pairs != small.Pairs {
		t.Errorf("pair count depends on round size: %d vs %d", big.Pairs, small.Pairs)
	}
	if big.Alignments != small.Alignments {
		t.Errorf("alignment count depends on round size: %d vs %d",
			big.Alignments, small.Alignments)
	}
}

func TestMinimizerModeTradesRecallForVolume(t *testing.T) {
	ds := testDataset(t, 17, 0.08)
	run := func(w int) (*Report, int64) {
		rep, err := Execute(4, nil, ds.Reads, Config{
			K: 17, SeedMode: overlap.OneSeed, KeepAlignments: true,
			MinimizerWindow: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		var parsed int64
		for _, rr := range rep.PerRank {
			parsed += rr.Bloom.KmersParsed
		}
		return rep, parsed
	}
	full, fullParsed := run(0)
	mins, minParsed := run(10)
	// Volume drops by roughly the minimizer density 2/(w+1).
	ratio := float64(minParsed) / float64(fullParsed)
	if ratio > 0.4 {
		t.Errorf("minimizers kept %.2f of k-mer volume, want < 0.4", ratio)
	}
	if mins.Pairs == 0 {
		t.Fatal("minimizer mode found no pairs")
	}
	// Recall against full-mode pairs stays high: shared regions >= w+k-1
	// still share a minimizer.
	fullPairs := make(map[[2]uint32]bool)
	for _, a := range full.Records {
		fullPairs[[2]uint32{a.A, a.B}] = true
	}
	hit := 0
	for _, a := range mins.Records {
		if fullPairs[[2]uint32{a.A, a.B}] {
			hit++
		}
	}
	minPairs := make(map[[2]uint32]bool)
	for _, a := range mins.Records {
		minPairs[[2]uint32{a.A, a.B}] = true
	}
	recall := float64(len(minPairs)) / float64(len(fullPairs))
	if recall < 0.5 {
		t.Errorf("minimizer mode retained %.2f of pairs", recall)
	}
}

func TestEmptyAndDegenerateInputs(t *testing.T) {
	// No reads at all.
	rep, err := Execute(4, nil, nil, Config{K: 17})
	if err != nil {
		t.Fatalf("empty input: %v", err)
	}
	if rep.Alignments != 0 || rep.Pairs != 0 {
		t.Errorf("empty input produced work: %s", rep.Summary())
	}
	// A single read cannot overlap anything.
	one := []*fastq.Record{{Name: "solo", Seq: bytes.Repeat([]byte("ACGT"), 500)}}
	rep, err = Execute(4, nil, one, Config{K: 17})
	if err != nil {
		t.Fatalf("single read: %v", err)
	}
	if rep.Pairs != 0 {
		t.Errorf("single read produced %d pairs", rep.Pairs)
	}
	// Reads shorter than k.
	short := []*fastq.Record{
		{Name: "a", Seq: []byte("ACGT")},
		{Name: "b", Seq: []byte("ACGT")},
	}
	rep, err = Execute(2, nil, short, Config{K: 17})
	if err != nil {
		t.Fatalf("short reads: %v", err)
	}
	if rep.Pairs != 0 {
		t.Errorf("sub-k reads produced pairs")
	}
	// More ranks than reads.
	pairable := []*fastq.Record{
		{Name: "a", Seq: bytes.Repeat([]byte("ACGTTGCATT"), 30)},
		{Name: "b", Seq: bytes.Repeat([]byte("ACGTTGCATT"), 30)},
	}
	rep, err = Execute(16, nil, pairable, Config{K: 17, MaxFreq: 500})
	if err != nil {
		t.Fatalf("p >> reads: %v", err)
	}
	if rep.Pairs == 0 {
		t.Error("identical reads should pair even with p >> reads")
	}
}

func TestIdenticalReadsPairPerfectly(t *testing.T) {
	// Two identical error-free reads must be found and align end to end.
	seq := bytes.Repeat([]byte("ACGTTGCA"), 200)
	reads := []*fastq.Record{
		{Name: "a", Seq: seq},
		{Name: "b", Seq: append([]byte(nil), seq...)},
	}
	rep, err := Execute(2, nil, reads, Config{
		K: 17, MaxFreq: 2000, KeepAlignments: true, SeedMode: overlap.OneSeed, XDrop: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 1 {
		t.Fatalf("got %d records", len(rep.Records))
	}
	a := rep.Records[0]
	if a.Score != len(seq) {
		t.Errorf("identical reads scored %d, want %d", a.Score, len(seq))
	}
	if a.AStart != 0 || a.AEnd != len(seq) || a.BStart != 0 || a.BEnd != len(seq) {
		t.Errorf("span [%d,%d)/[%d,%d)", a.AStart, a.AEnd, a.BStart, a.BEnd)
	}
}

func TestSummaryString(t *testing.T) {
	ds := testDataset(t, 15, 0.1)
	rep, err := Execute(2, nil, ds.Reads, Config{K: 17})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary() == "" {
		t.Error("empty summary")
	}
}
