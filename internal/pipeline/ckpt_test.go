package pipeline

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dibella/internal/ckpt"
	"dibella/internal/fastq"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/paf"
	"dibella/internal/seqgen"
	"dibella/internal/spmd"
)

// ckptTestConfig exercises multi-seed pairs and several exchange rounds
// so every schedule path is live during the snapshot/restart cycle.
func ckptTestConfig() Config {
	return Config{
		K: 17, ErrorRate: 0.06, Coverage: 10, KeepAlignments: true,
		SeedMode: overlap.MinDistance, MinDist: 600,
		MaxKmersPerRound: 1 << 12,
	}
}

func ckptTestReads(t *testing.T) []*fastq.Record {
	t.Helper()
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 20000, Coverage: 10, MeanReadLen: 1500, MinReadLen: 500,
		BothStrands: true, ErrorRate: 0.06, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Reads
}

// pafBytesStore serializes a resumed report's records via the store's
// global name map.
func pafBytesStore(t *testing.T, rep *Report, store *fastq.ReadStore) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := paf.Write(&buf, rep.PAFRecordsFromStore(store)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// killAt runs a checkpointed in-process pipeline that aborts right after
// the given stage's snapshot commits, leaving dir holding snapshots up
// to and including that stage.
func killAt(t *testing.T, p int, reads []*fastq.Record, cfg Config, dir, stage string) {
	t.Helper()
	_, err := ExecuteCkpt(p, nil, reads, cfg, CkptOptions{Dir: dir, AbortAfter: stage})
	if !errors.Is(err, ErrCkptAbort) {
		t.Fatalf("abort after %s: err = %v, want ErrCkptAbort", stage, err)
	}
	m, err := ckpt.ReadManifest(dir)
	if err != nil {
		t.Fatalf("manifest after kill at %s: %v", stage, err)
	}
	if latest, ok := m.Latest(); !ok || latest.Stage != stage {
		t.Fatalf("latest snapshot after kill at %s: %+v ok=%v", stage, latest, ok)
	}
}

// resumeTCP resumes a snapshot over a loopback TCP world and returns
// rank 0's report and store.
func resumeTCP(t *testing.T, p int, dir string) (*Report, *fastq.ReadStore, error) {
	t.Helper()
	var (
		rep   *Report
		store *fastq.ReadStore
		mu    sync.Mutex
	)
	err := runTCPLoopbackWorld(t, p, func(c *spmd.Comm) error {
		r, s, err := ResumeComm(c, nil, dir, nil, nil)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			rep, store = r, s
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rep, store, nil
}

// TestResumeMatchesFreshRun is the subsystem's acceptance test: kill the
// pipeline right after each stage-boundary snapshot, resume from the
// directory — at the original world size, at half, and at double
// (elastic re-sharded resume) — on both transports, and require PAF
// byte-identical to the uninterrupted run.
func TestResumeMatchesFreshRun(t *testing.T) {
	reads := ckptTestReads(t)
	cfg := ckptTestConfig()
	const p = 4

	fresh, err := Execute(p, nil, reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Alignments == 0 {
		t.Fatal("uninterrupted run produced no alignments; nothing to compare")
	}
	want := pafBytes(t, fresh, reads)

	for _, stage := range ckpt.Stages {
		stage := stage
		t.Run("mem/"+stage, func(t *testing.T) {
			dir := t.TempDir()
			killAt(t, p, reads, cfg, dir, stage)
			for _, resumeP := range []int{p, p / 2, 2 * p} {
				rep, store, err := ExecuteResume(resumeP, nil, dir, nil, nil)
				if err != nil {
					t.Fatalf("resume at P=%d: %v", resumeP, err)
				}
				if got := pafBytesStore(t, rep, store); !bytes.Equal(want, got) {
					t.Errorf("resume at P=%d: PAF diverges from fresh run (%d vs %d bytes)",
						resumeP, len(got), len(want))
				}
			}
		})
		t.Run("tcp/"+stage, func(t *testing.T) {
			dir := t.TempDir()
			// Kill a checkpointed TCP world after the stage commits.
			err := runTCPLoopbackWorld(t, p, func(c *spmd.Comm) error {
				store := fastq.NewReadStore(reads, p)
				_, err := ExecuteCommCkpt(c, nil, store, cfg, CkptOptions{Dir: dir, AbortAfter: stage})
				return err
			})
			if !errors.Is(err, ErrCkptAbort) {
				t.Fatalf("tcp abort after %s: err = %v, want ErrCkptAbort", stage, err)
			}
			for _, resumeP := range []int{p, p / 2, 2 * p} {
				rep, store, err := resumeTCP(t, resumeP, dir)
				if err != nil {
					t.Fatalf("tcp resume at P=%d: %v", resumeP, err)
				}
				if got := pafBytesStore(t, rep, store); !bytes.Equal(want, got) {
					t.Errorf("tcp resume at P=%d: PAF diverges from fresh run (%d vs %d bytes)",
						resumeP, len(got), len(want))
				}
			}
		})
	}

	// Minimizer seeding rides the same snapshot path: the DHT boundary
	// snapshots the (sparser) minimizer partitions, the manifest's config
	// hash covers the window, and a P/2-elastic resume must reproduce the
	// fresh minimizer run byte-for-byte. A window override on resume would
	// change output and must be rejected like any output-affecting flag.
	t.Run("minimizer/dht", func(t *testing.T) {
		mcfg := cfg
		mcfg.MinimizerWindow = 5
		mfresh, err := Execute(p, nil, reads, mcfg)
		if err != nil {
			t.Fatal(err)
		}
		if mfresh.Alignments == 0 {
			t.Fatal("fresh minimizer run produced no alignments; nothing to compare")
		}
		mwant := pafBytes(t, mfresh, reads)
		dir := t.TempDir()
		killAt(t, p, reads, mcfg, dir, ckpt.StageDHT)
		for _, resumeP := range []int{p, p / 2} {
			rep, store, err := ExecuteResume(resumeP, nil, dir, nil, nil)
			if err != nil {
				t.Fatalf("minimizer resume at P=%d: %v", resumeP, err)
			}
			if rep.Config.MinimizerWindow != 5 {
				t.Errorf("resume at P=%d lost the minimizer window: %d", resumeP, rep.Config.MinimizerWindow)
			}
			if got := pafBytesStore(t, rep, store); !bytes.Equal(mwant, got) {
				t.Errorf("minimizer resume at P=%d: PAF diverges from fresh run (%d vs %d bytes)",
					resumeP, len(got), len(mwant))
			}
		}
		_, _, err = ExecuteResume(p, nil, dir, func(c *Config) { c.MinimizerWindow = 9 }, nil)
		if err == nil || !strings.Contains(err.Error(), "output-affecting") {
			t.Errorf("window override on resume: err = %v, want output-affecting rejection", err)
		}
	})
}

// TestResumeRejectsCorruptSegment: a truncated or bit-flipped segment
// file must fail the resume with a clear error, never feed the pipeline
// partial state.
func TestResumeRejectsCorruptSegment(t *testing.T) {
	reads := ckptTestReads(t)
	cfg := ckptTestConfig()
	dir := t.TempDir()
	killAt(t, 2, reads, cfg, dir, ckpt.StageDHT)

	m, err := ckpt.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	latest, _ := m.Latest()
	path := filepath.Join(dir, latest.Segments[1].File)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncation (a crashed or still-copying writer).
	if err := os.WriteFile(path, img[:len(img)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ExecuteResume(2, nil, dir, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "truncated or partial") {
		t.Errorf("truncated segment: err = %v, want truncation error", err)
	}

	// Same length, flipped bit (media corruption).
	flipped := append([]byte(nil), img...)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ExecuteResume(2, nil, dir, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Errorf("corrupt segment: err = %v, want digest error", err)
	}
}

// TestResumeRejectsOutputAffectingOverrides: schedule knobs may change
// on resume, output-affecting parameters may not.
func TestResumeRejectsOutputAffectingOverrides(t *testing.T) {
	reads := ckptTestReads(t)
	cfg := ckptTestConfig()
	dir := t.TempDir()
	killAt(t, 2, reads, cfg, dir, ckpt.StageLoad)

	// Changing the exchange schedule is fine...
	rep, store, err := ExecuteResume(2, nil, dir, func(c *Config) { c.Exchange = ExchangeSync }, nil)
	if err != nil {
		t.Fatalf("schedule-only override rejected: %v", err)
	}
	if rep.Config.Exchange != ExchangeSync {
		t.Error("override not applied")
	}
	_ = store
	// ... changing k is not.
	_, _, err = ExecuteResume(2, nil, dir, func(c *Config) { c.K = 19 }, nil)
	if err == nil || !strings.Contains(err.Error(), "output-affecting") {
		t.Errorf("k override: err = %v, want output-affecting rejection", err)
	}
}

// TestResumeContinuesCheckpointing: a resumed run may itself checkpoint;
// its first commit preserves the resumed-from stage and supersedes the
// later ones, and a second-generation resume still reproduces the fresh
// run.
func TestResumeContinuesCheckpointing(t *testing.T) {
	reads := ckptTestReads(t)
	cfg := ckptTestConfig()
	fresh, err := Execute(2, nil, reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := pafBytes(t, fresh, reads)

	dir := t.TempDir()
	killAt(t, 4, reads, cfg, dir, ckpt.StageDHT)
	// Resume at P=2, checkpointing onward; kill again after overlap.
	_, _, err = ExecuteResume(2, nil, dir, nil, &CkptOptions{Dir: dir, AbortAfter: ckpt.StageOverlap})
	if !errors.Is(err, ErrCkptAbort) {
		t.Fatalf("second kill: %v", err)
	}
	m, err := ckpt.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := m.Stages[ckpt.StageDHT]; !ok || st.World != 4 {
		t.Errorf("resumed-from dht snapshot lost or rewritten: %+v ok=%v", m.Stages[ckpt.StageDHT], ok)
	}
	if st, ok := m.Stages[ckpt.StageOverlap]; !ok || st.World != 2 {
		t.Errorf("overlap snapshot from the resumed world missing: %+v ok=%v", st, ok)
	}
	// Second-generation resume, again elastic.
	rep, store, err := ExecuteResume(3, nil, dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := pafBytesStore(t, rep, store); !bytes.Equal(want, got) {
		t.Errorf("second-generation resume diverges (%d vs %d bytes)", len(got), len(want))
	}
}

// TestCheckpointedRunMatchesPlain: enabling snapshots must not change
// the output or counts of the run itself.
func TestCheckpointedRunMatchesPlain(t *testing.T) {
	reads := ckptTestReads(t)
	cfg := ckptTestConfig()
	plain, err := Execute(3, nil, reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := ExecuteCkpt(3, nil, reads, cfg, CkptOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pafBytes(t, plain, reads), pafBytes(t, ck, reads)) {
		t.Error("checkpointed run's PAF differs from plain run")
	}
}

// TestCheckpointIOPriced: with a platform model attached, snapshots must
// cost modeled time (the machine model's SnapshotTime), so checkpoint
// overhead is visible in virtual_seconds.
func TestCheckpointIOPriced(t *testing.T) {
	reads := ckptTestReads(t)
	cfg := ckptTestConfig()
	cfg.KeepAlignments = false
	const p = 4
	mdl := func() *machine.Model {
		m, err := machine.NewModelScaled(machine.Cori, 2, p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain, err := Execute(p, mdl(), reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := ExecuteCkpt(p, mdl(), reads, cfg, CkptOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if ck.VirtualTime <= plain.VirtualTime {
		t.Errorf("checkpointed run modeled at %.6fs, plain %.6fs — snapshots were free",
			ck.VirtualTime, plain.VirtualTime)
	}
	if ck.TotalVirtual() <= plain.TotalVirtual() {
		t.Errorf("stage totals: ckpt %.6fs <= plain %.6fs — snapshot cost not in stage breakdowns",
			ck.TotalVirtual(), plain.TotalVirtual())
	}
}
