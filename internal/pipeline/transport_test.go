package pipeline

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dibella/internal/fastq"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/paf"
	"dibella/internal/seqgen"
	"dibella/internal/spmd"
)

// runTCPLoopbackWorld forms a p-rank TCP world on the loopback interface —
// one transport (and socket set) per rank, ranks as goroutines, each
// connected through the public Bootstrap API — and runs fn on every rank.
func runTCPLoopbackWorld(t *testing.T, p int, fn func(c *spmd.Comm) error) error {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("rendezvous listen: %v", err)
	}
	rendezvous := ln.Addr().String()
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			boot := &spmd.JoinBootstrap{
				Rank: rank, Size: p, Rendezvous: rendezvous,
				Timeout: 20 * time.Second,
			}
			if rank == 0 {
				boot.Listener = ln
			}
			tr, err := spmd.Connect(boot)
			if err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				return
			}
			errs[rank] = boot.Finish(spmd.RunTransport(tr, nil, fn))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// executeTCPLoopback runs the pipeline over a loopback TCP world and
// returns rank 0's gathered report.
func executeTCPLoopback(t *testing.T, p int, reads []*fastq.Record, cfg Config) (*Report, error) {
	t.Helper()
	var (
		rep *Report
		mu  sync.Mutex
	)
	err := runTCPLoopbackWorld(t, p, func(c *spmd.Comm) error {
		// Each rank builds its own store, as separate worker processes
		// would.
		store := fastq.NewReadStore(reads, p)
		r, err := ExecuteComm(c, nil, store, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			rep = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// TestTCPTransportMatchesInProcess is the loopback equivalence check the
// transport refactor promises: the same seeded read set, pushed through
// the full four-stage pipeline on both backends, must produce identical
// overlaps and alignments — compared as serialized PAF bytes.
func TestTCPTransportMatchesInProcess(t *testing.T) {
	const p = 4
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 24000, Coverage: 10, MeanReadLen: 1500, MinReadLen: 500, BothStrands: true, ErrorRate: 0.06, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 17, ErrorRate: 0.06, Coverage: 10, KeepAlignments: true}

	memRep, err := Execute(p, nil, ds.Reads, cfg)
	if err != nil {
		t.Fatalf("in-process backend: %v", err)
	}
	tcpRep, err := executeTCPLoopback(t, p, ds.Reads, cfg)
	if err != nil {
		t.Fatalf("tcp backend: %v", err)
	}

	if memRep.Alignments == 0 {
		t.Fatal("in-process run produced no alignments; dataset too small to compare anything")
	}
	if memRep.RetainedKmers != tcpRep.RetainedKmers || memRep.Pairs != tcpRep.Pairs ||
		memRep.Alignments != tcpRep.Alignments || memRep.Cells != tcpRep.Cells {
		t.Errorf("global counts diverged:\n mem: %s\n tcp: %s", memRep.Summary(), tcpRep.Summary())
	}

	var memPAF, tcpPAF bytes.Buffer
	if err := paf.Write(&memPAF, memRep.PAFRecords(ds.Reads)); err != nil {
		t.Fatal(err)
	}
	if err := paf.Write(&tcpPAF, tcpRep.PAFRecords(ds.Reads)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memPAF.Bytes(), tcpPAF.Bytes()) {
		t.Errorf("PAF output differs between transports (%d vs %d bytes, %d vs %d records)",
			memPAF.Len(), tcpPAF.Len(), len(memRep.Records), len(tcpRep.Records))
	}
}

// pafBytes serializes a report's alignment records.
func pafBytes(t *testing.T, rep *Report, reads []*fastq.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := paf.Write(&buf, rep.PAFRecords(reads)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAsyncExchangeMatchesSync is the PR's equivalence guarantee: the
// non-blocking round-pipelined schedule must produce byte-identical PAF to
// the bulk-synchronous one, on both the in-process and TCP transports. The
// MinDistance seed mode keeps multi-seed pairs in play so the overlapped
// alignment paths (early local tasks, RC precompute, per-pair dedup) are
// all exercised.
func TestAsyncExchangeMatchesSync(t *testing.T) {
	const p = 4
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 24000, Coverage: 10, MeanReadLen: 1500, MinReadLen: 500, BothStrands: true, ErrorRate: 0.06, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	asyncCfg := Config{
		K: 17, ErrorRate: 0.06, Coverage: 10, KeepAlignments: true,
		SeedMode: overlap.MinDistance, MinDist: 600,
		// Small rounds force several pipelined exchanges per pass.
		MaxKmersPerRound: 1 << 12,
	}
	syncCfg := asyncCfg
	syncCfg.Exchange = ExchangeSync

	memSync, err := Execute(p, nil, ds.Reads, syncCfg)
	if err != nil {
		t.Fatalf("in-process sync: %v", err)
	}
	memAsync, err := Execute(p, nil, ds.Reads, asyncCfg)
	if err != nil {
		t.Fatalf("in-process async: %v", err)
	}
	tcpAsync, err := executeTCPLoopback(t, p, ds.Reads, asyncCfg)
	if err != nil {
		t.Fatalf("tcp async: %v", err)
	}

	if memSync.Alignments == 0 {
		t.Fatal("sync run produced no alignments; nothing to compare")
	}
	want := pafBytes(t, memSync, ds.Reads)
	if got := pafBytes(t, memAsync, ds.Reads); !bytes.Equal(want, got) {
		t.Errorf("in-process async PAF diverges from sync (%d vs %d bytes)", len(got), len(want))
	}
	if got := pafBytes(t, tcpAsync, ds.Reads); !bytes.Equal(want, got) {
		t.Errorf("tcp async PAF diverges from sync (%d vs %d bytes)", len(got), len(want))
	}

	if f := memSync.OverlapFraction(); f != 0 {
		t.Errorf("sync schedule reports overlap fraction %v, want 0", f)
	}
	if f := memAsync.OverlapFraction(); f <= 0 {
		t.Errorf("async in-process run reports overlap fraction %v, want > 0", f)
	}
	if f := tcpAsync.OverlapFraction(); f <= 0 {
		t.Errorf("async tcp run reports overlap fraction %v, want > 0", f)
	}
}

// TestAsyncExchangeReducesModeledTime checks the modeling claim: with a
// platform model attached, the overlapped schedule's modeled Bloom+hash
// time is max(exchange, local)-like and must come in under the
// bulk-synchronous sum on the same workload.
func TestAsyncExchangeReducesModeledTime(t *testing.T) {
	const p = 8
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 24000, Coverage: 10, MeanReadLen: 1500, MinReadLen: 500, BothStrands: true, ErrorRate: 0.06, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode ExchangeMode) *Report {
		mdl, err := machine.NewModelScaled(machine.Cori, 8, p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Execute(p, mdl, ds.Reads, Config{
			K: 17, ErrorRate: 0.06, Coverage: 10,
			MaxKmersPerRound: 1 << 12, Exchange: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	syncRep := run(ExchangeSync)
	asyncRep := run(ExchangeAsync)
	bloomHash := func(rep *Report) float64 {
		return rep.StageVirtual(StageBloom) + rep.StageVirtual(StageHash)
	}
	s, a := bloomHash(syncRep), bloomHash(asyncRep)
	if a >= s {
		t.Errorf("async modeled Bloom+hash time %.6fs, want below sync %.6fs", a, s)
	}
	if ov := asyncRep.StageOverlapVirtual(StageBloom) + asyncRep.StageOverlapVirtual(StageHash); ov <= 0 {
		t.Errorf("async run hides no modeled exchange time (%v)", ov)
	}
}

// TestTCPTransportPropagatesPipelineErrors checks a rank failure inside
// the distributed pipeline aborts the whole TCP world cleanly.
func TestTCPTransportPropagatesPipelineErrors(t *testing.T) {
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 8000, Coverage: 6, MeanReadLen: 1000, MinReadLen: 400, ErrorRate: 0.05, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Invalid config: k unset and underivable → every rank errors before
	// the first collective; the world must shut down, not hang.
	_, err = executeTCPLoopback(t, 3, ds.Reads, Config{})
	if err == nil {
		t.Fatal("expected configuration error to surface through the TCP world")
	}
}
