package pipeline

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dibella/internal/fastq"
	"dibella/internal/paf"
	"dibella/internal/seqgen"
	"dibella/internal/spmd"
)

// executeTCPLoopback runs the pipeline over a p-rank TCP world formed on
// the loopback interface — one transport (and socket set) per rank, ranks
// as goroutines — and returns rank 0's gathered report.
func executeTCPLoopback(t *testing.T, p int, reads []*fastq.Record, cfg Config) (*Report, error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("rendezvous listen: %v", err)
	}
	rendezvous := ln.Addr().String()
	var (
		rep  *Report
		mu   sync.Mutex
		wg   sync.WaitGroup
		errs = make([]error, p)
	)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg0 := spmd.TCPConfig{
				Rank: rank, Size: p, Rendezvous: rendezvous,
				Timeout: 20 * time.Second,
			}
			if rank == 0 {
				cfg0.Listener = ln
			}
			tr, err := spmd.DialTCP(cfg0)
			if err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				return
			}
			// Each rank builds its own store, as separate worker
			// processes would.
			store := fastq.NewReadStore(reads, p)
			errs[rank] = spmd.RunTransport(tr, nil, func(c *spmd.Comm) error {
				r, err := ExecuteComm(c, nil, store, cfg)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					mu.Lock()
					rep = r
					mu.Unlock()
				}
				return nil
			})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// TestTCPTransportMatchesInProcess is the loopback equivalence check the
// transport refactor promises: the same seeded read set, pushed through
// the full four-stage pipeline on both backends, must produce identical
// overlaps and alignments — compared as serialized PAF bytes.
func TestTCPTransportMatchesInProcess(t *testing.T) {
	const p = 4
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 24000, Coverage: 10, MeanReadLen: 1500, MinReadLen: 500, BothStrands: true, ErrorRate: 0.06, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 17, ErrorRate: 0.06, Coverage: 10, KeepAlignments: true}

	memRep, err := Execute(p, nil, ds.Reads, cfg)
	if err != nil {
		t.Fatalf("in-process backend: %v", err)
	}
	tcpRep, err := executeTCPLoopback(t, p, ds.Reads, cfg)
	if err != nil {
		t.Fatalf("tcp backend: %v", err)
	}

	if memRep.Alignments == 0 {
		t.Fatal("in-process run produced no alignments; dataset too small to compare anything")
	}
	if memRep.RetainedKmers != tcpRep.RetainedKmers || memRep.Pairs != tcpRep.Pairs ||
		memRep.Alignments != tcpRep.Alignments || memRep.Cells != tcpRep.Cells {
		t.Errorf("global counts diverged:\n mem: %s\n tcp: %s", memRep.Summary(), tcpRep.Summary())
	}

	var memPAF, tcpPAF bytes.Buffer
	if err := paf.Write(&memPAF, memRep.PAFRecords(ds.Reads)); err != nil {
		t.Fatal(err)
	}
	if err := paf.Write(&tcpPAF, tcpRep.PAFRecords(ds.Reads)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memPAF.Bytes(), tcpPAF.Bytes()) {
		t.Errorf("PAF output differs between transports (%d vs %d bytes, %d vs %d records)",
			memPAF.Len(), tcpPAF.Len(), len(memRep.Records), len(tcpRep.Records))
	}
}

// TestTCPTransportPropagatesPipelineErrors checks a rank failure inside
// the distributed pipeline aborts the whole TCP world cleanly.
func TestTCPTransportPropagatesPipelineErrors(t *testing.T) {
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 8000, Coverage: 6, MeanReadLen: 1000, MinReadLen: 400, ErrorRate: 0.05, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Invalid config: k unset and underivable → every rank errors before
	// the first collective; the world must shut down, not hang.
	_, err = executeTCPLoopback(t, 3, ds.Reads, Config{})
	if err == nil {
		t.Fatal("expected configuration error to surface through the TCP world")
	}
}
