package pipeline

import (
	"bytes"
	"testing"

	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/seqgen"
	"dibella/internal/spmd"
)

// TestStreamedExchangeMatchesSync is the streaming schedule's equivalence
// guarantee: the chunked reply exchange with readiness-driven alignment
// must produce byte-identical PAF to the bulk-synchronous schedule, on
// both the in-process and TCP transports, while actually hiding exchange
// time. MinDistance seeds keep multi-seed pairs (and the RC cache paths)
// in play; the small chunk forces many reply rounds.
func TestStreamedExchangeMatchesSync(t *testing.T) {
	const p = 4
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 24000, Coverage: 10, MeanReadLen: 1500, MinReadLen: 500, BothStrands: true, ErrorRate: 0.06, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	streamCfg := Config{
		K: 17, ErrorRate: 0.06, Coverage: 10, KeepAlignments: true,
		SeedMode: overlap.MinDistance, MinDist: 600,
		MaxKmersPerRound: 1 << 12,
		Exchange:         ExchangeStreamed,
		ReplyChunk:       2048, ReplyDepth: 3,
	}
	syncCfg := streamCfg
	syncCfg.Exchange = ExchangeSync
	syncCfg.ReplyChunk, syncCfg.ReplyDepth = 0, 0

	memSync, err := Execute(p, nil, ds.Reads, syncCfg)
	if err != nil {
		t.Fatalf("in-process sync: %v", err)
	}
	memStream, err := Execute(p, nil, ds.Reads, streamCfg)
	if err != nil {
		t.Fatalf("in-process streamed: %v", err)
	}
	tcpStream, err := executeTCPLoopback(t, p, ds.Reads, streamCfg)
	if err != nil {
		t.Fatalf("tcp streamed: %v", err)
	}

	if memSync.Alignments == 0 {
		t.Fatal("sync run produced no alignments; nothing to compare")
	}
	want := pafBytes(t, memSync, ds.Reads)
	if got := pafBytes(t, memStream, ds.Reads); !bytes.Equal(want, got) {
		t.Errorf("in-process streamed PAF diverges from sync (%d vs %d bytes)", len(got), len(want))
	}
	if got := pafBytes(t, tcpStream, ds.Reads); !bytes.Equal(want, got) {
		t.Errorf("tcp streamed PAF diverges from sync (%d vs %d bytes)", len(got), len(want))
	}
	if f := memStream.OverlapFraction(); f <= 0 {
		t.Errorf("streamed in-process run reports overlap fraction %v, want > 0", f)
	}
	if f := tcpStream.OverlapFraction(); f <= 0 {
		t.Errorf("streamed tcp run reports overlap fraction %v, want > 0", f)
	}
	if n := memStream.PerRank[0].Align.ReadsFetched; n == 0 {
		t.Error("streamed run installed no replicas on rank 0; the schedule was not exercised")
	}
}

// streamedEquivalenceCase runs one edge-case dataset/config pair through
// sync (mem) plus streamed (mem and TCP) and demands byte-identical PAF.
func streamedEquivalenceCase(t *testing.T, name string, reads int, p int, cfg Config) {
	t.Helper()
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 9000, Coverage: 8, MeanReadLen: 900, MinReadLen: 300, BothStrands: true, ErrorRate: 0.05, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reads > 0 && reads < len(ds.Reads) {
		ds.Reads = ds.Reads[:reads]
	}
	syncCfg := cfg
	syncCfg.Exchange = ExchangeSync
	syncCfg.ReplyChunk, syncCfg.ReplyDepth = 0, 0

	memSync, err := Execute(p, nil, ds.Reads, syncCfg)
	if err != nil {
		t.Fatalf("%s: in-process sync: %v", name, err)
	}
	memStream, err := Execute(p, nil, ds.Reads, cfg)
	if err != nil {
		t.Fatalf("%s: in-process streamed: %v", name, err)
	}
	tcpStream, err := executeTCPLoopback(t, p, ds.Reads, cfg)
	if err != nil {
		t.Fatalf("%s: tcp streamed: %v", name, err)
	}
	want := pafBytes(t, memSync, ds.Reads)
	if got := pafBytes(t, memStream, ds.Reads); !bytes.Equal(want, got) {
		t.Errorf("%s: in-process streamed PAF diverges from sync (%d vs %d bytes)", name, len(got), len(want))
	}
	if got := pafBytes(t, tcpStream, ds.Reads); !bytes.Equal(want, got) {
		t.Errorf("%s: tcp streamed PAF diverges from sync (%d vs %d bytes)", name, len(got), len(want))
	}
}

// TestStreamedExchangeEdgeCases drives the streamed schedule through the
// chunking extremes on both transports: one-byte chunks, a chunk larger
// than the whole payload, minimum and clamped-maximum depth, and more
// ranks than busy reads so some ranks hold zero remote tasks (they still
// participate in every chunk round).
func TestStreamedExchangeEdgeCases(t *testing.T) {
	base := Config{K: 15, ErrorRate: 0.05, Coverage: 8, KeepAlignments: true, Exchange: ExchangeStreamed}
	t.Run("chunk1", func(t *testing.T) {
		if testing.Short() {
			t.Skip("one-byte chunks mean thousands of TCP frames")
		}
		cfg := base
		cfg.ReplyChunk, cfg.ReplyDepth = 1, 2
		streamedEquivalenceCase(t, "chunk1", 24, 3, cfg)
	})
	t.Run("chunkBiggerThanPayload", func(t *testing.T) {
		cfg := base
		cfg.ReplyChunk, cfg.ReplyDepth = 1<<26, 2
		streamedEquivalenceCase(t, "chunkBiggerThanPayload", 0, 4, cfg)
	})
	t.Run("depth1", func(t *testing.T) {
		cfg := base
		cfg.ReplyChunk, cfg.ReplyDepth = 512, 1
		streamedEquivalenceCase(t, "depth1", 0, 4, cfg)
	})
	t.Run("depthClamped", func(t *testing.T) {
		cfg := base
		cfg.ReplyChunk, cfg.ReplyDepth = 512, 64 // clamped to spmd.MaxStreamDepth
		streamedEquivalenceCase(t, "depthClamped", 0, 4, cfg)
	})
	t.Run("idleRanks", func(t *testing.T) {
		// More ranks than reads leaves some ranks owning nothing and
		// holding zero alignment tasks; they still post every round.
		cfg := base
		cfg.ReplyChunk, cfg.ReplyDepth = 256, 2
		streamedEquivalenceCase(t, "idleRanks", 6, 8, cfg)
	})
}

// TestStreamedUltraLongRead replicates a read that spans many chunks: one
// giant read dwarfs the chunk size, so its sequence arrives in dozens of
// rounds and every task waiting on it must align only after the final one.
func TestStreamedUltraLongRead(t *testing.T) {
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 30000, Coverage: 6, MeanReadLen: 7000, MinReadLen: 2000, BothStrands: true, ErrorRate: 0.05, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	maxLen := 0
	for _, r := range ds.Reads {
		if r.Len() > maxLen {
			maxLen = r.Len()
		}
	}
	const chunk = 512
	if maxLen < 4*chunk {
		t.Fatalf("longest read %d does not span enough %d-byte chunks", maxLen, chunk)
	}
	cfg := Config{
		K: 17, ErrorRate: 0.05, Coverage: 6, KeepAlignments: true,
		Exchange: ExchangeStreamed, ReplyChunk: chunk, ReplyDepth: 4,
	}
	syncCfg := cfg
	syncCfg.Exchange = ExchangeSync
	syncCfg.ReplyChunk, syncCfg.ReplyDepth = 0, 0

	const p = 4
	memSync, err := Execute(p, nil, ds.Reads, syncCfg)
	if err != nil {
		t.Fatalf("in-process sync: %v", err)
	}
	memStream, err := Execute(p, nil, ds.Reads, cfg)
	if err != nil {
		t.Fatalf("in-process streamed: %v", err)
	}
	tcpStream, err := executeTCPLoopback(t, p, ds.Reads, cfg)
	if err != nil {
		t.Fatalf("tcp streamed: %v", err)
	}
	if memSync.Alignments == 0 {
		t.Fatal("sync run produced no alignments; nothing to compare")
	}
	want := pafBytes(t, memSync, ds.Reads)
	if got := pafBytes(t, memStream, ds.Reads); !bytes.Equal(want, got) {
		t.Errorf("in-process streamed PAF diverges from sync (%d vs %d bytes)", len(got), len(want))
	}
	if got := pafBytes(t, tcpStream, ds.Reads); !bytes.Equal(want, got) {
		t.Errorf("tcp streamed PAF diverges from sync (%d vs %d bytes)", len(got), len(want))
	}
}

// TestStreamedReducesModeledAlignTail checks the modeling claim behind the
// schedule: on a workload with real alignment compute (one goroutine per
// modeled rank, so compute is not divided across a rank group), the
// streamed alignment stage must hide a strictly larger fraction of its
// exchange cost than the plain async schedule — whose reply flight only
// covers RC precompute — and finish in less modeled time, without
// changing any global count.
func TestStreamedReducesModeledAlignTail(t *testing.T) {
	const p = 8
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 48000, Coverage: 12, MeanReadLen: 1500, MinReadLen: 500, BothStrands: true, ErrorRate: 0.06, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode ExchangeMode) *Report {
		mdl, err := machine.NewModel(machine.Cori, 2, p/2)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Execute(p, mdl, ds.Reads, Config{
			K: 17, ErrorRate: 0.06, Coverage: 12,
			MaxKmersPerRound: 1 << 12, Exchange: mode,
			ReplyChunk: 4096, ReplyDepth: spmd.DefaultStreamDepth,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	asyncRep := run(ExchangeAsync)
	streamRep := run(ExchangeStreamed)
	if asyncRep.Alignments != streamRep.Alignments || asyncRep.Pairs != streamRep.Pairs {
		t.Fatalf("schedules disagree on counts:\n async: %s\n stream: %s",
			asyncRep.Summary(), streamRep.Summary())
	}
	frac := func(rep *Report) float64 {
		return rep.StageOverlapVirtual(StageAlign) / rep.StageExchangeVirtual(StageAlign)
	}
	af, sf := frac(asyncRep), frac(streamRep)
	if sf <= af {
		t.Errorf("streamed alignment stage hides %.1f%% of its exchange, want more than async's %.1f%%",
			sf*100, af*100)
	}
	av, sv := asyncRep.StageVirtual(StageAlign), streamRep.StageVirtual(StageAlign)
	if sv >= av {
		t.Errorf("streamed alignment stage models %.6fs, want below async's %.6fs", sv, av)
	}
}
