package pipeline

import (
	"bytes"
	"testing"

	"dibella/internal/evalx"
	"dibella/internal/kmer"
	"dibella/internal/overlap"
	"dibella/internal/seqgen"
)

// minimizerTestConfig is the shared minimizer-mode workload: multi-seed
// pairs and several exchange rounds so every schedule path is live, with
// w=5 sparsifying the seed set.
func minimizerTestConfig() Config {
	return Config{
		K: 17, ErrorRate: 0.06, Coverage: 10, KeepAlignments: true,
		SeedMode: overlap.MinDistance, MinDist: 600,
		MaxKmersPerRound: 1 << 12,
		MinimizerWindow:  5,
	}
}

// TestMinimizerMatchesAcrossTransports: minimizer seeding changes the
// output versus exact seeding (it is a sensitivity/cost trade), so the
// house byte-identical-PAF invariant applies *within* the mode — one
// minimizer configuration must produce identical PAF across transports
// (mem and TCP), exchange schedules (sync, async, streamed), and world
// sizes.
func TestMinimizerMatchesAcrossTransports(t *testing.T) {
	const p = 4
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 24000, Coverage: 10, MeanReadLen: 1500, MinReadLen: 500,
		BothStrands: true, ErrorRate: 0.06, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	syncCfg := minimizerTestConfig()
	syncCfg.Exchange = ExchangeSync
	asyncCfg := minimizerTestConfig()
	streamCfg := minimizerTestConfig()
	streamCfg.Exchange = ExchangeStreamed
	streamCfg.ReplyChunk = 4 << 10
	streamCfg.ReplyDepth = 4

	memSync, err := Execute(p, nil, ds.Reads, syncCfg)
	if err != nil {
		t.Fatalf("in-process sync: %v", err)
	}
	if memSync.Alignments == 0 {
		t.Fatal("minimizer run produced no alignments; nothing to compare")
	}
	want := pafBytes(t, memSync, ds.Reads)

	// Schedules on the in-process transport.
	for name, cfg := range map[string]Config{"async": asyncCfg, "streamed": streamCfg} {
		rep, err := Execute(p, nil, ds.Reads, cfg)
		if err != nil {
			t.Fatalf("in-process %s: %v", name, err)
		}
		if got := pafBytes(t, rep, ds.Reads); !bytes.Equal(want, got) {
			t.Errorf("in-process %s PAF diverges from sync (%d vs %d bytes)", name, len(got), len(want))
		}
	}
	// Both non-sync schedules on the TCP transport.
	for name, cfg := range map[string]Config{"async": asyncCfg, "streamed": streamCfg} {
		rep, err := executeTCPLoopback(t, p, ds.Reads, cfg)
		if err != nil {
			t.Fatalf("tcp %s: %v", name, err)
		}
		if got := pafBytes(t, rep, ds.Reads); !bytes.Equal(want, got) {
			t.Errorf("tcp %s PAF diverges from sync (%d vs %d bytes)", name, len(got), len(want))
		}
	}
	// World sizes.
	for _, wp := range []int{2, 8} {
		rep, err := Execute(wp, nil, ds.Reads, asyncCfg)
		if err != nil {
			t.Fatalf("p=%d: %v", wp, err)
		}
		if got := pafBytes(t, rep, ds.Reads); !bytes.Equal(want, got) {
			t.Errorf("p=%d PAF diverges from p=%d (%d vs %d bytes)", wp, p, len(got), len(want))
		}
	}

	// The point of the mode: the DHT build's exchange volume shrinks
	// toward the 2/(w+1) density prediction versus an exact run.
	exactCfg := minimizerTestConfig()
	exactCfg.MinimizerWindow = 0
	exact, err := Execute(p, nil, ds.Reads, exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	buildBytes := func(rep *Report) int64 {
		return rep.StageExchangeBytes(StageBloom) + rep.StageExchangeBytes(StageHash)
	}
	ratio := float64(buildBytes(memSync)) / float64(buildBytes(exact))
	predicted := kmer.MinimizerDensity(5)
	if ratio > predicted*1.3 {
		t.Errorf("minimizer build exchanged %.3f of exact bytes, predicted density %.3f", ratio, predicted)
	}
}

// TestMinimizerRecallFloor is the evalx-scored sensitivity guarantee CI
// asserts for the minimizer smoke run: against ground truth, w=5
// minimizer seeding must keep most of the recall of exact k-mer seeding
// while shipping a fraction of its k-mer volume.
func TestMinimizerRecallFloor(t *testing.T) {
	ds := testDataset(t, 42, 0.10)
	const p, minOverlap = 4, 2000
	run := func(w int) (*Report, evalx.Result) {
		rep, err := Execute(p, nil, ds.Reads, Config{
			K: 17, ErrorRate: 0.10, Coverage: 15, KeepAlignments: true,
			SeedMode: overlap.OneSeed, MinimizerWindow: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		pairs := make([]evalx.Pair, 0, len(rep.Records))
		for _, a := range rep.Records {
			pairs = append(pairs, evalx.Canon(a.A, a.B))
		}
		return rep, evalx.Evaluate(ds, pairs, minOverlap)
	}
	exactRep, exact := run(0)
	minRep, min := run(5)
	t.Logf("exact: %s", exact)
	t.Logf("w=5:   %s", min)

	if exact.Recall() == 0 {
		t.Fatal("exact seeding recalled nothing; dataset too small to compare")
	}
	// Absolute floor, and a relative one against exact seeding.
	if min.Recall() < 0.60 {
		t.Errorf("minimizer recall %.3f below the 0.60 floor", min.Recall())
	}
	if rel := min.Recall() / exact.Recall(); rel < 0.75 {
		t.Errorf("minimizer recall %.3f is %.2f of exact's %.3f, want >= 0.75",
			min.Recall(), rel, exact.Recall())
	}
	// The volume side of the trade: parsed-for-exchange units shrink
	// toward the 2/(w+1) density prediction.
	volume := func(rep *Report) int64 {
		var n int64
		for _, rr := range rep.PerRank {
			n += rr.Bloom.KmersParsed
		}
		return n
	}
	ratio := float64(volume(minRep)) / float64(volume(exactRep))
	if predicted := kmer.MinimizerDensity(5); ratio > predicted*1.3 {
		t.Errorf("minimizer mode shipped %.3f of the k-mer volume, predicted density %.3f", ratio, predicted)
	}
}
