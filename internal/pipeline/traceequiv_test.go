package pipeline

import (
	"bytes"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"dibella/internal/fastq"
	"dibella/internal/machine"
	"dibella/internal/seqgen"
	"dibella/internal/spmd"
	"dibella/internal/trace"
)

// TestTraceObservabilityOnly is the flight recorder's contract: running
// with tracing armed must leave the PAF bytes byte-identical and the
// modeled virtual_seconds bit-identical to an untraced run, on both
// transports. Tracing that perturbed either would be worse than no
// tracing at all — every timeline it produced would describe a run that
// never happens without it.
func TestTraceObservabilityOnly(t *testing.T) {
	const p = 4
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 24000, Coverage: 10, MeanReadLen: 1500, MinReadLen: 500, BothStrands: true, ErrorRate: 0.06, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 17, ErrorRate: 0.06, Coverage: 10, KeepAlignments: true}
	mdl, err := machine.NewModelScaled(machine.Cori, 4, p)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("mem", func(t *testing.T) {
		trace.Disable()
		off, err := Execute(p, mdl, ds.Reads, cfg)
		if err != nil {
			t.Fatalf("untraced run: %v", err)
		}

		trace.Enable(trace.DefaultCapacity)
		defer trace.Disable()
		on, err := Execute(p, mdl, ds.Reads, cfg)
		if err != nil {
			t.Fatalf("traced run: %v", err)
		}

		assertTraceNeutral(t, pafBytes(t, off, ds.Reads), pafBytes(t, on, ds.Reads),
			off.VirtualTime, on.VirtualTime)
		if len(on.Trace) != p {
			t.Fatalf("traced report gathered %d rank buffers, want %d", len(on.Trace), p)
		}
		for _, re := range on.Trace {
			if len(re.Events) == 0 {
				t.Errorf("rank %d recorded no events", re.Rank)
			}
		}
		if off.Trace != nil {
			t.Errorf("untraced report carries %d trace buffers, want none", len(off.Trace))
		}
	})

	t.Run("tcp", func(t *testing.T) {
		trace.Disable()
		off, err := executeTCPLoopbackModel(t, p, mdl, ds.Reads, cfg)
		if err != nil {
			t.Fatalf("untraced run: %v", err)
		}

		trace.Enable(trace.DefaultCapacity)
		defer trace.Disable()
		on, err := executeTCPLoopbackModel(t, p, mdl, ds.Reads, cfg)
		if err != nil {
			t.Fatalf("traced run: %v", err)
		}

		assertTraceNeutral(t, pafBytes(t, off, ds.Reads), pafBytes(t, on, ds.Reads),
			off.VirtualTime, on.VirtualTime)
		if len(on.Trace) != p {
			t.Fatalf("traced report gathered %d rank buffers, want %d", len(on.Trace), p)
		}
	})
}

// assertTraceNeutral fails unless the traced run's output is
// byte-identical PAF and bit-identical virtual seconds.
func assertTraceNeutral(t *testing.T, offPAF, onPAF []byte, offVirt, onVirt float64) {
	t.Helper()
	if len(offPAF) == 0 {
		t.Fatal("untraced run produced no PAF; dataset too small to compare anything")
	}
	if !bytes.Equal(offPAF, onPAF) {
		t.Errorf("PAF output differs with tracing on (%d vs %d bytes)", len(offPAF), len(onPAF))
	}
	if math.Float64bits(offVirt) != math.Float64bits(onVirt) {
		t.Errorf("virtual_seconds differs with tracing on: %v (%#x) vs %v (%#x)",
			offVirt, math.Float64bits(offVirt), onVirt, math.Float64bits(onVirt))
	}
}

// executeTCPLoopbackModel is executeTCPLoopback with a platform model,
// so the virtual clock carries a nonzero value worth comparing.
func executeTCPLoopbackModel(t *testing.T, p int, mdl *machine.Model, reads []*fastq.Record, cfg Config) (*Report, error) {
	t.Helper()
	var (
		rep *Report
		mu  sync.Mutex
	)
	err := runTCPLoopbackWorldModel(t, p, mdl, func(c *spmd.Comm) error {
		store := fastq.NewReadStore(reads, p)
		r, err := ExecuteComm(c, mdl, store, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			rep = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// runTCPLoopbackWorldModel is runTCPLoopbackWorld with a comm model
// attached to every rank.
func runTCPLoopbackWorldModel(t *testing.T, p int, mdl *machine.Model, fn func(c *spmd.Comm) error) error {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("rendezvous listen: %v", err)
	}
	rendezvous := ln.Addr().String()
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			boot := &spmd.JoinBootstrap{
				Rank: rank, Size: p, Rendezvous: rendezvous,
				Timeout: 20 * time.Second,
			}
			if rank == 0 {
				boot.Listener = ln
			}
			tr, err := spmd.Connect(boot)
			if err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				return
			}
			errs[rank] = boot.Finish(spmd.RunTransport(tr, mdl, fn))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
