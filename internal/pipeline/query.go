package pipeline

import (
	"fmt"
	"sort"

	"dibella/internal/dht"
	"dibella/internal/fastq"
	"dibella/internal/kmer"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/paf"
	"dibella/internal/spmd"
	"dibella/internal/stats"
	"dibella/internal/trace"
	"dibella/internal/walltime"
)

// QueryRead is one read of a served query batch. Query reads take the
// virtual IDs base, base+1, ... (base = the store's read count), exactly
// the IDs they would hold appended to the indexed input — which is what
// makes a served batch comparable byte-for-byte against a batch-mode run
// over the concatenated read set.
type QueryRead struct {
	Name string
	Seq  []byte
}

// QueryStats accumulates the query path's per-rank accounting across
// every batch a world has served.
type QueryStats struct {
	Batches     int64 // batches served (collectively identical)
	KmersRouted int64 // query k-mer occurrences this rank routed
	PairsMade   int64 // query-involving pair messages this rank generated
	Tasks       int64 // consolidated tasks this rank aligned (home rank only)
	Alignments  int64 // x-drop extensions this rank executed
	stats.Breakdown
}

// queryOcc routes one query k-mer occurrence to the k-mer's partition
// owner — the build pass's occMsg shape, 16 bytes on the wire.
type queryOcc struct {
	Km kmer.Kmer
	O  dht.Occ
}

// batchQueryView is the alignment stage's read access for a served
// batch: query sequences are resident on every rank (the serve loop
// broadcast the batch), so only indexed reads are ever fetched. Fetched
// replicas live on this view, not the world's, so one batch's fetches
// cannot leak into the next.
type batchQueryView struct {
	world    *fastq.LocalView
	base     uint32
	batch    []QueryRead
	replicas map[uint32][]byte
}

func (v *batchQueryView) Owns(id uint32) bool { return id >= v.base || v.world.Owns(id) }

func (v *batchQueryView) Seq(id uint32) []byte {
	if id >= v.base {
		return v.batch[id-v.base].Seq
	}
	if v.world.Owns(id) {
		return v.world.Seq(id)
	}
	return v.replicas[id]
}

func (v *batchQueryView) OwnedSeq(id uint32) []byte {
	if id >= v.base {
		return v.batch[id-v.base].Seq
	}
	return v.world.OwnedSeq(id)
}

func (v *batchQueryView) AddReplica(id uint32, seq []byte) { v.replicas[id] = seq }

func (v *batchQueryView) OwnerOf(id uint32) int { return v.world.OwnerOf(id) }

// RunQuery answers one query batch against the resident partition. All
// ranks must call it collectively with the same home and batch (the
// serve loop broadcasts both before calling). The returned alignments
// are assembled and sorted on rank 0 only; other ranks return nil.
//
// The house invariant: the records equal a batch-mode run over the
// indexed reads plus the batch restricted to pairs involving at least
// one query read, regardless of which home rank the frontend's scorers
// picked — consolidation sorts tasks, seed filtering sorts seeds, and
// the gathered records are sorted into the same total order batch mode
// uses.
func (w *World) RunQuery(home int, batch []QueryRead) ([]Alignment, error) {
	c, model, cfg := w.c, w.model, w.cfg
	p := c.Size()
	if w.part == nil {
		return nil, fmt.Errorf("pipeline: query against a world whose partition was dropped")
	}
	if cfg.MinimizerWindow > 1 {
		return nil, fmt.Errorf("pipeline: serve queries are not supported under minimizer seeding")
	}
	if home < 0 || home >= p {
		return nil, fmt.Errorf("pipeline: query home rank %d out of range (%d ranks)", home, p)
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("pipeline: empty query batch")
	}
	qs := &w.query
	qs.Batches++
	base := uint32(w.store.NumReads())
	rec := trace.Rec(c.Rank())
	rec.Begin(traceQuery, c.Now())
	defer func() { rec.End(traceQuery, c.Now(), int64(len(batch))) }()

	// Route this rank's slice of the batch's k-mer occurrences to their
	// partition owners — the hash pass's exchange, one round, with query
	// read IDs appended after the indexed ID space.
	t0 := walltime.Now()
	lo, hi := blockRange(len(batch), p, c.Rank())
	send := make([][]queryOcc, p)
	var routed int64
	for j := lo; j < hi; j++ {
		sc := kmer.NewScanner(batch[j].Seq, cfg.K, base+uint32(j))
		for {
			ex, ok := sc.Next()
			if !ok {
				break
			}
			send[ex.Kmer.Owner(p)] = append(send[ex.Kmer.Owner(p)], queryOcc{
				Km: ex.Kmer,
				O:  dht.MakeOcc(ex.Occ.ReadID, ex.Occ.Pos, ex.Occ.Forward),
			})
			routed++
		}
	}
	qs.KmersRouted += routed
	qs.LocalVirtual += price(c, model, float64(routed), machine.RateParse, 0)
	qs.PackVirtual += price(c, model, float64(routed*16), machine.RatePack, 0)
	qs.LocalWall += walltime.Since(t0)

	preComm := c.Stats()
	occs := spmd.Alltoallv(c, send)

	// Probe the resident partition and emit every query-involving pair.
	// The combined count decides retention exactly as the batch prune
	// would: an entry's count covers the indexed occurrences (singletons
	// and high-frequency tombstones included — KeepSingletons keeps
	// both resident), the query occurrences are this batch's.
	t0 = walltime.Now()
	byKm := make(map[kmer.Kmer][]dht.Occ)
	for _, msgs := range occs {
		for _, m := range msgs {
			byKm[m.Km] = append(byKm[m.Km], m.O)
		}
	}
	kms := make([]kmer.Kmer, 0, len(byKm))
	for km := range byKm {
		kms = append(kms, km)
	}
	sort.Slice(kms, func(i, j int) bool { return kms[i] < kms[j] })
	pairSend := make([][]overlap.PairMsg, p)
	var made int64
	for _, km := range kms {
		q := byKm[km]
		var indexed []dht.Occ
		count := 0
		if e, ok := w.part.Table[km]; ok {
			count = int(e.Count)
			indexed = e.Occs
		}
		combined := count + len(q)
		if combined < 2 || combined > w.part.MaxFreq {
			continue
		}
		for _, oi := range indexed {
			for _, oq := range q {
				// Indexed and query ID spaces are disjoint, so the pair
				// can never be a same-read repeat.
				pairSend[home] = append(pairSend[home], overlap.PairMsg{
					RA: oi.Read, RB: oq.Read, PFA: oi.PosFlag, PFB: oq.PosFlag,
				})
				made++
			}
		}
		for i := 0; i < len(q); i++ {
			for j := i + 1; j < len(q); j++ {
				if q[i].Read == q[j].Read {
					continue // a repeat within one query read is not an overlap
				}
				pairSend[home] = append(pairSend[home], overlap.PairMsg{
					RA: q[i].Read, RB: q[j].Read, PFA: q[i].PosFlag, PFB: q[j].PosFlag,
				})
				made++
			}
		}
	}
	qs.PairsMade += made
	qs.LocalVirtual += price(c, model, float64(len(kms)), machine.RateOverlapScan, 0) +
		price(c, model, float64(made), machine.RatePairGen, 0)
	qs.PackVirtual += price(c, model, float64(made*16), machine.RatePack, 0)
	qs.LocalWall += walltime.Since(t0)

	pairRecv := spmd.Alltoallv(c, pairSend)

	// Consolidate on the home rank (everyone else received nothing) —
	// the batch stage's merge/filter/sort, so task and seed order are
	// placement-independent.
	t0 = walltime.Now()
	tasks, ovStats, err := overlap.Consolidate(pairRecv, overlap.Config{
		K: cfg.K, Mode: cfg.SeedMode, MinDist: cfg.MinDist, MaxSeeds: cfg.MaxSeeds,
	})
	if err != nil {
		return nil, err
	}
	qs.Tasks += int64(len(tasks))
	qs.LocalVirtual += price(c, model, float64(ovStats.TasksReceived), machine.RatePairGen, 0) +
		price(c, model, float64(ovStats.SeedsKept+ovStats.SeedsDropped), machine.RateSeedPrep, 0)
	qs.LocalWall += walltime.Since(t0)

	// Align collectively: the home rank fetches the indexed sequences it
	// lacks through the same request/reply exchanges (and schedule) the
	// batch stage uses; query sequences are already resident everywhere.
	qv := &batchQueryView{world: w.view, base: base, batch: batch, replicas: make(map[uint32][]byte)}
	recs, alStats := alignStage(c, model, qv, tasks, cfg)
	qs.Alignments += alStats.Alignments
	qs.addComm(preComm, c.Stats())

	all := spmd.GatherTo(c, recs, 0)
	if c.Rank() != 0 {
		return nil, nil
	}
	var out []Alignment
	for _, rs := range all {
		out = append(out, rs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(&out[j]) })
	return out, nil
}

// addComm accumulates the exchange/overlap deltas of the batch's
// collectives into the query accounting.
func (qs *QueryStats) addComm(pre, post spmd.Stats) {
	qs.ExchangeVirtual += post.ExchangeVirtual - pre.ExchangeVirtual
	qs.OverlapVirtual += post.OverlapVirtual - pre.OverlapVirtual
	qs.ExchangeWall += post.ExchangeWall - pre.ExchangeWall
	qs.OverlapWall += post.OverlapWall - pre.OverlapWall
}

// QueryPAF renders served alignments as PAF using the store's names for
// indexed reads and the batch's names for query reads — the names a
// batch-mode run over the concatenated input would print.
func (w *World) QueryPAF(batch []QueryRead, recs []Alignment) []paf.Record {
	base := uint32(w.store.NumReads())
	name := func(id uint32) string {
		if id >= base {
			return batch[id-base].Name
		}
		return w.store.Name(id)
	}
	return pafFromAlignments(recs, name)
}

// blockRange returns rank r's [lo, hi) slice of n items block-distributed
// over p ranks.
func blockRange(n, p, r int) (int, int) {
	return n * r / p, n * (r + 1) / p
}
