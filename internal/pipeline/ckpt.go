// Checkpoint/restart integration: stage-boundary snapshots of the
// running pipeline and the resume entry points that restart from them —
// including elastic resume on a different world size.
//
// What each boundary snapshot holds (per rank, plus rank 0's manifest):
//
//	load:    the sharded read store (this rank's owned ID run)
//	dht:     the read store + this rank's k-mer hash-table partition
//	overlap: the read store + this rank's consolidated alignment tasks
//
// All three distributions are deterministic functions of the data and
// the world size — reads by the byte-balanced block distribution, k-mers
// by hash ownership, tasks by the placement policy — so a snapshot taken
// at world size W resumes at any size P: the loader assigns the W
// segments contiguously to the P ranks, then re-shards through the
// pipeline's own collectives (assembleStore's packed boundary reshuffle,
// dht.Reshard, overlap.ReshardTasks). A resumed run's PAF is
// byte-identical to an uninterrupted run's, on both transports, for
// equal and different world sizes (TestResumeMatchesFreshRun).
package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"dibella/internal/align"
	"dibella/internal/ckpt"
	"dibella/internal/dht"
	"dibella/internal/fastq"
	"dibella/internal/kmer"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/spmd"
	"dibella/internal/stats"
	"dibella/internal/trace"
	"dibella/internal/walltime"
)

// Section names inside a stage's segment files.
const (
	sectionReads = "reads"
	sectionDHT   = "dht"
	sectionTasks = "tasks"
)

// ErrCkptAbort is returned by a run configured with
// CkptOptions.AbortAfter once that stage's snapshot has committed — the
// deliberate kill switch for exercising the restart path (tests, CI
// resume drills, operator fire drills).
var ErrCkptAbort = errors.New("pipeline: aborted after checkpoint (as requested)")

// CkptOptions configures stage-boundary snapshots of a run.
type CkptOptions struct {
	// Dir is the checkpoint directory (shared across ranks — a shared
	// file system, as cluster checkpointing assumes).
	Dir string
	// Stages selects which boundaries to snapshot (ckpt.StageLoad,
	// ckpt.StageDHT, ckpt.StageOverlap). Empty: all of them.
	Stages []string
	// AbortAfter, when set to a stage name, aborts the pipeline with
	// ErrCkptAbort right after that stage's snapshot commits.
	AbortAfter string
}

// outputConfig is the subset of Config that determines the pipeline's
// output. Scheduling knobs (Exchange, ReplyChunk/Depth,
// MaxKmersPerRound) and sizing heuristics (BloomFP, UseHLL) move the
// same data on different timetables and are deliberately excluded: a
// snapshot may be resumed under a different schedule, never under a
// different k. Derivation inputs (ErrorRate, Coverage, GenomeEst) are
// covered through the derived K/MaxFreq.
type outputConfig struct {
	K                     int
	MaxFreq               int
	SeedMode              overlap.SeedMode
	MinDist               int
	MaxSeeds              int
	OwnerPolicy           overlap.OwnerPolicy
	XDrop                 int
	Scoring               align.Scoring
	MinAlignScore         int
	MinimizerWindow       int
	KeepAllSeedAlignments bool
	// KeepSingletons changes what the DHT snapshot contains (singletons
	// and tombstones stay resident), so a serve-formed checkpoint can
	// never resume into a batch run or vice versa. BuildDepth, by
	// contrast, is schedule-only and deliberately absent.
	KeepSingletons bool
}

// outputHash digests the output-affecting configuration; cfg must be
// resolved (setDefaults applied).
func (cfg *Config) outputHash() string {
	blob, err := json.Marshal(outputConfig{
		K: cfg.K, MaxFreq: cfg.MaxFreq,
		SeedMode: cfg.SeedMode, MinDist: cfg.MinDist, MaxSeeds: cfg.MaxSeeds,
		OwnerPolicy: cfg.OwnerPolicy, XDrop: cfg.XDrop, Scoring: cfg.Scoring,
		MinAlignScore: cfg.MinAlignScore, MinimizerWindow: cfg.MinimizerWindow,
		KeepAllSeedAlignments: cfg.KeepAllSeedAlignments,
		KeepSingletons:        cfg.KeepSingletons,
	})
	if err != nil {
		panic(fmt.Sprintf("pipeline: canonicalizing config: %v", err)) // plain-data struct; cannot fail
	}
	return ckpt.HashConfig(blob)
}

// ckptState is one rank's snapshot-emission state. A nil *ckptState is
// valid and inert, so the stage driver calls snapshot unconditionally.
type ckptState struct {
	w     *ckpt.Writer
	model *machine.Model
	want  map[string]bool
	// skipThrough suppresses re-snapshotting stages a resumed run
	// restored (their snapshots already exist and are what we loaded).
	skipThrough int
	abortAfter  string
}

// newCkptState validates opts and builds the per-rank emission state.
// cfg must be resolved; resumedFrom names the stage a resume restored
// ("" for fresh runs).
func newCkptState(cfg Config, model *machine.Model, opts CkptOptions, resumedFrom string) (*ckptState, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("pipeline: checkpointing requested without a directory")
	}
	want := make(map[string]bool, len(ckpt.Stages))
	if len(opts.Stages) == 0 {
		for _, s := range ckpt.Stages {
			want[s] = true
		}
	} else {
		for _, s := range opts.Stages {
			if ckpt.StageOrder(s) < 0 {
				return nil, fmt.Errorf("pipeline: unknown checkpoint stage %q (want load, dht, or overlap)", s)
			}
			want[s] = true
		}
	}
	if opts.AbortAfter != "" {
		if !want[opts.AbortAfter] {
			return nil, fmt.Errorf("pipeline: -ckpt-abort-after stage %q is not among the snapshotted stages", opts.AbortAfter)
		}
		if ckpt.StageOrder(opts.AbortAfter) <= ckpt.StageOrder(resumedFrom) {
			// The resume restored this boundary instead of re-running it,
			// so its snapshot — and therefore the kill switch — would
			// never fire; completing with exit 0 would silently mis-pass
			// a restart drill expecting the abort.
			return nil, fmt.Errorf("pipeline: -ckpt-abort-after %q cannot fire: the resume already restored the %q snapshot", opts.AbortAfter, resumedFrom)
		}
	}
	blob, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("pipeline: serializing config for the manifest: %w", err)
	}
	return &ckptState{
		w: &ckpt.Writer{
			Dir: opts.Dir, ConfigHash: cfg.outputHash(),
			ConfigJSON: blob, KeepThrough: resumedFrom,
		},
		model:       model,
		want:        want,
		skipThrough: ckpt.StageOrder(resumedFrom),
		abortAfter:  opts.AbortAfter,
	}, nil
}

// snapshot collectively commits one stage boundary (when configured to),
// charges the modeled snapshot I/O to the adjacent stage's packing
// account — checkpoints are never free in virtual_seconds — and aborts
// the run when this boundary is the configured kill point.
func (ck *ckptState) snapshot(c *spmd.Comm, stage string, sections []ckpt.Section, brk *stats.Breakdown) error {
	if ck == nil || !ck.want[stage] || ckpt.StageOrder(stage) <= ck.skipThrough {
		return nil
	}
	rec := trace.Rec(c.Rank())
	rec.BeginTag(traceCkptSnap, c.Now(), stage)
	t0 := walltime.Now()
	nbytes, err := ck.w.Snapshot(c, stage, sections)
	if err != nil {
		return err
	}
	if ck.model != nil {
		d := ck.model.SnapshotTime(float64(nbytes))
		c.Tick(d)
		brk.PackVirtual += d
	}
	brk.PackWall += walltime.Since(t0)
	rec.End(traceCkptSnap, c.Now(), nbytes)
	if ck.abortAfter == stage {
		return fmt.Errorf("%w: stage %q snapshot committed to %s", ErrCkptAbort, stage, ck.w.Dir)
	}
	return nil
}

// resumeState carries the state restored from a snapshot into the stage
// driver. A nil *resumeState means a fresh run.
type resumeState struct {
	stage string
	part  *dht.Partition // restored (re-sharded) DHT partition, stage dht
	tasks []overlap.Task // restored (re-routed) tasks, stage overlap
}

// resumedPast reports whether the restored stage lies strictly after s —
// i.e. the stage following s must be skipped because its output was
// restored rather than recomputed.
func (res *resumeState) resumedPast(s string) bool {
	return res != nil && ckpt.StageOrder(res.stage) > ckpt.StageOrder(s)
}

// storeSections encodes this rank's owned block of the read store as a
// segment section.
func storeSections(store *fastq.ReadStore, rank int) []ckpt.Section {
	start, end := store.LocalIDs(rank)
	recs := make([]*fastq.Record, 0, end-start)
	for id := start; id < end; id++ {
		recs = append(recs, store.Get(id))
	}
	return []ckpt.Section{{Name: sectionReads, Data: fastq.EncodeShardSegment(start, recs)}}
}

// ExecuteCommCkpt is ExecuteComm with stage-boundary snapshots.
func ExecuteCommCkpt(c *spmd.Comm, model *machine.Model, store *fastq.ReadStore, cfg Config,
	opts CkptOptions) (*Report, error) {

	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	ck, err := newCkptState(cfg, model, opts, "")
	if err != nil {
		return nil, err
	}
	return executeGather(c, model, store, cfg, ck, nil)
}

// ResumeComm restarts the pipeline collectively from dir's latest
// complete snapshot. The stored manifest supplies the configuration (so
// no flags need repeating); mutate, when non-nil, may adjust
// schedule-only knobs (Exchange, ReplyChunk/Depth, KeepAlignments, ...)
// — changing anything output-affecting is rejected against the
// manifest's config hash. The world size may differ from the snapshot's:
// segments are assigned contiguously to the new ranks and re-sharded
// through the pipeline's own collectives before the remaining stages
// run. opts, when non-nil, re-enables snapshotting for the stages after
// the resume point.
func ResumeComm(c *spmd.Comm, model *machine.Model, dir string, mutate func(*Config),
	opts *CkptOptions) (*Report, *fastq.ReadStore, error) {

	if model != nil && model.Ranks() != c.Size() {
		return nil, nil, fmt.Errorf("pipeline: model is shaped for %d ranks, running %d", model.Ranks(), c.Size())
	}
	// Rank 0 reads the manifest; everyone agrees on the outcome, then
	// shares the contents.
	var m ckpt.Manifest
	var readErr error
	if c.Rank() == 0 {
		mp, err := ckpt.ReadManifest(dir)
		if err != nil {
			readErr = err
		} else {
			m = *mp
		}
	}
	if err := agreeError(c, "resume from "+dir, readErr); err != nil {
		return nil, nil, err
	}
	m = spmd.Bcast(c, m, 0)
	latest, ok := m.Latest()
	if !ok {
		return nil, nil, fmt.Errorf("pipeline: %s has no committed snapshot to resume from", dir)
	}

	// Reconstruct and (optionally) adjust the configuration.
	var cfg Config
	if err := json.Unmarshal(m.ConfigJSON, &cfg); err != nil {
		return nil, nil, fmt.Errorf("pipeline: manifest config: %w", err)
	}
	if err := cfg.setDefaults(); err != nil {
		return nil, nil, err
	}
	if mutate != nil {
		mutate(&cfg)
		if err := cfg.setDefaults(); err != nil {
			return nil, nil, err
		}
	}
	if h := cfg.outputHash(); h != m.ConfigHash {
		return nil, nil, fmt.Errorf("pipeline: resume configuration (hash %s) changes output-affecting parameters of the snapshot (hash %s); only scheduling knobs may differ on resume", h, m.ConfigHash)
	}

	held, partHold, taskHold, parsedBytes, loadErr := loadSegments(c, dir, &latest, &cfg)
	if err := agreeError(c, "loading snapshot segments from "+dir, loadErr); err != nil {
		return nil, nil, err
	}

	// Re-home the read store onto this world's canonical distribution.
	store, err := assembleStore(c, held, parsedBytes)
	if err != nil {
		return nil, nil, err
	}

	res := &resumeState{stage: latest.Stage}
	switch latest.Stage {
	case ckpt.StageDHT:
		if res.part, err = dht.Reshard(c, partHold); err != nil {
			return nil, nil, err
		}
	case ckpt.StageOverlap:
		if res.tasks, err = overlap.ReshardTasks(c, taskHold, store.Owner, cfg.overlapConfig(store)); err != nil {
			return nil, nil, err
		}
	}

	var ck *ckptState
	if opts != nil {
		if ck, err = newCkptState(cfg, model, *opts, latest.Stage); err != nil {
			return nil, nil, err
		}
	}
	rep, err := executeGather(c, model, store, cfg, ck, res)
	if err != nil {
		return nil, nil, err
	}
	return rep, store, nil
}

// loadSegments reads, verifies, and decodes this rank's contiguous
// assignment of the snapshot's old-world segments: old segment s of W
// goes to new rank s*P/W... — i.e. new rank r loads segments
// [r*W/P, (r+1)*W/P). With P > W some ranks load nothing and contribute
// empty runs to the re-shard, which handles them naturally.
func loadSegments(c *spmd.Comm, dir string, latest *ckpt.StageInfo, cfg *Config) (
	held []*fastq.Record, partHold *dht.Partition, taskHold []overlap.Task,
	parsedBytes int64, err error) {

	W, P, rank := latest.World, c.Size(), c.Rank()
	lo, hi := rank*W/P, (rank+1)*W/P
	partHold = &dht.Partition{K: cfg.K, MaxFreq: cfg.MaxFreq, Table: make(map[kmer.Kmer]*dht.Entry)}
	expectNext := -1
	for s := lo; s < hi; s++ {
		seg := &latest.Segments[s]
		sections, err := ckpt.ReadSegment(dir, latest, seg)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		readsBlob, err := ckpt.SectionByName(sections, sectionReads)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		idStart, recs, err := fastq.DecodeShardSegment(readsBlob)
		if err != nil {
			return nil, nil, nil, 0, fmt.Errorf("segment %s: %w", seg.File, err)
		}
		if expectNext >= 0 && int(idStart) != expectNext {
			return nil, nil, nil, 0, fmt.Errorf("segment %s starts at read %d, expected %d (segments not contiguous)",
				seg.File, idStart, expectNext)
		}
		expectNext = int(idStart) + len(recs)
		held = append(held, recs...)
		parsedBytes += seg.Bytes

		switch latest.Stage {
		case ckpt.StageDHT:
			blob, err := ckpt.SectionByName(sections, sectionDHT)
			if err != nil {
				return nil, nil, nil, 0, err
			}
			part, err := dht.DecodePartition(blob)
			if err != nil {
				return nil, nil, nil, 0, fmt.Errorf("segment %s: %w", seg.File, err)
			}
			if part.K != cfg.K || part.MaxFreq != cfg.MaxFreq {
				return nil, nil, nil, 0, fmt.Errorf("segment %s was built with k=%d m=%d, resume config has k=%d m=%d",
					seg.File, part.K, part.MaxFreq, cfg.K, cfg.MaxFreq)
			}
			for km, e := range part.Table {
				if _, dup := partHold.Table[km]; dup {
					return nil, nil, nil, 0, fmt.Errorf("segment %s repeats k-mer %#x already loaded from an earlier segment",
						seg.File, uint64(km))
				}
				partHold.Table[km] = e
			}
		case ckpt.StageOverlap:
			blob, err := ckpt.SectionByName(sections, sectionTasks)
			if err != nil {
				return nil, nil, nil, 0, err
			}
			tasks, err := overlap.DecodeTasks(blob)
			if err != nil {
				return nil, nil, nil, 0, fmt.Errorf("segment %s: %w", seg.File, err)
			}
			taskHold = append(taskHold, tasks...)
		}
	}
	return held, partHold, taskHold, parsedBytes, nil
}

// ExecuteCkpt is Execute with stage-boundary snapshots: the in-process
// form of a checkpointed run (goroutine ranks share the directory just
// as processes on a shared file system would).
func ExecuteCkpt(p int, model *machine.Model, reads []*fastq.Record, cfg Config,
	opts CkptOptions) (*Report, error) {

	if model != nil && model.Ranks() != p {
		return nil, fmt.Errorf("pipeline: model is shaped for %d ranks, running %d", model.Ranks(), p)
	}
	store := fastq.NewReadStore(reads, p)
	var rep *Report
	var mu sync.Mutex
	var comm spmd.CommModel
	if model != nil {
		comm = model
	}
	wall := walltime.Now()
	err := spmd.RunWithModel(p, comm, func(c *spmd.Comm) error {
		r, err := ExecuteCommCkpt(c, model, store, cfg, opts)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			rep = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.WallTime = walltime.Since(wall)
	return rep, nil
}

// ExecuteResume is ResumeComm over p in-process ranks: restart a
// snapshotted run on the current machine, at any world size. Returns
// rank 0's gathered report and sharded store (for PAF output via
// PAFRecordsFromStore).
func ExecuteResume(p int, model *machine.Model, dir string, mutate func(*Config),
	opts *CkptOptions) (*Report, *fastq.ReadStore, error) {

	var rep *Report
	var store *fastq.ReadStore
	var mu sync.Mutex
	var comm spmd.CommModel
	if model != nil {
		comm = model
	}
	wall := walltime.Now()
	err := spmd.RunWithModel(p, comm, func(c *spmd.Comm) error {
		r, s, err := ResumeComm(c, model, dir, mutate, opts)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			rep, store = r, s
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	rep.WallTime = walltime.Since(wall)
	return rep, store, nil
}
