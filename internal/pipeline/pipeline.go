// Package pipeline assembles diBELLA's four-stage distributed pipeline
// (§4): Bloom filter construction, hash table construction, overlap
// detection, and pairwise alignment, all over the spmd runtime with
// bulk-synchronous all-to-all exchanges.
//
// Each stage records a per-rank breakdown (packing / local processing /
// exchange) in both modeled platform seconds and measured host time; the
// Report gathers these across ranks into the quantities the paper plots:
// per-stage rates (Figs. 3, 5, 6, 7), per-stage runtime fractions
// (Figs. 9, 10), overall efficiency (Figs. 11, 12), overall
// alignments-per-second (Fig. 13), and alignment-stage load imbalance
// (Fig. 8).
package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dibella/internal/walltime"

	"dibella/internal/align"
	"dibella/internal/bella"
	"dibella/internal/dht"
	"dibella/internal/fastq"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/paf"
	"dibella/internal/spmd"
	"dibella/internal/stats"
	"dibella/internal/trace"
)

// ExchangeMode selects how the pipeline schedules its all-to-all
// exchanges.
type ExchangeMode int

const (
	// ExchangeAsync (the default) posts exchanges as non-blocking
	// collectives (spmd.IAlltoallv) and overlaps them with packing,
	// processing, and — in the alignment stage — local alignment work.
	// Output is byte-identical to the synchronous schedule.
	ExchangeAsync ExchangeMode = iota
	// ExchangeSync is the paper's bulk-synchronous schedule: pack →
	// blocking exchange → process. Retained for A/B comparison.
	ExchangeSync
	// ExchangeStreamed is ExchangeAsync plus a chunked, streaming reply
	// exchange in the alignment stage (spmd.IAlltoallvStreamed): remote
	// tasks are aligned the moment their last missing sequence lands,
	// instead of after every replica is installed. Output is
	// byte-identical to both other schedules.
	ExchangeStreamed
)

// String names the schedule the way Report.Summary prints it.
func (m ExchangeMode) String() string {
	switch m {
	case ExchangeAsync:
		return "async"
	case ExchangeSync:
		return "sync"
	case ExchangeStreamed:
		return "streamed"
	default:
		return fmt.Sprintf("ExchangeMode(%d)", int(m))
	}
}

// Config holds every runtime parameter of a pipeline execution.
type Config struct {
	K       int // k-mer length (0: derive via bella.OptimalK from ErrorRate)
	MaxFreq int // high-frequency cutoff m (0: derive via bella theory)

	SeedMode overlap.SeedMode
	MinDist  int // seed spacing for MinDistance mode (default 1000)
	MaxSeeds int // optional per-pair seed cap

	// OwnerPolicy selects the alignment-task placement heuristic
	// (default: the paper's Algorithm 1 odd/even rule; PolicyLongerRead
	// implements the §9 future-work idea of placing tasks with the longer
	// read so less sequence moves).
	OwnerPolicy overlap.OwnerPolicy

	XDrop         int           // x-drop threshold (default 7, BELLA's)
	Scoring       align.Scoring // zero value: align.DefaultScoring
	MinAlignScore int           // drop alignments scoring below this

	MaxKmersPerRound int     // streaming batch bound (default 1<<19)
	BloomFP          float64 // Bloom false-positive target (default 0.01)
	UseHLL           bool    // size the Bloom filter via HyperLogLog
	// MinimizerWindow > 1 seeds overlaps from (w,k)-minimizers only,
	// trading a little recall for ~(w+1)/2 less k-mer traffic (extension;
	// Minimap2-style, §11).
	MinimizerWindow int

	// Data-set characteristics for parameter derivation.
	ErrorRate float64
	Coverage  float64
	GenomeEst float64 // estimated genome size (for k derivation)

	// KeepAlignments retains alignment records in the Report (costs
	// memory on large runs).
	KeepAlignments bool

	// Exchange selects non-blocking (default), bulk-synchronous, or
	// streamed exchange scheduling. The schedules move identical data and
	// produce byte-identical PAF; only when and how long ranks block
	// differs.
	Exchange ExchangeMode

	// ReplyChunk bounds the per-peer payload (bytes) of one chunk of the
	// alignment stage's streamed reply exchange (ExchangeStreamed only;
	// 0: spmd.DefaultChunkBytes).
	ReplyChunk int
	// ReplyDepth is how many reply chunk rounds are kept in flight
	// (ExchangeStreamed only; 0: spmd.DefaultStreamDepth, capped at
	// spmd.MaxStreamDepth).
	ReplyDepth int

	// BuildDepth is how many exchange rounds the hash-table build's
	// non-blocking round pipeline keeps in flight per pass (default 2 —
	// the post-one-ahead schedule; capped at spmd.MaxStreamDepth; 1
	// degenerates to the blocking schedule). Schedule-only: the built
	// table is identical at every depth.
	BuildDepth int

	// KeepSingletons retains singleton k-mers (and high-frequency
	// tombstone counts) in the DHT. Serve mode sets it when forming the
	// resident world: a query occurrence can lift an indexed singleton to
	// count 2 in the combined run served output is compared against, so
	// the index must keep them to reproduce those pairs.
	KeepSingletons bool

	// KeepAllSeedAlignments emits one alignment record per explored seed
	// instead of the default BELLA semantics of keeping only the
	// best-scoring alignment per (pair, strand). Multi-seed pairs under
	// MinDistance/AllSeeds otherwise produce duplicate overlapping PAF
	// rows for the same read pair.
	KeepAllSeedAlignments bool
}

func (cfg *Config) setDefaults() error {
	if cfg.K == 0 {
		if cfg.ErrorRate <= 0 || cfg.GenomeEst <= 0 {
			return fmt.Errorf("pipeline: k not set and no error rate/genome estimate to derive it")
		}
		k, err := bella.OptimalK(cfg.ErrorRate, 2000, 0.9, cfg.GenomeEst)
		if err != nil {
			return err
		}
		cfg.K = k
	}
	if cfg.MaxFreq == 0 {
		if cfg.ErrorRate > 0 && cfg.Coverage > 0 {
			cfg.MaxFreq = bella.ReliableUpperBound(cfg.ErrorRate, cfg.K, cfg.Coverage, 2, 1e-4)
		} else {
			cfg.MaxFreq = 8
		}
	}
	if cfg.XDrop == 0 {
		cfg.XDrop = 7
	}
	if cfg.Scoring == (align.Scoring{}) {
		cfg.Scoring = align.DefaultScoring
	}
	if err := cfg.Scoring.Validate(); err != nil {
		return err
	}
	if cfg.XDrop < 0 {
		return fmt.Errorf("pipeline: negative x-drop %d", cfg.XDrop)
	}
	if cfg.ReplyChunk < 0 {
		return fmt.Errorf("pipeline: negative reply chunk size %d", cfg.ReplyChunk)
	}
	if cfg.ReplyDepth < 0 {
		return fmt.Errorf("pipeline: negative reply stream depth %d", cfg.ReplyDepth)
	}
	if cfg.MinimizerWindow < 0 {
		return fmt.Errorf("pipeline: negative minimizer window %d", cfg.MinimizerWindow)
	}
	if cfg.BuildDepth < 0 || cfg.BuildDepth > spmd.MaxStreamDepth {
		return fmt.Errorf("pipeline: build depth %d out of [0,%d]", cfg.BuildDepth, spmd.MaxStreamDepth)
	}
	return nil
}

// price converts counted operations into virtual seconds on c's clock.
func price(c *spmd.Comm, model *machine.Model, ops, rate, workingSet float64) float64 {
	if model == nil || ops <= 0 {
		return 0
	}
	d := model.ComputeTime(ops, rate, workingSet)
	c.Tick(d)
	return d
}

// StageMem is one rank's estimated resident footprint per stage,
// sampled at each stage's end (Bloom inside the build, while the filter
// is still alive — its peak instant). It feeds the -breakdown peak-mem
// column and the resident-memory gauge.
type StageMem struct {
	Bloom   int64
	Hash    int64
	Overlap int64
	Align   int64
}

// of returns the stage's sample.
func (m *StageMem) of(s StageName) int64 {
	switch s {
	case StageBloom:
		return m.Bloom
	case StageHash:
		return m.Hash
	case StageOverlap:
		return m.Overlap
	case StageAlign:
		return m.Align
	default:
		panic(fmt.Sprintf("pipeline: unknown stage %q", s))
	}
}

// RankReport is one rank's complete accounting of a pipeline run. It is
// gathered across ranks into the Report.
type RankReport struct {
	Rank         int
	ReadsLocal   int
	InputBytes   int64 // input bytes this rank's process parsed (cooperative I/O counter)
	Bloom        dht.StageStats
	Hash         dht.StageStats
	Overlap      overlap.Stats
	Align        AlignStats
	Retained     int
	MemPeak      StageMem
	VirtualTotal float64 // rank's virtual clock at pipeline end
}

// Report is the gathered result of one pipeline execution.
type Report struct {
	Ranks   int
	Config  Config
	PerRank []RankReport
	Reads   int
	// Global counts.
	RetainedKmers int64
	Pairs         int64
	Alignments    int64
	Cells         int64
	// Elapsed virtual seconds (max over ranks) and host wall time.
	VirtualTime float64
	WallTime    time.Duration
	// Alignment records (only when Config.KeepAlignments).
	Records []Alignment
	// Flight-recorder snapshots, gathered to rank 0 at teardown (only
	// when tracing was enabled; nil on other ranks and untraced runs).
	Trace []trace.RankEvents
}

// StageName identifies a pipeline stage in reports.
type StageName string

// Pipeline stages in execution order.
const (
	StageBloom   StageName = "BloomFilter"
	StageHash    StageName = "HashTable"
	StageOverlap StageName = "Overlap"
	StageAlign   StageName = "Alignment"
)

// Stages lists the pipeline stages in order.
var Stages = []StageName{StageBloom, StageHash, StageOverlap, StageAlign}

// breakdownOf extracts a stage's breakdown from a rank report.
func (r *RankReport) breakdownOf(s StageName) stats.Breakdown {
	switch s {
	case StageBloom:
		return r.Bloom.Breakdown
	case StageHash:
		return r.Hash.Breakdown
	case StageOverlap:
		return r.Overlap.Breakdown
	case StageAlign:
		return r.Align.Breakdown
	default:
		panic(fmt.Sprintf("pipeline: unknown stage %q", s))
	}
}

// bytesPackedOf extracts a stage's exchange payload packed by this rank:
// the bytes it contributed to the stage's all-to-alls.
func (r *RankReport) bytesPackedOf(s StageName) int64 {
	switch s {
	case StageBloom:
		return r.Bloom.BytesPacked
	case StageHash:
		return r.Hash.BytesPacked
	case StageOverlap:
		return r.Overlap.BytesPacked
	case StageAlign:
		return r.Align.BytesPacked
	default:
		panic(fmt.Sprintf("pipeline: unknown stage %q", s))
	}
}

// StageExchangeBytes returns the stage's total exchange payload across all
// ranks — the wire volume the stage's all-to-alls moved. This is the
// quantity minimizer seeding shrinks; -breakdown prints it per stage.
func (rep *Report) StageExchangeBytes(s StageName) int64 {
	var total int64
	for i := range rep.PerRank {
		total += rep.PerRank[i].bytesPackedOf(s)
	}
	return total
}

// ExchangeBytes returns the run's total exchange payload across stages and
// ranks.
func (rep *Report) ExchangeBytes() int64 {
	var total int64
	for _, s := range Stages {
		total += rep.StageExchangeBytes(s)
	}
	return total
}

// StageVirtual returns the stage's modeled elapsed time: the max over
// ranks of the stage's virtual total (BSP semantics — the slowest rank
// sets the stage time).
func (rep *Report) StageVirtual(s StageName) float64 {
	vals := make([]float64, len(rep.PerRank))
	for i := range rep.PerRank {
		vals[i] = rep.PerRank[i].breakdownOf(s).TotalVirtual()
	}
	return stats.Max(vals)
}

// StageExchangeVirtual returns the stage's modeled exchange time (max over
// ranks).
func (rep *Report) StageExchangeVirtual(s StageName) float64 {
	vals := make([]float64, len(rep.PerRank))
	for i := range rep.PerRank {
		vals[i] = rep.PerRank[i].breakdownOf(s).ExchangeVirtual
	}
	return stats.Max(vals)
}

// StageOverlapVirtual returns the stage's modeled exchange time hidden
// under computation by non-blocking exchanges (max over ranks; zero for
// bulk-synchronous runs).
func (rep *Report) StageOverlapVirtual(s StageName) float64 {
	vals := make([]float64, len(rep.PerRank))
	for i := range rep.PerRank {
		vals[i] = rep.PerRank[i].breakdownOf(s).OverlapVirtual
	}
	return stats.Max(vals)
}

// OverlapFraction returns the share of the run's exchange cost that ran
// hidden under computation, aggregated over all ranks and stages: modeled
// when platform-priced, measured (overlapped vs. blocked host time)
// otherwise. Bulk-synchronous runs report 0.
func (rep *Report) OverlapFraction() float64 {
	var agg stats.Breakdown
	for i := range rep.PerRank {
		for _, s := range Stages {
			agg.Add(rep.PerRank[i].breakdownOf(s))
		}
	}
	return agg.OverlapFraction()
}

// StageMemPeak returns the stage's peak estimated resident bytes across
// ranks — the -breakdown peak-mem column.
func (rep *Report) StageMemPeak(s StageName) int64 {
	var m int64
	for i := range rep.PerRank {
		if v := rep.PerRank[i].MemPeak.of(s); v > m {
			m = v
		}
	}
	return m
}

// StageWall returns the stage's measured host time (max over ranks).
func (rep *Report) StageWall(s StageName) time.Duration {
	var m time.Duration
	for i := range rep.PerRank {
		if w := rep.PerRank[i].breakdownOf(s).TotalWall(); w > m {
			m = w
		}
	}
	return m
}

// TotalVirtual returns the summed per-stage modeled times (the figure
// harness's denominator; within rounding it equals VirtualTime).
func (rep *Report) TotalVirtual() float64 {
	t := 0.0
	for _, s := range Stages {
		t += rep.StageVirtual(s)
	}
	return t
}

// ExchangeVirtual returns the total modeled exchange time across stages.
func (rep *Report) ExchangeVirtual() float64 {
	t := 0.0
	for _, s := range Stages {
		t += rep.StageExchangeVirtual(s)
	}
	return t
}

// AlignImbalance returns the Fig. 8 metric: max over mean of the per-rank
// alignment-stage times. Virtual when modeled, host wall otherwise.
func (rep *Report) AlignImbalance() float64 {
	vals := make([]float64, len(rep.PerRank))
	virtual := rep.VirtualTime > 0
	for i := range rep.PerRank {
		if virtual {
			vals[i] = rep.PerRank[i].Align.TotalVirtual()
		} else {
			vals[i] = rep.PerRank[i].Align.TotalWall().Seconds()
		}
	}
	return stats.Imbalance(vals)
}

// TaskImbalance returns the imbalance in alignment *counts* per rank; the
// paper reports this below 0.002% from the odd/even heuristic.
func (rep *Report) TaskImbalance() float64 {
	vals := make([]float64, len(rep.PerRank))
	for i := range rep.PerRank {
		vals[i] = float64(rep.PerRank[i].Align.Alignments)
	}
	return stats.Imbalance(vals)
}

// Run executes the full pipeline on one rank. All ranks call it
// collectively; store must describe the same global read set on every
// rank (whole or sharded — see ExecuteComm).
func Run(c *spmd.Comm, model *machine.Model, store *fastq.ReadStore, cfg Config) (RankReport, []Alignment, error) {
	return run(c, model, store, cfg, nil, nil)
}

// overlapConfig builds the overlap stage's configuration (shared by the
// fresh run and the checkpoint loader's task re-shard).
func (cfg *Config) overlapConfig(store *fastq.ReadStore) overlap.Config {
	ovCfg := overlap.Config{
		K: cfg.K, Mode: cfg.SeedMode, MinDist: cfg.MinDist, MaxSeeds: cfg.MaxSeeds,
		Policy: cfg.OwnerPolicy,
	}
	if cfg.OwnerPolicy == overlap.PolicyLongerRead {
		// In the MPI setting read lengths are allgathered once at startup
		// (4 bytes per read); both store layouts provide them globally.
		ovCfg.ReadLen = store.Len
	}
	return ovCfg
}

// run is the stage driver behind Run: optionally emitting stage-boundary
// snapshots (ck) and optionally starting from a restored stage boundary
// (res) instead of the beginning. All ranks call it collectively with
// the same ck/res shape. It composes the same stage objects serve mode
// holds resident (World), dropping the partition after the overlap
// stage as the batch pipeline always has.
func run(c *spmd.Comm, model *machine.Model, store *fastq.ReadStore, cfg Config,
	ck *ckptState, res *resumeState) (RankReport, []Alignment, error) {

	w, err := formWorld(c, model, store, cfg, ck, res)
	if err != nil {
		return RankReport{}, nil, err
	}
	tasks, err := w.overlapStage(ck, res, false)
	if err != nil {
		return RankReport{}, nil, err
	}
	recs := w.alignTasks(tasks)
	return w.rr, recs, nil
}

// ExecuteComm runs the full pipeline collectively on c's world — whatever
// transport backs it — and gathers the global Report with spmd collectives,
// so goroutine ranks and TCP worker processes share one code path. Every
// rank returns a report with identical global counts, but alignment
// Records are assembled on rank 0 only (the output-owning rank; skipping
// the copy and sort elsewhere keeps the gather's cost from scaling with
// ranks that immediately discard it). store must describe the same global
// read set on every rank: either the identical whole store, or each
// rank's endpoint of one cooperative sharded load (LoadStore).
func ExecuteComm(c *spmd.Comm, model *machine.Model, store *fastq.ReadStore, cfg Config) (*Report, error) {
	return executeGather(c, model, store, cfg, nil, nil)
}

// executeGather is ExecuteComm with optional checkpointing (ck) and
// resume state (res) threaded through to the stage driver.
func executeGather(c *spmd.Comm, model *machine.Model, store *fastq.ReadStore, cfg Config,
	ck *ckptState, res *resumeState) (*Report, error) {

	if model != nil && model.Ranks() != c.Size() {
		return nil, fmt.Errorf("pipeline: model is shaped for %d ranks, running %d", model.Ranks(), c.Size())
	}
	// Derive parameters up front so the Report carries the resolved
	// values; derivation is deterministic and identical on every rank.
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	wall := walltime.Now()
	rr, recs, err := run(c, model, store, cfg, ck, res)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Ranks:   c.Size(),
		Config:  cfg,
		Reads:   store.NumReads(),
		PerRank: spmd.Allgather(c, rr),
	}
	if cfg.KeepAlignments {
		// Root gather: records travel to rank 0 only (the output-owning
		// rank), so wire traffic and decode cost don't scale with ranks
		// that would immediately discard them.
		all := spmd.GatherTo(c, recs, 0)
		if c.Rank() == 0 {
			for _, rs := range all {
				rep.Records = append(rep.Records, rs...)
			}
			// Total order over all fields: output must be byte-identical
			// across backends, rank counts, and gather arrival orders.
			sort.Slice(rep.Records, func(i, j int) bool {
				return rep.Records[i].less(&rep.Records[j])
			})
		}
	}
	for i := range rep.PerRank {
		prr := &rep.PerRank[i]
		rep.RetainedKmers += int64(prr.Retained)
		rep.Pairs += prr.Overlap.Pairs
		rep.Alignments += prr.Align.Alignments
		rep.Cells += prr.Align.Cells
		if prr.VirtualTotal > rep.VirtualTime {
			rep.VirtualTime = prr.VirtualTotal
		}
	}
	rep.WallTime = walltime.Since(wall)
	// Teardown trace gather: after every output- and clock-affecting
	// gather above (VirtualTime is already fixed from the rank reports),
	// so the flight recorder stays observability-only. Enabled() is not
	// rank-derived; every rank agrees on it before the world forms.
	if trace.Enabled() {
		rep.Trace = GatherTrace(c)
	}
	return rep, nil
}

// less is a total order on alignments so that sorted output is fully
// deterministic (ties on the leading keys are broken by every remaining
// field rather than left to sort instability).
func (a *Alignment) less(b *Alignment) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	if a.AStart != b.AStart {
		return a.AStart < b.AStart
	}
	if a.Strand != b.Strand {
		return a.Strand < b.Strand
	}
	if a.AEnd != b.AEnd {
		return a.AEnd < b.AEnd
	}
	if a.BStart != b.BStart {
		return a.BStart < b.BStart
	}
	if a.BEnd != b.BEnd {
		return a.BEnd < b.BEnd
	}
	return a.Score < b.Score
}

// Execute runs the pipeline across p goroutine ranks over the in-process
// transport and gathers the global Report. model may be nil (no platform
// pricing; host wall time is still measured).
func Execute(p int, model *machine.Model, reads []*fastq.Record, cfg Config) (*Report, error) {
	if model != nil && model.Ranks() != p {
		return nil, fmt.Errorf("pipeline: model is shaped for %d ranks, running %d", model.Ranks(), p)
	}
	store := fastq.NewReadStore(reads, p)
	var rep *Report
	var mu sync.Mutex

	var comm spmd.CommModel
	if model != nil {
		comm = model
	}
	wall := walltime.Now()
	err := spmd.RunWithModel(p, comm, func(c *spmd.Comm) error {
		r, err := ExecuteComm(c, model, store, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			rep = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.WallTime = walltime.Since(wall)
	return rep, nil
}

// PAFRecords converts kept alignment records into PAF lines using the
// read names from the original record set.
func (rep *Report) PAFRecords(reads []*fastq.Record) []paf.Record {
	return rep.pafRecords(func(id uint32) string { return reads[id].Name })
}

// PAFRecordsFromStore converts kept alignment records into PAF lines
// using the store's global name map — the form a sharded (cooperatively
// loaded) rank uses, where no single slice of records exists.
func (rep *Report) PAFRecordsFromStore(store *fastq.ReadStore) []paf.Record {
	return rep.pafRecords(store.Name)
}

func (rep *Report) pafRecords(name func(uint32) string) []paf.Record {
	return pafFromAlignments(rep.Records, name)
}

// pafFromAlignments renders alignment records as PAF rows under a name
// map — shared by the batch report and the serve-mode query path.
func pafFromAlignments(recs []Alignment, name func(uint32) string) []paf.Record {
	out := make([]paf.Record, 0, len(recs))
	for _, a := range recs {
		out = append(out, paf.Record{
			QName: name(a.A), QLen: a.ALen, QStart: a.AStart, QEnd: a.AEnd,
			Strand: a.Strand,
			TName:  name(a.B), TLen: a.BLen, TStart: a.BStart, TEnd: a.BEnd,
			Score: a.Score, NSeeds: a.SeedsConsumed,
		})
	}
	return out
}

// Summary renders the run the way diBELLA logs it. The seed field names
// the seeding mode (exact k-mers or (w,k)-minimizers); the sched field the
// exchange schedule; the overlap field is the fraction of exchange cost
// hidden under computation by non-blocking or streamed exchanges (0% for
// the bulk-synchronous schedule).
func (rep *Report) Summary() string {
	seed := "exact"
	if rep.Config.MinimizerWindow > 1 {
		seed = fmt.Sprintf("minimizer(w=%d)", rep.Config.MinimizerWindow)
	}
	return fmt.Sprintf(
		"ranks=%d reads=%d k=%d m=%d seed=%s retained=%d pairs=%d alignments=%d cells=%d sched=%s overlap=%.0f%% virtual=%.3fs wall=%v",
		rep.Ranks, rep.Reads, rep.Config.K, rep.Config.MaxFreq, seed,
		rep.RetainedKmers, rep.Pairs, rep.Alignments, rep.Cells,
		rep.Config.Exchange, rep.OverlapFraction()*100,
		rep.VirtualTime, rep.WallTime.Round(time.Millisecond))
}
