package pipeline

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dibella/internal/fastq"
	"dibella/internal/paf"
	"dibella/internal/seqgen"
	"dibella/internal/spmd"
)

// shardedResult is rank 0's view of one cooperative-load pipeline run.
type shardedResult struct {
	rep   *Report
	store *fastq.ReadStore
}

// executeSharded runs the pipeline with per-rank cooperative loading over
// an already-formed world: LoadStore then ExecuteComm on every rank.
func executeSharded(c *spmd.Comm, path string, cfg Config, out *shardedResult, mu *sync.Mutex) error {
	store, err := LoadStore(c, path)
	if err != nil {
		return err
	}
	rep, err := ExecuteComm(c, nil, store, cfg)
	if err != nil {
		return err
	}
	if c.Rank() == 0 {
		mu.Lock()
		out.rep = rep
		out.store = store
		mu.Unlock()
	}
	return nil
}

// checkShardedEquivalence runs the sharded-load pipeline on both
// transports over path and requires byte-identical PAF to want, plus
// parsed-byte counters that tile the file exactly. strictShards
// additionally demands every rank parsed a proper non-empty slice (true
// for length-uniform read sets; an ultra-long read may legitimately
// collapse neighboring shards to empty).
func checkShardedEquivalence(t *testing.T, path string, nReads int, cfg Config, want []byte, strictShards bool) {
	t.Helper()
	const p = 4
	fileSize := func() int64 {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}()

	check := func(name string, res shardedResult) {
		t.Helper()
		if res.rep == nil || res.store == nil {
			t.Fatalf("%s: rank 0 produced no report", name)
		}
		var got bytes.Buffer
		if err := paf.Write(&got, res.rep.PAFRecordsFromStore(res.store)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got.Bytes()) {
			t.Errorf("%s: sharded-load PAF diverges from whole-file load (%d vs %d bytes)",
				name, got.Len(), len(want))
		}
		if res.rep.Reads != nReads {
			t.Errorf("%s: report counts %d reads, want %d", name, res.rep.Reads, nReads)
		}
		// The counters are the proof of cooperative I/O: the per-rank
		// parsed slices tile the file exactly instead of each rank
		// re-reading all of it.
		var total int64
		for _, rr := range res.rep.PerRank {
			if rr.InputBytes < 0 || rr.InputBytes > fileSize {
				t.Errorf("%s: rank %d parsed %d bytes of a %d-byte file",
					name, rr.Rank, rr.InputBytes, fileSize)
			}
			if strictShards && (rr.InputBytes == 0 || rr.InputBytes >= fileSize) {
				t.Errorf("%s: rank %d parsed %d of %d bytes, want a proper non-empty shard",
					name, rr.Rank, rr.InputBytes, fileSize)
			}
			total += rr.InputBytes
		}
		if total != fileSize {
			t.Errorf("%s: per-rank parsed bytes sum to %d, file is %d", name, total, fileSize)
		}
		if s := DescribeLoad(res.rep); !strings.Contains(s, "input bytes parsed per rank:") {
			t.Errorf("%s: DescribeLoad = %q", name, s)
		}
	}

	var mu sync.Mutex
	var memRes shardedResult
	if err := spmd.Run(p, func(c *spmd.Comm) error {
		return executeSharded(c, path, cfg, &memRes, &mu)
	}); err != nil {
		t.Fatalf("in-process sharded run: %v", err)
	}
	check("mem", memRes)

	var tcpRes shardedResult
	if err := runTCPLoopbackWorld(t, p, func(c *spmd.Comm) error {
		return executeSharded(c, path, cfg, &tcpRes, &mu)
	}); err != nil {
		t.Fatalf("tcp sharded run: %v", err)
	}
	check("tcp", tcpRes)
}

// TestShardedLoadMatchesWholeFile is the cooperative-I/O equivalence
// guarantee: a run where every rank parses only its fastq.SplitOffsets
// shard must produce byte-identical PAF to the whole-file load, on both
// the in-process and the TCP transport — and the report's per-rank
// parsed-bytes counters must show that each rank really read only its
// share.
func TestShardedLoadMatchesWholeFile(t *testing.T) {
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 24000, Coverage: 10, MeanReadLen: 1500, MinReadLen: 500, BothStrands: true, ErrorRate: 0.06, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq")
	if err := fastq.WriteFile(path, ds.Reads); err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 17, ErrorRate: 0.06, Coverage: 10, KeepAlignments: true}
	wholeRep, err := Execute(4, nil, ds.Reads, cfg)
	if err != nil {
		t.Fatalf("whole-file run: %v", err)
	}
	if wholeRep.Alignments == 0 {
		t.Fatal("whole-file run produced no alignments; nothing to compare")
	}
	checkShardedEquivalence(t, path, len(ds.Reads), cfg, pafBytes(t, wholeRep, ds.Reads), true)
}

// TestShardedLoadUltraLongRead repeats the equivalence check on a file
// dominated by one ultra-long read (1.5 MiB of bases, beyond the 1 MiB
// boundary scan window): shard-boundary guesses land inside a record no
// fixed window can skip, exercising the PR 2 grown-window scan, and the
// reshuffle must rebalance the resulting lopsided shards into the
// canonical block distribution.
func TestShardedLoadUltraLongRead(t *testing.T) {
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 16000, Coverage: 8, MeanReadLen: 1200, MinReadLen: 500, BothStrands: true, ErrorRate: 0.06, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ultra := make([]byte, 3<<19)
	for i := range ultra {
		ultra[i] = "ACGT"[rng.Intn(4)]
	}
	reads := append(append([]*fastq.Record{}, ds.Reads...), &fastq.Record{Name: "ultra-long", Seq: ultra})

	dir := t.TempDir()
	path := filepath.Join(dir, "ultra.fastq")
	if err := fastq.WriteFile(path, reads); err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 17, ErrorRate: 0.06, Coverage: 8, KeepAlignments: true}
	wholeRep, err := Execute(4, nil, reads, cfg)
	if err != nil {
		t.Fatalf("whole-file run: %v", err)
	}
	if wholeRep.Alignments == 0 {
		t.Fatal("whole-file run produced no alignments; nothing to compare")
	}
	checkShardedEquivalence(t, path, len(reads), cfg, pafBytes(t, wholeRep, reads), false)
}

// TestLoadStoreFailsCollectively: a load error on any rank must surface
// on every rank — the survivors, whose own shards read fine, unwind with
// the failing rank's error instead of deadlocking in the reshuffle.
func TestLoadStoreFailsCollectively(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "reads.fastq")
	recs := []*fastq.Record{
		{Name: "a", Seq: bytes.Repeat([]byte("ACGT"), 100)},
		{Name: "b", Seq: bytes.Repeat([]byte("TGCA"), 100)},
		{Name: "c", Seq: bytes.Repeat([]byte("GATC"), 100)},
	}
	if err := fastq.WriteFile(good, recs); err != nil {
		t.Fatal(err)
	}
	errs := make([]error, 3)
	// Record LoadStore's verdict without returning it: returning would
	// abort the world and race slower ranks out of the allgather before
	// they observe the collective failure themselves.
	_ = spmd.Run(3, func(c *spmd.Comm) error {
		path := good
		if c.Rank() == 1 {
			path = filepath.Join(dir, "missing.fastq")
		}
		_, err := LoadStore(c, path)
		errs[c.Rank()] = err
		return nil
	})
	for r, err := range errs {
		if err == nil {
			t.Errorf("rank %d: rank 1's missing input did not surface", r)
		} else if !strings.Contains(err.Error(), "rank 1") {
			t.Errorf("rank %d: error %v does not name the failing rank", r, err)
		}
	}
}
