package pipeline

import (
	"fmt"
	"sort"

	"dibella/internal/align"
	"dibella/internal/dna"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/spmd"
	"dibella/internal/stats"
	"dibella/internal/walltime"
)

// AlignStats is the alignment stage's per-rank accounting (§9).
type AlignStats struct {
	Tasks        int64 // consolidated read pairs assigned to this rank
	Alignments   int64 // x-drop extensions executed (one per explored seed)
	Cells        int64 // DP cells computed across all alignments
	ReadsFetched int64 // remote reads replicated to this rank
	FetchedBytes int64 // bytes of replicated sequence
	BytesPacked  int64 // exchange payload this rank packed (requests + replies)
	stats.Breakdown
}

// Alignment is one computed pairwise alignment, in the coordinates of each
// read's forward strand (strand '-' means read B aligned
// reverse-complemented).
type Alignment struct {
	A, B          uint32
	Strand        byte
	Score         int
	AStart, AEnd  int
	BStart, BEnd  int
	ALen, BLen    int
	Cells         int64
	SeedsConsumed int // seeds the pair carried (after filtering)
}

// addComm accumulates one collective's exchange and overlap cost into b
// from Comm stats snapshots taken around it.
func addComm(b *stats.Breakdown, pre, post spmd.Stats) {
	b.ExchangeVirtual += post.ExchangeVirtual - pre.ExchangeVirtual
	b.OverlapVirtual += post.OverlapVirtual - pre.OverlapVirtual
	b.ExchangeWall += post.ExchangeWall - pre.ExchangeWall
	b.OverlapWall += post.OverlapWall - pre.OverlapWall
}

// readView abstracts the read access the alignment stage needs: the
// batch pipeline passes the rank's *fastq.LocalView; the serve-mode
// query path passes a view that additionally owns the broadcast query
// sequences on every rank.
type readView interface {
	Owns(id uint32) bool
	Seq(id uint32) []byte
	OwnedSeq(id uint32) []byte
	AddReplica(id uint32, seq []byte)
	OwnerOf(id uint32) int
}

// aligner is the per-rank alignment state shared by the synchronous and
// overlapped schedules: the read view, a reverse-complement cache (one RC
// per read, however many tasks touch it), and the accumulating output.
type aligner struct {
	c      *spmd.Comm
	model  *machine.Model
	view   readView
	cfg    Config
	st     *AlignStats
	rc     map[uint32][]byte // reverse complements by read ID
	rcNeed map[uint32]int    // tasks still needing each read's RC; at 0 the entry is evicted
	out    []Alignment
}

// revComp returns (computing and caching on first use) the reverse
// complement of read id's sequence.
func (al *aligner) revComp(id uint32, seq []byte) []byte {
	if rc, ok := al.rc[id]; ok {
		return rc
	}
	rc := dna.ReverseComplement(seq)
	al.st.LocalVirtual += price(al.c, al.model, float64(len(seq)), machine.RatePack, 0)
	al.rc[id] = rc
	return rc
}

// needsRC reports whether any seed aligns the pair on opposite strands
// (i.e. read B's reverse complement will be needed).
func needsRC(task overlap.Task) bool {
	for _, seed := range task.Seeds {
		if !seed.SameStrand() {
			return true
		}
	}
	return false
}

// alignTask runs one task's alignments and releases the task's claim on
// read B's reverse-complement cache entry. Each task started the stage
// counted in rcNeed, so the release must run on every exit path — the
// defensive missing-sequence return included — or the RC entry leaks for
// the rest of the stage.
func (al *aligner) alignTask(task overlap.Task) {
	seqA := al.view.Seq(task.Pair.A)
	seqB := al.view.Seq(task.Pair.B)
	if seqA != nil && seqB != nil {
		al.alignSeeds(task, seqA, seqB)
	}
	// A nil sequence is unreachable by construction; a logic error
	// surfaces as missing output rather than a crash, and falls through
	// to the release below.
	if needsRC(task) {
		// Last task touching B's reverse complement releases it, keeping
		// the cache bounded by concurrently-live RCs rather than every
		// opposite-strand read the stage ever saw.
		al.rcNeed[task.Pair.B]--
		if al.rcNeed[task.Pair.B] <= 0 {
			delete(al.rcNeed, task.Pair.B)
			delete(al.rc, task.Pair.B)
		}
	}
}

// alignSeeds runs every seed's x-drop extension for one task and appends
// the surviving alignments. By default only the best-scoring alignment per
// (pair, strand) is kept — BELLA's semantics; a multi-seed pair otherwise
// emits duplicate overlapping records — with Config.KeepAllSeedAlignments
// as the per-seed escape hatch. Ties keep the earliest seed's alignment
// (seed lists arrive sorted by PosA), so the choice is deterministic and
// schedule-independent.
func (al *aligner) alignSeeds(task overlap.Task, seqA, seqB []byte) {
	cfg := &al.cfg
	var bestFwd, bestRev Alignment
	var haveFwd, haveRev bool
	var seedOps, cells int64
	for _, seed := range task.Seeds {
		seedOps++
		posA := int(seed.PosA)
		posB := int(seed.PosB)
		strand := byte('+')
		tgt := seqB
		if !seed.SameStrand() {
			tgt = al.revComp(task.Pair.B, seqB)
			posB = len(seqB) - cfg.K - posB
			strand = '-'
		}
		if posA < 0 || posB < 0 || posA+cfg.K > len(seqA) || posB+cfg.K > len(tgt) {
			continue // corrupted seed; skip defensively
		}
		r := align.XDrop(seqA, tgt, posA, posB, cfg.K, cfg.Scoring, cfg.XDrop)
		al.st.Alignments++
		al.st.Cells += r.Cells
		cells += r.Cells
		a := Alignment{
			A: task.Pair.A, B: task.Pair.B, Strand: strand,
			Score: r.Score, Cells: r.Cells,
			AStart: r.SStart, AEnd: r.SEnd,
			ALen: len(seqA), BLen: len(seqB),
			SeedsConsumed: len(task.Seeds),
		}
		if strand == '+' {
			a.BStart, a.BEnd = r.TStart, r.TEnd
		} else {
			// Map the span back to B's forward coordinates.
			a.BStart, a.BEnd = len(seqB)-r.TEnd, len(seqB)-r.TStart
		}
		switch {
		case cfg.KeepAllSeedAlignments:
			if a.Score >= cfg.MinAlignScore {
				al.out = append(al.out, a)
			}
		case strand == '+':
			if !haveFwd || a.Score > bestFwd.Score {
				bestFwd, haveFwd = a, true
			}
		default:
			if !haveRev || a.Score > bestRev.Score {
				bestRev, haveRev = a, true
			}
		}
	}
	if haveFwd && bestFwd.Score >= cfg.MinAlignScore {
		al.out = append(al.out, bestFwd)
	}
	if haveRev && bestRev.Score >= cfg.MinAlignScore {
		al.out = append(al.out, bestRev)
	}
	al.st.LocalVirtual += price(al.c, al.model, float64(cells), machine.RateCell, 0) +
		price(al.c, al.model, float64(seedOps), machine.RateSeedPrep, 0)
}

// alignStage fetches non-local reads and computes every seed's x-drop
// alignment locally. All ranks must call it collectively (the read
// request/reply exchanges are all-to-alls). With Config.ExchangeAsync the
// exchanges are posted non-blocking and overlapped: tasks whose reads are
// both local align during the request exchange's flight, and reverse
// complements of local B reads are precomputed during the reply
// exchange's. With Config.ExchangeStreamed the reply exchange is
// additionally chunked (spmd.IAlltoallvStreamed) and remote tasks run
// under a readiness-driven scheduler: each task aligns the moment its last
// missing sequence is installed, so alignment compute overlaps the chunks
// still in flight instead of starting after the full install. The emitted
// alignments are identical under every schedule (records are sorted into
// a total order before output).
func alignStage(c *spmd.Comm, model *machine.Model, view readView,
	tasks []overlap.Task, cfg Config) ([]Alignment, AlignStats) {

	st := AlignStats{Tasks: int64(len(tasks))}
	p := c.Size()
	async := cfg.Exchange != ExchangeSync
	streamed := cfg.Exchange == ExchangeStreamed
	// Exchange/overlap accounting snapshots Comm stats once around the
	// stage: everything else here only ticks local time, so the stats
	// delta is exactly the two exchanges (posting costs included).
	preComm := c.Stats()
	al := &aligner{
		c: c, model: model, view: view, cfg: cfg, st: &st,
		rc:     make(map[uint32][]byte),
		rcNeed: make(map[uint32]int),
		out:    make([]Alignment, 0, len(tasks)),
	}
	for _, task := range tasks {
		if needsRC(task) {
			al.rcNeed[task.Pair.B]++
		}
	}

	// Identify the remote reads this rank needs, deduplicated, per owner.
	t0 := walltime.Now()
	needed := make(map[uint32]bool)
	for _, task := range tasks {
		if !view.Owns(task.Pair.A) {
			needed[task.Pair.A] = true
		}
		if !view.Owns(task.Pair.B) {
			needed[task.Pair.B] = true
		}
	}
	reqs := make([][]uint32, p)
	for id := range needed {
		o := view.OwnerOf(id)
		reqs[o] = append(reqs[o], id)
	}
	for _, r := range reqs {
		sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
	}
	st.BytesPacked += int64(len(needed)) * 4 // request payload: one uint32 ID per wanted read
	st.LocalVirtual += price(c, model, float64(len(needed)), machine.RatePairGen, 0)
	st.LocalWall += walltime.Since(t0)

	// Request exchange: ship wanted IDs to their owners. Under the
	// overlapped schedule, align the all-local tasks while it flies.
	var incoming [][]uint32
	var remote []overlap.Task
	if async {
		reqH := spmd.IAlltoallv(c, reqs)
		t0 = walltime.Now()
		for _, task := range tasks {
			if view.Owns(task.Pair.A) && view.Owns(task.Pair.B) {
				al.alignTask(task)
			} else {
				remote = append(remote, task)
			}
		}
		st.LocalWall += walltime.Since(t0)
		incoming = reqH.Wait()
	} else {
		remote = tasks
		incoming = spmd.Alltoallv(c, reqs)
	}

	// Reply packing: each owner packs the requested sequences, in request
	// order, so no IDs need to travel back.
	t0 = walltime.Now()
	replies := make([]spmd.PackedBufs, p)
	var packedBytes int64
	for src, ids := range incoming {
		for _, id := range ids {
			seq := view.OwnedSeq(id)
			replies[src].AppendItem(seq)
			packedBytes += int64(len(seq))
		}
	}
	st.BytesPacked += packedBytes // reply payload: the requested sequences
	st.PackVirtual += price(c, model, float64(packedBytes), machine.RatePack, 0)
	st.PackWall += walltime.Since(t0)

	// Reply exchange. The streamed schedule installs replicas and aligns
	// newly-ready tasks as chunks land; the other schedules exchange the
	// whole payload, then install, then align.
	if streamed {
		al.streamReplies(reqs, replies, remote, cfg)
		addComm(&st.Breakdown, preComm, c.Stats())
		return al.out, st
	}
	// Under the overlapped schedule, precompute the reverse complements
	// the remaining tasks will need from reads already resident while the
	// sequences fly.
	var got []spmd.PackedBufs
	if async {
		repH := spmd.IAlltoallvPacked(c, replies)
		t0 = walltime.Now()
		for _, task := range remote {
			if view.Owns(task.Pair.B) && needsRC(task) {
				al.revComp(task.Pair.B, view.Seq(task.Pair.B))
			}
		}
		st.LocalWall += walltime.Since(t0)
		got = repH.Wait()
	} else {
		got = spmd.AlltoallvPacked(c, replies)
	}
	addComm(&st.Breakdown, preComm, c.Stats())

	// Replica installation.
	t0 = walltime.Now()
	for src := 0; src < p; src++ {
		items := got[src].Items()
		for i, id := range reqs[src] {
			view.AddReplica(id, items[i])
			st.ReadsFetched++
			st.FetchedBytes += int64(len(items[i]))
		}
	}
	st.LocalVirtual += price(c, model, float64(st.FetchedBytes), machine.RatePack, 0)
	st.LocalWall += walltime.Since(t0)

	// Embarrassingly parallel per-rank alignment of what remains.
	t0 = walltime.Now()
	for _, task := range remote {
		al.alignTask(task)
	}
	st.LocalWall += walltime.Since(t0)
	return al.out, st
}

// streamReplies is the readiness-driven reply schedule: the packed reply
// exchange is streamed in bounded chunks, and remote tasks — indexed by
// the replica IDs they are waiting on — align the moment their last
// missing sequence is installed. The alignment compute runs between chunk
// waits, so it hides the modeled (and wall) cost of the rounds still in
// flight; the blocking tail shrinks to whatever compute the final chunk
// leaves behind.
func (al *aligner) streamReplies(reqs [][]uint32, replies []spmd.PackedBufs,
	remote []overlap.Task, cfg Config) {

	st := al.st
	// Index remote tasks by the reads they are missing. A task appears
	// once per missing read and carries a countdown; hitting zero means
	// its last sequence just landed.
	waitCount := make([]int, len(remote))
	waiting := make(map[uint32][]int)
	for ti, task := range remote {
		for _, id := range [2]uint32{task.Pair.A, task.Pair.B} {
			if !al.view.Owns(id) {
				waiting[id] = append(waiting[id], ti)
				waitCount[ti]++
			}
		}
	}
	deliver := func(d spmd.StreamDelivery) {
		t0 := walltime.Now()
		var installed int64
		for i, item := range d.Items {
			id := reqs[d.Src][d.First+i]
			al.view.AddReplica(id, item)
			st.ReadsFetched++
			st.FetchedBytes += int64(len(item))
			installed += int64(len(item))
			for _, ti := range waiting[id] {
				waitCount[ti]--
				if waitCount[ti] == 0 {
					al.alignTask(remote[ti])
				}
			}
			delete(waiting, id)
		}
		st.LocalVirtual += price(al.c, al.model, float64(installed), machine.RatePack, 0)
		st.LocalWall += walltime.Since(t0)
	}
	spmd.IAlltoallvStreamed(al.c, replies,
		spmd.StreamOpts{ChunkBytes: cfg.ReplyChunk, Depth: cfg.ReplyDepth}, deliver)
	// Every remote task must have aligned during the stream; a leftover
	// means the request bookkeeping diverged from the reply layout.
	for ti, n := range waitCount {
		if n != 0 {
			panic(fmt.Sprintf("pipeline: streamed reply left task %d waiting on %d read(s)", ti, n))
		}
	}
}
