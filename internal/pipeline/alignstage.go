package pipeline

import (
	"sort"
	"time"

	"dibella/internal/align"
	"dibella/internal/dna"
	"dibella/internal/fastq"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/spmd"
	"dibella/internal/stats"
)

// AlignStats is the alignment stage's per-rank accounting (§9).
type AlignStats struct {
	Tasks        int64 // consolidated read pairs assigned to this rank
	Alignments   int64 // x-drop extensions executed (one per explored seed)
	Cells        int64 // DP cells computed across all alignments
	ReadsFetched int64 // remote reads replicated to this rank
	FetchedBytes int64 // bytes of replicated sequence
	stats.Breakdown
}

// Alignment is one computed pairwise alignment, in the coordinates of each
// read's forward strand (strand '-' means read B aligned
// reverse-complemented).
type Alignment struct {
	A, B          uint32
	Strand        byte
	Score         int
	AStart, AEnd  int
	BStart, BEnd  int
	ALen, BLen    int
	Cells         int64
	SeedsConsumed int // seeds the pair carried (after filtering)
}

// alignStage fetches non-local reads and computes every seed's x-drop
// alignment locally. All ranks must call it collectively (the read
// request/reply exchanges are all-to-alls).
func alignStage(c *spmd.Comm, model *machine.Model, view *fastq.LocalView,
	tasks []overlap.Task, cfg Config) ([]Alignment, AlignStats) {

	st := AlignStats{Tasks: int64(len(tasks))}
	p := c.Size()

	// Identify the remote reads this rank needs, deduplicated, per owner.
	t0 := time.Now()
	needed := make(map[uint32]bool)
	for _, task := range tasks {
		if !view.Owns(task.Pair.A) {
			needed[task.Pair.A] = true
		}
		if !view.Owns(task.Pair.B) {
			needed[task.Pair.B] = true
		}
	}
	reqs := make([][]uint32, p)
	for id := range needed {
		o := view.OwnerOf(id)
		reqs[o] = append(reqs[o], id)
	}
	for _, r := range reqs {
		sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
	}
	st.LocalVirtual += price(c, model, float64(len(needed)), machine.RatePairGen, 0)
	st.LocalWall += time.Since(t0)

	// Request exchange: ship wanted IDs to their owners.
	t0 = time.Now()
	pre := c.Stats()
	incoming := spmd.Alltoallv(c, reqs)
	post := c.Stats()
	st.ExchangeVirtual += post.ExchangeVirtual - pre.ExchangeVirtual
	st.ExchangeWall += time.Since(t0)

	// Reply packing: each owner packs the requested sequences, in request
	// order, so no IDs need to travel back.
	t0 = time.Now()
	replies := make([]spmd.PackedBufs, p)
	var packedBytes int64
	for src, ids := range incoming {
		for _, id := range ids {
			seq := view.OwnedSeq(id)
			replies[src].AppendItem(seq)
			packedBytes += int64(len(seq))
		}
	}
	st.PackVirtual += price(c, model, float64(packedBytes), machine.RatePack, 0)
	st.PackWall += time.Since(t0)

	// Reply exchange and replica installation.
	t0 = time.Now()
	pre = c.Stats()
	got := spmd.AlltoallvPacked(c, replies)
	post = c.Stats()
	st.ExchangeVirtual += post.ExchangeVirtual - pre.ExchangeVirtual
	st.ExchangeWall += time.Since(t0)

	t0 = time.Now()
	for src := 0; src < p; src++ {
		items := got[src].Items()
		for i, id := range reqs[src] {
			view.AddReplica(id, items[i])
			st.ReadsFetched++
			st.FetchedBytes += int64(len(items[i]))
		}
	}
	st.LocalVirtual += price(c, model, float64(st.FetchedBytes), machine.RatePack, 0)
	st.LocalWall += time.Since(t0)

	// Embarrassingly parallel per-rank alignment.
	t0 = time.Now()
	out := make([]Alignment, 0, len(tasks))
	var seedOps int64
	for _, task := range tasks {
		seqA := view.Seq(task.Pair.A)
		seqB := view.Seq(task.Pair.B)
		if seqA == nil || seqB == nil {
			// Unreachable by construction; guard so a logic error surfaces
			// as missing output rather than a crash.
			continue
		}
		var rcB []byte // lazily computed reverse complement of B
		for _, seed := range task.Seeds {
			seedOps++
			posA := int(seed.PosA)
			posB := int(seed.PosB)
			strand := byte('+')
			tgt := seqB
			if !seed.SameStrand() {
				if rcB == nil {
					rcB = dna.ReverseComplement(seqB)
					st.LocalVirtual += price(c, model, float64(len(seqB)), machine.RatePack, 0)
				}
				tgt = rcB
				posB = len(seqB) - cfg.K - posB
				strand = '-'
			}
			if posA < 0 || posB < 0 || posA+cfg.K > len(seqA) || posB+cfg.K > len(tgt) {
				continue // corrupted seed; skip defensively
			}
			r := align.XDrop(seqA, tgt, posA, posB, cfg.K, cfg.Scoring, cfg.XDrop)
			st.Alignments++
			st.Cells += r.Cells
			a := Alignment{
				A: task.Pair.A, B: task.Pair.B, Strand: strand,
				Score: r.Score, Cells: r.Cells,
				AStart: r.SStart, AEnd: r.SEnd,
				ALen: len(seqA), BLen: len(seqB),
				SeedsConsumed: len(task.Seeds),
			}
			if strand == '+' {
				a.BStart, a.BEnd = r.TStart, r.TEnd
			} else {
				// Map the span back to B's forward coordinates.
				a.BStart, a.BEnd = len(seqB)-r.TEnd, len(seqB)-r.TStart
			}
			if r.Score >= cfg.MinAlignScore {
				out = append(out, a)
			}
		}
	}
	st.LocalVirtual += price(c, model, float64(st.Cells), machine.RateCell, 0) +
		price(c, model, float64(seedOps), machine.RateSeedPrep, 0)
	st.LocalWall += time.Since(t0)
	return out, st
}
