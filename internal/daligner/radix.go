package daligner

// radixSort orders tuples by k-mer with an LSD radix sort over the packed
// 64-bit key, one byte per pass — DALIGNER's "k-mer sorting based on the
// position within a sequence ... then a merge-sort to detect common
// k-mers" is sort-centric, and radix is the fast path for fixed-width
// keys. Ties (equal k-mers) retain input order (the sort is stable), which
// keeps run scans deterministic.
func radixSort(ts []tuple) {
	if len(ts) < 2 {
		return
	}
	buf := make([]tuple, len(ts))
	src, dst := ts, buf
	for shift := uint(0); shift < 64; shift += 8 {
		var counts [257]int
		for i := range src {
			b := int(uint64(src[i].km)>>shift) & 0xFF
			counts[b+1]++
		}
		// Skip passes where every key shares the byte (common for high
		// bytes of small k).
		allSame := false
		for b := 0; b < 256; b++ {
			if counts[b+1] == len(src) {
				allSame = true
				break
			}
		}
		if allSame {
			continue
		}
		for b := 1; b < 257; b++ {
			counts[b] += counts[b-1]
		}
		for i := range src {
			b := byte(uint64(src[i].km) >> shift)
			dst[counts[b]] = src[i]
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &ts[0] {
		copy(ts, src)
	}
}
