// Package daligner implements a single-node, sort-based long-read
// overlapper in the style of DALIGNER (Myers 2014), the comparator of the
// paper's Table 2.
//
// Where diBELLA hashes k-mers into a distributed table, DALIGNER sorts
// (k-mer, read, position) tuples and merge-scans runs of equal k-mers to
// find read pairs with common seeds. This reproduction follows that
// structure — tuple extraction, an LSD radix sort on the packed k-mer, a
// run scan with the same [2, m] frequency filter, seed consolidation — and
// then reuses the identical x-drop kernel, so the Table 2 comparison
// isolates the candidate-discovery strategy exactly as the paper intends.
//
// The paper notes DALIGNER reaches beyond-single-node scale only through
// script-generated block decomposition with heavy re-reading of blocks;
// Blocks > 1 emulates that mode: the tuple set is split into B blocks and
// every block pair is scanned independently, trading memory for repeated
// passes.
package daligner

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dibella/internal/align"
	"dibella/internal/dht"
	"dibella/internal/dna"
	"dibella/internal/fastq"
	"dibella/internal/kmer"
	"dibella/internal/overlap"
)

// Config controls a baseline run.
type Config struct {
	K        int
	MaxFreq  int // frequency filter upper bound (as diBELLA's m)
	SeedMode overlap.SeedMode
	MinDist  int
	MaxSeeds int
	XDrop    int
	Scoring  align.Scoring
	Threads  int // alignment workers (default: GOMAXPROCS)
	Blocks   int // >1 emulates DALIGNER's block decomposition
	// MinAlignScore filters output records.
	MinAlignScore int
}

func (cfg *Config) setDefaults() error {
	if !kmer.ValidK(cfg.K) {
		return fmt.Errorf("daligner: invalid k %d", cfg.K)
	}
	if cfg.MaxFreq < 2 {
		return fmt.Errorf("daligner: max frequency %d must be >= 2", cfg.MaxFreq)
	}
	if cfg.XDrop == 0 {
		cfg.XDrop = 7
	}
	if cfg.Scoring == (align.Scoring{}) {
		cfg.Scoring = align.DefaultScoring
	}
	if cfg.Threads <= 0 {
		cfg.Threads = runtime.GOMAXPROCS(0)
	}
	if cfg.Blocks <= 0 {
		cfg.Blocks = 1
	}
	if cfg.MinDist == 0 {
		cfg.MinDist = 1000
	}
	return nil
}

// Overlap is one computed alignment record.
type Overlap struct {
	A, B         uint32
	Strand       byte
	Score        int
	AStart, AEnd int
	BStart, BEnd int
	Cells        int64
}

// Result reports the run with DALIGNER's phase structure.
type Result struct {
	Tuples     int64
	Pairs      int64
	Alignments int64
	Cells      int64
	Records    []Overlap

	ExtractTime time.Duration
	SortTime    time.Duration
	ScanTime    time.Duration
	AlignTime   time.Duration
}

// Total returns the end-to-end runtime (excluding I/O, as Table 2 does).
func (r *Result) Total() time.Duration {
	return r.ExtractTime + r.SortTime + r.ScanTime + r.AlignTime
}

type tuple struct {
	km  kmer.Kmer
	occ dht.Occ
}

// Run executes the baseline on a read set.
func Run(reads []*fastq.Record, cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	res := &Result{}

	// Phase 1: tuple extraction (canonical k-mers, as diBELLA).
	t0 := time.Now()
	var tuples []tuple
	for id, rec := range reads {
		sc := kmer.NewScanner(rec.Seq, cfg.K, uint32(id))
		for {
			ex, ok := sc.Next()
			if !ok {
				break
			}
			tuples = append(tuples, tuple{
				km:  ex.Kmer,
				occ: dht.MakeOcc(ex.Occ.ReadID, ex.Occ.Pos, ex.Occ.Forward),
			})
		}
	}
	res.Tuples = int64(len(tuples))
	res.ExtractTime = time.Since(t0)

	// Phase 2+3: sort and merge-scan, per block pair when emulating the
	// block mode.
	byPair := make(map[overlap.Pair][]overlap.Seed)
	if cfg.Blocks == 1 {
		t0 = time.Now()
		radixSort(tuples)
		res.SortTime = time.Since(t0)
		t0 = time.Now()
		scanRuns(tuples, cfg, byPair)
		res.ScanTime = time.Since(t0)
	} else {
		blocks := splitBlocks(tuples, cfg.Blocks)
		for i := range blocks {
			// Each block is re-sorted for every pairing, mirroring the
			// re-reading cost of DALIGNER's scripted distribution.
			for j := i; j < len(blocks); j++ {
				t0 = time.Now()
				merged := make([]tuple, 0, len(blocks[i])+len(blocks[j]))
				merged = append(merged, blocks[i]...)
				if j != i {
					merged = append(merged, blocks[j]...)
				}
				radixSort(merged)
				res.SortTime += time.Since(t0)
				t0 = time.Now()
				scanRuns(merged, cfg, byPair)
				res.ScanTime += time.Since(t0)
			}
		}
	}
	res.Pairs = int64(len(byPair))

	// Phase 4: seed filtering + parallel alignment with the same kernel.
	t0 = time.Now()
	res.Records, res.Alignments, res.Cells = alignAll(reads, byPair, cfg)
	res.AlignTime = time.Since(t0)
	return res, nil
}

// splitBlocks partitions tuples round-robin by read ID to mimic
// DALIGNER's database blocks.
func splitBlocks(tuples []tuple, b int) [][]tuple {
	out := make([][]tuple, b)
	for _, t := range tuples {
		i := int(t.occ.Read) % b
		out[i] = append(out[i], t)
	}
	return out
}

// scanRuns walks sorted tuples, emitting all pairs within each k-mer run
// that passes the [2, MaxFreq] filter. Duplicate seeds from block-pair
// rescans are deduplicated by the pair map's seed identity.
func scanRuns(sorted []tuple, cfg Config, byPair map[overlap.Pair][]overlap.Seed) {
	i := 0
	for i < len(sorted) {
		j := i + 1
		for j < len(sorted) && sorted[j].km == sorted[i].km {
			j++
		}
		run := sorted[i:j]
		if len(run) >= 2 && len(run) <= cfg.MaxFreq {
			for a := 0; a < len(run); a++ {
				for b := a + 1; b < len(run); b++ {
					oa, ob := run[a].occ, run[b].occ
					if oa.Read == ob.Read {
						continue
					}
					if oa.Read > ob.Read {
						oa, ob = ob, oa
					}
					pair := overlap.Pair{A: oa.Read, B: ob.Read}
					seed := overlap.Seed{
						PosA: oa.Pos(), PosB: ob.Pos(),
						FwdA: oa.Forward(), FwdB: ob.Forward(),
					}
					if !containsSeed(byPair[pair], seed) {
						byPair[pair] = append(byPair[pair], seed)
					}
				}
			}
		}
		i = j
	}
}

// containsSeed reports seed-identity duplicates (possible only in block
// mode, where a run may be rescanned).
func containsSeed(seeds []overlap.Seed, s overlap.Seed) bool {
	for _, x := range seeds {
		if x == s {
			return true
		}
	}
	return false
}

// alignAll filters seeds and computes every alignment with a worker pool.
func alignAll(reads []*fastq.Record, byPair map[overlap.Pair][]overlap.Seed, cfg Config) ([]Overlap, int64, int64) {
	type task struct {
		pair  overlap.Pair
		seeds []overlap.Seed
	}
	tasks := make([]task, 0, len(byPair))
	ocfg := overlap.Config{K: cfg.K, Mode: cfg.SeedMode, MinDist: cfg.MinDist, MaxSeeds: cfg.MaxSeeds}
	for pair, seeds := range byPair {
		tasks = append(tasks, task{pair: pair, seeds: overlap.FilterSeeds(seeds, ocfg)})
	}
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].pair.A != tasks[j].pair.A {
			return tasks[i].pair.A < tasks[j].pair.A
		}
		return tasks[i].pair.B < tasks[j].pair.B
	})

	results := make([][]Overlap, len(tasks))
	cells := make([]int64, cfg.Threads)
	aligns := make([]int64, cfg.Threads)
	var wg sync.WaitGroup
	next := make(chan int, len(tasks))
	for i := range tasks {
		next <- i
	}
	close(next)
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range next {
				tk := tasks[idx]
				seqA := reads[tk.pair.A].Seq
				seqB := reads[tk.pair.B].Seq
				var rcB []byte
				for _, seed := range tk.seeds {
					posA, posB := int(seed.PosA), int(seed.PosB)
					strand := byte('+')
					tgt := seqB
					if !seed.SameStrand() {
						if rcB == nil {
							rcB = dna.ReverseComplement(seqB)
						}
						tgt = rcB
						posB = len(seqB) - cfg.K - posB
						strand = '-'
					}
					if posA < 0 || posB < 0 || posA+cfg.K > len(seqA) || posB+cfg.K > len(tgt) {
						continue
					}
					r := align.XDrop(seqA, tgt, posA, posB, cfg.K, cfg.Scoring, cfg.XDrop)
					aligns[worker]++
					cells[worker] += r.Cells
					if r.Score < cfg.MinAlignScore {
						continue
					}
					o := Overlap{
						A: tk.pair.A, B: tk.pair.B, Strand: strand,
						Score: r.Score, Cells: r.Cells,
						AStart: r.SStart, AEnd: r.SEnd,
					}
					if strand == '+' {
						o.BStart, o.BEnd = r.TStart, r.TEnd
					} else {
						o.BStart, o.BEnd = len(seqB)-r.TEnd, len(seqB)-r.TStart
					}
					results[idx] = append(results[idx], o)
				}
			}
		}(w)
	}
	wg.Wait()

	var out []Overlap
	var totalAligns, totalCells int64
	for _, rs := range results {
		out = append(out, rs...)
	}
	for w := 0; w < cfg.Threads; w++ {
		totalAligns += aligns[w]
		totalCells += cells[w]
	}
	return out, totalAligns, totalCells
}
