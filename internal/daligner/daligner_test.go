package daligner

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dibella/internal/dht"
	"dibella/internal/kmer"
	"dibella/internal/overlap"
	"dibella/internal/pipeline"
	"dibella/internal/seqgen"
)

func TestRadixSortMatchesStdSort(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw) % 2000
		rng := rand.New(rand.NewSource(seed))
		ts := make([]tuple, n)
		for i := range ts {
			ts[i] = tuple{km: kmer.Kmer(rng.Uint64()), occ: dht.MakeOcc(uint32(i), 0, true)}
		}
		want := append([]tuple(nil), ts...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].km < want[j].km })
		radixSort(ts)
		for i := range ts {
			if ts[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRadixSortStability(t *testing.T) {
	// Equal keys must keep input order (occ.Read ascending here).
	ts := []tuple{
		{km: 5, occ: dht.MakeOcc(0, 0, true)},
		{km: 3, occ: dht.MakeOcc(1, 0, true)},
		{km: 5, occ: dht.MakeOcc(2, 0, true)},
		{km: 3, occ: dht.MakeOcc(3, 0, true)},
	}
	radixSort(ts)
	if ts[0].occ.Read != 1 || ts[1].occ.Read != 3 || ts[2].occ.Read != 0 || ts[3].occ.Read != 2 {
		t.Errorf("unstable sort: %+v", ts)
	}
}

func TestRadixSortSmall(t *testing.T) {
	radixSort(nil)
	one := []tuple{{km: 42}}
	radixSort(one)
	if one[0].km != 42 {
		t.Error("single-element sort broke")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(nil, Config{K: 0, MaxFreq: 8}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(nil, Config{K: 17, MaxFreq: 1}); err == nil {
		t.Error("m=1 accepted")
	}
}

func smallDataset(t *testing.T, seed int64) *seqgen.Dataset {
	t.Helper()
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 20000, Seed: seed, Coverage: 12, MeanReadLen: 1500,
		MinReadLen: 400, ErrorRate: 0.10, BothStrands: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBaselineMatchesPipelinePairs(t *testing.T) {
	// The sort-based baseline and the hash-based pipeline must discover
	// the identical set of candidate read pairs (same k, same m filter).
	ds := smallDataset(t, 21)
	const k, m = 17, 10

	base, err := Run(ds.Reads, Config{K: k, MaxFreq: m, SeedMode: overlap.OneSeed})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pipeline.Execute(3, nil, ds.Reads, pipeline.Config{
		K: k, MaxFreq: m, SeedMode: overlap.OneSeed, KeepAlignments: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Pairs != rep.Pairs {
		t.Fatalf("pair counts differ: baseline %d, pipeline %d", base.Pairs, rep.Pairs)
	}
	basePairs := make(map[[2]uint32]bool)
	for _, o := range base.Records {
		basePairs[[2]uint32{o.A, o.B}] = true
	}
	pipePairs := make(map[[2]uint32]bool)
	for _, a := range rep.Records {
		pipePairs[[2]uint32{a.A, a.B}] = true
	}
	if len(basePairs) != len(pipePairs) {
		t.Fatalf("aligned pair sets differ in size: %d vs %d", len(basePairs), len(pipePairs))
	}
	for pr := range pipePairs {
		if !basePairs[pr] {
			t.Fatalf("pair %v only found by pipeline", pr)
		}
	}
	// One-seed mode: alignment counts agree too.
	if base.Alignments != rep.Alignments {
		t.Errorf("alignment counts differ: %d vs %d", base.Alignments, rep.Alignments)
	}
}

func TestBlockModeEquivalence(t *testing.T) {
	// Block decomposition must not change the discovered pairs, only the
	// phase costs.
	ds := smallDataset(t, 22)
	const k, m = 17, 10
	whole, err := Run(ds.Reads, Config{K: k, MaxFreq: m, SeedMode: overlap.OneSeed})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := Run(ds.Reads, Config{K: k, MaxFreq: m, SeedMode: overlap.OneSeed, Blocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if whole.Pairs != blocked.Pairs {
		t.Fatalf("block mode changed pairs: %d vs %d", whole.Pairs, blocked.Pairs)
	}
	if whole.Alignments != blocked.Alignments {
		t.Fatalf("block mode changed alignments: %d vs %d", whole.Alignments, blocked.Alignments)
	}
}

func TestBlockModeCostsMore(t *testing.T) {
	// The paper's point about DALIGNER's distribution: block pairs re-sort
	// the same tuples repeatedly, so sort volume grows with block count.
	ds := smallDataset(t, 23)
	const k, m = 17, 10
	whole, err := Run(ds.Reads, Config{K: k, MaxFreq: m})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := Run(ds.Reads, Config{K: k, MaxFreq: m, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 4 blocks -> 10 block-pairs, each sorting ~2/4 of tuples: ~5x volume.
	if blocked.SortTime <= whole.SortTime {
		t.Skipf("timing noise: blocked %v vs whole %v", blocked.SortTime, whole.SortTime)
	}
}

func TestThreadCountInvariance(t *testing.T) {
	ds := smallDataset(t, 24)
	one, err := Run(ds.Reads, Config{K: 17, MaxFreq: 10, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(ds.Reads, Config{K: 17, MaxFreq: 10, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if one.Alignments != many.Alignments || one.Cells != many.Cells {
		t.Errorf("thread count changed results: %d/%d vs %d/%d",
			one.Alignments, one.Cells, many.Alignments, many.Cells)
	}
	if len(one.Records) != len(many.Records) {
		t.Errorf("record counts differ: %d vs %d", len(one.Records), len(many.Records))
	}
	for i := range one.Records {
		if one.Records[i] != many.Records[i] {
			t.Fatal("record order depends on thread count")
		}
	}
}

func TestResultTotal(t *testing.T) {
	ds := smallDataset(t, 25)
	res, err := Run(ds.Reads, Config{K: 17, MaxFreq: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() <= 0 || res.Tuples == 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if res.Total() != res.ExtractTime+res.SortTime+res.ScanTime+res.AlignTime {
		t.Error("Total() inconsistent")
	}
}

func BenchmarkBaseline(b *testing.B) {
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 30000, Seed: 1, Coverage: 10, MeanReadLen: 1500,
		MinReadLen: 400, ErrorRate: 0.12, BothStrands: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ds.Reads, Config{K: 17, MaxFreq: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
