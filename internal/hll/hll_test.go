package hll

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanics(t *testing.T) {
	for _, p := range []uint8{0, 3, 19} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", p)
				}
			}()
			New(p)
		}()
	}
}

func TestEstimateAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{100, 10000, 1000000} {
		s := New(14)
		for i := 0; i < n; i++ {
			s.Add(rng.Uint64())
		}
		est := s.Estimate()
		tol := 4 * s.RelativeError() // 4 sigma
		if math.Abs(est-float64(n))/float64(n) > tol {
			t.Errorf("n=%d: estimate %.0f off by more than %.1f%%", n, est, tol*100)
		}
	}
}

func TestEstimateSmallRange(t *testing.T) {
	// Linear counting regime: very few elements.
	s := New(12)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		s.Add(rng.Uint64())
	}
	est := s.Estimate()
	if est < 5 || est > 20 {
		t.Errorf("small-range estimate %.1f, want ~10", est)
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s := New(12)
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	for rep := 0; rep < 50; rep++ {
		for _, k := range keys {
			s.Add(k)
		}
	}
	est := s.Estimate()
	if math.Abs(est-1000)/1000 > 0.15 {
		t.Errorf("estimate with duplicates %.0f, want ~1000", est)
	}
}

// Property: merging two sketches equals sketching the union stream.
func TestMergeEqualsUnion(t *testing.T) {
	f := func(seed1, seed2 int64) bool {
		rngA := rand.New(rand.NewSource(seed1))
		rngB := rand.New(rand.NewSource(seed2))
		a, b, u := New(10), New(10), New(10)
		for i := 0; i < 500; i++ {
			ka, kb := rngA.Uint64(), rngB.Uint64()
			a.Add(ka)
			u.Add(ka)
			b.Add(kb)
			u.Add(kb)
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		return a.Estimate() == u.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMergePrecisionMismatch(t *testing.T) {
	a, b := New(10), New(12)
	if err := a.Merge(b); err == nil {
		t.Error("expected precision-mismatch error")
	}
}

func TestRegistersRoundTrip(t *testing.T) {
	a := New(8)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		a.Add(rng.Uint64())
	}
	b := New(8)
	if err := b.SetRegisters(a.Registers()); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != b.Estimate() {
		t.Error("register transplant changed estimate")
	}
	if err := b.SetRegisters(make([]uint8, 3)); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestEmptySketch(t *testing.T) {
	s := New(10)
	if est := s.Estimate(); est != 0 {
		t.Errorf("empty sketch estimate = %v, want 0", est)
	}
}

func TestSizeBytes(t *testing.T) {
	if New(10).SizeBytes() != 1024 {
		t.Error("SizeBytes mismatch")
	}
}

// Distributed usage pattern: rank-local sketches merged via register max
// must estimate the global distinct count.
func TestDistributedMergePattern(t *testing.T) {
	const ranks = 8
	const perRank = 20000
	global := New(14)
	parts := make([]*Sketch, ranks)
	rng := rand.New(rand.NewSource(7))
	shared := rng.Uint64() // one key present on every rank
	for r := range parts {
		parts[r] = New(14)
		parts[r].Add(shared)
		global.Add(shared)
		for i := 0; i < perRank; i++ {
			k := rng.Uint64()
			parts[r].Add(k)
			global.Add(k)
		}
	}
	merged := New(14)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Estimate() != global.Estimate() {
		t.Errorf("merged %.0f != global %.0f", merged.Estimate(), global.Estimate())
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(14)
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
}
