// Package hll implements the HyperLogLog cardinality estimator
// (Flajolet et al. 2007).
//
// HipMer uses HyperLogLog to estimate k-mer cardinality before sizing its
// Bloom filter; diBELLA's authors note (§6) that for their data sets the
// closed-form estimate of Eq. 2 sufficed, but that "extremely large ...
// and repetitive genomes" would need the HLL path. We provide it so the
// Bloom stage can be sized either way.
//
// This is the dense representation with 2^p registers, the classic bias
// correction for small ranges via linear counting, and the large-range
// correction for 64-bit hashes omitted (unnecessary: collisions in a 64-bit
// hash space are negligible at genomic scales).
package hll

import (
	"fmt"
	"math"
	"math/bits"
)

// Sketch is a HyperLogLog counter over pre-hashed 64-bit keys.
type Sketch struct {
	p         uint8 // precision: 2^p registers
	registers []uint8
}

// MinPrecision and MaxPrecision bound the register-count exponent.
const (
	MinPrecision = 4
	MaxPrecision = 18
)

// New creates a sketch with 2^p registers. Standard error is about
// 1.04/sqrt(2^p); p=14 (16384 registers, 16 KB) gives ~0.8%.
func New(p uint8) *Sketch {
	if p < MinPrecision || p > MaxPrecision {
		panic(fmt.Sprintf("hll: precision %d out of [%d,%d]", p, MinPrecision, MaxPrecision))
	}
	return &Sketch{p: p, registers: make([]uint8, 1<<p)}
}

// Add observes a pre-hashed key.
func (s *Sketch) Add(hash uint64) {
	idx := hash >> (64 - s.p)
	// Rank of the first 1-bit in the remaining suffix, in [1, 64-p+1].
	suffix := hash<<s.p | 1<<(s.p-1) // sentinel guarantees a 1 bit
	rho := uint8(bits.LeadingZeros64(suffix)) + 1
	if rho > s.registers[idx] {
		s.registers[idx] = rho
	}
}

// Merge folds another sketch of identical precision into s, enabling the
// distributed pattern: each rank sketches its local k-mers, then an
// all-reduce of registers yields the global cardinality.
func (s *Sketch) Merge(other *Sketch) error {
	if s.p != other.p {
		return fmt.Errorf("hll: precision mismatch %d != %d", s.p, other.p)
	}
	for i, r := range other.registers {
		if r > s.registers[i] {
			s.registers[i] = r
		}
	}
	return nil
}

// Registers exposes the register array for collective reduction (max).
func (s *Sketch) Registers() []uint8 { return s.registers }

// SetRegisters replaces the register array, e.g. with an all-reduced copy.
func (s *Sketch) SetRegisters(r []uint8) error {
	if len(r) != len(s.registers) {
		return fmt.Errorf("hll: register count mismatch %d != %d", len(r), len(s.registers))
	}
	copy(s.registers, r)
	return nil
}

// alpha returns the HLL bias-correction constant for m registers.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Estimate returns the cardinality estimate.
func (s *Sketch) Estimate() float64 {
	m := len(s.registers)
	var sum float64
	zeros := 0
	for _, r := range s.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := alpha(m) * float64(m) * float64(m) / sum
	// Small-range correction: linear counting when many registers are
	// empty.
	if est <= 2.5*float64(m) && zeros > 0 {
		return float64(m) * math.Log(float64(m)/float64(zeros))
	}
	return est
}

// RelativeError returns the theoretical standard error for this precision.
func (s *Sketch) RelativeError() float64 {
	return 1.04 / math.Sqrt(float64(len(s.registers)))
}

// SizeBytes returns the memory footprint of the register array.
func (s *Sketch) SizeBytes() int { return len(s.registers) }
