package olgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, g *Graph, a, b uint32, w int) {
	t.Helper()
	if err := g.AddEdge(a, b, w); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(1, 1, 1); err == nil {
		t.Error("self-edge accepted")
	}
}

func TestDuplicateEdgeKeepsHeaviest(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1, 5)
	mustAdd(t, g, 1, 0, 9)
	mustAdd(t, g, 0, 1, 3)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if got := g.Neighbors(0)[0].Weight; got != 9 {
		t.Errorf("weight = %d, want 9", got)
	}
	if got := g.Neighbors(1)[0].Weight; got != 9 {
		t.Errorf("mirror weight = %d, want 9", got)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 1, 2)
	mustAdd(t, g, 0, 2, 7)
	mustAdd(t, g, 0, 3, 7)
	nb := g.Neighbors(0)
	if len(nb) != 3 {
		t.Fatalf("got %d neighbors", len(nb))
	}
	if nb[0].Weight != 7 || nb[1].Weight != 7 || nb[2].Weight != 2 {
		t.Errorf("weights not descending: %+v", nb)
	}
	if other(nb[0], 0) != 2 || other(nb[1], 0) != 3 {
		t.Errorf("tie not broken by ID: %+v", nb)
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 3, 4, 1)
	// 5, 6 isolated
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("got %d components", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Errorf("largest component = %v", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 3 {
		t.Errorf("second component = %v", comps[1])
	}
	if len(comps[2]) != 1 || len(comps[3]) != 1 {
		t.Errorf("isolated reads wrong: %v %v", comps[2], comps[3])
	}
}

func TestDegrees(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 0, 2, 1)
	st := g.Degrees()
	if st.Max != 2 || st.Min != 0 || st.Isolated != 1 || st.Mean != 1.0 {
		t.Errorf("stats = %+v", st)
	}
	empty := New(0).Degrees()
	if empty.Min != 0 || empty.Max != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestTransitiveReductionTriangle(t *testing.T) {
	// Triangle with one light edge: the light edge goes.
	g := New(3)
	mustAdd(t, g, 0, 1, 10)
	mustAdd(t, g, 1, 2, 10)
	mustAdd(t, g, 0, 2, 3)
	removed := g.TransitiveReduction()
	if removed != 1 {
		t.Fatalf("removed %d edges", removed)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("left %d edges", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 1 || g.Degree(1) != 2 {
		t.Error("wrong edge removed")
	}
	// Connectivity preserved.
	if len(g.Components()) != 1 {
		t.Error("reduction disconnected the graph")
	}
}

func TestTransitiveReductionChainUntouched(t *testing.T) {
	g := New(5)
	for i := uint32(0); i < 4; i++ {
		mustAdd(t, g, i, i+1, 10)
	}
	if removed := g.TransitiveReduction(); removed != 0 {
		t.Errorf("chain lost %d edges", removed)
	}
}

// Property: reduction never disconnects a connected graph.
func TestTransitiveReductionPreservesConnectivity(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%20 + 2
		rng := rand.New(rand.NewSource(seed))
		g := New(n)
		// Random spanning path + extra chords.
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			_ = g.AddEdge(uint32(perm[i-1]), uint32(perm[i]), rng.Intn(100)+1)
		}
		for i := 0; i < n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				_ = g.AddEdge(uint32(a), uint32(b), rng.Intn(100)+1)
			}
		}
		before := len(g.Components())
		g.TransitiveReduction()
		return len(g.Components()) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Coverage-line simulation: reads tiling a genome linearly produce a dense
// band graph; reduction should thin it dramatically while keeping it
// connected.
func TestTransitiveReductionThinsBandGraph(t *testing.T) {
	const n = 50
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && j <= i+4; j++ {
			// Overlap weight shrinks with distance, as genomic tiling does.
			mustAdd(t, g, uint32(i), uint32(j), 100-(j-i)*20)
		}
	}
	before := g.NumEdges()
	g.TransitiveReduction()
	after := g.NumEdges()
	if after >= before/2 {
		t.Errorf("reduction kept %d of %d edges", after, before)
	}
	if len(g.Components()) != 1 {
		t.Error("band graph disconnected")
	}
}

func TestLayoutEstimate(t *testing.T) {
	// Three 1000 bp reads in a path with 400-base overlaps: layout ≈
	// 3000 - 800 = 2200.
	g := New(3)
	mustAdd(t, g, 0, 1, 400)
	mustAdd(t, g, 1, 2, 400)
	est := g.LayoutEstimate([]uint32{0, 1, 2}, func(uint32) int { return 1000 })
	if est != 2200 {
		t.Errorf("layout = %d, want 2200", est)
	}
	if g.LayoutEstimate(nil, func(uint32) int { return 0 }) != 0 {
		t.Error("empty component estimate should be 0")
	}
	// Estimate never goes negative even with absurd weights.
	h := New(2)
	mustAdd(t, h, 0, 1, 10000)
	if h.LayoutEstimate([]uint32{0, 1}, func(uint32) int { return 100 }) != 0 {
		t.Error("negative layout not clamped")
	}
}
