// Package olgraph builds and analyzes the read-overlap graph that
// diBELLA's output feeds into downstream assembly (the paper positions the
// hash table itself as "a read graph with read vertices connected ... by
// shared k-mers", §11, and overlap graphs as the error-robust
// representation for long reads).
//
// Provided operations are the standard first steps of an
// overlap-layout-consensus assembler: connected components, degree
// statistics, and transitive edge reduction (Myers 2005): an edge A→C is
// removed when edges A→B and B→C explain it, which reduces a coverage-d
// overlap graph to a near-linear string graph.
package olgraph

import (
	"fmt"
	"sort"
)

// Edge is one confident overlap between two reads, weighted by alignment
// score (a proxy for overlap length under unit match scoring).
type Edge struct {
	A, B   uint32
	Weight int
}

// Graph is an undirected overlap graph over read IDs [0, N).
type Graph struct {
	n   int
	adj map[uint32][]Edge // keyed by endpoint; each edge appears under both
}

// New creates an empty graph over n reads.
func New(n int) *Graph {
	return &Graph{n: n, adj: make(map[uint32][]Edge)}
}

// NumReads returns the vertex count.
func (g *Graph) NumReads() int { return g.n }

// AddEdge inserts an undirected edge, keeping the heaviest weight for
// duplicate pairs.
func (g *Graph) AddEdge(a, b uint32, weight int) error {
	if int(a) >= g.n || int(b) >= g.n {
		return fmt.Errorf("olgraph: edge (%d,%d) out of range [0,%d)", a, b, g.n)
	}
	if a == b {
		return fmt.Errorf("olgraph: self-edge at %d", a)
	}
	for i, e := range g.adj[a] {
		if e.B == b || e.A == b {
			if weight > e.Weight {
				g.adj[a][i].Weight = weight
				for j, f := range g.adj[b] {
					if f.A == a || f.B == a {
						g.adj[b][j].Weight = weight
					}
				}
			}
			return nil
		}
	}
	e := Edge{A: a, B: b, Weight: weight}
	g.adj[a] = append(g.adj[a], e)
	g.adj[b] = append(g.adj[b], e)
	return nil
}

// NumEdges returns the number of distinct edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// Degree returns a read's neighbor count.
func (g *Graph) Degree(read uint32) int { return len(g.adj[read]) }

// Neighbors returns the edges incident to a read, sorted by descending
// weight (deterministic order for ties by neighbor ID).
func (g *Graph) Neighbors(read uint32) []Edge {
	es := append([]Edge(nil), g.adj[read]...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].Weight != es[j].Weight {
			return es[i].Weight > es[j].Weight
		}
		return other(es[i], read) < other(es[j], read)
	})
	return es
}

func other(e Edge, v uint32) uint32 {
	if e.A == v {
		return e.B
	}
	return e.A
}

// Components returns the connected components as sorted ID slices, largest
// first (ties by smallest member).
func (g *Graph) Components() [][]uint32 {
	visited := make([]bool, g.n)
	var comps [][]uint32
	for start := 0; start < g.n; start++ {
		if visited[start] {
			continue
		}
		var comp []uint32
		stack := []uint32{uint32(start)}
		visited[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, e := range g.adj[v] {
				w := other(e, v)
				if !visited[w] {
					visited[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// DegreeStats summarizes the degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	Isolated int // degree-0 reads (no confident overlap)
}

// Degrees computes the degree distribution summary.
func (g *Graph) Degrees() DegreeStats {
	st := DegreeStats{Min: int(^uint(0) >> 1)}
	total := 0
	for v := 0; v < g.n; v++ {
		d := len(g.adj[uint32(v)])
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		if d == 0 {
			st.Isolated++
		}
	}
	if g.n > 0 {
		st.Mean = float64(total) / float64(g.n)
	} else {
		st.Min = 0
	}
	return st
}

// TransitiveReduction removes every edge (a,c) for which some b is adjacent
// to both a and c with both edges at least as heavy — Myers' string-graph
// reduction adapted to the undirected score-weighted case. It returns the
// number of removed edges. The result preserves connectivity: only
// triangle-closing edges are dropped.
func (g *Graph) TransitiveReduction() int {
	type key struct{ a, b uint32 }
	drop := make(map[key]bool)
	mark := func(a, b uint32) {
		if a > b {
			a, b = b, a
		}
		drop[key{a, b}] = true
	}
	weight := func(a, b uint32) (int, bool) {
		for _, e := range g.adj[a] {
			if other(e, a) == b {
				return e.Weight, true
			}
		}
		return 0, false
	}
	alive := func(a, b uint32) bool {
		if a > b {
			a, b = b, a
		}
		return !drop[key{a, b}]
	}
	for v := uint32(0); int(v) < g.n; v++ {
		nb := g.adj[v]
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				x, y := other(nb[i], v), other(nb[j], v)
				// A triangle fires only while all three edges are still
				// alive: every drop then has a live two-edge replacement
				// path at the moment it is made, which preserves
				// connectivity inductively. (Batch-marking instead would
				// let overlapping triangles each remove a different edge
				// of a shared triangle and disconnect the graph.)
				if !alive(v, x) || !alive(v, y) || !alive(x, y) {
					continue
				}
				if w, ok := weight(x, y); ok {
					// Triangle v-x-y: drop its lightest edge.
					wx, wy := nb[i].Weight, nb[j].Weight
					switch {
					case w <= wx && w <= wy:
						mark(x, y)
					case wx <= wy:
						mark(v, x)
					default:
						mark(v, y)
					}
				}
			}
		}
	}
	removed := 0
	for v := uint32(0); int(v) < g.n; v++ {
		kept := g.adj[v][:0]
		for _, e := range g.adj[v] {
			a, b := e.A, e.B
			if a > b {
				a, b = b, a
			}
			if drop[key{a, b}] {
				continue
			}
			kept = append(kept, e)
		}
		g.adj[v] = kept
	}
	removed = len(drop)
	return removed
}

// LayoutEstimate produces a crude contig-length estimate for one
// component: a maximum-weight spanning walk's base count, approximated as
// total read bases minus the spanning tree's overlap weight (score ≈
// overlapped bases under +1/-1/-1 scoring).
func (g *Graph) LayoutEstimate(component []uint32, readLen func(uint32) int) int {
	if len(component) == 0 {
		return 0
	}
	total := 0
	inComp := make(map[uint32]bool, len(component))
	for _, v := range component {
		total += readLen(v)
		inComp[v] = true
	}
	// Maximum-weight spanning tree via Prim's algorithm (dense enough for
	// component sizes here). The tree set is scanned as a slice in
	// insertion order, with weight ties broken toward the smaller vertex
	// id, so the grown tree never depends on map iteration order.
	visited := map[uint32]bool{component[0]: true}
	order := []uint32{component[0]}
	treeWeight := 0
	for len(order) < len(component) {
		bestW := -1
		var bestV uint32
		for _, v := range order {
			for _, e := range g.adj[v] {
				w := other(e, v)
				if inComp[w] && !visited[w] &&
					(e.Weight > bestW || e.Weight == bestW && w < bestV) {
					bestW = e.Weight
					bestV = w
				}
			}
		}
		if bestW < 0 {
			break // disconnected within the supplied set
		}
		visited[bestV] = true
		order = append(order, bestV)
		treeWeight += bestW
	}
	est := total - treeWeight
	if est < 0 {
		est = 0
	}
	return est
}
