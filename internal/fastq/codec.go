package fastq

import (
	"encoding/binary"
	"fmt"
)

// Shard-segment codec: the checkpoint representation of one rank's owned
// block of the distributed read store. A segment is a contiguous run of
// global read IDs starting at idStart, each record carrying its name and
// sequence. Qualities are deliberately dropped — no pipeline stage
// downstream of loading reads them (the cooperative loader already drops
// them for reshuffled boundary reads), and omitting them keeps segment
// size at sequence bytes.
//
// The format is byte-deterministic for a given record run, so per-rank
// segment digests are stable across runs and transports. All integers are
// big-endian, matching the spmd wire format.

// EncodeShardSegment serializes a contiguous run of reads with global IDs
// idStart, idStart+1, ...
func EncodeShardSegment(idStart uint32, recs []*Record) []byte {
	n := 8
	for _, rec := range recs {
		n += 2 + len(rec.Name) + 4 + len(rec.Seq)
	}
	buf := make([]byte, 0, n)
	buf = binary.BigEndian.AppendUint32(buf, idStart)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(recs)))
	for _, rec := range recs {
		if len(rec.Name) > 0xFFFF {
			// Read names are tokens (first whitespace-delimited header
			// field); 64 KiB is far beyond any real instrument's IDs.
			panic(fmt.Sprintf("fastq: read name %d bytes exceeds segment limit", len(rec.Name)))
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(rec.Name)))
		buf = append(buf, rec.Name...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(rec.Seq)))
		buf = append(buf, rec.Seq...)
	}
	return buf
}

// DecodeShardSegment parses an EncodeShardSegment blob. Truncated or
// trailing bytes are decode errors: a segment either round-trips exactly
// or is rejected.
func DecodeShardSegment(b []byte) (idStart uint32, recs []*Record, err error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("fastq: shard segment header truncated (%d bytes)", len(b))
	}
	idStart = binary.BigEndian.Uint32(b)
	count := binary.BigEndian.Uint32(b[4:])
	b = b[8:]
	recs = make([]*Record, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 2 {
			return 0, nil, fmt.Errorf("fastq: shard segment truncated at record %d name length", i)
		}
		nameLen := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < nameLen+4 {
			return 0, nil, fmt.Errorf("fastq: shard segment truncated at record %d name", i)
		}
		name := string(b[:nameLen])
		b = b[nameLen:]
		seqLen := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if len(b) < seqLen {
			return 0, nil, fmt.Errorf("fastq: shard segment truncated at record %d sequence (%d of %d bytes)",
				i, len(b), seqLen)
		}
		seq := append([]byte(nil), b[:seqLen]...)
		b = b[seqLen:]
		recs = append(recs, &Record{Name: name, Seq: seq})
	}
	if len(b) != 0 {
		return 0, nil, fmt.Errorf("fastq: shard segment has %d trailing bytes", len(b))
	}
	return idStart, recs, nil
}
