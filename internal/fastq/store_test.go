package fastq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func makeStore(n, p int, rng *rand.Rand) *ReadStore {
	recs := make([]*Record, n)
	for i := range recs {
		recs[i] = &Record{Seq: make([]byte, rng.Intn(400)+100)}
	}
	return NewReadStore(recs, p)
}

func TestOwnerMatchesRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, p := range []int{1, 2, 4, 7} {
		s := makeStore(123, p, rng)
		for id := uint32(0); int(id) < s.NumReads(); id++ {
			o := s.Owner(id)
			start, end := s.LocalIDs(o)
			if id < start || id >= end {
				t.Fatalf("p=%d: Owner(%d)=%d but range is [%d,%d)", p, id, o, start, end)
			}
		}
	}
}

// Property: every ID has exactly one owner and owners are monotone in ID.
func TestOwnerMonotone(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := int(pRaw)%16 + 1
		rng := rand.New(rand.NewSource(seed))
		s := makeStore(rng.Intn(100)+1, p, rng)
		prev := 0
		for id := 0; id < s.NumReads(); id++ {
			o := s.Owner(uint32(id))
			if o < prev || o >= p {
				return false
			}
			prev = o
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLocalView(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := makeStore(40, 4, rng)
	v := s.View(1)
	start, end := v.LocalIDRange()
	if start >= end {
		t.Fatalf("empty local range [%d,%d)", start, end)
	}
	if !v.Owns(start) || v.Owns(end) {
		t.Error("ownership boundary wrong")
	}
	if v.Seq(start) == nil {
		t.Error("owned read should be accessible")
	}
	// A remote read is invisible until replicated.
	var remote uint32
	if start > 0 {
		remote = 0
	} else {
		remote = end
	}
	if v.Seq(remote) != nil {
		t.Error("remote read visible without replica")
	}
	v.AddReplica(remote, []byte("ACGT"))
	if string(v.Seq(remote)) != "ACGT" {
		t.Error("replica not returned")
	}
	if v.ReplicaCount() != 1 || v.ReplicaBytes() != 4 {
		t.Errorf("replica accounting: count=%d bytes=%d", v.ReplicaCount(), v.ReplicaBytes())
	}
}

func TestGetPanicsOutOfRange(t *testing.T) {
	s := makeStore(3, 1, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("Get out of range did not panic")
		}
	}()
	s.Get(3)
}
