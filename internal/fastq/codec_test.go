package fastq

import (
	"bytes"
	"testing"
)

func TestShardSegmentRoundtrip(t *testing.T) {
	recs := []*Record{
		{Name: "read/1", Seq: []byte("ACGTACGT")},
		{Name: "read/2", Seq: []byte("GG")},
		{Name: "empty", Seq: nil},
	}
	blob := EncodeShardSegment(42, recs)
	idStart, back, err := DecodeShardSegment(blob)
	if err != nil {
		t.Fatal(err)
	}
	if idStart != 42 || len(back) != len(recs) {
		t.Fatalf("idStart=%d n=%d", idStart, len(back))
	}
	for i := range recs {
		if back[i].Name != recs[i].Name || !bytes.Equal(back[i].Seq, recs[i].Seq) {
			t.Errorf("record %d: %q/%q vs %q/%q", i, back[i].Name, back[i].Seq, recs[i].Name, recs[i].Seq)
		}
	}
	// Determinism: two encodes of the same run are byte-identical.
	if !bytes.Equal(blob, EncodeShardSegment(42, recs)) {
		t.Error("encoding is not deterministic")
	}
}

func TestShardSegmentRejectsCorruption(t *testing.T) {
	blob := EncodeShardSegment(0, []*Record{{Name: "a", Seq: []byte("ACGTACGTACGT")}})
	for _, cut := range []int{1, 7, 9, len(blob) - 1} {
		if _, _, err := DecodeShardSegment(blob[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	if _, _, err := DecodeShardSegment(append(append([]byte(nil), blob...), 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, _, err := DecodeShardSegment(nil); err == nil {
		t.Error("empty blob accepted")
	}
}

func TestShardSegmentEmpty(t *testing.T) {
	idStart, recs, err := DecodeShardSegment(EncodeShardSegment(7, nil))
	if err != nil || idStart != 7 || len(recs) != 0 {
		t.Errorf("idStart=%d recs=%v err=%v", idStart, recs, err)
	}
}
