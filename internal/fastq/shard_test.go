package fastq

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func mustCreate(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// genRecords builds a deterministic synthetic read set.
func genRecords(t *testing.T, n, meanLen int, seed int64) []*Record {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]*Record, n)
	for i := range recs {
		ln := meanLen/2 + rng.Intn(meanLen)
		seq := make([]byte, ln)
		qual := make([]byte, ln)
		for j := range seq {
			seq[j] = "ACGT"[rng.Intn(4)]
			qual[j] = byte('!' + rng.Intn(60))
		}
		recs[i] = &Record{Name: "read" + string(rune('A'+i%26)) + "-" + string(rune('0'+i%10)), Seq: seq, Qual: qual}
	}
	return recs
}

// TestLoadShardConcatenation: the rank-order concatenation of every
// shard must be exactly the whole file's record sequence, and the
// per-shard parsed-byte counters must tile the file.
func TestLoadShardConcatenation(t *testing.T) {
	recs := genRecords(t, 57, 300, 7)
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq")
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	whole, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 9, 64} {
		var got []*Record
		var parsedTotal int64
		for r := 0; r < p; r++ {
			shard, parsed, err := LoadShard(path, r, p)
			if err != nil {
				t.Fatalf("p=%d rank %d: %v", p, r, err)
			}
			if parsed < 0 {
				t.Fatalf("p=%d rank %d: negative parsed bytes %d", p, r, parsed)
			}
			parsedTotal += parsed
			got = append(got, shard...)
		}
		if len(got) != len(whole) {
			t.Fatalf("p=%d: shards reassemble to %d records, want %d", p, len(got), len(whole))
		}
		for i := range got {
			if got[i].Name != whole[i].Name || !bytes.Equal(got[i].Seq, whole[i].Seq) {
				t.Fatalf("p=%d: record %d differs after sharded load", p, i)
			}
		}
		if fi := fileSize(t, path); parsedTotal != fi {
			t.Errorf("p=%d: shards parsed %d bytes, file is %d", p, parsedTotal, fi)
		}
	}
}

// TestShardOffsetsMatchSplitOffsets: every rank's independently computed
// boundary pair must be exactly the slice SplitOffsets would hand it —
// the property that lets P ranks scan O(P) boundaries in aggregate and
// still tile the file.
func TestShardOffsetsMatchSplitOffsets(t *testing.T) {
	recs := genRecords(t, 43, 350, 17)
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq")
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 5, 16, 128} {
		offs, err := SplitOffsets(path, p)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < p; r++ {
			start, end, err := ShardOffsets(path, r, p)
			if err != nil {
				t.Fatalf("p=%d rank %d: %v", p, r, err)
			}
			if start != offs[r] || end != offs[r+1] {
				t.Errorf("p=%d rank %d: ShardOffsets [%d,%d), SplitOffsets [%d,%d)",
					p, r, start, end, offs[r], offs[r+1])
			}
		}
	}
}

// TestLoadShardUltraLongRead drives the cooperative loader over a file
// whose middle read is 1.5x the boundary-scan window, so shard-boundary
// guesses land inside it and the grown-window scan (the PR 2 fix) decides
// the split. The shards must still tile the file exactly.
func TestLoadShardUltraLongRead(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	mk := func(name string, n int) *Record {
		seq := make([]byte, n)
		qual := make([]byte, n)
		for j := range seq {
			seq[j] = "ACGT"[rng.Intn(4)]
			qual[j] = byte('!' + rng.Intn(60))
		}
		qual[0] = '@' // keep the header/quality ambiguity in play
		return &Record{Name: name, Seq: seq, Qual: qual}
	}
	recs := []*Record{
		mk("head", 1500),
		mk("ultra", scanWindow*3/2),
		mk("tail", 1500),
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ultra.fastq")
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 4} {
		var got []*Record
		var parsedTotal int64
		for r := 0; r < p; r++ {
			shard, parsed, err := LoadShard(path, r, p)
			if err != nil {
				t.Fatalf("p=%d rank %d: %v", p, r, err)
			}
			parsedTotal += parsed
			got = append(got, shard...)
		}
		if len(got) != len(recs) {
			t.Fatalf("p=%d: reassembled %d records, want %d", p, len(got), len(recs))
		}
		for i := range got {
			if got[i].Name != recs[i].Name || !bytes.Equal(got[i].Seq, recs[i].Seq) {
				t.Fatalf("p=%d: record %d mismatch", p, i)
			}
		}
		if fi := fileSize(t, path); parsedTotal != fi {
			t.Errorf("p=%d: shards parsed %d bytes, file is %d", p, parsedTotal, fi)
		}
	}
}

// TestLoadShardFallbacks: gzip and FASTA inputs cannot be byte-range
// split; every rank parses the whole file and keeps its record-count
// share, with the full file size as its honest parsed-bytes counter.
func TestLoadShardFallbacks(t *testing.T) {
	recs := genRecords(t, 11, 200, 3)
	dir := t.TempDir()

	gz := filepath.Join(dir, "reads.fastq.gz")
	if err := WriteFile(gz, recs); err != nil {
		t.Fatal(err)
	}
	fasta := filepath.Join(dir, "reads.fasta")
	f := mustCreate(t, fasta)
	if err := WriteFasta(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, path := range []string{gz, fasta} {
		const p = 3
		var got []*Record
		for r := 0; r < p; r++ {
			shard, parsed, err := LoadShard(path, r, p)
			if err != nil {
				t.Fatalf("%s rank %d: %v", path, r, err)
			}
			if parsed != fileSize(t, path) {
				t.Errorf("%s rank %d: parsed %d bytes, want whole file %d", path, r, parsed, fileSize(t, path))
			}
			got = append(got, shard...)
		}
		if len(got) != len(recs) {
			t.Fatalf("%s: reassembled %d records, want %d", path, len(got), len(recs))
		}
		for i := range got {
			if got[i].Name != recs[i].Name || !bytes.Equal(got[i].Seq, recs[i].Seq) {
				t.Fatalf("%s: record %d mismatch", path, i)
			}
		}
	}

	if _, _, err := LoadShard(filepath.Join(dir, "reads.fastq"), 3, 3); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, _, err := LoadShard(filepath.Join(dir, "nonexistent.fastq"), 0, 2); err == nil {
		t.Error("missing file accepted")
	}
}

// TestShardedReadStore checks the sharded layout end to end: global
// metadata answers for every ID, sequences only inside the owned range.
func TestShardedReadStore(t *testing.T) {
	recs := genRecords(t, 29, 250, 13)
	const p = 4
	whole := NewReadStore(recs, p)

	lens := make([]int32, len(recs))
	names := make([]string, len(recs))
	for i, r := range recs {
		lens[i] = int32(r.Len())
		names[i] = r.Name
	}
	ranges := PartitionLens(lens, p)
	for i := range ranges {
		if ranges[i] != whole.Ranges[i] {
			t.Fatalf("PartitionLens diverges from PartitionByBytes at rank %d: %v vs %v",
				i, ranges[i], whole.Ranges[i])
		}
	}

	const rank = 2
	start, end := ranges[rank][0], ranges[rank][1]
	s, err := NewShardedReadStore(rank, ranges, names, lens, recs[start:end], 1234)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Sharded() || s.NumReads() != len(recs) || s.ParsedBytes != 1234 {
		t.Errorf("sharded=%v reads=%d parsed=%d", s.Sharded(), s.NumReads(), s.ParsedBytes)
	}
	for id := 0; id < len(recs); id++ {
		if s.Name(uint32(id)) != recs[id].Name || s.Len(uint32(id)) != recs[id].Len() {
			t.Fatalf("global metadata wrong for id %d", id)
		}
		if s.Owner(uint32(id)) != whole.Owner(uint32(id)) {
			t.Fatalf("owner of %d differs between layouts", id)
		}
	}
	if !bytes.Equal(s.Seq(uint32(start)), recs[start].Seq) {
		t.Error("owned sequence differs")
	}
	if s.Stats() != Summarize(recs) {
		t.Errorf("sharded stats %v, whole %v", s.Stats(), Summarize(recs))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-resident Seq access did not panic")
			}
		}()
		s.Seq(0) // rank 2 never owns ID 0 with 29 reads over 4 ranks
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("foreign view on a sharded store did not panic")
			}
		}()
		s.View(0)
	}()

	// Constructor validation.
	if _, err := NewShardedReadStore(9, ranges, names, lens, nil, 0); err == nil {
		t.Error("bad rank accepted")
	}
	if _, err := NewShardedReadStore(rank, ranges, names[:3], lens, recs[start:end], 0); err == nil {
		t.Error("short names accepted")
	}
	if _, err := NewShardedReadStore(rank, ranges, names, lens, recs[start:end-1], 0); err == nil {
		t.Error("short owned slice accepted")
	}
	bad := append([]*Record(nil), recs[start:end]...)
	bad[0] = &Record{Name: bad[0].Name, Seq: []byte("AC")}
	if _, err := NewShardedReadStore(rank, ranges, names, lens, bad, 0); err == nil {
		t.Error("length-mismatched record accepted")
	}
}
