package fastq

import "fmt"

// ReadStore holds a read set with global identifiers and the block
// distribution map used across the pipeline: read IDs are assigned in file
// order, and rank r owns the contiguous ID range Ranges[r].
//
// A store comes in two layouts:
//
//   - whole: every record is resident (NewReadStore); the in-process
//     backend shares one whole store across its goroutine ranks.
//   - sharded: this process holds only the records its rank owns, plus the
//     global per-read names and lengths gathered during cooperative
//     loading (NewShardedReadStore). Sequence access outside the owned
//     range is an ownership-protocol violation and panics; names and
//     lengths stay globally available, which is all the overlap placement
//     heuristics and PAF output need.
//
// The alignment stage replicates non-local reads on demand; Replica storage
// is kept separate so owned reads are never duplicated.
type ReadStore struct {
	Reads  []*Record // all reads, indexed by global ReadID (whole stores only)
	Ranges [][2]int  // per-rank [start,end) ID ranges

	// ParsedBytes counts the input bytes this process parsed to build its
	// part of the store — the per-rank cooperative-I/O counter surfaced in
	// pipeline reports. A whole store counts its total sequence bytes.
	ParsedBytes int64

	// Sharded-store state.
	sharded bool
	rank    int       // the one rank whose records are resident
	owned   []*Record // records of Ranges[rank], indexed by id - start
	names   []string  // global read names by ID
	lens    []int32   // global read lengths by ID
}

// NewReadStore block-distributes recs over p ranks balanced by sequence
// bytes (the paper's layout) and assigns global IDs in file order.
func NewReadStore(recs []*Record, p int) *ReadStore {
	var bases int64
	for _, r := range recs {
		bases += int64(r.Len())
	}
	return &ReadStore{Reads: recs, Ranges: PartitionByBytes(recs, p), ParsedBytes: bases}
}

// NewShardedReadStore assembles one rank's endpoint of a distributed
// store: the global ID map (ranges, names, lengths — identical on every
// rank) plus the records of the owned range only. parsedBytes is the
// input bytes this process parsed during cooperative loading.
func NewShardedReadStore(rank int, ranges [][2]int, names []string, lens []int32,
	owned []*Record, parsedBytes int64) (*ReadStore, error) {

	if rank < 0 || rank >= len(ranges) {
		return nil, fmt.Errorf("fastq: rank %d outside the %d-range distribution", rank, len(ranges))
	}
	total := ranges[len(ranges)-1][1]
	if len(names) != total || len(lens) != total {
		return nil, fmt.Errorf("fastq: global metadata covers %d names / %d lengths, distribution has %d reads",
			len(names), len(lens), total)
	}
	start, end := ranges[rank][0], ranges[rank][1]
	if len(owned) != end-start {
		return nil, fmt.Errorf("fastq: rank %d owns IDs [%d,%d) but holds %d records", rank, start, end, len(owned))
	}
	for i, rec := range owned {
		if rec.Len() != int(lens[start+i]) {
			return nil, fmt.Errorf("fastq: read %d is %d bases locally but %d in the global map",
				start+i, rec.Len(), lens[start+i])
		}
	}
	return &ReadStore{
		Ranges: ranges, ParsedBytes: parsedBytes,
		sharded: true, rank: rank, owned: owned, names: names, lens: lens,
	}, nil
}

// Sharded reports whether the store holds only its own rank's records.
func (s *ReadStore) Sharded() bool { return s.sharded }

// NumReads returns the number of reads in the (global) set.
func (s *ReadStore) NumReads() int {
	if s.sharded {
		return len(s.lens)
	}
	return len(s.Reads)
}

// Owner returns the rank owning a read ID under the block distribution.
func (s *ReadStore) Owner(id uint32) int {
	// Binary search over the P range boundaries.
	lo, hi := 0, len(s.Ranges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if int(id) >= s.Ranges[mid][1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LocalIDs returns the [start,end) global ID range owned by rank.
func (s *ReadStore) LocalIDs(rank int) (start, end uint32) {
	r := s.Ranges[rank]
	return uint32(r[0]), uint32(r[1])
}

// Get returns the record for a global read ID. On a sharded store only the
// owned range is resident; anything else panics (an ownership-protocol
// violation — remote sequences must travel through the alignment stage's
// replica exchange).
func (s *ReadStore) Get(id uint32) *Record {
	if s.sharded {
		start, end := s.LocalIDs(s.rank)
		if id < start || id >= end {
			panic(fmt.Sprintf("fastq: read %d is not resident on rank %d (owns [%d,%d))", id, s.rank, start, end))
		}
		return s.owned[id-start]
	}
	if int(id) >= len(s.Reads) {
		panic(fmt.Sprintf("fastq: read ID %d out of range (%d reads)", id, len(s.Reads)))
	}
	return s.Reads[id]
}

// Seq returns the sequence for a global read ID.
func (s *ReadStore) Seq(id uint32) []byte { return s.Get(id).Seq }

// Len returns the length of a read. Unlike Seq it is valid for every
// global ID on any store: sharded stores gather the global length vector
// at load time (4 bytes per read, as the paper's MPI startup would).
func (s *ReadStore) Len(id uint32) int {
	if s.sharded {
		return int(s.lens[id])
	}
	return s.Reads[id].Len()
}

// Name returns the name of a read; like Len it is globally valid.
func (s *ReadStore) Name(id uint32) string {
	if s.sharded {
		return s.names[id]
	}
	return s.Reads[id].Name
}

// Stats summarizes the global read set (valid on any store layout).
func (s *ReadStore) Stats() Stats {
	if !s.sharded {
		return Summarize(s.Reads)
	}
	st := Stats{}
	for i, n := range s.lens {
		st.Reads++
		st.TotalBases += int64(n)
		if i == 0 || int(n) < st.MinLen {
			st.MinLen = int(n)
		}
		if int(n) > st.MaxLen {
			st.MaxLen = int(n)
		}
	}
	return st
}

// LocalView is one rank's working set: its owned ID range plus any replicas
// fetched for alignment.
type LocalView struct {
	store    *ReadStore
	rank     int
	start    uint32
	end      uint32
	replicas map[uint32][]byte
}

// View returns rank's local view of the store. On a sharded store only the
// resident rank's view exists.
func (s *ReadStore) View(rank int) *LocalView {
	if s.sharded && rank != s.rank {
		panic(fmt.Sprintf("fastq: rank %d's view requested from rank %d's sharded store", rank, s.rank))
	}
	start, end := s.LocalIDs(rank)
	return &LocalView{store: s, rank: rank, start: start, end: end,
		replicas: make(map[uint32][]byte)}
}

// Owns reports whether the view's rank owns the read.
func (v *LocalView) Owns(id uint32) bool { return id >= v.start && id < v.end }

// Seq returns the sequence for id if it is local or replicated, else nil.
func (v *LocalView) Seq(id uint32) []byte {
	if v.Owns(id) {
		return v.store.Seq(id)
	}
	return v.replicas[id]
}

// AddReplica stores a fetched copy of a remote read.
func (v *LocalView) AddReplica(id uint32, seq []byte) { v.replicas[id] = seq }

// OwnerOf returns the rank owning a read ID.
func (v *LocalView) OwnerOf(id uint32) int { return v.store.Owner(id) }

// OwnedSeq returns the sequence of a read this rank owns; it panics if the
// read is remote (an ownership-protocol violation).
func (v *LocalView) OwnedSeq(id uint32) []byte {
	if !v.Owns(id) {
		panic(fmt.Sprintf("fastq: rank %d does not own read %d", v.rank, id))
	}
	return v.store.Seq(id)
}

// ReplicaCount returns the number of replicated reads held.
func (v *LocalView) ReplicaCount() int { return len(v.replicas) }

// ReplicaBytes returns the memory consumed by replicas, the quantity the
// paper's alignment-stage communication analysis bounds.
func (v *LocalView) ReplicaBytes() int {
	n := 0
	for _, s := range v.replicas {
		n += len(s)
	}
	return n
}

// LocalIDRange returns the owned [start, end) range.
func (v *LocalView) LocalIDRange() (uint32, uint32) { return v.start, v.end }
