package fastq

import "fmt"

// ReadStore holds a read set with global identifiers and the block
// distribution map used across the pipeline: read IDs are assigned in file
// order, and rank r owns the contiguous ID range Ranges[r].
//
// The alignment stage replicates non-local reads on demand; Replica storage
// is kept separate so owned reads are never duplicated.
type ReadStore struct {
	Reads  []*Record // all reads, indexed by global ReadID (on a full store)
	Ranges [][2]int  // per-rank [start,end) ID ranges
}

// NewReadStore block-distributes recs over p ranks balanced by sequence
// bytes (the paper's layout) and assigns global IDs in file order.
func NewReadStore(recs []*Record, p int) *ReadStore {
	return &ReadStore{Reads: recs, Ranges: PartitionByBytes(recs, p)}
}

// NumReads returns the number of reads in the set.
func (s *ReadStore) NumReads() int { return len(s.Reads) }

// Owner returns the rank owning a read ID under the block distribution.
func (s *ReadStore) Owner(id uint32) int {
	// Binary search over the P range boundaries.
	lo, hi := 0, len(s.Ranges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if int(id) >= s.Ranges[mid][1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LocalIDs returns the [start,end) global ID range owned by rank.
func (s *ReadStore) LocalIDs(rank int) (start, end uint32) {
	r := s.Ranges[rank]
	return uint32(r[0]), uint32(r[1])
}

// Get returns the record for a global read ID.
func (s *ReadStore) Get(id uint32) *Record {
	if int(id) >= len(s.Reads) {
		panic(fmt.Sprintf("fastq: read ID %d out of range (%d reads)", id, len(s.Reads)))
	}
	return s.Reads[id]
}

// Seq returns the sequence for a global read ID.
func (s *ReadStore) Seq(id uint32) []byte { return s.Get(id).Seq }

// LocalView is one rank's working set: its owned ID range plus any replicas
// fetched for alignment.
type LocalView struct {
	store    *ReadStore
	rank     int
	start    uint32
	end      uint32
	replicas map[uint32][]byte
}

// View returns rank's local view of the store.
func (s *ReadStore) View(rank int) *LocalView {
	start, end := s.LocalIDs(rank)
	return &LocalView{store: s, rank: rank, start: start, end: end,
		replicas: make(map[uint32][]byte)}
}

// Owns reports whether the view's rank owns the read.
func (v *LocalView) Owns(id uint32) bool { return id >= v.start && id < v.end }

// Seq returns the sequence for id if it is local or replicated, else nil.
func (v *LocalView) Seq(id uint32) []byte {
	if v.Owns(id) {
		return v.store.Seq(id)
	}
	return v.replicas[id]
}

// AddReplica stores a fetched copy of a remote read.
func (v *LocalView) AddReplica(id uint32, seq []byte) { v.replicas[id] = seq }

// OwnerOf returns the rank owning a read ID.
func (v *LocalView) OwnerOf(id uint32) int { return v.store.Owner(id) }

// OwnedSeq returns the sequence of a read this rank owns; it panics if the
// read is remote (an ownership-protocol violation).
func (v *LocalView) OwnedSeq(id uint32) []byte {
	if !v.Owns(id) {
		panic(fmt.Sprintf("fastq: rank %d does not own read %d", v.rank, id))
	}
	return v.store.Seq(id)
}

// ReplicaCount returns the number of replicated reads held.
func (v *LocalView) ReplicaCount() int { return len(v.replicas) }

// ReplicaBytes returns the memory consumed by replicas, the quantity the
// paper's alignment-stage communication analysis bounds.
func (v *LocalView) ReplicaBytes() int {
	n := 0
	for _, s := range v.replicas {
		n += len(s)
	}
	return n
}

// LocalIDRange returns the owned [start, end) range.
func (v *LocalView) LocalIDRange() (uint32, uint32) { return v.start, v.end }
