package fastq

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

const sampleFastq = "@r0 desc\nACGT\n+\n!!!!\n@r1\nGGTTAA\n+\n@@@@@@\n"

func TestReadFastq(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(sampleFastq))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "r0" || string(recs[0].Seq) != "ACGT" || string(recs[0].Qual) != "!!!!" {
		t.Errorf("record 0 mismatch: %+v", recs[0])
	}
	if recs[1].Name != "r1" || string(recs[1].Seq) != "GGTTAA" {
		t.Errorf("record 1 mismatch: %+v", recs[1])
	}
}

func TestReadFasta(t *testing.T) {
	in := ">r0 some description\nACGT\nACGT\n>r1\nTTTT\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if string(recs[0].Seq) != "ACGTACGT" {
		t.Errorf("multi-line FASTA seq = %q", recs[0].Seq)
	}
	if recs[0].Name != "r0" {
		t.Errorf("name = %q", recs[0].Name)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"@r0\nACGT\nX\n!!!!\n",   // bad separator
		"@r0\nACGT\n+\n!!!\n",    // quality length mismatch
		"garbage\nACGT\n+\n!!\n", // bad marker
	}
	for _, in := range cases {
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("got %d records from empty input", len(recs))
	}
}

func TestCRLFHandling(t *testing.T) {
	in := "@r0\r\nACGT\r\n+\r\n!!!!\r\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Seq) != "ACGT" {
		t.Errorf("CRLF seq = %q", recs[0].Seq)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	recs := []*Record{
		{Name: "a", Seq: []byte("ACGT"), Qual: []byte("IIII")},
		{Name: "b", Seq: []byte("TT")},
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Name != "a" || string(back[1].Seq) != "TT" {
		t.Errorf("roundtrip mismatch: %+v", back)
	}
	if string(back[1].Qual) != "!!" {
		t.Errorf("placeholder quality = %q", back[1].Qual)
	}
}

func TestWriteFasta(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFasta(&buf, []*Record{{Name: "x", Seq: []byte("ACGT")}}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != ">x\nACGT\n" {
		t.Errorf("fasta output = %q", got)
	}
}

func TestPartition(t *testing.T) {
	cases := []struct{ n, p int }{{0, 1}, {1, 4}, {10, 3}, {100, 7}, {5, 5}}
	for _, c := range cases {
		ranges := Partition(c.n, c.p)
		if len(ranges) != c.p {
			t.Fatalf("Partition(%d,%d) returned %d ranges", c.n, c.p, len(ranges))
		}
		prev := 0
		total := 0
		for _, r := range ranges {
			if r[0] != prev {
				t.Errorf("Partition(%d,%d): gap at %v", c.n, c.p, r)
			}
			sz := r[1] - r[0]
			if sz < c.n/c.p || sz > c.n/c.p+1 {
				t.Errorf("Partition(%d,%d): shard size %d", c.n, c.p, sz)
			}
			total += sz
			prev = r[1]
		}
		if total != c.n {
			t.Errorf("Partition(%d,%d): covered %d", c.n, c.p, total)
		}
	}
}

// Property: PartitionByBytes covers all records exactly once, in order.
func TestPartitionByBytesCoverage(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 64
		p := int(pRaw)%8 + 1
		recs := make([]*Record, n)
		for i := range recs {
			recs[i] = &Record{Seq: make([]byte, rng.Intn(500)+1)}
		}
		ranges := PartitionByBytes(recs, p)
		if len(ranges) != p {
			return false
		}
		prev := 0
		for _, r := range ranges {
			if r[0] != prev || r[1] < r[0] {
				return false
			}
			prev = r[1]
		}
		return prev == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPartitionByBytesBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	recs := make([]*Record, 1000)
	total := 0
	for i := range recs {
		n := rng.Intn(9000) + 1000
		recs[i] = &Record{Seq: make([]byte, n)}
		total += n
	}
	const p = 8
	ranges := PartitionByBytes(recs, p)
	for r, rg := range ranges {
		sz := 0
		for i := rg[0]; i < rg[1]; i++ {
			sz += recs[i].Len()
		}
		frac := float64(sz) / float64(total)
		if frac < 0.10 || frac > 0.15 { // ideal 0.125
			t.Errorf("rank %d holds %.3f of bytes", r, frac)
		}
	}
}

func TestSplitOffsetsAndReadRange(t *testing.T) {
	// Build a file whose quality lines contain '@' to stress boundary
	// detection.
	rng := rand.New(rand.NewSource(11))
	var recs []*Record
	for i := 0; i < 200; i++ {
		n := rng.Intn(200) + 50
		seq := make([]byte, n)
		qual := make([]byte, n)
		for j := range seq {
			seq[j] = "ACGT"[rng.Intn(4)]
			qual[j] = byte('!' + rng.Intn(60)) // includes '@'
		}
		qual[0] = '@' // adversarial: quality line starts with '@'
		recs = append(recs, &Record{Name: "r" + strings.Repeat("x", i%5), Seq: seq, Qual: qual})
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq")
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}

	for _, p := range []int{1, 2, 3, 7} {
		offsets, err := SplitOffsets(path, p)
		if err != nil {
			t.Fatal(err)
		}
		var got []*Record
		for i := 0; i < p; i++ {
			part, err := ReadRange(path, offsets[i], offsets[i+1])
			if err != nil {
				t.Fatalf("p=%d shard %d: %v", p, i, err)
			}
			got = append(got, part...)
		}
		if len(got) != len(recs) {
			t.Fatalf("p=%d: reassembled %d records, want %d", p, len(got), len(recs))
		}
		for i := range got {
			if !bytes.Equal(got[i].Seq, recs[i].Seq) {
				t.Fatalf("p=%d: record %d sequence mismatch", p, i)
			}
		}
	}
}

// TestSplitOffsetsUltraLongReads is the regression test for split offsets
// landing inside reads longer than the boundary scan window: the old
// fixed 1 MiB window returned size when it ended mid-record (or when the
// two-line lookahead ran off the buffer), silently collapsing the shard to
// empty and dumping its bytes on the previous rank. Quality lines start
// with '@' to keep the header/quality ambiguity in play.
func TestSplitOffsetsUltraLongReads(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mk := func(name string, n int) *Record {
		seq := make([]byte, n)
		qual := make([]byte, n)
		for j := range seq {
			seq[j] = "ACGT"[rng.Intn(4)]
			qual[j] = byte('!' + rng.Intn(60))
		}
		qual[0] = '@' // adversarial: quality line starts with '@'
		return &Record{Name: name, Seq: seq, Qual: qual}
	}
	// The middle read's lines are ~1.5x the scan window, so any offset
	// guess near the file's midpoint lands inside it and the scan must
	// grow its window to reach the next record's header.
	recs := []*Record{
		mk("short-head", 2000),
		mk("ultra-long", scanWindow*3/2),
		mk("short-tail", 2000),
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "long.fastq")
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range []int{2, 3, 5} {
		offsets, err := SplitOffsets(path, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		// Real record boundaries exist after every interior guess (the
		// guesses land in or before the ultra-long read, and two records
		// follow its start), so no interior offset may collapse to size.
		if offsets[1] >= fi.Size() {
			t.Errorf("p=%d: first split offset collapsed to file size", p)
		}
		var got []*Record
		for i := 0; i < p; i++ {
			part, err := ReadRange(path, offsets[i], offsets[i+1])
			if err != nil {
				t.Fatalf("p=%d shard %d: %v", p, i, err)
			}
			got = append(got, part...)
		}
		if len(got) != len(recs) {
			t.Fatalf("p=%d: reassembled %d records, want %d", p, len(got), len(recs))
		}
		for i := range got {
			if got[i].Name != recs[i].Name || !bytes.Equal(got[i].Seq, recs[i].Seq) {
				t.Fatalf("p=%d: record %d mismatch", p, i)
			}
		}
	}

	// The p=2 midpoint guess lands inside the ultra-long read; the grown
	// window must find the *next* record, not swallow the tail.
	offsets, err := SplitOffsets(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := ReadRange(path, offsets[1], fi.Size())
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0].Name != "short-tail" {
		t.Errorf("p=2 second shard holds %d records, want exactly the tail read", len(tail))
	}
}

func TestGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq.gz")
	recs := []*Record{
		{Name: "a", Seq: []byte("ACGTACGT"), Qual: []byte("IIIIIIII")},
		{Name: "b", Seq: []byte("TTTT"), Qual: []byte("!!!!")},
	}
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	// The file really is gzip (magic bytes).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("output is not gzip")
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || string(back[0].Seq) != "ACGTACGT" || back[1].Name != "b" {
		t.Errorf("gzip roundtrip: %+v", back)
	}
}

func TestGzipCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.fastq.gz")
	if err := os.WriteFile(path, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("corrupt gzip accepted")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile("/nonexistent/file.fastq"); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestWriteFileAndReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fastq")
	recs := []*Record{{Name: "a", Seq: []byte("ACGTACGT"), Qual: []byte("IIIIIIII")}}
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || string(back[0].Seq) != "ACGTACGT" {
		t.Errorf("roundtrip via file failed: %+v", back)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("file is empty")
	}
}

func TestStats(t *testing.T) {
	recs := []*Record{
		{Seq: make([]byte, 100)},
		{Seq: make([]byte, 300)},
	}
	s := Summarize(recs)
	if s.Reads != 2 || s.TotalBases != 400 || s.MeanLen() != 200 ||
		s.MinLen != 100 || s.MaxLen != 300 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "2 reads") {
		t.Errorf("String() = %q", s.String())
	}
	zero := Summarize(nil)
	if zero.MeanLen() != 0 {
		t.Errorf("empty MeanLen = %v", zero.MeanLen())
	}
}

func TestReaderLargeRecordStreaming(t *testing.T) {
	// A record bigger than the bufio buffer must still parse.
	seq := bytes.Repeat([]byte("ACGT"), 40000) // 160 kB line
	qual := bytes.Repeat([]byte("I"), len(seq))
	var buf bytes.Buffer
	if err := Write(&buf, []*Record{{Name: "big", Seq: seq, Qual: qual}}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Seq) != len(seq) {
		t.Fatalf("large record parse failed: %d records", len(recs))
	}
}

func TestNextAfterEOF(t *testing.T) {
	r := NewReader(strings.NewReader(sampleFastq))
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("second EOF read returned %v", err)
	}
}
