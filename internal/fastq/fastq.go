// Package fastq reads and writes FASTQ and FASTA files and provides the
// record-boundary-aligned byte-range partitioning that diBELLA's parallel
// I/O uses to hand each rank a near-equal share of the input reads.
//
// The paper's input files are PacBio FASTQ (266 MB and 929 MB); reads carry
// no locality with respect to genome position, so a plain byte-range split
// already yields a near-uniform distribution of bases per rank.
package fastq

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// Record is a single sequencing read. Qual is empty for FASTA input.
type Record struct {
	Name string
	Seq  []byte
	Qual []byte
}

// Len returns the number of bases in the read.
func (r *Record) Len() int { return len(r.Seq) }

// Reader parses FASTQ or FASTA records from an input stream, detecting the
// format from the first record marker ('@' vs '>').
type Reader struct {
	br     *bufio.Reader
	fasta  bool
	peeked bool
	nRec   int
}

// NewReader wraps r in a Record parser.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record or io.EOF.
func (r *Reader) Next() (*Record, error) {
	if !r.peeked {
		if err := r.detect(); err != nil {
			return nil, err
		}
	}
	if r.fasta {
		return r.nextFasta()
	}
	return r.nextFastq()
}

func (r *Reader) detect() error {
	for {
		b, err := r.br.Peek(1)
		if err != nil {
			return err
		}
		switch b[0] {
		case '@':
			r.fasta = false
			r.peeked = true
			return nil
		case '>':
			r.fasta = true
			r.peeked = true
			return nil
		case '\n', '\r':
			if _, err := r.br.ReadByte(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fastq: unrecognized record marker %q", b[0])
		}
	}
}

func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadBytes('\n')
	if len(line) == 0 && err != nil {
		return nil, err
	}
	return bytes.TrimRight(line, "\r\n"), nil
}

func (r *Reader) nextFastq() (*Record, error) {
	header, err := r.readLine()
	if err != nil {
		return nil, err
	}
	if len(header) == 0 || header[0] != '@' {
		return nil, fmt.Errorf("fastq: record %d: malformed header %q", r.nRec, header)
	}
	seq, err := r.readLine()
	if err != nil {
		return nil, fmt.Errorf("fastq: record %d: truncated sequence: %w", r.nRec, err)
	}
	plus, err := r.readLine()
	if err != nil || len(plus) == 0 || plus[0] != '+' {
		return nil, fmt.Errorf("fastq: record %d: missing '+' separator", r.nRec)
	}
	qual, err := r.readLine()
	if err != nil {
		return nil, fmt.Errorf("fastq: record %d: truncated quality: %w", r.nRec, err)
	}
	if len(qual) != len(seq) {
		return nil, fmt.Errorf("fastq: record %d: quality length %d != sequence length %d",
			r.nRec, len(qual), len(seq))
	}
	r.nRec++
	return &Record{Name: nameOf(header[1:]), Seq: seq, Qual: qual}, nil
}

func (r *Reader) nextFasta() (*Record, error) {
	header, err := r.readLine()
	if err != nil {
		return nil, err
	}
	if len(header) == 0 || header[0] != '>' {
		return nil, fmt.Errorf("fastq: record %d: malformed FASTA header %q", r.nRec, header)
	}
	var seq []byte
	for {
		b, err := r.br.Peek(1)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if b[0] == '>' {
			break
		}
		line, err := r.readLine()
		if err != nil {
			return nil, err
		}
		seq = append(seq, line...)
	}
	r.nRec++
	return &Record{Name: nameOf(header[1:]), Seq: seq}, nil
}

// nameOf trims a header to the first whitespace-delimited token.
func nameOf(h []byte) string {
	if i := bytes.IndexAny(h, " \t"); i >= 0 {
		h = h[:i]
	}
	return string(h)
}

// ReadAll parses every record from r.
func ReadAll(r io.Reader) ([]*Record, error) {
	fr := NewReader(r)
	var recs []*Record
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}

// ReadFile parses every record from a FASTQ or FASTA file; files ending
// in .gz are decompressed transparently (public read sets ship gzipped).
func ReadFile(path string) ([]*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("fastq: %s: %w", path, err)
		}
		defer zr.Close()
		return ReadAll(zr)
	}
	return ReadAll(f)
}

// Write emits records in FASTQ format (records lacking qualities get a
// constant placeholder quality, as real PacBio FASTQ always carries one).
func Write(w io.Writer, recs []*Record) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, rec := range recs {
		qual := rec.Qual
		if len(qual) != len(rec.Seq) {
			qual = bytes.Repeat([]byte{'!'}, len(rec.Seq))
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", rec.Name, rec.Seq, qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes records to path in FASTQ format, gzip-compressed when
// the path ends in .gz.
func WriteFile(path string, recs []*Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(f)
		if err := Write(zw, recs); err != nil {
			zw.Close()
			f.Close()
			return err
		}
		if err := zw.Close(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := Write(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFasta emits records in FASTA format.
func WriteFasta(w io.Writer, recs []*Record) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n%s\n", rec.Name, rec.Seq); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Partition splits n records into p contiguous shards whose sizes differ by
// at most one, returning half-open index ranges. It mirrors the paper's
// block distribution of reads across ranks.
func Partition(n, p int) [][2]int {
	if p <= 0 {
		panic("fastq: non-positive partition count")
	}
	ranges := make([][2]int, p)
	base, rem := n/p, n%p
	start := 0
	for i := 0; i < p; i++ {
		sz := base
		if i < rem {
			sz++
		}
		ranges[i] = [2]int{start, start + sz}
		start += sz
	}
	return ranges
}

// PartitionByBytes splits records into p shards balanced by total sequence
// bytes rather than record count (greedy prefix split). The paper
// partitions reads "as uniformly as possible ... by the read size in
// memory"; with long-read length variance this differs measurably from a
// count split.
func PartitionByBytes(recs []*Record, p int) [][2]int {
	lens := make([]int32, len(recs))
	for i, r := range recs {
		lens[i] = int32(r.Len())
	}
	return PartitionLens(lens, p)
}

// PartitionLens is PartitionByBytes over a length vector alone — the form
// a cooperative sharded load can evaluate after allgathering per-read
// lengths, without any rank holding the full record set. The two always
// produce identical ranges, which is what keeps a sharded run's block
// distribution (and therefore its output) byte-identical to a whole-file
// load's.
func PartitionLens(lens []int32, p int) [][2]int {
	if p <= 0 {
		panic("fastq: non-positive partition count")
	}
	total := 0
	for _, n := range lens {
		total += int(n)
	}
	ranges := make([][2]int, p)
	start := 0
	acc := 0
	for i := 0; i < p; i++ {
		target := (total*(i+1) + p - 1) / p
		end := start
		for end < len(lens) && (acc < target || i == p-1) {
			acc += int(lens[end])
			end++
		}
		ranges[i] = [2]int{start, end}
		start = end
	}
	ranges[p-1][1] = len(lens)
	return ranges
}

// SplitOffsets computes p byte offsets into a FASTQ file such that each
// offset lands on a record boundary ('@' header line that is truly a record
// start), emulating MPI-IO style cooperative reading where each rank seeks
// to its share and scans forward to the first full record.
func SplitOffsets(path string, p int) ([]int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	offsets := make([]int64, p+1)
	offsets[p] = size
	for i := 1; i < p; i++ {
		adj, err := splitBoundary(f, i, p, size)
		if err != nil {
			return nil, err
		}
		offsets[i] = adj
	}
	// Offsets must be monotone even for tiny files.
	for i := 1; i <= p; i++ {
		if offsets[i] < offsets[i-1] {
			offsets[i] = offsets[i-1]
		}
	}
	return offsets, nil
}

// ShardOffsets returns the [start,end) byte range of the rank'th of size
// shards: exactly the two boundaries SplitOffsets would assign, without
// scanning the other size-2 boundaries. A P-rank cooperative load where
// every rank computes only its own range therefore costs O(P) boundary
// scans in aggregate instead of the O(P²) of P full SplitOffsets calls —
// and because splitBoundary is monotone in the split index, adjacent
// ranks' independently computed boundaries agree, so the shards tile the
// file exactly.
func ShardOffsets(path string, rank, size int) (start, end int64, err error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	if start, err = splitBoundary(f, rank, size, fi.Size()); err != nil {
		return 0, 0, err
	}
	if end, err = splitBoundary(f, rank+1, size, fi.Size()); err != nil {
		return 0, 0, err
	}
	if end < start {
		end = start // mirror SplitOffsets' defensive monotonicity clamp
	}
	return start, end, nil
}

// splitBoundary computes the i'th of p record-aligned split offsets.
func splitBoundary(f *os.File, i, p int, size int64) (int64, error) {
	if i <= 0 {
		return 0, nil
	}
	if i >= p {
		return size, nil
	}
	return nextRecordStart(f, size*int64(i)/int64(p), size)
}

const (
	// scanWindow is the initial record-boundary scan window.
	scanWindow = 1 << 20
	// maxScanWindow bounds the window's growth; a FASTQ file that cannot
	// produce one confirmed record boundary within it is corrupt (or not
	// FASTQ) and is reported rather than guessed at.
	maxScanWindow = 1 << 30
)

// nextRecordStart scans forward from off to the start of the next FASTQ
// record. A line beginning with '@' could be a header or a quality line;
// disambiguating uses the 4-line record invariant: a candidate '@' line is
// accepted iff the line after next begins with '+'. The window grows
// (doubling from scanWindow) whenever a verdict would need bytes beyond it
// — ultra-long reads can push a line or the two-line lookahead past any
// fixed window, and silently returning size there would collapse the shard
// to empty and dump its bytes on the previous rank. Only reaching
// end-of-file without a confirmed start returns size: the offset landed
// inside the file's final record, whose bytes belong to the prior shard.
func nextRecordStart(f *os.File, off, size int64) (int64, error) {
	if off <= 0 {
		return 0, nil
	}
	if off >= size {
		return size, nil
	}
	for window := int64(scanWindow); ; window *= 2 {
		n := min64(window, size-off)
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
			return 0, err
		}
		atEOF := off+n == size
		pos, found, needMore := scanRecordStart(buf, atEOF)
		if found {
			return off + int64(pos), nil
		}
		if atEOF || !needMore {
			return size, nil
		}
		if window >= maxScanWindow {
			return 0, fmt.Errorf("fastq: no record boundary within %d bytes after offset %d (corrupt or non-FASTQ input)", n, off)
		}
	}
}

// scanRecordStart looks for the first confirmed record start in buf.
// needMore reports that the verdict requires bytes beyond the buffer (a
// window-final partial line, or a candidate whose two-line lookahead runs
// off the end); it is never set when the buffer already reaches EOF.
func scanRecordStart(buf []byte, atEOF bool) (pos int, found, needMore bool) {
	// Align to the next line start.
	i := bytes.IndexByte(buf, '\n')
	if i < 0 {
		return 0, false, !atEOF
	}
	i++
	for i < len(buf) {
		lineEnd := bytes.IndexByte(buf[i:], '\n')
		if lineEnd < 0 {
			// Partial final line: a candidate here cannot be confirmed.
			return 0, false, !atEOF
		}
		if buf[i] == '@' {
			// Confirm that the line after next starts with '+'.
			j := i + lineEnd + 1
			k := bytes.IndexByte(buf[j:], '\n')
			if k < 0 {
				return 0, false, !atEOF
			}
			l := j + k + 1
			if l >= len(buf) {
				return 0, false, !atEOF
			}
			if buf[l] == '+' {
				return i, true, false
			}
		}
		i += lineEnd + 1
	}
	return 0, false, !atEOF
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// LoadShard parses only this rank's shard of a read file: the records
// fully contained in the rank'th of size record-boundary-aligned byte
// ranges (SplitOffsets). The concatenation of all ranks' shards, in rank
// order, is exactly the whole file's record sequence — so global read IDs
// assigned by rank-order concatenation match a whole-file load.
//
// parsed is the number of input bytes this process actually read and
// parsed: the shard's byte extent on the cooperative path. Inputs the
// byte-range splitter cannot handle (gzip streams, FASTA's variable
// record shape) fall back to every rank parsing the whole file and
// keeping its record-count share, reported honestly as the full file
// size.
func LoadShard(path string, rank, size int) (recs []*Record, parsed int64, err error) {
	if size <= 0 {
		return nil, 0, fmt.Errorf("fastq: non-positive shard count %d", size)
	}
	if rank < 0 || rank >= size {
		return nil, 0, fmt.Errorf("fastq: shard %d out of range [0,%d)", rank, size)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, 0, err
	}
	if size == 1 {
		recs, err := ReadFile(path)
		return recs, fi.Size(), err
	}
	if strings.HasSuffix(path, ".gz") {
		return loadShardWhole(path, rank, size, fi.Size())
	}
	fasta, err := isFastaFile(path)
	if err != nil {
		return nil, 0, err
	}
	if fasta {
		return loadShardWhole(path, rank, size, fi.Size())
	}
	start, end, err := ShardOffsets(path, rank, size)
	if err != nil {
		return nil, 0, err
	}
	recs, err = ReadRange(path, start, end)
	if err != nil {
		return nil, 0, err
	}
	return recs, end - start, nil
}

// loadShardWhole is LoadShard's fallback for unsplittable inputs: parse
// everything, keep the rank's record-count share.
func loadShardWhole(path string, rank, size int, fileSize int64) ([]*Record, int64, error) {
	recs, err := ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	r := Partition(len(recs), size)[rank]
	return recs[r[0]:r[1]], fileSize, nil
}

// isFastaFile peeks the first record marker of a file.
func isFastaFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		b, err := br.ReadByte()
		if err == io.EOF {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		if b != '\n' && b != '\r' {
			return b == '>', nil
		}
	}
}

// ReadRange parses the records fully contained in the byte range
// [start,end) of a FASTQ file whose offsets came from SplitOffsets.
func ReadRange(path string, start, end int64) ([]*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(start, io.SeekStart); err != nil {
		return nil, err
	}
	lr := io.LimitReader(f, end-start)
	return ReadAll(lr)
}

// Stats summarizes a read set the way the paper characterizes its inputs
// (read count, total bases, mean length).
type Stats struct {
	Reads      int
	TotalBases int64
	MinLen     int
	MaxLen     int
}

// MeanLen returns the average read length.
func (s Stats) MeanLen() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.TotalBases) / float64(s.Reads)
}

// String formats the stats like the paper's data-set descriptions.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d reads, %d bases, mean length %.0f bp (min %d, max %d)",
		s.Reads, s.TotalBases, s.MeanLen(), s.MinLen, s.MaxLen)
	return b.String()
}

// Summarize computes Stats over a record set.
func Summarize(recs []*Record) Stats {
	s := Stats{}
	for i, r := range recs {
		n := r.Len()
		s.Reads++
		s.TotalBases += int64(n)
		if i == 0 || n < s.MinLen {
			s.MinLen = n
		}
		if n > s.MaxLen {
			s.MaxLen = n
		}
	}
	return s
}
