package overlap

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dibella/internal/spmd"
)

// Task-segment codec and placement re-shard: the checkpoint
// representation of one rank's consolidated alignment tasks, plus the
// collective that re-routes loaded tasks when the world size changed
// between snapshot and resume.
//
// Task placement is the deterministic owner policy over the read-store
// block distribution, so tasks snapshotted at world size W re-home at any
// size P by re-evaluating the policy against the new distribution's
// owner function. Seed lists were already consolidated and filtered
// before the snapshot; they travel with the task untouched.

// EncodeTasks serializes tasks (already sorted by (A, B), the order Run
// emits) deterministically.
func EncodeTasks(tasks []Task) []byte {
	n := 4
	for i := range tasks {
		n += 12 + 9*len(tasks[i].Seeds)
	}
	buf := make([]byte, 0, n)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(tasks)))
	for i := range tasks {
		buf = appendTask(buf, &tasks[i])
	}
	return buf
}

// appendTask serializes one task.
func appendTask(buf []byte, t *Task) []byte {
	buf = binary.BigEndian.AppendUint32(buf, t.Pair.A)
	buf = binary.BigEndian.AppendUint32(buf, t.Pair.B)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.Seeds)))
	for _, s := range t.Seeds {
		buf = binary.BigEndian.AppendUint32(buf, s.PosA)
		buf = binary.BigEndian.AppendUint32(buf, s.PosB)
		var flags byte
		if s.FwdA {
			flags |= 1
		}
		if s.FwdB {
			flags |= 2
		}
		buf = append(buf, flags)
	}
	return buf
}

// decodeTask parses one appendTask blob prefix, returning the remainder.
func decodeTask(b []byte) (t Task, rest []byte, err error) {
	if len(b) < 12 {
		return Task{}, nil, fmt.Errorf("overlap: task header truncated (%d bytes)", len(b))
	}
	t.Pair = Pair{A: binary.BigEndian.Uint32(b), B: binary.BigEndian.Uint32(b[4:])}
	nSeeds := int(binary.BigEndian.Uint32(b[8:]))
	b = b[12:]
	if len(b) < 9*nSeeds {
		return Task{}, nil, fmt.Errorf("overlap: task (%d,%d) truncated (%d of %d seed bytes)",
			t.Pair.A, t.Pair.B, len(b), 9*nSeeds)
	}
	t.Seeds = make([]Seed, nSeeds)
	for i := range t.Seeds {
		o := b[9*i:]
		t.Seeds[i] = Seed{
			PosA: binary.BigEndian.Uint32(o),
			PosB: binary.BigEndian.Uint32(o[4:]),
			FwdA: o[8]&1 != 0,
			FwdB: o[8]&2 != 0,
		}
	}
	return t, b[9*nSeeds:], nil
}

// DecodeTasks parses an EncodeTasks blob.
func DecodeTasks(b []byte) ([]Task, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("overlap: task segment header truncated (%d bytes)", len(b))
	}
	count := binary.BigEndian.Uint32(b)
	b = b[4:]
	tasks := make([]Task, 0, count)
	for i := uint32(0); i < count; i++ {
		t, rest, err := decodeTask(b)
		if err != nil {
			return nil, fmt.Errorf("overlap: task segment entry %d: %w", i, err)
		}
		tasks = append(tasks, t)
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("overlap: task segment has %d trailing bytes", len(b))
	}
	return tasks, nil
}

// TaskOwner applies the configured placement policy to a canonical pair
// (ra < rb): the rank that aligns this pair under owner's distribution.
// Exported for the checkpoint loader, which re-evaluates placement
// against the resumed world's distribution.
func (cfg Config) TaskOwner(ra, rb uint32, owner OwnerFunc) int {
	return cfg.taskOwner(ra, rb, owner)
}

// ReshardTasks re-routes tasks to the ranks the placement policy picks
// under owner (the new world's read distribution). All ranks call it
// collectively; the union of their task lists must cover each pair
// exactly once (as a per-rank snapshot of one world does). Returns this
// rank's tasks, sorted by (A, B) — the order Run emits, so the
// continuation is indistinguishable from a fresh overlap stage at the
// new size.
func ReshardTasks(c *spmd.Comm, tasks []Task, owner OwnerFunc, cfg Config) ([]Task, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	p := c.Size()
	send := make([]spmd.PackedBufs, p)
	for i := range tasks {
		t := &tasks[i]
		dst := cfg.taskOwner(t.Pair.A, t.Pair.B, owner)
		send[dst].AppendItem(appendTask(nil, t))
	}
	recv := spmd.AlltoallvPacked(c, send)
	var out []Task
	for src := 0; src < p; src++ {
		for _, item := range recv[src].Items() {
			t, rest, err := decodeTask(item)
			if err != nil {
				return nil, fmt.Errorf("overlap: reshard from rank %d: %w", src, err)
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("overlap: reshard from rank %d: %d trailing bytes", src, len(rest))
			}
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pair.A != out[j].Pair.A {
			return out[i].Pair.A < out[j].Pair.A
		}
		return out[i].Pair.B < out[j].Pair.B
	})
	return out, nil
}
