package overlap

import (
	"bytes"
	"reflect"
	"testing"

	"dibella/internal/spmd"
)

func testTasks(n int) []Task {
	tasks := make([]Task, 0, n)
	for i := 0; i < n; i++ {
		t := Task{Pair: Pair{A: uint32(i), B: uint32(i + n)}}
		for j := 0; j <= i%3; j++ {
			t.Seeds = append(t.Seeds, Seed{
				PosA: uint32(j * 500), PosB: uint32(j*500 + 7),
				FwdA: j%2 == 0, FwdB: i%2 == 0,
			})
		}
		tasks = append(tasks, t)
	}
	return tasks
}

func TestTaskCodecRoundtrip(t *testing.T) {
	tasks := testTasks(17)
	blob := EncodeTasks(tasks)
	back, err := DecodeTasks(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tasks, back) {
		t.Error("tasks did not round-trip")
	}
	if !bytes.Equal(blob, EncodeTasks(tasks)) {
		t.Error("encoding is not deterministic")
	}
	empty, err := DecodeTasks(EncodeTasks(nil))
	if err != nil || len(empty) != 0 {
		t.Errorf("empty set: %v %v", empty, err)
	}
}

func TestTaskCodecRejectsCorruption(t *testing.T) {
	blob := EncodeTasks(testTasks(3))
	for _, cut := range []int{0, 3, 13, len(blob) - 1} {
		if _, err := DecodeTasks(blob[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := DecodeTasks(append(append([]byte(nil), blob...), 9)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// TestReshardTasksMatchesPolicy re-homes a task set across world sizes
// and checks each task lands exactly where the policy places it, with the
// global set preserved and per-rank order sorted.
func TestReshardTasksMatchesPolicy(t *testing.T) {
	const reads = 40
	all := testTasks(reads / 2)
	cfg := Config{K: 17}
	for _, newP := range []int{1, 2, 4} {
		// Block distribution of `reads` reads over newP ranks.
		owner := func(id uint32) int { return int(id) * newP / reads }
		got := make([][]Task, newP)
		err := spmd.Run(newP, func(c *spmd.Comm) error {
			// Old world: tasks split contiguously across 2 "segments",
			// assigned to the first ranks of the new world.
			var hold []Task
			if c.Rank() == 0 {
				hold = all[:len(all)/2]
			} else if c.Rank() == 1%newP {
				hold = all[len(all)/2:]
			}
			if newP == 1 {
				hold = all
			}
			out, err := ReshardTasks(c, hold, owner, cfg)
			if err != nil {
				return err
			}
			got[c.Rank()] = out
			return nil
		})
		if err != nil {
			t.Fatalf("newP=%d: %v", newP, err)
		}
		var merged []Task
		for r, ts := range got {
			for i := range ts {
				if want := cfg.TaskOwner(ts[i].Pair.A, ts[i].Pair.B, owner); want != r {
					t.Errorf("newP=%d: task %v on rank %d, policy places it on %d", newP, ts[i].Pair, r, want)
				}
				if i > 0 && ts[i].Pair.A < ts[i-1].Pair.A {
					t.Errorf("newP=%d: rank %d tasks out of order", newP, r)
				}
			}
			merged = append(merged, ts...)
		}
		if len(merged) != len(all) {
			t.Fatalf("newP=%d: %d tasks after reshard, want %d", newP, len(merged), len(all))
		}
	}
}
