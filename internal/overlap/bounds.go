package overlap

// This file implements the paper's communication/computation bounds for
// the overlap stage (§8, Equations 3-5). The bounds are phrased over the
// retained k-mer count (ι·K in the paper's notation) and the maximum
// retained frequency m; they hold for any workload and are checked against
// measured pair counts in tests.

// PairBounds returns the paper's bounds on the global number of alignment
// tasks generated from `retained` retained k-mers with frequency cutoff m:
//
//	lower (Eq. 4): every retained k-mer occurs in >= 2 places, yielding at
//	least one pair — retained itself;
//	upper (Eq. 3): each k-mer contributes at most m(m-1)/2 pairs.
//
// Same-read occurrence pairs are skipped by Algorithm 1, so the realized
// count can in degenerate inputs dip below the lower bound only when
// k-mers repeat within single reads; the tests use the permissive lower
// bound 0 in that case.
func PairBounds(retained int64, m int) (lo, hi int64) {
	if retained < 0 || m < 2 {
		return 0, 0
	}
	return retained, retained * int64(m) * int64(m-1) / 2
}

// ParallelComplexity returns Eq. 5: the per-processor computational
// complexity of Algorithm 1's pair enumeration, O(retained·m²/P).
func ParallelComplexity(retained int64, m, p int) float64 {
	if p <= 0 {
		return 0
	}
	return float64(retained) * float64(m) * float64(m) / float64(p)
}
