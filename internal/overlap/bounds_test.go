package overlap

import (
	"testing"
	"testing/quick"
)

func TestPairBoundsBasics(t *testing.T) {
	lo, hi := PairBounds(100, 4)
	if lo != 100 {
		t.Errorf("lo = %d", lo)
	}
	if hi != 100*6 { // m(m-1)/2 = 6
		t.Errorf("hi = %d", hi)
	}
	if lo, hi := PairBounds(-1, 4); lo != 0 || hi != 0 {
		t.Error("negative retained should zero out")
	}
	if lo, hi := PairBounds(10, 1); lo != 0 || hi != 0 {
		t.Error("m<2 should zero out")
	}
}

// Property: lo <= hi always, and hi grows quadratically in m.
func TestPairBoundsOrdering(t *testing.T) {
	f := func(retRaw uint16, mRaw uint8) bool {
		ret := int64(retRaw)
		m := int(mRaw)%30 + 2
		lo, hi := PairBounds(ret, m)
		if lo > hi {
			return false
		}
		lo2, hi2 := PairBounds(ret, m+1)
		return lo2 == lo && hi2 >= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParallelComplexity(t *testing.T) {
	if ParallelComplexity(1000, 10, 10) != 1000*100/10 {
		t.Error("Eq. 5 arithmetic wrong")
	}
	if ParallelComplexity(1000, 10, 0) != 0 {
		t.Error("p=0 should give 0")
	}
}

// The measured pair counts of a real run must respect Eq. 3's upper bound.
func TestMeasuredPairsWithinBounds(t *testing.T) {
	seqs := overlappingReads(8)
	const m = 10
	tasks, st := buildTasksMaxFreq(t, seqs, 2, Config{K: 17, Mode: OneSeed}, m)
	var retained, generated int64
	for _, s := range st {
		retained += s.RetainedScanned
		generated += s.PairsGenerated
	}
	_, hi := PairBounds(retained, m)
	if generated > hi {
		t.Errorf("generated %d pairs exceeds Eq. 3 bound %d", generated, hi)
	}
	if generated == 0 || len(tasks) == 0 {
		t.Fatal("degenerate run")
	}
}

// Task-owner policies must not change the discovered pair set — only the
// placement of tasks.
func TestPoliciesSamePairSet(t *testing.T) {
	seqs := overlappingReads(9)
	lens := func(r uint32) int { return len(seqs[r]) }
	collect := func(cfg Config) map[Pair]bool {
		tasks, _ := buildTasks(t, seqs, 4, cfg)
		out := make(map[Pair]bool)
		for _, task := range tasks {
			out[task.Pair] = true
		}
		return out
	}
	base := collect(Config{K: 17, Mode: OneSeed, Policy: PolicyOddEven})
	if len(base) == 0 {
		t.Fatal("no pairs")
	}
	for _, cfg := range []Config{
		{K: 17, Mode: OneSeed, Policy: PolicyHashed},
		{K: 17, Mode: OneSeed, Policy: PolicyLongerRead, ReadLen: lens},
	} {
		got := collect(cfg)
		if len(got) != len(base) {
			t.Fatalf("policy %d changed pair count: %d vs %d", cfg.Policy, len(got), len(base))
		}
		for p := range base {
			if !got[p] {
				t.Fatalf("policy %d lost pair %v", cfg.Policy, p)
			}
		}
	}
}

func TestPolicyLongerReadRequiresLengths(t *testing.T) {
	cfg := Config{K: 17, Policy: PolicyLongerRead}
	if err := (&cfg).setDefaults(); err == nil {
		t.Error("missing ReadLen accepted")
	}
}

// buildTasksMaxFreq is buildTasks with a custom frequency cutoff.
func buildTasksMaxFreq(t *testing.T, seqs [][]byte, p int, cfg Config, maxFreq int) ([]Task, []Stats) {
	t.Helper()
	return buildTasksWith(t, seqs, p, cfg, maxFreq)
}
