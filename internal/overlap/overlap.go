// Package overlap implements diBELLA's overlap stage (§8, Algorithm 1):
// from each hash-table partition, enumerate all pairs of reads that share a
// retained k-mer, route each resulting alignment task to the owner of one
// of the pair's reads via the paper's odd/even heuristic (maximizing
// locality for the alignment stage), and consolidate per-pair shared-seed
// lists on the receiving side.
//
// After consolidation the seed lists are filtered by the paper's
// "exploration" parameters: exactly one seed per pair (the one-seed
// minimum-intensity configuration), all seeds separated by at least a
// minimum distance (1 Kbp in the paper's intermediate configuration), or
// all seeds separated by at least k (the maximum, d=k).
package overlap

import (
	"fmt"
	"sort"

	"dibella/internal/dht"
	"dibella/internal/kmer"
	"dibella/internal/machine"
	"dibella/internal/spmd"
	"dibella/internal/stats"
	"dibella/internal/walltime"
)

// Pair identifies an unordered read pair, stored with A < B.
type Pair struct {
	A, B uint32
}

// Seed is one shared k-mer between the two reads of a pair: the k-mer's
// position in each read and, per read, whether the canonical k-mer matched
// the read's forward strand.
type Seed struct {
	PosA, PosB uint32
	FwdA, FwdB bool
}

// SameStrand reports whether the two reads see the seed in the same
// orientation (true: forward-forward alignment; false: read B must be
// reverse-complemented).
func (s Seed) SameStrand() bool { return s.FwdA == s.FwdB }

// Task is one consolidated alignment task: a read pair and its filtered
// seed list.
type Task struct {
	Pair  Pair
	Seeds []Seed
}

// SeedMode selects the seed-exploration constraint (§8, §9).
type SeedMode int

// Seed exploration modes.
const (
	// OneSeed aligns exactly one seed per pair (the paper's
	// minimum-computational-intensity configuration).
	OneSeed SeedMode = iota
	// MinDistance aligns all seeds pairwise separated by at least MinDist
	// bases (the paper uses 1000).
	MinDistance
	// AllSeeds aligns all seeds separated by at least k bases (d=k).
	AllSeeds
)

// OwnerPolicy selects how alignment tasks are assigned to ranks. Every
// policy preserves the key locality property — the chosen rank owns one of
// the pair's two reads — so only load balance and alignment-stage exchange
// volume differ.
type OwnerPolicy int

// Task-owner policies.
const (
	// PolicyOddEven is the paper's Algorithm 1 heuristic (default).
	PolicyOddEven OwnerPolicy = iota
	// PolicyHashed picks between the two owners by a hash of the pair —
	// statistically equivalent balance to odd/even with no parity
	// structure.
	PolicyHashed
	// PolicyLongerRead assigns the task to the owner of the longer read,
	// so the shorter read is the one replicated in the alignment stage —
	// the paper's future-work direction of optimizing the exchange for
	// variable read lengths (§9). Requires Config.ReadLen.
	PolicyLongerRead
)

// Config controls the overlap stage.
type Config struct {
	K        int
	Mode     SeedMode
	MinDist  int // used by MinDistance (default 1000)
	MaxSeeds int // optional cap on seeds per pair; 0 = unlimited

	// Policy selects the task-owner heuristic (default PolicyOddEven,
	// the paper's Algorithm 1).
	Policy OwnerPolicy
	// ReadLen supplies read lengths for PolicyLongerRead. In the MPI
	// setting this is an allgather of one int per read at startup; here
	// the shared store provides it directly.
	ReadLen func(read uint32) int
}

func (cfg *Config) setDefaults() error {
	if cfg.K <= 0 {
		return fmt.Errorf("overlap: k %d must be positive", cfg.K)
	}
	if cfg.MinDist == 0 {
		cfg.MinDist = 1000
	}
	if cfg.MinDist < 0 {
		return fmt.Errorf("overlap: min seed distance %d must be non-negative", cfg.MinDist)
	}
	if cfg.MaxSeeds < 0 {
		return fmt.Errorf("overlap: max seeds %d must be non-negative", cfg.MaxSeeds)
	}
	if cfg.Policy == PolicyLongerRead && cfg.ReadLen == nil {
		return fmt.Errorf("overlap: PolicyLongerRead requires ReadLen")
	}
	return nil
}

// Stats is the overlap stage's per-rank accounting.
type Stats struct {
	RetainedScanned int64 // retained k-mers traversed (Fig. 6's rate unit)
	PairsGenerated  int64 // tasks emitted by Algorithm 1 on this rank
	TasksReceived   int64 // tasks arriving after the exchange
	Pairs           int64 // distinct read pairs after consolidation
	SeedsKept       int64
	SeedsDropped    int64
	BytesPacked     int64
	stats.Breakdown
}

// OwnerFunc maps a global read ID to its owning rank (the read-store block
// distribution).
type OwnerFunc func(read uint32) int

// PairMsg is the wire record for one discovered pair: 16 bytes. Exported
// for the serve-mode query path, which generates the same records against
// the resident partition and consolidates them with Consolidate.
type PairMsg struct {
	RA, RB   uint32
	PFA, PFB uint32 // packed position+orientation, as in dht.Occ
}

// Run executes the overlap stage collectively and returns this rank's
// consolidated alignment tasks, sorted by (A, B) for determinism.
func Run(c *spmd.Comm, model *machine.Model, part *dht.Partition, owner OwnerFunc, cfg Config) ([]Task, Stats, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, Stats{}, err
	}
	st := Stats{}

	// Algorithm 1: enumerate occurrence pairs per retained k-mer and
	// buffer each task for the owner chosen by the odd/even heuristic.
	t0 := walltime.Now()
	send := make([][]PairMsg, c.Size())
	part.ForEach(func(_ kmer.Kmer, occs []dht.Occ) {
		st.RetainedScanned++
		for i := 0; i < len(occs); i++ {
			for j := i + 1; j < len(occs); j++ {
				ra, rb := occs[i].Read, occs[j].Read
				pfa, pfb := occs[i].PosFlag, occs[j].PosFlag
				if ra == rb {
					continue // a repeat within one read is not an overlap
				}
				// Canonicalize the pair before choosing an owner:
				// occurrence lists arrive in exchange order, so the same
				// unordered pair can surface as (a,b) via one k-mer and
				// (b,a) via another; without normalization the two copies
				// would route to different owners and the pair would be
				// consolidated (and aligned) twice.
				if ra > rb {
					ra, rb = rb, ra
					pfa, pfb = pfb, pfa
				}
				dst := cfg.taskOwner(ra, rb, owner)
				send[dst] = append(send[dst], PairMsg{
					RA: ra, RB: rb, PFA: pfa, PFB: pfb,
				})
				st.PairsGenerated++
			}
		}
	})
	st.LocalVirtual += price(c, model, float64(st.RetainedScanned), machine.RateOverlapScan) +
		price(c, model, float64(st.PairsGenerated), machine.RatePairGen)
	st.LocalWall += walltime.Since(t0)

	t0 = walltime.Now()
	st.BytesPacked = st.PairsGenerated * 16
	st.PackVirtual += price(c, model, float64(st.BytesPacked), machine.RatePack)
	st.PackWall += walltime.Since(t0)

	// Irregular all-to-all of buffered tasks.
	t0 = walltime.Now()
	pre := c.Stats()
	recv := spmd.Alltoallv(c, send)
	post := c.Stats()
	st.ExchangeVirtual += post.ExchangeVirtual - pre.ExchangeVirtual
	st.ExchangeWall += walltime.Since(t0)

	// Consolidate per-pair seed lists, filter, and emit deterministic
	// task order.
	t0 = walltime.Now()
	tasks, seedsIn := consolidate(recv, cfg, &st)
	st.LocalVirtual += price(c, model, float64(st.TasksReceived), machine.RatePairGen) +
		price(c, model, float64(seedsIn), machine.RateSeedPrep)
	st.LocalWall += walltime.Since(t0)
	return tasks, st, nil
}

// consolidate merges received pair messages into per-pair seed lists,
// applies the exploration filter, and returns the tasks in (A, B) order,
// accumulating counts into st. The arrival order of the messages cannot
// matter: FilterSeeds fully sorts each pair's seed list before
// filtering, and the task list is sorted before return.
func consolidate(batches [][]PairMsg, cfg Config, st *Stats) (tasks []Task, seedsIn int64) {
	byPair := make(map[Pair][]Seed)
	for _, batch := range batches {
		for _, msg := range batch {
			st.TasksReceived++
			pair, seed := normalize(msg)
			byPair[pair] = append(byPair[pair], seed)
		}
	}
	st.Pairs = int64(len(byPair))
	tasks = make([]Task, 0, len(byPair))
	for pair, seeds := range byPair {
		seedsIn += int64(len(seeds))
		kept := FilterSeeds(seeds, cfg)
		st.SeedsKept += int64(len(kept))
		tasks = append(tasks, Task{Pair: pair, Seeds: kept})
	}
	st.SeedsDropped = seedsIn - st.SeedsKept
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Pair.A != tasks[j].Pair.A {
			return tasks[i].Pair.A < tasks[j].Pair.A
		}
		return tasks[i].Pair.B < tasks[j].Pair.B
	})
	return tasks, seedsIn
}

// Consolidate is the exported consolidation entry point for the
// serve-mode query path: the home rank of a query batch feeds the pair
// messages it received from every partition owner through the same
// merge/filter/sort pipeline the batch overlap stage uses, so a served
// task list is bit-for-bit the batch task list restricted to
// query-involving pairs. Returns the tasks and the per-batch counts.
func Consolidate(batches [][]PairMsg, cfg Config) ([]Task, Stats, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, Stats{}, err
	}
	var st Stats
	tasks, _ := consolidate(batches, cfg, &st)
	return tasks, st, nil
}

// price converts counted ops into virtual seconds on c's clock.
func price(c *spmd.Comm, model *machine.Model, ops, rate float64) float64 {
	if model == nil || ops <= 0 {
		return 0
	}
	d := model.ComputeTime(ops, rate, 0)
	c.Tick(d)
	return d
}

// taskOwner dispatches to the configured owner policy. Every policy
// returns owner(ra) or owner(rb), preserving alignment-stage locality.
func (cfg *Config) taskOwner(ra, rb uint32, owner OwnerFunc) int {
	switch cfg.Policy {
	case PolicyHashed:
		h := (uint64(ra)<<32 | uint64(rb)) * 0x9e3779b97f4a7c15
		if h>>63 == 0 {
			return owner(ra)
		}
		return owner(rb)
	case PolicyLongerRead:
		if cfg.ReadLen(ra) >= cfg.ReadLen(rb) {
			return owner(ra)
		}
		return owner(rb)
	default:
		return oddEvenOwner(ra, rb, owner)
	}
}

// oddEvenOwner is Algorithm 1's odd/even heuristic: alternate which member
// of the pair hosts the task based on the parity of ra, so that for
// uniformly distributed read IDs each rank receives a near-equal task
// count while every task is local to one of its reads.
func oddEvenOwner(ra, rb uint32, owner OwnerFunc) int {
	switch {
	case ra%2 == 0 && ra > rb+1:
		return owner(ra)
	case ra%2 != 0 && ra < rb+1:
		return owner(ra)
	default:
		return owner(rb)
	}
}

// normalize orders the pair as (A < B) and swaps the seed's sides to
// match.
func normalize(msg PairMsg) (Pair, Seed) {
	oa := dht.Occ{Read: msg.RA, PosFlag: msg.PFA}
	ob := dht.Occ{Read: msg.RB, PosFlag: msg.PFB}
	if msg.RA > msg.RB {
		oa, ob = ob, oa
	}
	return Pair{A: oa.Read, B: ob.Read}, Seed{
		PosA: oa.Pos(), PosB: ob.Pos(),
		FwdA: oa.Forward(), FwdB: ob.Forward(),
	}
}

// FilterSeeds applies the exploration constraint to a pair's seed list and
// returns the kept seeds sorted by PosA. The input order is irrelevant.
func FilterSeeds(seeds []Seed, cfg Config) []Seed {
	if len(seeds) == 0 {
		return nil
	}
	sorted := append([]Seed(nil), seeds...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].PosA != sorted[j].PosA {
			return sorted[i].PosA < sorted[j].PosA
		}
		return sorted[i].PosB < sorted[j].PosB
	})
	var minDist uint32
	switch cfg.Mode {
	case OneSeed:
		return sorted[:1]
	case MinDistance:
		minDist = uint32(cfg.MinDist)
	case AllSeeds:
		minDist = uint32(cfg.K)
	default:
		panic(fmt.Sprintf("overlap: unknown seed mode %d", cfg.Mode))
	}
	kept := sorted[:1]
	for _, s := range sorted[1:] {
		if s.PosA-kept[len(kept)-1].PosA >= minDist {
			kept = append(kept, s)
			if cfg.MaxSeeds > 0 && len(kept) >= cfg.MaxSeeds {
				break
			}
		}
	}
	return kept
}
