package overlap

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"dibella/internal/dht"
	"dibella/internal/fastq"
	"dibella/internal/kmer"
	"dibella/internal/spmd"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: 0},
		{K: 17, MinDist: -1},
		{K: 17, MaxSeeds: -2},
	}
	for i, cfg := range bad {
		c := cfg
		if err := (&c).setDefaults(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	good := Config{K: 17}
	if err := (&good).setDefaults(); err != nil || good.MinDist != 1000 {
		t.Errorf("defaults: %+v err=%v", good, err)
	}
}

func TestSeedSameStrand(t *testing.T) {
	if !(Seed{FwdA: true, FwdB: true}).SameStrand() {
		t.Error("ff should be same strand")
	}
	if (Seed{FwdA: true, FwdB: false}).SameStrand() {
		t.Error("fr should not be same strand")
	}
}

func TestTaskOwnerMatchesAlgorithm1(t *testing.T) {
	owner := func(r uint32) int { return int(r) } // identity for inspection
	cases := []struct {
		ra, rb uint32
		want   int
	}{
		// ra even and ra > rb+1 -> owner(ra)
		{4, 1, 4},
		// ra even but ra <= rb+1 -> owner(rb)
		{4, 3, 3},
		{4, 9, 9},
		// ra odd and ra < rb+1 -> owner(ra)
		{3, 7, 3},
		{3, 3 - 1 + 1, 3}, // ra < rb+1 with rb=3: 3 < 4 -> owner(ra)
		// ra odd and ra >= rb+1 -> owner(rb)
		{7, 2, 2},
	}
	for _, c := range cases {
		if got := oddEvenOwner(c.ra, c.rb, owner); got != c.want {
			t.Errorf("taskOwner(%d,%d) = %d, want %d", c.ra, c.rb, got, c.want)
		}
	}
}

// Property: the chosen owner always owns one of the two reads.
func TestTaskOwnerLocality(t *testing.T) {
	f := func(ra, rb uint32, pRaw uint8) bool {
		p := int(pRaw)%8 + 1
		owner := func(r uint32) int { return int(r) % p }
		for _, cfg := range []Config{
			{Policy: PolicyOddEven},
			{Policy: PolicyHashed},
			{Policy: PolicyLongerRead, ReadLen: func(r uint32) int { return int(r % 97) }},
		} {
			got := cfg.taskOwner(ra, rb, owner)
			if got != owner(ra) && got != owner(rb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTaskOwnerBalance(t *testing.T) {
	// For uniformly random pairs, the heuristic should route a near-equal
	// number of tasks to each rank.
	const p = 8
	const n = 40000
	owner := func(r uint32) int { return int(r) % p }
	counts := make([]int, p)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		ra, rb := rng.Uint32()%100000, rng.Uint32()%100000
		if ra == rb {
			continue
		}
		counts[oddEvenOwner(ra, rb, owner)]++
	}
	for r, c := range counts {
		frac := float64(c) * p / n
		if frac < 0.85 || frac > 1.15 {
			t.Errorf("rank %d receives %.2fx its fair share", r, frac)
		}
	}
}

func TestNormalize(t *testing.T) {
	msg := PairMsg{RA: 9, RB: 3,
		PFA: dht.MakeOcc(9, 100, true).PosFlag,
		PFB: dht.MakeOcc(3, 50, false).PosFlag}
	pair, seed := normalize(msg)
	if pair.A != 3 || pair.B != 9 {
		t.Errorf("pair = %+v", pair)
	}
	if seed.PosA != 50 || seed.PosB != 100 || seed.FwdA || !seed.FwdB {
		t.Errorf("seed = %+v", seed)
	}
}

func TestFilterSeedsOneSeed(t *testing.T) {
	seeds := []Seed{{PosA: 500}, {PosA: 10}, {PosA: 100}}
	kept := FilterSeeds(seeds, Config{K: 17, Mode: OneSeed})
	if len(kept) != 1 || kept[0].PosA != 10 {
		t.Errorf("kept = %+v", kept)
	}
}

func TestFilterSeedsMinDistance(t *testing.T) {
	seeds := []Seed{
		{PosA: 0}, {PosA: 400}, {PosA: 999}, {PosA: 1000}, {PosA: 2500},
	}
	kept := FilterSeeds(seeds, Config{K: 17, Mode: MinDistance, MinDist: 1000})
	want := []uint32{0, 1000, 2500}
	if len(kept) != len(want) {
		t.Fatalf("kept %d seeds: %+v", len(kept), kept)
	}
	for i, w := range want {
		if kept[i].PosA != w {
			t.Errorf("kept[%d].PosA = %d, want %d", i, kept[i].PosA, w)
		}
	}
}

func TestFilterSeedsAllSeeds(t *testing.T) {
	seeds := []Seed{
		{PosA: 0}, {PosA: 5}, {PosA: 17}, {PosA: 30}, {PosA: 46},
	}
	kept := FilterSeeds(seeds, Config{K: 17, Mode: AllSeeds})
	want := []uint32{0, 17, 46}
	if len(kept) != len(want) {
		t.Fatalf("kept %d seeds: %+v", len(kept), kept)
	}
	for i, w := range want {
		if kept[i].PosA != w {
			t.Errorf("kept[%d].PosA = %d, want %d", i, kept[i].PosA, w)
		}
	}
}

func TestFilterSeedsMaxSeedsCap(t *testing.T) {
	var seeds []Seed
	for i := 0; i < 100; i++ {
		seeds = append(seeds, Seed{PosA: uint32(i * 2000)})
	}
	kept := FilterSeeds(seeds, Config{K: 17, Mode: MinDistance, MinDist: 1000, MaxSeeds: 5})
	if len(kept) != 5 {
		t.Errorf("cap ignored: kept %d", len(kept))
	}
	if FilterSeeds(nil, Config{K: 17}) != nil {
		t.Error("empty seeds should filter to nil")
	}
}

// Property: filtered seeds are sorted, respect spacing, and form a subset
// of the input.
func TestFilterSeedsInvariants(t *testing.T) {
	f := func(raw []uint16, mode uint8) bool {
		cfg := Config{K: 17, MinDist: 300, Mode: SeedMode(mode % 3)}
		seeds := make([]Seed, len(raw))
		inSet := make(map[uint32]bool)
		for i, r := range raw {
			seeds[i] = Seed{PosA: uint32(r), PosB: uint32(r) + 7}
			inSet[uint32(r)] = true
		}
		kept := FilterSeeds(seeds, cfg)
		if len(seeds) == 0 {
			return kept == nil
		}
		if len(kept) == 0 {
			return false
		}
		var dist uint32
		switch cfg.Mode {
		case OneSeed:
			return len(kept) == 1 && inSet[kept[0].PosA]
		case MinDistance:
			dist = 300
		case AllSeeds:
			dist = 17
		}
		for i, s := range kept {
			if !inSet[s.PosA] {
				return false
			}
			if i > 0 && s.PosA-kept[i-1].PosA < dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// buildTasks runs the dht + overlap stages over p ranks and returns all
// tasks merged, with the per-rank counts.
func buildTasks(t *testing.T, seqs [][]byte, p int, cfg Config) ([]Task, []Stats) {
	t.Helper()
	return buildTasksWith(t, seqs, p, cfg, 50)
}

// buildTasksWith is buildTasks with an explicit frequency cutoff.
func buildTasksWith(t *testing.T, seqs [][]byte, p int, cfg Config, maxFreq int) ([]Task, []Stats) {
	t.Helper()
	recs := make([]*fastq.Record, len(seqs))
	for i, s := range seqs {
		recs[i] = &fastq.Record{Name: fmt.Sprintf("r%d", i), Seq: s}
	}
	store := fastq.NewReadStore(recs, p)
	var mu sync.Mutex
	var all []Task
	allStats := make([]Stats, p)
	err := spmd.Run(p, func(c *spmd.Comm) error {
		start, end := store.LocalIDs(c.Rank())
		local := dht.LocalReads{IDStart: start}
		for id := start; id < end; id++ {
			local.Seqs = append(local.Seqs, store.Seq(id))
		}
		part, _, err := dht.Build(c, nil, local, dht.Config{K: cfg.K, MaxFreq: maxFreq})
		if err != nil {
			return err
		}
		tasks, st, err := Run(c, nil, part, store.Owner, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		all = append(all, tasks...)
		allStats[c.Rank()] = st
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return all, allStats
}

// naivePairs computes the expected pair set sequentially: all read pairs
// sharing at least one retained k-mer.
func naivePairs(seqs [][]byte, k, maxFreq int) map[Pair]bool {
	occs := make(map[kmer.Kmer][]uint32)
	for id, s := range seqs {
		for _, ex := range kmer.ExtractAll(s, k, uint32(id)) {
			occs[ex.Kmer] = append(occs[ex.Kmer], ex.Occ.ReadID)
		}
	}
	pairs := make(map[Pair]bool)
	for _, reads := range occs {
		if len(reads) < 2 || len(reads) > maxFreq {
			continue
		}
		for i := 0; i < len(reads); i++ {
			for j := i + 1; j < len(reads); j++ {
				a, b := reads[i], reads[j]
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				pairs[Pair{a, b}] = true
			}
		}
	}
	return pairs
}

func overlappingReads(seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	template := make([]byte, 4000)
	for i := range template {
		template[i] = "ACGT"[rng.Intn(4)]
	}
	var seqs [][]byte
	for i := 0; i+600 <= len(template); i += 250 {
		seqs = append(seqs, template[i:i+600])
	}
	return seqs
}

func TestOverlapMatchesNaive(t *testing.T) {
	seqs := overlappingReads(1)
	const k = 17
	want := naivePairs(seqs, k, 50)
	if len(want) == 0 {
		t.Fatal("no expected pairs")
	}
	for _, p := range []int{1, 2, 4} {
		tasks, _ := buildTasks(t, seqs, p, Config{K: k, Mode: AllSeeds})
		got := make(map[Pair]bool)
		for _, task := range tasks {
			if got[task.Pair] {
				t.Fatalf("p=%d: pair %+v consolidated on two ranks", p, task.Pair)
			}
			got[task.Pair] = true
			if len(task.Seeds) == 0 {
				t.Fatalf("p=%d: pair %+v has no seeds", p, task.Pair)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("p=%d: %d pairs, want %d", p, len(got), len(want))
		}
		for pr := range want {
			if !got[pr] {
				t.Fatalf("p=%d: missing pair %+v", p, pr)
			}
		}
	}
}

func TestOneSeedYieldsSingleSeedTasks(t *testing.T) {
	seqs := overlappingReads(2)
	tasks, st := buildTasks(t, seqs, 3, Config{K: 17, Mode: OneSeed})
	if len(tasks) == 0 {
		t.Fatal("no tasks")
	}
	for _, task := range tasks {
		if len(task.Seeds) != 1 {
			t.Fatalf("one-seed task has %d seeds", len(task.Seeds))
		}
	}
	var kept, dropped int64
	for _, s := range st {
		kept += s.SeedsKept
		dropped += s.SeedsDropped
	}
	if kept != int64(len(tasks)) {
		t.Errorf("SeedsKept=%d, tasks=%d", kept, len(tasks))
	}
	if dropped == 0 {
		t.Error("adjacent shared k-mers should have been dropped")
	}
}

func TestSeedModesOrdering(t *testing.T) {
	// More permissive modes keep at least as many seeds.
	seqs := overlappingReads(3)
	count := func(mode SeedMode, minDist int) int64 {
		_, st := buildTasks(t, seqs, 2, Config{K: 17, Mode: mode, MinDist: minDist})
		var kept int64
		for _, s := range st {
			kept += s.SeedsKept
		}
		return kept
	}
	one := count(OneSeed, 0)
	dist := count(MinDistance, 300)
	all := count(AllSeeds, 0)
	if !(one <= dist && dist <= all) {
		t.Errorf("seed counts not ordered: one=%d dist=%d all=%d", one, dist, all)
	}
	if one == all {
		t.Error("expected AllSeeds to keep more seeds than OneSeed on dense overlaps")
	}
}

func TestTasksSortedDeterministically(t *testing.T) {
	seqs := overlappingReads(4)
	for trial := 0; trial < 2; trial++ {
		tasks, _ := buildTasks(t, seqs, 4, Config{K: 17, Mode: OneSeed})
		for i := 1; i < len(tasks); i++ {
			a, b := tasks[i-1].Pair, tasks[i].Pair
			if a.A > b.A || (a.A == b.A && a.B >= b.B) {
				// Tasks from different ranks were merged; only per-rank
				// order is guaranteed. Check per-rank monotonicity is not
				// possible after the merge, so just check pairs are unique.
				seen := make(map[Pair]bool)
				for _, task := range tasks {
					if seen[task.Pair] {
						t.Fatal("duplicate pair across ranks")
					}
					seen[task.Pair] = true
				}
				return
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	seqs := overlappingReads(5)
	_, st := buildTasks(t, seqs, 2, Config{K: 17, Mode: AllSeeds})
	var generated, received int64
	for _, s := range st {
		generated += s.PairsGenerated
		received += s.TasksReceived
	}
	if generated == 0 {
		t.Fatal("no pairs generated")
	}
	if generated != received {
		t.Errorf("generated %d != received %d", generated, received)
	}
}
