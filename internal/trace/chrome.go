package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event JSON (the "JSON Array Format" with a traceEvents
// wrapper), the interchange format Perfetto and chrome://tracing read.
// The file carries two process lanes so the real and the modeled
// timelines sit side by side:
//
//	pid 0 — wall clock: ts is walltime.Monotonic in microseconds
//	pid 1 — modeled clock: ts is the rank's virtual_seconds in microseconds
//
// Within each process lane, tid is the rank, so a P-rank run renders as
// P parallel tracks per clock. Flow events (ph "s"/"f") link a posted
// exchange on one rank to its delivery on another.

// chromeEvent is one JSON trace event. Field order is fixed by the
// struct, so output is deterministic given the same snapshot.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	chromeCat = "dibella"
	wallPid   = 0
	virtPid   = 1
)

// WriteChrome renders the gathered per-rank snapshots as one Chrome
// trace-event JSON document.
func WriteChrome(w io.Writer, ranks []RankEvents) error {
	var evs []chromeEvent
	meta := func(pid int, name string) {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	meta(wallPid, "wall clock")
	meta(virtPid, "modeled clock")
	for _, re := range ranks {
		lane := fmt.Sprintf("rank %d", re.Rank)
		for _, pid := range []int{wallPid, virtPid} {
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: re.Rank,
				Args: map[string]any{"name": lane},
			})
		}
	}
	for _, re := range ranks {
		for _, e := range re.Events {
			base := chromeEvent{
				Name: e.Name, Cat: chromeCat, Ph: string(e.Phase), Tid: re.Rank,
			}
			if e.Flow != 0 {
				base.ID = fmt.Sprintf("0x%x", e.Flow)
				if e.Phase == PhaseFlowIn {
					// Bind the flow finish to the enclosing span so
					// Perfetto draws the arrow into the wait slice.
					base.BP = "e"
				}
			}
			args := map[string]any{}
			if e.Arg != 0 {
				args["arg"] = e.Arg
			}
			if e.Tag != "" {
				args["tag"] = e.Tag
			}

			wall := base
			wall.Pid = wallPid
			wall.Ts = float64(e.Wall.Nanoseconds()) / 1e3
			if len(args) > 0 || e.Phase != PhaseEnd {
				// Cross-reference the other clock from each lane.
				wa := map[string]any{"virtual_s": e.Virt}
				for k, v := range args {
					wa[k] = v
				}
				wall.Args = wa
			}
			evs = append(evs, wall)

			virt := base
			virt.Pid = virtPid
			virt.Ts = e.Virt * 1e6
			if len(args) > 0 || e.Phase != PhaseEnd {
				va := map[string]any{"wall_s": e.Wall.Seconds()}
				for k, v := range args {
					va[k] = v
				}
				virt.Args = va
			}
			evs = append(evs, virt)
		}
		if re.Dropped > 0 {
			evs = append(evs, chromeEvent{
				Name: "trace.dropped", Cat: chromeCat, Ph: string(PhaseInstant),
				Pid: wallPid, Tid: re.Rank,
				Args: map[string]any{"arg": re.Dropped},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": evs})
}
