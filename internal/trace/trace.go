// Package trace is the observability plane: a per-rank flight recorder
// and a process-wide metrics registry. It is always compiled and off by
// default.
//
// Tracing is observability-only by construction. Events carry the wall
// clock (via walltime.Monotonic) and the modeled virtual clock, but the
// recorder never feeds either back into the run: PAF output and
// virtual_seconds are byte/bit-identical with tracing on or off, and
// the pipeline tests enforce that on both transports.
//
// The recorder is a fixed-capacity ring per rank. When the ring wraps,
// the oldest events are overwritten (and counted as dropped) — a flight
// recorder keeps the end of the story, which is what post-mortems want.
// Emit methods are nil-receiver-safe, so a hot-path call site is a bare
// one-liner: with tracing disabled Rec returns nil and the call is a
// single predictable branch, no allocation, no lock.
//
// Every event and metric name must be a registered package-level
// constant in the emitting package — dibella-lint's tracename analyzer
// enforces it — so name cardinality stays bounded by the source code,
// never by the workload.
package trace

import (
	"sync"
	"time"

	"dibella/internal/walltime"
)

// Event phases, a subset of the Chrome trace-event phase alphabet.
const (
	PhaseBegin   = 'B' // span begin
	PhaseEnd     = 'E' // span end
	PhaseInstant = 'i' // instantaneous event
	PhaseFlowOut = 's' // flow start: an exchange posted on this rank
	PhaseFlowIn  = 'f' // flow finish: that exchange delivered on a peer
)

// Event is one recorded occurrence. All fields are exported so a
// snapshot travels through the spmd gob collectives unchanged.
type Event struct {
	Name  string        // registered package-level constant
	Phase byte          // one of the Phase* values
	Wall  time.Duration // walltime.Monotonic at emission
	Virt  float64       // the rank's modeled clock at emission, seconds
	Arg   int64         // payload (bytes, rank, count, ...); 0 if unused
	Tag   string        // low-cardinality annotation (tenant, stage, reason)
	Flow  uint64        // flow id linking PhaseFlowOut to PhaseFlowIn; 0 if none
}

// RankEvents is one rank's drained ring: the surviving events in
// emission order plus the count of older events the ring overwrote.
type RankEvents struct {
	Rank    int
	Dropped uint64
	Events  []Event
}

// Recorder is one rank's ring buffer. The zero value is not usable;
// rings are created by Enable and fetched with Rec.
type Recorder struct {
	rank int
	mu   sync.Mutex
	ring []Event
	next uint64 // events ever emitted; next % len(ring) is the write slot
}

// DefaultCapacity is the per-rank ring size Enable(0) selects: at
// ~64 bytes an event, about 4 MiB per rank — hours of stage spans, or
// the last ~30k exchanges of a hot serve loop.
const DefaultCapacity = 1 << 16

var (
	regMu   sync.Mutex
	enabled bool
	recs    []*Recorder
	ringCap int
)

// Enable turns the flight recorder on with the given per-rank ring
// capacity (events; <= 0 selects DefaultCapacity). Existing rings are
// discarded, so a test can Enable/Disable around a run and observe only
// that run. All ranks of a world must agree on enablement before the
// world forms; the CLI guarantees that by shipping -trace in the
// config blob every worker adopts.
func Enable(capacity int) {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	regMu.Lock()
	enabled = true
	ringCap = capacity
	recs = nil
	regMu.Unlock()
}

// Disable turns the recorder off and frees every ring. Outstanding
// *Recorder handles keep working (their ring stays reachable) but new
// Rec calls return nil.
func Disable() {
	regMu.Lock()
	enabled = false
	recs = nil
	regMu.Unlock()
}

// Enabled reports whether the flight recorder is on. It is not derived
// from rank, so collectives may be gated on it.
func Enabled() bool {
	regMu.Lock()
	defer regMu.Unlock()
	return enabled
}

// Rec returns rank's recorder, creating its ring on first use, or nil
// when tracing is disabled. Call sites cache the result for the life of
// a world; the nil result makes every emit a no-op.
func Rec(rank int) *Recorder {
	if rank < 0 {
		return nil
	}
	regMu.Lock()
	defer regMu.Unlock()
	if !enabled {
		return nil
	}
	for rank >= len(recs) {
		recs = append(recs, nil)
	}
	if recs[rank] == nil {
		recs[rank] = &Recorder{rank: rank, ring: make([]Event, ringCap)}
	}
	return recs[rank]
}

// Snapshot copies rank's ring in emission order. It returns an empty
// snapshot when tracing is disabled or the rank never recorded. Taking
// the snapshot does not stop the recorder; callers snapshot before the
// teardown gather so the gather's own events stay out of the file.
func Snapshot(rank int) RankEvents {
	regMu.Lock()
	var r *Recorder
	if rank >= 0 && rank < len(recs) {
		r = recs[rank]
	}
	regMu.Unlock()
	snap := RankEvents{Rank: rank}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	n := r.next
	size := uint64(len(r.ring))
	if n > size {
		snap.Dropped = n - size
		start := n % size
		snap.Events = make([]Event, 0, size)
		snap.Events = append(snap.Events, r.ring[start:]...)
		snap.Events = append(snap.Events, r.ring[:start]...)
	} else {
		snap.Events = append(snap.Events, r.ring[:n]...)
	}
	r.mu.Unlock()
	return snap
}

// emit appends one event, overwriting the oldest when the ring is full.
// Safe for concurrent use: serve-mode admission runs on connection
// goroutines while the SPMD loop records batch spans on the same rank.
func (r *Recorder) emit(name string, phase byte, virt float64, arg int64, tag string, flow uint64) {
	if r == nil {
		return
	}
	w := walltime.Monotonic()
	r.mu.Lock()
	r.ring[r.next%uint64(len(r.ring))] = Event{
		Name: name, Phase: phase, Wall: w, Virt: virt, Arg: arg, Tag: tag, Flow: flow,
	}
	r.next++
	r.mu.Unlock()
}

// Begin opens a span. Spans on one rank must nest (close in LIFO
// order); the Chrome writer emits them as B/E pairs.
func (r *Recorder) Begin(name string, virt float64) { r.emit(name, PhaseBegin, virt, 0, "", 0) }

// BeginTag opens a span with a low-cardinality annotation (tenant,
// stage name, ...).
func (r *Recorder) BeginTag(name string, virt float64, tag string) {
	r.emit(name, PhaseBegin, virt, 0, tag, 0)
}

// End closes the innermost open span of name. arg carries the span's
// payload (typically bytes moved); 0 if none.
func (r *Recorder) End(name string, virt float64, arg int64) {
	r.emit(name, PhaseEnd, virt, arg, "", 0)
}

// Instant records a point event with a numeric payload.
func (r *Recorder) Instant(name string, virt float64, arg int64) {
	r.emit(name, PhaseInstant, virt, arg, "", 0)
}

// InstantTag records a point event with a low-cardinality annotation.
func (r *Recorder) InstantTag(name string, virt float64, tag string) {
	r.emit(name, PhaseInstant, virt, 0, tag, 0)
}

// FlowOut records the producing end of a flow — an exchange posted on
// this rank. id must match the consuming FlowIn on the peer; the spmd
// layer derives it from the collective post order, which every rank
// observes identically.
func (r *Recorder) FlowOut(name string, virt float64, id uint64) {
	r.emit(name, PhaseFlowOut, virt, 0, "", id)
}

// FlowIn records the consuming end of a flow — the posted exchange
// delivered (waited on) by this rank.
func (r *Recorder) FlowIn(name string, virt float64, id uint64) {
	r.emit(name, PhaseFlowIn, virt, 0, "", id)
}
