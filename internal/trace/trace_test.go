package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Test-local names; production names live as constants in the emitting
// packages (tracename analyzer).
const (
	tname    = "test.span"
	tflow    = "test.flow"
	tcounter = "test_events_total"
	tcvec    = "test_rejections_total"
	tgauge   = "test_depth"
	thist    = "test_latency_seconds"
)

func TestDisabledRecorderIsNil(t *testing.T) {
	Disable()
	if r := Rec(3); r != nil {
		t.Fatalf("Rec with tracing disabled = %v, want nil", r)
	}
	// Every emit must be a no-op on a nil receiver, not a panic.
	var r *Recorder
	r.Begin(tname, 0)
	r.End(tname, 1, 42)
	r.Instant(tname, 0, 0)
	r.InstantTag(tname, 0, "tag")
	r.FlowOut(tflow, 0, 1)
	r.FlowIn(tflow, 0, 1)
	if s := Snapshot(3); len(s.Events) != 0 || s.Dropped != 0 {
		t.Fatalf("disabled snapshot = %+v, want empty", s)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	Enable(4)
	defer Disable()
	r := Rec(0)
	if r == nil {
		t.Fatal("Rec returned nil with tracing enabled")
	}
	for i := 0; i < 10; i++ {
		r.Instant(tname, float64(i), int64(i))
	}
	s := Snapshot(0)
	if s.Dropped != 6 {
		t.Errorf("Dropped = %d, want 6", s.Dropped)
	}
	if len(s.Events) != 4 {
		t.Fatalf("kept %d events, want 4", len(s.Events))
	}
	// A flight recorder keeps the end of the story, in order.
	for i, e := range s.Events {
		if want := int64(6 + i); e.Arg != want {
			t.Errorf("event %d: Arg = %d, want %d", i, e.Arg, want)
		}
	}
}

func TestEnableResetsRings(t *testing.T) {
	Enable(8)
	Rec(0).Instant(tname, 0, 1)
	Enable(8)
	defer Disable()
	if s := Snapshot(0); len(s.Events) != 0 {
		t.Fatalf("re-Enable kept %d stale events", len(s.Events))
	}
}

func TestWriteChrome(t *testing.T) {
	Enable(64)
	defer Disable()
	r0, r1 := Rec(0), Rec(1)
	r0.Begin(tname, 0.5)
	r0.FlowOut(tflow, 0.5, 7)
	r0.End(tname, 1.0, 128)
	r1.FlowIn(tflow, 1.5, 7)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, []RankEvents{Snapshot(0), Snapshot(1)}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var wallB, virtB, flows, meta int
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		pid, _ := e["pid"].(float64)
		switch {
		case ph == "M":
			meta++
		case ph == "B" && pid == 0:
			wallB++
		case ph == "B" && pid == 1:
			virtB++
		case ph == "s" || ph == "f":
			flows++
			if id, _ := e["id"].(string); id != "0x7" {
				t.Errorf("flow event id = %v, want 0x7", e["id"])
			}
		}
	}
	if wallB != 1 || virtB != 1 {
		t.Errorf("begin events per lane: wall %d, virt %d, want 1 each", wallB, virtB)
	}
	if flows != 4 { // s and f, each in both clock lanes
		t.Errorf("flow events = %d, want 4", flows)
	}
	if meta < 6 { // 2 process names + 2 ranks × 2 lanes
		t.Errorf("metadata events = %d, want >= 6", meta)
	}
}

func TestPrometheusExposition(t *testing.T) {
	c := RegisterCounter(tcounter, "events seen")
	cv := RegisterCounterVec(tcvec, "rejections by reason", "reason")
	g := RegisterGauge(tgauge, "queue depth")
	h := RegisterHistogram(thist, "latency", []float64{0.1, 1})

	before := c.Value()
	c.Add(3)
	cv.With("queue-full").Add(2)
	cv.With("bad-tenant").Inc()
	g.Set(5)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	// Registration is idempotent: same collector back, values intact.
	if again := RegisterCounter(tcounter, "events seen"); again.Value() != before+3 {
		t.Errorf("re-registered counter = %d, want %d", again.Value(), before+3)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE " + tcounter + " counter\n",
		"# TYPE " + tgauge + " gauge\n",
		"# TYPE " + thist + " histogram\n",
		tcvec + `{reason="bad-tenant"} 1` + "\n",
		tcvec + `{reason="queue-full"} 2` + "\n",
		tgauge + " 5\n",
		thist + `_bucket{le="0.1"} 1` + "\n",
		thist + `_bucket{le="1"} 2` + "\n",
		thist + `_bucket{le="+Inf"} 3` + "\n",
		thist + "_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Label values render sorted: bad-tenant before queue-full.
	if strings.Index(out, `"bad-tenant"`) > strings.Index(out, `"queue-full"`) {
		t.Error("vec children not sorted by label value")
	}
}
