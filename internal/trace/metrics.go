package trace

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// The metrics side of the observability plane: a small always-on
// registry of counters, gauges, and histograms with Prometheus text
// exposition. Unlike the flight recorder there is no enable switch —
// an atomic add is cheap enough to pay unconditionally, and serve mode
// wants the counters live before anyone decides to scrape them.
//
// Metric names, like trace event names, must be registered
// package-level constants (tracename analyzer); label values must be
// low-cardinality by construction — sentinel rejection reasons, ranks,
// stage names — never request-derived strings.

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	counts  []int64   // per-bucket (non-cumulative) counts, len(bounds)+1
	sum     float64
	samples int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.samples++
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// DefBuckets are the default latency buckets, in seconds.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// vec is a labeled family of children, created on first use per value.
type vec[T any] struct {
	mu       sync.Mutex
	children map[string]*T
}

func (v *vec[T]) with(value string) *T {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.children == nil {
		v.children = make(map[string]*T)
	}
	c, ok := v.children[value]
	if !ok {
		c = new(T)
		v.children[value] = c
	}
	return c
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct {
	label string
	vec[Counter]
}

// With returns the child counter for the label value, creating it on
// first use. Label values must be bounded: sentinel names, ranks.
func (v *CounterVec) With(value string) *Counter { return v.with(value) }

// WithRank is With over a rank number — the registry's only sanctioned
// dynamic label, bounded by the world size.
func (v *CounterVec) WithRank(rank int) *Counter { return v.with(strconv.Itoa(rank)) }

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct {
	label string
	vec[Gauge]
}

// With returns the child gauge for the label value.
func (v *GaugeVec) With(value string) *Gauge { return v.with(value) }

// WithRank is With over a rank number — the registry's only sanctioned
// dynamic label, bounded by the world size.
func (v *GaugeVec) WithRank(rank int) *Gauge { return v.with(strconv.Itoa(rank)) }

type collector struct {
	name string
	help string
	kind string // "counter", "gauge", "histogram"
	c    *Counter
	cv   *CounterVec
	g    *Gauge
	gv   *GaugeVec
	h    *Histogram
}

var (
	metricsMu sync.Mutex
	metrics   = map[string]*collector{}
)

// register is idempotent per name: re-registering returns the existing
// collector, so package-level var initializers stay order-independent
// across tests. A kind mismatch is a programming error and panics.
func register(name, help, kind string) *collector {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	if c, ok := metrics[name]; ok {
		if c.kind != kind {
			panic(fmt.Sprintf("trace: metric %q re-registered as %s, was %s", name, kind, c.kind))
		}
		return c
	}
	c := &collector{name: name, help: help, kind: kind}
	metrics[name] = c
	return c
}

// RegisterCounter registers (or returns) the named counter.
func RegisterCounter(name, help string) *Counter {
	c := register(name, help, "counter")
	if c.c == nil {
		c.c = &Counter{}
	}
	return c.c
}

// RegisterCounterVec registers (or returns) the named counter family.
func RegisterCounterVec(name, help, label string) *CounterVec {
	c := register(name, help, "counter")
	if c.cv == nil {
		c.cv = &CounterVec{label: label}
	}
	return c.cv
}

// RegisterGauge registers (or returns) the named gauge.
func RegisterGauge(name, help string) *Gauge {
	c := register(name, help, "gauge")
	if c.g == nil {
		c.g = &Gauge{}
	}
	return c.g
}

// RegisterGaugeVec registers (or returns) the named gauge family.
func RegisterGaugeVec(name, help, label string) *GaugeVec {
	c := register(name, help, "gauge")
	if c.gv == nil {
		c.gv = &GaugeVec{label: label}
	}
	return c.gv
}

// RegisterHistogram registers (or returns) the named histogram. buckets
// are ascending upper bounds; nil selects DefBuckets.
func RegisterHistogram(name, help string, buckets []float64) *Histogram {
	c := register(name, help, "histogram")
	if c.h == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		bounds := append([]float64(nil), buckets...)
		c.h = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
	}
	return c.h
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format, sorted by name (and label value within a
// family) so output is deterministic.
func WritePrometheus(w io.Writer) error {
	metricsMu.Lock()
	names := make([]string, 0, len(metrics))
	for n := range metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	cols := make([]*collector, len(names))
	for i, n := range names {
		cols[i] = metrics[n]
	}
	metricsMu.Unlock()

	for _, c := range cols {
		if c.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", c.name, c.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", c.name, c.kind); err != nil {
			return err
		}
		var err error
		switch {
		case c.c != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", c.name, c.c.Value())
		case c.g != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", c.name, c.g.Value())
		case c.h != nil:
			err = writeHistogram(w, c.name, c.h)
		}
		if err != nil {
			return err
		}
		if err := writeVec(w, c); err != nil {
			return err
		}
	}
	return nil
}

func writeVec(w io.Writer, c *collector) error {
	var label string
	var values []string
	lookup := func(v string) int64 { return 0 }
	switch {
	case c.cv != nil:
		label = c.cv.label
		c.cv.mu.Lock()
		for v := range c.cv.children {
			values = append(values, v)
		}
		c.cv.mu.Unlock()
		lookup = func(v string) int64 { return c.cv.With(v).Value() }
	case c.gv != nil:
		label = c.gv.label
		c.gv.mu.Lock()
		for v := range c.gv.children {
			values = append(values, v)
		}
		c.gv.mu.Unlock()
		lookup = func(v string) int64 { return c.gv.With(v).Value() }
	default:
		return nil
	}
	sort.Strings(values)
	for _, v := range values {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", c.name, label, v, lookup(v)); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]int64(nil), h.counts...)
	sum, samples := h.sum, h.samples
	h.mu.Unlock()
	cum := int64(0)
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum); err != nil {
			return err
		}
	}
	cum += counts[len(bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, samples)
	return err
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// MetricsHandler serves /metrics in the Prometheus text format. The
// handler reads atomics and per-collector locks only — never a
// collective — so a scrape can never stall or reorder the SPMD loop.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w)
	})
}

// NewObservabilityMux returns an http.Handler exposing /metrics plus
// the pprof endpoints under /debug/pprof/. A private mux, not
// http.DefaultServeMux, so importing this package never mutates global
// HTTP state.
func NewObservabilityMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
