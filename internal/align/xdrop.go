package align

import "fmt"

// XDrop performs seed-and-extend alignment: the k bases at s[seedS:seedS+k]
// and t[seedT:seedT+k] are assumed to match exactly (they are a shared
// k-mer), and the alignment is extended outward in both directions with
// x-drop pruning: any DP cell scoring more than x below the best score seen
// is abandoned, so extension over divergent sequence terminates quickly.
//
// This reimplements the greedy x-drop extension of Zhang, Schwartz, Wagner
// & Miller (2000) — the algorithm behind SeqAn's extendSeed that diBELLA
// calls — over antidiagonals with a shrinking active window.
func XDrop(s, t []byte, seedS, seedT, k int, sc Scoring, x int) Result {
	if k <= 0 || seedS < 0 || seedT < 0 || seedS+k > len(s) || seedT+k > len(t) {
		panic(fmt.Sprintf("align: bad seed (s:%d t:%d k:%d |s|:%d |t|:%d)",
			seedS, seedT, k, len(s), len(t)))
	}
	if x < 0 {
		panic(fmt.Sprintf("align: negative x-drop %d", x))
	}
	right := extend(s[seedS+k:], t[seedT+k:], sc, x, false)
	left := extend(s[:seedS], t[:seedT], sc, x, true)
	return Result{
		Score:  k*sc.Match + right.score + left.score,
		SStart: seedS - left.aLen,
		SEnd:   seedS + k + right.aLen,
		TStart: seedT - left.bLen,
		TEnd:   seedT + k + right.bLen,
		Cells:  right.cells + left.cells,
	}
}

// SeedMatches reports whether the claimed seed is an exact k-base match,
// a precondition XDrop assumes (shared k-mers guarantee it after strand
// normalization).
func SeedMatches(s, t []byte, seedS, seedT, k int) bool {
	if seedS < 0 || seedT < 0 || seedS+k > len(s) || seedT+k > len(t) {
		return false
	}
	for i := 0; i < k; i++ {
		if s[seedS+i] != t[seedT+i] {
			return false
		}
	}
	return true
}

type extension struct {
	score      int
	aLen, bLen int // extension extents achieving the best score
	cells      int64
}

// extend grows an alignment from position (0,0) of a and b (or of their
// reversals when rev is true), maximizing the extension score under x-drop
// pruning. Unlike local alignment the score may go negative (down to
// best-x) before recovering.
func extend(a, b []byte, sc Scoring, x int, rev bool) extension {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return extension{}
	}
	at := func(i int) byte {
		if rev {
			return a[n-i]
		}
		return a[i-1]
	}
	bt := func(j int) byte {
		if rev {
			return b[m-j]
		}
		return b[j-1]
	}

	// Three rolling antidiagonals indexed by i, with valid windows.
	prev2 := make([]int, n+1)
	prev1 := make([]int, n+1)
	cur := make([]int, n+1)
	lo2, hi2 := 0, -1 // d-2 window (empty initially)
	lo1, hi1 := 0, 0  // d-1 window: the single cell (0,0)
	prev1[0] = 0

	val := func(arr []int, i, lo, hi int) int {
		if i < lo || i > hi {
			return negInf
		}
		return arr[i]
	}

	best := extension{}
	bestScore := 0
	for d := 1; d <= n+m; d++ {
		lo := lo1
		if d-m > lo {
			lo = d - m
		}
		hi := hi1 + 1
		if d < hi {
			hi = d
		}
		if n < hi {
			hi = n
		}
		if lo > hi {
			break
		}
		pruneBelow := bestScore - x
		for i := lo; i <= hi; i++ {
			j := d - i
			v := negInf
			if j >= 1 {
				if left := val(prev1, i, lo1, hi1); left != negInf && left+sc.Gap > v {
					v = left + sc.Gap
				}
			}
			if i >= 1 {
				if up := val(prev1, i-1, lo1, hi1); up != negInf && up+sc.Gap > v {
					v = up + sc.Gap
				}
			}
			if i >= 1 && j >= 1 {
				if diag := val(prev2, i-1, lo2, hi2); diag != negInf {
					if w := diag + sc.sub(at(i), bt(j)); w > v {
						v = w
					}
				}
			}
			best.cells++
			if v < pruneBelow {
				v = negInf
			}
			cur[i] = v
			if v > bestScore {
				bestScore = v
				best.score = v
				best.aLen, best.bLen = i, j
			}
		}
		// Shrink the active window to surviving cells.
		for lo <= hi && cur[lo] == negInf {
			lo++
		}
		for hi >= lo && cur[hi] == negInf {
			hi--
		}
		if lo > hi {
			break
		}
		prev2, prev1, cur = prev1, cur, prev2
		lo2, hi2 = lo1, hi1
		lo1, hi1 = lo, hi
	}
	return best
}
