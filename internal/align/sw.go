package align

// SmithWaterman computes the optimal local alignment score between s and t
// with linear gap costs, in O(|s|·|t|) time and O(|t|) space. It is the
// reference kernel the cheaper kernels are validated against.
func SmithWaterman(s, t []byte, sc Scoring) Result {
	if len(s) == 0 || len(t) == 0 {
		return Result{}
	}
	prev := make([]int, len(t)+1)
	cur := make([]int, len(t)+1)
	best := Result{}
	for i := 1; i <= len(s); i++ {
		cur[0] = 0
		for j := 1; j <= len(t); j++ {
			v := prev[j-1] + sc.sub(s[i-1], t[j-1])
			if up := prev[j] + sc.Gap; up > v {
				v = up
			}
			if left := cur[j-1] + sc.Gap; left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best.Score {
				best.Score = v
				best.SEnd, best.TEnd = i, j
			}
		}
		prev, cur = cur, prev
	}
	best.Cells = int64(len(s)) * int64(len(t))
	// Start positions require traceback; the score-only kernel reports the
	// end coordinates and leaves starts at 0 when not requested.
	return best
}

// SmithWatermanTrace computes the optimal local alignment with a full
// traceback. It keeps the whole DP matrix (O(|s|·|t|) memory) and is meant
// for tests, examples, and result inspection rather than the hot path.
func SmithWatermanTrace(s, t []byte, sc Scoring) (Result, Transcript) {
	if len(s) == 0 || len(t) == 0 {
		return Result{}, nil
	}
	n, m := len(s), len(t)
	h := make([][]int, n+1)
	for i := range h {
		h[i] = make([]int, m+1)
	}
	best := Result{}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			v := h[i-1][j-1] + sc.sub(s[i-1], t[j-1])
			if up := h[i-1][j] + sc.Gap; up > v {
				v = up
			}
			if left := h[i][j-1] + sc.Gap; left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			h[i][j] = v
			if v > best.Score {
				best.Score = v
				best.SEnd, best.TEnd = i, j
			}
		}
	}
	// Traceback from the best cell to the first zero.
	var rev Transcript
	i, j := best.SEnd, best.TEnd
	for i > 0 && j > 0 && h[i][j] > 0 {
		v := h[i][j]
		switch {
		case v == h[i-1][j-1]+sc.sub(s[i-1], t[j-1]):
			if s[i-1] == t[j-1] {
				rev = append(rev, OpMatch)
			} else {
				rev = append(rev, OpMismatch)
			}
			i, j = i-1, j-1
		case v == h[i-1][j]+sc.Gap:
			rev = append(rev, OpInsert)
			i--
		case v == h[i][j-1]+sc.Gap:
			rev = append(rev, OpDelete)
			j--
		default:
			panic("align: inconsistent traceback")
		}
	}
	best.SStart, best.TStart = i, j
	best.Cells = int64(n) * int64(m)
	// Reverse into forward order.
	tr := make(Transcript, len(rev))
	for k := range rev {
		tr[k] = rev[len(rev)-1-k]
	}
	return best, tr
}
