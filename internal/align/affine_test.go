package align

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAffineScoringValidate(t *testing.T) {
	good := AffineScoring{Match: 1, Mismatch: -1, GapOpen: -2, GapExtend: -1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []AffineScoring{
		{Match: 0, Mismatch: -1, GapOpen: -2, GapExtend: -1},
		{Match: 1, Mismatch: 0, GapOpen: -2, GapExtend: -1},
		{Match: 1, Mismatch: -1, GapOpen: 1, GapExtend: -1},
		{Match: 1, Mismatch: -1, GapOpen: -2, GapExtend: 0},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("scheme %d validated", i)
		}
	}
}

// Property: with zero open cost, affine SW equals linear SW exactly.
func TestAffineReducesToLinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeq(rng, rng.Intn(50)+1)
		u := randomSeq(rng, rng.Intn(50)+1)
		lin := SmithWaterman(s, u, DefaultScoring)
		aff := AffineSW(s, u, DefaultScoring.Linear())
		return lin.Score == aff.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: charging gap opening can only lower the score.
func TestAffineOpenPenaltyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeq(rng, rng.Intn(60)+5)
		u := mutate(rng, s, 0.25)
		free := AffineSW(s, u, AffineScoring{Match: 1, Mismatch: -1, GapOpen: 0, GapExtend: -1})
		costly := AffineSW(s, u, AffineScoring{Match: 1, Mismatch: -1, GapOpen: -3, GapExtend: -1})
		return costly.Score <= free.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAffinePrefersLongGaps(t *testing.T) {
	// One 4-base gap vs four 1-base gaps: the affine scheme must prefer
	// keeping the gap contiguous.
	s := []byte("AAAATTTTGGGG")
	u := []byte("AAAAGGGG") // TTTT deleted
	sc := AffineScoring{Match: 2, Mismatch: -3, GapOpen: -4, GapExtend: -1}
	r := AffineSW(s, u, sc)
	// 8 matches (16) minus one gap open (4) + 4 extends (4) = 8.
	if r.Score != 8 {
		t.Errorf("score = %d, want 8", r.Score)
	}
}

func TestAffineSelfAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randomSeq(rng, 80)
	sc := AffineScoring{Match: 1, Mismatch: -1, GapOpen: -5, GapExtend: -1}
	r := AffineSW(s, s, sc)
	if r.Score != len(s) {
		t.Errorf("self-alignment = %d, want %d", r.Score, len(s))
	}
}

func TestAffineEmpty(t *testing.T) {
	sc := DefaultScoring.Linear()
	if AffineSW(nil, []byte("ACGT"), sc).Score != 0 {
		t.Error("empty s should score 0")
	}
	if AffineSW([]byte("ACGT"), nil, sc).Score != 0 {
		t.Error("empty t should score 0")
	}
}

// Property: affine SW is symmetric.
func TestAffineSymmetric(t *testing.T) {
	sc := AffineScoring{Match: 2, Mismatch: -2, GapOpen: -3, GapExtend: -1}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeq(rng, rng.Intn(40)+1)
		u := randomSeq(rng, rng.Intn(40)+1)
		return AffineSW(s, u, sc).Score == AffineSW(u, s, sc).Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAffineSW1k(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	s := randomSeq(rng, 1000)
	u := randomSeq(rng, 1000)
	sc := AffineScoring{Match: 1, Mismatch: -1, GapOpen: -2, GapExtend: -1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AffineSW(s, u, sc)
	}
}
