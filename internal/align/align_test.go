package align

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScoringValidate(t *testing.T) {
	if err := DefaultScoring.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Scoring{
		{0, -1, -1}, {1, 0, -1}, {1, -1, 0}, {-1, -1, -1},
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("%+v validated", sc)
		}
	}
}

func TestTranscript(t *testing.T) {
	tr := Transcript{OpMatch, OpMatch, OpMismatch, OpMatch, OpDelete, OpDelete, OpInsert}
	m, x, i, d := tr.Counts()
	if m != 3 || x != 1 || i != 1 || d != 2 {
		t.Errorf("counts = %d %d %d %d", m, x, i, d)
	}
	if got := tr.Identity(); got != 3.0/7 {
		t.Errorf("identity = %v", got)
	}
	if got := tr.String(); got != "2M1X1M2D1I" {
		t.Errorf("String = %q", got)
	}
	var empty Transcript
	if empty.Identity() != 0 || empty.String() != "" {
		t.Error("empty transcript misbehaved")
	}
}

func TestSmithWatermanKnown(t *testing.T) {
	cases := []struct {
		s, t  string
		score int
	}{
		{"ACGT", "ACGT", 4},
		{"AAAA", "TTTT", 0},
		{"ACGT", "AGGT", 2}, // AC + GT runs, or 3 matches - 1 mismatch
		{"", "ACGT", 0},
		{"ACGT", "", 0},
	}
	for _, c := range cases {
		got := SmithWaterman([]byte(c.s), []byte(c.t), DefaultScoring)
		if got.Score != c.score {
			t.Errorf("SW(%q,%q) = %d, want %d", c.s, c.t, got.Score, c.score)
		}
	}
	// The classic worked example (Wikipedia's Smith-Waterman article):
	// ACACACTA vs AGCACACA with +2/-1/-1 scores 12.
	got := SmithWaterman([]byte("ACACACTA"), []byte("AGCACACA"), Scoring{2, -1, -1})
	if got.Score != 12 {
		t.Errorf("classic example = %d, want 12", got.Score)
	}
}

// Property: aligning a sequence against itself scores len*match.
func TestSWSelfAlignment(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%60 + 1
		s := randomSeq(rand.New(rand.NewSource(seed)), n)
		r := SmithWaterman(s, s, DefaultScoring)
		return r.Score == n && r.SEnd == n && r.TEnd == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Smith-Waterman is symmetric in its arguments.
func TestSWSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeq(rng, rng.Intn(50)+1)
		u := randomSeq(rng, rng.Intn(50)+1)
		return SmithWaterman(s, u, DefaultScoring).Score ==
			SmithWaterman(u, s, DefaultScoring).Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSWTraceConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		s := randomSeq(rng, rng.Intn(60)+5)
		u := mutate(rng, s, 0.2)
		res, tr := SmithWatermanTrace(s, u, DefaultScoring)
		plain := SmithWaterman(s, u, DefaultScoring)
		if res.Score != plain.Score {
			t.Fatalf("trace score %d != plain score %d", res.Score, plain.Score)
		}
		// Recompute the score from the transcript.
		m, x, ins, del := tr.Counts()
		sc := DefaultScoring
		recomputed := m*sc.Match + x*sc.Mismatch + (ins+del)*sc.Gap
		if recomputed != res.Score {
			t.Fatalf("transcript score %d != %d (%s)", recomputed, res.Score, tr)
		}
		// Spans must match transcript op counts.
		if res.SEnd-res.SStart != m+x+ins {
			t.Fatalf("s-span %d != %d", res.SEnd-res.SStart, m+x+ins)
		}
		if res.TEnd-res.TStart != m+x+del {
			t.Fatalf("t-span %d != %d", res.TEnd-res.TStart, m+x+del)
		}
		// Walk the transcript against the sequences.
		i, j := res.SStart, res.TStart
		for _, op := range tr {
			switch op {
			case OpMatch:
				if s[i] != u[j] {
					t.Fatal("match op over differing bases")
				}
				i, j = i+1, j+1
			case OpMismatch:
				if s[i] == u[j] {
					t.Fatal("mismatch op over equal bases")
				}
				i, j = i+1, j+1
			case OpInsert:
				i++
			case OpDelete:
				j++
			}
		}
		if i != res.SEnd || j != res.TEnd {
			t.Fatalf("transcript walked to (%d,%d), want (%d,%d)", i, j, res.SEnd, res.TEnd)
		}
	}
}

// Property: a wide band reproduces full Smith-Waterman.
func TestBandedEqualsFullSW(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeq(rng, rng.Intn(40)+1)
		u := randomSeq(rng, rng.Intn(40)+1)
		full := SmithWaterman(s, u, DefaultScoring)
		banded := Banded(s, u, DefaultScoring, len(s)+len(u))
		return banded.Score == full.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: narrowing the band never raises the score.
func TestBandedMonotoneInBand(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeq(rng, rng.Intn(40)+5)
		u := mutate(rng, s, 0.15)
		prev := -1
		for _, band := range []int{0, 2, 5, 10, 100} {
			cur := Banded(s, u, DefaultScoring, band).Score
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBandedCellsBounded(t *testing.T) {
	s := bytes.Repeat([]byte("ACGT"), 100)
	r := Banded(s, s, DefaultScoring, 5)
	if r.Cells > int64(len(s))*11 {
		t.Errorf("banded computed %d cells, want <= %d", r.Cells, len(s)*11)
	}
	if r.Score != len(s) {
		t.Errorf("banded self-alignment score %d", r.Score)
	}
}

func TestXDropIdenticalStrings(t *testing.T) {
	s := []byte("ACGTTGCAACGTAGCTAGGCATTCAG")
	for _, seed := range []int{0, 5, len(s) - 7} {
		r := XDrop(s, s, seed, seed, 7, DefaultScoring, 100)
		if r.Score != len(s) {
			t.Errorf("seed@%d: score %d, want %d", seed, r.Score, len(s))
		}
		if r.SStart != 0 || r.SEnd != len(s) || r.TStart != 0 || r.TEnd != len(s) {
			t.Errorf("seed@%d: span [%d,%d)/[%d,%d)", seed, r.SStart, r.SEnd, r.TStart, r.TEnd)
		}
	}
}

func TestXDropPanics(t *testing.T) {
	s := []byte("ACGTACGT")
	cases := []struct{ ss, st, k, x int }{
		{-1, 0, 4, 10}, {0, -1, 4, 10}, {5, 0, 4, 10}, {0, 5, 4, 10},
		{0, 0, 0, 10}, {0, 0, 4, -1},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("XDrop(%+v) did not panic", c)
				}
			}()
			XDrop(s, s, c.ss, c.st, c.k, DefaultScoring, c.x)
		}()
	}
}

func TestSeedMatches(t *testing.T) {
	s := []byte("AACGTT")
	u := []byte("CCCGTC")
	if !SeedMatches(s, u, 2, 2, 3) { // CGT vs CGT
		t.Error("true seed rejected")
	}
	if SeedMatches(s, u, 0, 0, 3) {
		t.Error("false seed accepted")
	}
	if SeedMatches(s, u, 4, 4, 3) {
		t.Error("out-of-bounds seed accepted")
	}
}

// naiveExtend is an unpruned extension DP used as ground truth for XDrop
// with a very large x.
func naiveExtend(a, b []byte, sc Scoring) int {
	n, m := len(a), len(b)
	h := make([][]int, n+1)
	for i := range h {
		h[i] = make([]int, m+1)
	}
	best := 0
	for i := 0; i <= n; i++ {
		for j := 0; j <= m; j++ {
			if i == 0 && j == 0 {
				continue
			}
			v := negInf
			if i > 0 && j > 0 {
				v = h[i-1][j-1] + sc.sub(a[i-1], b[j-1])
			}
			if i > 0 {
				if w := h[i-1][j] + sc.Gap; w > v {
					v = w
				}
			}
			if j > 0 {
				if w := h[i][j-1] + sc.Gap; w > v {
					v = w
				}
			}
			h[i][j] = v
			if v > best {
				best = v
			}
		}
	}
	return best
}

// Property: with an effectively infinite x, XDrop equals the unpruned
// extension DP on both sides of the seed.
func TestXDropMatchesNaiveExtension(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 5
		core := randomSeq(rng, k)
		sLeft, sRight := randomSeq(rng, rng.Intn(30)), randomSeq(rng, rng.Intn(30))
		tLeft, tRight := randomSeq(rng, rng.Intn(30)), randomSeq(rng, rng.Intn(30))
		s := concat(sLeft, core, sRight)
		u := concat(tLeft, core, tRight)
		got := XDrop(s, u, len(sLeft), len(tLeft), k, DefaultScoring, 1<<30)
		want := k*1 +
			naiveExtend(sRight, tRight, DefaultScoring) +
			naiveExtend(reversed(sLeft), reversed(tLeft), DefaultScoring)
		return got.Score == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the score never falls below the bare seed score, and spans
// always contain the seed.
func TestXDropLowerBoundAndSpans(t *testing.T) {
	f := func(seed int64, xRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 6
		core := randomSeq(rng, k)
		s := concat(randomSeq(rng, rng.Intn(40)), core, randomSeq(rng, rng.Intn(40)))
		u := concat(randomSeq(rng, rng.Intn(40)), core, randomSeq(rng, rng.Intn(40)))
		seedS := bytes.Index(s, core)
		seedT := bytes.Index(u, core)
		x := int(xRaw) % 50
		r := XDrop(s, u, seedS, seedT, k, DefaultScoring, x)
		return r.Score >= k &&
			r.SStart <= seedS && r.SEnd >= seedS+k &&
			r.TStart <= seedT && r.TEnd >= seedT+k &&
			r.SStart >= 0 && r.SEnd <= len(s) &&
			r.TStart >= 0 && r.TEnd <= len(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestXDropEarlyTermination(t *testing.T) {
	// On divergent sequences the production x (BELLA's default, 7) must
	// compute far fewer cells than the full DP — the mechanism behind
	// alignment-stage load imbalance. (With +1/-1/-1 scoring and a large x
	// the extension over random DNA is supercritical and would keep
	// growing; small x is what keeps it linear.)
	rng := rand.New(rand.NewSource(3))
	k := 17
	core := randomSeq(rng, k)
	s := concat(randomSeq(rng, 2000), core, randomSeq(rng, 2000))
	u := concat(randomSeq(rng, 2000), core, randomSeq(rng, 2000))
	seedS := bytes.Index(s, core)
	seedT := bytes.Index(u, core)
	r := XDrop(s, u, seedS, seedT, k, DefaultScoring, 7)
	full := int64(len(s)) * int64(len(u))
	if r.Cells > full/100 {
		t.Errorf("x-drop computed %d cells (full DP %d): no early exit", r.Cells, full)
	}
	// Harsher penalties kill divergent extensions almost immediately.
	harsh := XDrop(s, u, seedS, seedT, k, Scoring{1, -2, -2}, 7)
	if harsh.Cells > 10000 {
		t.Errorf("harsh-scoring x-drop computed %d cells", harsh.Cells)
	}
}

func TestXDropRecoversTrueOverlapScore(t *testing.T) {
	// Two noisy reads of the same template, seeded at a shared exact
	// k-mer, should extend across most of the overlap.
	rng := rand.New(rand.NewSource(9))
	template := randomSeq(rng, 3000)
	a := mutate(rng, template, 0.10)
	b := mutate(rng, template, 0.10)
	// Find a shared exact 17-mer to use as the seed.
	k := 17
	seedA, seedB := -1, -1
	for i := 0; i+k <= len(a) && seedA < 0; i++ {
		if j := bytes.Index(b, a[i:i+k]); j >= 0 {
			seedA, seedB = i, j
		}
	}
	if seedA < 0 {
		t.Skip("no shared 17-mer in this sample")
	}
	r := XDrop(a, b, seedA, seedB, k, DefaultScoring, 50)
	span := r.SEnd - r.SStart
	if span < len(a)/4 {
		t.Errorf("aligned span %d too short for 10%%-error overlap of %d", span, len(a))
	}
	if r.AlignedLen() <= 0 {
		t.Error("non-positive aligned length")
	}
}

func TestResultAlignedLen(t *testing.T) {
	r := Result{SStart: 10, SEnd: 110, TStart: 0, TEnd: 90}
	if r.AlignedLen() != 95 {
		t.Errorf("AlignedLen = %d", r.AlignedLen())
	}
}

func randomSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

// mutate applies substitutions/indels at the given rate.
func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	out := make([]byte, 0, len(s))
	for _, b := range s {
		if rng.Float64() >= rate {
			out = append(out, b)
			continue
		}
		switch rng.Intn(3) {
		case 0: // substitution
			out = append(out, "ACGT"[rng.Intn(4)])
		case 1: // insertion
			out = append(out, "ACGT"[rng.Intn(4)], b)
		case 2: // deletion
		}
	}
	if len(out) == 0 {
		out = append(out, 'A')
	}
	return out
}

func concat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func reversed(s []byte) []byte {
	out := make([]byte, len(s))
	for i, b := range s {
		out[len(s)-1-i] = b
	}
	return out
}

func BenchmarkXDropSimilar(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	template := randomSeq(rng, 10000)
	s := mutate(rng, template, 0.075)
	u := mutate(rng, template, 0.075)
	k := 17
	seedS, seedT := -1, -1
	for i := 0; i+k <= len(s) && seedS < 0; i += 13 {
		if j := bytes.Index(u, s[i:i+k]); j >= 0 {
			seedS, seedT = i, j
		}
	}
	if seedS < 0 {
		b.Skip("no shared seed")
	}
	b.ResetTimer()
	var cells int64
	for i := 0; i < b.N; i++ {
		r := XDrop(s, u, seedS, seedT, k, DefaultScoring, 30)
		cells += r.Cells
	}
	b.ReportMetric(float64(cells)/float64(b.N), "cells/op")
}

func BenchmarkXDropDivergent(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	k := 17
	core := randomSeq(rng, k)
	s := concat(randomSeq(rng, 5000), core, randomSeq(rng, 5000))
	u := concat(randomSeq(rng, 5000), core, randomSeq(rng, 5000))
	seedS := bytes.Index(s, core)
	seedT := bytes.Index(u, core)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XDrop(s, u, seedS, seedT, k, DefaultScoring, 30)
	}
}

func BenchmarkSmithWaterman1k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	s := randomSeq(rng, 1000)
	u := randomSeq(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SmithWaterman(s, u, DefaultScoring)
	}
}
