package align

import "fmt"

// AffineScoring extends the linear scheme with affine gaps: a gap of
// length L costs GapOpen + L·GapExtend. The paper leaves kernel choice
// open ("the relationship between the choice of pairwise alignment kernel
// and overall load balancing" is future work, §8); this Gotoh (1982)
// implementation provides the standard alternative kernel for that study.
type AffineScoring struct {
	Match     int
	Mismatch  int
	GapOpen   int // negative; charged once per gap
	GapExtend int // negative; charged per gap base
}

// Validate reports whether the scheme is sane.
func (sc AffineScoring) Validate() error {
	if sc.Match <= 0 {
		return fmt.Errorf("align: match score %d must be positive", sc.Match)
	}
	if sc.Mismatch >= 0 {
		return fmt.Errorf("align: mismatch score %d must be negative", sc.Mismatch)
	}
	if sc.GapOpen > 0 || sc.GapExtend >= 0 {
		return fmt.Errorf("align: gap penalties (%d,%d) must be non-positive/negative",
			sc.GapOpen, sc.GapExtend)
	}
	return nil
}

// Linear converts a linear scheme into the equivalent affine scheme
// (open = 0, extend = gap).
func (sc Scoring) Linear() AffineScoring {
	return AffineScoring{Match: sc.Match, Mismatch: sc.Mismatch,
		GapOpen: 0, GapExtend: sc.Gap}
}

func (sc AffineScoring) sub(a, b byte) int {
	if a == b {
		return sc.Match
	}
	return sc.Mismatch
}

// AffineSW computes optimal local alignment with affine gap costs
// (Gotoh's algorithm) in O(|s|·|t|) time and O(|t|) space.
func AffineSW(s, t []byte, sc AffineScoring) Result {
	if len(s) == 0 || len(t) == 0 {
		return Result{}
	}
	m := len(t)
	// h: best score ending at (i,j); e: best ending in a gap in s
	// (horizontal); f: best ending in a gap in t (vertical).
	hPrev := make([]int, m+1)
	hCur := make([]int, m+1)
	fPrev := make([]int, m+1)
	fCur := make([]int, m+1)
	for j := range fPrev {
		fPrev[j] = negInf
	}
	best := Result{}
	for i := 1; i <= len(s); i++ {
		hCur[0] = 0
		fCur[0] = negInf
		e := negInf // horizontal gap state for the current row
		for j := 1; j <= m; j++ {
			// Extend or open a horizontal gap (consumes t[j-1]).
			e = max2(e+sc.GapExtend, hCur[j-1]+sc.GapOpen+sc.GapExtend)
			// Extend or open a vertical gap (consumes s[i-1]).
			fCur[j] = max2(fPrev[j]+sc.GapExtend, hPrev[j]+sc.GapOpen+sc.GapExtend)
			v := hPrev[j-1] + sc.sub(s[i-1], t[j-1])
			if e > v {
				v = e
			}
			if fCur[j] > v {
				v = fCur[j]
			}
			if v < 0 {
				v = 0
			}
			hCur[j] = v
			if v > best.Score {
				best.Score = v
				best.SEnd, best.TEnd = i, j
			}
		}
		hPrev, hCur = hCur, hPrev
		fPrev, fCur = fCur, fPrev
	}
	best.Cells = int64(len(s)) * int64(m)
	return best
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
