package align

// Banded computes Smith-Waterman restricted to cells within `band` of the
// main diagonal (|i-j| <= band). With band >= max(|s|,|t|) it equals full
// Smith-Waterman; smaller bands trade optimality for O(band·|s|) time, the
// "banded Smith-Waterman" improvement the paper cites for read-to-read
// alignment.
func Banded(s, t []byte, sc Scoring, band int) Result {
	if len(s) == 0 || len(t) == 0 || band < 0 {
		return Result{}
	}
	m := len(t)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	best := Result{}
	var cells int64
	for i := 1; i <= len(s); i++ {
		lo := i - band
		if lo < 1 {
			lo = 1
		}
		hi := i + band
		if hi > m {
			hi = m
		}
		if lo > hi {
			break
		}
		// Cells outside the band act as -inf barriers.
		if lo-1 >= 0 {
			cur[lo-1] = negInf
		}
		cur[0] = 0
		for j := lo; j <= hi; j++ {
			v := prev[j-1] + sc.sub(s[i-1], t[j-1])
			if prev[j-1] == negInf {
				v = negInf
			}
			if up := prev[j] + sc.Gap; prev[j] != negInf && up > v {
				v = up
			}
			if left := cur[j-1] + sc.Gap; cur[j-1] != negInf && left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			cells++
			if v > best.Score {
				best.Score = v
				best.SEnd, best.TEnd = i, j
			}
		}
		if hi+1 <= m {
			cur[hi+1] = negInf
		}
		prev, cur = cur, prev
		// Reset boundary cells of the reused row: positions outside next
		// row's band are overwritten or marked, but ensure row edges do
		// not leak scores across iterations.
		if lo-1 >= 1 {
			prev[lo-1] = negInf
		}
	}
	best.Cells = cells
	return best
}
