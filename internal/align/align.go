// Package align implements the pairwise-alignment kernels of the pipeline:
// full Smith-Waterman local alignment (the O(|s|·|t|) reference), banded
// Smith-Waterman, and the x-drop seed-and-extend kernel that diBELLA uses
// in production (the paper delegates to SeqAn's implementation of Zhang et
// al. 2000; here it is built from scratch).
//
// X-drop extension is what makes pairwise alignment linear in read length:
// starting from an exactly matching seed, the DP explores antidiagonals
// outward and abandons any cell whose score falls more than X below the
// best seen, so divergent pairs terminate after a constant-ish band. The
// paper's Fig. 8 attributes alignment-stage load imbalance partly to this
// early exit; every kernel here therefore reports the exact number of DP
// cells it computed, which both the machine model and the load-balance
// experiments consume.
package align

import "fmt"

// Scoring is a linear-gap scoring scheme. Match must be positive; Mismatch
// and Gap must be negative (BELLA's defaults are +1/-1/-1).
type Scoring struct {
	Match    int
	Mismatch int
	Gap      int
}

// DefaultScoring is BELLA's +1/-1/-1 scheme.
var DefaultScoring = Scoring{Match: 1, Mismatch: -1, Gap: -1}

// Validate reports whether the scheme is sane.
func (sc Scoring) Validate() error {
	if sc.Match <= 0 {
		return fmt.Errorf("align: match score %d must be positive", sc.Match)
	}
	if sc.Mismatch >= 0 {
		return fmt.Errorf("align: mismatch score %d must be negative", sc.Mismatch)
	}
	if sc.Gap >= 0 {
		return fmt.Errorf("align: gap score %d must be negative", sc.Gap)
	}
	return nil
}

// sub returns the substitution score for aligning bytes a and b.
func (sc Scoring) sub(a, b byte) int {
	if a == b {
		return sc.Match
	}
	return sc.Mismatch
}

// Result describes one pairwise alignment. Coordinate ranges are half-open
// over the original sequences.
type Result struct {
	Score  int
	SStart int
	SEnd   int
	TStart int
	TEnd   int
	// Cells is the number of DP cells the kernel computed: the exact
	// computational cost, used by the machine model and the load-imbalance
	// analysis.
	Cells int64
}

// AlignedLen returns the mean of the two aligned span lengths, the length
// figure reported in overlap records.
func (r Result) AlignedLen() int {
	return ((r.SEnd - r.SStart) + (r.TEnd - r.TStart)) / 2
}

// EditOp is one column of an alignment transcript.
type EditOp byte

// Transcript operations.
const (
	OpMatch    EditOp = 'M'
	OpMismatch EditOp = 'X'
	OpInsert   EditOp = 'I' // base present in s, gap in t
	OpDelete   EditOp = 'D' // gap in s, base present in t
)

// Transcript is an edit transcript between two aligned regions.
type Transcript []EditOp

// Identity returns the fraction of transcript columns that are matches.
func (tr Transcript) Identity() float64 {
	if len(tr) == 0 {
		return 0
	}
	m := 0
	for _, op := range tr {
		if op == OpMatch {
			m++
		}
	}
	return float64(m) / float64(len(tr))
}

// Counts tallies the transcript by operation.
func (tr Transcript) Counts() (match, mismatch, ins, del int) {
	for _, op := range tr {
		switch op {
		case OpMatch:
			match++
		case OpMismatch:
			mismatch++
		case OpInsert:
			ins++
		case OpDelete:
			del++
		}
	}
	return
}

// String renders the transcript compactly (e.g. "5M1X3M2D").
func (tr Transcript) String() string {
	if len(tr) == 0 {
		return ""
	}
	out := make([]byte, 0, len(tr))
	run := 1
	for i := 1; i <= len(tr); i++ {
		if i < len(tr) && tr[i] == tr[i-1] {
			run++
			continue
		}
		out = append(out, []byte(fmt.Sprintf("%d%c", run, tr[i-1]))...)
		run = 1
	}
	return string(out)
}

const negInf = int(-1) << 40
