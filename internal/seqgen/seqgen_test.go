package seqgen

import (
	"math"
	"testing"

	"dibella/internal/dna"
)

func small() Config {
	return Config{
		GenomeLen:   20000,
		Seed:        42,
		Coverage:    20,
		MeanReadLen: 1500,
		MinReadLen:  300,
		ErrorRate:   0.15,
		BothStrands: true,
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{GenomeLen: 0, Coverage: 10, MeanReadLen: 100},
		{GenomeLen: 1000, Coverage: 0, MeanReadLen: 100},
		{GenomeLen: 1000, Coverage: 10, MeanReadLen: 0},
		{GenomeLen: 1000, Coverage: 10, MeanReadLen: 100, ErrorRate: 1.0},
		{GenomeLen: 1000, Coverage: 10, MeanReadLen: 100, ErrorRate: -0.1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reads) != len(b.Reads) {
		t.Fatalf("read counts differ: %d vs %d", len(a.Reads), len(b.Reads))
	}
	for i := range a.Reads {
		if string(a.Reads[i].Seq) != string(b.Reads[i].Seq) {
			t.Fatalf("read %d differs between identically seeded runs", i)
		}
	}
	cfg := small()
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Reads) == len(a.Reads) && string(c.Reads[0].Seq) == string(a.Reads[0].Seq) {
		t.Error("different seeds produced identical output")
	}
}

func TestGenerateCoverageAndLengths(t *testing.T) {
	ds, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	st := ds.Stats()
	depth := float64(st.TotalBases) / float64(ds.Config.GenomeLen)
	if depth < 18 || depth > 24 {
		t.Errorf("realized depth %.1f, want ~20", depth)
	}
	// Errors are insertion-heavy, so emitted reads run slightly longer
	// than templates; allow a generous band around the configured mean.
	if st.MeanLen() < 1000 || st.MeanLen() > 2300 {
		t.Errorf("mean read length %.0f, want ~1500", st.MeanLen())
	}
	if st.MinLen < ds.Config.MinReadLen/2 {
		t.Errorf("min length %d below floor", st.MinLen)
	}
	for i, r := range ds.Reads {
		if !dna.IsValid(r.Seq) {
			t.Fatalf("read %d contains invalid bases", i)
		}
		if len(r.Qual) != len(r.Seq) {
			t.Fatalf("read %d quality length mismatch", i)
		}
	}
}

func TestOriginsConsistent(t *testing.T) {
	ds, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Origins) != len(ds.Reads) {
		t.Fatalf("origins %d != reads %d", len(ds.Origins), len(ds.Reads))
	}
	sawRC := false
	for i, o := range ds.Origins {
		if o.Start < 0 || o.End > ds.Config.GenomeLen || o.Start >= o.End {
			t.Fatalf("origin %d out of bounds: %+v", i, o)
		}
		if o.RC {
			sawRC = true
		}
		// Read length tracks template length within error-rate slack.
		tmplLen := o.End - o.Start
		readLen := len(ds.Reads[i].Seq)
		if math.Abs(float64(readLen-tmplLen)) > 0.35*float64(tmplLen)+20 {
			t.Fatalf("read %d length %d far from template %d", i, readLen, tmplLen)
		}
	}
	if !sawRC {
		t.Error("BothStrands produced no reverse-complement reads")
	}
}

func TestErrorFreeReadsMatchGenome(t *testing.T) {
	cfg := small()
	cfg.ErrorRate = 0
	cfg.BothStrands = false
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ds.Reads {
		o := ds.Origins[i]
		if string(r.Seq) != string(ds.Genome[o.Start:o.End]) {
			t.Fatalf("error-free read %d does not equal its template", i)
		}
	}
}

func TestRCReadMatchesTemplate(t *testing.T) {
	cfg := small()
	cfg.ErrorRate = 0
	cfg.BothStrands = true
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i, r := range ds.Reads {
		o := ds.Origins[i]
		if !o.RC {
			continue
		}
		want := dna.ReverseComplement(ds.Genome[o.Start:o.End])
		if string(r.Seq) != string(want) {
			t.Fatalf("RC read %d does not equal RC of its template", i)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no RC reads to check")
	}
}

func TestErrorRateRealized(t *testing.T) {
	cfg := small()
	cfg.ErrorRate = 0.15
	cfg.BothStrands = false
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Estimate divergence cheaply via length inflation + mismatch count on
	// a crude base-by-base walk; with ins-heavy errors the read diverges
	// from its template, so identity of the naive comparison drops well
	// below 1 but total length stays within ~20%.
	var tmpl, emitted int
	for i := range ds.Reads {
		tmpl += ds.Origins[i].End - ds.Origins[i].Start
		emitted += len(ds.Reads[i].Seq)
	}
	inflation := float64(emitted) / float64(tmpl)
	// ins 53% adds bases, del 35% removes: net +(0.53-0.35)*0.15 ≈ +2.7%.
	if inflation < 1.0 || inflation > 1.08 {
		t.Errorf("length inflation %.3f, want ~1.03", inflation)
	}
}

func TestOverlapArithmetic(t *testing.T) {
	a := Origin{Start: 0, End: 100}
	b := Origin{Start: 50, End: 150}
	c := Origin{Start: 100, End: 200}
	if a.Overlap(b) != 50 || b.Overlap(a) != 50 {
		t.Error("overlap(a,b) != 50")
	}
	if a.Overlap(c) != 0 {
		t.Error("touching intervals should not overlap")
	}
}

func TestTrueOverlaps(t *testing.T) {
	ds, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	const minOv = 500
	pairs := ds.TrueOverlaps(minOv)
	if len(pairs) == 0 {
		t.Fatal("20x coverage produced no true overlaps")
	}
	seen := make(map[[2]uint32]bool)
	for _, p := range pairs {
		if p[0] >= p[1] {
			t.Fatalf("unordered pair %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
		if ds.Origins[p[0]].Overlap(ds.Origins[p[1]]) < minOv {
			t.Fatalf("pair %v overlaps < %d", p, minOv)
		}
	}
	// Cross-check against the quadratic definition.
	want := 0
	for i := range ds.Origins {
		for j := i + 1; j < len(ds.Origins); j++ {
			if ds.Origins[i].Overlap(ds.Origins[j]) >= minOv {
				want++
			}
		}
	}
	if len(pairs) != want {
		t.Errorf("TrueOverlaps found %d pairs, quadratic check found %d", len(pairs), want)
	}
}

func TestRepeatsCreateHighFrequencyKmers(t *testing.T) {
	cfg := small()
	cfg.RepeatLen = 2000
	cfg.RepeatCopies = 6
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Genome) != cfg.GenomeLen {
		t.Fatalf("genome length changed: %d", len(ds.Genome))
	}
}

func TestPresets(t *testing.T) {
	for _, cfg := range []Config{EColi30x(0.01, 1), EColi100x(0.01, 1), EColi30xSample(0.01, 1)} {
		ds, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds.Reads) == 0 {
			t.Fatal("preset generated no reads")
		}
	}
	c30 := EColi30x(0.01, 1)
	c100 := EColi100x(0.01, 1)
	if c100.Coverage <= c30.Coverage || c100.MeanReadLen >= c30.MeanReadLen {
		t.Error("100x preset should have higher depth and shorter reads")
	}
	// Out-of-range scale falls back to full size.
	if EColi30x(0, 1).GenomeLen != int(4.64e6) {
		t.Error("scale=0 should mean full genome")
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := small()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
