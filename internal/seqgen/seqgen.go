// Package seqgen synthesizes long-read sequencing data sets with known
// ground truth, standing in for the paper's PacBio E. coli inputs
// (substitution documented in DESIGN.md).
//
// The generator builds a reference genome (uniform random bases, optionally
// seeded with exact repeat copies to exercise the high-frequency k-mer
// filter), then samples reads: start positions uniform over the genome,
// lengths from a clamped log-normal (long-read length distributions are
// heavy-tailed), strand chosen per read, and PacBio-like errors applied at
// a configurable rate split across insertions, deletions, and
// substitutions (PacBio RS II error profiles are insertion-dominated).
//
// Every read records its true genome interval and strand, so integration
// tests can measure overlap-detection recall against ground truth.
package seqgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dibella/internal/fastq"
)

// Config controls data-set synthesis.
type Config struct {
	GenomeLen int   // reference length in bases
	Seed      int64 // RNG seed (generation is fully deterministic)

	// Repeats: RepeatCopies extra copies of RepeatLen-base segments are
	// pasted over the genome, creating high-frequency k-mers.
	RepeatLen    int
	RepeatCopies int

	Coverage    float64 // target mean per-base depth d
	MeanReadLen int     // mean read length L
	MinReadLen  int     // floor on sampled lengths
	LenSigma    float64 // sigma of the log-normal length distribution

	ErrorRate float64 // total per-base error probability e
	// Error-type mix; normalized internally. PacBio-like default when all
	// three are zero: 12% sub / 53% ins / 35% del.
	SubFrac, InsFrac, DelFrac float64

	BothStrands bool // sample reverse-complement reads with probability 1/2

	// NamePrefix is prepended to every generated read name, so reads from
	// different generator invocations (e.g. an indexed corpus and a serve
	// query set) stay distinguishable after mixing.
	NamePrefix string
}

// Origin is the ground-truth placement of one read.
type Origin struct {
	Start int  // genome offset of the read's first template base
	End   int  // one past the last template base
	RC    bool // read is the reverse complement of the template interval
}

// Overlap returns the length of genomic overlap between two origins
// (0 when disjoint).
func (o Origin) Overlap(p Origin) int {
	lo, hi := o.Start, o.End
	if p.Start > lo {
		lo = p.Start
	}
	if p.End < hi {
		hi = p.End
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Dataset is a synthesized read set with its reference and ground truth.
type Dataset struct {
	Genome  []byte
	Reads   []*fastq.Record
	Origins []Origin
	Config  Config
}

// Stats summarizes the generated reads.
func (d *Dataset) Stats() fastq.Stats { return fastq.Summarize(d.Reads) }

// TrueOverlaps returns all read-ID pairs (a<b) whose genomic intervals
// overlap by at least minOverlap bases — the ground truth an overlapper
// should recall.
func (d *Dataset) TrueOverlaps(minOverlap int) [][2]uint32 {
	// Sweep by sorted start position: O(n log n + output).
	type iv struct {
		start, end int
		id         uint32
	}
	ivs := make([]iv, len(d.Origins))
	for i, o := range d.Origins {
		ivs[i] = iv{o.Start, o.End, uint32(i)}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	var out [][2]uint32
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			// Sorted by start, so once read j starts too late to overlap
			// read i by minOverlap, no later read can either.
			if ivs[j].start+minOverlap > ivs[i].end {
				break
			}
			end := ivs[i].end
			if ivs[j].end < end {
				end = ivs[j].end
			}
			if end-ivs[j].start < minOverlap {
				continue // read j ends too early
			}
			a, b := ivs[i].id, ivs[j].id
			if a > b {
				a, b = b, a
			}
			out = append(out, [2]uint32{a, b})
		}
	}
	return out
}

// Generate synthesizes a data set from the configuration.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.GenomeLen <= 0 {
		return nil, fmt.Errorf("seqgen: genome length %d must be positive", cfg.GenomeLen)
	}
	if cfg.Coverage <= 0 {
		return nil, fmt.Errorf("seqgen: coverage %v must be positive", cfg.Coverage)
	}
	if cfg.MeanReadLen <= 0 {
		return nil, fmt.Errorf("seqgen: mean read length %d must be positive", cfg.MeanReadLen)
	}
	if cfg.ErrorRate < 0 || cfg.ErrorRate >= 1 {
		return nil, fmt.Errorf("seqgen: error rate %v out of [0,1)", cfg.ErrorRate)
	}
	if cfg.MinReadLen <= 0 {
		cfg.MinReadLen = cfg.MeanReadLen / 10
		if cfg.MinReadLen < 1 {
			cfg.MinReadLen = 1
		}
	}
	if cfg.LenSigma <= 0 {
		cfg.LenSigma = 0.35
	}
	if cfg.SubFrac == 0 && cfg.InsFrac == 0 && cfg.DelFrac == 0 {
		cfg.SubFrac, cfg.InsFrac, cfg.DelFrac = 0.12, 0.53, 0.35
	}
	tot := cfg.SubFrac + cfg.InsFrac + cfg.DelFrac
	cfg.SubFrac /= tot
	cfg.InsFrac /= tot
	cfg.DelFrac /= tot

	rng := rand.New(rand.NewSource(cfg.Seed))
	genome := randomGenome(rng, cfg.GenomeLen, cfg.RepeatLen, cfg.RepeatCopies)

	targetBases := float64(cfg.GenomeLen) * cfg.Coverage
	ds := &Dataset{Genome: genome, Config: cfg}
	var emitted float64
	// Log-normal length parameters: mean of LN(mu, sigma) is
	// exp(mu + sigma^2/2) = MeanReadLen.
	mu := math.Log(float64(cfg.MeanReadLen)) - cfg.LenSigma*cfg.LenSigma/2
	for emitted < targetBases {
		n := int(math.Exp(rng.NormFloat64()*cfg.LenSigma + mu))
		if n < cfg.MinReadLen {
			n = cfg.MinReadLen
		}
		if n > cfg.GenomeLen {
			n = cfg.GenomeLen
		}
		start := rng.Intn(cfg.GenomeLen - n + 1)
		template := genome[start : start+n]
		rc := cfg.BothStrands && rng.Intn(2) == 1
		seq := applyErrors(rng, template, cfg)
		if rc {
			reverseComplement(seq)
		}
		id := len(ds.Reads)
		ds.Reads = append(ds.Reads, &fastq.Record{
			Name: fmt.Sprintf("%ssim_%06d/%d_%d", cfg.NamePrefix, id, start, start+n),
			Seq:  seq,
			Qual: constantQual(len(seq)),
		})
		ds.Origins = append(ds.Origins, Origin{Start: start, End: start + n, RC: rc})
		emitted += float64(n)
	}
	return ds, nil
}

// randomGenome builds the reference, optionally pasting repeat copies.
func randomGenome(rng *rand.Rand, n, repLen, repCopies int) []byte {
	g := make([]byte, n)
	for i := range g {
		g[i] = "ACGT"[rng.Intn(4)]
	}
	if repLen > 0 && repCopies > 0 && repLen < n {
		src := rng.Intn(n - repLen + 1)
		segment := append([]byte(nil), g[src:src+repLen]...)
		for c := 0; c < repCopies; c++ {
			dst := rng.Intn(n - repLen + 1)
			copy(g[dst:], segment)
		}
	}
	return g
}

// applyErrors corrupts a template with the configured error mix.
func applyErrors(rng *rand.Rand, template []byte, cfg Config) []byte {
	if cfg.ErrorRate == 0 {
		return append([]byte(nil), template...)
	}
	out := make([]byte, 0, len(template)+len(template)/8)
	for i := 0; i < len(template); i++ {
		if rng.Float64() >= cfg.ErrorRate {
			out = append(out, template[i])
			continue
		}
		r := rng.Float64()
		switch {
		case r < cfg.SubFrac:
			out = append(out, substitute(rng, template[i]))
		case r < cfg.SubFrac+cfg.InsFrac:
			// Insertion: emit a random base, then the true base.
			out = append(out, "ACGT"[rng.Intn(4)], template[i])
		default:
			// Deletion: skip the template base.
		}
	}
	return out
}

func substitute(rng *rand.Rand, b byte) byte {
	for {
		c := "ACGT"[rng.Intn(4)]
		if c != b {
			return c
		}
	}
}

func reverseComplement(s []byte) {
	comp := map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A'}
	i, j := 0, len(s)-1
	for i < j {
		s[i], s[j] = comp[s[j]], comp[s[i]]
		i, j = i+1, j-1
	}
	if i == j {
		s[i] = comp[s[i]]
	}
}

func constantQual(n int) []byte {
	q := make([]byte, n)
	for i := range q {
		q[i] = 'I'
	}
	return q
}

// EColi30x returns a configuration mirroring the paper's first data set —
// E. coli MG1655 (4.64 Mbp) at 30x depth, PacBio RS II P5-C3, 16,890 reads
// of mean length 9,958 bp — at a genome-scale factor in (0,1] so tests and
// benches can run reduced instances. Error rate 15% is PacBio RS II
// raw-read typical (the paper's 5-35% band).
//
// Scaling law: the genome shrinks linearly with scale while read lengths
// shrink by sqrt(scale). Shrinking only the genome would leave full-length
// reads covering large genome fractions, making the overlap graph
// near-complete (quadratic pair blowup) — nothing like the real workload,
// where each read truly overlaps ~2·coverage others. The square-root
// compromise keeps per-read overlap degree realistic at tractable sizes
// and recovers the paper's exact numbers at scale 1.
func EColi30x(scale float64, seed int64) Config {
	return Config{
		GenomeLen:    scaledGenome(scale),
		Seed:         seed,
		Coverage:     30,
		MeanReadLen:  scaledLen(9958, scale),
		MinReadLen:   scaledLen(1000, scale),
		ErrorRate:    0.15,
		BothStrands:  true,
		RepeatLen:    scaledLen(5000, scale),
		RepeatCopies: 4, // E. coli carries ~5-copy rRNA operon repeats
	}
}

// EColi100x mirrors the paper's second data set: 100x depth, PacBio RS II
// P4-C2, 91,394 reads of mean length 6,934 bp. The same scaling law as
// EColi30x applies.
func EColi100x(scale float64, seed int64) Config {
	cfg := EColi30x(scale, seed)
	cfg.Coverage = 100
	cfg.MeanReadLen = scaledLen(6934, scale)
	return cfg
}

// EColi30xSample mirrors Table 2's "E. coli 30x (sample)": a reduced-depth
// sample of the 30x data set.
func EColi30xSample(scale float64, seed int64) Config {
	cfg := EColi30x(scale, seed)
	cfg.Coverage = 8
	return cfg
}

func scaledGenome(scale float64) int {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	return int(4.64e6 * scale)
}

func scaledLen(full int, scale float64) int {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	n := int(float64(full) * math.Sqrt(scale))
	if n < 60 {
		n = 60 // floor keeps k-mer extraction meaningful at extreme scales
	}
	return n
}
