// Package kmer implements fixed-length DNA substrings (k-mers) packed two
// bits per base into a uint64, supporting k in [1,32]. It is the "seed"
// end of the pipeline's seed→exchange→overlap path: everything the DHT
// exchanges, the Bloom filter tests, and the overlap stage walks starts as
// a k-mer extracted here.
//
// diBELLA parses every read into its overlapping k-mers (typically k=17
// for long-read data), hashes them, and distributes them across ranks by
// hash ownership. This package provides the packed representation, reverse
// complementation, canonicalization (min of a k-mer and its reverse
// complement, so that both strands of the genome map to one key), rolling
// extraction from ASCII reads that restarts across non-ACGT bytes, and the
// 64-bit mixing hash used for rank assignment and Bloom-filter indexing.
//
// The package also implements (w,k)-minimizer selection (Minimizers,
// MinimizerCount; Roberts et al. 2004, the scheme Minimap2 builds on):
// per window of w consecutive k-mers, only the minimum-hash one is kept.
// On random sequence the expected density is 2/(w+1) (MinimizerDensity),
// and two reads sharing an exact run of at least w+k-1 bases are
// guaranteed to share a minimizer — the sparse seeding mode the pipeline
// exposes as `-seed minimizer` to cut exchange volume.
package kmer
