package kmer

// Minimizer support: instead of shipping every k-mer, emit only each
// window's minimum-hash k-mer (Roberts et al. 2004), the compaction
// Minimap2 builds on (paper §11). Two reads sharing an exact run of at
// least w+k-1 bases are guaranteed to share a minimizer, so overlap
// detection still works while the k-mer volume exchanged through the
// pipeline drops by roughly a factor of (w+1)/2.
//
// Ordering is by the k-mer's 64-bit hash rather than lexicographic rank,
// which avoids the poly-A bias of literal ordering. Ties go to the
// leftmost occurrence. Windows are over the stream of valid k-mers (runs
// around non-ACGT bases are concatenated for windowing purposes).

// Minimizers returns the (w,k)-minimizer occurrences of seq: for every
// window of w consecutive canonical k-mers, the smallest-hash one,
// deduplicated across overlapping windows. w <= 1 returns all k-mers.
// Reads yielding fewer than w k-mers emit their single global minimizer,
// so no read with at least one k-mer is left unrepresented.
func Minimizers(seq []byte, k, w int, readID uint32) []Extracted {
	kms := ExtractAll(seq, k, readID)
	if len(kms) == 0 {
		return nil
	}
	if w <= 1 {
		return kms
	}
	if len(kms) < w {
		best := 0
		bestH := kms[0].Kmer.Hash()
		for i := 1; i < len(kms); i++ {
			if h := kms[i].Kmer.Hash(); h < bestH {
				best, bestH = i, h
			}
		}
		return []Extracted{kms[best]}
	}
	// Sliding-window minimum via a monotone deque of indices with
	// non-decreasing hash front to back.
	type cand struct {
		i int
		h uint64
	}
	dq := make([]cand, 0, w)
	var out []Extracted
	lastEmitted := -1
	for i := 0; i < len(kms); i++ {
		h := kms[i].Kmer.Hash()
		for len(dq) > 0 && dq[len(dq)-1].h > h {
			dq = dq[:len(dq)-1]
		}
		dq = append(dq, cand{i: i, h: h})
		if dq[0].i <= i-w {
			dq = dq[1:]
		}
		if i >= w-1 && dq[0].i != lastEmitted {
			out = append(out, kms[dq[0].i])
			lastEmitted = dq[0].i
		}
	}
	return out
}

// MinimizerCount returns how many (w,k)-minimizer occurrences Minimizers
// would emit for seq, without materializing them: the same monotone-deque
// sweep run over the streaming Scanner with O(w) state. The distributed
// hash table uses it to agree on the exchange round count from what each
// rank will actually stream, instead of overestimating with the full
// k-mer count.
func MinimizerCount(seq []byte, k, w int) int {
	sc := NewScanner(seq, k, 0)
	if w <= 1 {
		n := 0
		for {
			if _, ok := sc.Next(); !ok {
				return n
			}
			n++
		}
	}
	type cand struct {
		i int
		h uint64
	}
	dq := make([]cand, 0, w)
	count := 0
	lastEmitted := -1
	i := 0
	for ; ; i++ {
		ex, ok := sc.Next()
		if !ok {
			break
		}
		h := ex.Kmer.Hash()
		for len(dq) > 0 && dq[len(dq)-1].h > h {
			dq = dq[:len(dq)-1]
		}
		dq = append(dq, cand{i: i, h: h})
		if dq[0].i <= i-w {
			dq = dq[1:]
		}
		if i >= w-1 && dq[0].i != lastEmitted {
			count++
			lastEmitted = dq[0].i
		}
	}
	switch {
	case i == 0:
		return 0
	case i < w:
		// Short reads emit their single global minimizer.
		return 1
	}
	return count
}

// MinimizerDensity returns the expected fraction of k-mers selected as
// (w,k)-minimizers of a random sequence: 2/(w+1).
func MinimizerDensity(w int) float64 {
	if w <= 1 {
		return 1
	}
	return 2 / float64(w+1)
}
