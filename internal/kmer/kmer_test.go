package kmer

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dibella/internal/dna"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 5, 16, 17, 31, 32} {
		for trial := 0; trial < 20; trial++ {
			s := randomSeq(rng, k)
			km, ok := Pack(s, k)
			if !ok {
				t.Fatalf("Pack(%q, %d) failed", s, k)
			}
			if got := km.Bytes(k); !bytes.Equal(got, s) {
				t.Fatalf("k=%d roundtrip: got %q want %q", k, got, s)
			}
		}
	}
}

func TestPackInvalid(t *testing.T) {
	if _, ok := Pack([]byte("ACGN"), 4); ok {
		t.Error("Pack with N should fail")
	}
	if _, ok := Pack([]byte("ACG"), 4); ok {
		t.Error("Pack with short input should fail")
	}
}

func TestMustPackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPack did not panic on invalid input")
		}
	}()
	MustPack([]byte("ANNA"), 4)
}

func TestCheckKPanics(t *testing.T) {
	for _, k := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d did not panic", k)
				}
			}()
			Pack([]byte("ACGT"), k)
		}()
	}
}

func TestLexicographicOrder(t *testing.T) {
	// Integer order of packed k-mers must match string order.
	a := MustPack([]byte("AACGT"), 5)
	b := MustPack([]byte("AACTT"), 5)
	c := MustPack([]byte("TTTTT"), 5)
	if !(a < b && b < c) {
		t.Errorf("order violated: %v %v %v", a, b, c)
	}
}

func TestBaseAt(t *testing.T) {
	km := MustPack([]byte("ACGT"), 4)
	want := []byte{dna.A, dna.C, dna.G, dna.T}
	for i, w := range want {
		if got := km.BaseAt(i, 4); got != w {
			t.Errorf("BaseAt(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestReverseComplementKnown(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"A", "T"},
		{"ACGT", "ACGT"},
		{"AAAA", "TTTT"},
		{"GATTACA", "TGTAATC"},
		{"ACGTACGTACGTACGTACGTACGTACGTACGT", "ACGTACGTACGTACGTACGTACGTACGTACGT"},
	}
	for _, c := range cases {
		k := len(c.in)
		km := MustPack([]byte(c.in), k)
		got := km.ReverseComplement(k).Bytes(k)
		if string(got) != c.want {
			t.Errorf("RC(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: packed RC equals packing the byte-level RC, for all k.
func TestReverseComplementMatchesBytes(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%MaxK + 1
		rng := rand.New(rand.NewSource(seed))
		s := randomSeq(rng, k)
		km := MustPack(s, k)
		want := MustPack(dna.ReverseComplement(s), k)
		return km.ReverseComplement(k) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: RC is an involution.
func TestReverseComplementInvolution(t *testing.T) {
	f := func(v uint64, kRaw uint8) bool {
		k := int(kRaw)%MaxK + 1
		km := Kmer(v & mask(k))
		return km.ReverseComplement(k).ReverseComplement(k) == km
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a k-mer and its RC share one canonical form.
func TestCanonicalInvariance(t *testing.T) {
	f := func(v uint64, kRaw uint8) bool {
		k := int(kRaw)%MaxK + 1
		km := Kmer(v & mask(k))
		rc := km.ReverseComplement(k)
		c1, _ := km.Canonical(k)
		c2, _ := rc.Canonical(k)
		return c1 == c2 && c1 <= km && c1 <= rc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalForwardFlag(t *testing.T) {
	// AAAA < TTTT, so AAAA is canonical (fwd) and TTTT maps back (not fwd).
	fw := MustPack([]byte("AAAA"), 4)
	if c, fwd := fw.Canonical(4); c != fw || !fwd {
		t.Errorf("AAAA canonical = %v fwd=%v", c, fwd)
	}
	rc := MustPack([]byte("TTTT"), 4)
	if c, fwd := rc.Canonical(4); c != fw || fwd {
		t.Errorf("TTTT canonical = %v fwd=%v", c, fwd)
	}
}

func TestAppendBaseRolls(t *testing.T) {
	k := 5
	s := []byte("ACGTACGTA")
	km := MustPack(s[:k], k)
	for i := k; i < len(s); i++ {
		km = km.AppendBase(dna.MustCode(s[i]), k)
		want := MustPack(s[i-k+1:i+1], k)
		if km != want {
			t.Fatalf("rolled k-mer at %d = %q, want %q", i, km.Bytes(k), want.Bytes(k))
		}
	}
}

func TestHashDistribution(t *testing.T) {
	// Sequentially numbered k-mers must spread across owners near-uniformly.
	const p = 16
	const n = 1 << 14
	counts := make([]int, p)
	for i := 0; i < n; i++ {
		counts[Kmer(i).Owner(p)]++
	}
	want := n / p
	for r, c := range counts {
		if c < want*7/10 || c > want*13/10 {
			t.Errorf("rank %d owns %d k-mers, want about %d", r, c, want)
		}
	}
}

func TestOwnerInRange(t *testing.T) {
	f := func(v uint64, pRaw uint8) bool {
		p := int(pRaw)%64 + 1
		o := Kmer(v).Owner(p)
		return o >= 0 && o < p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestHashAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Kmer(0x123456789abcdef).Hash()
	for bit := 0; bit < 64; bit += 7 {
		h := Kmer(uint64(0x123456789abcdef) ^ uint64(1)<<uint(bit)).Hash()
		diff := popcount(h ^ base)
		if diff < 10 || diff > 54 {
			t.Errorf("bit %d: only %d output bits changed", bit, diff)
		}
	}
}

func TestScannerSimple(t *testing.T) {
	seq := []byte("ACGTAC")
	k := 3
	got := ExtractAll(seq, k, 9)
	if len(got) != 4 {
		t.Fatalf("got %d k-mers, want 4", len(got))
	}
	for i, ex := range got {
		if ex.Occ.ReadID != 9 {
			t.Errorf("k-mer %d has ReadID %d", i, ex.Occ.ReadID)
		}
		if int(ex.Occ.Pos) != i {
			t.Errorf("k-mer %d has Pos %d", i, ex.Occ.Pos)
		}
		fwd := MustPack(seq[i:i+k], k)
		canon, _ := fwd.Canonical(k)
		if ex.Kmer != canon {
			t.Errorf("k-mer %d = %q, want canonical %q", i, ex.Kmer.Bytes(k), canon.Bytes(k))
		}
	}
}

func TestScannerSkipsAmbiguous(t *testing.T) {
	// N breaks the run: only k-mers fully inside valid runs are emitted.
	seq := []byte("ACGTNACGT")
	got := ExtractAll(seq, 3, 0)
	if len(got) != 4 { // 2 from each side of the N
		t.Fatalf("got %d k-mers, want 4", len(got))
	}
	wantPos := []uint32{0, 1, 5, 6}
	for i, ex := range got {
		if ex.Occ.Pos != wantPos[i] {
			t.Errorf("k-mer %d Pos = %d, want %d", i, ex.Occ.Pos, wantPos[i])
		}
	}
}

func TestScannerShortAndEmpty(t *testing.T) {
	if got := ExtractAll([]byte("AC"), 3, 0); len(got) != 0 {
		t.Errorf("short read yielded %d k-mers", len(got))
	}
	if got := ExtractAll(nil, 3, 0); len(got) != 0 {
		t.Errorf("empty read yielded %d k-mers", len(got))
	}
	if got := ExtractAll([]byte("NNNNNN"), 3, 0); len(got) != 0 {
		t.Errorf("all-N read yielded %d k-mers", len(got))
	}
}

// Property: scanner emits exactly Count(n,k) k-mers on fully valid reads,
// and every emitted k-mer matches direct packing of the window.
func TestScannerMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8, kRaw uint8) bool {
		k := int(kRaw)%MaxK + 1
		n := int(nRaw)
		rng := rand.New(rand.NewSource(seed))
		s := randomSeq(rng, n)
		got := ExtractAll(s, k, 1)
		if len(got) != Count(n, k) {
			return false
		}
		for i, ex := range got {
			w, ok := Pack(s[i:i+k], k)
			if !ok {
				return false
			}
			canon, fwd := w.Canonical(k)
			if ex.Kmer != canon || ex.Occ.Forward != fwd || int(ex.Occ.Pos) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCount(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{0, 3, 0}, {2, 3, 0}, {3, 3, 1}, {10, 3, 8}, {17, 17, 1},
	}
	for _, c := range cases {
		if got := Count(c.n, c.k); got != c.want {
			t.Errorf("Count(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

func randomSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

func BenchmarkScanner(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	seq := randomSeq(rng, 10000)
	b.SetBytes(int64(len(seq)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := NewScanner(seq, 17, 0)
		for {
			if _, ok := sc.Next(); !ok {
				break
			}
		}
	}
}

func BenchmarkHash(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Kmer(i).Hash()
	}
	_ = acc
}
