package kmer

import (
	"fmt"
	"math/bits"

	"dibella/internal/dna"
)

// MaxK is the largest supported k-mer length (32 bases in one uint64).
const MaxK = 32

// Kmer is a DNA string of fixed length k packed two bits per base.
// The base at offset 0 (the 5' end) occupies the highest-order bit pair in
// use, so that integer comparison of two Kmers with equal k matches
// lexicographic comparison of their ASCII forms.
type Kmer uint64

// ValidK reports whether k is a supported k-mer length.
func ValidK(k int) bool { return k >= 1 && k <= MaxK }

// checkK panics on out-of-range k. k is a program-level parameter (the paper
// fixes it per run), so an invalid value is a programming error.
func checkK(k int) {
	if !ValidK(k) {
		panic(fmt.Sprintf("kmer: k=%d out of range [1,%d]", k, MaxK))
	}
}

// mask returns the bit mask covering 2k low-order bits.
func mask(k int) uint64 {
	if k == 32 {
		return ^uint64(0)
	}
	return (uint64(1) << (2 * uint(k))) - 1
}

// Pack converts the first k bytes of an ASCII sequence into a Kmer.
// It reports ok=false if any of the k bytes is not A/C/G/T.
func Pack(s []byte, k int) (km Kmer, ok bool) {
	checkK(k)
	if len(s) < k {
		return 0, false
	}
	var v uint64
	for i := 0; i < k; i++ {
		c, valid := dna.Code(s[i])
		if !valid {
			return 0, false
		}
		v = v<<2 | uint64(c)
	}
	return Kmer(v), true
}

// MustPack is Pack for pre-validated input; it panics on invalid bytes.
func MustPack(s []byte, k int) Kmer {
	km, ok := Pack(s, k)
	if !ok {
		panic(fmt.Sprintf("kmer: invalid sequence %q for k=%d", s, k))
	}
	return km
}

// Bytes unpacks the k-mer into upper-case ASCII.
func (km Kmer) Bytes(k int) []byte {
	checkK(k)
	out := make([]byte, k)
	v := uint64(km)
	for i := k - 1; i >= 0; i-- {
		out[i] = dna.Base(byte(v & 3))
		v >>= 2
	}
	return out
}

// String unpacks the k-mer assuming the receiver knows k via the caller; it
// exists only for debugging with a fixed display width of MaxK and is not
// used on hot paths. Prefer Bytes(k).
func (km Kmer) String() string { return fmt.Sprintf("Kmer(%#016x)", uint64(km)) }

// BaseAt returns the 2-bit code of the base at offset i (0 = 5' end).
func (km Kmer) BaseAt(i, k int) byte {
	checkK(k)
	if i < 0 || i >= k {
		panic(fmt.Sprintf("kmer: offset %d out of range [0,%d)", i, k))
	}
	return byte(uint64(km)>>(2*uint(k-1-i))) & 3
}

// AppendBase shifts the k-mer left by one base and appends code, keeping
// length k. This is the rolling-extraction step.
func (km Kmer) AppendBase(code byte, k int) Kmer {
	return Kmer((uint64(km)<<2 | uint64(code&3)) & mask(k))
}

// ReverseComplement returns the reverse complement of the k-mer.
//
// The 2-bit code was chosen so complementation is XOR with all-ones; the
// reversal uses the standard O(log k) bit-swap network over base pairs.
func (km Kmer) ReverseComplement(k int) Kmer {
	checkK(k)
	v := ^uint64(km) // complement every base (c -> 3-c)
	// Reverse the 32 2-bit groups within the word.
	v = (v&0x3333333333333333)<<2 | (v>>2)&0x3333333333333333
	v = (v&0x0F0F0F0F0F0F0F0F)<<4 | (v>>4)&0x0F0F0F0F0F0F0F0F
	v = bits.ReverseBytes64(v)
	// The reversed k-mer now occupies the top 2k bits; shift down.
	v >>= 64 - 2*uint(k)
	return Kmer(v)
}

// Canonical returns the lexicographically smaller of the k-mer and its
// reverse complement, plus whether the original was already canonical
// (fwd=true) or the reverse complement was taken (fwd=false).
//
// Using canonical k-mers as hash keys makes overlaps between reads sequenced
// from opposite strands discoverable, mirroring BELLA's treatment.
func (km Kmer) Canonical(k int) (canon Kmer, fwd bool) {
	rc := km.ReverseComplement(k)
	if rc < km {
		return rc, false
	}
	return km, true
}

// Hash returns a well-mixed 64-bit hash of the k-mer. It is the
// finalization function of MurmurHash3 (fmix64), which passes avalanche
// tests; ownership mapping and Bloom indexing both derive from it.
func (km Kmer) Hash() uint64 {
	h := uint64(km)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Owner maps the k-mer to one of p ranks uniformly via its hash, as in
// HipMer and diBELLA: each rank owns roughly the same number of distinct
// k-mers regardless of sequence composition.
func (km Kmer) Owner(p int) int {
	if p <= 0 {
		panic("kmer: non-positive rank count")
	}
	// Multiply-shift on the high bits avoids modulo bias and is cheaper
	// than %.
	return int((km.Hash() >> 32 * uint64(p)) >> 32)
}

// Less orders k-mers lexicographically (they share a fixed k).
func (km Kmer) Less(other Kmer) bool { return km < other }

// Occurrence is one sighting of a k-mer within the read set: the read it
// came from, the offset of its first base within that read, and whether the
// canonical form matched the read's forward orientation.
type Occurrence struct {
	ReadID  uint32
	Pos     uint32
	Forward bool
}

// Extracted is one k-mer pulled from a read together with its location
// metadata, the unit shipped through the all-to-all exchanges.
type Extracted struct {
	Kmer Kmer
	Occ  Occurrence
}

// Scanner iterates over the canonical k-mers of a read using rolling
// extraction: each step shifts in one base; runs are restarted after any
// non-ACGT byte, so no emitted k-mer spans an ambiguous base.
type Scanner struct {
	seq    []byte
	k      int
	readID uint32
	pos    int  // index of the *next* byte to consume
	run    int  // number of consecutive valid bases ending just before pos
	cur    Kmer // rolling forward k-mer over the current run
}

// NewScanner returns a Scanner over seq for the given k and read identifier.
func NewScanner(seq []byte, k int, readID uint32) *Scanner {
	checkK(k)
	return &Scanner{seq: seq, k: k, readID: readID}
}

// Next returns the next canonical k-mer and its occurrence metadata.
// ok=false signals the end of the read.
func (s *Scanner) Next() (ex Extracted, ok bool) {
	for s.pos < len(s.seq) {
		code, valid := dna.Code(s.seq[s.pos])
		s.pos++
		if !valid {
			s.run = 0
			continue
		}
		s.cur = s.cur.AppendBase(code, s.k)
		s.run++
		if s.run >= s.k {
			canon, fwd := s.cur.Canonical(s.k)
			return Extracted{
				Kmer: canon,
				Occ: Occurrence{
					ReadID:  s.readID,
					Pos:     uint32(s.pos - s.k),
					Forward: fwd,
				},
			}, true
		}
	}
	return Extracted{}, false
}

// Count returns the number of k-mers a read of length n yields when every
// base is valid: max(0, n-k+1). The paper approximates this as ≈ n for long
// reads (Eq. 2).
func Count(n, k int) int {
	if n < k {
		return 0
	}
	return n - k + 1
}

// ExtractAll returns all canonical k-mers of seq with their occurrence
// metadata. It is a convenience wrapper over Scanner used by tests and by
// the single-node baseline; the distributed pipeline streams instead.
func ExtractAll(seq []byte, k int, readID uint32) []Extracted {
	sc := NewScanner(seq, k, readID)
	var out []Extracted
	if n := Count(len(seq), k); n > 0 {
		out = make([]Extracted, 0, n)
	}
	for {
		ex, ok := sc.Next()
		if !ok {
			return out
		}
		out = append(out, ex)
	}
}
