package kmer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMinimizers selects per-window minima by brute force.
func naiveMinimizers(seq []byte, k, w int, readID uint32) []Extracted {
	kms := ExtractAll(seq, k, readID)
	if len(kms) == 0 {
		return nil
	}
	if w <= 1 {
		return kms
	}
	chosen := make(map[int]bool)
	var order []int
	pick := func(lo, hi int) {
		best := lo
		bestH := kms[lo].Kmer.Hash()
		for i := lo + 1; i < hi; i++ {
			if h := kms[i].Kmer.Hash(); h < bestH {
				best, bestH = i, h
			}
		}
		if !chosen[best] {
			chosen[best] = true
			order = append(order, best)
		}
	}
	if len(kms) < w {
		pick(0, len(kms))
	} else {
		for lo := 0; lo+w <= len(kms); lo++ {
			pick(lo, lo+w)
		}
	}
	out := make([]Extracted, len(order))
	for i, idx := range order {
		out[i] = kms[idx]
	}
	return out
}

// Property: the deque implementation matches brute force exactly.
func TestMinimizersMatchNaive(t *testing.T) {
	f := func(seed int64, nRaw, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 120
		w := int(wRaw)%12 + 1
		seq := randomSeq(rng, n)
		got := Minimizers(seq, 7, w, 3)
		want := naiveMinimizers(seq, 7, w, 3)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestMinimizersW1IsAllKmers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seq := randomSeq(rng, 50)
	all := ExtractAll(seq, 9, 0)
	got := Minimizers(seq, 9, 1, 0)
	if len(got) != len(all) {
		t.Fatalf("w=1 selected %d of %d", len(got), len(all))
	}
}

func TestMinimizersShortRead(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seq := randomSeq(rng, 12) // 4 k-mers at k=9, window 10
	got := Minimizers(seq, 9, 10, 0)
	if len(got) != 1 {
		t.Fatalf("short read emitted %d minimizers", len(got))
	}
	if Minimizers(nil, 9, 10, 0) != nil {
		t.Error("empty read should emit nothing")
	}
}

func TestMinimizerDensity(t *testing.T) {
	// Empirical density on random sequence should track 2/(w+1).
	rng := rand.New(rand.NewSource(3))
	seq := randomSeq(rng, 20000)
	const k = 15
	for _, w := range []int{5, 10, 19} {
		got := float64(len(Minimizers(seq, k, w, 0))) / float64(Count(len(seq), k))
		want := MinimizerDensity(w)
		if math.Abs(got-want)/want > 0.2 {
			t.Errorf("w=%d: density %.4f, want ~%.4f", w, got, want)
		}
	}
	if MinimizerDensity(1) != 1 || MinimizerDensity(0) != 1 {
		t.Error("degenerate density wrong")
	}
}

// The property overlap detection relies on: reads sharing a long exact
// region share at least one minimizer, at identical offsets into the
// shared region.
func TestSharedRegionSharesMinimizer(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const k, w = 15, 10
	for trial := 0; trial < 30; trial++ {
		shared := randomSeq(rng, w+k-1+rng.Intn(200)) // >= w+k-1 guarantees sharing
		a := append(randomSeq(rng, rng.Intn(100)), shared...)
		b := append(randomSeq(rng, rng.Intn(100)), shared...)
		setA := make(map[Kmer]bool)
		for _, ex := range Minimizers(a, k, w, 0) {
			setA[ex.Kmer] = true
		}
		found := false
		for _, ex := range Minimizers(b, k, w, 1) {
			if setA[ex.Kmer] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trial %d: no shared minimizer over a %d-base shared region",
				trial, len(shared))
		}
	}
}

func BenchmarkMinimizers(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	seq := randomSeq(rng, 10000)
	b.SetBytes(int64(len(seq)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minimizers(seq, 17, 10, 0)
	}
}

// TestMinimizerCountMatchesMinimizers pins the streaming counter to the
// materializing implementation across lengths, windows, and ambiguous
// bases (short reads, empty reads, and runs split by 'N' included).
func TestMinimizerCountMatchesMinimizers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const alphabet = "ACGTACGTACGTN" // sparse Ns
	const k = 7
	for trial := 0; trial < 300; trial++ {
		seq := make([]byte, rng.Intn(220))
		for i := range seq {
			seq[i] = alphabet[rng.Intn(len(alphabet))]
		}
		for _, w := range []int{1, 2, 3, 5, 9, 16} {
			want := len(Minimizers(seq, k, w, 0))
			if got := MinimizerCount(seq, k, w); got != want {
				t.Fatalf("len=%d w=%d: MinimizerCount=%d, len(Minimizers)=%d (seq %q)",
					len(seq), w, got, want, seq)
			}
		}
	}
}
