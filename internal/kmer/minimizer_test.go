package kmer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMinimizers selects per-window minima by brute force.
func naiveMinimizers(seq []byte, k, w int, readID uint32) []Extracted {
	kms := ExtractAll(seq, k, readID)
	if len(kms) == 0 {
		return nil
	}
	if w <= 1 {
		return kms
	}
	chosen := make(map[int]bool)
	var order []int
	pick := func(lo, hi int) {
		best := lo
		bestH := kms[lo].Kmer.Hash()
		for i := lo + 1; i < hi; i++ {
			if h := kms[i].Kmer.Hash(); h < bestH {
				best, bestH = i, h
			}
		}
		if !chosen[best] {
			chosen[best] = true
			order = append(order, best)
		}
	}
	if len(kms) < w {
		pick(0, len(kms))
	} else {
		for lo := 0; lo+w <= len(kms); lo++ {
			pick(lo, lo+w)
		}
	}
	out := make([]Extracted, len(order))
	for i, idx := range order {
		out[i] = kms[idx]
	}
	return out
}

// Property: the deque implementation matches brute force exactly.
func TestMinimizersMatchNaive(t *testing.T) {
	f := func(seed int64, nRaw, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 120
		w := int(wRaw)%12 + 1
		seq := randomSeq(rng, n)
		got := Minimizers(seq, 7, w, 3)
		want := naiveMinimizers(seq, 7, w, 3)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestMinimizersW1IsAllKmers: w=1 (and w=0) degenerate to exact seeding —
// every k-mer occurrence, element for element, for both the materializing
// and counting implementations.
func TestMinimizersW1IsAllKmers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range []int{0, 1} {
		seq := randomSeq(rng, 50)
		all := ExtractAll(seq, 9, 7)
		got := Minimizers(seq, 9, w, 7)
		if len(got) != len(all) {
			t.Fatalf("w=%d selected %d of %d", w, len(got), len(all))
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("w=%d minimizer %d is %+v, want %+v", w, i, got[i], all[i])
			}
		}
		if n := MinimizerCount(seq, 9, w); n != len(all) {
			t.Errorf("w=%d MinimizerCount=%d, want %d", w, n, len(all))
		}
	}
}

// TestMinimizersShortRead covers sequences shorter than k+w-1 (fewer than
// w k-mers): one global minimizer, agreeing with MinimizerCount; below k
// there is nothing to emit at all.
func TestMinimizersShortRead(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const k, w = 9, 10
	// 4 k-mers at k=9: shorter than the k+w-1 = 18 bases a full window needs.
	seq := randomSeq(rng, 12)
	got := Minimizers(seq, k, w, 0)
	if len(got) != 1 {
		t.Fatalf("short read emitted %d minimizers", len(got))
	}
	if n := MinimizerCount(seq, k, w); n != 1 {
		t.Errorf("short read MinimizerCount=%d, want 1", n)
	}
	// Exactly one k-mer: it is its own global minimizer.
	one := randomSeq(rng, k)
	if got := Minimizers(one, k, w, 0); len(got) != 1 || got[0].Occ.Pos != 0 {
		t.Errorf("k-length read: %+v, want its single k-mer", got)
	}
	// Shorter than k: no k-mers, no minimizers.
	for _, n := range []int{0, 1, k - 1} {
		sub := randomSeq(rng, n)
		if Minimizers(sub, k, w, 0) != nil {
			t.Errorf("%d-base read should emit nothing", n)
		}
		if c := MinimizerCount(sub, k, w); c != 0 {
			t.Errorf("%d-base read MinimizerCount=%d, want 0", n, c)
		}
	}
	// Exactly w k-mers: the boundary where windowing starts.
	exact := randomSeq(rng, k+w-1)
	if want := len(Minimizers(exact, k, w, 0)); MinimizerCount(exact, k, w) != want {
		t.Errorf("boundary read: count disagrees with materialization")
	}
}

func TestMinimizerDensity(t *testing.T) {
	// Empirical density on random sequence should track 2/(w+1).
	rng := rand.New(rand.NewSource(3))
	seq := randomSeq(rng, 20000)
	const k = 15
	for _, w := range []int{5, 10, 19} {
		got := float64(len(Minimizers(seq, k, w, 0))) / float64(Count(len(seq), k))
		want := MinimizerDensity(w)
		if math.Abs(got-want)/want > 0.2 {
			t.Errorf("w=%d: density %.4f, want ~%.4f", w, got, want)
		}
	}
	if MinimizerDensity(1) != 1 || MinimizerDensity(0) != 1 {
		t.Error("degenerate density wrong")
	}
}

// The property overlap detection relies on: reads sharing a long exact
// region share at least one minimizer, at identical offsets into the
// shared region.
func TestSharedRegionSharesMinimizer(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const k, w = 15, 10
	for trial := 0; trial < 30; trial++ {
		shared := randomSeq(rng, w+k-1+rng.Intn(200)) // >= w+k-1 guarantees sharing
		a := append(randomSeq(rng, rng.Intn(100)), shared...)
		b := append(randomSeq(rng, rng.Intn(100)), shared...)
		setA := make(map[Kmer]bool)
		for _, ex := range Minimizers(a, k, w, 0) {
			setA[ex.Kmer] = true
		}
		found := false
		for _, ex := range Minimizers(b, k, w, 1) {
			if setA[ex.Kmer] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trial %d: no shared minimizer over a %d-base shared region",
				trial, len(shared))
		}
	}
}

func BenchmarkMinimizers(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	seq := randomSeq(rng, 10000)
	b.SetBytes(int64(len(seq)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minimizers(seq, 17, 10, 0)
	}
}

// TestMinimizerCountMatchesMinimizers pins the streaming counter to the
// materializing implementation across lengths, windows, and ambiguous
// bases (short reads, empty reads, and runs split by 'N' included).
func TestMinimizerCountMatchesMinimizers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const alphabet = "ACGTACGTACGTN" // sparse Ns
	const k = 7
	for trial := 0; trial < 300; trial++ {
		seq := make([]byte, rng.Intn(220))
		for i := range seq {
			seq[i] = alphabet[rng.Intn(len(alphabet))]
		}
		for _, w := range []int{1, 2, 3, 5, 9, 16} {
			want := len(Minimizers(seq, k, w, 0))
			if got := MinimizerCount(seq, k, w); got != want {
				t.Fatalf("len=%d w=%d: MinimizerCount=%d, len(Minimizers)=%d (seq %q)",
					len(seq), w, got, want, seq)
			}
		}
	}
}
