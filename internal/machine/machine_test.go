package machine

import (
	"math"
	"testing"

	"dibella/internal/spmd"
)

var _ spmd.CommModel = (*Model)(nil)

func mustModel(t *testing.T, p Platform, nodes, rpn int) *Model {
	t.Helper()
	m, err := NewModel(p, nodes, rpn)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(Cori, 0, 1); err == nil {
		t.Error("nodes=0 accepted")
	}
	if _, err := NewModel(Cori, 1, 0); err == nil {
		t.Error("rpn=0 accepted")
	}
	if _, err := NewModel(Titan, 1, 17); err == nil {
		t.Error("rpn above core count accepted")
	}
	m := mustModel(t, Cori, 4, 32)
	if m.Ranks() != 128 {
		t.Errorf("Ranks = %d", m.Ranks())
	}
}

func TestPlatformByName(t *testing.T) {
	for _, name := range []string{"cori", "Edison", "TITAN", "aws"} {
		if _, err := PlatformByName(name); err != nil {
			t.Errorf("PlatformByName(%q): %v", name, err)
		}
	}
	if _, err := PlatformByName("summit"); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := PlatformByName(""); err == nil {
		t.Error("empty platform accepted")
	}
}

func TestNodeSpeedRanking(t *testing.T) {
	// Paper: Cori's nodes are the most capable, Edison next; AWS is
	// comparable to a Titan CPU node.
	if !(Cori.NodeSpeed() > Edison.NodeSpeed() &&
		Edison.NodeSpeed() > Titan.NodeSpeed()) {
		t.Errorf("node speeds: cori=%.1f edison=%.1f titan=%.1f",
			Cori.NodeSpeed(), Edison.NodeSpeed(), Titan.NodeSpeed())
	}
	ratio := AWS.NodeSpeed() / Titan.NodeSpeed()
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("AWS/Titan node speed ratio %.2f, want ~1", ratio)
	}
}

func TestAlltoallvTimeMonotoneInBytes(t *testing.T) {
	m := mustModel(t, Cori, 8, 32)
	prev := 0.0
	for _, b := range []float64{0, 1e3, 1e5, 1e7, 1e9} {
		cur := m.AlltoallvTime(5, b)
		if cur < prev {
			t.Errorf("AlltoallvTime not monotone at %v bytes", b)
		}
		prev = cur
	}
}

func TestFirstCallPenalty(t *testing.T) {
	for _, p := range Platforms {
		m := mustModel(t, p, 4, p.CoresPerNode)
		first := m.AlltoallvTime(0, 1e6)
		second := m.AlltoallvTime(1, 1e6)
		ratio := first / second
		if ratio < 1.3 || ratio > 6.0 {
			t.Errorf("%s: first/second call ratio %.2f", p.Name, ratio)
		}
	}
}

func TestSingleNodeExchangeCheaper(t *testing.T) {
	// Intra-node exchange must beat the same exchange spread over nodes.
	for _, p := range Platforms {
		one := mustModel(t, p, 1, p.CoresPerNode)
		many := mustModel(t, p, 8, p.CoresPerNode)
		bytesPerRank := 1e6
		if one.AlltoallvTime(3, bytesPerRank) >= many.AlltoallvTime(3, bytesPerRank) {
			t.Errorf("%s: intra-node exchange not cheaper", p.Name)
		}
	}
}

func TestAWSExchangeWorst(t *testing.T) {
	// Paper: all-to-all scales poorly everywhere but especially on AWS.
	const nodes = 16
	aws := mustModel(t, AWS, nodes, 16)
	tAWS := aws.AlltoallvTime(3, 1e6)
	for _, p := range []Platform{Cori, Edison, Titan} {
		m := mustModel(t, p, nodes, 16)
		if tAWS <= m.AlltoallvTime(3, 1e6) {
			t.Errorf("AWS exchange (%v) not slower than %s", tAWS, p.Name)
		}
	}
}

func TestEdisonLatencyAdvantage(t *testing.T) {
	// Table 1 measures Edison's 128-byte Get latency at 0.8 us vs Cori's
	// 2.7 us; that shows up in latency-bound collectives. Cori's newer
	// Aries wins on the bulk all-to-alls (it must, to lead Fig. 13
	// overall — the calibration choice is documented in EXPERIMENTS.md).
	cori := mustModel(t, Cori, 16, Cori.CoresPerNode)
	edison := mustModel(t, Edison, 16, Edison.CoresPerNode)
	if edison.CollectiveTime() >= cori.CollectiveTime() {
		t.Error("Edison latency-bound collectives should beat Cori")
	}
	if cori.AlltoallvTime(3, 1e9) >= edison.AlltoallvTime(3, 1e9) {
		t.Error("Cori bulk exchange should beat Edison at full rank density")
	}
}

func TestRankCapBindsOnlyAtLowDensity(t *testing.T) {
	// The single-rank injection cap must not perturb full-density jobs
	// (the cross-architecture sweeps) but must slow 1-rank-per-node jobs
	// (the Figs. 9-10 shape) relative to an uncapped NIC.
	full := mustModel(t, Cori, 8, Cori.CoresPerNode)
	uncapped := *full
	uncapped.Plat.BWRankCap = 0
	if full.AlltoallvTime(3, 1e6) != uncapped.AlltoallvTime(3, 1e6) {
		t.Error("cap perturbed a full-density exchange")
	}
	sparse := mustModel(t, Cori, 8, 1)
	sparseUncapped := *sparse
	sparseUncapped.Plat.BWRankCap = 0
	if sparse.AlltoallvTime(3, 1e8) <= sparseUncapped.AlltoallvTime(3, 1e8) {
		t.Error("cap did not bind for a 1-rank-per-node bulk exchange")
	}
}

func TestCacheMultiplierBounds(t *testing.T) {
	m := mustModel(t, Cori, 1, 32)
	lo := m.cacheMultiplier(1e12) // way out of cache
	hi := m.cacheMultiplier(1)    // fully cached
	if lo < 1 || lo > 1.05 {
		t.Errorf("out-of-cache multiplier %v", lo)
	}
	if hi < 2.0 || hi > 2.5 {
		t.Errorf("in-cache multiplier %v", hi)
	}
	if m.cacheMultiplier(0) != hi {
		t.Error("zero working set should be fully cached")
	}
}

func TestComputeTimeSuperlinearStrongScaling(t *testing.T) {
	// Halving both ops and working set must more than halve time once the
	// set nears cache size: that is the superlinear effect.
	m := mustModel(t, Cori, 1, 32)
	ws := m.Plat.LLCBytes / 32 * 4 // 4x a rank's cache share
	t1 := m.ComputeTime(1e8, RateParse, ws)
	t2 := m.ComputeTime(1e8/4, RateParse, ws/4)
	if t2 >= t1/4 {
		t.Errorf("no superlinear effect: t1=%v t2=%v", t1, t2)
	}
}

func TestComputeTimeZeroOps(t *testing.T) {
	m := mustModel(t, Cori, 1, 1)
	if m.ComputeTime(0, RateParse, 100) != 0 {
		t.Error("zero ops should cost zero")
	}
}

func TestComputeTimePlatformOrdering(t *testing.T) {
	// Per-core: a Titan Opteron core should be about half a Haswell core.
	coriM := mustModel(t, Cori, 1, 1)
	titanM := mustModel(t, Titan, 1, 1)
	tc := coriM.ComputeTime(1e8, RateParse, 1e12)
	tt := titanM.ComputeTime(1e8, RateParse, 1e12)
	if ratio := tt / tc; ratio < 1.7 || ratio > 2.6 {
		t.Errorf("Titan/Cori per-core time ratio %.2f, want ~2.1", ratio)
	}
}

func TestCollectiveTimeGrowsWithNodes(t *testing.T) {
	m1 := mustModel(t, Cori, 1, 32)
	m32 := mustModel(t, Cori, 32, 32)
	if m32.CollectiveTime() <= m1.CollectiveTime() {
		t.Error("collective time should grow with node count")
	}
}

func TestScaledModelConsistency(t *testing.T) {
	// A scaled model (fewer goroutines than modeled ranks) must price the
	// same *global* work identically to the full-density model.
	full, err := NewModel(Cori, 2, 32) // 64 ranks
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := NewModelScaled(Cori, 2, 8) // 8 goroutines for 64 ranks
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Ranks() != 8 || scaled.RealRanks() != 64 {
		t.Fatalf("shape: sim=%d real=%d", scaled.Ranks(), scaled.RealRanks())
	}
	// Global work W split evenly: full rank does W/64, scaled goroutine
	// does W/8 (8x more), with 8x the working set.
	const W = 1e9
	const WS = 64e6 // global working set bytes
	tFull := full.ComputeTime(W/64, RateParse, WS/64)
	tScaled := scaled.ComputeTime(W/8, RateParse, WS/8)
	if diff := (tScaled - tFull) / tFull; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("compute pricing differs: full %v scaled %v", tFull, tScaled)
	}
	// Same for exchanges: global payload B, per-participant share.
	const B = 1e8
	eFull := full.AlltoallvTime(3, B/64)
	eScaled := scaled.AlltoallvTime(3, B/8)
	if diff := (eScaled - eFull) / eFull; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("exchange pricing differs: full %v scaled %v", eFull, eScaled)
	}
}

func TestNewModelScaledValidation(t *testing.T) {
	if _, err := NewModelScaled(Cori, 0, 4); err == nil {
		t.Error("nodes=0 accepted")
	}
	if _, err := NewModelScaled(Cori, 2, 0); err == nil {
		t.Error("simRanks=0 accepted")
	}
}

func TestExchangeLatencyDominanceAtScale(t *testing.T) {
	// With tiny payloads and many ranks the latency term dominates, so
	// doubling nodes roughly doubles exchange time — the scaling wall the
	// paper observes for low-intensity workloads.
	m16 := mustModel(t, AWS, 16, 16)
	m32 := mustModel(t, AWS, 32, 16)
	t16 := m16.AlltoallvTime(3, 1e3)
	t32 := m32.AlltoallvTime(3, 1e3)
	if ratio := t32 / t16; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("latency-bound scaling ratio %.2f, want ~2", ratio)
	}
}

func TestStreamChunkPricing(t *testing.T) {
	m := mustModel(t, Cori, 8, 32)
	const bytes = 256 << 10
	full := m.AlltoallvTime(3, bytes)
	chunk := m.StreamChunkTime(3, bytes)
	// One chunk round carries the same wire cost but only a fraction of
	// the per-peer software overhead, so it must be strictly cheaper than
	// a full exchange of the same bytes...
	if chunk >= full {
		t.Errorf("chunk round %v not cheaper than full exchange %v", chunk, full)
	}
	// ...while never being free: even an empty chunk pays its overhead.
	if m.StreamChunkTime(3, 0) <= 0 {
		t.Error("empty chunk round modeled as free")
	}
	// Splitting a payload into N chunks keeps the wire term and multiplies
	// the per-chunk overhead, so the chunked sum exceeds one full exchange
	// once N is large — the pipelining trade-off the chunk knob explores.
	const n = 64
	sum := float64(n) * m.StreamChunkTime(3, bytes/n)
	if sum <= full {
		t.Errorf("%d-way chunked sum %v does not exceed full exchange %v", n, sum, full)
	}
	// The first-exchange setup factor applies to chunk rounds as well.
	if first, later := m.StreamChunkTime(0, bytes), m.StreamChunkTime(3, bytes); first <= later {
		t.Errorf("first chunk round %v not dearer than later %v", first, later)
	}
}

func TestChunkPostTime(t *testing.T) {
	m := mustModel(t, Cori, 8, 32)
	cp := m.ChunkPostTime()
	if cp <= 0 {
		t.Error("chunk posting modeled as free")
	}
	if ip := m.IPostTime(); cp >= ip {
		t.Errorf("chunk post %v not cheaper than full non-blocking post %v", cp, ip)
	}
}

func TestSnapshotTimePricing(t *testing.T) {
	m, err := NewModel(Cori, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Never free: even a zero-byte snapshot pays the per-segment latency.
	if got := m.SnapshotTime(0); got <= 0 {
		t.Errorf("zero-byte snapshot priced at %v", got)
	}
	// Monotone in bytes.
	small, big := m.SnapshotTime(1<<20), m.SnapshotTime(64<<20)
	if big <= small {
		t.Errorf("64 MB snapshot (%v) not costlier than 1 MB (%v)", big, small)
	}
	// The bandwidth term dominates at size: 64 MB through a per-rank share
	// of 1.5 GB/s / 8 ranks is ~0.34 s.
	if big < 0.1 || big > 10 {
		t.Errorf("64 MB snapshot priced at %v s, outside plausible range", big)
	}
	// A platform without CkptBW falls back to the default instead of
	// dividing by zero.
	custom := Cori
	custom.CkptBW = 0
	mc, err := NewModel(custom, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := mc.SnapshotTime(1 << 20); got <= 0 || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("default-bandwidth snapshot priced at %v", got)
	}
	// AWS's slower file system must price the same snapshot higher.
	ma, err := NewModel(AWS, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ma.SnapshotTime(64<<20) <= m.SnapshotTime(64<<20) {
		t.Error("AWS snapshot not costlier than Cori's")
	}
}
