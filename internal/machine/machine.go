// Package machine models the four platforms of the paper's Table 1 — the
// Cori Cray XC40, Edison Cray XC30, Titan Cray XK7 (CPU partition), and an
// AWS c3.8xlarge cluster — so that one real execution of the pipeline can
// be priced under each platform and the paper's cross-architecture figures
// regenerated.
//
// The substitution (documented in DESIGN.md): we cannot run on the paper's
// hardware, so the pipeline counts its real work — k-mers parsed and
// inserted, bytes packed and exchanged, alignment DP cells computed — and
// this package converts counts into modeled seconds using
//
//   - a per-core compute rate (frequency × architecture factor) with a
//     cache multiplier that speeds up strong-scaled working sets as they
//     begin to fit in the last-level cache (the paper's observed
//     superlinear local speedups, Figs. 4–5);
//   - a LogGP-style cost for irregular all-to-all exchanges, split into
//     intra-node and inter-node parts, with per-peer message overheads and
//     a shared per-node injection bandwidth (Table 1's measured BW/node at
//     8 KB messages); and
//   - a first-call penalty on the earliest Alltoallv, reproducing the MPI
//     internal-setup effect the paper measures ("the first call ... is
//     almost twice as expensive ... as the second", §10).
//
// All constants are calibration parameters, not measurements; EXPERIMENTS.md
// compares the resulting curve shapes against the paper's.
package machine

import (
	"fmt"
	"math"
)

// Platform holds one machine's characteristics (Table 1 plus calibration
// constants).
type Platform struct {
	Name         string
	CoresPerNode int
	FreqGHz      float64
	// ArchFactor is per-core instructions-per-cycle efficiency relative to
	// Cori's Haswell cores.
	ArchFactor float64
	// LLCBytes is the last-level cache per node.
	LLCBytes float64
	// MemBytes is DRAM per node (Table 1).
	MemBytes float64
	// IntraLat / InterLat are hardware message latencies for on-node and
	// off-node peers (seconds), used for small latency-bound collectives.
	// Table 1 reports the 128-byte Get latency; AWS is estimated.
	IntraLat float64
	InterLat float64
	// PeerOverhead is the effective per-peer software cost one rank pays
	// per irregular all-to-all (seconds). At high rank counts Alltoallv
	// degenerates to ~P pairwise rounds whose per-round cost is dominated
	// by MPI software overhead and skew, tens of microseconds in practice
	// — this term, not the wire latency, is what makes the low-intensity
	// workload stop scaling (§10).
	PeerOverhead float64
	// IntraPeerOverhead is the same cost for on-node peers (shared-memory
	// transport).
	IntraPeerOverhead float64
	// BWNode is the effective per-node injection bandwidth achieved by
	// bulk all-to-all exchanges (bytes/s). Table 1's 8 KB-message
	// measurements fix the platforms' relative order; absolute values are
	// calibrated against the paper's stage rates.
	BWNode float64
	// BWIntra is the aggregate intra-node exchange bandwidth (bytes/s).
	BWIntra float64
	// BWRankCap bounds what a single rank's MPI stack can inject
	// (bytes/s); it binds only in low-density jobs such as the paper's
	// 1-rank-per-node breakdown runs (Figs. 9-10), where one process
	// cannot saturate the NIC.
	BWRankCap float64
	// CkptBW is the effective per-node checkpoint write bandwidth to the
	// machine's parallel file system (bytes/s), shared by the node's ranks
	// when a stage-boundary snapshot is written collectively. Lustre-class
	// file systems sustain on the order of 1 GB/s per client node; AWS's
	// EBS-backed cluster far less. 0 falls back to a conservative default.
	CkptBW float64
	// FirstCallFactor multiplies the cost of the very first Alltoallv —
	// MPI's internal setup of communication buffers and per-peer state.
	// The paper measures the first call at ~2x the second (§10) and Fig. 9
	// shows the Bloom stage's *total* exchange exceeding the hash-table
	// stage's despite 2.5x less volume, which requires the setup cost to
	// outweigh the volume ratio; the factors here are calibrated to that
	// stronger observation.
	FirstCallFactor float64
	// CacheBoost is the additional speedup factor when a working set fits
	// entirely in LLC (rate multiplier ranges over [1, 1+CacheBoost]).
	CacheBoost float64
}

// CoreSpeed returns the per-core compute-rate multiplier relative to a
// Cori Haswell core.
func (p Platform) CoreSpeed() float64 { return p.FreqGHz / 2.3 * p.ArchFactor }

// NodeSpeed returns the per-node compute-rate multiplier.
func (p Platform) NodeSpeed() float64 { return p.CoreSpeed() * float64(p.CoresPerNode) }

// The four evaluated platforms. Network figures derive from Table 1; AWS
// publishes only "10 Gigabit" injection, and the paper notes its node
// performs like a Titan CPU node, which fixes its compute calibration.
var (
	Cori = Platform{
		Name: "Cori (XC40)", CoresPerNode: 32, FreqGHz: 2.3, ArchFactor: 1.0,
		LLCBytes: 80e6, MemBytes: 128e9,
		IntraLat: 2.7e-6, InterLat: 2.7e-6,
		PeerOverhead: 3.5e-6, IntraPeerOverhead: 2e-6,
		BWNode: 2.0e9, BWIntra: 6e9, BWRankCap: 65e6, CkptBW: 1.5e9,
		FirstCallFactor: 4.0, CacheBoost: 1.3,
	}
	Edison = Platform{
		Name: "Edison (XC30)", CoresPerNode: 24, FreqGHz: 2.4, ArchFactor: 0.85,
		LLCBytes: 60e6, MemBytes: 64e9,
		IntraLat: 0.8e-6, InterLat: 0.8e-6,
		PeerOverhead: 5e-6, IntraPeerOverhead: 1.5e-6,
		BWNode: 1.2e9, BWIntra: 5e9, BWRankCap: 80e6, CkptBW: 1.0e9,
		FirstCallFactor: 3.5, CacheBoost: 1.3,
	}
	Titan = Platform{
		Name: "Titan (XK7)", CoresPerNode: 16, FreqGHz: 2.2, ArchFactor: 0.50,
		LLCBytes: 16e6, MemBytes: 32e9,
		IntraLat: 1.1e-6, InterLat: 1.1e-6,
		PeerOverhead: 8e-6, IntraPeerOverhead: 2e-6,
		BWNode: 0.5e9, BWIntra: 3e9, BWRankCap: 60e6, CkptBW: 0.8e9,
		FirstCallFactor: 3.0, CacheBoost: 1.2,
	}
	AWS = Platform{
		Name: "AWS", CoresPerNode: 16, FreqGHz: 2.8, ArchFactor: 0.40,
		LLCBytes: 50e6, MemBytes: 60e9,
		IntraLat: 3.0e-6, InterLat: 35e-6,
		PeerOverhead: 30e-6, IntraPeerOverhead: 4e-6,
		BWNode: 0.3e9, BWIntra: 2e9, BWRankCap: 40e6, CkptBW: 0.2e9,
		FirstCallFactor: 5.0, CacheBoost: 1.25,
	}
)

// Platforms lists the evaluated machines in the paper's plotting order.
var Platforms = []Platform{Cori, Edison, Titan, AWS}

// PlatformByName returns the platform with the given name prefix
// ("cori", "edison", "titan", "aws"), case-insensitively.
func PlatformByName(name string) (Platform, error) {
	for _, p := range Platforms {
		if len(name) > 0 && len(p.Name) >= len(name) &&
			equalFold(p.Name[:len(name)], name) {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("machine: unknown platform %q", name)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Model binds a platform to a job shape (node count and ranks per node)
// and implements spmd.CommModel plus compute pricing.
//
// The modeled job has Nodes × RanksPerNode MPI ranks. The *simulation*
// executing the algorithm may use fewer goroutine ranks (SimRanks); the
// model then treats each goroutine as a group of RealRanks/SimRanks MPI
// ranks operating in parallel: compute is divided by the group size,
// per-group exchange bytes are split across the group's ranks, and cache
// working sets shrink accordingly. With SimRanks == RealRanks the model is
// exact in its own terms; scaling keeps figure regeneration tractable at
// 32-node × 32-core shapes.
type Model struct {
	Plat         Platform
	Nodes        int
	RanksPerNode int
	SimRanks     int
}

// NewModel validates and builds a job model with one goroutine per modeled
// rank. RanksPerNode must not exceed the platform's cores per node (the
// paper pins one rank per core).
func NewModel(p Platform, nodes, ranksPerNode int) (*Model, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("machine: node count %d must be positive", nodes)
	}
	if ranksPerNode <= 0 {
		return nil, fmt.Errorf("machine: ranks per node %d must be positive", ranksPerNode)
	}
	if ranksPerNode > p.CoresPerNode {
		return nil, fmt.Errorf("machine: %d ranks per node exceeds %s's %d cores",
			ranksPerNode, p.Name, p.CoresPerNode)
	}
	return &Model{Plat: p, Nodes: nodes, RanksPerNode: ranksPerNode,
		SimRanks: nodes * ranksPerNode}, nil
}

// NewModelScaled builds a model of the paper's full-density job (one rank
// per core on every node) that will be *executed* by simRanks goroutines.
func NewModelScaled(p Platform, nodes, simRanks int) (*Model, error) {
	m, err := NewModel(p, nodes, p.CoresPerNode)
	if err != nil {
		return nil, err
	}
	if simRanks <= 0 {
		return nil, fmt.Errorf("machine: sim rank count %d must be positive", simRanks)
	}
	m.SimRanks = simRanks
	return m, nil
}

// Ranks returns the number of goroutine ranks the simulation must run
// with (the spmd world size this model is shaped for).
func (m *Model) Ranks() int { return m.SimRanks }

// RealRanks returns the modeled MPI job's rank count.
func (m *Model) RealRanks() int { return m.Nodes * m.RanksPerNode }

// groupSize returns how many modeled ranks each goroutine represents.
func (m *Model) groupSize() float64 {
	return float64(m.RealRanks()) / float64(m.SimRanks)
}

// peerLatency returns the per-peer software overhead one modeled rank pays
// across all its peers in one irregular all-to-all.
func (m *Model) peerLatency() float64 {
	rpn := m.RanksPerNode
	p := m.RealRanks()
	return float64(rpn-1)*m.Plat.IntraPeerOverhead + float64(p-rpn)*m.Plat.PeerOverhead
}

// wireTime returns the bandwidth term of moving maxSendBytes (counted on
// one simulation rank) through one irregular all-to-all.
func (m *Model) wireTime(maxSendBytes float64) float64 {
	maxSendBytes /= m.groupSize()
	p := m.RealRanks()
	rpn := m.RanksPerNode
	if p <= 1 {
		return 0
	}
	onPeers := float64(rpn - 1)
	offPeers := float64(p - rpn)
	intraBytes := maxSendBytes * onPeers / float64(p)
	interBytes := maxSendBytes * offPeers / float64(p)
	// Intra-node copies share the node's memory-side bandwidth across
	// the ranks of the node; off-node traffic shares the injection
	// bandwidth the same way, additionally capped by what one rank's
	// MPI stack can push.
	offBW := m.Plat.BWNode / float64(rpn)
	if m.Plat.BWRankCap > 0 && offBW > m.Plat.BWRankCap {
		offBW = m.Plat.BWRankCap
	}
	return intraBytes/(m.Plat.BWIntra/float64(rpn)) + interBytes/offBW
}

// AlltoallvTime implements spmd.CommModel. maxSendBytes is the total
// payload the busiest *simulation* rank contributes to one exchange; it is
// first converted to per-modeled-rank bytes.
func (m *Model) AlltoallvTime(callIdx int64, maxSendBytes float64) float64 {
	t := m.peerLatency() + m.wireTime(maxSendBytes)
	if callIdx == 0 {
		t *= m.Plat.FirstCallFactor
	}
	return t
}

// iPostFraction is the share of an exchange's per-peer software overhead
// paid up front when *posting* a non-blocking all-to-all (descriptor setup
// and buffer registration run on the caller's core; the rest of the
// per-peer cost is progressed in the background and stays in
// AlltoallvTime). MPI implementations report nonblocking-collective
// initiation at a modest fraction of the blocking call's software cost.
const iPostFraction = 0.2

// IPostTime implements the spmd async-model extension: the CPU-side cost
// of posting one non-blocking irregular all-to-all, charged on the posting
// rank's own clock rather than the exchange's. Without this term an
// overlapped exchange would look entirely free whenever local work covers
// it, which no real MPI_Ialltoallv achieves.
func (m *Model) IPostTime() float64 {
	return m.peerLatency() * iPostFraction
}

// streamChunkFraction is the share of the full per-peer software overhead
// one chunk round of an already-posted streamed exchange pays: the first
// round sets up descriptors and per-peer state, and successive chunks
// reuse them, leaving progression and completion-queue handling. It is
// what makes chunking a real trade-off in the model — halving the chunk
// size doubles how often this overhead is paid while the wire term stays
// fixed, so an over-fine stream prices itself out of its own overlap win.
const streamChunkFraction = 0.15

// StreamChunkTime implements the spmd stream-model extension: one chunk
// round of a streamed (chunked) irregular all-to-all in which the busiest
// rank contributes maxChunkBytes. The sum over a stream's rounds
// approaches AlltoallvTime of the whole payload as chunks grow, and
// degenerates to latency-bound as they shrink. The first-exchange factor
// applies exactly as for a regular exchange (MPI's internal setup does not
// care how the first payload is sliced).
func (m *Model) StreamChunkTime(callIdx int64, maxChunkBytes float64) float64 {
	t := m.peerLatency()*streamChunkFraction + m.wireTime(maxChunkBytes)
	if callIdx == 0 {
		t *= m.Plat.FirstCallFactor
	}
	return t
}

// ChunkPostTime implements the spmd stream-model extension: the CPU-side
// cost of posting one chunk round, the per-chunk analogue of IPostTime.
// Streaming is therefore never modeled as free — every extra round costs
// the posting rank real (unhideable) clock time.
func (m *Model) ChunkPostTime() float64 {
	return m.peerLatency() * streamChunkFraction * iPostFraction
}

const (
	// ckptLatency is the fixed per-segment cost of one rank's checkpoint
	// write: file create, metadata commit, and fsync round-trip on a
	// parallel file system (milliseconds in practice).
	ckptLatency = 2e-3
	// defaultCkptBW stands in for platforms that don't specify a
	// checkpoint bandwidth.
	defaultCkptBW = 500e6
)

// SnapshotTime prices one rank's stage-boundary checkpoint write of the
// given payload (counted on one simulation rank): fixed per-segment
// latency plus the bytes through the rank's share of the node's parallel
// file system bandwidth. Charged on the writing rank's own clock, so a
// checkpointed run is never modeled as free — the overhead shows up in
// virtual_seconds exactly as the snapshot I/O would on the machine.
func (m *Model) SnapshotTime(bytes float64) float64 {
	bw := m.Plat.CkptBW
	if bw <= 0 {
		bw = defaultCkptBW
	}
	if bytes < 0 {
		bytes = 0
	}
	return ckptLatency + (bytes/m.groupSize())/(bw/float64(m.RanksPerNode))
}

const (
	// serveAdmitLatency is the fixed software cost of admitting one query
	// request on the frontend rank: frame decode dispatch, tenant lookup,
	// admission bookkeeping, and the queue insert (tens of microseconds of
	// RPC-ingress path, far below a collective but never free).
	serveAdmitLatency = 20e-6
	// serveDecodeBW is the rate at which the frontend ingests and decodes
	// a query batch's payload bytes (gob decode plus copy-in).
	serveDecodeBW = 200e6
	// serveScorePerRank is the routing cost per candidate rank per scorer
	// pass: reading one rank's load snapshot and accumulating its weighted
	// normalized score.
	serveScorePerRank = 100e-9
)

// QueryAdmitTime prices the serve frontend's handling of one query
// request of reqBytes payload: fixed admission latency plus the batch
// bytes through the ingress decode bandwidth. Charged on the frontend
// rank's clock before the batch's collectives begin, so served query
// traffic is never modeled as free.
func (m *Model) QueryAdmitTime(reqBytes float64) float64 {
	if reqBytes < 0 {
		reqBytes = 0
	}
	return serveAdmitLatency + reqBytes/serveDecodeBW
}

// QueryRouteTime prices weighted scorer routing of one admitted batch:
// every configured scorer reads a load snapshot of every rank.
func (m *Model) QueryRouteTime(ranks, scorers int) float64 {
	if ranks < 0 {
		ranks = 0
	}
	if scorers < 1 {
		scorers = 1
	}
	return float64(ranks*scorers) * serveScorePerRank
}

// CollectiveTime implements spmd.CommModel: a latency-bound tree
// collective over nodes, plus an on-node combine.
func (m *Model) CollectiveTime() float64 {
	t := m.Plat.IntraLat * math.Ceil(log2(float64(m.RanksPerNode)))
	if m.Nodes > 1 {
		t += m.Plat.InterLat * math.Ceil(log2(float64(m.Nodes)))
	}
	return t
}

func log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// cacheMultiplier returns the compute-rate multiplier in
// [1, 1+CacheBoost] based on how much of a modeled rank's working set fits
// in its share of the LLC. This is the mechanism behind the paper's
// observed superlinear strong-scaling of local processing.
func (m *Model) cacheMultiplier(workingSetBytes float64) float64 {
	if workingSetBytes <= 0 {
		return 1 + m.Plat.CacheBoost
	}
	cachePerRank := m.Plat.LLCBytes / float64(m.RanksPerNode)
	frac := cachePerRank / workingSetBytes
	if frac > 1 {
		frac = 1
	}
	return 1 + m.Plat.CacheBoost*frac
}

// ComputeTime prices ops operations (counted on one simulation rank)
// against a Haswell-baseline rate of opsPerSec per core.
// workingSetBytes is the simulation rank's working set; both it and the
// work are split across the goroutine's modeled rank group.
func (m *Model) ComputeTime(ops, opsPerSec, workingSetBytes float64) float64 {
	if ops <= 0 {
		return 0
	}
	g := m.groupSize()
	rate := opsPerSec * m.Plat.CoreSpeed() * m.cacheMultiplier(workingSetBytes/g)
	return ops / g / rate
}

// Baseline per-core processing rates (operations per second on a Cori
// Haswell core with an out-of-cache working set). These are the model's
// calibration constants; see EXPERIMENTS.md for the shape validation.
const (
	// RateParse: k-mers parsed+hashed from reads per second.
	RateParse = 8e6
	// RateBloomInsert: Bloom filter insert-and-test operations per second
	// (h hash probes and bit updates per op).
	RateBloomInsert = 4e6
	// RateHTInsert: hash-table occurrence inserts per second (one probe
	// plus an append; lighter than a Bloom insert-and-test, which is how
	// the hash-table stage sustains roughly double the Bloom stage's rate,
	// Figs. 3 vs 5).
	RateHTInsert = 12e6
	// RateHTPrune: hash-table entries scanned per second in the prune pass.
	RateHTPrune = 30e6
	// RatePack: bytes packed into send buffers per second.
	RatePack = 400e6
	// RateOverlapScan: retained k-mers scanned per second in Algorithm 1.
	RateOverlapScan = 10e6
	// RatePairGen: read-pair tasks generated/buffered per second.
	RatePairGen = 10e6
	// RateCell: alignment DP cells computed per second (x-drop kernel).
	RateCell = 300e6
	// RateSeedPrep: alignment seeds prepared (sorted/filtered) per second.
	RateSeedPrep = 8e6
)
