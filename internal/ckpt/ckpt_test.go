package ckpt

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dibella/internal/spmd"
)

func TestSegmentCodecRoundtrip(t *testing.T) {
	hdr := SegmentHeader{Stage: StageDHT, Epoch: 7, World: 4, Rank: 2}
	sections := []Section{
		{Name: "reads", Data: []byte("read-bytes")},
		{Name: "dht", Data: bytes.Repeat([]byte{0xAB}, 1000)},
		{Name: "empty", Data: nil},
	}
	img, err := encodeSegment(hdr, sections)
	if err != nil {
		t.Fatal(err)
	}
	gotHdr, gotSecs, err := decodeSegment(img)
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr != hdr {
		t.Errorf("header %+v, want %+v", gotHdr, hdr)
	}
	if len(gotSecs) != len(sections) {
		t.Fatalf("%d sections", len(gotSecs))
	}
	for i := range sections {
		if gotSecs[i].Name != sections[i].Name || !bytes.Equal(gotSecs[i].Data, sections[i].Data) {
			t.Errorf("section %d mismatch", i)
		}
	}
	if _, err := SectionByName(gotSecs, "dht"); err != nil {
		t.Error(err)
	}
	if _, err := SectionByName(gotSecs, "nope"); err == nil {
		t.Error("missing section not reported")
	}
}

func TestSegmentCodecRejectsCorruption(t *testing.T) {
	img, err := encodeSegment(SegmentHeader{Stage: StageLoad, Epoch: 1, World: 1, Rank: 0},
		[]Section{{Name: "reads", Data: []byte("0123456789")}})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 8, 20, len(img) - 1} {
		if cut >= len(img) {
			continue
		}
		if _, _, err := decodeSegment(img[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	bad := append([]byte(nil), img...)
	bad[0] ^= 0xFF
	if _, _, err := decodeSegment(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("foreign magic: %v", err)
	}
}

// snapshotWorld commits the given stages over a p-rank in-process world,
// with per-rank sections derived from rank and stage.
func snapshotWorld(t *testing.T, dir string, w func(rank int) *Writer, p int, stages []string) {
	t.Helper()
	err := spmd.Run(p, func(c *spmd.Comm) error {
		wr := w(c.Rank())
		for _, stage := range stages {
			data := []byte(stage + "-rank-" + string(rune('0'+c.Rank())))
			if _, err := wr.Snapshot(c, stage, []Section{{Name: "payload", Data: data}}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriterCommitAndLoad(t *testing.T) {
	dir := t.TempDir()
	const p = 3
	writers := make([]*Writer, p)
	for r := range writers {
		writers[r] = &Writer{Dir: dir, ConfigHash: "abc", ConfigJSON: []byte(`{"k":17}`)}
	}
	snapshotWorld(t, dir, func(r int) *Writer { return writers[r] }, p, []string{StageLoad, StageDHT})

	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var cfg struct {
		K int `json:"k"`
	}
	if err := json.Unmarshal(m.ConfigJSON, &cfg); err != nil || m.ConfigHash != "abc" || cfg.K != 17 {
		t.Errorf("manifest config: hash %q json %q (%v)", m.ConfigHash, m.ConfigJSON, err)
	}
	latest, ok := m.Latest()
	if !ok || latest.Stage != StageDHT || latest.World != p {
		t.Fatalf("latest = %+v ok=%v", latest, ok)
	}
	if latest.Epoch <= m.Stages[StageLoad].Epoch {
		t.Error("epochs not monotone across stages")
	}
	for r := 0; r < p; r++ {
		secs, err := ReadSegment(dir, &latest, &latest.Segments[r])
		if err != nil {
			t.Fatalf("rank %d segment: %v", r, err)
		}
		data, err := SectionByName(secs, "payload")
		if err != nil {
			t.Fatal(err)
		}
		want := "dht-rank-" + string(rune('0'+r))
		if string(data) != want {
			t.Errorf("rank %d payload %q, want %q", r, data, want)
		}
	}
}

func TestReadSegmentRejectsTamperedFile(t *testing.T) {
	dir := t.TempDir()
	wr := &Writer{Dir: dir, ConfigHash: "h"}
	snapshotWorld(t, dir, func(int) *Writer { return wr }, 1, []string{StageLoad})
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stages[StageLoad]
	path := filepath.Join(dir, st.Segments[0].File)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation: clear "truncated or partial" error.
	if err := os.WriteFile(path, img[:len(img)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegment(dir, &st, &st.Segments[0]); err == nil || !strings.Contains(err.Error(), "truncated or partial") {
		t.Errorf("truncated segment: %v", err)
	}
	// Bit flip at same length: digest mismatch.
	flipped := append([]byte(nil), img...)
	flipped[len(flipped)-1] ^= 0x01
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegment(dir, &st, &st.Segments[0]); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Errorf("corrupt segment: %v", err)
	}
}

func TestWriterVetoLeavesPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	const p = 2
	writers := make([]*Writer, p)
	for r := range writers {
		writers[r] = &Writer{Dir: dir, ConfigHash: "h"}
	}
	snapshotWorld(t, dir, func(r int) *Writer { return writers[r] }, p, []string{StageLoad})

	// Second epoch: rank 1's segment write fails (its stage path is
	// occupied by a directory), so the epoch must abort on every rank and
	// the manifest must still describe only the first snapshot.
	blocked := filepath.Join(dir, SegmentFile(StageDHT, 1, 2))
	if err := os.MkdirAll(blocked, 0o755); err != nil {
		t.Fatal(err)
	}
	errs := make([]error, p)
	err := spmd.Run(p, func(c *spmd.Comm) error {
		_, err := writers[c.Rank()].Snapshot(c, StageDHT, []Section{{Name: "payload", Data: []byte("x")}})
		errs[c.Rank()] = err
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "rank 1") {
			t.Errorf("rank %d: %v, want veto naming rank 1", r, err)
		}
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, exists := m.Stages[StageDHT]; exists {
		t.Error("vetoed stage appears in the manifest")
	}
	if _, ok := m.Stages[StageLoad]; !ok {
		t.Error("previous snapshot lost")
	}
}

// TestWriterVetoedResnapshotKeepsLatestStage: a vetoed re-snapshot of
// the stage the manifest's latest snapshot lives in must leave that
// snapshot fully loadable — epoch-suffixed segment names keep the new
// epoch's writes away from the files the manifest references.
func TestWriterVetoedResnapshotKeepsLatestStage(t *testing.T) {
	dir := t.TempDir()
	w1 := &Writer{Dir: dir, ConfigHash: "h"}
	snapshotWorld(t, dir, func(int) *Writer { return w1 }, 1, []string{StageLoad})

	// A second run re-snapshots the same stage (epoch 2) and is vetoed:
	// the segment write fails because its (epoch-suffixed) path is
	// occupied by a directory.
	if err := os.MkdirAll(filepath.Join(dir, SegmentFile(StageLoad, 0, 2)), 0o755); err != nil {
		t.Fatal(err)
	}
	w2 := &Writer{Dir: dir, ConfigHash: "h"}
	var snapErr error
	err := spmd.Run(1, func(c *spmd.Comm) error {
		_, snapErr = w2.Snapshot(c, StageLoad, []Section{{Name: "payload", Data: []byte("new")}})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snapErr == nil {
		t.Fatal("blocked re-snapshot committed")
	}
	// The previous snapshot must still load, bytes and digest intact.
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := m.Latest()
	if !ok || st.Stage != StageLoad || st.Epoch != 1 {
		t.Fatalf("latest = %+v ok=%v, want epoch-1 load snapshot", st, ok)
	}
	secs, err := ReadSegment(dir, &st, &st.Segments[0])
	if err != nil {
		t.Fatalf("previous snapshot unreadable after vetoed re-snapshot: %v", err)
	}
	if data, _ := SectionByName(secs, "payload"); string(data) != StageLoad+"-rank-0" {
		t.Errorf("previous snapshot's payload clobbered: %q", data)
	}
}

// TestWriterGCsSupersededSegments: committing a stage removes only the
// files of the epoch it replaced, after the new manifest is durable.
func TestWriterGCsSupersededSegments(t *testing.T) {
	dir := t.TempDir()
	w1 := &Writer{Dir: dir, ConfigHash: "h"}
	snapshotWorld(t, dir, func(int) *Writer { return w1 }, 1, []string{StageLoad})
	old := filepath.Join(dir, SegmentFile(StageLoad, 0, 1))
	if _, err := os.Stat(old); err != nil {
		t.Fatal(err)
	}
	w2 := &Writer{Dir: dir, ConfigHash: "h"}
	snapshotWorld(t, dir, func(int) *Writer { return w2 }, 1, []string{StageLoad})
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Errorf("superseded epoch-1 segment still present: %v", err)
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stages[StageLoad]
	if st.Epoch != 2 {
		t.Fatalf("epoch = %d", st.Epoch)
	}
	if _, err := ReadSegment(dir, &st, &st.Segments[0]); err != nil {
		t.Errorf("replacing snapshot unreadable: %v", err)
	}
}

func TestWriterLineage(t *testing.T) {
	dir := t.TempDir()
	w1 := &Writer{Dir: dir, ConfigHash: "cfg1"}
	snapshotWorld(t, dir, func(int) *Writer { return w1 }, 1, []string{StageLoad, StageDHT, StageOverlap})

	// A resumed run (same config, resumed from dht) keeps load+dht,
	// drops overlap on its first commit.
	w2 := &Writer{Dir: dir, ConfigHash: "cfg1", KeepThrough: StageDHT}
	snapshotWorld(t, dir, func(int) *Writer { return w2 }, 1, []string{StageOverlap})
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Stages) != 3 {
		t.Errorf("resumed lineage has %d stages, want 3", len(m.Stages))
	}
	if m.Stages[StageOverlap].Epoch <= m.Stages[StageDHT].Epoch {
		t.Error("re-written overlap stage did not advance the epoch")
	}

	// A run with a different config starts an empty lineage.
	w3 := &Writer{Dir: dir, ConfigHash: "cfg2", KeepThrough: StageOverlap}
	snapshotWorld(t, dir, func(int) *Writer { return w3 }, 1, []string{StageLoad})
	m, err = ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Stages) != 1 || m.ConfigHash != "cfg2" {
		t.Errorf("config change kept %d stages (hash %s)", len(m.Stages), m.ConfigHash)
	}
}

func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(dir); err == nil {
		t.Error("missing manifest accepted")
	}
	if err := os.WriteFile(ManifestPath(dir), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Error("corrupt manifest accepted")
	}
	bad := &Manifest{Version: manifestVersion, Stages: map[string]StageInfo{
		"dht": {Stage: "dht", World: 2, Segments: []SegmentInfo{{Rank: 0}}},
	}}
	if err := writeManifest(dir, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Error("segment/world mismatch accepted")
	}
}

func TestHashConfigStable(t *testing.T) {
	a, b := HashConfig([]byte(`{"k":17}`)), HashConfig([]byte(`{"k":17}`))
	if a != b || a == "" {
		t.Errorf("hash unstable: %q %q", a, b)
	}
	if HashConfig([]byte(`{"k":19}`)) == a {
		t.Error("different configs hash equal")
	}
}
