// Package ckpt is diBELLA's checkpoint/restart subsystem: stage-boundary
// snapshots of the distributed pipeline's state into per-rank segment
// files plus a rank-0 manifest, written collectively under an epoch
// barrier so a snapshot is only ever valid when every rank committed.
//
// Layout of a checkpoint directory:
//
//	<dir>/manifest.json        rank 0's commit record (atomic rename)
//	<dir>/<stage>/seg-<rank>.ckpt
//
// A segment file is a self-describing container (header + named
// sections) whose CRC-64 digest and byte count are recorded in the
// manifest at commit time; the loader verifies both before decoding, so
// a truncated or bit-flipped segment is rejected with a clear error
// instead of resuming from garbage.
//
// Crash consistency: segments are written to temporary files and renamed
// into place, the world agrees on the epoch commit via spmd.AgreeCommit
// (any rank's write failure vetoes the epoch), and only then does rank 0
// publish the manifest — also by atomic rename. A crash at any point
// leaves either the previous manifest (previous snapshot wins) or the
// new one (new snapshot complete); never a manifest pointing at
// half-written segments.
//
// Elastic restart: because the pipeline's distributed state is
// deterministically partitioned (reads by the block distribution, k-mers
// by hash ownership, alignment tasks by the placement policy), a
// snapshot taken at world size W can resume at any size P — the loader
// assigns old segments to new ranks and re-shards through the pipeline's
// own collectives. See internal/pipeline's resume entry points.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
)

const (
	// segMagic brands segment files ("dibella checkpoint").
	segMagic = 0xD1BECC09
	// segVersion is the segment format version; bumped on incompatible
	// layout changes so an old binary rejects a new segment cleanly.
	segVersion = 1
	// maxSectionBytes bounds a single decoded section; a corrupt length
	// field fails fast instead of attempting a huge allocation.
	maxSectionBytes = 1 << 34
)

// crcTable is the ECMA polynomial table used for segment digests.
var crcTable = crc64.MakeTable(crc64.ECMA)

// SegmentHeader identifies what a segment file holds: which stage
// boundary, which commit epoch, and which rank of which world wrote it.
// The loader cross-checks every field against the manifest entry that
// referenced the file, so a segment from a different stage, epoch, or
// run cannot be spliced in silently.
type SegmentHeader struct {
	Stage string
	Epoch uint64
	World int
	Rank  int
}

// Section is one named payload of a segment file (e.g. "reads", "dht",
// "tasks"). Names let a stage's segment carry several state components
// without the codecs knowing about each other.
type Section struct {
	Name string
	Data []byte
}

// encodeSegment renders the full segment file image.
func encodeSegment(hdr SegmentHeader, sections []Section) ([]byte, error) {
	if len(hdr.Stage) > 0xFF {
		return nil, fmt.Errorf("ckpt: stage name %q too long", hdr.Stage)
	}
	n := 4 + 4 + 1 + len(hdr.Stage) + 8 + 4 + 4 + 4
	for _, s := range sections {
		n += 1 + len(s.Name) + 8 + len(s.Data)
	}
	buf := make([]byte, 0, n)
	buf = binary.BigEndian.AppendUint32(buf, segMagic)
	buf = binary.BigEndian.AppendUint32(buf, segVersion)
	buf = append(buf, byte(len(hdr.Stage)))
	buf = append(buf, hdr.Stage...)
	buf = binary.BigEndian.AppendUint64(buf, hdr.Epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(hdr.World))
	buf = binary.BigEndian.AppendUint32(buf, uint32(hdr.Rank))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(sections)))
	for _, s := range sections {
		if len(s.Name) > 0xFF {
			return nil, fmt.Errorf("ckpt: section name %q too long", s.Name)
		}
		buf = append(buf, byte(len(s.Name)))
		buf = append(buf, s.Name...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(len(s.Data)))
		buf = append(buf, s.Data...)
	}
	return buf, nil
}

// decodeSegment parses a segment file image.
func decodeSegment(b []byte) (SegmentHeader, []Section, error) {
	var hdr SegmentHeader
	if len(b) < 9 {
		return hdr, nil, fmt.Errorf("ckpt: segment header truncated (%d bytes)", len(b))
	}
	if m := binary.BigEndian.Uint32(b); m != segMagic {
		return hdr, nil, fmt.Errorf("ckpt: bad segment magic %#08x (not a checkpoint segment)", m)
	}
	if v := binary.BigEndian.Uint32(b[4:]); v != segVersion {
		return hdr, nil, fmt.Errorf("ckpt: segment format version %d, this binary reads %d", v, segVersion)
	}
	stageLen := int(b[8])
	b = b[9:]
	if len(b) < stageLen+20 {
		return hdr, nil, fmt.Errorf("ckpt: segment header truncated")
	}
	hdr.Stage = string(b[:stageLen])
	b = b[stageLen:]
	hdr.Epoch = binary.BigEndian.Uint64(b)
	hdr.World = int(binary.BigEndian.Uint32(b[8:]))
	hdr.Rank = int(binary.BigEndian.Uint32(b[12:]))
	nSections := int(binary.BigEndian.Uint32(b[16:]))
	b = b[20:]
	sections := make([]Section, 0, nSections)
	for i := 0; i < nSections; i++ {
		if len(b) < 1 {
			return hdr, nil, fmt.Errorf("ckpt: segment truncated at section %d", i)
		}
		nameLen := int(b[0])
		b = b[1:]
		if len(b) < nameLen+8 {
			return hdr, nil, fmt.Errorf("ckpt: segment truncated at section %d name", i)
		}
		name := string(b[:nameLen])
		b = b[nameLen:]
		dataLen := binary.BigEndian.Uint64(b)
		b = b[8:]
		if dataLen > maxSectionBytes || uint64(len(b)) < dataLen {
			return hdr, nil, fmt.Errorf("ckpt: segment truncated in section %q (%d of %d bytes)",
				name, len(b), dataLen)
		}
		sections = append(sections, Section{Name: name, Data: b[:dataLen]})
		b = b[dataLen:]
	}
	if len(b) != 0 {
		return hdr, nil, fmt.Errorf("ckpt: segment has %d trailing bytes", len(b))
	}
	return hdr, sections, nil
}

// SegmentFile returns the manifest-relative path of a stage's per-rank
// segment for one commit epoch. The epoch is part of the name so a
// re-snapshot of the same stage never writes over the previous
// snapshot's files: until the new manifest is published (the commit
// point), the old manifest's segments remain intact on disk, keeping
// the previous-snapshot-wins guarantee even for a vetoed or crashed
// re-snapshot of the manifest's latest stage. Superseded files are
// garbage-collected only after the replacing manifest is durable.
func SegmentFile(stage string, rank int, epoch uint64) string {
	return filepath.Join(stage, fmt.Sprintf("seg-%05d-e%06d.ckpt", rank, epoch))
}

// writeSegmentFile durably writes one segment: encode, write to a
// temporary file in the same directory, fsync, rename into place.
// Returns the file's byte count and CRC-64 digest for the manifest.
func writeSegmentFile(path string, hdr SegmentHeader, sections []Section) (int64, uint64, error) {
	img, err := encodeSegment(hdr, sections)
	if err != nil {
		return 0, 0, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, 0, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".seg-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		return 0, 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, 0, err
	}
	return int64(len(img)), crc64.Checksum(img, crcTable), nil
}

// ReadSegment loads and verifies one segment file against its manifest
// record: byte count, CRC-64 digest, and header identity must all match
// before any section is handed to a decoder. Sections alias the file
// image read into memory.
func ReadSegment(dir string, st *StageInfo, seg *SegmentInfo) ([]Section, error) {
	path := filepath.Join(dir, seg.File)
	img, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if int64(len(img)) != seg.Bytes {
		return nil, fmt.Errorf("ckpt: %s is %d bytes, manifest recorded %d (truncated or partial segment)",
			path, len(img), seg.Bytes)
	}
	if crc := crc64.Checksum(img, crcTable); crc != seg.CRC64 {
		return nil, fmt.Errorf("ckpt: %s digest %016x does not match manifest %016x (corrupt segment)",
			path, crc, seg.CRC64)
	}
	hdr, sections, err := decodeSegment(img)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", path, err)
	}
	if hdr.Stage != st.Stage || hdr.Epoch != st.Epoch || hdr.World != st.World || hdr.Rank != seg.Rank {
		return nil, fmt.Errorf("ckpt: %s header (stage %q epoch %d world %d rank %d) does not match manifest (stage %q epoch %d world %d rank %d)",
			path, hdr.Stage, hdr.Epoch, hdr.World, hdr.Rank, st.Stage, st.Epoch, st.World, seg.Rank)
	}
	return sections, nil
}

// SectionByName returns the named section of a decoded segment.
func SectionByName(sections []Section, name string) ([]byte, error) {
	for _, s := range sections {
		if s.Name == name {
			return s.Data, nil
		}
	}
	return nil, fmt.Errorf("ckpt: segment has no %q section", name)
}
