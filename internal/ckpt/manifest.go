package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Pipeline stage boundaries, in execution order. These are the points
// the subsystem can snapshot at and resume from.
const (
	// StageLoad: the sharded read store, right after cooperative input
	// loading.
	StageLoad = "load"
	// StageDHT: the k-mer hash-table partitions (plus the read store),
	// right after DHT construction and pruning.
	StageDHT = "dht"
	// StageOverlap: the consolidated alignment task sets (plus the read
	// store), right after overlap detection.
	StageOverlap = "overlap"
)

// Stages lists the checkpointable boundaries in pipeline order.
var Stages = []string{StageLoad, StageDHT, StageOverlap}

// StageOrder returns a stage's position in the pipeline (later stages
// supersede earlier ones when picking a resume point), or -1 for an
// unknown stage.
func StageOrder(stage string) int {
	for i, s := range Stages {
		if s == stage {
			return i
		}
	}
	return -1
}

// manifestName is the commit record's file name inside a checkpoint
// directory.
const manifestName = "manifest.json"

// manifestVersion is bumped on incompatible manifest schema changes.
const manifestVersion = 1

// SegmentInfo is the manifest's record of one rank's committed segment.
type SegmentInfo struct {
	Rank  int    `json:"rank"`
	File  string `json:"file"` // manifest-relative path
	Bytes int64  `json:"bytes"`
	CRC64 uint64 `json:"crc64"`
}

// StageInfo is the manifest's record of one committed stage snapshot:
// which epoch it belongs to, the world size that wrote it, and every
// rank's segment.
type StageInfo struct {
	Stage    string        `json:"stage"`
	Epoch    uint64        `json:"epoch"`
	World    int           `json:"world"`
	Segments []SegmentInfo `json:"segments"`
}

// Manifest is the checkpoint directory's commit record. It is only ever
// written by rank 0, after the whole world agreed the epoch's segments
// are durable, and only by atomic rename — its presence and contents
// therefore define exactly which snapshots exist.
type Manifest struct {
	Version    int    `json:"version"`
	ConfigHash string `json:"config_hash"`
	// ConfigJSON is the producing run's resolved pipeline configuration,
	// so `dibella -resume <dir>` needs no other flags.
	ConfigJSON json.RawMessage      `json:"config"`
	Epoch      uint64               `json:"epoch"` // last committed epoch
	Stages     map[string]StageInfo `json:"stages"`
}

// Latest returns the most advanced committed stage snapshot (the resume
// point), ok=false when the manifest records none.
func (m *Manifest) Latest() (StageInfo, bool) {
	for i := len(Stages) - 1; i >= 0; i-- {
		if st, ok := m.Stages[Stages[i]]; ok {
			return st, true
		}
	}
	return StageInfo{}, false
}

// ManifestPath returns the manifest's location inside a checkpoint
// directory.
func ManifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// ReadManifest loads and validates a checkpoint directory's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	blob, err := os.ReadFile(ManifestPath(dir))
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", ManifestPath(dir), err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("ckpt: manifest version %d, this binary reads %d", m.Version, manifestVersion)
	}
	for name, st := range m.Stages {
		if name != st.Stage {
			return nil, fmt.Errorf("ckpt: manifest stage %q recorded under key %q", st.Stage, name)
		}
		if StageOrder(st.Stage) < 0 {
			return nil, fmt.Errorf("ckpt: manifest records unknown stage %q", st.Stage)
		}
		if st.World <= 0 || len(st.Segments) != st.World {
			return nil, fmt.Errorf("ckpt: manifest stage %q has %d segments for world size %d",
				st.Stage, len(st.Segments), st.World)
		}
		for i, seg := range st.Segments {
			if seg.Rank != i {
				return nil, fmt.Errorf("ckpt: manifest stage %q segment %d recorded for rank %d",
					st.Stage, i, seg.Rank)
			}
		}
	}
	return &m, nil
}

// writeManifest atomically publishes the manifest: marshal, write to a
// temporary file, fsync, rename over the previous manifest.
func writeManifest(dir string, m *Manifest) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), ManifestPath(dir))
}

// HashConfig digests a canonical (JSON) rendering of the
// output-affecting configuration. Snapshots written under one hash can
// only be resumed by a run whose configuration hashes identically —
// resuming k=17 state into a k=19 run would silently corrupt output.
func HashConfig(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:8])
}
