package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dibella/internal/spmd"
)

// Writer emits stage-boundary snapshots for one rank of a running world.
// Every rank holds its own Writer over the same directory (a shared file
// system, as cluster checkpointing assumes); Snapshot is collective.
//
// Manifest lineage: the first commit of a run decides what survives from
// the directory's previous contents. A run with a different ConfigHash —
// or a fresh (non-resumed) run — starts an empty manifest, so stale
// stages from an earlier run can never be mixed with the new run's. A
// resumed run sets KeepThrough to the stage it resumed from, preserving
// that snapshot (and its predecessors) while dropping the now-superseded
// later stages.
type Writer struct {
	Dir        string
	ConfigHash string
	// ConfigJSON is the run's resolved configuration, recorded in the
	// manifest so a resume needs no flags.
	ConfigJSON []byte
	// KeepThrough, when non-empty, preserves existing manifest stages up
	// to and including this stage (same ConfigHash only).
	KeepThrough string

	inited   bool
	manifest *Manifest // maintained on rank 0 only
	// prevStages remembers the directory's pre-existing manifest entries
	// (rank 0 only): once a commit supersedes one of them with a durable
	// new manifest, its now-unreferenced segment files are removed.
	prevStages map[string]StageInfo
}

// init prepares rank 0's manifest state on first commit.
func (w *Writer) init() {
	if w.inited {
		return
	}
	w.inited = true
	fresh := &Manifest{
		Version: manifestVersion, ConfigHash: w.ConfigHash,
		ConfigJSON: json.RawMessage(w.ConfigJSON),
		Stages:     make(map[string]StageInfo),
	}
	w.manifest = fresh
	m, err := ReadManifest(w.Dir)
	if err != nil {
		// No (or unreadable) previous manifest: nothing valid to keep.
		return
	}
	// Epochs stay monotone within a directory across runs, so segment
	// headers from different lineages can never collide.
	fresh.Epoch = m.Epoch
	w.prevStages = m.Stages
	if m.ConfigHash == w.ConfigHash && w.KeepThrough != "" {
		keep := StageOrder(w.KeepThrough)
		for name, st := range m.Stages {
			if StageOrder(name) <= keep {
				fresh.Stages[name] = st
			}
		}
	}
}

// Snapshot collectively commits one stage boundary: every rank durably
// writes its segment (the given sections), the world agrees the epoch
// via spmd.AgreeCommit — any rank's failure vetoes it — and rank 0 then
// publishes the updated manifest. Returns the segment's byte count (for
// I/O-cost modeling). On error the directory still holds the previous
// valid snapshot, never a partial one.
func (w *Writer) Snapshot(c *spmd.Comm, stage string, sections []Section) (int64, error) {
	if StageOrder(stage) < 0 {
		return 0, fmt.Errorf("ckpt: unknown stage %q", stage)
	}
	var next uint64
	if c.Rank() == 0 {
		w.init()
		next = w.manifest.Epoch + 1
	}
	epoch := spmd.Bcast(c, next, 0)

	hdr := SegmentHeader{Stage: stage, Epoch: epoch, World: c.Size(), Rank: c.Rank()}
	path := filepath.Join(w.Dir, SegmentFile(stage, c.Rank(), epoch))
	vote := spmd.CommitVote{OK: true}
	nbytes, crc, err := writeSegmentFile(path, hdr, sections)
	if err != nil {
		vote = spmd.CommitVote{Err: err.Error()}
	}
	vote.Digest, vote.Bytes = crc, nbytes

	votes, ok := spmd.AgreeCommit(c, vote)
	if !ok {
		// Epoch-suffixed file names mean this failed epoch touched no
		// file any manifest references: the previous snapshot (same
		// stage included) is still fully intact.
		return nbytes, fmt.Errorf("ckpt: %s snapshot (epoch %d) aborted: %s",
			stage, epoch, spmd.CommitFailure(votes))
	}

	status := ""
	if c.Rank() == 0 {
		// The stage entry this commit replaces: from the directory's
		// pre-existing manifest (a re-run or resumed run superseding an
		// older snapshot of the same stage), or — defensively — from this
		// run's own manifest.
		superseded := w.manifest.Stages[stage].Segments
		if prev, ok := w.prevStages[stage]; ok && prev.Epoch != epoch {
			superseded = append(superseded, prev.Segments...)
			delete(w.prevStages, stage)
		}
		segs := make([]SegmentInfo, len(votes))
		for r, v := range votes {
			segs[r] = SegmentInfo{Rank: r, File: SegmentFile(stage, r, epoch), Bytes: v.Bytes, CRC64: v.Digest}
		}
		w.manifest.Stages[stage] = StageInfo{Stage: stage, Epoch: epoch, World: c.Size(), Segments: segs}
		w.manifest.Epoch = epoch
		if err := writeManifest(w.Dir, w.manifest); err != nil {
			status = err.Error()
		} else {
			// The new manifest is durable; the superseded epoch's
			// segments are now unreferenced. Best-effort GC — a leftover
			// file is wasted space, never a correctness problem.
			for _, seg := range superseded {
				os.Remove(filepath.Join(w.Dir, seg.File))
			}
		}
	}
	// The commit point is the manifest rename; every rank must share its
	// outcome or a crashed rank 0 would leave survivors believing in a
	// snapshot that was never published.
	if s := spmd.Bcast(c, status, 0); s != "" {
		return nbytes, fmt.Errorf("ckpt: publishing %s snapshot manifest: %s", stage, s)
	}
	return nbytes, nil
}
