package figures

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"dibella/internal/daligner"
	"dibella/internal/fastq"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/pipeline"
	"dibella/internal/seqgen"
	"dibella/internal/stats"
)

// Table1 prints the evaluated-platform characteristics (the model inputs).
func Table1(o *Options) (string, error) {
	headers := []string{"platform", "cores/node", "GHz", "LLC MB", "mem GB",
		"lat us", "BW/node MB/s", "1st-call x"}
	var rows [][]string
	for _, p := range machine.Platforms {
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%d", p.CoresPerNode),
			fmt.Sprintf("%.1f", p.FreqGHz),
			fmt.Sprintf("%.0f", p.LLCBytes/1e6),
			fmt.Sprintf("%.0f", p.MemBytes/1e9),
			fmt.Sprintf("%.1f", p.InterLat*1e6),
			fmt.Sprintf("%.1f", p.BWNode/1e6),
			fmt.Sprintf("%.1f", p.FirstCallFactor),
		})
	}
	return "Table 1: evaluated platforms (model parameters)\n" +
		stats.FormatTable(headers, rows), nil
}

// Fig3 regenerates the Bloom-filter stage cross-architecture rates:
// millions of k-mers processed per second vs. nodes.
func Fig3(o *Options) (string, error) {
	ms, err := o.Sweep30x()
	if err != nil {
		return "", err
	}
	series := seriesBy(ms, func(m RunMetrics) float64 {
		return float64(m.BagKmers) / m.Stage[pipeline.StageBloom].Total / 1e6
	})
	return formatSeriesTable("Figure 3: Bloom Filter performance (E. coli 30x, one-seed)",
		"M k-mers/sec", series), nil
}

// Fig4 regenerates the AWS Bloom-stage efficiency split: packing,
// exchange, local processing, and overall efficiency relative to 1 node.
func Fig4(o *Options) (string, error) {
	ms, err := o.Sweep30x()
	if err != nil {
		return "", err
	}
	var aws []RunMetrics
	for _, m := range ms {
		if strings.HasPrefix(m.Platform, "AWS") {
			aws = append(aws, m)
		}
	}
	if len(aws) == 0 {
		return "", fmt.Errorf("figures: no AWS runs in sweep")
	}
	sort.Slice(aws, func(i, j int) bool { return aws[i].Nodes < aws[j].Nodes })
	base := aws[0]
	headers := []string{"nodes", "packing eff", "exchanging eff", "local eff", "overall eff"}
	var rows [][]string
	for _, m := range aws {
		n := m.Nodes
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", stats.Efficiency(base.BloomPack, base.Nodes, m.BloomPack, n)),
			fmt.Sprintf("%.3f", stats.Efficiency(base.BloomExchange, base.Nodes, m.BloomExchange, n)),
			fmt.Sprintf("%.3f", stats.Efficiency(base.BloomLocal, base.Nodes, m.BloomLocal, n)),
			fmt.Sprintf("%.3f", stats.Efficiency(base.Stage[pipeline.StageBloom].Total, base.Nodes,
				m.Stage[pipeline.StageBloom].Total, n)),
		})
	}
	return "Figure 4: Bloom Filter efficiency on AWS (E. coli 30x, one-seed)\n" +
		stats.FormatTable(headers, rows), nil
}

// Fig5 regenerates the hash-table stage rates.
func Fig5(o *Options) (string, error) {
	ms, err := o.Sweep30x()
	if err != nil {
		return "", err
	}
	series := seriesBy(ms, func(m RunMetrics) float64 {
		return float64(m.BagKmers) / m.Stage[pipeline.StageHash].Total / 1e6
	})
	return formatSeriesTable("Figure 5: Hash Table construction performance (E. coli 30x, one-seed)",
		"M k-mers/sec", series), nil
}

// Fig6 regenerates the overlap-stage rates in millions of retained k-mers
// per second.
func Fig6(o *Options) (string, error) {
	ms, err := o.Sweep30x()
	if err != nil {
		return "", err
	}
	series := seriesBy(ms, func(m RunMetrics) float64 {
		return float64(m.Retained) / m.Stage[pipeline.StageOverlap].Total / 1e6
	})
	return formatSeriesTable("Figure 6: Overlap performance (E. coli 30x, one-seed)",
		"M retained k-mers/sec", series), nil
}

// Fig7 regenerates the alignment-stage rates in millions of alignments per
// second.
func Fig7(o *Options) (string, error) {
	ms, err := o.Sweep30x()
	if err != nil {
		return "", err
	}
	series := seriesBy(ms, func(m RunMetrics) float64 {
		return float64(m.Alignments) / m.Stage[pipeline.StageAlign].Total / 1e6
	})
	return formatSeriesTable("Figure 7: Alignment performance (E. coli 30x, one-seed)",
		"M alignments/sec", series), nil
}

// Fig8 regenerates the alignment-stage load imbalance (max/mean stage
// time across ranks; 1.0 is perfect).
func Fig8(o *Options) (string, error) {
	ms, err := o.Sweep30x()
	if err != nil {
		return "", err
	}
	series := seriesBy(ms, func(m RunMetrics) float64 { return m.AlignImbalance })
	out := formatSeriesTable("Figure 8: Alignment stage load imbalance (E. coli 30x, one-seed)",
		"max/mean (1.0 = perfect)", series)
	// The companion claim: task-count imbalance is near zero.
	var worst float64
	for _, m := range ms {
		if m.TaskImbalance > worst {
			worst = m.TaskImbalance
		}
	}
	return out + fmt.Sprintf("worst task-count imbalance across runs: %.4f\n", worst), nil
}

// breakdown runs the Cori 1-rank-per-node breakdown of Figs. 9 and 10.
func breakdown(o *Options, title string, coverage int, cfg pipeline.Config) (string, error) {
	o.setDefaults()
	var rds []*fastq.Record
	var err error
	if coverage == 100 {
		rds, err = o.Reads100x()
	} else {
		rds, err = o.Reads30x()
	}
	if err != nil {
		return "", err
	}
	headers := []string{"nodes", "BF%", "BF-exch%", "HT%", "HT-exch%",
		"OV%", "OV-exch%", "AL%", "AL-exch%", "total s"}
	var rows [][]string
	for _, nodes := range o.NodeCounts {
		// Figs. 9–10 use one MPI rank per node with 32 cores each; model
		// that shape directly (one goroutine per node).
		mdl, err := machine.NewModel(machine.Cori, nodes, 1)
		if err != nil {
			return "", err
		}
		rep, err := pipeline.Execute(nodes, mdl, rds, cfg)
		if err != nil {
			return "", err
		}
		o.logf("breakdown nodes=%d: %s", nodes, rep.Summary())
		total := rep.TotalVirtual()
		pct := func(v float64) string { return fmt.Sprintf("%.1f", v/total*100) }
		row := []string{fmt.Sprintf("%d", nodes)}
		for _, s := range pipeline.Stages {
			t := rep.StageVirtual(s)
			e := rep.StageExchangeVirtual(s)
			row = append(row, pct(t-e), pct(e))
		}
		row = append(row, fmt.Sprintf("%.3f", total))
		rows = append(rows, row)
	}
	return title + "\n" + stats.FormatTable(headers, rows), nil
}

// Fig9 regenerates the Cori runtime breakdown for E. coli 30x one-seed.
func Fig9(o *Options) (string, error) {
	return breakdown(o,
		"Figure 9: Cori (XC40) runtime breakdown, E. coli 30x one-seed (1 rank/node)",
		30, oneSeedConfig())
}

// Fig10 regenerates the Cori runtime breakdown for E. coli 100x with all
// seeds at >= 1 Kbp separation.
func Fig10(o *Options) (string, error) {
	cfg := oneSeedConfig()
	cfg.SeedMode = overlap.MinDistance
	cfg.MinDist = 1000
	cfg.Coverage = 100
	return breakdown(o,
		"Figure 10: Cori (XC40) runtime breakdown, E. coli 100x all seeds d=1K (1 rank/node)",
		100, cfg)
}

// Fig11 regenerates the Cori overall-efficiency comparison across the six
// workloads (30x/100x × one-seed, d=1K, d=k).
func Fig11(o *Options) (string, error) {
	o.setDefaults()
	modes := []struct {
		name string
		mode overlap.SeedMode
		dist int
	}{
		{"one-seed", overlap.OneSeed, 0},
		{"d=1K", overlap.MinDistance, 1000},
		{"d=k=17", overlap.AllSeeds, 0},
	}
	var series []stats.Series
	for _, dataset := range []string{"E.coli 30x", "E.coli 100x"} {
		reads, err := o.Reads30x()
		if dataset == "E.coli 100x" {
			reads, err = o.Reads100x()
		}
		if err != nil {
			return "", err
		}
		for _, mo := range modes {
			cfg := oneSeedConfig()
			cfg.SeedMode = mo.mode
			cfg.MinDist = mo.dist
			if dataset == "E.coli 100x" {
				cfg.Coverage = 100
			}
			s := stats.Series{Name: dataset + ", " + mo.name}
			var base float64
			for _, nodes := range o.NodeCounts {
				p := o.simRanks(nodes)
				mdl, err := machine.NewModelScaled(machine.Cori, nodes, p)
				if err != nil {
					return "", err
				}
				rep, err := pipeline.Execute(p, mdl, reads, cfg)
				if err != nil {
					return "", err
				}
				o.logf("fig11 %s nodes=%d: %s", s.Name, nodes, rep.Summary())
				t := rep.TotalVirtual()
				if nodes == o.NodeCounts[0] {
					base = t
				}
				s.X = append(s.X, float64(nodes))
				s.Y = append(s.Y, stats.Efficiency(base, o.NodeCounts[0], t, nodes))
			}
			series = append(series, s)
		}
	}
	return formatSeriesTable("Figure 11: Overall efficiency on Cori (XC40), varying workloads",
		"efficiency over smallest node count", series), nil
}

// Fig12 regenerates the cross-architecture overall (solid) and exchange
// (dashed) efficiency curves.
func Fig12(o *Options) (string, error) {
	ms, err := o.Sweep30x()
	if err != nil {
		return "", err
	}
	base := make(map[string]RunMetrics)
	for _, m := range ms {
		if b, ok := base[m.Platform]; !ok || m.Nodes < b.Nodes {
			base[m.Platform] = m
		}
	}
	overall := seriesBy(ms, func(m RunMetrics) float64 {
		b := base[m.Platform]
		return stats.Efficiency(b.Total(), b.Nodes, m.Total(), m.Nodes)
	})
	exchange := seriesBy(ms, func(m RunMetrics) float64 {
		b := base[m.Platform]
		return stats.Efficiency(b.TotalExchange(), b.Nodes, m.TotalExchange(), m.Nodes)
	})
	for i := range exchange {
		exchange[i].Name += " (exchange)"
	}
	return formatSeriesTable("Figure 12: diBELLA overall efficiency (E. coli 30x, one-seed)",
		"efficiency over smallest node count", overall) + "\n" +
		formatSeriesTable("Figure 12 (dashed): exchange efficiency",
			"efficiency over smallest node count", exchange), nil
}

// Fig13 regenerates the overall cross-architecture performance in
// millions of alignments per second.
func Fig13(o *Options) (string, error) {
	ms, err := o.Sweep30x()
	if err != nil {
		return "", err
	}
	series := seriesBy(ms, func(m RunMetrics) float64 {
		return float64(m.Alignments) / m.Total() / 1e6
	})
	return formatSeriesTable("Figure 13: diBELLA overall performance (E. coli 30x, one-seed)",
		"M alignments/sec", series), nil
}

// Table2 regenerates the single-node runtime comparison between diBELLA
// and the DALIGNER-style baseline on three data sets (host-measured, I/O
// excluded, like the paper's Table 2).
func Table2(o *Options) (string, error) {
	o.setDefaults()
	datasets := []struct {
		name string
		cfg  seqgen.Config
	}{
		{"E.coli 30x (sample)", seqgen.EColi30xSample(o.Scale, o.Seed+2)},
		{"E.coli 30x", seqgen.EColi30x(o.Scale, o.Seed)},
		{"E.coli 100x", seqgen.EColi100x(o.Scale, o.Seed+1)},
	}
	threads := runtime.GOMAXPROCS(0)
	headers := []string{"dataset", "diBELLA (s)", "baseline (s)", "ratio", "pairs agree"}
	var rows [][]string
	for _, d := range datasets {
		ds, err := seqgen.Generate(d.cfg)
		if err != nil {
			return "", err
		}
		cfg := oneSeedConfig()
		cfg.Coverage = d.cfg.Coverage
		rep, err := pipeline.Execute(threads, nil, ds.Reads, cfg)
		if err != nil {
			return "", err
		}
		// The report carries the resolved parameters (m derived from
		// coverage); the baseline must filter identically.
		base, err := daligner.Run(ds.Reads, daligner.Config{
			K: rep.Config.K, MaxFreq: rep.Config.MaxFreq, SeedMode: overlap.OneSeed,
			XDrop: rep.Config.XDrop, Threads: threads,
		})
		if err != nil {
			return "", err
		}
		o.logf("table2 %s: dibella=%v baseline=%v", d.name, rep.WallTime, base.Total())
		rows = append(rows, []string{
			d.name,
			fmt.Sprintf("%.2f", rep.WallTime.Seconds()),
			fmt.Sprintf("%.2f", base.Total().Seconds()),
			fmt.Sprintf("%.2f", rep.WallTime.Seconds()/base.Total().Seconds()),
			fmt.Sprintf("%v", rep.Pairs == base.Pairs),
		})
	}
	return fmt.Sprintf("Table 2: single-node runtime comparison (%d threads, I/O excluded)\n", threads) +
		stats.FormatTable(headers, rows), nil
}

// Experiments maps experiment IDs to their generators.
var Experiments = map[string]func(*Options) (string, error){
	"table1": Table1,
	"table2": Table2,
	"fig3":   Fig3,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
}

// ExperimentIDs lists the experiment identifiers in presentation order.
func ExperimentIDs() []string {
	return []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"}
}

// RunExperiment dispatches one experiment by ID.
func RunExperiment(id string, o *Options) (string, error) {
	fn, ok := Experiments[id]
	if !ok {
		return "", fmt.Errorf("figures: unknown experiment %q (have %s)",
			id, strings.Join(ExperimentIDs(), ", "))
	}
	return fn(o)
}
