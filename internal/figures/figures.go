// Package figures regenerates every table and figure of the paper's
// evaluation (§5–§10): the cross-architecture per-stage rates (Figs. 3, 5,
// 6, 7), the AWS Bloom-stage efficiency split (Fig. 4), alignment load
// imbalance (Fig. 8), Cori runtime breakdowns (Figs. 9, 10), workload
// efficiency comparison (Fig. 11), cross-architecture efficiency (Fig. 12),
// overall performance (Fig. 13), the platform table (Table 1), and the
// single-node baseline comparison (Table 2).
//
// Mechanics: synthetic E. coli analogues (internal/seqgen) are pushed
// through the real pipeline on goroutine ranks; the machine models price
// the counted work per platform and node count. Absolute magnitudes track
// the paper only at full genome scale; at reduced scale the *shapes* —
// who wins, where crossovers fall, which stage dominates — are the
// reproduction targets recorded in EXPERIMENTS.md.
package figures

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dibella/internal/fastq"
	"dibella/internal/machine"
	"dibella/internal/overlap"
	"dibella/internal/pipeline"
	"dibella/internal/seqgen"
	"dibella/internal/stats"
)

// Options configures the harness.
type Options struct {
	// Scale shrinks the E. coli genome (1.0 = full 4.64 Mbp). The default
	// 0.01 keeps a full figure sweep under a minute on a laptop.
	Scale float64
	Seed  int64
	// NodeCounts is the strong-scaling x-axis (default 1..32 by doubling).
	NodeCounts []int
	// SimRanksPerNode controls how many goroutine ranks execute each
	// modeled node (default 4, capped at MaxSimRanks total).
	SimRanksPerNode int
	MaxSimRanks     int
	// InjectCoriAnomaly reproduces the paper's observed 16-node network
	// interference spike on Cori (Figs. 6/13) by scaling the overlap- and
	// alignment-stage exchange times of that one configuration.
	InjectCoriAnomaly bool
	// Progress, when non-nil, receives one line per pipeline execution.
	Progress io.Writer

	ds30x     *seqgen.Dataset
	reads100x []*fastq.Record
	sweep30x  []RunMetrics
}

// DefaultOptions returns the quick-run configuration.
func DefaultOptions() *Options {
	return &Options{
		Scale:             0.05,
		Seed:              1,
		NodeCounts:        []int{1, 2, 4, 8, 16, 32},
		SimRanksPerNode:   4,
		MaxSimRanks:       128,
		InjectCoriAnomaly: true,
	}
}

func (o *Options) setDefaults() {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 0.05
	}
	if len(o.NodeCounts) == 0 {
		o.NodeCounts = []int{1, 2, 4, 8, 16, 32}
	}
	if o.SimRanksPerNode <= 0 {
		o.SimRanksPerNode = 4
	}
	if o.MaxSimRanks <= 0 {
		o.MaxSimRanks = 128
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// Dataset30x lazily generates the E. coli 30x analogue, retaining the
// read origins so evalx can score predictions against ground truth.
func (o *Options) Dataset30x() (*seqgen.Dataset, error) {
	if o.ds30x == nil {
		ds, err := seqgen.Generate(seqgen.EColi30x(o.Scale, o.Seed))
		if err != nil {
			return nil, err
		}
		o.ds30x = ds
		o.logf("generated 30x analogue: %s", ds.Stats())
	}
	return o.ds30x, nil
}

// Reads30x returns the E. coli 30x analogue's reads.
func (o *Options) Reads30x() ([]*fastq.Record, error) {
	ds, err := o.Dataset30x()
	if err != nil {
		return nil, err
	}
	return ds.Reads, nil
}

// Reads100x lazily generates the E. coli 100x analogue.
func (o *Options) Reads100x() ([]*fastq.Record, error) {
	if o.reads100x == nil {
		ds, err := seqgen.Generate(seqgen.EColi100x(o.Scale, o.Seed+1))
		if err != nil {
			return nil, err
		}
		o.reads100x = ds.Reads
		o.logf("generated 100x analogue: %s", ds.Stats())
	}
	return o.reads100x, nil
}

// simRanks returns the goroutine count for a node count.
func (o *Options) simRanks(nodes int) int {
	r := nodes * o.SimRanksPerNode
	if r > o.MaxSimRanks {
		r = o.MaxSimRanks
	}
	return r
}

// StageTimes is one stage's modeled cost in a run.
type StageTimes struct {
	Total    float64
	Exchange float64
}

// RunMetrics is the distilled result of one (platform, nodes) pipeline
// execution — everything the figures consume.
type RunMetrics struct {
	Platform   string
	Nodes      int
	Stage      map[pipeline.StageName]StageTimes
	BagKmers   int64 // k-mer instances parsed per pass
	Retained   int64
	Pairs      int64
	Alignments int64
	// Per-bucket Bloom-stage times for Fig. 4.
	BloomPack, BloomLocal, BloomExchange float64
	AlignImbalance                       float64
	TaskImbalance                        float64
}

// Total returns the run's full modeled pipeline time.
func (m RunMetrics) Total() float64 {
	t := 0.0
	for _, s := range pipeline.Stages {
		t += m.Stage[s].Total
	}
	return t
}

// TotalExchange returns the run's modeled exchange time across stages.
func (m RunMetrics) TotalExchange() float64 {
	t := 0.0
	for _, s := range pipeline.Stages {
		t += m.Stage[s].Exchange
	}
	return t
}

// oneSeedConfig is the paper's standard minimum-intensity workload; m is
// derived from coverage via BELLA's theory (MaxFreq 0).
func oneSeedConfig() pipeline.Config {
	return pipeline.Config{
		K: 17, SeedMode: overlap.OneSeed,
		ErrorRate: 0.15, Coverage: 30, XDrop: 7,
	}
}

// extract converts a pipeline report into RunMetrics, optionally applying
// the Cori 16-node interference anomaly.
func (o *Options) extract(platform string, nodes int, rep *pipeline.Report) RunMetrics {
	m := RunMetrics{
		Platform: platform, Nodes: nodes,
		Stage:      make(map[pipeline.StageName]StageTimes, len(pipeline.Stages)),
		Retained:   rep.RetainedKmers,
		Pairs:      rep.Pairs,
		Alignments: rep.Alignments,
	}
	for _, rr := range rep.PerRank {
		m.BagKmers += rr.Bloom.KmersParsed
	}
	for _, s := range pipeline.Stages {
		m.Stage[s] = StageTimes{
			Total:    rep.StageVirtual(s),
			Exchange: rep.StageExchangeVirtual(s),
		}
	}
	// Fig. 4 buckets: max over ranks per bucket.
	var pack, local, exch []float64
	for _, rr := range rep.PerRank {
		pack = append(pack, rr.Bloom.PackVirtual)
		local = append(local, rr.Bloom.LocalVirtual)
		exch = append(exch, rr.Bloom.ExchangeVirtual)
	}
	m.BloomPack, m.BloomLocal, m.BloomExchange = stats.Max(pack), stats.Max(local), stats.Max(exch)
	m.AlignImbalance = rep.AlignImbalance()
	m.TaskImbalance = rep.TaskImbalance()

	if o.InjectCoriAnomaly && strings.HasPrefix(platform, "Cori") && nodes == 16 {
		// The paper attributes a one-off Overlap/Alignment exchange spike
		// at 16 nodes to network interference; reproduce it so the Fig. 6
		// dip and Fig. 13 anomaly appear.
		for _, s := range []pipeline.StageName{pipeline.StageOverlap, pipeline.StageAlign} {
			st := m.Stage[s]
			extra := st.Exchange * 3
			st.Exchange += extra
			st.Total += extra
			m.Stage[s] = st
		}
	}
	return m
}

// Sweep30x runs (and caches) the cross-architecture strong-scaling sweep
// on the E. coli 30x one-seed workload — the shared substrate of Figs. 3,
// 5, 6, 7, 8, 12, and 13.
func (o *Options) Sweep30x() ([]RunMetrics, error) {
	o.setDefaults()
	if o.sweep30x != nil {
		return o.sweep30x, nil
	}
	reads, err := o.Reads30x()
	if err != nil {
		return nil, err
	}
	cfg := oneSeedConfig()
	var out []RunMetrics
	for _, plat := range machine.Platforms {
		for _, nodes := range o.NodeCounts {
			p := o.simRanks(nodes)
			mdl, err := machine.NewModelScaled(plat, nodes, p)
			if err != nil {
				return nil, err
			}
			rep, err := pipeline.Execute(p, mdl, reads, cfg)
			if err != nil {
				return nil, fmt.Errorf("figures: %s @%d nodes: %w", plat.Name, nodes, err)
			}
			o.logf("sweep %s nodes=%d: %s", plat.Name, nodes, rep.Summary())
			out = append(out, o.extract(plat.Name, nodes, rep))
		}
	}
	o.sweep30x = out
	return out, nil
}

// seriesBy builds one series per platform from sweep metrics.
func seriesBy(ms []RunMetrics, f func(RunMetrics) float64) []stats.Series {
	byPlat := make(map[string]*stats.Series)
	var order []string
	for _, m := range ms {
		s, ok := byPlat[m.Platform]
		if !ok {
			s = &stats.Series{Name: m.Platform}
			byPlat[m.Platform] = s
			order = append(order, m.Platform)
		}
		s.X = append(s.X, float64(m.Nodes))
		s.Y = append(s.Y, f(m))
	}
	out := make([]stats.Series, 0, len(order))
	for _, name := range order {
		out = append(out, *byPlat[name])
	}
	return out
}

// formatSeriesTable renders per-platform series as a nodes-by-platform
// table (the shape of the paper's plots).
func formatSeriesTable(title, yLabel string, series []stats.Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, yLabel)
	if len(series) == 0 {
		return b.String()
	}
	headers := []string{"nodes"}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	// Collect the union of x values (sorted).
	xsSet := make(map[float64]bool)
	for _, s := range series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	var rows [][]string
	for _, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range series {
			cell := "-"
			for i := range s.X {
				if s.X[i] == x {
					cell = fmt.Sprintf("%.4g", s.Y[i])
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	b.WriteString(stats.FormatTable(headers, rows))
	return b.String()
}
