package figures

import (
	"strings"
	"testing"

	"dibella/internal/pipeline"
)

// testOptions keeps harness tests fast: tiny genome, two node counts.
func testOptions() *Options {
	return &Options{
		Scale:             0.008,
		Seed:              3,
		NodeCounts:        []int{1, 8},
		SimRanksPerNode:   2,
		MaxSimRanks:       32,
		InjectCoriAnomaly: true,
	}
}

func TestSweepConsistency(t *testing.T) {
	o := testOptions()
	if testing.Short() {
		// The invariants here (positive work counts, exchange < total,
		// platform-independent work) hold at any scale; shrink the sweep
		// so short runs stay fast.
		o.Scale = 0.002
		o.NodeCounts = []int{1, 4}
	}
	ms, err := o.Sweep30x()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4*len(o.NodeCounts) {
		t.Fatalf("sweep produced %d runs", len(ms))
	}
	// Work counts are platform-independent (same algorithm, same ranks):
	// only times differ.
	byNodes := make(map[int]RunMetrics)
	for _, m := range ms {
		if m.BagKmers <= 0 || m.Retained <= 0 || m.Alignments <= 0 {
			t.Fatalf("degenerate run: %+v", m)
		}
		if m.Total() <= 0 || m.TotalExchange() <= 0 {
			t.Fatalf("degenerate times: %+v", m)
		}
		if m.TotalExchange() >= m.Total() {
			t.Fatalf("exchange exceeds total: %+v", m)
		}
		if ref, ok := byNodes[m.Nodes]; ok {
			if ref.BagKmers != m.BagKmers || ref.Retained != m.Retained ||
				ref.Alignments != m.Alignments {
				t.Fatalf("work counts differ across platforms at %d nodes", m.Nodes)
			}
		} else {
			byNodes[m.Nodes] = m
		}
	}
	// Sweep is cached.
	again, err := o.Sweep30x()
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &ms[0] {
		t.Error("sweep not cached")
	}
}

func TestSweepShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-architecture shape claims need a realistic sweep; skipped in short mode")
	}
	// The headline cross-architecture claims the reproduction must hold.
	o := testOptions()
	o.NodeCounts = []int{1, 16}
	ms, err := o.Sweep30x()
	if err != nil {
		t.Fatal(err)
	}
	at := func(plat string, nodes int) RunMetrics {
		for _, m := range ms {
			if strings.HasPrefix(m.Platform, plat) && m.Nodes == nodes {
				return m
			}
		}
		t.Fatalf("missing run %s@%d", plat, nodes)
		return RunMetrics{}
	}
	// Single node: Cori fastest overall; AWS comparable to Titan.
	if !(at("Cori", 1).Total() < at("Edison", 1).Total() &&
		at("Edison", 1).Total() < at("Titan", 1).Total()) {
		t.Error("single-node platform ranking violated")
	}
	ratio := at("AWS", 1).Total() / at("Titan", 1).Total()
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("AWS/Titan single-node ratio %.2f", ratio)
	}
	// At scale: Titan beats AWS (the paper's crossover); AWS has the worst
	// exchange time.
	if at("Titan", 16).Total() >= at("AWS", 16).Total() {
		t.Error("Titan should overtake AWS at 16 nodes")
	}
	for _, p := range []string{"Cori", "Edison", "Titan"} {
		if at("AWS", 16).TotalExchange() <= at(p, 16).TotalExchange() {
			t.Errorf("AWS exchange should be worst (vs %s)", p)
		}
	}
	// Hash-table stage beats the Bloom stage's rate (Figs. 3 vs 5): same
	// k-mer volume, less time (first-call penalty + cheaper inserts).
	for _, plat := range []string{"Cori", "Edison", "Titan", "AWS"} {
		m := at(plat, 1)
		if m.Stage[pipeline.StageHash].Total >= m.Stage[pipeline.StageBloom].Total {
			t.Errorf("%s: hash stage not faster than bloom stage", plat)
		}
	}
}

func TestCoriAnomalyInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("anomaly sweep comparison in short mode")
	}
	on := testOptions()
	on.NodeCounts = []int{16}
	msOn, err := on.Sweep30x()
	if err != nil {
		t.Fatal(err)
	}
	off := testOptions()
	off.NodeCounts = []int{16}
	off.InjectCoriAnomaly = false
	msOff, err := off.Sweep30x()
	if err != nil {
		t.Fatal(err)
	}
	var coriOn, coriOff RunMetrics
	for _, m := range msOn {
		if strings.HasPrefix(m.Platform, "Cori") {
			coriOn = m
		}
	}
	for _, m := range msOff {
		if strings.HasPrefix(m.Platform, "Cori") {
			coriOff = m
		}
	}
	if coriOn.Stage[pipeline.StageOverlap].Total <= coriOff.Stage[pipeline.StageOverlap].Total {
		t.Error("anomaly did not inflate Cori@16 overlap stage")
	}
	// Other platforms unaffected.
	for i := range msOn {
		if strings.HasPrefix(msOn[i].Platform, "Cori") {
			continue
		}
		if msOn[i].Total() != msOff[i].Total() {
			t.Errorf("anomaly leaked into %s", msOn[i].Platform)
		}
	}
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment set in short mode")
	}
	o := testOptions()
	for _, id := range ExperimentIDs() {
		out, err := RunExperiment(id, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) < 50 {
			t.Errorf("%s: suspiciously short output %q", id, out)
		}
		if !strings.Contains(out, "\n") {
			t.Errorf("%s: no table rows", id)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("fig99", testOptions()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != len(Experiments) {
		t.Errorf("ID list has %d entries, map has %d", len(ids), len(Experiments))
	}
	for _, id := range ids {
		if _, ok := Experiments[id]; !ok {
			t.Errorf("listed ID %q missing from map", id)
		}
	}
	// Every table and figure of the paper is covered: 2 tables + 11 figures.
	if len(ids) != 13 {
		t.Errorf("expected 13 experiments, have %d", len(ids))
	}
}

func TestFormatSeriesTableAlignment(t *testing.T) {
	out := formatSeriesTable("T", "y", nil)
	if !strings.HasPrefix(out, "T\ny\n") {
		t.Errorf("empty series table = %q", out)
	}
}
