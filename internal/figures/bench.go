package figures

// The perf-trajectory benchmark: a small fixed workload run under both
// exchange schedules, distilled into a machine-readable snapshot that CI
// uploads (BENCH_PR2.json). Successive PRs append comparable files, so
// the repo accumulates a history of how the hot paths move.

import (
	"fmt"

	"dibella/internal/machine"
	"dibella/internal/pipeline"
)

// BenchRun is one schedule's numbers on the bench workload.
type BenchRun struct {
	WallSeconds          float64 `json:"wall_seconds"`
	VirtualSeconds       float64 `json:"virtual_seconds"`
	BloomHashVirtual     float64 `json:"bloom_hash_virtual_seconds"`
	ExchangeVirtual      float64 `json:"exchange_virtual_seconds"`
	OverlapFraction      float64 `json:"overlap_fraction"`
	Alignments           int64   `json:"alignments"`
	AlignmentsPerVirtual float64 `json:"alignments_per_virtual_second"`
}

// BenchResult is the full snapshot: the same workload under the
// bulk-synchronous and the non-blocking round-pipelined schedules,
// modeled as a Cori job.
type BenchResult struct {
	Workload     string   `json:"workload"`
	Platform     string   `json:"platform"`
	Nodes        int      `json:"nodes"`
	SimRanks     int      `json:"sim_ranks"`
	Reads        int      `json:"reads"`
	Sync         BenchRun `json:"sync"`
	Async        BenchRun `json:"async"`
	SpeedupModel float64  `json:"modeled_speedup_async_over_sync"`
}

// ExchangeBench runs the sync-vs-async exchange comparison on the E. coli
// 30x one-seed workload at the harness scale, modeled as an 8-node Cori
// job. Both runs execute the identical dataset; only the exchange
// schedule differs.
func ExchangeBench(o *Options) (*BenchResult, error) {
	o.setDefaults()
	reads, err := o.Reads30x()
	if err != nil {
		return nil, err
	}
	const nodes = 8
	p := o.simRanks(nodes)
	run := func(mode pipeline.ExchangeMode) (BenchRun, error) {
		mdl, err := machine.NewModelScaled(machine.Cori, nodes, p)
		if err != nil {
			return BenchRun{}, err
		}
		cfg := oneSeedConfig()
		cfg.Exchange = mode
		// Several exchange rounds per pass, so the round pipeline has
		// in-flight exchanges to hide (one monolithic round would leave
		// the Bloom/hash passes nothing to overlap).
		cfg.MaxKmersPerRound = 1 << 16
		rep, err := pipeline.Execute(p, mdl, reads, cfg)
		if err != nil {
			return BenchRun{}, err
		}
		o.logf("bench exchange=%v: %s", mode, rep.Summary())
		bh := rep.StageVirtual(pipeline.StageBloom) + rep.StageVirtual(pipeline.StageHash)
		br := BenchRun{
			WallSeconds:      rep.WallTime.Seconds(),
			VirtualSeconds:   rep.TotalVirtual(),
			BloomHashVirtual: bh,
			ExchangeVirtual:  rep.ExchangeVirtual(),
			OverlapFraction:  rep.OverlapFraction(),
			Alignments:       rep.Alignments,
		}
		if br.VirtualSeconds > 0 {
			br.AlignmentsPerVirtual = float64(rep.Alignments) / br.VirtualSeconds
		}
		return br, nil
	}
	syncRun, err := run(pipeline.ExchangeSync)
	if err != nil {
		return nil, fmt.Errorf("figures: sync bench: %w", err)
	}
	asyncRun, err := run(pipeline.ExchangeAsync)
	if err != nil {
		return nil, fmt.Errorf("figures: async bench: %w", err)
	}
	res := &BenchResult{
		Workload: fmt.Sprintf("E. coli 30x one-seed, scale %g, seed %d", o.Scale, o.Seed),
		Platform: machine.Cori.Name, Nodes: nodes, SimRanks: p,
		Reads: len(reads),
		Sync:  syncRun, Async: asyncRun,
	}
	if asyncRun.VirtualSeconds > 0 {
		res.SpeedupModel = syncRun.VirtualSeconds / asyncRun.VirtualSeconds
	}
	return res, nil
}
