package figures

// The perf-trajectory benchmark: a small fixed workload run under the
// exchange schedules, distilled into a machine-readable snapshot that CI
// uploads (BENCH_PR2.json onward). Successive PRs append comparable
// files, so the repo accumulates a history of how the hot paths move;
// cmd/benchcheck compares a fresh run against the latest committed
// snapshot and fails CI on a modeled regression.

import (
	"fmt"
	"os"

	"dibella/internal/machine"
	"dibella/internal/pipeline"
	"dibella/internal/spmd"
)

// benchReplyChunk / benchReplyDepth fix the streamed schedule's shape on
// the bench workload: at scale 0.02 each rank's per-peer reply payload is
// a few KB, so 8 KB chunks give the stream several rounds to hide while
// staying clear of the latency-degenerate regime.
const (
	benchReplyChunk = 8 << 10
	benchReplyDepth = 4
	// benchSweepChunk is the chunk size of the depth sweep: small enough
	// that every depth in the sweep has rounds left to keep in flight.
	benchSweepChunk = 2 << 10
)

// BenchRun is one schedule's numbers on the bench workload.
type BenchRun struct {
	WallSeconds          float64 `json:"wall_seconds"`
	VirtualSeconds       float64 `json:"virtual_seconds"`
	BloomHashVirtual     float64 `json:"bloom_hash_virtual_seconds"`
	ExchangeVirtual      float64 `json:"exchange_virtual_seconds"`
	OverlapFraction      float64 `json:"overlap_fraction"`
	AlignOverlapFraction float64 `json:"align_overlap_fraction"`
	Alignments           int64   `json:"alignments"`
	AlignmentsPerVirtual float64 `json:"alignments_per_virtual_second"`
}

// DepthPoint is one entry of the streamed depth sweep: the same workload
// and chunk size with a different number of reply chunk rounds in flight.
type DepthPoint struct {
	Depth                int     `json:"depth"`
	VirtualSeconds       float64 `json:"virtual_seconds"`
	AlignOverlapFraction float64 `json:"align_overlap_fraction"`
}

// BenchResult is the full snapshot: the same workload under the
// bulk-synchronous, the non-blocking round-pipelined, and the streamed
// chunked-reply schedules, modeled as a Cori job, plus a pipelining-depth
// sweep of the streamed reply (the ROADMAP's depth>2 question) and a
// checkpoint-enabled run (streamed schedule + snapshots at every stage
// boundary, the snapshot I/O priced by the machine model) so the
// checkpoint overhead is visible in the perf trajectory.
type BenchResult struct {
	Workload        string       `json:"workload"`
	Platform        string       `json:"platform"`
	Nodes           int          `json:"nodes"`
	SimRanks        int          `json:"sim_ranks"`
	Reads           int          `json:"reads"`
	ReplyChunkBytes int          `json:"reply_chunk_bytes"`
	ReplyDepth      int          `json:"reply_depth"`
	Sync            BenchRun     `json:"sync"`
	Async           BenchRun     `json:"async"`
	Streamed        BenchRun     `json:"streamed"`
	Ckpt            BenchRun     `json:"ckpt"`
	CkptOverhead    float64      `json:"ckpt_overhead_fraction"`
	SpeedupModel    float64      `json:"modeled_speedup_async_over_sync"`
	SpeedupStreamed float64      `json:"modeled_speedup_streamed_over_sync"`
	SweepChunkBytes int          `json:"sweep_chunk_bytes"`
	DepthSweep      []DepthPoint `json:"streamed_depth_sweep"`
}

// ExchangeBench runs the schedule comparison on the E. coli 30x one-seed
// workload at the harness scale, modeled as an 8-node Cori job. All runs
// execute the identical dataset; only the exchange schedule (and, in the
// depth sweep, the streamed pipelining depth) differs.
func ExchangeBench(o *Options) (*BenchResult, error) {
	o.setDefaults()
	reads, err := o.Reads30x()
	if err != nil {
		return nil, err
	}
	const nodes = 8
	p := o.simRanks(nodes)
	run := func(mode pipeline.ExchangeMode, chunk, depth int, ck *pipeline.CkptOptions) (BenchRun, error) {
		mdl, err := machine.NewModelScaled(machine.Cori, nodes, p)
		if err != nil {
			return BenchRun{}, err
		}
		cfg := oneSeedConfig()
		cfg.Exchange = mode
		cfg.ReplyChunk, cfg.ReplyDepth = chunk, depth
		// Several exchange rounds per pass, so the round pipeline has
		// in-flight exchanges to hide (one monolithic round would leave
		// the Bloom/hash passes nothing to overlap).
		cfg.MaxKmersPerRound = 1 << 16
		var rep *pipeline.Report
		if ck != nil {
			rep, err = pipeline.ExecuteCkpt(p, mdl, reads, cfg, *ck)
		} else {
			rep, err = pipeline.Execute(p, mdl, reads, cfg)
		}
		if err != nil {
			return BenchRun{}, err
		}
		o.logf("bench exchange=%v chunk=%d depth=%d ckpt=%v: %s", mode, chunk, depth, ck != nil, rep.Summary())
		bh := rep.StageVirtual(pipeline.StageBloom) + rep.StageVirtual(pipeline.StageHash)
		br := BenchRun{
			WallSeconds:      rep.WallTime.Seconds(),
			VirtualSeconds:   rep.TotalVirtual(),
			BloomHashVirtual: bh,
			ExchangeVirtual:  rep.ExchangeVirtual(),
			OverlapFraction:  rep.OverlapFraction(),
			Alignments:       rep.Alignments,
		}
		if ex := rep.StageExchangeVirtual(pipeline.StageAlign); ex > 0 {
			br.AlignOverlapFraction = rep.StageOverlapVirtual(pipeline.StageAlign) / ex
		}
		if br.VirtualSeconds > 0 {
			br.AlignmentsPerVirtual = float64(rep.Alignments) / br.VirtualSeconds
		}
		return br, nil
	}
	syncRun, err := run(pipeline.ExchangeSync, 0, 0, nil)
	if err != nil {
		return nil, fmt.Errorf("figures: sync bench: %w", err)
	}
	asyncRun, err := run(pipeline.ExchangeAsync, 0, 0, nil)
	if err != nil {
		return nil, fmt.Errorf("figures: async bench: %w", err)
	}
	streamRun, err := run(pipeline.ExchangeStreamed, benchReplyChunk, benchReplyDepth, nil)
	if err != nil {
		return nil, fmt.Errorf("figures: streamed bench: %w", err)
	}
	// The checkpointed run: the streamed schedule plus snapshots at every
	// stage boundary, written to a scratch directory and priced by the
	// machine model — the bench's record of what durability costs.
	ckDir, err := os.MkdirTemp("", "dibella-bench-ckpt-")
	if err != nil {
		return nil, fmt.Errorf("figures: ckpt bench scratch dir: %w", err)
	}
	defer os.RemoveAll(ckDir)
	ckptRun, err := run(pipeline.ExchangeStreamed, benchReplyChunk, benchReplyDepth,
		&pipeline.CkptOptions{Dir: ckDir})
	if err != nil {
		return nil, fmt.Errorf("figures: ckpt bench: %w", err)
	}
	res := &BenchResult{
		Workload: fmt.Sprintf("E. coli 30x one-seed, scale %g, seed %d", o.Scale, o.Seed),
		Platform: machine.Cori.Name, Nodes: nodes, SimRanks: p,
		Reads:           len(reads),
		ReplyChunkBytes: benchReplyChunk, ReplyDepth: benchReplyDepth,
		Sync: syncRun, Async: asyncRun, Streamed: streamRun, Ckpt: ckptRun,
		SweepChunkBytes: benchSweepChunk,
	}
	if asyncRun.VirtualSeconds > 0 {
		res.SpeedupModel = syncRun.VirtualSeconds / asyncRun.VirtualSeconds
	}
	if streamRun.VirtualSeconds > 0 {
		res.SpeedupStreamed = syncRun.VirtualSeconds / streamRun.VirtualSeconds
		res.CkptOverhead = ckptRun.VirtualSeconds/streamRun.VirtualSeconds - 1
	}
	for _, depth := range []int{1, 2, 4, spmd.MaxStreamDepth} {
		dr, err := run(pipeline.ExchangeStreamed, benchSweepChunk, depth, nil)
		if err != nil {
			return nil, fmt.Errorf("figures: streamed depth-%d bench: %w", depth, err)
		}
		res.DepthSweep = append(res.DepthSweep, DepthPoint{
			Depth:                depth,
			VirtualSeconds:       dr.VirtualSeconds,
			AlignOverlapFraction: dr.AlignOverlapFraction,
		})
	}
	return res, nil
}
