package figures

// The perf-trajectory benchmark: a small fixed workload run under the
// exchange schedules, distilled into a machine-readable snapshot that CI
// uploads (BENCH_PR2.json onward). Successive PRs append comparable
// files, so the repo accumulates a history of how the hot paths move;
// cmd/benchcheck compares a fresh run against the latest committed
// snapshot and fails CI on a modeled regression.

import (
	"fmt"
	"math"
	"os"
	"sort"

	"dibella/internal/evalx"
	"dibella/internal/fastq"
	"dibella/internal/kmer"
	"dibella/internal/machine"
	"dibella/internal/pipeline"
	"dibella/internal/serve"
	"dibella/internal/spmd"
	"dibella/internal/trace"
)

// benchReplyChunk / benchReplyDepth fix the streamed schedule's shape on
// the bench workload: at scale 0.02 each rank's per-peer reply payload is
// a few KB, so 8 KB chunks give the stream several rounds to hide while
// staying clear of the latency-degenerate regime.
const (
	benchReplyChunk = 8 << 10
	benchReplyDepth = 4
	// benchSweepChunk is the chunk size of the depth sweep: small enough
	// that every depth in the sweep has rounds left to keep in flight.
	benchSweepChunk = 2 << 10
	// benchMinimizerWindow is the minimizer schedule's window: w=5 is the
	// recall/volume sweet spot the trade-off study (minimizer_recall)
	// brackets with w=3 and w=9.
	benchMinimizerWindow = 5
	// benchMinOverlap is the ground-truth overlap threshold of the recall
	// study (the paper's reportable-overlap floor).
	benchMinOverlap = 2000
	// Serve-schedule shape: the workload's read tail becomes
	// benchServeBatches query batches of benchServeBatchReads reads;
	// arrivals are spaced so the daemon runs at benchServeUtilization of
	// its measured service rate, which keeps a queue forming without
	// running away.
	benchServeBatches     = 12
	benchServeBatchReads  = 6
	benchServeUtilization = 0.75
	// benchServeBurst groups arrivals: each burst's batches land at the
	// same instant, bursts spaced to hold the mean rate at the target
	// utilization. Evenly-spaced deterministic arrivals below saturation
	// never queue (D/D/1), so an unbursty trace would pin both wait
	// percentiles at zero and the snapshot would track nothing.
	benchServeBurst = 4
)

// BenchRun is one schedule's numbers on the bench workload.
type BenchRun struct {
	WallSeconds          float64 `json:"wall_seconds"`
	VirtualSeconds       float64 `json:"virtual_seconds"`
	BloomHashVirtual     float64 `json:"bloom_hash_virtual_seconds"`
	ExchangeVirtual      float64 `json:"exchange_virtual_seconds"`
	OverlapFraction      float64 `json:"overlap_fraction"`
	AlignOverlapFraction float64 `json:"align_overlap_fraction"`
	Alignments           int64   `json:"alignments"`
	AlignmentsPerVirtual float64 `json:"alignments_per_virtual_second"`
	// ExchangeBytes is the total exchange payload packed across all four
	// stages; BuildExchangeBytes is the Bloom+Hash (index build) share —
	// the volume minimizer seeding attacks.
	ExchangeBytes      int64 `json:"exchange_bytes"`
	BuildExchangeBytes int64 `json:"build_exchange_bytes"`
}

// RecallPoint is one window of the minimizer recall/volume trade-off
// study, scored by internal/evalx against the generator's ground truth.
// Window 0 is the exact-k-mer baseline; BuildByteRatio is relative to it.
type RecallPoint struct {
	Window         int     `json:"window"`
	Recall         float64 `json:"recall"`
	Precision      float64 `json:"precision"`
	F1             float64 `json:"f1"`
	BuildByteRatio float64 `json:"build_byte_ratio"`
	VirtualSeconds float64 `json:"virtual_seconds"`
}

// DepthPoint is one entry of the streamed depth sweep: the same workload
// and chunk size with a different number of reply chunk rounds in flight.
type DepthPoint struct {
	Depth                int     `json:"depth"`
	VirtualSeconds       float64 `json:"virtual_seconds"`
	AlignOverlapFraction float64 `json:"align_overlap_fraction"`
}

// ServeBench is the serve schedule's snapshot: the bench workload's read
// tail served as query batches against the resident index under a
// synthetic deterministic arrival trace, all on the modeled clock — so
// throughput (modeled QPS) and queue-wait percentiles are comparable
// across PRs exactly like the batch schedules' virtual seconds.
type ServeBench struct {
	Batches    int `json:"batches"`
	BatchReads int `json:"batch_reads"`
	// ArrivalSpacing is the synthetic trace's inter-arrival gap: the
	// first batch's service time divided by benchServeUtilization.
	ArrivalSpacing float64 `json:"arrival_spacing_virtual_seconds"`
	// VirtualSeconds is the modeled completion time of the last batch
	// (admission, routing, and every query collective priced).
	VirtualSeconds float64 `json:"virtual_seconds"`
	ModeledQPS     float64 `json:"modeled_qps"`
	MeanService    float64 `json:"mean_service_virtual_seconds"`
	P50QueueWait   float64 `json:"p50_queue_wait_virtual_seconds"`
	P99QueueWait   float64 `json:"p99_queue_wait_virtual_seconds"`
	Alignments     int64   `json:"alignments"`
	RoutedPerRank  []int64 `json:"routed_per_rank"`
}

// BenchResult is the full snapshot: the same workload under the
// bulk-synchronous, the non-blocking round-pipelined, and the streamed
// chunked-reply schedules, modeled as a Cori job, plus a pipelining-depth
// sweep of the streamed reply (the ROADMAP's depth>2 question) and a
// checkpoint-enabled run (streamed schedule + snapshots at every stage
// boundary, the snapshot I/O priced by the machine model) so the
// checkpoint overhead is visible in the perf trajectory.
type BenchResult struct {
	Workload        string   `json:"workload"`
	Platform        string   `json:"platform"`
	Nodes           int      `json:"nodes"`
	SimRanks        int      `json:"sim_ranks"`
	Reads           int      `json:"reads"`
	ReplyChunkBytes int      `json:"reply_chunk_bytes"`
	ReplyDepth      int      `json:"reply_depth"`
	Sync            BenchRun `json:"sync"`
	Async           BenchRun `json:"async"`
	Streamed        BenchRun `json:"streamed"`
	Ckpt            BenchRun `json:"ckpt"`
	CkptOverhead    float64  `json:"ckpt_overhead_fraction"`
	// Traced is the streamed run repeated with the flight recorder armed
	// (informational: quantifies tracing's wall-clock cost). The recorder
	// must never touch the modeled clock, so its virtual_seconds is
	// required to be bit-identical to Streamed's — the bench fails
	// otherwise rather than committing a snapshot of a broken recorder.
	Traced             BenchRun     `json:"traced"`
	TracedWallOverhead float64      `json:"traced_wall_overhead_fraction"`
	SpeedupModel       float64      `json:"modeled_speedup_async_over_sync"`
	SpeedupStreamed    float64      `json:"modeled_speedup_streamed_over_sync"`
	SweepChunkBytes    int          `json:"sweep_chunk_bytes"`
	DepthSweep         []DepthPoint `json:"streamed_depth_sweep"`
	// Minimizer is the streamed schedule rerun with -seed minimizer at
	// MinimizerWindow: same workload and exchange shape, sparser seed set.
	// MinimizerByteRatio compares its build exchange bytes against the
	// exact streamed run's; PredictedDensity is the 2/(w+1) expectation the
	// ratio should land within ~15% of.
	Minimizer          BenchRun      `json:"minimizer"`
	MinimizerWindow    int           `json:"minimizer_window"`
	PredictedDensity   float64       `json:"minimizer_predicted_density"`
	MinimizerByteRatio float64       `json:"minimizer_build_byte_ratio"`
	SpeedupMinimizer   float64       `json:"modeled_speedup_minimizer_over_streamed"`
	MinimizerRecall    []RecallPoint `json:"minimizer_recall"`
	// Serve is the resident-daemon schedule (see ServeBench).
	Serve *ServeBench `json:"serve"`
}

// ExchangeBench runs the schedule comparison on the E. coli 30x one-seed
// workload at the harness scale, modeled as an 8-node Cori job. All runs
// execute the identical dataset; only the exchange schedule (and, in the
// depth sweep, the streamed pipelining depth) differs.
func ExchangeBench(o *Options) (*BenchResult, error) {
	o.setDefaults()
	reads, err := o.Reads30x()
	if err != nil {
		return nil, err
	}
	const nodes = 8
	p := o.simRanks(nodes)
	run := func(mode pipeline.ExchangeMode, chunk, depth, window int, ck *pipeline.CkptOptions) (BenchRun, error) {
		mdl, err := machine.NewModelScaled(machine.Cori, nodes, p)
		if err != nil {
			return BenchRun{}, err
		}
		cfg := oneSeedConfig()
		cfg.Exchange = mode
		cfg.ReplyChunk, cfg.ReplyDepth = chunk, depth
		cfg.MinimizerWindow = window
		// Several exchange rounds per pass, so the round pipeline has
		// in-flight exchanges to hide (one monolithic round would leave
		// the Bloom/hash passes nothing to overlap).
		cfg.MaxKmersPerRound = 1 << 16
		var rep *pipeline.Report
		if ck != nil {
			rep, err = pipeline.ExecuteCkpt(p, mdl, reads, cfg, *ck)
		} else {
			rep, err = pipeline.Execute(p, mdl, reads, cfg)
		}
		if err != nil {
			return BenchRun{}, err
		}
		o.logf("bench exchange=%v chunk=%d depth=%d window=%d ckpt=%v: %s", mode, chunk, depth, window, ck != nil, rep.Summary())
		bh := rep.StageVirtual(pipeline.StageBloom) + rep.StageVirtual(pipeline.StageHash)
		br := BenchRun{
			WallSeconds:      rep.WallTime.Seconds(),
			VirtualSeconds:   rep.TotalVirtual(),
			BloomHashVirtual: bh,
			ExchangeVirtual:  rep.ExchangeVirtual(),
			OverlapFraction:  rep.OverlapFraction(),
			Alignments:       rep.Alignments,
			ExchangeBytes:    rep.ExchangeBytes(),
			BuildExchangeBytes: rep.StageExchangeBytes(pipeline.StageBloom) +
				rep.StageExchangeBytes(pipeline.StageHash),
		}
		if ex := rep.StageExchangeVirtual(pipeline.StageAlign); ex > 0 {
			br.AlignOverlapFraction = rep.StageOverlapVirtual(pipeline.StageAlign) / ex
		}
		if br.VirtualSeconds > 0 {
			br.AlignmentsPerVirtual = float64(rep.Alignments) / br.VirtualSeconds
		}
		return br, nil
	}
	syncRun, err := run(pipeline.ExchangeSync, 0, 0, 0, nil)
	if err != nil {
		return nil, fmt.Errorf("figures: sync bench: %w", err)
	}
	asyncRun, err := run(pipeline.ExchangeAsync, 0, 0, 0, nil)
	if err != nil {
		return nil, fmt.Errorf("figures: async bench: %w", err)
	}
	streamRun, err := run(pipeline.ExchangeStreamed, benchReplyChunk, benchReplyDepth, 0, nil)
	if err != nil {
		return nil, fmt.Errorf("figures: streamed bench: %w", err)
	}
	minRun, err := run(pipeline.ExchangeStreamed, benchReplyChunk, benchReplyDepth, benchMinimizerWindow, nil)
	if err != nil {
		return nil, fmt.Errorf("figures: minimizer bench: %w", err)
	}
	// The checkpointed run: the streamed schedule plus snapshots at every
	// stage boundary, written to a scratch directory and priced by the
	// machine model — the bench's record of what durability costs.
	ckDir, err := os.MkdirTemp("", "dibella-bench-ckpt-")
	if err != nil {
		return nil, fmt.Errorf("figures: ckpt bench scratch dir: %w", err)
	}
	defer os.RemoveAll(ckDir)
	ckptRun, err := run(pipeline.ExchangeStreamed, benchReplyChunk, benchReplyDepth, 0,
		&pipeline.CkptOptions{Dir: ckDir})
	if err != nil {
		return nil, fmt.Errorf("figures: ckpt bench: %w", err)
	}
	// The traced rerun: same streamed schedule with the flight recorder
	// armed, so every snapshot carries the recorder's measured wall cost.
	wasEnabled := trace.Enabled()
	trace.Enable(trace.DefaultCapacity)
	tracedRun, err := run(pipeline.ExchangeStreamed, benchReplyChunk, benchReplyDepth, 0, nil)
	if !wasEnabled {
		trace.Disable()
	}
	if err != nil {
		return nil, fmt.Errorf("figures: traced bench: %w", err)
	}
	if math.Float64bits(tracedRun.VirtualSeconds) != math.Float64bits(streamRun.VirtualSeconds) {
		return nil, fmt.Errorf("figures: traced bench perturbed the modeled clock: %v traced vs %v streamed",
			tracedRun.VirtualSeconds, streamRun.VirtualSeconds)
	}
	res := &BenchResult{
		Workload: fmt.Sprintf("E. coli 30x one-seed, scale %g, seed %d", o.Scale, o.Seed),
		Platform: machine.Cori.Name, Nodes: nodes, SimRanks: p,
		Reads:           len(reads),
		ReplyChunkBytes: benchReplyChunk, ReplyDepth: benchReplyDepth,
		Sync: syncRun, Async: asyncRun, Streamed: streamRun, Ckpt: ckptRun,
		Traced:           tracedRun,
		SweepChunkBytes:  benchSweepChunk,
		Minimizer:        minRun,
		MinimizerWindow:  benchMinimizerWindow,
		PredictedDensity: kmer.MinimizerDensity(benchMinimizerWindow),
	}
	if asyncRun.VirtualSeconds > 0 {
		res.SpeedupModel = syncRun.VirtualSeconds / asyncRun.VirtualSeconds
	}
	if streamRun.VirtualSeconds > 0 {
		res.SpeedupStreamed = syncRun.VirtualSeconds / streamRun.VirtualSeconds
		res.CkptOverhead = ckptRun.VirtualSeconds/streamRun.VirtualSeconds - 1
	}
	if streamRun.WallSeconds > 0 {
		res.TracedWallOverhead = tracedRun.WallSeconds/streamRun.WallSeconds - 1
	}
	if streamRun.BuildExchangeBytes > 0 {
		res.MinimizerByteRatio = float64(minRun.BuildExchangeBytes) / float64(streamRun.BuildExchangeBytes)
	}
	if minRun.VirtualSeconds > 0 {
		res.SpeedupMinimizer = streamRun.VirtualSeconds / minRun.VirtualSeconds
	}
	if res.MinimizerRecall, err = minimizerRecallStudy(o, nodes, p); err != nil {
		return nil, err
	}
	for _, depth := range []int{1, 2, 4, spmd.MaxStreamDepth} {
		dr, err := run(pipeline.ExchangeStreamed, benchSweepChunk, depth, 0, nil)
		if err != nil {
			return nil, fmt.Errorf("figures: streamed depth-%d bench: %w", depth, err)
		}
		res.DepthSweep = append(res.DepthSweep, DepthPoint{
			Depth:                depth,
			VirtualSeconds:       dr.VirtualSeconds,
			AlignOverlapFraction: dr.AlignOverlapFraction,
		})
	}
	if res.Serve, err = serveBench(o, nodes, p); err != nil {
		return nil, fmt.Errorf("figures: serve bench: %w", err)
	}
	return res, nil
}

// serveBench runs the serve schedule: form the resident world over the
// workload minus its query tail, then answer the tail as query batches
// under a deterministic synthetic arrival trace. Arrival i lands at
// i*spacing on the modeled clock; service is serial in admission order
// (the daemon's SPMD loop), so batch i starts at max(arrival_i,
// finish_{i-1}) and its queue wait is the difference. Routing uses the
// default weighted scorers against the simulated queue state, exactly as
// the daemon's admission path would.
func serveBench(o *Options, nodes, p int) (*ServeBench, error) {
	reads, err := o.Reads30x()
	if err != nil {
		return nil, err
	}
	nq := benchServeBatches * benchServeBatchReads
	if len(reads) < nq+32 {
		return nil, fmt.Errorf("figures: serve bench needs >= %d reads, workload has %d (raise -scale)", nq+32, len(reads))
	}
	mdl, err := machine.NewModelScaled(machine.Cori, nodes, p)
	if err != nil {
		return nil, err
	}
	indexed := reads[:len(reads)-nq]
	batches := make([][]pipeline.QueryRead, benchServeBatches)
	for i, r := range reads[len(reads)-nq:] {
		b := i / benchServeBatchReads
		batches[b] = append(batches[b], pipeline.QueryRead{Name: r.Name, Seq: r.Seq})
	}
	scorers := serve.DefaultScorerConfigs()
	var sb *ServeBench
	err = spmd.RunWithModel(p, mdl, func(c *spmd.Comm) error {
		cfg := oneSeedConfig()
		cfg.KeepAlignments = true
		cfg.KeepSingletons = true // the resident index keeps singletons
		cfg.MaxKmersPerRound = 1 << 16
		store := fastq.NewReadStore(indexed, c.Size())
		w, err := pipeline.FormWorld(c, mdl, store, cfg)
		if err != nil {
			return err
		}
		mem := w.GatherMemBytes()
		var (
			service, waits, finish []float64
			homes                  []int
			routed                 = make([]int64, c.Size())
			aligns                 int64
			spacing                float64
		)
		// Bursty arrival trace: burst k's batches all land at
		// k*burst*spacing, so intra-burst batches queue behind each other
		// while the mean rate stays at the target utilization.
		arrival := func(i int) float64 {
			return float64(i/benchServeBurst) * benchServeBurst * spacing
		}
		for i, batch := range batches {
			home := 0
			if c.Rank() == 0 {
				// Admission at arrival time: the scorers see the queue the
				// trace has built up by then.
				ai := arrival(i)
				snaps := make([]serve.RankSnapshot, c.Size())
				for r := range snaps {
					snaps[r] = serve.RankSnapshot{Rank: r, MemBytes: mem[r], Routed: routed[r]}
				}
				for j, fj := range finish {
					if fj > ai {
						snaps[homes[j]].QueueDepth++
					}
				}
				home = serve.PickRank(scorers, snaps)
				var reqBytes int
				for _, q := range batch {
					reqBytes += len(q.Seq)
				}
				c.Tick(mdl.QueryAdmitTime(float64(reqBytes)))
				c.Tick(mdl.QueryRouteTime(c.Size(), len(scorers)))
			}
			home = spmd.Bcast(c, home, 0)
			v0 := c.Now()
			recs, err := w.RunQuery(home, batch)
			if err != nil {
				return err
			}
			if c.Rank() != 0 {
				continue
			}
			sv := c.Now() - v0
			if i == 0 {
				spacing = sv / benchServeUtilization
			}
			ai := arrival(i)
			start := ai
			if n := len(finish); n > 0 && finish[n-1] > start {
				start = finish[n-1]
			}
			service = append(service, sv)
			waits = append(waits, start-ai)
			finish = append(finish, start+sv)
			homes = append(homes, home)
			routed[home]++
			aligns += int64(len(recs))
		}
		if c.Rank() != 0 {
			return nil
		}
		var meanSv float64
		for _, s := range service {
			meanSv += s
		}
		meanSv /= float64(len(service))
		sorted := append([]float64(nil), waits...)
		sort.Float64s(sorted)
		last := finish[len(finish)-1]
		sb = &ServeBench{
			Batches: benchServeBatches, BatchReads: benchServeBatchReads,
			ArrivalSpacing: spacing,
			VirtualSeconds: last,
			ModeledQPS:     float64(len(service)) / last,
			MeanService:    meanSv,
			P50QueueWait:   percentile(sorted, 0.50),
			P99QueueWait:   percentile(sorted, 0.99),
			Alignments:     aligns,
			RoutedPerRank:  routed,
		}
		o.logf("bench serve: %d batches, qps=%.2f p50 wait=%.4fs p99 wait=%.4fs routed=%v",
			sb.Batches, sb.ModeledQPS, sb.P50QueueWait, sb.P99QueueWait, sb.RoutedPerRank)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sb, nil
}

// percentile is the nearest-rank percentile of an ascending-sorted slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// minimizerRecallStudy quantifies the sensitivity minimizer seeding trades
// for exchange volume: the bench workload rerun at windows 0 (exact
// baseline), 3, 5, and 9 with alignments retained, each prediction set
// scored by evalx against the generator's ground-truth overlaps.
func minimizerRecallStudy(o *Options, nodes, p int) ([]RecallPoint, error) {
	ds, err := o.Dataset30x()
	if err != nil {
		return nil, err
	}
	var out []RecallPoint
	var exactBytes int64
	for _, w := range []int{0, 3, 5, 9} {
		mdl, err := machine.NewModelScaled(machine.Cori, nodes, p)
		if err != nil {
			return nil, err
		}
		cfg := oneSeedConfig()
		cfg.MinimizerWindow = w
		cfg.KeepAlignments = true
		cfg.MaxKmersPerRound = 1 << 16
		rep, err := pipeline.Execute(p, mdl, ds.Reads, cfg)
		if err != nil {
			return nil, fmt.Errorf("figures: recall study w=%d: %w", w, err)
		}
		pairs := make([]evalx.Pair, 0, len(rep.Records))
		for _, a := range rep.Records {
			pairs = append(pairs, evalx.Canon(a.A, a.B))
		}
		res := evalx.Evaluate(ds, pairs, benchMinOverlap)
		build := rep.StageExchangeBytes(pipeline.StageBloom) + rep.StageExchangeBytes(pipeline.StageHash)
		if w == 0 {
			exactBytes = build
		}
		pt := RecallPoint{
			Window: w, Recall: res.Recall(), Precision: res.Precision(), F1: res.F1(),
			VirtualSeconds: rep.TotalVirtual(),
		}
		if exactBytes > 0 {
			pt.BuildByteRatio = float64(build) / float64(exactBytes)
		}
		o.logf("recall study w=%d: %s (build bytes %.3f of exact)", w, res, pt.BuildByteRatio)
		out = append(out, pt)
	}
	return out, nil
}
