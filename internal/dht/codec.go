package dht

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dibella/internal/kmer"
	"dibella/internal/spmd"
)

// Partition-segment codec and ownership re-shard: the checkpoint
// representation of one rank's shard of the distributed k-mer hash table,
// plus the collective that redistributes loaded entries when the world
// size changed between snapshot and resume.
//
// K-mer ownership is the deterministic hash partition kmer.Owner(p), so a
// partition snapshot taken at world size W can be re-homed at any size P:
// every loaded entry is routed to its new owner in one packed all-to-all
// and the resulting partitions are exactly what a fresh P-rank build of
// the same data would hold (entry occurrence multisets included — an
// entry's occurrences travel with it, never split).

// Encode serializes the partition's entries in ascending k-mer order, so
// the encoding (and therefore a segment digest) is deterministic despite
// Go's randomized map iteration.
func (p *Partition) Encode() []byte {
	kms := make([]kmer.Kmer, 0, len(p.Table))
	n := 16
	for km, e := range p.Table {
		kms = append(kms, km)
		n += 16 + 8*len(e.Occs)
	}
	sort.Slice(kms, func(i, j int) bool { return kms[i] < kms[j] })
	buf := make([]byte, 0, n)
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.K))
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.MaxFreq))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(kms)))
	for _, km := range kms {
		buf = appendEntry(buf, km, p.Table[km])
	}
	return buf
}

// appendEntry serializes one (k-mer, entry) pair.
func appendEntry(buf []byte, km kmer.Kmer, e *Entry) []byte {
	buf = binary.BigEndian.AppendUint64(buf, uint64(km))
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.Count))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Occs)))
	for _, o := range e.Occs {
		buf = binary.BigEndian.AppendUint32(buf, o.Read)
		buf = binary.BigEndian.AppendUint32(buf, o.PosFlag)
	}
	return buf
}

// decodeEntry parses one appendEntry blob prefix, returning the remainder.
func decodeEntry(b []byte) (km kmer.Kmer, e *Entry, rest []byte, err error) {
	if len(b) < 16 {
		return 0, nil, nil, fmt.Errorf("dht: entry header truncated (%d bytes)", len(b))
	}
	km = kmer.Kmer(binary.BigEndian.Uint64(b))
	e = &Entry{Count: int32(binary.BigEndian.Uint32(b[8:]))}
	nOccs := int(binary.BigEndian.Uint32(b[12:]))
	b = b[16:]
	if len(b) < 8*nOccs {
		return 0, nil, nil, fmt.Errorf("dht: entry for k-mer %#x truncated (%d of %d occurrence bytes)",
			uint64(km), len(b), 8*nOccs)
	}
	e.Occs = make([]Occ, nOccs)
	for i := range e.Occs {
		e.Occs[i] = Occ{
			Read:    binary.BigEndian.Uint32(b[8*i:]),
			PosFlag: binary.BigEndian.Uint32(b[8*i+4:]),
		}
	}
	return km, e, b[8*nOccs:], nil
}

// DecodePartition parses an Encode blob back into a Partition.
func DecodePartition(b []byte) (*Partition, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("dht: partition segment header truncated (%d bytes)", len(b))
	}
	p := &Partition{
		K:       int(binary.BigEndian.Uint32(b)),
		MaxFreq: int(binary.BigEndian.Uint32(b[4:])),
	}
	count := binary.BigEndian.Uint64(b[8:])
	b = b[16:]
	if !kmer.ValidK(p.K) {
		return nil, fmt.Errorf("dht: partition segment has invalid k %d", p.K)
	}
	p.Table = make(map[kmer.Kmer]*Entry, count)
	for i := uint64(0); i < count; i++ {
		km, e, rest, err := decodeEntry(b)
		if err != nil {
			return nil, fmt.Errorf("dht: partition segment entry %d: %w", i, err)
		}
		if _, dup := p.Table[km]; dup {
			return nil, fmt.Errorf("dht: partition segment repeats k-mer %#x", uint64(km))
		}
		p.Table[km] = e
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("dht: partition segment has %d trailing bytes", len(b))
	}
	return p, nil
}

// Reshard redistributes part's entries to their hash owners under c's
// (new) world size. All ranks call it collectively, each contributing
// whatever entries it holds (typically the union of the old-world
// partition segments assigned to it); the union across ranks must cover
// each k-mer exactly once. Returns this rank's partition of the new
// world, holding exactly the entries kmer.Owner maps to it.
func Reshard(c *spmd.Comm, part *Partition) (*Partition, error) {
	p := c.Size()
	send := make([]spmd.PackedBufs, p)
	// Deterministic send order (sorted k-mers) keeps the exchange payload
	// reproducible; correctness does not depend on it, but digest-level
	// reproducibility of resumed runs is easier to reason about.
	kms := make([]kmer.Kmer, 0, len(part.Table))
	for km := range part.Table {
		kms = append(kms, km)
	}
	sort.Slice(kms, func(i, j int) bool { return kms[i] < kms[j] })
	for _, km := range kms {
		dst := km.Owner(p)
		send[dst].AppendItem(appendEntry(nil, km, part.Table[km]))
	}
	recv := spmd.AlltoallvPacked(c, send)
	out := &Partition{K: part.K, MaxFreq: part.MaxFreq, Table: make(map[kmer.Kmer]*Entry)}
	for src := 0; src < p; src++ {
		for _, item := range recv[src].Items() {
			km, e, rest, err := decodeEntry(item)
			if err != nil {
				return nil, fmt.Errorf("dht: reshard from rank %d: %w", src, err)
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("dht: reshard from rank %d: %d trailing bytes", src, len(rest))
			}
			if km.Owner(p) != c.Rank() {
				return nil, fmt.Errorf("dht: reshard delivered k-mer %#x to rank %d, owner is %d",
					uint64(km), c.Rank(), km.Owner(p))
			}
			if _, dup := out.Table[km]; dup {
				return nil, fmt.Errorf("dht: reshard received k-mer %#x twice (overlapping segments?)", uint64(km))
			}
			out.Table[km] = e
		}
	}
	return out, nil
}
