package dht

import (
	"bytes"
	"reflect"
	"testing"

	"dibella/internal/kmer"
	"dibella/internal/spmd"
)

// buildTestPartition fills a partition with synthetic entries.
func buildTestPartition(k, maxFreq, entries int, salt uint64) *Partition {
	p := &Partition{K: k, MaxFreq: maxFreq, Table: make(map[kmer.Kmer]*Entry)}
	for i := 0; i < entries; i++ {
		km := kmer.Kmer(uint64(i)*0x9e3779b97f4a7c15 + salt)
		e := &Entry{Count: int32(2 + i%5)}
		for j := 0; j <= i%4; j++ {
			e.Occs = append(e.Occs, MakeOcc(uint32(i+j), uint32(j*100), j%2 == 0))
		}
		p.Table[km] = e
	}
	return p
}

func TestPartitionCodecRoundtrip(t *testing.T) {
	p := buildTestPartition(17, 8, 37, 3)
	blob := p.Encode()
	back, err := DecodePartition(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != p.K || back.MaxFreq != p.MaxFreq {
		t.Errorf("header K=%d MaxFreq=%d", back.K, back.MaxFreq)
	}
	if !reflect.DeepEqual(tableOf(p), tableOf(back)) {
		t.Error("entries did not round-trip")
	}
	if !bytes.Equal(blob, p.Encode()) {
		t.Error("encoding is not deterministic")
	}
}

// tableOf flattens a partition into a comparable map.
func tableOf(p *Partition) map[kmer.Kmer]Entry {
	out := make(map[kmer.Kmer]Entry, len(p.Table))
	for km, e := range p.Table {
		out[km] = Entry{Count: e.Count, Occs: append([]Occ(nil), e.Occs...)}
	}
	return out
}

func TestPartitionCodecRejectsCorruption(t *testing.T) {
	blob := buildTestPartition(17, 8, 5, 1).Encode()
	for _, cut := range []int{0, 8, 17, len(blob) - 3} {
		if _, err := DecodePartition(blob[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := DecodePartition(append(append([]byte(nil), blob...), 1, 2, 3)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// TestReshardMatchesOwnership re-homes a 3-rank partition set onto worlds
// of several sizes and checks every entry lands on its hash owner with
// its occurrence list intact, and that the global entry set is preserved.
func TestReshardMatchesOwnership(t *testing.T) {
	// The "old world": three partitions, keyed so each holds only k-mers
	// it would own at P=3 (as a real build produces).
	const oldP = 3
	oldParts := make([]*Partition, oldP)
	global := make(map[kmer.Kmer]Entry)
	for r := range oldParts {
		oldParts[r] = &Partition{K: 17, MaxFreq: 8, Table: make(map[kmer.Kmer]*Entry)}
	}
	src := buildTestPartition(17, 8, 200, 11)
	for km, e := range src.Table {
		oldParts[km.Owner(oldP)].Table[km] = e
		global[km] = Entry{Count: e.Count, Occs: append([]Occ(nil), e.Occs...)}
	}

	for _, newP := range []int{1, 2, 3, 5} {
		got := make([]*Partition, newP)
		err := spmd.Run(newP, func(c *spmd.Comm) error {
			// Contiguous assignment of old segments to new ranks, as the
			// resume loader uses.
			hold := &Partition{K: 17, MaxFreq: 8, Table: make(map[kmer.Kmer]*Entry)}
			lo, hi := c.Rank()*oldP/newP, (c.Rank()+1)*oldP/newP
			for s := lo; s < hi; s++ {
				for km, e := range oldParts[s].Table {
					hold.Table[km] = e
				}
			}
			out, err := Reshard(c, hold)
			if err != nil {
				return err
			}
			got[c.Rank()] = out
			return nil
		})
		if err != nil {
			t.Fatalf("newP=%d: %v", newP, err)
		}
		merged := make(map[kmer.Kmer]Entry)
		for r, p := range got {
			for km, e := range p.Table {
				if km.Owner(newP) != r {
					t.Errorf("newP=%d: k-mer %#x on rank %d, owner %d", newP, uint64(km), r, km.Owner(newP))
				}
				merged[km] = Entry{Count: e.Count, Occs: append([]Occ(nil), e.Occs...)}
			}
		}
		if !reflect.DeepEqual(global, merged) {
			t.Errorf("newP=%d: resharded entry set diverged (%d vs %d entries)", newP, len(merged), len(global))
		}
	}
}

// TestReshardRejectsDuplicates: overlapping segment assignments (the same
// old segment loaded by two new ranks) must fail loudly, not silently
// double entries.
func TestReshardRejectsDuplicates(t *testing.T) {
	part := buildTestPartition(17, 8, 10, 2)
	err := spmd.Run(2, func(c *spmd.Comm) error {
		// Both ranks contribute the same entries.
		_, err := Reshard(c, part)
		return err
	})
	if err == nil {
		t.Fatal("duplicate contributions accepted")
	}
}
