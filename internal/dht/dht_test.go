package dht

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dibella/internal/fastq"
	"dibella/internal/kmer"
	"dibella/internal/machine"
	"dibella/internal/seqgen"
	"dibella/internal/spmd"
	"dibella/internal/stats"
)

func TestOccPacking(t *testing.T) {
	o := MakeOcc(12345, 67890, true)
	if o.Read != 12345 || o.Pos() != 67890 || !o.Forward() {
		t.Errorf("occ = %+v pos=%d fwd=%v", o, o.Pos(), o.Forward())
	}
	o2 := MakeOcc(1, 0, false)
	if o2.Pos() != 0 || o2.Forward() {
		t.Errorf("occ2 pos=%d fwd=%v", o2.Pos(), o2.Forward())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: 0, MaxFreq: 8},
		{K: 40, MaxFreq: 8},
		{K: 17, MaxFreq: 1},
		{K: 17, MaxFreq: 8, BloomFP: 1.5},
	}
	for i, cfg := range bad {
		err := spmd.Run(1, func(c *spmd.Comm) error {
			_, _, err := Build(c, nil, LocalReads{}, cfg)
			return err
		})
		if err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// naiveRetained computes the ground-truth retained k-mer map sequentially.
func naiveRetained(seqs [][]byte, k, maxFreq int) map[kmer.Kmer][]Occ {
	counts := make(map[kmer.Kmer][]Occ)
	for id, s := range seqs {
		for _, ex := range kmer.ExtractAll(s, k, uint32(id)) {
			counts[ex.Kmer] = append(counts[ex.Kmer],
				MakeOcc(ex.Occ.ReadID, ex.Occ.Pos, ex.Occ.Forward))
		}
	}
	for km, occs := range counts {
		if len(occs) < 2 || len(occs) > maxFreq {
			delete(counts, km)
		}
	}
	return counts
}

// buildDistributed runs Build over p ranks on a block-distributed read set
// and merges the partitions for verification.
func buildDistributed(t *testing.T, seqs [][]byte, p, k, maxFreq int, cfg Config) (map[kmer.Kmer][]Occ, []BuildStats) {
	t.Helper()
	recs := make([]*fastq.Record, len(seqs))
	for i, s := range seqs {
		recs[i] = &fastq.Record{Name: fmt.Sprintf("r%d", i), Seq: s}
	}
	store := fastq.NewReadStore(recs, p)
	cfg.K = k
	cfg.MaxFreq = maxFreq

	var mu sync.Mutex
	merged := make(map[kmer.Kmer][]Occ)
	allStats := make([]BuildStats, p)
	err := spmd.Run(p, func(c *spmd.Comm) error {
		start, end := store.LocalIDs(c.Rank())
		local := LocalReads{IDStart: start}
		for id := start; id < end; id++ {
			local.Seqs = append(local.Seqs, store.Seq(id))
		}
		part, stats, err := Build(c, nil, local, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		allStats[c.Rank()] = stats
		part.ForEach(func(km kmer.Kmer, occs []Occ) {
			if _, dup := merged[km]; dup {
				t.Errorf("k-mer %v present in two partitions", km)
			}
			merged[km] = occs
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return merged, allStats
}

func randReads(rng *rand.Rand, n, minLen, maxLen int) [][]byte {
	seqs := make([][]byte, n)
	for i := range seqs {
		l := minLen + rng.Intn(maxLen-minLen+1)
		s := make([]byte, l)
		for j := range s {
			s[j] = "ACGT"[rng.Intn(4)]
		}
		seqs[i] = s
	}
	return seqs
}

func TestBuildMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Overlapping reads from a common template guarantee shared k-mers.
	template := randReads(rng, 1, 3000, 3000)[0]
	var seqs [][]byte
	for i := 0; i+400 <= len(template); i += 150 {
		seqs = append(seqs, template[i:i+400])
	}
	seqs = append(seqs, randReads(rng, 5, 200, 600)...)

	const k, m = 17, 8
	want := naiveRetained(seqs, k, m)
	if len(want) == 0 {
		t.Fatal("test data produced no retained k-mers")
	}
	for _, p := range []int{1, 2, 5} {
		got, _ := buildDistributed(t, seqs, p, k, m, Config{})
		if len(got) != len(want) {
			t.Fatalf("p=%d: %d retained k-mers, want %d", p, len(got), len(want))
		}
		for km, wocc := range want {
			gocc, ok := got[km]
			if !ok {
				t.Fatalf("p=%d: k-mer %q missing", p, km.Bytes(k))
			}
			if len(gocc) != len(wocc) {
				t.Fatalf("p=%d: k-mer %q has %d occs, want %d", p, km.Bytes(k), len(gocc), len(wocc))
			}
			// Occurrence multisets must match (order may differ).
			seen := make(map[Occ]int)
			for _, o := range gocc {
				seen[o]++
			}
			for _, o := range wocc {
				seen[o]--
				if seen[o] < 0 {
					t.Fatalf("p=%d: unexpected occurrence %+v", p, o)
				}
			}
		}
	}
}

func TestBuildWithHLLSizing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	template := randReads(rng, 1, 2000, 2000)[0]
	var seqs [][]byte
	for i := 0; i+300 <= len(template); i += 120 {
		seqs = append(seqs, template[i:i+300])
	}
	const k, m = 15, 8
	want := naiveRetained(seqs, k, m)
	got, stats := buildDistributed(t, seqs, 3, k, m, Config{UseHLL: true})
	if len(got) != len(want) {
		t.Fatalf("HLL sizing changed results: %d vs %d", len(got), len(want))
	}
	if stats[0].DistinctEstimate <= 0 {
		t.Error("no HLL estimate recorded")
	}
	// The HLL estimate should be within 25% of the true distinct count.
	distinct := make(map[kmer.Kmer]bool)
	for id, s := range seqs {
		for _, ex := range kmer.ExtractAll(s, k, uint32(id)) {
			distinct[ex.Kmer] = true
		}
	}
	ratio := stats[0].DistinctEstimate / float64(len(distinct))
	if ratio < 0.75 || ratio > 1.25 {
		t.Errorf("HLL estimate off: %.0f vs %d true", stats[0].DistinctEstimate, len(distinct))
	}
}

func TestHighFrequencyFiltering(t *testing.T) {
	// A k-mer occurring more than m times must vanish.
	rng := rand.New(rand.NewSource(3))
	motif := randReads(rng, 1, 20, 20)[0]
	var seqs [][]byte
	for i := 0; i < 12; i++ {
		pad := randReads(rng, 1, 50, 80)[0]
		seqs = append(seqs, append(append([]byte{}, pad...), motif...))
	}
	const k = 17
	const m = 6
	got, stats := buildDistributed(t, seqs, 2, k, m, Config{})
	for _, ex := range kmer.ExtractAll(motif, k, 0) {
		if _, ok := got[ex.Kmer]; ok {
			t.Errorf("high-frequency k-mer %q survived", ex.Kmer.Bytes(k))
		}
	}
	totalHF := 0
	for _, s := range stats {
		totalHF += s.PrunedHighFreq
	}
	if totalHF == 0 {
		t.Error("no high-frequency prunes recorded")
	}
}

func TestSingletonElimination(t *testing.T) {
	// Fully random disjoint reads: essentially everything is a singleton.
	rng := rand.New(rand.NewSource(4))
	seqs := randReads(rng, 20, 300, 500)
	got, stats := buildDistributed(t, seqs, 2, 21, 8, Config{})
	want := naiveRetained(seqs, 21, 8)
	if len(got) != len(want) {
		t.Fatalf("retained %d, want %d", len(got), len(want))
	}
	// The Bloom pass must have kept the table tiny relative to the bag.
	var parsed int64
	var entries int
	for _, s := range stats {
		parsed += s.Bloom.KmersParsed
		entries += s.TableEntries
	}
	if entries > int(parsed)/4 {
		t.Errorf("bloom pass admitted %d of %d k-mers", entries, parsed)
	}
}

func TestStreamingRoundsMatchSingleRound(t *testing.T) {
	// Tiny MaxKmersPerRound forces many exchange rounds; results must not
	// change.
	rng := rand.New(rand.NewSource(5))
	template := randReads(rng, 1, 1500, 1500)[0]
	var seqs [][]byte
	for i := 0; i+250 <= len(template); i += 100 {
		seqs = append(seqs, template[i:i+250])
	}
	const k, m = 13, 10
	oneRound, statsA := buildDistributed(t, seqs, 3, k, m, Config{MaxKmersPerRound: 1 << 20})
	manyRounds, statsB := buildDistributed(t, seqs, 3, k, m, Config{MaxKmersPerRound: 64})
	if statsB[0].Bloom.Rounds <= statsA[0].Bloom.Rounds {
		t.Fatalf("expected more rounds: %d vs %d", statsB[0].Bloom.Rounds, statsA[0].Bloom.Rounds)
	}
	if len(oneRound) != len(manyRounds) {
		t.Fatalf("round slicing changed results: %d vs %d", len(oneRound), len(manyRounds))
	}
	for km := range oneRound {
		if _, ok := manyRounds[km]; !ok {
			t.Fatalf("k-mer lost under streaming")
		}
	}
}

func TestEmptyInput(t *testing.T) {
	got, _ := buildDistributed(t, nil, 3, 17, 8, Config{})
	if len(got) != 0 {
		t.Errorf("empty input retained %d k-mers", len(got))
	}
}

func TestReadsShorterThanK(t *testing.T) {
	seqs := [][]byte{[]byte("ACGT"), []byte("GGG")}
	got, _ := buildDistributed(t, seqs, 2, 17, 8, Config{})
	if len(got) != 0 {
		t.Errorf("short reads retained %d k-mers", len(got))
	}
}

func TestOccurrenceCapAtMaxFreq(t *testing.T) {
	// Entries stop growing their occurrence lists past m+1 even though
	// counting continues (memory bound).
	rng := rand.New(rand.NewSource(6))
	motif := randReads(rng, 1, 30, 30)[0]
	var seqs [][]byte
	for i := 0; i < 20; i++ {
		seqs = append(seqs, append(append([]byte{}, randReads(rng, 1, 40, 60)[0]...), motif...))
	}
	recs := make([]*fastq.Record, len(seqs))
	for i, s := range seqs {
		recs[i] = &fastq.Record{Seq: s}
	}
	err := spmd.Run(1, func(c *spmd.Comm) error {
		local := LocalReads{IDStart: 0, Seqs: seqs}
		part := &Partition{}
		cfg := Config{K: 17, MaxFreq: 5}
		var stats BuildStats
		var e error
		part, stats, e = Build(c, nil, local, cfg)
		if e != nil {
			return e
		}
		_ = stats
		part.ForEach(func(km kmer.Kmer, occs []Occ) {
			if len(occs) > 5 {
				t.Errorf("occurrence list of length %d exceeds m", len(occs))
			}
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuildWithModelProducesVirtualTime(t *testing.T) {
	ds, err := seqgen.Generate(seqgen.Config{
		GenomeLen: 8000, Seed: 7, Coverage: 12, MeanReadLen: 800,
		MinReadLen: 200, ErrorRate: 0.1, BothStrands: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := fastq.NewReadStore(ds.Reads, 4)
	mdl, err := machine.NewModel(machine.Cori, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = spmd.RunWithModel(4, mdl, func(c *spmd.Comm) error {
		start, end := store.LocalIDs(c.Rank())
		local := LocalReads{IDStart: start}
		for id := start; id < end; id++ {
			local.Seqs = append(local.Seqs, store.Seq(id))
		}
		_, stats, err := Build(c, mdl, local, Config{K: 17, MaxFreq: 10, ErrorRate: 0.1})
		if err != nil {
			return err
		}
		if stats.Bloom.LocalVirtual <= 0 || stats.Bloom.ExchangeVirtual <= 0 {
			return fmt.Errorf("bloom stage virtual times not recorded: %+v", stats.Bloom)
		}
		if stats.Hash.LocalVirtual <= 0 || stats.Hash.PackVirtual <= 0 {
			return fmt.Errorf("hash stage virtual times not recorded: %+v", stats.Hash)
		}
		if c.Now() <= 0 {
			return fmt.Errorf("virtual clock did not advance")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// naiveMinimizerRetained is naiveRetained over the minimizer stream.
func naiveMinimizerRetained(seqs [][]byte, k, w, maxFreq int) map[kmer.Kmer][]Occ {
	counts := make(map[kmer.Kmer][]Occ)
	for id, s := range seqs {
		for _, ex := range kmer.Minimizers(s, k, w, uint32(id)) {
			counts[ex.Kmer] = append(counts[ex.Kmer],
				MakeOcc(ex.Occ.ReadID, ex.Occ.Pos, ex.Occ.Forward))
		}
	}
	for km, occs := range counts {
		if len(occs) < 2 || len(occs) > maxFreq {
			delete(counts, km)
		}
	}
	return counts
}

func TestBuildWithMinimizersMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	template := randReads(rng, 1, 2500, 2500)[0]
	var seqs [][]byte
	for i := 0; i+400 <= len(template); i += 150 {
		seqs = append(seqs, template[i:i+400])
	}
	const k, w, m = 15, 8, 12
	want := naiveMinimizerRetained(seqs, k, w, m)
	if len(want) == 0 {
		t.Fatal("no retained minimizers in test data")
	}
	got, _ := buildDistributed(t, seqs, 3, k, m, Config{MinimizerWindow: w})
	if len(got) != len(want) {
		t.Fatalf("retained %d minimizer k-mers, want %d", len(got), len(want))
	}
	for km, wocc := range want {
		if len(got[km]) != len(wocc) {
			t.Fatalf("k-mer %q occurrence count %d, want %d",
				km.Bytes(k), len(got[km]), len(wocc))
		}
	}
	// Volume reduction sanity: the minimizer table is far smaller than the
	// full-k-mer table.
	full, _ := buildDistributed(t, seqs, 3, k, m, Config{})
	if len(got)*2 > len(full) {
		t.Errorf("minimizers retained %d of %d full k-mers", len(got), len(full))
	}
}

// TestMinimizerRoundCountMatchesStream checks that minimizer runs agree
// on the round count from the minimizer density, not the full k-mer bag:
// the old kmer.Count-based agreement scheduled ~(w+1)/2 empty all-to-all
// rounds per pass.
func TestMinimizerRoundCountMatchesStream(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	seqs := randReads(rng, 12, 900, 1400)
	const k, w, m = 15, 9, 12
	cfg := Config{MinimizerWindow: w, MaxKmersPerRound: 512}
	_, allStats := buildDistributed(t, seqs, 3, k, m, cfg)

	// The busiest rank's streamable minimizer count bounds the rounds
	// (recompute the byte-balanced block distribution buildDistributed's
	// read store uses).
	recs := make([]*fastq.Record, len(seqs))
	for i, s := range seqs {
		recs[i] = &fastq.Record{Name: fmt.Sprintf("r%d", i), Seq: s}
	}
	maxUnits := 0
	for _, rg := range fastq.PartitionByBytes(recs, 3) {
		units := 0
		for i := rg[0]; i < rg[1]; i++ {
			units += kmer.MinimizerCount(seqs[i], k, w)
		}
		if units > maxUnits {
			maxUnits = units
		}
	}
	wantRounds := (maxUnits + 511) / 512
	if wantRounds == 0 {
		t.Fatal("degenerate test data: no minimizers")
	}
	for r, st := range allStats {
		if st.Bloom.Rounds != wantRounds {
			t.Errorf("rank %d: %d bloom rounds, want %d (streamable minimizers, not full k-mer bag)",
				r, st.Bloom.Rounds, wantRounds)
		}
		if st.Hash.Rounds != wantRounds {
			t.Errorf("rank %d: %d hash rounds, want %d", r, st.Hash.Rounds, wantRounds)
		}
	}
}

// TestBuildAsyncMatchesSync checks the pipelined (non-blocking) round
// schedule constructs exactly the same partition as the bulk-synchronous
// one, and that exchange time is reported as overlapped.
func TestBuildAsyncMatchesSync(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	seqs := randReads(rng, 16, 700, 1200)
	const k, m = 15, 20
	syncGot, _ := buildDistributed(t, seqs, 4, k, m, Config{MaxKmersPerRound: 1024})
	asyncGot, asyncStats := buildDistributed(t, seqs, 4, k, m, Config{MaxKmersPerRound: 1024, Async: true})
	if len(asyncGot) != len(syncGot) {
		t.Fatalf("async retained %d k-mers, sync %d", len(asyncGot), len(syncGot))
	}
	for km, wocc := range syncGot {
		gocc := asyncGot[km]
		if len(gocc) != len(wocc) {
			t.Fatalf("k-mer %q: async %d occurrences, sync %d", km.Bytes(k), len(gocc), len(wocc))
		}
		for i := range wocc {
			if gocc[i] != wocc[i] {
				t.Fatalf("k-mer %q occurrence %d differs: %+v vs %+v", km.Bytes(k), i, gocc[i], wocc[i])
			}
		}
	}
	overlapped := false
	for _, st := range asyncStats {
		if st.Bloom.OverlapWall > 0 || st.Hash.OverlapWall > 0 {
			overlapped = true
		}
	}
	if !overlapped {
		t.Error("async build reported no overlapped exchange time on any rank")
	}
}

func TestStageStatsTotals(t *testing.T) {
	s := StageStats{Breakdown: stats.Breakdown{PackVirtual: 1, LocalVirtual: 2, ExchangeVirtual: 3}}
	if s.TotalVirtual() != 6 {
		t.Errorf("TotalVirtual = %v", s.TotalVirtual())
	}
}
