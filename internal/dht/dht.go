package dht

import (
	"fmt"
	"sort"

	"dibella/internal/bella"
	"dibella/internal/bloom"
	"dibella/internal/hll"
	"dibella/internal/kmer"
	"dibella/internal/machine"
	"dibella/internal/spmd"
	"dibella/internal/stats"
	"dibella/internal/trace"
	"dibella/internal/walltime"
)

// Flight-recorder span names for the two construction passes.
const (
	traceBloomPass = "stage.bloom"
	traceHashPass  = "stage.hash"
)

// Occ is a compact k-mer occurrence: the read it was seen in and its
// position, with the orientation bit packed into the low position bit.
type Occ struct {
	Read    uint32
	PosFlag uint32
}

// MakeOcc packs an occurrence.
func MakeOcc(read, pos uint32, forward bool) Occ {
	pf := pos << 1
	if forward {
		pf |= 1
	}
	return Occ{Read: read, PosFlag: pf}
}

// Pos returns the k-mer's offset within the read.
func (o Occ) Pos() uint32 { return o.PosFlag >> 1 }

// Forward reports whether the canonical k-mer matched the read's forward
// orientation.
func (o Occ) Forward() bool { return o.PosFlag&1 == 1 }

// Entry is one hash-table value: the total sighting count and the
// occurrence list (capped at the high-frequency cutoff, beyond which the
// k-mer is doomed to pruning anyway).
type Entry struct {
	Count int32
	Occs  []Occ
}

// Partition is one rank's shard of the distributed hash table.
type Partition struct {
	K       int
	MaxFreq int
	Table   map[kmer.Kmer]*Entry
}

// Retained returns the number of retained (post-prune) k-mers in the
// partition.
func (p *Partition) Retained() int { return len(p.Table) }

// ForEach visits every retained k-mer in ascending k-mer order. The
// deterministic order costs one key sort per call but means consumers
// (the overlap stage packs exchange payloads straight out of this loop)
// cannot leak Go's randomized map order into wire bytes or output.
func (p *Partition) ForEach(fn func(km kmer.Kmer, occs []Occ)) {
	kms := make([]kmer.Kmer, 0, len(p.Table))
	for km := range p.Table {
		kms = append(kms, km)
	}
	sort.Slice(kms, func(i, j int) bool { return kms[i] < kms[j] })
	for _, km := range kms {
		fn(km, p.Table[km].Occs)
	}
}

// MemBytes estimates the partition's resident footprint: table buckets
// plus occurrence lists. Serve mode's mem-utilization scorer routes
// query batches on this quantity.
func (p *Partition) MemBytes() int64 {
	// ~48 bytes per entry: bucket slot, 8-byte key, entry header.
	n := int64(len(p.Table)) * 48
	for _, e := range p.Table {
		n += int64(len(e.Occs)) * 8
	}
	return n
}

// LocalReads is one rank's block of the read set: sequences with global
// IDs IDStart, IDStart+1, ...
type LocalReads struct {
	IDStart uint32
	Seqs    [][]byte
}

// Config controls hash-table construction.
type Config struct {
	K       int // k-mer length
	MaxFreq int // high-frequency cutoff m

	// MaxKmersPerRound bounds per-rank memory per exchange round
	// (default 1<<19).
	MaxKmersPerRound int

	// BloomFP is the Bloom filter's target false-positive rate
	// (default 0.01).
	BloomFP float64

	// DistinctRatio estimates |distinct k-mers| / |k-mer bag| when sizing
	// the Bloom filter from Equation 2 (default from bella theory given
	// ErrorRate; fallback 0.75).
	DistinctRatio float64
	ErrorRate     float64 // used to derive DistinctRatio when set

	// UseHLL sizes the Bloom filter from a HyperLogLog cardinality
	// estimate (an extra scan plus a register all-reduce) instead of the
	// Equation-2 closed form — the HipMer fallback discussed in §6.
	UseHLL       bool
	HLLPrecision uint8 // default 12

	// MinimizerWindow > 1 ships only (w,k)-minimizers instead of every
	// k-mer (the Minimap2-style compaction of §11's related work),
	// cutting exchange volume by ~(w+1)/2 at a small recall cost.
	// 0 or 1 disables.
	MinimizerWindow int

	// Async schedules each pass's exchanges as non-blocking collectives:
	// round r+1 is packed and posted while round r's exchange is still in
	// flight and round r's received k-mers are inserted after it lands, so
	// exchange cost is hidden under local work (modeled as max rather than
	// sum). The inserted data is identical to the blocking schedule.
	Async bool

	// BuildDepth is how many exchanges the Async round pipeline keeps in
	// flight per pass (default 2 — the schedule the repo has always run;
	// capped at spmd.MaxStreamDepth). Depth 1 degenerates to the blocking
	// schedule. The inserted data is identical at every depth.
	BuildDepth int

	// KeepSingletons retains k-mers seen only once: the Bloom admission
	// heuristic is bypassed (every received key gets a table entry) and
	// the prune drops only the high-frequency tail. Serve mode needs this
	// — a query read's occurrence can lift an indexed singleton to count 2
	// in the combined run the house invariant compares against, so the
	// resident index must keep singletons to reproduce those pairs.
	KeepSingletons bool
}

func (cfg *Config) setDefaults() error {
	if !kmer.ValidK(cfg.K) {
		return fmt.Errorf("dht: invalid k %d", cfg.K)
	}
	if cfg.MaxFreq < 2 {
		return fmt.Errorf("dht: max frequency %d must be >= 2", cfg.MaxFreq)
	}
	if cfg.MaxKmersPerRound <= 0 {
		cfg.MaxKmersPerRound = 1 << 19
	}
	if cfg.BloomFP == 0 {
		cfg.BloomFP = 0.01
	}
	if cfg.BloomFP < 0 || cfg.BloomFP >= 1 {
		return fmt.Errorf("dht: bloom false-positive rate %v out of (0,1)", cfg.BloomFP)
	}
	if cfg.DistinctRatio == 0 {
		if cfg.ErrorRate > 0 {
			// Erroneous instances are distinct with near certainty.
			cfg.DistinctRatio = 1 - bella.ProbKmerCorrect(cfg.ErrorRate, cfg.K) + 0.05
		} else {
			cfg.DistinctRatio = 0.75
		}
	}
	if cfg.HLLPrecision == 0 {
		cfg.HLLPrecision = 12
	}
	if cfg.MinimizerWindow < 0 {
		return fmt.Errorf("dht: minimizer window %d must be non-negative", cfg.MinimizerWindow)
	}
	if cfg.BuildDepth == 0 {
		cfg.BuildDepth = 2
	}
	if cfg.BuildDepth < 1 || cfg.BuildDepth > spmd.MaxStreamDepth {
		return fmt.Errorf("dht: build depth %d out of [1,%d]", cfg.BuildDepth, spmd.MaxStreamDepth)
	}
	return nil
}

// StageStats is the per-rank accounting of one pipeline stage, split the
// way the paper's Fig. 4 splits efficiency: packing (send-buffer
// construction), local processing, and exchange.
type StageStats struct {
	Rounds        int
	KmersParsed   int64
	KmersReceived int64
	BytesPacked   int64
	stats.Breakdown
}

// BuildStats reports both construction stages plus sizing diagnostics.
type BuildStats struct {
	Bloom            StageStats
	Hash             StageStats
	BloomBits        uint64
	DistinctEstimate float64
	TableEntries     int   // keys resident after the Bloom pass
	Retained         int   // keys surviving the prune
	PrunedSingleton  int   // Bloom false positives removed
	PrunedHighFreq   int   // repeat k-mers removed (count > m)
	BloomMemBytes    int64 // resident bytes at the Bloom pass's end (filter + nascent table)
}

// pricer converts counted operations into virtual time on c's clock; a nil
// model prices everything at zero (wall time is still measured).
type pricer struct {
	c     *spmd.Comm
	model *machine.Model
}

func (p pricer) tick(ops, rate, workingSet float64) float64 {
	if p.model == nil || ops <= 0 {
		return 0
	}
	d := p.model.ComputeTime(ops, rate, workingSet)
	p.c.Tick(d)
	return d
}

// Build constructs this rank's hash-table partition from its local reads,
// running both passes. All ranks must call it collectively.
func Build(c *spmd.Comm, model *machine.Model, reads LocalReads, cfg Config) (*Partition, BuildStats, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, BuildStats{}, err
	}
	pr := pricer{c: c, model: model}
	stats := BuildStats{}

	// Agree on the global round count from what each rank will actually
	// stream: a minimizer run ships only the (w,k)-minimizers, so sizing
	// rounds by the full k-mer count would schedule ~(w+1)/2 empty
	// all-to-all rounds per pass. The full bag count still sizes the Bloom
	// filter (Eq. 2 is stated over k-mer instances).
	localKmers := int64(0)
	for _, s := range reads.Seqs {
		localKmers += int64(kmer.Count(len(s), cfg.K))
	}
	localUnits := localKmers
	if cfg.MinimizerWindow > 1 {
		localUnits = 0
		for _, s := range reads.Seqs {
			localUnits += int64(kmer.MinimizerCount(s, cfg.K, cfg.MinimizerWindow))
		}
	}
	rounds := int(spmd.AllreduceI64(c,
		(localUnits+int64(cfg.MaxKmersPerRound)-1)/int64(cfg.MaxKmersPerRound),
		spmd.OpMax))
	globalBag := spmd.AllreduceI64(c, localKmers, spmd.OpSum)

	// Size the Bloom filter. A minimizer run inserts only ~2/(w+1) of the
	// bag, so the Eq. 2 estimate scales by the minimizer density (the HLL
	// pass sketches the shipped stream directly). Sizing never affects
	// output — a Bloom false positive creates a table entry whose count
	// stays below 2 and is pruned — only memory and modeled insert time.
	if cfg.UseHLL {
		stats.DistinctEstimate = estimateWithHLL(c, pr, reads, cfg)
	} else {
		stats.DistinctEstimate = float64(globalBag) * cfg.DistinctRatio *
			kmer.MinimizerDensity(cfg.MinimizerWindow)
	}
	perRank := uint64(stats.DistinctEstimate/float64(c.Size())*1.1) + 64
	filter := bloom.NewWithEstimate(perRank, cfg.BloomFP)
	stats.BloomBits = filter.NumBits()

	part := &Partition{K: cfg.K, MaxFreq: cfg.MaxFreq, Table: make(map[kmer.Kmer]*Entry)}

	// Pass 1: Bloom filter construction.
	rec := trace.Rec(c.Rank())
	rec.Begin(traceBloomPass, c.Now())
	stats.Bloom = bloomPass(c, pr, reads, cfg, rounds, filter, part)
	stats.TableEntries = len(part.Table)
	// The Bloom stage's peak footprint is the filter plus the nascent
	// table — both alive this one instant, the filter freed just below.
	stats.BloomMemBytes = part.MemBytes() + int64(filter.NumBits()/8)
	rec.End(traceBloomPass, c.Now(), stats.Bloom.BytesPacked)
	// The paper frees the Bloom filter here; dropping the reference is the
	// Go equivalent.
	filter = nil
	_ = filter

	// Pass 2: occurrence accumulation and pruning.
	rec.Begin(traceHashPass, c.Now())
	stats.Hash = hashPass(c, pr, reads, cfg, rounds, part)
	t0 := walltime.Now()
	prunedS, prunedH := prune(part, cfg.KeepSingletons)
	stats.Hash.LocalVirtual += pr.tick(float64(stats.TableEntries),
		machine.RateHTPrune, float64(stats.TableEntries)*64)
	stats.Hash.LocalWall += walltime.Since(t0)
	stats.PrunedSingleton, stats.PrunedHighFreq = prunedS, prunedH
	stats.Retained = len(part.Table)
	rec.End(traceHashPass, c.Now(), stats.Hash.BytesPacked)
	return part, stats, nil
}

// estimateWithHLL runs the optional HyperLogLog cardinality pass over the
// stream the passes will actually ship (every k-mer, or only the
// minimizers), so the estimate matches what the Bloom filter will see.
func estimateWithHLL(c *spmd.Comm, pr pricer, reads LocalReads, cfg Config) float64 {
	sk := hll.New(cfg.HLLPrecision)
	str := newStream(reads, cfg.K, cfg.MinimizerWindow)
	for {
		ex, ok := str.next()
		if !ok {
			break
		}
		sk.Add(ex.Kmer.Hash())
	}
	pr.tick(float64(str.takeScanned()), machine.RateParse, float64(sk.SizeBytes()))
	merged := spmd.MaxReduceRegisters(c, sk.Registers())
	if err := sk.SetRegisters(merged); err != nil {
		panic(err) // same precision by construction
	}
	return sk.Estimate()
}

// stream walks a rank's reads emitting k-mers (or minimizers) in batches
// across rounds. It also counts the k-mers *scanned* to produce what it
// emits: a minimizer stream still reads every k-mer to find each window's
// minimum, so local parse time is priced on the scanned count while
// packing and exchange scale with the emitted count.
type stream struct {
	reads   LocalReads
	k       int
	w       int // minimizer window; <=1 streams every k-mer
	idx     int
	sc      *kmer.Scanner
	mins    []kmer.Extracted // current read's minimizers (w > 1)
	mIdx    int
	scanned int64 // k-mers scanned since the last takeScanned
}

func newStream(reads LocalReads, k, w int) *stream {
	return &stream{reads: reads, k: k, w: w}
}

// takeScanned returns and resets the count of k-mers scanned since the
// previous call. In exact mode it equals the emitted count; in minimizer
// mode it is larger by ~(w+1)/2.
func (s *stream) takeScanned() int64 {
	n := s.scanned
	s.scanned = 0
	return n
}

// next returns the next extracted k-mer, ok=false at end of all reads.
func (s *stream) next() (kmer.Extracted, bool) {
	if s.w > 1 {
		for {
			if s.mIdx < len(s.mins) {
				ex := s.mins[s.mIdx]
				s.mIdx++
				return ex, true
			}
			if s.idx >= len(s.reads.Seqs) {
				return kmer.Extracted{}, false
			}
			seq := s.reads.Seqs[s.idx]
			s.mins = kmer.Minimizers(seq, s.k, s.w, s.reads.IDStart+uint32(s.idx))
			s.scanned += int64(kmer.Count(len(seq), s.k))
			s.mIdx = 0
			s.idx++
		}
	}
	for {
		if s.sc == nil {
			if s.idx >= len(s.reads.Seqs) {
				return kmer.Extracted{}, false
			}
			s.sc = kmer.NewScanner(s.reads.Seqs[s.idx], s.k, s.reads.IDStart+uint32(s.idx))
			s.idx++
		}
		ex, ok := s.sc.Next()
		if ok {
			s.scanned++
			return ex, true
		}
		s.sc = nil
	}
}

// addComm accumulates one collective's exchange and overlap cost into the
// stage breakdown from Comm stats snapshots taken around it.
func (st *StageStats) addComm(pre, post spmd.Stats) {
	st.ExchangeVirtual += post.ExchangeVirtual - pre.ExchangeVirtual
	st.OverlapVirtual += post.OverlapVirtual - pre.OverlapVirtual
	st.ExchangeWall += post.ExchangeWall - pre.ExchangeWall
	st.OverlapWall += post.OverlapWall - pre.OverlapWall
}

// runRounds drives one pass's exchange rounds. pack produces the next
// round's send buffers (charging parse/pack time to st), process consumes
// one round's received batches. With cfg.Async the rounds are pipelined:
// round r+1 is packed and posted while round r's exchange is in flight,
// and processing round r overlaps round r+1's exchange — the paper's
// pack → exchange → process sum becomes max(exchange, local). The
// process calls see identical data in identical order either way.
//
// Exchange/overlap accounting snapshots Comm stats once around the whole
// pass: pack and process only tick local time, so every stats delta in
// the window belongs to the pass's exchanges (including posting costs).
func runRounds[T any](c *spmd.Comm, st *StageStats, cfg Config, rounds int,
	pack func() [][]T, process func([][]T)) {

	pre := c.Stats()
	defer func() { st.addComm(pre, c.Stats()) }()
	depth := cfg.BuildDepth
	if depth <= 0 {
		depth = 2
	}
	// A single-round pass has nothing to pipeline — posting cost would be
	// pure loss — so the non-blocking schedule needs at least two rounds
	// and a window of at least two exchanges.
	if !cfg.Async || rounds < 2 || depth < 2 {
		for round := 0; round < rounds; round++ {
			send := pack()
			process(spmd.Alltoallv(c, send))
		}
		return
	}
	// Keep up to depth exchanges in flight: prefill depth-1 posts, then
	// post one more ahead of each wait. At depth 2 this is exactly the
	// post-one-ahead schedule the pass has always run; deeper windows give
	// slow rounds more exchange time to hide under.
	var pending []*spmd.Handle[T]
	posted := 0
	for posted < rounds && posted < depth-1 {
		pending = append(pending, spmd.IAlltoallv(c, pack()))
		posted++
	}
	for round := 0; round < rounds; round++ {
		if posted < rounds {
			pending = append(pending, spmd.IAlltoallv(c, pack()))
			posted++
		}
		recv := pending[0].Wait()
		pending = pending[1:]
		process(recv)
	}
}

// bloomPass streams k-mer keys to their owners and populates the Bloom
// filter, seeding the table with keys seen (probably) more than once.
func bloomPass(c *spmd.Comm, pr pricer, reads LocalReads, cfg Config, rounds int,
	filter *bloom.Filter, part *Partition) StageStats {

	st := StageStats{Rounds: rounds}
	p := c.Size()
	str := newStream(reads, cfg.K, cfg.MinimizerWindow)
	ws := func() float64 {
		return float64(filter.SizeBytes()) + float64(len(part.Table))*48
	}
	pack := func() [][]kmer.Kmer {
		t0 := walltime.Now()
		send := make([][]kmer.Kmer, p)
		parsed := int64(0)
		for parsed < int64(cfg.MaxKmersPerRound) {
			ex, ok := str.next()
			if !ok {
				break
			}
			send[ex.Kmer.Owner(p)] = append(send[ex.Kmer.Owner(p)], ex.Kmer)
			parsed++
		}
		st.KmersParsed += parsed
		// Parse time covers every k-mer scanned, not just those shipped:
		// a minimizer stream reads the full bag to select its windows'
		// minima, and nothing is modeled as free.
		st.LocalVirtual += pr.tick(float64(str.takeScanned()), machine.RateParse, ws())
		st.LocalWall += walltime.Since(t0)
		t0 = walltime.Now()
		st.BytesPacked += parsed * 8
		st.PackVirtual += pr.tick(float64(parsed*8), machine.RatePack, ws())
		st.PackWall += walltime.Since(t0)
		return send
	}
	process := func(recv [][]kmer.Kmer) {
		t0 := walltime.Now()
		received := int64(0)
		for _, batch := range recv {
			for _, km := range batch {
				if cfg.KeepSingletons {
					// Serve-mode index: every distinct key gets an entry —
					// a later query occurrence may be its second sighting.
					if _, ok := part.Table[km]; !ok {
						part.Table[km] = &Entry{}
					}
				} else if filter.InsertAndTest(km.Hash()) {
					if _, ok := part.Table[km]; !ok {
						part.Table[km] = &Entry{}
					}
				}
				received++
			}
		}
		st.KmersReceived += received
		st.LocalVirtual += pr.tick(float64(received), machine.RateBloomInsert, ws())
		st.LocalWall += walltime.Since(t0)
	}
	runRounds(c, &st, cfg, rounds, pack, process)
	return st
}

// occMsg is the pass-2 wire record: 16 bytes per occurrence.
type occMsg struct {
	Km kmer.Kmer
	O  Occ
}

// hashPass streams occurrences to owners, accumulating counts and
// locations for resident keys.
func hashPass(c *spmd.Comm, pr pricer, reads LocalReads, cfg Config, rounds int,
	part *Partition) StageStats {

	st := StageStats{Rounds: rounds}
	p := c.Size()
	str := newStream(reads, cfg.K, cfg.MinimizerWindow)
	ws := func() float64 { return float64(len(part.Table)) * 64 }
	pack := func() [][]occMsg {
		t0 := walltime.Now()
		send := make([][]occMsg, p)
		parsed := int64(0)
		for parsed < int64(cfg.MaxKmersPerRound) {
			ex, ok := str.next()
			if !ok {
				break
			}
			msg := occMsg{Km: ex.Kmer, O: MakeOcc(ex.Occ.ReadID, ex.Occ.Pos, ex.Occ.Forward)}
			send[ex.Kmer.Owner(p)] = append(send[ex.Kmer.Owner(p)], msg)
			parsed++
		}
		st.KmersParsed += parsed
		// Full scan priced, as in bloomPass: minimizer selection is not
		// free even though only the minima travel.
		st.LocalVirtual += pr.tick(float64(str.takeScanned()), machine.RateParse, ws())
		st.LocalWall += walltime.Since(t0)
		t0 = walltime.Now()
		st.BytesPacked += parsed * 16
		st.PackVirtual += pr.tick(float64(parsed*16), machine.RatePack, ws())
		st.PackWall += walltime.Since(t0)
		return send
	}
	process := func(recv [][]occMsg) {
		t0 := walltime.Now()
		received := int64(0)
		for _, batch := range recv {
			for _, msg := range batch {
				if e, ok := part.Table[msg.Km]; ok {
					e.Count++
					// Occurrences beyond the cutoff cannot survive the
					// prune; stop storing them (counting continues).
					if int(e.Count) <= part.MaxFreq {
						e.Occs = append(e.Occs, msg.O)
					}
				}
				received++
			}
		}
		st.KmersReceived += received
		st.LocalVirtual += pr.tick(float64(received), machine.RateHTInsert, ws())
		st.LocalWall += walltime.Since(t0)
	}
	runRounds(c, &st, cfg, rounds, pack, process)
	return st
}

// prune removes false-positive singletons and high-frequency k-mers,
// returning how many of each were dropped. A serve-mode index
// (keepSingletons) keeps its singletons, and keeps the high-frequency
// tail as tombstones — count retained, occurrence list dropped — so a
// query can tell "frequent in the index" (the combined count exceeds m
// too; no pairs) apart from "absent" (the combined count is the query
// occurrences alone).
func prune(part *Partition, keepSingletons bool) (singletons, highFreq int) {
	//lint:ignore detmap each iteration only counts, self-deletes, or nils its own entry's Occs — no iteration order escapes
	for km, e := range part.Table {
		switch {
		case e.Count < 2 && !keepSingletons:
			delete(part.Table, km)
			singletons++
		case int(e.Count) > part.MaxFreq:
			highFreq++
			if keepSingletons {
				e.Occs = nil
				continue
			}
			delete(part.Table, km)
		}
	}
	return
}
