// Package dht builds diBELLA's distributed k-mer hash table: the first two
// pipeline stages of the paper, and the producer of the seed set that the
// overlap stage walks. In the seed→exchange→overlap path this package is
// the "exchange": it is where the k-mer bag crosses ranks, and its
// all-to-all volume is the pipeline's dominant communication cost.
//
// Stage 1 (Bloom filter construction, §6): every rank streams its local
// reads into k-mers, routes each k-mer to its hash owner through an
// irregular all-to-all, and the owner inserts it into a local Bloom filter
// partition. A k-mer seen for the (probable) second time becomes a key in
// the owner's hash-table partition. Because up to ~98% of long-read k-mers
// are singletons, this pass eliminates the bulk of the data without storing
// per-instance metadata.
//
// Stage 2 (hash table construction, §7): the reads are streamed again, now
// shipping (k-mer, read ID, position, orientation) tuples; owners append
// occurrences only for resident keys and count every sighting. Afterwards
// each partition prunes Bloom false positives (count < 2) and
// high-frequency repeat k-mers (count > m). Surviving keys are the
// "retained" k-mers — the edges of the read-overlap graph.
//
// Both passes run in memory-limited rounds: ranks agree (via all-reduce) on
// the global round count and exchange at most MaxKmersPerRound k-mers per
// rank per round, so the full k-mer bag never resides in memory — the
// paper's streaming design.
//
// With Config.MinimizerWindow > 1 both passes extract and exchange only
// (w,k)-minimizer occurrences (kmer.Minimizers) instead of every k-mer,
// shrinking the index and the exchanged bytes to ~2/(w+1) of the exact
// mode's at a small recall cost. Reads are still scanned in full — only
// the shipped subset changes — so local parse time is priced on the full
// k-mer stream while packing, exchange, and insertion scale with the
// minimizer count. The downstream overlap and alignment stages consume
// the sparser partition unchanged.
package dht
