package spmd

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJoinBootstrapFromEnv(t *testing.T) {
	if _, ok, _ := JoinBootstrapFromEnv(); ok {
		t.Skipf("%s already set in the test environment", EnvRank)
	}
	t.Run("parses", func(t *testing.T) {
		t.Setenv(EnvRank, "0")
		t.Setenv(EnvWorldSize, "4")
		t.Setenv(EnvRendezvous, "127.0.0.1:9999")
		t.Setenv(EnvFormTimeout, "5s")
		b, ok, err := JoinBootstrapFromEnv()
		if !ok || err != nil {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
		if b.Rank != 0 || b.Size != 4 || b.Rendezvous != "127.0.0.1:9999" || b.Timeout != 5*time.Second {
			t.Errorf("parsed %+v", b)
		}
	})
	t.Run("malformed rank", func(t *testing.T) {
		t.Setenv(EnvRank, "two")
		t.Setenv(EnvWorldSize, "4")
		t.Setenv(EnvRendezvous, "127.0.0.1:9999")
		if _, ok, err := JoinBootstrapFromEnv(); !ok || err == nil {
			t.Errorf("ok=%v err=%v, want set-but-malformed", ok, err)
		}
	})
	t.Run("missing rendezvous", func(t *testing.T) {
		t.Setenv(EnvRank, "1")
		t.Setenv(EnvWorldSize, "4")
		t.Setenv(EnvRendezvous, "")
		if _, ok, err := JoinBootstrapFromEnv(); !ok || err == nil {
			t.Errorf("ok=%v err=%v, want error", ok, err)
		}
	})
}

func TestJoinBootstrapValidation(t *testing.T) {
	if _, err := (&JoinBootstrap{Rank: 0, Size: 0}).Form(); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := (&JoinBootstrap{Rank: 3, Size: 2, Rendezvous: "x:1"}).Form(); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := (&JoinBootstrap{Rank: 1, Size: 2}).Form(); err == nil {
		t.Error("missing rendezvous accepted")
	}
}

func TestParseHostList(t *testing.T) {
	hosts, err := ParseHostList("a, b:3 ,c")
	if err != nil {
		t.Fatal(err)
	}
	want := []HostSpec{{"a", 0}, {"b", 3}, {"c", 0}}
	if fmt.Sprint(hosts) != fmt.Sprint(want) {
		t.Errorf("got %v want %v", hosts, want)
	}
	for _, bad := range []string{"", "a:0", "a:-1", "a:x", ":4"} {
		if _, err := ParseHostList(bad); err == nil {
			t.Errorf("ParseHostList(%q) accepted", bad)
		}
	}
}

func TestAssignHostRanks(t *testing.T) {
	hosts, err := AssignHostRanks([]HostSpec{{"a", 0}, {"b", 3}, {"c", 0}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if hosts[0].Ranks != 3 || hosts[1].Ranks != 3 || hosts[2].Ranks != 2 {
		t.Errorf("assignment %v", hosts)
	}
	ranges, size := hostRanges(hosts)
	if size != 8 || ranges[0] != [2]int{0, 3} || ranges[1] != [2]int{3, 6} || ranges[2] != [2]int{6, 8} {
		t.Errorf("ranges %v size %d", ranges, size)
	}
	// Explicit counts must sum to the world size.
	if _, err := AssignHostRanks([]HostSpec{{"a", 2}, {"b", 2}}, 8); err == nil {
		t.Error("sum mismatch accepted")
	}
	// Not enough ranks for the open hosts.
	if _, err := AssignHostRanks([]HostSpec{{"a", 7}, {"b", 0}, {"c", 0}}, 8); err == nil {
		t.Error("starved open hosts accepted")
	}
}

// syncBuffer is a goroutine-safe log sink for tests that run several
// bootstrap endpoints (each logging from its own goroutine) in one
// process.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestHostListBootstrapLoopback forms a 3-rank world across three
// simulated "hosts" entirely in-process: the launcher (rank 0) serves the
// join protocol while two HostJoinBootstrap agents — standing in for
// remote machines — fetch their assignments and dial in. It is the
// loopback rehearsal of a real multi-host launch, without forking.
func TestHostListBootstrapLoopback(t *testing.T) {
	hosts := []HostSpec{{"127.0.0.1", 1}, {"127.0.0.1", 1}, {"127.0.0.1", 1}}
	jln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The launcher and both join agents log concurrently from their own
	// goroutines; sharing a bare bytes.Buffer races.
	var log syncBuffer
	configBlob := []byte(`{"in":"reads.fastq","k":17}`)
	launcher := &HostListBootstrap{
		Hosts: hosts, Timeout: 20 * time.Second,
		Output: &log, NoSpawn: true,
		JoinListener: jln, RendezvousListener: rln,
		ConfigBlob: configBlob,
	}
	joinAddr := jln.Addr().String()

	const p = 3
	ranks := make([]int, p)
	sums := make([]int64, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	run := func(slot int, b Bootstrap) {
		defer wg.Done()
		tr, err := Connect(b)
		if err != nil {
			errs[slot] = err
			return
		}
		ranks[slot] = tr.Rank()
		errs[slot] = RunTransport(tr, nil, func(c *Comm) error {
			if c.Size() != p {
				return fmt.Errorf("size %d, want %d", c.Size(), p)
			}
			sums[slot] = AllreduceI64(c, int64(c.Rank()+1), OpSum)
			return nil
		})
		errs[slot] = b.Finish(errs[slot])
	}
	agent1 := &HostJoinBootstrap{Addr: joinAddr, HostIndex: 2, Timeout: 20 * time.Second, Output: &log, NoSpawn: true}
	agent2 := &HostJoinBootstrap{Addr: joinAddr, Timeout: 20 * time.Second, Output: &log, NoSpawn: true}
	wg.Add(3)
	go run(0, launcher)
	// Agent for host 2 carries its index; the host-1 agent relies on
	// first-free matching — both paths must assign correctly.
	go run(1, agent1)
	time.Sleep(100 * time.Millisecond) // let host 2 claim its slot first
	go run(2, agent2)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v\nlog:\n%s", i, err, log.String())
		}
	}
	if ranks[0] != 0 || ranks[1] != 2 || ranks[2] != 1 {
		t.Errorf("ranks = %v, want launcher 0, indexed agent 2, free agent 1", ranks)
	}
	for i, s := range sums {
		if s != 6 {
			t.Errorf("slot %d allreduce = %d, want 6", i, s)
		}
	}
	if !strings.Contains(log.String(), "joined, assigned ranks") {
		t.Errorf("launcher log missing join lines:\n%s", log.String())
	}
	// Config shipping: every joining agent must have received the
	// launcher's blob in its assignment, so join commands need not repeat
	// the launcher's flags.
	for i, agent := range []*HostJoinBootstrap{agent1, agent2} {
		if !bytes.Equal(agent.ReceivedConfig, configBlob) {
			t.Errorf("agent %d ReceivedConfig = %q, want %q", i+1, agent.ReceivedConfig, configBlob)
		}
	}
}

func TestConfigFromEnv(t *testing.T) {
	if _, ok, _ := ConfigFromEnv(); ok {
		t.Skipf("%s already set in the test environment", EnvConfig)
	}
	blob := []byte("opaque-config")
	env := workerEnv(1, 2, "127.0.0.1:9", "", 0, blob)
	found := ""
	for _, kv := range env {
		if strings.HasPrefix(kv, EnvConfig+"=") {
			found = strings.TrimPrefix(kv, EnvConfig+"=")
		}
	}
	if found == "" {
		t.Fatalf("workerEnv did not set %s", EnvConfig)
	}
	t.Setenv(EnvConfig, found)
	got, ok, err := ConfigFromEnv()
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, blob) {
		t.Errorf("roundtripped %q, want %q", got, blob)
	}
	t.Setenv(EnvConfig, "%%%not-base64")
	if _, ok, err := ConfigFromEnv(); !ok || err == nil {
		t.Errorf("malformed blob: ok=%v err=%v, want set-but-malformed", ok, err)
	}
}

// TestHandshakeRejectsVersionMismatch: a peer speaking a different
// protocol version must be refused with a clear error during world
// formation, not a mid-collective frame-decode failure.
func TestHandshakeRejectsVersionMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rootErr := make(chan error, 1)
	go func() {
		_, err := dialTCP(tcpConfig{
			Rank: 0, Size: 2, Listener: ln, Timeout: 5 * time.Second,
		})
		rootErr <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	h := hello(1, "127.0.0.1:1")
	h.Version = protoVersion + 7
	if err := sendHello(conn, h, time.Now().Add(5*time.Second)); err != nil {
		t.Fatal(err)
	}
	err = <-rootErr
	if err == nil || !strings.Contains(err.Error(), "protocol version") {
		t.Errorf("rank 0 error = %v, want protocol version mismatch", err)
	}
}

// TestHandshakeRejectsForeignMagic: garbage hellos (e.g. an old binary or
// a stray client) fail with the protocol-magic error.
func TestHandshakeRejectsForeignMagic(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rootErr := make(chan error, 1)
	go func() {
		_, err := dialTCP(tcpConfig{
			Rank: 0, Size: 2, Listener: ln, Timeout: 5 * time.Second,
		})
		rootErr <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	h := helloMsg{Rank: 1, Addr: "127.0.0.1:1"} // zero Magic: pre-versioning binary
	if err := sendHello(conn, h, time.Now().Add(5*time.Second)); err != nil {
		t.Fatal(err)
	}
	err = <-rootErr
	if err == nil || !strings.Contains(err.Error(), "protocol magic") {
		t.Errorf("rank 0 error = %v, want protocol magic mismatch", err)
	}
}

func TestPrefixWriter(t *testing.T) {
	var out bytes.Buffer
	pw := newPrefixWriter(&out, "[rank 3] ")
	for _, chunk := range []string{"hel", "lo\nwor", "ld\n", "tail"} {
		if _, err := pw.Write([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	want := "[rank 3] hello\n[rank 3] world\n[rank 3] tail\n"
	if out.String() != want {
		t.Errorf("got %q want %q", out.String(), want)
	}
	// Close with nothing pending writes nothing.
	out.Reset()
	pw2 := newPrefixWriter(&out, "[x] ")
	pw2.Close()
	if out.Len() != 0 {
		t.Errorf("empty Close wrote %q", out.String())
	}
}

func TestConnectClosesListenerOnDialFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Invalid coordinates that pass JoinBootstrap validation shape-wise
	// but fail in dialTCP are impossible (Form validates the same
	// fields), so drive Connect with a bootstrap whose world is broken.
	_, err = Connect(bootstrapFunc(func() (World, error) {
		return World{Rank: 5, Size: 2, Listener: ln}, nil
	}))
	if err == nil {
		t.Fatal("broken world accepted")
	}
	// The pre-bound listener must have been closed: a second Close errors.
	if cerr := ln.Close(); cerr == nil {
		t.Error("Connect leaked the rendezvous listener on dial failure")
	}
}

// bootstrapFunc adapts a closure into a Bootstrap for tests.
type bootstrapFunc func() (World, error)

func (f bootstrapFunc) Form() (World, error)      { return f() }
func (f bootstrapFunc) Finish(runErr error) error { return runErr }
