package spmd

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// streamWorkload builds rank-deterministic packed payloads: a varying
// number of items per (src, dst) pair, item sizes from tiny to multi-chunk,
// plus deliberate empty items and empty contributions.
func streamWorkload(rank, p, seed int) []PackedBufs {
	send := make([]PackedBufs, p)
	for dst := 0; dst < p; dst++ {
		rng := rand.New(rand.NewSource(int64(seed + rank*1000 + dst)))
		n := (rank + dst + seed) % 4 // some pairs contribute nothing at all
		for i := 0; i < n; i++ {
			size := rng.Intn(700)
			if i == 1 {
				size = 0 // zero-length items must survive chunking
			}
			item := make([]byte, size)
			for b := range item {
				item[b] = byte(rng.Intn(256))
			}
			send[dst].AppendItem(item)
		}
	}
	return send
}

// checkStreamProgram runs one streamed exchange under opts and verifies
// (a) the assembled result is byte-identical to the blocking packed
// exchange of the same payload and (b) the deliveries reconstruct every
// source's items in order with consistent First/Final markers.
func checkStreamProgram(opts StreamOpts, seed int) func(*Comm) error {
	return func(c *Comm) error {
		p := c.Size()
		// Deliveries are recorded, then replayed against the reference.
		type rebuilt struct {
			items [][]byte
			final bool
		}
		got := make([]rebuilt, p)
		deliver := func(d StreamDelivery) {
			if d.Src < 0 || d.Src >= p {
				panic(fmt.Sprintf("delivery from out-of-range src %d", d.Src))
			}
			r := &got[d.Src]
			if r.final {
				panic(fmt.Sprintf("delivery from src %d after its Final batch", d.Src))
			}
			if d.First != len(r.items) {
				panic(fmt.Sprintf("src %d: batch First=%d, want %d (batches must be contiguous)",
					d.Src, d.First, len(r.items)))
			}
			if len(d.Items) == 0 {
				panic(fmt.Sprintf("src %d: empty delivery", d.Src))
			}
			for _, it := range d.Items {
				r.items = append(r.items, append([]byte(nil), it...))
			}
			r.final = d.Final
		}
		out := IAlltoallvStreamed(c, streamWorkload(c.Rank(), p, seed), opts, deliver)

		// Reference: the blocking packed exchange of identical payloads.
		want := AlltoallvPacked(c, streamWorkload(c.Rank(), p, seed))
		for src := 0; src < p; src++ {
			if !bytes.Equal(out[src].Data, want[src].Data) {
				return fmt.Errorf("rank %d: assembled data from %d differs (%d vs %d bytes)",
					c.Rank(), src, len(out[src].Data), len(want[src].Data))
			}
			wantItems := want[src].Items()
			if len(out[src].Lens) != len(wantItems) {
				return fmt.Errorf("rank %d: %d lens from %d, want %d",
					c.Rank(), len(out[src].Lens), src, len(wantItems))
			}
			if len(got[src].items) != len(wantItems) {
				return fmt.Errorf("rank %d: %d delivered items from %d, want %d",
					c.Rank(), len(got[src].items), src, len(wantItems))
			}
			for i := range wantItems {
				if !bytes.Equal(got[src].items[i], wantItems[i]) {
					return fmt.Errorf("rank %d: delivered item %d from %d differs", c.Rank(), i, src)
				}
			}
			if len(wantItems) > 0 && !got[src].final {
				return fmt.Errorf("rank %d: src %d delivered %d items but never Final",
					c.Rank(), src, len(wantItems))
			}
		}
		// The world must be clean for blocking collectives afterwards.
		if sum := AllreduceI64(c, 1, OpSum); sum != int64(p) {
			return fmt.Errorf("rank %d: post-stream allreduce got %d", c.Rank(), sum)
		}
		return nil
	}
}

// streamEdgeOpts are the chunking shapes the streamed exchange must
// survive: byte-sized chunks, chunks larger than any payload, and the
// depth extremes.
var streamEdgeOpts = []StreamOpts{
	{},                              // defaults
	{ChunkBytes: 1, Depth: 1},       // every byte its own round, no pipelining
	{ChunkBytes: 1, Depth: 4},       // every byte its own round, windowed
	{ChunkBytes: 64, Depth: 2},      // items span many chunks
	{ChunkBytes: 1 << 20, Depth: 3}, // one chunk swallows the whole payload
	{ChunkBytes: 64, Depth: 100},    // depth beyond MaxStreamDepth is clamped
}

func TestIAlltoallvStreamedMem(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for oi, opts := range streamEdgeOpts {
			if err := Run(p, checkStreamProgram(opts, oi+1)); err != nil {
				t.Fatalf("p=%d opts=%+v: %v", p, opts, err)
			}
		}
	}
}

func TestIAlltoallvStreamedTCP(t *testing.T) {
	for _, p := range []int{1, 3} {
		for oi, opts := range streamEdgeOpts {
			if opts.ChunkBytes == 1 && opts.Depth == 4 && testing.Short() {
				continue // thousands of 31-byte frames; covered unwindowed above
			}
			if err := runTCPWorld(t, p, nil, checkStreamProgram(opts, oi+1)); err != nil {
				t.Fatalf("p=%d opts=%+v: %v", p, opts, err)
			}
		}
	}
}

// TestIAlltoallvStreamedAllEmpty exercises the degenerate world where no
// rank contributes anything: zero rounds, header only.
func TestIAlltoallvStreamedAllEmpty(t *testing.T) {
	prog := func(c *Comm) error {
		send := make([]PackedBufs, c.Size())
		out := IAlltoallvStreamed(c, send, StreamOpts{ChunkBytes: 8}, func(d StreamDelivery) {
			panic("delivery from an all-empty exchange")
		})
		for src, b := range out {
			if len(b.Data) != 0 || len(b.Lens) != 0 {
				return fmt.Errorf("rank %d: non-empty result from %d", c.Rank(), src)
			}
		}
		return nil
	}
	if err := Run(3, prog); err != nil {
		t.Fatalf("mem: %v", err)
	}
	if err := runTCPWorld(t, 3, nil, prog); err != nil {
		t.Fatalf("tcp: %v", err)
	}
}

// streamFixedModel prices full exchanges and chunk rounds at distinct
// fixed costs so the streamed clock folding is easy to assert.
type streamFixedModel struct{ full, chunk, post float64 }

func (m streamFixedModel) AlltoallvTime(int64, float64) float64   { return m.full }
func (m streamFixedModel) CollectiveTime() float64                { return 0 }
func (m streamFixedModel) StreamChunkTime(int64, float64) float64 { return m.chunk }
func (m streamFixedModel) ChunkPostTime() float64                 { return m.post }

// TestStreamedClockSerializesChunks pins the modeled-time semantics: chunk
// rounds of one stream drain back-to-back (completion watermark), compute
// inside deliver hides chunk cost, and per-chunk posting costs are charged
// on the rank clock.
func TestStreamedClockSerializesChunks(t *testing.T) {
	const (
		full  = 5.0
		chunk = 2.0
		post  = 0.25
	)
	err := RunWithModel(2, streamFixedModel{full: full, chunk: chunk, post: post}, func(c *Comm) error {
		// 4 bytes to each peer, chunk size 2 → exactly 2 rounds.
		send := make([]PackedBufs, 2)
		for dst := range send {
			send[dst].AppendItem([]byte{1, 2, 3, 4})
		}
		before := c.Now()
		var batches int
		out := IAlltoallvStreamed(c, send, StreamOpts{ChunkBytes: 2, Depth: 2}, func(d StreamDelivery) {
			batches++
		})
		if len(out[0].Data) != 4 || len(out[1].Data) != 4 {
			return fmt.Errorf("rank %d: bad assembly", c.Rank())
		}
		// The header (posted at `before`) costs `full`, then the 2 chunk
		// rounds drain back-to-back at `chunk` each — NOT in parallel, the
		// serialization this test pins. The 2*post of chunk-posting CPU
		// time ticks the clock during the header's flight, so it ends up
		// hidden under (and absorbed by) the header's cost:
		//   clock = before + full + 2*chunk, overlap = 2*post.
		want := before + full + 2*chunk
		if got := c.Now(); got != want {
			return fmt.Errorf("rank %d: clock %v, want %v", c.Rank(), got, want)
		}
		if ov, want := c.Stats().OverlapVirtual, 2*post; ov != want {
			return fmt.Errorf("rank %d: overlap %v, want %v (chunk posting under the header)", c.Rank(), ov, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStreamedOverlapAccounting: compute performed inside deliver runs
// while later chunks are in flight and must be accounted as hidden
// exchange time.
func TestStreamedOverlapAccounting(t *testing.T) {
	const chunk = 2.0
	err := RunWithModel(2, streamFixedModel{full: 0, chunk: chunk}, func(c *Comm) error {
		send := make([]PackedBufs, 2)
		for dst := range send {
			// 3 chunks of 2 bytes; each delivers one 2-byte item.
			for i := 0; i < 3; i++ {
				send[dst].AppendItem([]byte{byte(i), byte(i)})
			}
		}
		IAlltoallvStreamed(c, send, StreamOpts{ChunkBytes: 2, Depth: 3}, func(d StreamDelivery) {
			// 10s of compute per batch towers over every remaining chunk.
			c.Tick(10)
		})
		st := c.Stats()
		if st.OverlapVirtual <= 0 {
			return fmt.Errorf("rank %d: stream with compute hid nothing (overlap %v, exchange %v)",
				c.Rank(), st.OverlapVirtual, st.ExchangeVirtual)
		}
		// Chunks 2 and 3 (cost 2 each) are fully hidden under the 10s
		// batches; chunk 1 is not (no compute had run yet).
		if want := 2 * chunk; st.OverlapVirtual != want {
			return fmt.Errorf("rank %d: overlap %v, want %v", c.Rank(), st.OverlapVirtual, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStreamedFallbackPricing: a CommModel without the stream extension
// prices chunk rounds as full exchanges (the conservative fallback).
func TestStreamedFallbackPricing(t *testing.T) {
	const full = 3.0
	err := RunWithModel(2, fixedModel{cost: full}, func(c *Comm) error {
		send := make([]PackedBufs, 2)
		for dst := range send {
			send[dst].AppendItem([]byte{1, 2, 3, 4})
		}
		before := c.Now()
		IAlltoallvStreamed(c, send, StreamOpts{ChunkBytes: 2, Depth: 1}, nil)
		// Header + 2 chunk rounds, all at the full fixed cost, serialized.
		if got, want := c.Now(), before+3*full; got != want {
			return fmt.Errorf("rank %d: clock %v, want %v", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
