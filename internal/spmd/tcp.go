package spmd

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The TCP transport: one OS process (or goroutine, in tests) per rank,
// exchanging length-prefixed frames over per-peer persistent connections.
//
// World formation is a rank-0 rendezvous, in the spirit of go-p2p's
// swarm bootstrap: every rank opens a mesh listener, ranks 1..P-1 dial
// rank 0 and introduce themselves (rank + listen address), and once all
// have arrived rank 0 replies with the full address table. Rank i then
// dials every rank 0 < j < i and accepts connections from every j > i, so
// each unordered pair shares exactly one connection (the rendezvous
// connection doubles as the rank-0 mesh edge).
//
// Each collective is one frame per peer in each direction, carrying the
// sender's virtual clock and byte count in the header; since every rank
// hears from every other rank, each computes the world maxima locally —
// the same quantities the in-process barrier accumulates.

// tcpConfig configures one rank's endpoint of a TCP world. It is internal:
// callers describe the world with a Bootstrap (bootstrap.go) and obtain a
// transport through Connect.
type tcpConfig struct {
	Rank int // this rank, in [0, Size)
	Size int // world size P

	// Rendezvous is rank 0's listen address (host:port). Required for
	// ranks > 0, and for rank 0 unless Listener is set.
	Rendezvous string

	// Listener, when set on rank 0, is the pre-bound rendezvous socket.
	// A launcher that forks workers binds port 0 first, passes the
	// resolved address to the children, and hands the listener to its
	// in-process rank 0 — no bind race.
	Listener net.Listener

	// ListenAddr is where ranks > 0 bind their mesh listener
	// (default "127.0.0.1:0"). Multi-host worlds bind ":0"; the address
	// advertised to peers then substitutes the host this rank reaches the
	// rendezvous from, so the mesh address is dialable across machines.
	ListenAddr string

	// Timeout bounds world formation: dials, handshakes, and the wait
	// for slower ranks to arrive (default 30s). Collectives themselves
	// never time out — BSP ranks legitimately wait on the slowest peer.
	Timeout time.Duration
}

// Wire-protocol identity carried in every hello and join message. A peer
// whose binary speaks a different protocol (or is not dibella at all) is
// rejected with a clear error during world formation, instead of failing
// later with a frame-decode panic mid-collective.
const (
	protoMagic   = 0x44694245 // "DiBE"
	protoVersion = 1
)

// checkProto validates a peer's protocol identity fields.
func checkProto(magic, version uint32) error {
	if magic != protoMagic {
		return fmt.Errorf("spmd: peer protocol magic %#08x, want %#08x (peer is not a dibella process?)", magic, protoMagic)
	}
	if version != protoVersion {
		return fmt.Errorf("spmd: peer speaks protocol version %d, this binary speaks %d (mismatched dibella binaries?)", version, protoVersion)
	}
	return nil
}

// helloMsg is the gob payload of a frameHello.
type helloMsg struct {
	Magic   uint32 // protoMagic
	Version uint32 // protoVersion
	Rank    int
	Addr    string // mesh listen address (rendezvous connection only)
}

// peerMsg is carried on a peer's frame channel: one decoded frame or the
// terminal receive error.
type peerMsg struct {
	f   frame
	err error
}

// outFrame is one queued outbound collective frame. wg is signalled once
// the frame has been written and flushed (or failed, with the error stored
// in *errp); the happens-before edge of wg makes errp safe to read after
// wg.Wait.
type outFrame struct {
	f    *frame
	wg   *sync.WaitGroup
	errp *error
}

// peerConn is one persistent rank-to-rank connection. After world
// formation a dedicated writer goroutine owns the outbound direction,
// draining sendq in FIFO order — the property that keeps collective frames
// sequence-ordered on the wire even with several exchanges in flight.
type peerConn struct {
	conn   net.Conn
	wmu    sync.Mutex // serializes writes (writer goroutine vs. abort)
	bw     *bufio.Writer
	frames chan peerMsg
	sendq  chan outFrame
}

type tcpTransport struct {
	rank, size int
	peers      []*peerConn // indexed by rank; nil at own index
	seq        uint64      // collective sequence number

	done     chan struct{} // closed on shutdown; unblocks readers/receivers
	shutdown sync.Once
	aborted  bool
	amu      sync.Mutex
}

// dialTCP forms (this rank's endpoint of) a TCP world and returns once
// every pairwise connection is established, i.e. when all ranks have
// arrived. The transport is ready for collectives on return.
func dialTCP(cfg tcpConfig) (Transport, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("spmd: world size %d must be positive", cfg.Size)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("spmd: rank %d out of range [0,%d)", cfg.Rank, cfg.Size)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	t := &tcpTransport{
		rank:  cfg.Rank,
		size:  cfg.Size,
		peers: make([]*peerConn, cfg.Size),
		done:  make(chan struct{}),
	}
	deadline := time.Now().Add(cfg.Timeout)
	var err error
	if cfg.Rank == 0 {
		err = t.formRoot(cfg, deadline)
	} else {
		err = t.formLeaf(cfg, deadline)
	}
	if err != nil {
		t.Close()
		return nil, err
	}
	for r, p := range t.peers {
		if r == t.rank {
			continue
		}
		p.conn.SetDeadline(time.Time{})
		go t.readLoop(p)
		go t.writeLoop(p)
	}
	return t, nil
}

// formRoot runs rank 0's side of world formation: accept P-1 rendezvous
// connections, learn every rank's mesh address, broadcast the table.
func (t *tcpTransport) formRoot(cfg tcpConfig, deadline time.Time) error {
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Rendezvous)
		if err != nil {
			return fmt.Errorf("spmd: rank 0 rendezvous listen: %w", err)
		}
	}
	defer ln.Close()
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	addrs := make([]string, t.size)
	addrs[0] = ln.Addr().String()
	for arrived := 1; arrived < t.size; arrived++ {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("spmd: rank 0 rendezvous accept (%d/%d ranks arrived): %w",
				arrived, t.size, err)
		}
		hello, err := t.handshake(conn, deadline)
		if err != nil {
			conn.Close()
			return err
		}
		if err := t.admit(hello.Rank, conn); err != nil {
			conn.Close()
			return err
		}
		addrs[hello.Rank] = hello.Addr
	}
	table, err := encodeGob(addrs)
	if err != nil {
		return err
	}
	for r := 1; r < t.size; r++ {
		p := t.peers[r]
		if err := p.write(&frame{Type: framePeers, Payload: table}); err != nil {
			return fmt.Errorf("spmd: rank 0 sending peer table to rank %d: %w", r, err)
		}
	}
	return nil
}

// formLeaf runs rank i>0's side: introduce ourselves to rank 0, learn the
// address table, dial lower ranks, accept higher ones.
func (t *tcpTransport) formLeaf(cfg tcpConfig, deadline time.Time) error {
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return fmt.Errorf("spmd: rank %d mesh listen: %w", t.rank, err)
	}
	defer ln.Close()
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	root, err := (&net.Dialer{Deadline: deadline}).Dial("tcp", cfg.Rendezvous)
	if err != nil {
		return fmt.Errorf("spmd: rank %d dialing rendezvous %s: %w", t.rank, cfg.Rendezvous, err)
	}
	// Advertise the mesh listener under the interface this rank reaches
	// the rendezvous from: a ":0"-style bind has no routable host of its
	// own, and the rendezvous path is the one route peers are known to
	// share with us.
	if err := sendHello(root, hello(t.rank, advertiseAddr(ln.Addr(), root.LocalAddr())), deadline); err != nil {
		root.Close()
		return fmt.Errorf("spmd: rank %d introducing itself to rendezvous %s: %w", t.rank, cfg.Rendezvous, err)
	}
	if err := t.admit(0, root); err != nil {
		root.Close()
		return err
	}
	// Read the table unbuffered: rank 0 may already be streaming
	// collective frames behind it, and a throwaway buffered reader would
	// swallow their first bytes.
	root.SetReadDeadline(deadline)
	pf, err := readFrame(root)
	if err != nil {
		return fmt.Errorf("spmd: rank %d awaiting peer table: %w", t.rank, err)
	}
	if pf.Type != framePeers {
		return fmt.Errorf("spmd: rank %d expected peer table, got frame type %d", t.rank, pf.Type)
	}
	var addrs []string
	if err := decodeGob(pf.Payload, &addrs); err != nil {
		return fmt.Errorf("spmd: rank %d decoding peer table: %w", t.rank, err)
	}
	if len(addrs) != t.size {
		return fmt.Errorf("spmd: rank %d peer table has %d entries, want %d", t.rank, len(addrs), t.size)
	}

	for r := 1; r < t.rank; r++ {
		conn, err := t.dialPeer(addrs[r], hello(t.rank, ""), deadline)
		if err != nil {
			return fmt.Errorf("spmd: rank %d dialing rank %d at %s: %w", t.rank, r, addrs[r], err)
		}
		if err := t.admit(r, conn); err != nil {
			conn.Close()
			return err
		}
	}
	for need := t.size - 1 - t.rank; need > 0; need-- {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("spmd: rank %d mesh accept: %w", t.rank, err)
		}
		hello, err := t.handshake(conn, deadline)
		if err != nil {
			conn.Close()
			return err
		}
		if hello.Rank <= t.rank {
			conn.Close()
			return fmt.Errorf("spmd: rank %d got mesh dial from lower rank %d", t.rank, hello.Rank)
		}
		if err := t.admit(hello.Rank, conn); err != nil {
			conn.Close()
			return err
		}
	}
	return nil
}

// hello builds this binary's hello for one connection.
func hello(rank int, addr string) helloMsg {
	return helloMsg{Magic: protoMagic, Version: protoVersion, Rank: rank, Addr: addr}
}

// sendHello writes one hello frame on a freshly dialed connection.
func sendHello(conn net.Conn, h helloMsg, deadline time.Time) error {
	payload, err := encodeGob(h)
	if err != nil {
		return err
	}
	conn.SetWriteDeadline(deadline)
	if err := writeFrame(conn, &frame{Type: frameHello, Payload: payload}); err != nil {
		return fmt.Errorf("spmd: sending hello: %w", err)
	}
	return nil
}

// advertiseAddr returns the mesh address to announce to peers: the bound
// listener address, with an unspecified host (a ":0"-style bind) replaced
// by the interface this rank reaches the rendezvous from — the one address
// peers are known to share a route with.
func advertiseAddr(ln, local net.Addr) string {
	host, port, err := net.SplitHostPort(ln.String())
	if err != nil {
		return ln.String()
	}
	if ip := net.ParseIP(host); host != "" && (ip == nil || !ip.IsUnspecified()) {
		return ln.String()
	}
	if ta, ok := local.(*net.TCPAddr); ok {
		return net.JoinHostPort(ta.IP.String(), port)
	}
	return ln.String()
}

// dialPeer connects to addr and sends our hello.
func (t *tcpTransport) dialPeer(addr string, h helloMsg, deadline time.Time) (net.Conn, error) {
	conn, err := (&net.Dialer{Deadline: deadline}).Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := sendHello(conn, h, deadline); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// handshake reads and validates the dialer's hello, rejecting peers that
// speak a different protocol (mismatched binaries) with a clear error.
func (t *tcpTransport) handshake(conn net.Conn, deadline time.Time) (helloMsg, error) {
	conn.SetReadDeadline(deadline)
	f, err := readFrame(conn)
	if err != nil {
		return helloMsg{}, fmt.Errorf("spmd: rank %d reading hello: %w", t.rank, err)
	}
	if f.Type != frameHello {
		return helloMsg{}, fmt.Errorf("spmd: rank %d expected hello, got frame type %d", t.rank, f.Type)
	}
	var h helloMsg
	if err := decodeGob(f.Payload, &h); err != nil {
		return helloMsg{}, fmt.Errorf("spmd: rank %d decoding hello: %w", t.rank, err)
	}
	if err := checkProto(h.Magic, h.Version); err != nil {
		return helloMsg{}, err
	}
	if h.Rank < 0 || h.Rank >= t.size {
		return helloMsg{}, fmt.Errorf("spmd: hello from out-of-range rank %d", h.Rank)
	}
	return h, nil
}

// admit installs a newly established connection as the peer edge for rank r.
func (t *tcpTransport) admit(r int, conn net.Conn) error {
	if r == t.rank {
		return fmt.Errorf("spmd: rank %d connected to itself", r)
	}
	if t.peers[r] != nil {
		return fmt.Errorf("spmd: duplicate connection for rank %d", r)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	t.peers[r] = &peerConn{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		// Capacity 2*MaxStreamDepth: a peer may post collectives ahead of
		// our consumption — the round pipeline keeps two in flight, and a
		// streamed exchange posts its header plus up to MaxStreamDepth
		// chunk rounds before waiting the first — so the reader needs
		// headroom for a full pipeline window before it parks. A parked
		// reader backpressures the peer's writer and, transitively, its
		// posts; sizing past the deepest legal window keeps the window
		// itself deadlock-free regardless of socket buffering.
		frames: make(chan peerMsg, 2*MaxStreamDepth),
		// Same bound on the outbound side: one frame per in-flight
		// collective per peer.
		sendq: make(chan outFrame, 2*MaxStreamDepth),
	}
	return nil
}

// write sends one frame on the peer connection, serialized against
// concurrent abort notifications.
func (p *peerConn) write(f *frame) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if err := writeFrame(p.bw, f); err != nil {
		return err
	}
	return p.bw.Flush()
}

// writeLoop owns one peer connection's outbound direction after world
// formation: it drains sendq in FIFO order (preserving collective sequence
// order on the wire), flushes each frame, and signals the posting
// collective's WaitGroup. A write failure poisons the world; the loop then
// keeps draining so posts never block on a dead peer.
func (t *tcpTransport) writeLoop(p *peerConn) {
	for {
		select {
		case of := <-p.sendq:
			if err := p.write(of.f); err != nil {
				*of.errp = err
				of.wg.Done()
				t.Abort()
				continue
			}
			of.wg.Done()
		case <-t.done:
			// Fail any frames still queued so pending Waits unwind.
			for {
				select {
				case of := <-p.sendq:
					*of.errp = ErrAborted
					of.wg.Done()
				default:
					return
				}
			}
		}
	}
}

// readLoop decodes frames from one peer for the life of the world,
// delivering them (or the terminal error) to the collective receive
// path. Payloads come from the frame pool; the typed layer recycles
// them (RecycleRecvBuf) after copying the data out.
func (t *tcpTransport) readLoop(p *peerConn) {
	br := bufio.NewReaderSize(p.conn, 64<<10)
	for {
		f, err := readFramePooled(br)
		var msg peerMsg
		switch {
		case err != nil:
			msg = peerMsg{err: fmt.Errorf("spmd: peer connection lost: %w", err)}
		case f.Type == frameAbort:
			msg = peerMsg{err: ErrAborted}
		case f.Type == frameColl:
			msg = peerMsg{f: f}
		default:
			msg = peerMsg{err: fmt.Errorf("spmd: unexpected frame type %d mid-world", f.Type)}
		}
		select {
		case p.frames <- msg:
		case <-t.done:
			return
		}
		if msg.err != nil {
			close(p.frames)
			return
		}
	}
}

// recvColl receives the next collective frame from rank src, enforcing the
// sequence number so diverged collective schedules fail loudly instead of
// delivering wrong data.
func (t *tcpTransport) recvColl(src int, seq uint64) (frame, error) {
	select {
	case m, ok := <-t.peers[src].frames:
		if !ok {
			return frame{}, fmt.Errorf("spmd: rank %d connection already failed", src)
		}
		if m.err != nil {
			return frame{}, m.err
		}
		if m.f.Seq != seq {
			return frame{}, fmt.Errorf("spmd: rank %d sent collective #%d, expected #%d (collective schedules diverged)",
				src, m.f.Seq, seq)
		}
		return m.f, nil
	case <-t.done:
		return frame{}, ErrAborted
	}
}

// tcpPending is one posted non-blocking exchange: the sequence it was
// assigned, this rank's contributions, the receive buffers, and the write
// completion tracking shared with the per-peer writer goroutines.
type tcpPending struct {
	t            *tcpTransport
	seq          uint64
	clock, bytes float64
	recv         [][]byte
	wg           sync.WaitGroup
	writeErrs    []error
}

// IAlltoallv posts one collective: a frame per peer is enqueued on the
// per-peer writer goroutines (FIFO per connection, so frames stay in
// sequence order on the wire) and the handle is returned without waiting
// for either the writes or the peers.
func (t *tcpTransport) IAlltoallv(send [][]byte, clock, sentBytes float64) (PendingExchange, error) {
	if t.isAborted() {
		return nil, ErrAborted
	}
	seq := t.seq
	t.seq++
	h := &tcpPending{
		t: t, seq: seq, clock: clock, bytes: sentBytes,
		recv:      make([][]byte, t.size),
		writeErrs: make([]error, t.size),
	}
	h.recv[t.rank] = send[t.rank]
	for dst := 0; dst < t.size; dst++ {
		if dst == t.rank {
			continue
		}
		h.wg.Add(1)
		of := outFrame{
			f: &frame{
				Type: frameColl, Seq: seq,
				Clock: clock, Bytes: sentBytes,
				Payload: send[dst],
			},
			wg:   &h.wg,
			errp: &h.writeErrs[dst],
		}
		select {
		case t.peers[dst].sendq <- of:
		case <-t.done:
			h.writeErrs[dst] = ErrAborted
			h.wg.Done()
		}
	}
	return h, nil
}

// Wait blocks for one frame from every peer (enforcing the handle's
// sequence number), then for this rank's own writes to flush — so that
// once the final collective of a world has been waited, a graceful Close
// cannot strand bytes a peer is still expecting.
func (h *tcpPending) Wait() ([][]byte, float64, float64, error) {
	t := h.t
	maxClock, maxBytes := h.clock, h.bytes
	var collErr error
	for src := 0; src < t.size; src++ {
		if src == t.rank {
			continue
		}
		f, err := t.recvColl(src, h.seq)
		if err != nil {
			collErr = err
			break
		}
		h.recv[src] = f.Payload
		if f.Clock > maxClock {
			maxClock = f.Clock
		}
		if f.Bytes > maxBytes {
			maxBytes = f.Bytes
		}
	}
	if collErr == nil {
		h.wg.Wait()
		for _, err := range h.writeErrs {
			if err != nil {
				collErr = fmt.Errorf("spmd: collective send failed: %w", err)
				break
			}
		}
		if collErr == nil {
			return h.recv, maxClock, maxBytes, nil
		}
	}
	// Failure path. Classify before tearing down (Abort sets the flag we
	// map to ErrAborted), then abort the world so the writer goroutines
	// fail any still-queued frames before we return. failQueued backstops
	// the race where a post enqueued a frame just as its writeLoop drained
	// and exited — without it that frame's Done would never fire and the
	// wg.Wait below would hang instead of unwinding with ErrAborted.
	if t.isAborted() || errors.Is(collErr, ErrAborted) {
		collErr = ErrAborted
	}
	t.Abort()
	t.failQueued()
	h.wg.Wait()
	return nil, 0, 0, collErr
}

// failQueued drains every peer's send queue, failing the queued frames.
// Only the rank's own goroutine posts frames, and it is the caller here,
// so no new frame can appear behind the sweep; anything a writeLoop still
// holds mid-write fails through the closed connection instead.
func (t *tcpTransport) failQueued() {
	for r, p := range t.peers {
		if r == t.rank || p == nil {
			continue
		}
		for {
			select {
			case of := <-p.sendq:
				*of.errp = ErrAborted
				of.wg.Done()
				continue
			default:
			}
			break
		}
	}
}

// exchange is the shared engine of every blocking collective: one posted
// exchange waited immediately.
func (t *tcpTransport) exchange(send [][]byte, clock, sentBytes float64) ([][]byte, float64, float64, error) {
	h, err := t.IAlltoallv(send, clock, sentBytes)
	if err != nil {
		return nil, 0, 0, err
	}
	return h.Wait()
}

func (t *tcpTransport) Rank() int    { return t.rank }
func (t *tcpTransport) Size() int    { return t.size }
func (t *tcpTransport) Shared() bool { return false }

// RecycleRecvBuf returns a received frame payload to the pool once the
// typed layer has copied its contents out (recvBufRecycler).
func (t *tcpTransport) RecycleRecvBuf(b []byte) { putFrameBuf(b) }

func (t *tcpTransport) Alltoallv(send [][]byte, clock, sentBytes float64) ([][]byte, float64, float64, error) {
	return t.exchange(send, clock, sentBytes)
}

func (t *tcpTransport) Allgather(blob []byte, clock float64) ([][]byte, float64, error) {
	send := make([][]byte, t.size)
	for i := range send {
		send[i] = blob
	}
	recv, maxClock, _, err := t.exchange(send, clock, 0)
	if err != nil {
		return nil, 0, err
	}
	return recv, maxClock, nil
}

func (t *tcpTransport) Barrier(clock float64) (float64, error) {
	_, maxClock, _, err := t.exchange(make([][]byte, t.size), clock, 0)
	return maxClock, err
}

func (t *tcpTransport) isAborted() bool {
	t.amu.Lock()
	defer t.amu.Unlock()
	return t.aborted
}

// Abort poisons the world: peers are notified best-effort with an abort
// frame, then every connection is torn down. Ranks blocked in collectives
// (local or remote) unwind with ErrAborted.
func (t *tcpTransport) Abort() {
	t.amu.Lock()
	t.aborted = true
	t.amu.Unlock()
	t.shutdown.Do(func() {
		abort := &frame{Type: frameAbort}
		for r, p := range t.peers {
			if r == t.rank || p == nil {
				continue
			}
			p.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
			p.write(abort) // best-effort; the close below is the backstop
		}
		t.teardown()
	})
}

// Close releases the transport. It is the graceful shutdown — by BSP
// discipline all ranks have completed the same collectives, so closing
// cannot strand a peer mid-exchange.
func (t *tcpTransport) Close() error {
	t.shutdown.Do(t.teardown)
	return nil
}

func (t *tcpTransport) teardown() {
	close(t.done)
	for r, p := range t.peers {
		if r == t.rank || p == nil {
			continue
		}
		p.conn.Close()
	}
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeGob(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
