package spmd

import "sync"

// The in-process transport: ranks are goroutines in one address space,
// collectives move data through a shared exchange matrix guarded by the
// reusable cyclic barrier in barrier.go. Payloads are delivered zero-copy
// (receivers alias the sender's memory), exactly as the runtime behaved
// before the Transport split.
//
// Non-blocking exchanges bypass the barrier entirely: each posted
// collective gets its own sequence-numbered slot (the per-rank counters
// agree because SPMD ranks issue collectives in program order), so a rank
// can post round r+1 while peers are still posting round r. A slot is
// reclaimed once every rank has read its row.

// memSlot is one outstanding non-blocking exchange: per-rank staged rows
// plus the posting clocks/byte counts.
type memSlot struct {
	rows   [][][]byte // rows[src][dst]
	clocks []float64
	bytes  []float64
	posted int
	taken  int
}

// memWorld is the state shared by all ranks of one in-process world.
type memWorld struct {
	size  int
	cells [][]any // cells[src][dst]: staged payloads
	vals  []any   // per-rank slots for gathers
	bar   *barrier

	amu      sync.Mutex
	acond    *sync.Cond
	slots    map[uint64]*memSlot // outstanding async exchanges by sequence
	aaborted bool
}

func newMemWorld(p int) *memWorld {
	w := &memWorld{
		size:  p,
		cells: make([][]any, p),
		vals:  make([]any, p),
		bar:   newBarrier(p),
		slots: make(map[uint64]*memSlot),
	}
	w.acond = sync.NewCond(&w.amu)
	for i := range w.cells {
		w.cells[i] = make([]any, p)
	}
	return w
}

// slot returns (creating if needed) the async slot for sequence seq.
// Callers hold amu.
func (w *memWorld) slot(seq uint64) *memSlot {
	sl, ok := w.slots[seq]
	if !ok {
		sl = &memSlot{
			rows:   make([][][]byte, w.size),
			clocks: make([]float64, w.size),
			bytes:  make([]float64, w.size),
		}
		w.slots[seq] = sl
	}
	return sl
}

// rank returns rank r's Transport handle on the world.
func (w *memWorld) rank(r int) Transport { return &memRank{w: w, rank: r} }

// memRank is one rank's handle; it is confined to that rank's goroutine.
type memRank struct {
	w    *memWorld
	rank int
	aseq uint64 // next async collective sequence (consistent by SPMD order)
}

func (m *memRank) Rank() int    { return m.rank }
func (m *memRank) Size() int    { return m.w.size }
func (m *memRank) Shared() bool { return true }
func (m *memRank) Close() error { return nil }

func (m *memRank) Abort() {
	m.w.bar.abort()
	m.w.amu.Lock()
	m.w.aaborted = true
	m.w.acond.Broadcast()
	m.w.amu.Unlock()
}

// memPending is one rank's handle on an outstanding async exchange.
type memPending struct {
	m   *memRank
	seq uint64
}

func (m *memRank) IAlltoallv(send [][]byte, clock, sentBytes float64) (PendingExchange, error) {
	w := m.w
	w.amu.Lock()
	if w.aaborted {
		w.amu.Unlock()
		return nil, ErrAborted
	}
	sl := w.slot(m.aseq)
	sl.rows[m.rank] = send
	sl.clocks[m.rank] = clock
	sl.bytes[m.rank] = sentBytes
	sl.posted++
	if sl.posted == w.size {
		w.acond.Broadcast()
	}
	w.amu.Unlock()
	h := &memPending{m: m, seq: m.aseq}
	m.aseq++
	return h, nil
}

func (p *memPending) Wait() ([][]byte, float64, float64, error) {
	w := p.m.w
	w.amu.Lock()
	defer w.amu.Unlock()
	sl := w.slots[p.seq]
	for sl.posted < w.size && !w.aaborted {
		w.acond.Wait()
	}
	if w.aaborted {
		return nil, 0, 0, ErrAborted
	}
	recv := make([][]byte, w.size)
	tmax, bmax := sl.clocks[0], sl.bytes[0]
	for src := 0; src < w.size; src++ {
		recv[src] = sl.rows[src][p.m.rank]
		if sl.clocks[src] > tmax {
			tmax = sl.clocks[src]
		}
		if sl.bytes[src] > bmax {
			bmax = sl.bytes[src]
		}
	}
	sl.taken++
	if sl.taken == w.size {
		delete(w.slots, p.seq)
	}
	return recv, tmax, bmax, nil
}

func (m *memRank) Alltoallv(send [][]byte, clock, sentBytes float64) ([][]byte, float64, float64, error) {
	w := m.w
	for dst := 0; dst < w.size; dst++ {
		w.cells[m.rank][dst] = send[dst]
	}
	tmax, bmax, ok := w.bar.await(clock, sentBytes)
	if !ok {
		return nil, 0, 0, ErrAborted
	}
	recv := make([][]byte, w.size)
	for src := 0; src < w.size; src++ {
		if v := w.cells[src][m.rank]; v != nil {
			recv[src] = v.([]byte)
		}
	}
	// Second phase: no rank may overwrite its cells (next collective)
	// until every rank has read this one's.
	if _, _, ok := w.bar.await(tmax, 0); !ok {
		return nil, 0, 0, ErrAborted
	}
	return recv, tmax, bmax, nil
}

func (m *memRank) AllgatherAny(v any, clock float64) ([]any, float64, error) {
	w := m.w
	w.vals[m.rank] = v
	tmax, _, ok := w.bar.await(clock, 0)
	if !ok {
		return nil, 0, ErrAborted
	}
	out := make([]any, w.size)
	copy(out, w.vals)
	if _, _, ok := w.bar.await(tmax, 0); !ok {
		return nil, 0, ErrAborted
	}
	return out, tmax, nil
}

func (m *memRank) Allgather(blob []byte, clock float64) ([][]byte, float64, error) {
	vals, tmax, err := m.AllgatherAny(blob, clock)
	if err != nil {
		return nil, 0, err
	}
	out := make([][]byte, len(vals))
	for i, v := range vals {
		if v != nil {
			out[i] = v.([]byte)
		}
	}
	return out, tmax, nil
}

func (m *memRank) Barrier(clock float64) (float64, error) {
	tmax, _, ok := m.w.bar.await(clock, 0)
	if !ok {
		return 0, ErrAborted
	}
	return tmax, nil
}
