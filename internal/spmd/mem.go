package spmd

// The in-process transport: ranks are goroutines in one address space,
// collectives move data through a shared exchange matrix guarded by the
// reusable cyclic barrier in barrier.go. Payloads are delivered zero-copy
// (receivers alias the sender's memory), exactly as the runtime behaved
// before the Transport split.

// memWorld is the state shared by all ranks of one in-process world.
type memWorld struct {
	size  int
	cells [][]any // cells[src][dst]: staged payloads
	vals  []any   // per-rank slots for gathers
	bar   *barrier
}

func newMemWorld(p int) *memWorld {
	w := &memWorld{
		size:  p,
		cells: make([][]any, p),
		vals:  make([]any, p),
		bar:   newBarrier(p),
	}
	for i := range w.cells {
		w.cells[i] = make([]any, p)
	}
	return w
}

// rank returns rank r's Transport handle on the world.
func (w *memWorld) rank(r int) Transport { return &memRank{w: w, rank: r} }

// memRank is one rank's handle; it is confined to that rank's goroutine.
type memRank struct {
	w    *memWorld
	rank int
}

func (m *memRank) Rank() int    { return m.rank }
func (m *memRank) Size() int    { return m.w.size }
func (m *memRank) Shared() bool { return true }
func (m *memRank) Abort()       { m.w.bar.abort() }
func (m *memRank) Close() error { return nil }

func (m *memRank) Alltoallv(send [][]byte, clock, sentBytes float64) ([][]byte, float64, float64, error) {
	w := m.w
	for dst := 0; dst < w.size; dst++ {
		w.cells[m.rank][dst] = send[dst]
	}
	tmax, bmax, ok := w.bar.await(clock, sentBytes)
	if !ok {
		return nil, 0, 0, ErrAborted
	}
	recv := make([][]byte, w.size)
	for src := 0; src < w.size; src++ {
		if v := w.cells[src][m.rank]; v != nil {
			recv[src] = v.([]byte)
		}
	}
	// Second phase: no rank may overwrite its cells (next collective)
	// until every rank has read this one's.
	if _, _, ok := w.bar.await(tmax, 0); !ok {
		return nil, 0, 0, ErrAborted
	}
	return recv, tmax, bmax, nil
}

func (m *memRank) AllgatherAny(v any, clock float64) ([]any, float64, error) {
	w := m.w
	w.vals[m.rank] = v
	tmax, _, ok := w.bar.await(clock, 0)
	if !ok {
		return nil, 0, ErrAborted
	}
	out := make([]any, w.size)
	copy(out, w.vals)
	if _, _, ok := w.bar.await(tmax, 0); !ok {
		return nil, 0, ErrAborted
	}
	return out, tmax, nil
}

func (m *memRank) Allgather(blob []byte, clock float64) ([][]byte, float64, error) {
	vals, tmax, err := m.AllgatherAny(blob, clock)
	if err != nil {
		return nil, 0, err
	}
	out := make([][]byte, len(vals))
	for i, v := range vals {
		if v != nil {
			out[i] = v.([]byte)
		}
	}
	return out, tmax, nil
}

func (m *memRank) Barrier(clock float64) (float64, error) {
	tmax, _, ok := m.w.bar.await(clock, 0)
	if !ok {
		return 0, ErrAborted
	}
	return tmax, nil
}
