package spmd

// Transport is the byte-level communication substrate one rank uses to
// participate in an SPMD world. The typed collectives in this package
// (Alltoallv, Allgather, reductions, ...) are built on top of it, so the
// same pipeline code runs over any backend:
//
//   - the in-process transport (goroutine ranks over a shared exchange
//     matrix; the default, created by Run/RunWithModel), and
//   - the TCP transport (one OS process per rank, length-prefixed frames
//     over per-peer persistent connections; created by Connect from a
//     Bootstrap describing the world, see bootstrap.go).
//
// Every collective doubles as the BSP synchronization point, so alongside
// the payload each method carries this rank's virtual clock and returns the
// maximum clock across the world (plus, for Alltoallv, the busiest
// sender's byte count — the quantity the communication model prices).
//
// Collective calls must be issued in the same order by every rank; a
// Transport may detect divergence (the TCP backend does, via sequence
// numbers) but is not required to.
type Transport interface {
	// Rank returns this rank's index in [0, Size).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int

	// Alltoallv delivers send[dst] to rank dst; recv[src] is the buffer
	// rank src addressed to this rank (nil for empty contributions).
	// clock and sentBytes are this rank's BSP contributions; maxClock and
	// maxBytes are their maxima over all ranks.
	Alltoallv(send [][]byte, clock, sentBytes float64) (recv [][]byte, maxClock, maxBytes float64, err error)

	// IAlltoallv posts the same irregular all-to-all without blocking and
	// returns a completion handle. The posting rank's clock contribution is
	// its clock at post time, so the returned maxClock is the exchange's
	// BSP start time regardless of how much local work ran before Wait.
	//
	// Ordering contract (the typed layer in async.go enforces it): every
	// rank posts collectives in the same order, outstanding handles are
	// waited in posting order, and no other collective is issued while a
	// handle is pending except posting further exchanges. On shared
	// transports the send buffers are handed off at post time and must not
	// be mutated afterwards.
	IAlltoallv(send [][]byte, clock, sentBytes float64) (PendingExchange, error)

	// Allgather distributes blob to every rank, returning all ranks'
	// blobs in rank order along with the clock maximum.
	Allgather(blob []byte, clock float64) (blobs [][]byte, maxClock float64, err error)

	// Barrier synchronizes all ranks and returns the clock maximum.
	Barrier(clock float64) (maxClock float64, err error)

	// Abort poisons the world: ranks blocked in (or later entering) a
	// collective fail with ErrAborted instead of deadlocking. Safe to
	// call concurrently with collectives and more than once.
	Abort()

	// Close releases the transport's resources. On a distributed backend
	// it is the graceful shutdown (all ranks have finished the same
	// collective sequence); it does not abort peers.
	Close() error

	// Shared reports whether buffers returned by collectives alias the
	// sender's memory (true for the in-process backend). When false the
	// buffers crossed an address-space boundary and the typed layer must
	// treat element types containing pointers as unserializable.
	Shared() bool
}

// PendingExchange is a transport-level handle on one posted non-blocking
// all-to-all. Wait blocks until every rank has posted the matching
// collective and all payloads are available, returning exactly what the
// blocking Alltoallv would have: the received buffers plus the world maxima
// of the posting clocks and sent-byte counts. Wait must be called exactly
// once.
type PendingExchange interface {
	Wait() (recv [][]byte, maxClock, maxBytes float64, err error)
}

// anyGatherer is an optional fast path for transports whose ranks share an
// address space: values are exchanged as interface values with no
// serialization at all, preserving the zero-cost semantics the in-process
// runtime always had. Serializing transports simply don't implement it and
// the typed layer falls back to gob over Allgather.
type anyGatherer interface {
	AllgatherAny(v any, clock float64) (vals []any, maxClock float64, err error)
}
