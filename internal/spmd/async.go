package spmd

// Non-blocking collectives: the MPI_Ialltoallv analogue that lets a rank
// post round r+1's exchange and keep computing on round r while the
// payloads move. This is the mechanism behind the pipeline's
// exchange/compute overlap (the paper's Figs. 9-10 show exchange as the
// scaling limiter precisely because the bulk-synchronous rounds pay
// pack → exchange → process as a sum).
//
// Clock semantics at Wait: the exchange is modeled as starting at the
// maximum posting clock across ranks (BSP — data cannot move before the
// last rank contributes) and completing one modeled exchange cost later.
// The waiting rank's clock advances to max(its own clock, that completion
// time), so an overlapped round costs max(local, exchange) rather than
// local + exchange; the hidden portion is accounted in Stats.OverlapVirtual.
//
// Ordering contract: handles must be waited in posting order, and no
// blocking collective may run while any handle is pending (enforced —
// violations panic). Posting further exchanges while handles are pending
// is allowed; that is the point.

import (
	"fmt"
	"time"
)

// asyncCommModel is the optional CommModel extension pricing the CPU-side
// cost of posting a non-blocking exchange (machine.Model implements it).
type asyncCommModel interface {
	IPostTime() float64
}

// streamCommModel is the optional CommModel extension pricing chunk rounds
// of a streamed exchange (machine.Model implements it): successive chunks
// of one posted streamed collective reuse the descriptors and per-peer
// state the first round set up, so both the posting and the exchange cost
// per chunk are a fraction of a full collective's.
type streamCommModel interface {
	ChunkPostTime() float64
	StreamChunkTime(callIdx int64, maxChunkBytes float64) float64
}

// streamState is the shared accounting of one streamed exchange: the
// modeled completion watermark that serializes its rounds. Chunks of one
// stream travel back-to-back on each peer connection, so in modeled time
// chunk r cannot start before chunk r-1 (or the header) has fully drained
// — without this, early-posted chunks would appear to move in parallel
// and a chunked exchange would price below the monolithic one.
type streamState struct {
	completion float64
}

// Handle is the completion handle of one posted non-blocking exchange.
type Handle[T any] struct {
	c       *Comm
	pe      PendingExchange
	id      uint64
	myBytes int64
	shared  bool
	done    bool
	// Streamed-exchange state: serial is the owning stream's completion
	// watermark (nil for standalone exchanges); chunk selects the reduced
	// per-chunk pricing for data rounds (the stream's header round keeps
	// full collective pricing).
	serial *streamState
	chunk  bool
	// flow links this exchange's post and wait events across ranks in the
	// flight recorder (see Comm.postSeq); 0 when tracing is disabled.
	flow uint64
}

// IAlltoallv posts an irregular all-to-all without blocking: rank i's
// send[j] will be delivered as rank j's recv[i] when every rank has posted
// the matching exchange. The returned handle's Wait yields the received
// buffers. Element and aliasing rules match Alltoallv; additionally the
// send slices are handed off at post time and must not be mutated until
// every rank has waited the exchange.
func IAlltoallv[T any](c *Comm, send [][]T) *Handle[T] {
	return iAlltoallv(c, send, nil, false)
}

// iAlltoallv is the posting core shared by the standalone non-blocking
// exchange and the streamed rounds: serial/chunk select the streamed
// accounting described on Handle.
func iAlltoallv[T any](c *Comm, send [][]T, serial *streamState, chunk bool) *Handle[T] {
	p := c.Size()
	if len(send) != p {
		panic(fmt.Sprintf("spmd: IAlltoallv send length %d != world size %d", len(send), p))
	}
	shared := c.tr.Shared()
	if !shared && !isPOD[T]() {
		panic(fmt.Sprintf("spmd: IAlltoallv element type %T contains pointers and cannot cross an address-space boundary", *new(T)))
	}
	raw := make([][]byte, p)
	var myBytes int64
	for dst := 0; dst < p; dst++ {
		raw[dst] = castToBytes(send[dst])
		myBytes += int64(len(raw[dst]))
	}
	pe, err := c.tr.IAlltoallv(raw, c.clock, float64(myBytes))
	if err != nil {
		collectiveFailed(c, "ialltoallv post", err)
	}
	// Posting is not free: descriptor setup and buffer registration run on
	// the rank's own clock. The cost is exchange accounting (it exists
	// only because of the exchange) but is CPU-bound, so it never counts
	// as hidden. Chunk rounds of a stream pay the reduced per-chunk cost.
	var d float64
	if sm, ok := c.model.(streamCommModel); ok && chunk {
		d = sm.ChunkPostTime()
	} else if am, ok := c.model.(asyncCommModel); ok {
		d = am.IPostTime()
	}
	if d > 0 {
		c.Tick(d)
		c.stats.ExchangeVirtual += d
	}
	h := &Handle[T]{c: c, pe: pe, id: c.nextID, myBytes: myBytes, shared: shared,
		serial: serial, chunk: chunk}
	c.nextID++
	c.postSeq++
	if c.rec != nil {
		h.flow = c.postSeq
		if chunk {
			c.rec.Instant(traceChunkPost, c.clock, myBytes)
		} else {
			c.rec.Instant(tracePost, c.clock, myBytes)
		}
		c.rec.FlowOut(traceExchange, c.clock, h.flow)
	}
	inflightExchanges.Add(1)
	if len(c.pending) == 0 {
		// First in-flight exchange: compute from here on counts as
		// overlap (until attributed by a Wait).
		c.anchorWall = time.Now()
		c.anchorExchWall = c.stats.ExchangeWall
	}
	c.pending = append(c.pending, h.id)
	return h
}

// Wait blocks until the exchange completes and returns the received
// buffers (recv[src] is what rank src sent here). It folds the exchange's
// modeled cost into the BSP clock as described in the package comment and
// must be called exactly once per handle, in posting order.
func (h *Handle[T]) Wait() [][]T {
	c := h.c
	if h.done {
		panic("spmd: non-blocking exchange waited twice")
	}
	if len(c.pending) == 0 || c.pending[0] != h.id {
		panic("spmd: non-blocking exchanges must be waited in posting order")
	}
	c.pending = c.pending[1:]
	h.done = true
	if h.chunk {
		c.rec.Begin(traceChunkWait, c.clock)
	} else {
		c.rec.Begin(traceWait, c.clock)
	}

	// Compute time since the anchor (the last point already credited),
	// excluding time blocked in collectives, overlapped this exchange's
	// flight. The anchor then advances so the next Wait starts fresh.
	overlapped := time.Since(c.anchorWall) - (c.stats.ExchangeWall - c.anchorExchWall)
	if overlapped > 0 {
		c.stats.OverlapWall += overlapped
	}

	start := time.Now()
	rraw, tmax, bmax, err := h.pe.Wait()
	if err != nil {
		collectiveFailed(c, "ialltoallv wait", err)
	}
	blocked := time.Since(start)
	c.anchorWall = time.Now()
	c.anchorExchWall = c.stats.ExchangeWall + blocked

	// A stream's rounds drain one after another on each peer connection:
	// this round starts at the later of its BSP post maximum and the
	// previous round's modeled completion.
	if h.serial != nil && h.serial.completion > tmax {
		tmax = h.serial.completion
	}
	var cost float64
	if h.chunk {
		cost = c.modelStreamChunk(bmax)
	} else {
		cost = c.modelAlltoallv(bmax)
	}
	if h.serial != nil {
		h.serial.completion = tmax + cost
	}
	// The exchange occupied modeled time [tmax, tmax+cost]; whatever local
	// progress the rank made past tmax hid that much of the cost.
	hidden := c.clock - tmax
	if hidden < 0 {
		hidden = 0
	}
	if hidden > cost {
		hidden = cost
	}
	c.stats.OverlapVirtual += hidden
	if completion := tmax + cost; completion > c.clock {
		c.clock = completion
	}
	c.stats.Alltoallvs++
	c.stats.BytesSent += h.myBytes
	c.stats.ExchangeWall += blocked
	if h.chunk {
		c.rec.End(traceChunkWait, c.clock, h.myBytes)
	} else {
		c.rec.End(traceWait, c.clock, h.myBytes)
	}
	c.rec.FlowIn(traceExchange, c.clock, h.flow)
	inflightExchanges.Add(-1)
	exchangesTotal.Inc()

	recv := make([][]T, len(rraw))
	rec, _ := c.tr.(recvBufRecycler)
	for src := range rraw {
		recv[src] = castFromBytes[T](rraw[src], h.shared)
		// Copied out — recycle the pooled frame payload (own rank's
		// column aliases the posted send buffer; skip it).
		if rec != nil && !h.shared && src != c.Rank() {
			rec.RecycleRecvBuf(rraw[src])
		}
	}
	return recv
}

// PackedHandle is the completion handle of a non-blocking variable-length
// exchange: two posted exchanges (payload bytes and item lengths), waited
// in order.
type PackedHandle struct {
	data *Handle[byte]
	lens *Handle[int32]
}

// IAlltoallvPacked posts a variable-length packed exchange (the
// non-blocking AlltoallvPacked). Byte accounting covers both the payload
// and the length vectors, exactly as the blocking form.
func IAlltoallvPacked(c *Comm, send []PackedBufs) *PackedHandle {
	if len(send) != c.Size() {
		panic(fmt.Sprintf("spmd: IAlltoallvPacked send length %d != world size %d", len(send), c.Size()))
	}
	data := make([][]byte, c.Size())
	lens := make([][]int32, c.Size())
	for i := range send {
		data[i] = send[i].Data
		lens[i] = send[i].Lens
	}
	return &PackedHandle{data: IAlltoallv(c, data), lens: IAlltoallv(c, lens)}
}

// Wait blocks until both underlying exchanges complete and reassembles the
// per-source packed buffers.
func (h *PackedHandle) Wait() []PackedBufs {
	rdata := h.data.Wait()
	rlens := h.lens.Wait()
	out := make([]PackedBufs, len(rdata))
	for i := range out {
		out[i] = PackedBufs{Data: rdata[i], Lens: rlens[i]}
	}
	return out
}
