package spmd

import (
	"strconv"
	"strings"
)

// Collective commit: the epoch-agreement primitive under checkpoint
// snapshots. A snapshot is only valid when every rank durably wrote its
// segment; a rank that failed (disk full, permission, torn write) must
// veto the whole epoch, or a later restart would resume from a partial
// world. AgreeCommit is the barrier that turns P independent write
// outcomes into one world-wide decision, with every rank seeing the same
// votes (digests included) so rank 0 can record them in the manifest.

// CommitVote is one rank's contribution to an epoch commit: whether its
// local side effect (segment write) succeeded, and the digest and size of
// what it wrote, for the committing rank's manifest.
type CommitVote struct {
	OK     bool
	Err    string // non-empty only when !OK; surfaced in the agreed error
	Digest uint64
	Bytes  int64
}

// AgreeCommit gathers every rank's vote for the current epoch and returns
// all votes in rank order plus the agreed decision: commit only if every
// rank voted OK. All ranks receive identical votes and decision, so the
// commit point (rank 0 publishing the manifest) and every rank's
// success/failure path stay in lockstep — the epoch-barrier semantics the
// checkpoint subsystem's crash consistency rests on.
func AgreeCommit(c *Comm, v CommitVote) ([]CommitVote, bool) {
	votes := Allgather(c, v)
	for _, vote := range votes {
		if !vote.OK {
			return votes, false
		}
	}
	return votes, true
}

// CommitFailure renders the veto(s) of a failed epoch, one line per
// failed rank.
func CommitFailure(votes []CommitVote) string {
	var b strings.Builder
	for rank, vote := range votes {
		if vote.OK {
			continue
		}
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		b.WriteString("rank ")
		b.WriteString(strconv.Itoa(rank))
		b.WriteString(": ")
		if vote.Err == "" {
			b.WriteString("write failed")
		} else {
			b.WriteString(vote.Err)
		}
	}
	return b.String()
}
