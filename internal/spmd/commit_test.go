package spmd

import (
	"strings"
	"testing"
)

func TestAgreeCommitUnanimous(t *testing.T) {
	const p = 4
	err := Run(p, func(c *Comm) error {
		votes, ok := AgreeCommit(c, CommitVote{
			OK: true, Digest: uint64(c.Rank()) + 100, Bytes: int64(c.Rank()) * 10,
		})
		if !ok {
			t.Errorf("rank %d: unanimous commit rejected", c.Rank())
		}
		if len(votes) != p {
			t.Errorf("rank %d: %d votes, want %d", c.Rank(), len(votes), p)
		}
		for r, v := range votes {
			if v.Digest != uint64(r)+100 || v.Bytes != int64(r)*10 {
				t.Errorf("rank %d: vote[%d] = %+v", c.Rank(), r, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAgreeCommitVetoed(t *testing.T) {
	const p = 3
	err := Run(p, func(c *Comm) error {
		v := CommitVote{OK: true}
		if c.Rank() == 1 {
			v = CommitVote{OK: false, Err: "disk full"}
		}
		votes, ok := AgreeCommit(c, v)
		if ok {
			t.Errorf("rank %d: vetoed epoch committed", c.Rank())
		}
		msg := CommitFailure(votes)
		if !strings.Contains(msg, "rank 1") || !strings.Contains(msg, "disk full") {
			t.Errorf("rank %d: failure message %q", c.Rank(), msg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommitFailureDefaultMessage(t *testing.T) {
	msg := CommitFailure([]CommitVote{{OK: true}, {OK: false}})
	if !strings.Contains(msg, "rank 1: write failed") {
		t.Errorf("got %q", msg)
	}
}
