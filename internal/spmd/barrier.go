package spmd

import (
	"math"
	"sync"
)

// barrier is a reusable cyclic barrier that additionally computes the
// maxima of two float64 contributions per phase (used for virtual-clock
// synchronization and busiest-sender byte counts) and supports poisoning:
// abort wakes all waiters, which then report ok=false so callers can
// unwind every rank instead of deadlocking.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	phase   uint64
	maxA    float64
	maxB    float64
	pubA    float64
	pubB    float64
	aborted bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n, maxA: math.Inf(-1), maxB: math.Inf(-1)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n ranks arrive, contributing (a, b) to the
// phase-wide maxima, and returns those maxima. ok is false if the world
// was poisoned.
func (b *barrier) await(a, bv float64) (maxA, maxB float64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return 0, 0, false
	}
	if a > b.maxA {
		b.maxA = a
	}
	if bv > b.maxB {
		b.maxB = bv
	}
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.pubA, b.pubB = b.maxA, b.maxB
		b.maxA, b.maxB = math.Inf(-1), math.Inf(-1)
		b.phase++
		b.cond.Broadcast()
		return b.pubA, b.pubB, true
	}
	for phase == b.phase && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		return 0, 0, false
	}
	return b.pubA, b.pubB, true
}

// abort poisons the barrier, releasing current and future waiters.
func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
