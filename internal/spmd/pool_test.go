package spmd

import (
	"bytes"
	"testing"
	"unsafe"
)

// TestFrameBufPool exercises the pool's reuse contract: a returned
// buffer with sufficient capacity is handed back, undersized and
// oversized buffers are not.
func TestFrameBufPool(t *testing.T) {
	// Drain whatever other tests left behind so identity checks below
	// see only what this test puts.
	for framePool.Get() != nil {
	}

	// The race detector makes sync.Pool drop Puts at random, so reuse
	// is asserted over several attempts rather than a single round trip.
	reused := false
	for i := 0; i < 100 && !reused; i++ {
		b := make([]byte, 256)
		putFrameBuf(b)
		got := getFrameBuf(128)
		if len(got) != 128 {
			t.Fatalf("getFrameBuf(128) returned len %d", len(got))
		}
		reused = &got[0] == &b[0]
	}
	if !reused {
		t.Errorf("pooled buffer was never reused for a smaller request")
	}

	// An undersized pooled buffer is dropped, not returned short.
	putFrameBuf(make([]byte, 16))
	got := getFrameBuf(64)
	if len(got) != 64 {
		t.Fatalf("getFrameBuf(64) returned len %d", len(got))
	}

	// Oversized buffers never enter the pool.
	huge := make([]byte, maxPooledBuf+1)
	putFrameBuf(huge)
	if v, _ := framePool.Get().(*[]byte); v != nil && cap(*v) > maxPooledBuf {
		t.Errorf("oversized buffer (cap %d) retained by the pool", cap(*v))
	}

	// Nil and empty are dropped silently.
	putFrameBuf(nil)
	putFrameBuf(make([]byte, 0))
}

// TestReadFramePooled round-trips frames through the pooled read path
// and confirms a recycled payload buffer is reused for the next frame.
func TestReadFramePooled(t *testing.T) {
	for framePool.Get() != nil {
	}

	payload := []byte("query batch bytes")
	const rounds = 100
	var wire bytes.Buffer
	for i := 0; i < rounds; i++ {
		f := frame{Type: frameColl, Seq: uint64(i), Clock: 1.5, Bytes: 17, Payload: payload}
		if err := writeFrame(&wire, &f); err != nil {
			t.Fatal(err)
		}
	}

	// Reuse is probabilistic under the race detector (sync.Pool drops
	// Puts at random there); over many recycled reads at least one must
	// come back from the pool.
	reused := false
	var prev *byte
	for i := 0; i < rounds; i++ {
		f, err := readFramePooled(&wire)
		if err != nil {
			t.Fatal(err)
		}
		if f.Seq != uint64(i) || !bytes.Equal(f.Payload, payload) {
			t.Fatalf("frame %d decoded as seq %d payload %q", i, f.Seq, f.Payload)
		}
		if p := unsafe.SliceData(f.Payload); p == prev {
			reused = true
		} else {
			prev = p
		}
		putFrameBuf(f.Payload)
	}
	if !reused {
		t.Errorf("no recycled payload buffer was ever reused by a pooled read")
	}
}
