package spmd

import (
	"bytes"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"
)

// World formation is split from byte transport (in the spirit of go-p2p's
// separation of addressing from swarms): a Bootstrap answers "who am I,
// how big is the world, and where is the rendezvous", and Connect turns
// that answer into a live Transport. Three bootstraps cover the launch
// modes:
//
//   - ForkBootstrap: single-host worlds. The calling process becomes rank
//     0, binds a loopback rendezvous, and forks Size-1 copies of its own
//     binary; children pick up their coordinates from DIBELLA_* env vars
//     (JoinBootstrapFromEnv), not from CLI flags.
//   - HostListBootstrap / HostJoinBootstrap (hostlist.go): multi-host
//     worlds. The launcher assigns contiguous rank ranges per host and
//     serves a join protocol; agents on other machines enter with
//     HostJoinBootstrap (the `dibella -join` mode) and fork their local
//     share of ranks.
//   - JoinBootstrap: one explicitly-placed rank. Schedulers (SLURM array
//     jobs, k8s indexed jobs, ...) that already know every process's rank
//     export the DIBELLA_* env contract themselves.

// World is a Bootstrap's answer: one process's coordinates in a formed
// (or forming) world, ready to hand to the TCP transport.
type World struct {
	Rank int // this process's rank, in [0, Size)
	Size int // world size P

	// Rendezvous is rank 0's listen address. Empty only on rank 0 when
	// Listener is set.
	Rendezvous string

	// Listener is the pre-bound rendezvous socket (rank 0 launchers bind
	// before forking so children cannot beat them to the accept loop).
	Listener net.Listener

	// ListenAddr is where ranks > 0 bind their mesh listener (default
	// "127.0.0.1:0"; multi-host worlds use ":0" and advertise the
	// interface facing the rendezvous).
	ListenAddr string

	// FormTimeout bounds world formation (default 30s).
	FormTimeout time.Duration
}

// Bootstrap forms one process's view of an SPMD world. Form may spawn
// helper processes (workers, join agents); Finish reaps them after the
// run, folding their exit status into the run's error. Finish must be
// called exactly once, after the transport obtained from Connect is done
// (or after Connect fails).
type Bootstrap interface {
	Form() (World, error)
	Finish(runErr error) error
}

// Connect forms this process's world coordinates via the bootstrap and
// dials the TCP transport for them. On failure the world's pre-bound
// rendezvous listener (if any) is closed, so aborted launches do not leak
// sockets; the caller still owes the bootstrap a Finish.
func Connect(b Bootstrap) (Transport, error) {
	w, err := b.Form()
	if err != nil {
		return nil, err
	}
	tr, err := dialTCP(tcpConfig{
		Rank:       w.Rank,
		Size:       w.Size,
		Rendezvous: w.Rendezvous,
		Listener:   w.Listener,
		ListenAddr: w.ListenAddr,
		Timeout:    w.FormTimeout,
	})
	if err != nil {
		if w.Listener != nil {
			w.Listener.Close()
		}
		return nil, err
	}
	return tr, nil
}

// The DIBELLA_* env contract: how a parent (launcher, join agent, or a
// scheduler's job script) places one worker process in a world. Consumed
// by JoinBootstrapFromEnv.
const (
	// EnvRank is this worker's rank (required; presence selects worker mode).
	EnvRank = "DIBELLA_RANK"
	// EnvWorldSize is the world size P (required with EnvRank).
	EnvWorldSize = "DIBELLA_WORLD_SIZE"
	// EnvRendezvous is rank 0's rendezvous address (required with EnvRank).
	EnvRendezvous = "DIBELLA_RENDEZVOUS"
	// EnvListenAddr optionally overrides the mesh listener bind address
	// (default "127.0.0.1:0"; multi-host launchers set ":0").
	EnvListenAddr = "DIBELLA_LISTEN_ADDR"
	// EnvFormTimeout optionally bounds world formation (Go duration).
	EnvFormTimeout = "DIBELLA_FORM_TIMEOUT"
	// EnvJoin carries a host-list launcher's join address to the simulated
	// local agents it spawns (the fork-level twin of the -join flag).
	EnvJoin = "DIBELLA_JOIN"
	// EnvHostIndex tells a spawned join agent which host-list entry it
	// stands in for, so rank-range assignment is deterministic.
	EnvHostIndex = "DIBELLA_HOST_INDEX"
	// EnvConfig carries the launcher's opaque application-config blob
	// (base64) to env-contract workers whose command line does not repeat
	// the launcher's flags — the forked ranks of a `dibella -join` agent.
	EnvConfig = "DIBELLA_CONFIG"
)

// ConfigFromEnv decodes the EnvConfig blob, if one was provided by the
// forking parent. ok is false when the variable is unset.
func ConfigFromEnv() (blob []byte, ok bool, err error) {
	s, ok := os.LookupEnv(EnvConfig)
	if !ok {
		return nil, false, nil
	}
	blob, err = base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, true, fmt.Errorf("spmd: %s: %v", EnvConfig, err)
	}
	return blob, true, nil
}

// JoinBootstrap places one explicitly-coordinated rank: everything is
// already known, Form just validates and passes it through. It is the
// scheduler-integration entry point (SLURM et al. export the placement)
// and the worker-side half of ForkBootstrap.
type JoinBootstrap struct {
	Rank       int
	Size       int
	Rendezvous string
	Listener   net.Listener // optional pre-bound rendezvous (rank 0 only)
	ListenAddr string
	Timeout    time.Duration
}

// Form validates the explicit coordinates.
func (b *JoinBootstrap) Form() (World, error) {
	if b.Size <= 0 {
		return World{}, fmt.Errorf("spmd: world size %d must be positive", b.Size)
	}
	if b.Rank < 0 || b.Rank >= b.Size {
		return World{}, fmt.Errorf("spmd: rank %d out of range [0,%d)", b.Rank, b.Size)
	}
	if b.Rendezvous == "" && !(b.Rank == 0 && b.Listener != nil) {
		return World{}, errors.New("spmd: JoinBootstrap needs a rendezvous address")
	}
	return World{
		Rank: b.Rank, Size: b.Size,
		Rendezvous: b.Rendezvous, Listener: b.Listener,
		ListenAddr: b.ListenAddr, FormTimeout: b.Timeout,
	}, nil
}

// Finish is a no-op: a joined rank spawned nothing.
func (b *JoinBootstrap) Finish(runErr error) error { return runErr }

// JoinBootstrapFromEnv builds a JoinBootstrap from the DIBELLA_* env
// contract. ok is false when EnvRank is unset (this process was not
// launched as a worker); a set-but-malformed contract is an error.
func JoinBootstrapFromEnv() (b *JoinBootstrap, ok bool, err error) {
	rankStr, ok := os.LookupEnv(EnvRank)
	if !ok {
		return nil, false, nil
	}
	rank, err := strconv.Atoi(rankStr)
	if err != nil {
		return nil, true, fmt.Errorf("spmd: %s=%q: %v", EnvRank, rankStr, err)
	}
	sizeStr := os.Getenv(EnvWorldSize)
	size, err := strconv.Atoi(sizeStr)
	if err != nil {
		return nil, true, fmt.Errorf("spmd: %s=%q: %v", EnvWorldSize, sizeStr, err)
	}
	b = &JoinBootstrap{
		Rank:       rank,
		Size:       size,
		Rendezvous: os.Getenv(EnvRendezvous),
		ListenAddr: os.Getenv(EnvListenAddr),
	}
	if b.Rendezvous == "" {
		return nil, true, fmt.Errorf("spmd: %s is set but %s is empty", EnvRank, EnvRendezvous)
	}
	if s := os.Getenv(EnvFormTimeout); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			return nil, true, fmt.Errorf("spmd: %s=%q: %v", EnvFormTimeout, s, err)
		}
		b.Timeout = d
	}
	return b, true, nil
}

// ForkBootstrap forms a single-host world by forking Size-1 copies of the
// current binary (same arguments) as worker processes. Workers inherit
// their coordinates through the DIBELLA_* env contract — no internal CLI
// flags leak into their command lines — and their stderr/stdout are
// prefixed with "[rank N] " so interleaved logs stay attributable.
type ForkBootstrap struct {
	Size int

	// Timeout bounds world formation (default 30s), propagated to the
	// workers via EnvFormTimeout.
	Timeout time.Duration

	// Output receives the workers' prefixed stderr+stdout and the
	// launcher's own progress line (default os.Stderr).
	Output io.Writer

	workers []worker
}

// Form binds the loopback rendezvous, forks the workers, and returns rank
// 0's coordinates. On failure every already-started worker is killed and
// reaped and the listener is closed.
func (b *ForkBootstrap) Form() (World, error) {
	if b.Size <= 0 {
		return World{}, fmt.Errorf("spmd: world size %d must be positive", b.Size)
	}
	out := b.Output
	if out == nil {
		out = os.Stderr
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return World{}, fmt.Errorf("spmd: binding rendezvous port: %w", err)
	}
	addr := ln.Addr().String()
	fmt.Fprintf(out, "tcp transport: launching %d worker processes (rendezvous %s)\n", b.Size-1, addr)
	workers, err := forkRankWorkers(1, b.Size, b.Size, addr, "", b.Timeout, out, nil)
	if err != nil {
		ln.Close()
		return World{}, err
	}
	b.workers = workers
	return World{Rank: 0, Size: b.Size, Rendezvous: addr, Listener: ln, FormTimeout: b.Timeout}, nil
}

// Finish waits for every forked worker and merges exit failures into
// runErr. When a worker fails, rank 0 typically unwinds first with the
// generic ErrAborted; the worker's own exit error is preferred so the
// originating failure is what surfaces.
func (b *ForkBootstrap) Finish(runErr error) error {
	return waitWorkers(b.workers, runErr)
}

// worker is one forked helper process.
type worker struct {
	cmd   *exec.Cmd
	pw    *prefixWriter
	label string
}

// workerEnv builds the child environment for one env-contract worker:
// the parent's environment scrubbed of DIBELLA_* (a join agent's own
// coordinates must not leak into its children) plus the child's own.
func workerEnv(rank, size int, rendezvous, listenAddr string, timeout time.Duration,
	configBlob []byte) []string {

	env := scrubEnv(os.Environ())
	env = append(env,
		EnvRank+"="+strconv.Itoa(rank),
		EnvWorldSize+"="+strconv.Itoa(size),
		EnvRendezvous+"="+rendezvous,
	)
	if listenAddr != "" {
		env = append(env, EnvListenAddr+"="+listenAddr)
	}
	if timeout > 0 {
		env = append(env, EnvFormTimeout+"="+timeout.String())
	}
	if len(configBlob) > 0 {
		env = append(env, EnvConfig+"="+base64.StdEncoding.EncodeToString(configBlob))
	}
	return env
}

// scrubEnv drops every DIBELLA_* variable from an environment.
func scrubEnv(env []string) []string {
	out := env[:0:len(env)]
	for _, kv := range env {
		if !strings.HasPrefix(kv, "DIBELLA_") {
			out = append(out, kv)
		}
	}
	return out
}

// forkRankWorkers forks ranks [start,end) of a size-rank world as
// env-contract workers of the current binary, with "[rank N] "-prefixed
// output. On a fork failure the already-started workers are reaped.
// configBlob, when non-empty, rides along in EnvConfig.
func forkRankWorkers(start, end, size int, rendezvous, listenAddr string,
	timeout time.Duration, out io.Writer, configBlob []byte) ([]worker, error) {

	var workers []worker
	for r := start; r < end; r++ {
		w, err := forkWorker(os.Args[1:], workerEnv(r, size, rendezvous, listenAddr, timeout, configBlob),
			out, fmt.Sprintf("[rank %d] ", r))
		if err != nil {
			reapWorkers(workers)
			return nil, fmt.Errorf("spmd: starting worker rank %d: %w", r, err)
		}
		w.label = fmt.Sprintf("worker rank %d", r)
		workers = append(workers, w)
	}
	return workers, nil
}

// forkWorker starts one copy of the current binary with the given args and
// environment, routing both its output streams through a line prefixer.
func forkWorker(args, env []string, out io.Writer, prefix string) (worker, error) {
	exe, err := os.Executable()
	if err != nil {
		return worker{}, err
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = env
	pw := newPrefixWriter(out, prefix)
	// Workers never own the launcher's stdout (the PAF stream); both
	// their streams are demoted to prefixed log output. exec.Cmd copies
	// through a pipe and Wait joins the copier, so no bytes are lost.
	cmd.Stdout = pw
	cmd.Stderr = pw
	if err := cmd.Start(); err != nil {
		return worker{}, err
	}
	return worker{cmd: cmd, pw: pw}, nil
}

// reapWorkers kills and waits out already-started workers after a launch
// failure so none linger.
func reapWorkers(workers []worker) {
	for _, w := range workers {
		w.cmd.Process.Kill()
		w.cmd.Wait()
		w.pw.Close()
	}
}

// waitWorkers waits for every worker, merging exit failures into runErr
// (preferring a worker's concrete failure over secondary ErrAborted noise).
func waitWorkers(workers []worker, runErr error) error {
	for _, w := range workers {
		err := w.cmd.Wait()
		w.pw.Close()
		if err != nil && (runErr == nil || errors.Is(runErr, ErrAborted)) {
			runErr = fmt.Errorf("%s: %w", w.label, err)
		}
	}
	return runErr
}

// prefixWriter prefixes every output line with a fixed tag ("[rank 3] "),
// so the merged stderr of a multi-process world stays attributable. It
// buffers partial lines across Write calls and emits only whole lines
// (plus the final fragment on Close), keeping concurrent writers from
// interleaving mid-line.
type prefixWriter struct {
	mu     sync.Mutex
	out    io.Writer
	prefix []byte
	buf    []byte // pending partial line
}

func newPrefixWriter(out io.Writer, prefix string) *prefixWriter {
	return &prefixWriter{out: out, prefix: []byte(prefix)}
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(b)
	for {
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			p.buf = append(p.buf, b...)
			return n, nil
		}
		line := make([]byte, 0, len(p.prefix)+len(p.buf)+i+1)
		line = append(line, p.prefix...)
		line = append(line, p.buf...)
		line = append(line, b[:i+1]...)
		p.buf = p.buf[:0]
		if _, err := p.out.Write(line); err != nil {
			return n - len(b) + i + 1, err
		}
		b = b[i+1:]
	}
}

// Close flushes a trailing unterminated line, if any.
func (p *prefixWriter) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.buf) == 0 {
		return nil
	}
	line := append(append(append([]byte(nil), p.prefix...), p.buf...), '\n')
	p.buf = p.buf[:0]
	_, err := p.out.Write(line)
	return err
}
