package spmd

// Streamed variable-length exchange: the chunked IAlltoallvPacked that
// lets a receiver start consuming a peer's payload before the whole
// exchange has drained. The monolithic packed exchange delivers nothing
// until every byte of every contribution has arrived — exactly the
// install-everything-then-process tail the alignment stage suffers from.
// Here each rank splits every per-destination payload into chunks of at
// most ChunkBytes and posts one non-blocking exchange per chunk round,
// keeping Depth rounds in flight; as each round completes, the items that
// became whole are handed to the caller per source, so computation on
// early arrivals overlaps the chunks still moving.
//
// Wire mechanics reuse the transports' non-blocking machinery unchanged:
// on TCP every chunk round is one sequence-numbered frame per peer through
// the existing FIFO writer goroutines (chunks of different streams and
// collectives interleave per connection but stay sequence-ordered); on the
// in-process backend every round gets its own exchange slot.
//
// Protocol: one small allreduce agrees on the global round count (every
// rank must post the same number of collectives for the sequence numbers
// to stay matched), then a header round ships the per-item length vectors
// — from which each receiver knows every source's full item structure and
// byte total before any payload arrives — and the data rounds follow.
// Chunk boundaries are byte positions, not item boundaries: an item larger
// than ChunkBytes simply spans several rounds and completes when its last
// chunk lands.

import "fmt"

const (
	// DefaultChunkBytes is the per-peer chunk payload bound when
	// StreamOpts leaves it unset.
	DefaultChunkBytes = 128 << 10
	// DefaultStreamDepth is how many chunk rounds are kept in flight when
	// StreamOpts leaves it unset.
	DefaultStreamDepth = 2
	// MaxStreamDepth bounds the in-flight chunk rounds; the TCP
	// transport's per-peer frame queues are sized so a full window plus
	// the header can never wedge the writer/reader pairs.
	MaxStreamDepth = 8
)

// StreamOpts configures one streamed exchange.
type StreamOpts struct {
	// ChunkBytes bounds the payload any rank sends any peer in one chunk
	// round (default DefaultChunkBytes). Smaller chunks deliver earlier
	// batches but pay the per-chunk overhead more often.
	ChunkBytes int
	// Depth is the number of chunk rounds kept in flight (default
	// DefaultStreamDepth, capped at MaxStreamDepth).
	Depth int
}

func (o StreamOpts) withDefaults() StreamOpts {
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = DefaultChunkBytes
	}
	if o.Depth <= 0 {
		o.Depth = DefaultStreamDepth
	}
	if o.Depth > MaxStreamDepth {
		o.Depth = MaxStreamDepth
	}
	return o
}

// StreamDelivery is one per-source batch of a streamed exchange: the items
// from rank Src that became complete when a chunk round landed. Items
// appear in packing order; First is the index of Items[0] within Src's
// overall contribution, and Final marks the batch carrying Src's last item
// (sources contributing no items produce no deliveries at all).
type StreamDelivery struct {
	Src   int
	First int
	Items [][]byte
	Final bool
}

// streamAsm reassembles one source's contribution: the payload accumulates
// into buf (preallocated to the header's byte total, so delivered item
// slices stay valid), and the cursor tracks which items are complete.
type streamAsm struct {
	lens    []int32
	buf     []byte
	total   int
	itemIdx int
	offset  int // byte offset of item itemIdx within buf
}

// take appends one received chunk and returns the items it completed.
func (a *streamAsm) take(chunk []byte) (first int, items [][]byte) {
	a.buf = append(a.buf, chunk...)
	first = a.itemIdx
	for a.itemIdx < len(a.lens) {
		n := int(a.lens[a.itemIdx])
		if a.offset+n > len(a.buf) {
			break
		}
		items = append(items, a.buf[a.offset:a.offset+n:a.offset+n])
		a.offset += n
		a.itemIdx++
	}
	return first, items
}

// IAlltoallvStreamed performs a packed irregular all-to-all delivered in
// bounded chunks: rank i's send[j] arrives at rank j as recv[i], exactly
// as AlltoallvPacked, but deliver (when non-nil) is invoked on the calling
// goroutine as items complete, before the exchange as a whole has drained.
// Computation done inside deliver runs — and is modeled — as overlapping
// the chunk rounds still in flight; Tick inside the callback advances the
// rank clock past in-flight rounds' start times just as compute between an
// IAlltoallv post and its Wait does. The fully assembled buffers are
// returned once every round has completed.
//
// All ranks must call it collectively with the same opts. Send buffers are
// handed off at the call and must not be mutated until it returns. Byte
// accounting (payload plus length vectors) matches AlltoallvPacked.
func IAlltoallvStreamed(c *Comm, send []PackedBufs, opt StreamOpts, deliver func(StreamDelivery)) []PackedBufs {
	p := c.Size()
	if len(send) != p {
		panic(fmt.Sprintf("spmd: IAlltoallvStreamed send length %d != world size %d", len(send), p))
	}
	opt = opt.withDefaults()

	// Every rank posts one collective per round, so the round count must
	// be agreed globally: the maximum chunk count over all (src, dst)
	// pairs, one small allreduce away.
	myMax := 0
	for dst := range send {
		if n := chunkCount(len(send[dst].Data), opt.ChunkBytes); n > myMax {
			myMax = n
		}
	}
	rounds := int(AllreduceI64(c, int64(myMax), OpMax))

	// Header round: the per-item length vectors travel ahead of the data,
	// with full collective pricing — it is a real exchange, the same one
	// AlltoallvPacked's length exchange pays for.
	st := &streamState{}
	lens := make([][]int32, p)
	for i := range send {
		lens[i] = send[i].Lens
	}
	headerH := iAlltoallv(c, lens, st, false)

	post := func(r int) *Handle[byte] {
		rows := make([][]byte, p)
		for dst := range send {
			rows[dst] = chunkOf(send[dst].Data, r, opt.ChunkBytes)
		}
		return iAlltoallv(c, rows, st, true)
	}
	// Open the pipeline window behind the header before waiting anything.
	pending := make([]*Handle[byte], 0, opt.Depth)
	next := 0
	for ; next < rounds && next < opt.Depth; next++ {
		pending = append(pending, post(next))
	}

	recvLens := headerH.Wait()
	asm := make([]streamAsm, p)
	for src := 0; src < p; src++ {
		total := 0
		for _, n := range recvLens[src] {
			total += int(n)
		}
		asm[src] = streamAsm{lens: recvLens[src], buf: make([]byte, 0, total), total: total}
		// Zero-length prefix items are complete before any payload moves.
		emit(deliver, src, &asm[src], nil)
	}

	for r := 0; r < rounds; r++ {
		h := pending[0]
		pending = pending[1:]
		recv := h.Wait()
		if next < rounds {
			pending = append(pending, post(next))
			next++
		}
		for src := 0; src < p; src++ {
			if len(recv[src]) == 0 {
				continue
			}
			emit(deliver, src, &asm[src], recv[src])
		}
	}

	out := make([]PackedBufs, p)
	for src := 0; src < p; src++ {
		a := &asm[src]
		if len(a.buf) != a.total || a.itemIdx != len(a.lens) {
			panic(fmt.Sprintf("spmd: streamed exchange from rank %d incomplete: %d of %d bytes, %d of %d items",
				src, len(a.buf), a.total, a.itemIdx, len(a.lens)))
		}
		out[src] = PackedBufs{Data: a.buf, Lens: a.lens}
	}
	return out
}

// emit folds one chunk into a source's assembly and hands any completed
// items to the caller.
func emit(deliver func(StreamDelivery), src int, a *streamAsm, chunk []byte) {
	first, items := a.take(chunk)
	if len(items) == 0 || deliver == nil {
		return
	}
	deliver(StreamDelivery{
		Src: src, First: first, Items: items,
		Final: a.itemIdx == len(a.lens),
	})
}

// chunkCount returns how many ChunkBytes-bounded rounds n payload bytes
// need (0 for an empty contribution).
func chunkCount(n, chunkBytes int) int {
	return (n + chunkBytes - 1) / chunkBytes
}

// chunkOf returns round r's byte range of data (nil once data is
// exhausted — the rank still posts the round with an empty contribution).
func chunkOf(data []byte, r, chunkBytes int) []byte {
	lo := r * chunkBytes
	if lo >= len(data) {
		return nil
	}
	hi := lo + chunkBytes
	if hi > len(data) {
		hi = len(data)
	}
	return data[lo:hi:hi]
}
