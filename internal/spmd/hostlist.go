package spmd

import (
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"
)

// The host-list launch protocol: a world spanning machines, formed from a
// `-hosts h1,h2:4,...` list (or hostfile). The launcher runs on the first
// host, becomes rank 0, and assigns each host a contiguous rank range. It
// binds two public listeners: the rendezvous (the TCP transport's usual
// world-formation port) and a join port. An agent started on another host
// with `dibella -join <join-addr>` (HostJoinBootstrap) asks the join port
// for its assignment, receives its rank range plus the rendezvous port,
// and forks its local share of ranks — which then enter world formation
// exactly like single-host workers. Hosts that resolve to loopback are
// "simulated": the launcher forks their join agents itself, so a
// multi-host launch can be rehearsed end-to-end on one machine.

// HostSpec is one host-list entry: a host and the number of ranks it
// contributes.
type HostSpec struct {
	Host  string
	Ranks int // 0 after parsing = share the unallocated ranks evenly
}

// ParseHostList parses a comma-separated "host[:ranks]" list. Entries
// without an explicit count get Ranks 0; AssignHostRanks fills them.
func ParseHostList(spec string) ([]HostSpec, error) {
	var hosts []HostSpec
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		h := HostSpec{Host: entry}
		if i := strings.LastIndexByte(entry, ':'); i >= 0 {
			n, err := strconv.Atoi(entry[i+1:])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("spmd: host entry %q: rank count after ':' must be a positive integer", entry)
			}
			h = HostSpec{Host: entry[:i], Ranks: n}
		}
		if h.Host == "" {
			return nil, fmt.Errorf("spmd: host entry %q has an empty host", entry)
		}
		hosts = append(hosts, h)
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("spmd: empty host list")
	}
	return hosts, nil
}

// ParseHostFile parses a hostfile: one "host[:ranks]" per line, blank
// lines and '#' comments ignored.
func ParseHostFile(path string) ([]HostSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			entries = append(entries, line)
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("spmd: hostfile %s lists no hosts", path)
	}
	return ParseHostList(strings.Join(entries, ","))
}

// AssignHostRanks distributes total ranks over the host list: entries with
// explicit counts keep them, the rest split the remainder as evenly as
// possible (earlier hosts take the extra rank). Every host must end up
// with at least one rank and the counts must sum to total.
func AssignHostRanks(hosts []HostSpec, total int) ([]HostSpec, error) {
	if total <= 0 {
		return nil, fmt.Errorf("spmd: world size %d must be positive", total)
	}
	out := append([]HostSpec(nil), hosts...)
	explicit, open := 0, 0
	for _, h := range out {
		if h.Ranks > 0 {
			explicit += h.Ranks
		} else {
			open++
		}
	}
	if open == 0 {
		if explicit != total {
			return nil, fmt.Errorf("spmd: host list provides %d ranks, world size is %d", explicit, total)
		}
		return out, nil
	}
	rem := total - explicit
	if rem < open {
		return nil, fmt.Errorf("spmd: %d ranks left for %d hosts without explicit counts (world size %d)", rem, open, total)
	}
	base, extra := rem/open, rem%open
	for i := range out {
		if out[i].Ranks == 0 {
			out[i].Ranks = base
			if extra > 0 {
				out[i].Ranks++
				extra--
			}
		}
	}
	return out, nil
}

// hostRanges returns each host's contiguous [start,end) rank range and the
// world size.
func hostRanges(hosts []HostSpec) ([][2]int, int) {
	ranges := make([][2]int, len(hosts))
	start := 0
	for i, h := range hosts {
		ranges[i] = [2]int{start, start + h.Ranks}
		start += h.Ranks
	}
	return ranges, start
}

// isLoopbackHost reports whether a host entry refers to the local loopback
// interface (a simulated host the launcher can fork an agent for).
func isLoopbackHost(host string) bool {
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// joinMsg is the gob payload of a frameJoin: an agent asking for its
// assignment.
type joinMsg struct {
	Magic     uint32
	Version   uint32
	HostIndex int    // host-list index the agent stands in for; <= 0 if unknown
	Hostname  string // os.Hostname, matched against the host list as a fallback
}

// assignMsg is the gob payload of a frameAssign: the launcher's reply.
type assignMsg struct {
	Magic          uint32
	Version        uint32
	HostIndex      int
	RankStart      int // the agent runs this rank itself ...
	RankEnd        int // ... and forks (RankStart, RankEnd) as local workers
	Size           int
	RendezvousPort int // combined with the join address's host by the agent
	// ConfigBlob is the launcher's opaque application config (cmd/dibella
	// ships its resolved pipeline parameters), so a join command does not
	// have to repeat every launcher flag. The transport does not interpret
	// it; the agent exposes it as ReceivedConfig and forwards it to its
	// forked workers through EnvConfig.
	ConfigBlob []byte
}

// HostListBootstrap launches a multi-host world from the first host of the
// list. The calling process becomes rank 0 and forks its host's remaining
// ranks; every other host is either simulated (loopback entries — the
// launcher forks a local join agent) or joined manually by running
// `dibella -join <addr>` there.
type HostListBootstrap struct {
	// Hosts is the fully-assigned host list (every Ranks >= 1; see
	// ParseHostList + AssignHostRanks). Hosts[0] is this machine.
	Hosts []HostSpec

	// BindAddr is where the rendezvous and join listeners bind (default
	// ":0": all interfaces, ephemeral ports).
	BindAddr string

	// ConfigBlob is an opaque application payload shipped to every joining
	// host in its assignment reply (see assignMsg.ConfigBlob).
	ConfigBlob []byte

	// Timeout bounds world formation, including the wait for every
	// host's join (default 30s).
	Timeout time.Duration

	// Output receives launcher progress and the forked processes'
	// prefixed output (default os.Stderr).
	Output io.Writer

	// NoSpawn suppresses all forking (rank workers and simulated join
	// agents); every other participant is provided externally. Used by
	// in-process tests and manual launches.
	NoSpawn bool

	// JoinListener and RendezvousListener, when set, are pre-bound
	// sockets (tests bind first so the join address is known before Form
	// runs).
	JoinListener       net.Listener
	RendezvousListener net.Listener

	workers []worker
}

// Form binds the rendezvous and join ports, forks this host's workers and
// the simulated hosts' agents, then serves the join protocol until every
// host has its assignment. It returns rank 0's coordinates.
func (b *HostListBootstrap) Form() (World, error) {
	ranges, size := hostRanges(b.Hosts)
	for i, h := range b.Hosts {
		if h.Ranks <= 0 {
			return World{}, fmt.Errorf("spmd: host %d (%s) has %d ranks; run the list through AssignHostRanks", i, h.Host, h.Ranks)
		}
	}
	out := b.Output
	if out == nil {
		out = os.Stderr
	}
	timeout := b.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	bind := b.BindAddr
	if bind == "" {
		bind = ":0"
	}

	rln := b.RendezvousListener
	if rln == nil {
		var err error
		if rln, err = net.Listen("tcp", bind); err != nil {
			return World{}, fmt.Errorf("spmd: binding rendezvous port: %w", err)
		}
	}
	jln := b.JoinListener
	if jln == nil {
		var err error
		if jln, err = net.Listen("tcp", bind); err != nil {
			rln.Close()
			return World{}, fmt.Errorf("spmd: binding join port: %w", err)
		}
	}
	fail := func(err error) (World, error) {
		jln.Close()
		rln.Close()
		reapWorkers(b.workers)
		b.workers = nil
		return World{}, err
	}
	rdvPort, err := portOf(rln.Addr())
	if err != nil {
		return fail(err)
	}
	// Address this host's own processes (and, via the assignment, every
	// joining host) use to reach the rendezvous: the listener bound ":0",
	// so the routable host must come from the host list / join address.
	rendezvous := net.JoinHostPort(b.Hosts[0].Host, strconv.Itoa(rdvPort))
	joinAddr := jln.Addr().String()
	if port, err := portOf(jln.Addr()); err == nil {
		joinAddr = net.JoinHostPort(b.Hosts[0].Host, strconv.Itoa(port))
	}
	fmt.Fprintf(out, "hosts: world of %d ranks over %d hosts; rendezvous %s, join address %s\n",
		size, len(b.Hosts), rendezvous, joinAddr)

	if !b.NoSpawn {
		// This host's remaining ranks (rank 0 is the calling process).
		workers, err := forkRankWorkers(1, ranges[0][1], size, rendezvous, ":0", timeout, out, b.ConfigBlob)
		if err != nil {
			return fail(err)
		}
		b.workers = workers
		// Simulated hosts: loopback entries get their join agent forked
		// locally; real hosts are joined by the operator.
		for i := 1; i < len(b.Hosts); i++ {
			if !isLoopbackHost(b.Hosts[i].Host) {
				fmt.Fprintf(out, "hosts: waiting for `dibella -join %s` on %s (ranks %d-%d)\n",
					joinAddr, b.Hosts[i].Host, ranges[i][0], ranges[i][1]-1)
				continue
			}
			env := scrubEnv(os.Environ())
			env = append(env,
				EnvJoin+"="+joinAddr,
				EnvHostIndex+"="+strconv.Itoa(i),
				EnvFormTimeout+"="+timeout.String(),
			)
			w, err := forkWorker(os.Args[1:], env, out, fmt.Sprintf("[host %d] ", i))
			if err != nil {
				return fail(fmt.Errorf("spmd: starting simulated host %d (%s): %w", i, b.Hosts[i].Host, err))
			}
			w.label = fmt.Sprintf("host %d (%s)", i, b.Hosts[i].Host)
			b.workers = append(b.workers, w)
		}
	}

	if err := b.serveJoins(jln, ranges, size, rdvPort, timeout, out); err != nil {
		return fail(err)
	}
	jln.Close()
	return World{
		Rank: 0, Size: size,
		Rendezvous: rendezvous, Listener: rln,
		ListenAddr: ":0", FormTimeout: timeout,
	}, nil
}

// serveJoins answers one join per non-launcher host, matching agents to
// host-list entries by explicit index, then hostname, then first-free.
func (b *HostListBootstrap) serveJoins(jln net.Listener, ranges [][2]int, size, rdvPort int,
	timeout time.Duration, out io.Writer) error {

	deadline := time.Now().Add(timeout)
	if tl, ok := jln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	assigned := make([]bool, len(b.Hosts))
	for joined := 1; joined < len(b.Hosts); joined++ {
		conn, err := jln.Accept()
		if err != nil {
			return fmt.Errorf("spmd: waiting for host joins (%d/%d hosts arrived): %w",
				joined, len(b.Hosts), err)
		}
		idx, agent, err := b.answerJoin(conn, assigned, ranges, size, rdvPort, deadline)
		conn.Close()
		if err != nil {
			return err
		}
		assigned[idx] = true
		// Name the actual joiner: a first-free fallback assignment (e.g.
		// FQDN hostnames that don't match the list entries) would
		// otherwise be invisible in the log.
		fmt.Fprintf(out, "hosts: host %d (%s, agent %q) joined, assigned ranks %d-%d\n",
			idx, b.Hosts[idx].Host, agent, ranges[idx][0], ranges[idx][1]-1)
	}
	return nil
}

// answerJoin handles one join connection: validates the request, picks the
// host-list entry, and replies with the assignment. agent is the joiner's
// self-reported hostname, for log attribution.
func (b *HostListBootstrap) answerJoin(conn net.Conn, assigned []bool, ranges [][2]int,
	size, rdvPort int, deadline time.Time) (idx int, agent string, err error) {

	conn.SetDeadline(deadline)
	f, err := readFrame(conn)
	if err != nil {
		return 0, "", fmt.Errorf("spmd: reading join request: %w", err)
	}
	if f.Type != frameJoin {
		return 0, "", fmt.Errorf("spmd: expected join request, got frame type %d", f.Type)
	}
	var req joinMsg
	if err := decodeGob(f.Payload, &req); err != nil {
		return 0, "", fmt.Errorf("spmd: decoding join request: %w", err)
	}
	if err := checkProto(req.Magic, req.Version); err != nil {
		return 0, "", err
	}
	idx = -1
	switch {
	case req.HostIndex > 0 && req.HostIndex < len(b.Hosts) && !assigned[req.HostIndex]:
		idx = req.HostIndex
	default:
		for i := 1; i < len(b.Hosts); i++ {
			if !assigned[i] && b.Hosts[i].Host == req.Hostname {
				idx = i
				break
			}
		}
		if idx < 0 {
			for i := 1; i < len(b.Hosts); i++ {
				if !assigned[i] {
					idx = i
					break
				}
			}
		}
	}
	if idx < 0 {
		return 0, "", fmt.Errorf("spmd: join from %q but every host slot is already assigned", req.Hostname)
	}
	reply := assignMsg{
		Magic: protoMagic, Version: protoVersion,
		HostIndex: idx, RankStart: ranges[idx][0], RankEnd: ranges[idx][1],
		Size: size, RendezvousPort: rdvPort,
		ConfigBlob: b.ConfigBlob,
	}
	payload, err := encodeGob(reply)
	if err != nil {
		return 0, "", err
	}
	if err := writeFrame(conn, &frame{Type: frameAssign, Payload: payload}); err != nil {
		return 0, "", fmt.Errorf("spmd: sending assignment to host %d: %w", idx, err)
	}
	return idx, req.Hostname, nil
}

// Finish reaps the launcher's forked processes (this host's workers and
// any simulated join agents), merging their exit status into runErr.
func (b *HostListBootstrap) Finish(runErr error) error {
	return waitWorkers(b.workers, runErr)
}

// HostJoinBootstrap enters a host-list world from another machine (the
// `dibella -join <addr>` mode): it asks the launcher's join port for an
// assignment, forks this host's remaining ranks, and becomes the first
// rank of the assigned range itself.
type HostJoinBootstrap struct {
	// Addr is the launcher's join address.
	Addr string

	// HostIndex pins this agent to a host-list entry (launcher-forked
	// simulated agents set it); <= 0 lets the launcher match by hostname
	// or first-free slot.
	HostIndex int

	// Timeout bounds the join exchange and world formation (default 30s).
	Timeout time.Duration

	// Output receives progress and the forked workers' prefixed output
	// (default os.Stderr).
	Output io.Writer

	// NoSpawn suppresses forking the range's remaining ranks (tests).
	NoSpawn bool

	// ReceivedConfig is the launcher's ConfigBlob, populated by Form. The
	// application reads it after Connect to adopt the launcher's resolved
	// configuration instead of requiring every flag on the join command
	// line. Form also forwards it to this host's forked workers through
	// the EnvConfig variable.
	ReceivedConfig []byte

	workers []worker
}

// Form requests this host's assignment and forks its local workers.
func (b *HostJoinBootstrap) Form() (World, error) {
	out := b.Output
	if out == nil {
		out = os.Stderr
	}
	timeout := b.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	conn, err := (&net.Dialer{Deadline: deadline}).Dial("tcp", b.Addr)
	if err != nil {
		return World{}, fmt.Errorf("spmd: dialing join address %s: %w", b.Addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	hostname, _ := os.Hostname()
	payload, err := encodeGob(joinMsg{
		Magic: protoMagic, Version: protoVersion,
		HostIndex: b.HostIndex, Hostname: hostname,
	})
	if err != nil {
		return World{}, err
	}
	if err := writeFrame(conn, &frame{Type: frameJoin, Payload: payload}); err != nil {
		return World{}, fmt.Errorf("spmd: sending join request to %s: %w", b.Addr, err)
	}
	f, err := readFrame(conn)
	if err != nil {
		return World{}, fmt.Errorf("spmd: awaiting assignment from %s: %w", b.Addr, err)
	}
	if f.Type != frameAssign {
		return World{}, fmt.Errorf("spmd: expected assignment, got frame type %d", f.Type)
	}
	var assign assignMsg
	if err := decodeGob(f.Payload, &assign); err != nil {
		return World{}, fmt.Errorf("spmd: decoding assignment: %w", err)
	}
	if err := checkProto(assign.Magic, assign.Version); err != nil {
		return World{}, err
	}
	if assign.RankStart < 0 || assign.RankStart >= assign.RankEnd || assign.RankEnd > assign.Size {
		return World{}, fmt.Errorf("spmd: assignment ranks [%d,%d) of %d is malformed",
			assign.RankStart, assign.RankEnd, assign.Size)
	}
	b.ReceivedConfig = assign.ConfigBlob
	launcherHost, _, err := net.SplitHostPort(b.Addr)
	if err != nil {
		return World{}, fmt.Errorf("spmd: join address %q: %w", b.Addr, err)
	}
	rendezvous := net.JoinHostPort(launcherHost, strconv.Itoa(assign.RendezvousPort))
	fmt.Fprintf(out, "joined world as host %d: ranks %d-%d of %d (rendezvous %s)\n",
		assign.HostIndex, assign.RankStart, assign.RankEnd-1, assign.Size, rendezvous)

	if !b.NoSpawn {
		// Workers inherit the agent's command line, which with config
		// shipping may be just `-join <addr>`; the launcher's config blob
		// travels to them through the env contract instead.
		workers, err := forkRankWorkers(assign.RankStart+1, assign.RankEnd, assign.Size,
			rendezvous, ":0", timeout, out, assign.ConfigBlob)
		if err != nil {
			return World{}, err
		}
		b.workers = workers
	}
	return World{
		Rank: assign.RankStart, Size: assign.Size,
		Rendezvous: rendezvous, ListenAddr: ":0", FormTimeout: timeout,
	}, nil
}

// Finish reaps this host's forked workers.
func (b *HostJoinBootstrap) Finish(runErr error) error {
	return waitWorkers(b.workers, runErr)
}

// portOf extracts the port of a bound listener address.
func portOf(a net.Addr) (int, error) {
	ta, ok := a.(*net.TCPAddr)
	if !ok {
		return 0, fmt.Errorf("spmd: %v is not a TCP address", a)
	}
	return ta.Port, nil
}
