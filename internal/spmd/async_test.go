package spmd

import (
	"fmt"
	"strings"
	"testing"
)

// asyncTransposeProgram runs a pipelined sequence of non-blocking
// exchanges (two in flight, like the dht round loops) and checks every
// delivery, interleaved with blocking collectives between rounds' waits.
func asyncTransposeProgram(rounds int) func(*Comm) error {
	return func(c *Comm) error {
		p := c.Size()
		pack := func(round int) [][]int32 {
			send := make([][]int32, p)
			for dst := 0; dst < p; dst++ {
				n := (c.Rank()+dst+round)%3 + 1
				for k := 0; k < n; k++ {
					send[dst] = append(send[dst], int32(round*100000+c.Rank()*1000+dst*10+k))
				}
			}
			return send
		}
		check := func(round int, recv [][]int32) error {
			for src := 0; src < p; src++ {
				n := (src+c.Rank()+round)%3 + 1
				if len(recv[src]) != n {
					return fmt.Errorf("rank %d round %d: recv[%d] has %d items, want %d",
						c.Rank(), round, src, len(recv[src]), n)
				}
				for k, v := range recv[src] {
					if want := int32(round*100000 + src*1000 + c.Rank()*10 + k); v != want {
						return fmt.Errorf("rank %d round %d: recv[%d][%d] = %d, want %d",
							c.Rank(), round, src, k, v, want)
					}
				}
			}
			return nil
		}
		h := IAlltoallv(c, pack(0))
		for round := 0; round < rounds; round++ {
			var next *Handle[int32]
			if round+1 < rounds {
				next = IAlltoallv(c, pack(round+1))
			}
			recv := h.Wait()
			if err := check(round, recv); err != nil {
				return err
			}
			h = next
		}
		// The world must be clean for blocking collectives afterwards.
		if got := AllreduceI64(c, int64(c.Rank()), OpSum); got != int64(p*(p-1)/2) {
			return fmt.Errorf("rank %d: post-async allreduce got %d", c.Rank(), got)
		}
		return nil
	}
}

func TestIAlltoallvPipelinedMem(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		if err := Run(p, asyncTransposeProgram(5)); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestIAlltoallvPipelinedTCP(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		if err := runTCPWorld(t, p, nil, asyncTransposeProgram(5)); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestIAlltoallvPackedBothTransports(t *testing.T) {
	prog := func(c *Comm) error {
		p := c.Size()
		send := make([]PackedBufs, p)
		for dst := 0; dst < p; dst++ {
			send[dst].AppendItem([]byte(fmt.Sprintf("r%d>d%d", c.Rank(), dst)))
			send[dst].AppendItem(nil)
		}
		got := IAlltoallvPacked(c, send).Wait()
		for src := 0; src < p; src++ {
			items := got[src].Items()
			if len(items) != 2 {
				return fmt.Errorf("rank %d: %d items from %d", c.Rank(), len(items), src)
			}
			if want := fmt.Sprintf("r%d>d%d", src, c.Rank()); string(items[0]) != want {
				return fmt.Errorf("rank %d: got %q from %d, want %q", c.Rank(), items[0], src, want)
			}
		}
		return nil
	}
	if err := Run(3, prog); err != nil {
		t.Fatalf("mem: %v", err)
	}
	if err := runTCPWorld(t, 3, nil, prog); err != nil {
		t.Fatalf("tcp: %v", err)
	}
}

// fixedModel prices every exchange at a constant cost so clock folding is
// easy to assert.
type fixedModel struct{ cost float64 }

func (m fixedModel) AlltoallvTime(int64, float64) float64 { return m.cost }
func (m fixedModel) CollectiveTime() float64              { return 0 }

// TestIAlltoallvOverlapClock checks the max(exchange, local) semantics:
// local compute ticked between post and wait hides exchange cost, and the
// hidden portion lands in Stats.OverlapVirtual.
func TestIAlltoallvOverlapClock(t *testing.T) {
	const cost = 10.0
	err := RunWithModel(2, fixedModel{cost: cost}, func(c *Comm) error {
		send := make([][]int32, 2)
		// Fully covered: 15s of local work against a 10s exchange.
		h := IAlltoallv(c, send)
		c.Tick(15)
		h.Wait()
		if got := c.Now(); got != 15 {
			return fmt.Errorf("covered exchange: clock %v, want 15", got)
		}
		if ov := c.Stats().OverlapVirtual; ov != cost {
			return fmt.Errorf("covered exchange: overlap %v, want %v", ov, cost)
		}
		// Partially covered: 4s of local work hides 4 of the 10 seconds.
		h = IAlltoallv(c, send)
		c.Tick(4)
		h.Wait()
		if got, want := c.Now(), 15+cost; got != want {
			return fmt.Errorf("partial overlap: clock %v, want %v", got, want)
		}
		if got, want := c.Stats().OverlapVirtual, cost+4; got != want {
			return fmt.Errorf("partial overlap: total overlap %v, want %v", got, want)
		}
		// Immediate wait degenerates to the blocking cost.
		h = IAlltoallv(c, send)
		h.Wait()
		if got, want := c.Now(), 15+2*cost; got != want {
			return fmt.Errorf("immediate wait: clock %v, want %v", got, want)
		}
		if got, want := c.Stats().ExchangeVirtual, 3*cost; got != want {
			return fmt.Errorf("exchange virtual %v, want %v", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBlockingCollectiveWithPendingHandlePanics checks the schedule guard:
// a blocking collective issued between post and Wait is a protocol error
// that must fail loudly, not deliver wrong data.
func TestBlockingCollectiveWithPendingHandlePanics(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		h := IAlltoallv(c, make([][]int32, 2))
		defer h.Wait()
		c.Barrier() // must panic: exchange pending
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "pending") {
		t.Fatalf("expected pending-handle panic to surface, got %v", err)
	}
}

// TestWaitOutOfOrderPanics checks that handles must be waited FIFO.
func TestWaitOutOfOrderPanics(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		h1 := IAlltoallv(c, make([][]int32, 2))
		h2 := IAlltoallv(c, make([][]int32, 2))
		h2.Wait()
		h1.Wait()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "posting order") {
		t.Fatalf("expected out-of-order wait panic to surface, got %v", err)
	}
}
