package spmd

import (
	"io"
	"sync"
)

// Frame-payload buffer pooling for the TCP transport's read path. Every
// mid-world collective frame used to allocate its payload afresh; under
// serve-mode traffic (many small query collectives per second, for the
// life of the daemon) that allocation pressure is constant. The typed
// layer always copies received bytes out of a non-shared transport's
// buffers (castFromBytes, gob decode), so once a collective has been
// decoded the raw payload can go straight back to the pool.
//
// The handoff is explicit: a transport that can reuse its receive
// buffers implements recvBufRecycler, and the typed collectives return
// each buffer after copy-out — skipping the rank's own column, which
// aliases the caller's send buffer rather than a pooled one.

// maxPooledBuf caps what the pool retains: a one-off giant frame should
// be reclaimed by the GC, not pinned for the life of the world.
const maxPooledBuf = 4 << 20

var framePool sync.Pool

// getFrameBuf returns a length-n buffer, reusing a pooled one when its
// capacity suffices (undersized pooled buffers are dropped to the GC).
func getFrameBuf(n int) []byte {
	if v, _ := framePool.Get().(*[]byte); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]byte, n)
}

// putFrameBuf returns a buffer to the pool. Nil, empty, and oversized
// buffers are dropped.
func putFrameBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	framePool.Put(&b)
}

// recvBufRecycler is implemented by transports whose received payload
// buffers come from the frame pool and may be reused once the typed
// layer has copied the data out. The mem transport does not implement
// it: its "received" slices alias the senders' own memory.
type recvBufRecycler interface {
	RecycleRecvBuf(b []byte)
}

// readFramePooled is readFrame with the payload drawn from the frame
// pool instead of a fresh allocation. Only the mid-world collective read
// loop uses it — formation-time frames (hello, peer table, join) keep
// plain readFrame, since their payloads outlive the read call in
// decoded form anyway and never recycle.
func readFramePooled(r io.Reader) (frame, error) {
	return readFrameBuf(r, getFrameBuf)
}
